package pdmtune_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"pdmtune"
)

// flattenTree serializes a result tree to a canonical byte form: every
// node field in depth-first order. Two trees flatten to the same bytes
// iff the user-visible result is identical.
func flattenTree(tr *pdmtune.Tree) []byte {
	var buf bytes.Buffer
	tr.Walk(func(n *pdmtune.Node) {
		fmt.Fprintf(&buf, "%s|%d|%s|%s|%s|%s|%s|%g|%v|%d|%d|%d|%s|%s|%d\n",
			n.Type, n.ObID, n.Name, n.Dec, n.MakeOrBuy, n.State, n.Material,
			n.Weight, n.CheckedOut, n.Parent, n.EffFrom, n.EffTo,
			n.StrcOpt, n.PathOpt, len(n.Children))
	})
	return buf.Bytes()
}

// TestPlanCacheByteIdenticalD7B5 runs the paper's δ=7, β=5 acceptance
// MLE twice on one session (no structure cache, so every level's SQL
// really executes both times). The first run parses and populates the
// server's plan cache; the second runs entirely on cached ASTs — the
// metrics prove it — and must produce a byte-identical tree.
func TestPlanCacheByteIdenticalD7B5(t *testing.T) {
	sys := pdmtune.NewSystem(nil)
	prod, err := sys.LoadProduct(pdmtune.ProductConfig{
		Depth: 7, Branch: 5, Sigma: 0.6, Seed: 2001,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.Open(
		pdmtune.WithLink(pdmtune.LAN()),
		pdmtune.WithUser(pdmtune.DefaultUser("engineer")),
		pdmtune.WithStrategy(pdmtune.EarlyEval),
		pdmtune.WithBatching(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cold, err := sess.MultiLevelExpand(ctx, prod.RootID)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sess.MultiLevelExpand(ctx, prod.RootID)
	if err != nil {
		t.Fatal(err)
	}

	if cold.Visible != prod.VisibleNodes() || warm.Visible != prod.VisibleNodes() {
		t.Fatalf("visible: cold %d, warm %d, ground truth %d",
			cold.Visible, warm.Visible, prod.VisibleNodes())
	}
	if !bytes.Equal(flattenTree(cold.Tree), flattenTree(warm.Tree)) {
		t.Fatal("plan-cached MLE produced a different tree than the parsed run")
	}
	if warm.Metrics.PlanMisses != 0 || warm.Metrics.PlanHits == 0 {
		t.Fatalf("warm MLE: plan hits=%d misses=%d, want all statements served from the cache",
			warm.Metrics.PlanHits, warm.Metrics.PlanMisses)
	}
	if cold.Metrics.PlanMisses == 0 {
		t.Fatalf("cold MLE reported no plan misses — counter plumbing broken")
	}
}
