module pdmtune

go 1.22
