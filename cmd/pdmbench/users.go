package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pdmtune"
	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

// The -users mode drives N concurrent sessions through a mixed PDM
// workload — multi-level expands, first-wins check-out/check-in races,
// and small part updates — over a shared connection pool, against the
// real engine. The run proves correctness under concurrency: every
// op's wall latency is measured, contention counters flow up from the
// engine, the final database must equal a serial replay of the same
// mutations on a freshly seeded system, and no row may be left checked
// out. The headline fine-vs-coarse locking comparison comes from the
// deterministic netsim contention model at a configurable core count
// (the host running the bench — often a one-core CI box — cannot
// demonstrate an 8-core server's convoy), while -coarse reruns the
// real workload on the single database-wide RWMutex for the ablation.

// usersModel is the DES side of the report.
type usersModel struct {
	Cores            int     `json:"cores"`
	FineMakespanMs   float64 `json:"fine_makespan_ms"`
	CoarseMakespanMs float64 `json:"coarse_makespan_ms"`
	FineP50Ms        float64 `json:"fine_p50_ms"`
	FineP99Ms        float64 `json:"fine_p99_ms"`
	CoarseP50Ms      float64 `json:"coarse_p50_ms"`
	CoarseP99Ms      float64 `json:"coarse_p99_ms"`
	FineLockWaitMs   float64 `json:"fine_lock_wait_ms"`
	CoarseLockWaitMs float64 `json:"coarse_lock_wait_ms"`
	ModeledSpeedup   float64 `json:"modeled_speedup"`
}

// usersReport is the JSON record of one -users run.
type usersReport struct {
	Users             int        `json:"users"`
	PoolSize          int        `json:"pool_size"`
	OpsPerUser        int        `json:"ops_per_user"`
	Coarse            bool       `json:"coarse"`
	Ops               int        `json:"ops"`
	CheckOutWins      int64      `json:"checkout_wins"`
	CheckOutConflicts int64      `json:"checkout_conflicts"`
	WallMs            float64    `json:"wall_ms"`
	P50Ms             float64    `json:"p50_ms"`
	P99Ms             float64    `json:"p99_ms"`
	ThroughputPerSec  float64    `json:"throughput_ops_per_sec"`
	LockWaitMs        float64    `json:"lock_wait_ms"`
	SnapshotsStarted  int64      `json:"snapshots_started"`
	WriteConflicts    int64      `json:"write_conflicts"`
	DumpEqualSerial   bool       `json:"dump_equals_serial_replay"`
	AllFlagsClear     bool       `json:"all_checkout_flags_clear"`
	Model             usersModel `json:"model"`
}

// userOp is one step of a user's scripted workload.
type userOp struct {
	kind  int // 0 = check-out/check-in pair, 1 = MLE, 2 = update
	table int // update target (index into usersTables)
	row   int // update row selector
}

const (
	opCheckPair = iota
	opMLE
	opUpdate
)

var usersTables = []string{"assy", "comp", "link", "spec", "comp2"}

// userScript returns user u's deterministic op sequence. Phases are
// staggered by user index — real users are not lock-step — which is
// also what exposes the coarse lock's writer convoy in the model.
func userScript(u, per int) []userOp {
	ops := make([]userOp, 0, per)
	for i := 0; i < per; i++ {
		switch p := (i + u) % 6; {
		case p == 0:
			ops = append(ops, userOp{kind: opCheckPair})
		case p%2 == 1:
			ops = append(ops, userOp{kind: opMLE})
		default:
			ops = append(ops, userOp{kind: opUpdate, table: (u + i) % len(usersTables), row: u + i})
		}
	}
	return ops
}

// modelOps translates a script into the contention model's terms:
// check-out/check-in latches assy then comp (150 µs each), an MLE is a
// lock-free 400 µs snapshot read, an update a 50 µs single-table write.
func modelOps(script []userOp) []netsim.ContendOp {
	var ops []netsim.ContendOp
	for _, op := range script {
		switch op.kind {
		case opCheckPair:
			ops = append(ops,
				netsim.ContendOp{Table: 0, ServiceNanos: 150_000},
				netsim.ContendOp{Table: 1, ServiceNanos: 150_000})
		case opMLE:
			ops = append(ops, netsim.ContendOp{Read: true, ServiceNanos: 400_000})
		default:
			ops = append(ops, netsim.ContendOp{Table: op.table, ServiceNanos: 50_000})
		}
	}
	return ops
}

// updateSQL returns the mutation for an update op: commutative
// single-row writes (increments and constant sets), so any
// interleaving — including the serial replay — reaches the same final
// state. Targets rotate over four tables plus a second comp column.
func updateSQL(op userOp, ids map[string][]int64) (string, int64) {
	pick := func(table string) int64 {
		list := ids[table]
		return list[op.row%len(list)]
	}
	switch usersTables[op.table] {
	case "assy":
		return "UPDATE assy SET weight = weight + 1 WHERE obid = ?", pick("assy")
	case "comp":
		return "UPDATE comp SET weight = weight + 1 WHERE obid = ?", pick("comp")
	case "link":
		return "UPDATE link SET eff_to = eff_to + 1 WHERE obid = ?", pick("link")
	case "spec":
		return "UPDATE spec SET doc = 'touched' WHERE obid = ?", pick("spec")
	default: // comp2
		return "UPDATE comp SET data = 'bench' WHERE obid = ?", pick("comp")
	}
}

// usersSystem seeds the bench database (one fixed product structure)
// and collects the update-target ids.
func usersSystem(coarse bool) (*pdmtune.System, *pdmtune.Product, map[string][]int64) {
	sys := pdmtune.NewSystem(nil)
	if coarse {
		sys.DB.SetOptions(minisql.Options{CoarseLocking: true})
	}
	prod, err := sys.LoadProduct(pdmtune.ProductConfig{Depth: 3, Branch: 3, Sigma: 1.0, Seed: 42})
	if err != nil {
		fail(err)
	}
	ids := map[string][]int64{}
	s := sys.DB.NewSession()
	for _, table := range []string{"assy", "comp", "link", "spec"} {
		res, err := s.Query("SELECT obid FROM " + table + " ORDER BY obid")
		if err != nil {
			fail(err)
		}
		for _, row := range res.Rows {
			ids[table] = append(ids[table], row[0].Int())
		}
		if len(ids[table]) == 0 {
			fail(fmt.Errorf("bench product has no %s rows", table))
		}
	}
	return sys, prod, ids
}

// usersDump serializes the PDM tables to one canonical string.
func usersDump(sys *pdmtune.System) string {
	s := sys.DB.NewSession()
	var lines []string
	for _, table := range []string{"assy", "comp", "link", "spec", "specified_by"} {
		res, err := s.Query("SELECT * FROM " + table)
		if err != nil {
			fail(err)
		}
		for _, row := range res.Rows {
			parts := []string{table}
			for _, v := range row {
				parts = append(parts, v.String())
			}
			lines = append(lines, strings.Join(parts, "|"))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// runUsers executes the concurrent run, the serial replay, and the
// contention model, and prints the report (JSON with -json).
func runUsers(users, poolSize, per int, coarse bool, cores int, jsonOut bool) {
	if users < 1 || per < 1 {
		fail(fmt.Errorf("-users and -ops must be positive"))
	}
	if poolSize < 1 {
		poolSize = 1
	}
	ctx := context.Background()
	sys, prod, ids := usersSystem(coarse)

	rep := usersReport{Users: users, PoolSize: poolSize, OpsPerUser: per, Coarse: coarse}
	var mu sync.Mutex
	var latencies []time.Duration
	var agg pdmtune.Metrics
	var wg sync.WaitGroup
	errs := make(chan error, users)
	begin := time.Now()
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			sess, err := sys.Open(
				pdmtune.WithLink(pdmtune.LAN()),
				pdmtune.WithPool(poolSize),
				pdmtune.WithUser(pdmtune.DefaultUser(fmt.Sprintf("u%d", u))),
				pdmtune.WithStrategy(pdmtune.Recursive),
			)
			if err != nil {
				errs <- err
				return
			}
			var lat []time.Duration
			var wins, conflicts int64
			for _, op := range userScript(u, per) {
				t0 := time.Now()
				switch op.kind {
				case opCheckPair:
					res, err := sess.CheckOutViaProcedure(ctx, prod.RootID)
					var conflict *pdmtune.ConflictError
					switch {
					case errors.As(err, &conflict):
						conflicts++
					case err != nil:
						errs <- err
						return
					case res.Granted:
						wins++
						if _, err := sess.CheckInViaProcedure(ctx, prod.RootID); err != nil {
							errs <- err
							return
						}
					default:
						conflicts++ // denied by rule: the winner's flags were visible
					}
				case opMLE:
					if _, err := sess.MultiLevelExpand(ctx, prod.RootID); err != nil {
						errs <- err
						return
					}
				default:
					sql, obid := updateSQL(op, ids)
					if _, err := sess.Exec(ctx, sql, types.NewInt(obid)); err != nil {
						errs <- err
						return
					}
				}
				lat = append(lat, time.Since(t0))
			}
			m := sess.Metrics()
			mu.Lock()
			latencies = append(latencies, lat...)
			agg = agg.Add(m)
			rep.CheckOutWins += wins
			rep.CheckOutConflicts += conflicts
			mu.Unlock()
		}(u)
	}
	wg.Wait()
	select {
	case err := <-errs:
		fail(err)
	default:
	}
	wall := time.Since(begin)

	rep.Ops = len(latencies)
	rep.WallMs = float64(wall.Nanoseconds()) / 1e6
	rep.ThroughputPerSec = float64(rep.Ops) / wall.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.P50Ms = float64(latencies[n/2].Nanoseconds()) / 1e6
		rep.P99Ms = float64(latencies[min(n-1, n*99/100)].Nanoseconds()) / 1e6
	}
	rep.LockWaitMs = float64(agg.LockWaitNanos) / 1e6
	rep.SnapshotsStarted = agg.SnapshotsStarted
	rep.WriteConflicts = agg.WriteConflicts

	// Invariants: every first-wins race was resolved (no row left
	// checked out) and the committed state equals a serial replay of
	// the same mutations on a freshly seeded system. MLEs read nothing
	// into the dump and check-out/check-in pairs net to zero, so the
	// replay applies just the update ops, in script order.
	rep.AllFlagsClear = true
	s := sys.DB.NewSession()
	for _, table := range []string{"assy", "comp"} {
		res, err := s.Query("SELECT COUNT(*) FROM " + table + " WHERE checkedout = TRUE")
		if err != nil {
			fail(err)
		}
		if res.Rows[0][0].Int() != 0 {
			rep.AllFlagsClear = false
		}
	}
	serial, _, serialIDs := usersSystem(false)
	ss := serial.DB.NewSession()
	for u := 0; u < users; u++ {
		for _, op := range userScript(u, per) {
			if op.kind != opUpdate {
				continue
			}
			sql, obid := updateSQL(op, serialIDs)
			if _, err := ss.Exec(sql, types.NewInt(obid)); err != nil {
				fail(err)
			}
		}
	}
	rep.DumpEqualSerial = usersDump(sys) == usersDump(serial)

	// The modeled fine-vs-coarse comparison at the requested core count.
	workloads := make([][]netsim.ContendOp, users)
	for u := range workloads {
		workloads[u] = modelOps(userScript(u, per))
	}
	const thinkNanos = 2_000_000
	fine := netsim.SimulateContention(netsim.ContendConfig{Cores: cores, ThinkNanos: thinkNanos, Workloads: workloads})
	coarseRun := netsim.SimulateContention(netsim.ContendConfig{Cores: cores, Coarse: true, ThinkNanos: thinkNanos, Workloads: workloads})
	rep.Model = usersModel{
		Cores:            cores,
		FineMakespanMs:   float64(fine.MakespanNanos) / 1e6,
		CoarseMakespanMs: float64(coarseRun.MakespanNanos) / 1e6,
		FineP50Ms:        float64(fine.P50Nanos) / 1e6,
		FineP99Ms:        float64(fine.P99Nanos) / 1e6,
		CoarseP50Ms:      float64(coarseRun.P50Nanos) / 1e6,
		CoarseP99Ms:      float64(coarseRun.P99Nanos) / 1e6,
		FineLockWaitMs:   float64(fine.LockWaitNanos) / 1e6,
		CoarseLockWaitMs: float64(coarseRun.LockWaitNanos) / 1e6,
		ModeledSpeedup:   float64(coarseRun.MakespanNanos) / float64(fine.MakespanNanos),
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	lockMode := "mvcc (per-table latches, lock-free snapshot reads)"
	if coarse {
		lockMode = "coarse (single database-wide RWMutex)"
	}
	fmt.Printf("Concurrent users — %d sessions over a %d-connection pool, %s\n", users, poolSize, lockMode)
	fmt.Printf("  ops %d  wall %.0f ms  throughput %.0f ops/s  p50 %.2f ms  p99 %.2f ms\n",
		rep.Ops, rep.WallMs, rep.ThroughputPerSec, rep.P50Ms, rep.P99Ms)
	fmt.Printf("  check-outs: %d won, %d lost the first-wins race\n", rep.CheckOutWins, rep.CheckOutConflicts)
	fmt.Printf("  contention: lock wait %.1f ms, %d snapshots, %d write conflicts\n",
		rep.LockWaitMs, rep.SnapshotsStarted, rep.WriteConflicts)
	fmt.Printf("  dump equals serial replay: %v   all check-out flags clear: %v\n",
		rep.DumpEqualSerial, rep.AllFlagsClear)
	fmt.Printf("Modeled at %d cores: fine %.0f ms vs coarse %.0f ms — %.1fx speedup (p99 %.1f vs %.1f ms)\n",
		cores, rep.Model.FineMakespanMs, rep.Model.CoarseMakespanMs, rep.Model.ModeledSpeedup,
		rep.Model.FineP99Ms, rep.Model.CoarseP99Ms)
}
