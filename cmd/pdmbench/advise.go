package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"pdmtune"
)

// The advisor benchmark: three canonical workload shapes are driven
// under the untuned baseline (plain late evaluation), the advisor
// classifies each observed window and picks a configuration, and the
// pick is measured against the baseline by re-running the same workload
// under it.

// adviseProduct matches the advisor acceptance tests: deep enough that
// the knobs matter, small enough to simulate per shape.
var adviseProduct = pdmtune.ProductConfig{Depth: 4, Branch: 3, Sigma: 1, Seed: 7, PadBytes: 64}

// adviseDriver drives one workload shape against a session. Drivers
// pair every check-out with a check-in, so consecutive runs see an
// identical database.
type adviseDriver func(sess *pdmtune.Session, prod *pdmtune.Product) error

func driveColdScan(sess *pdmtune.Session, prod *pdmtune.Product) error {
	ctx := context.Background()
	for _, id := range prod.Nodes[prod.RootID].Children {
		if _, err := sess.MultiLevelExpand(ctx, id); err != nil {
			return err
		}
	}
	_, err := sess.MultiLevelExpand(ctx, prod.RootID)
	return err
}

func driveWarmRepeat(sess *pdmtune.Session, prod *pdmtune.Product) error {
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := sess.MultiLevelExpand(ctx, prod.RootID); err != nil {
			return err
		}
	}
	return nil
}

func driveWriteStorm(sess *pdmtune.Session, prod *pdmtune.Product) error {
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		for _, id := range prod.Nodes[prod.RootID].Children {
			if _, err := sess.CheckOut(ctx, id); err != nil {
				return err
			}
			if _, err := sess.CheckIn(ctx, id); err != nil {
				return err
			}
		}
	}
	return nil
}

// adviseRecord is one shape's outcome in the -advise -json output.
type adviseRecord struct {
	Shape          string  `json:"shape"`
	Classified     string  `json:"classified"`
	WriteFrac      float64 `json:"write_frac"`
	RepeatFrac     float64 `json:"repeat_frac"`
	Pick           string  `json:"pick"`
	PredictedSec   float64 `json:"predicted_sec"`
	CurrentSec     float64 `json:"current_sec"`
	PredictedGain  float64 `json:"predicted_gain_pct"`
	BaselineSimSec float64 `json:"baseline_sim_sec"`
	PickSimSec     float64 `json:"pick_sim_sec"`
	SpeedupX       float64 `json:"speedup_x"`
}

// adviseOne observes one shape, asks the advisor, and measures the pick.
func adviseOne(sys *pdmtune.System, prod *pdmtune.Product, name string, drive adviseDriver) adviseRecord {
	// Observation run under the untuned baseline.
	obs, err := sys.Open(pdmtune.WithStrategy(pdmtune.LateEval))
	if err != nil {
		fail(err)
	}
	if err := drive(obs, prod); err != nil {
		fail(err)
	}
	window := obs.Metrics()
	adv := pdmtune.Advisor{Product: prod.Config, Users: 1}
	profile := pdmtune.Classify(adv.Observe(obs, window))
	recs := adv.Recommend(obs, window)
	if err := obs.Close(); err != nil {
		fail(err)
	}
	if len(recs) == 0 {
		fail(fmt.Errorf("advisor returned no recommendations for shape %s", name))
	}
	best := recs[0]

	// Measurement run: a fresh session reconfigured to the pick, meters
	// reset so only the workload is charged.
	sess, err := sys.Open(pdmtune.WithStrategy(pdmtune.LateEval))
	if err != nil {
		fail(err)
	}
	if err := sess.ApplyConfig(context.Background(), best.Config); err != nil {
		fail(err)
	}
	sess.ResetMetrics()
	if err := drive(sess, prod); err != nil {
		fail(err)
	}
	pickSec := sess.Metrics().TotalSec()
	if err := sess.Close(); err != nil {
		fail(err)
	}

	baselineSec := window.TotalSec()
	speedup := 0.0
	if pickSec > 0 {
		speedup = baselineSec / pickSec
	}
	return adviseRecord{
		Shape:          name,
		Classified:     profile.Shape.String(),
		WriteFrac:      profile.WriteFrac,
		RepeatFrac:     profile.RepeatFrac,
		Pick:           best.Config.String(),
		PredictedSec:   best.PredictedSec,
		CurrentSec:     best.CurrentSec,
		PredictedGain:  best.DeltaPct,
		BaselineSimSec: baselineSec,
		PickSimSec:     pickSec,
		SpeedupX:       speedup,
	}
}

// runAdvise drives the three shapes and reports — as prose, or as one
// JSON array for benchmark trajectory tracking (BENCH_advisor.json).
func runAdvise(jsonOut bool) {
	sys := pdmtune.NewSystem(nil)
	prod, err := sys.LoadProduct(adviseProduct)
	if err != nil {
		fail(err)
	}
	shapes := []struct {
		name  string
		drive adviseDriver
	}{
		{"cold-scan", driveColdScan},
		{"warm-repeat", driveWarmRepeat},
		{"write-storm", driveWriteStorm},
	}
	var records []adviseRecord
	for _, s := range shapes {
		records = append(records, adviseOne(sys, prod, s.name, s.drive))
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println("Auto-tuning advisor — three workload shapes observed under the untuned")
	fmt.Println("baseline (plain late evaluation), classified, and re-run under the advisor's")
	fmt.Printf("pick (δ=%d, β=%d, σ=%g, 256 kbit/s / 150 ms).\n",
		adviseProduct.Depth, adviseProduct.Branch, adviseProduct.Sigma)
	fmt.Println()
	for _, r := range records {
		fmt.Printf("  %-12s classified %-12s (writes %4.0f%%, repeats %4.0f%%)\n",
			r.Shape, r.Classified, r.WriteFrac*100, r.RepeatFrac*100)
		fmt.Printf("    pick: %s\n", r.Pick)
		fmt.Printf("    simulated: %8.2fs -> %7.2fs (%.1fx; model predicted %.1f%% gain)\n",
			r.BaselineSimSec, r.PickSimSec, r.SpeedupX, r.PredictedGain)
	}
	fmt.Println()
}
