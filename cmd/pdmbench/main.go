// Command pdmbench regenerates every table and figure of the paper's
// evaluation section, both analytically (the Section 2 model — matching
// the printed numbers) and by simulation (the full PDM system: real SQL
// through the wire protocol across the simulated WAN).
//
// Usage:
//
//	pdmbench                  # tables 2-4 and figures 4-5 (analytic, vs paper)
//	pdmbench -table 3         # one table
//	pdmbench -figure 5        # one figure (ASCII bars)
//	pdmbench -simulate        # wire-level simulation vs model, all scenarios
//	pdmbench -batch           # batched vs unbatched wire protocol (round trips saved)
//	pdmbench -prepared        # prepared statements vs SQL text (request bytes saved)
//	pdmbench -cache           # structure cache: cold vs warm vs post-write MLE
//	pdmbench -compress        # columnar v2 results + deflate vs the v1 row-major wire
//	pdmbench -checkout        # Section 6: check-out round-trip comparison
//	pdmbench -sites 3         # multi-site topology: replica reads at LAN cost vs the
//	                          # primary's WAN cost, per-site sync volume (combine with
//	                          # -staleness for bounded-staleness sessions, or with
//	                          # -subscribe 0.5 for partial replication: each site
//	                          # subscribes to half the root's subtrees, syncs only the
//	                          # closure, and out-of-subscription reads fall through)
//	pdmbench -whereused       # where-used inverse traversal vs the model prediction
//	pdmbench -eco             # ECO propagation (incl. check-out conflicts) vs the model
//	pdmbench -report          # bulk reporting scan vs the model prediction
//	pdmbench -ablate          # packet-size / σ / accounting-mode ablations
//	pdmbench -advise          # auto-tuning advisor: observe three workload shapes,
//	                          # classify, pick knobs, and re-measure under the pick
//	                          # (combine with -json for BENCH_advisor.json records)
//	pdmbench -parse           # SQL front end: tokenizer/parser MB/s and allocs per
//	                          # statement, warm and cold (combine with -json for
//	                          # BENCH_parse.json records)
//	pdmbench -failover        # kill the primary under write traffic: time to a
//	                          # health-checked promotion, writes refused while
//	                          # primary-less, lost acknowledged writes (none), and
//	                          # post-rejoin convergence (combine with -json for
//	                          # BENCH_failover.json records)
//	pdmbench -json            # machine-readable metrics for all scenarios (stdout;
//	                          # display modes are ignored so the output stays pure
//	                          # JSON; combine with -compress to add the negotiated
//	                          # columnar+deflate configurations, or with -sites N
//	                          # for the per-site topology records instead)
//	pdmbench -all             # everything
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"pdmtune"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
)

func main() {
	table := flag.Int("table", 0, "print one paper table (2, 3 or 4)")
	figure := flag.Int("figure", 0, "print one paper figure (4 or 5)")
	simulate := flag.Bool("simulate", false, "run the wire-level simulation against the model")
	batch := flag.Bool("batch", false, "compare batched vs unbatched statement execution")
	prepared := flag.Bool("prepared", false, "compare prepared statements vs SQL text")
	cacheCmp := flag.Bool("cache", false, "compare cold vs warm structure-cache runs")
	compress := flag.Bool("compress", false, "compare columnar+deflate vs v1 row-major results")
	checkout := flag.Bool("checkout", false, "compare check-out implementations (Section 6)")
	sites := flag.Int("sites", 0, "simulate N replica sites (reads at LAN cost, sync across the WAN)")
	staleness := flag.Duration("staleness", -1, "staleness bound of the per-site sessions (-1: read your own site)")
	subscribe := flag.Float64("subscribe", 0, "with -sites: subscribe each site to this fraction of the root's subtrees (0: full replication)")
	whereused := flag.Bool("whereused", false, "run the where-used inverse traversal against the model prediction")
	eco := flag.Bool("eco", false, "run the ECO propagation workload against the model prediction")
	report := flag.Bool("report", false, "run the bulk reporting scan against the model prediction")
	ablate := flag.Bool("ablate", false, "run the ablation sweeps")
	advise := flag.Bool("advise", false, "run the auto-tuning advisor over three workload shapes")
	parse := flag.Bool("parse", false, "benchmark the SQL tokenizer and parser (throughput and allocs)")
	failover := flag.Bool("failover", false, "kill the primary under write traffic and measure the health-checked failover")
	users := flag.Int("users", 0, "run the concurrent-users benchmark with N sessions")
	poolSize := flag.Int("pool", 32, "connection-pool size for -users sessions")
	userOps := flag.Int("ops", 20, "operations per user for -users")
	coarse := flag.Bool("coarse", false, "ablation: run -users on the old single database-wide RWMutex")
	cores := flag.Int("cores", 8, "server cores for the modeled fine-vs-coarse comparison of -users")
	jsonOut := flag.Bool("json", false, "emit machine-readable simulation metrics as JSON")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()

	// The workload modes own the whole run — two of them in one
	// invocation would interleave their output (and their JSON arrays),
	// so an ambiguous combination is a usage error, not a silent pick.
	var picked []string
	for _, m := range []struct {
		name string
		set  bool
	}{
		{"-users", *users > 0}, {"-parse", *parse}, {"-failover", *failover},
		{"-whereused", *whereused}, {"-eco", *eco}, {"-report", *report},
	} {
		if m.set {
			picked = append(picked, m.name)
		}
	}
	if len(picked) > 1 {
		fmt.Fprintf(os.Stderr, "pdmbench: %s are mutually exclusive modes; pass exactly one\n", strings.Join(picked, ", "))
		flag.Usage()
		os.Exit(2)
	}
	if *subscribe < 0 || *subscribe > 1 {
		fmt.Fprintln(os.Stderr, "pdmbench: -subscribe must be in [0, 1]")
		flag.Usage()
		os.Exit(2)
	}

	// -users and -parse are their own modes (other selectors, e.g.
	// -simulate, are compatible no-ops so CI can pass one flag set
	// everywhere).
	if *users > 0 {
		runUsers(*users, *poolSize, *userOps, *coarse, *cores, *jsonOut)
		return
	}
	if *parse {
		runParse(*jsonOut)
		return
	}
	if *failover {
		runFailover(*jsonOut)
		return
	}
	if *whereused {
		runWhereUsed(*jsonOut)
		return
	}
	if *eco {
		runECO(*jsonOut)
		return
	}
	if *report {
		runReport(*jsonOut)
		return
	}

	if *jsonOut {
		if *sites > 0 {
			runSitesJSON(*sites, *staleness, *subscribe)
			return
		}
		if *advise {
			runAdvise(true)
			return
		}
		runJSON(*compress)
		return
	}
	any := *table != 0 || *figure != 0 || *simulate || *batch || *prepared || *cacheCmp || *compress || *checkout || *sites > 0 || *ablate || *advise
	if *all || !any {
		printTable(2)
		printTable(3)
		printTable(4)
		printFigure(4)
		printFigure(5)
	}
	if *table != 0 {
		printTable(*table)
	}
	if *figure != 0 {
		printFigure(*figure)
	}
	if *simulate || *all {
		runSimulation()
	}
	if *batch || *all {
		runBatchComparison()
	}
	if *prepared || *all {
		runPreparedComparison()
	}
	if *cacheCmp || *all {
		runCacheComparison()
	}
	if *compress || *all {
		runCompressComparison()
	}
	if *checkout || *all {
		runCheckout()
	}
	if *sites > 0 {
		runSitesComparison(*sites, *staleness, *subscribe)
	} else if *all {
		runSitesComparison(2, *staleness, *subscribe)
	}
	if *ablate || *all {
		runAblation()
	}
	if *advise || *all {
		runAdvise(false)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pdmbench:", err)
	os.Exit(1)
}

// ---------------------------------------------------------------------------
// Analytic tables

func printTable(n int) {
	var strat costmodel.Strategy
	switch n {
	case 2:
		strat = costmodel.LateEval
		fmt.Println("Table 2 — response times, late evaluation (model vs paper)")
	case 3:
		strat = costmodel.EarlyEval
		fmt.Println("Table 3 — response times, early rule evaluation (model vs paper)")
	case 4:
		strat = costmodel.Recursive
		fmt.Println("Table 4 — multi-level expands with recursive queries (model vs paper)")
	default:
		fail(fmt.Errorf("no table %d in the paper's evaluation", n))
	}
	cells := costmodel.TableCells(strat)
	late := costmodel.TableCells(costmodel.LateEval)
	nets := costmodel.PaperNetworks()
	scens := costmodel.PaperScenarios()

	header := fmt.Sprintf("%-28s", "")
	for _, scen := range scens {
		if n == 4 {
			header += fmt.Sprintf("%-16s", scen.Name)
		} else {
			for _, a := range costmodel.Actions {
				header += fmt.Sprintf("%-16s", scen.Name+" "+a.String())
			}
		}
	}
	fmt.Println(header)

	cellStr := func(model, paper float64) string {
		return fmt.Sprintf("%.2f (%.2f)", model, paper)
	}
	for ni, net := range nets {
		rows := map[string][]string{"latency": {}, "transfer": {}, "total": {}, "saving %": {}}
		for si := range scens {
			actions := costmodel.Actions
			if n == 4 {
				actions = []costmodel.Action{costmodel.MLE}
			}
			for _, a := range actions {
				est := cells[ni][si][int(a)]
				switch n {
				case 2:
					rows["latency"] = append(rows["latency"], cellStr(est.LatencySec, costmodel.PaperTable2Latency[ni][si][a]))
					rows["transfer"] = append(rows["transfer"], cellStr(est.TransferSec, costmodel.PaperTable2Transfer[ni][si][a]))
					rows["total"] = append(rows["total"], cellStr(est.TotalSec, costmodel.PaperTable2Total[ni][si][a]))
				case 3:
					rows["latency"] = append(rows["latency"], cellStr(est.LatencySec, costmodel.PaperTable2Latency[ni][si][a]))
					rows["transfer"] = append(rows["transfer"], cellStr(est.TransferSec, costmodel.PaperTable3Transfer[ni][si][a]))
					rows["total"] = append(rows["total"], cellStr(est.TotalSec, costmodel.PaperTable3Total[ni][si][a]))
					s := costmodel.SavingPct(late[ni][si][int(a)], est)
					rows["saving %"] = append(rows["saving %"], cellStr(s, costmodel.PaperTable3Saving[ni][si][a]))
				case 4:
					rows["latency"] = append(rows["latency"], cellStr(est.LatencySec, costmodel.PaperTable4Latency[ni][si]))
					rows["transfer"] = append(rows["transfer"], cellStr(est.TransferSec, costmodel.PaperTable4Transfer[ni][si]))
					rows["total"] = append(rows["total"], cellStr(est.TotalSec, costmodel.PaperTable4Total[ni][si]))
					s := costmodel.SavingPct(late[ni][si][int(a)], est)
					rows["saving %"] = append(rows["saving %"], cellStr(s, costmodel.PaperTable4Saving[ni][si]))
				}
			}
		}
		order := []string{"latency", "transfer", "total"}
		if n != 2 {
			order = append(order, "saving %")
		}
		for _, kind := range order {
			line := fmt.Sprintf("%-28s", net.Name+" "+kind)
			for _, c := range rows[kind] {
				line += fmt.Sprintf("%-16s", c)
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
}

// ---------------------------------------------------------------------------
// Figures (ASCII bar charts)

func printFigure(n int) {
	var totals [3][3]float64
	switch n {
	case 4:
		totals = costmodel.Figure4()
		fmt.Println("Figure 4 — response times for δ=9, β=3, σ=0.6, T_Lat=150ms, dtr=512 kbit/s")
	case 5:
		totals = costmodel.Figure5()
		fmt.Println("Figure 5 — response times for δ=7, β=5, σ=0.6, T_Lat=150ms, dtr=256 kbit/s")
	default:
		fail(fmt.Errorf("no figure %d in the paper's evaluation", n))
	}
	maxVal := 0.0
	for _, row := range totals {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	const width = 48
	for si, strat := range costmodel.Strategies {
		fmt.Printf("  %s\n", strat)
		for ai, a := range costmodel.Actions {
			v := totals[si][ai]
			bar := strings.Repeat("#", int(v/maxVal*width+0.5))
			fmt.Printf("    %-7s %9.2fs |%s\n", a.String(), v, bar)
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Wire-level simulation

// simOutcome captures the link-independent traffic of one action so the
// response time can be derived for every network profile.
type simOutcome struct {
	roundTrips int
	comms      int
	volumeB    float64
	visible    int
}

// loadScenario generates the product for one paper scenario into a
// fresh system; scenarios with fractional σβ use random visibility.
func loadScenario(sys *pdmtune.System, scen costmodel.Tree, seed int64) (*pdmtune.Product, error) {
	sigmaBeta := scen.Sigma * float64(scen.Branch)
	return sys.LoadProduct(pdmtune.ProductConfig{
		Depth: scen.Depth, Branch: scen.Branch, Sigma: scen.Sigma,
		Seed:             seed,
		RandomVisibility: sigmaBeta != float64(int(sigmaBeta)),
	})
}

func runSimulation() {
	fmt.Println("Wire-level simulation — full PDM system (SQL over the simulated WAN)")
	fmt.Println("Response times derived for each network from measured round trips and volumes;")
	fmt.Println("model values in parentheses. Scenarios with fractional σβ use random visibility,")
	fmt.Println("so simulated node counts vary around the model's expectation.")
	fmt.Println()
	nets := costmodel.PaperNetworks()
	for scenIdx, scen := range costmodel.PaperScenarios() {
		fmt.Printf("Scenario %s\n", scen.Name)
		sys := pdmtune.NewSystem(nil)
		prod, err := loadScenario(sys, scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		fmt.Printf("  generated: %d nodes, %d visible (model n_v = %.0f)\n",
			prod.AllNodes(), prod.VisibleNodes(), scen.VisibleNodes())
		for _, action := range costmodel.Actions {
			for _, strat := range costmodel.Strategies {
				if action != costmodel.MLE && strat == costmodel.Recursive {
					continue
				}
				target := prod.RootID
				if action == costmodel.Query {
					target = prod.Config.ProdID
				}
				sess, err := sys.Open(
					pdmtune.WithLink(pdmtune.LinkOf(nets[0])),
					pdmtune.WithUser(pdmtune.DefaultUser("sim")),
					pdmtune.WithStrategy(pdmtune.Strategy(strat)),
				)
				if err != nil {
					fail(err)
				}
				res, err := sess.Run(context.Background(), pdmtune.Action(action), target)
				if err != nil {
					fail(err)
				}
				if err := sess.Close(); err != nil {
					fail(err)
				}
				out := simOutcome{
					roundTrips: res.Metrics.RoundTrips,
					comms:      res.Metrics.Communications,
					volumeB:    res.Metrics.VolumeBytes(),
					visible:    res.Visible,
				}
				line := fmt.Sprintf("  %-7s %-10s rt=%-6d vol=%8.0f KiB  ",
					action.String(), strat.String(), out.roundTrips, out.volumeB/1024)
				for ni, net := range nets {
					simT := float64(out.comms)*net.LatencySec + out.volumeB*8/(net.RateKbps*1024)
					model := costmodel.Model{Net: net, Tree: scen}.Predict(action, strat)
					line += fmt.Sprintf("T%d=%8.2fs (%8.2fs)  ", ni+1, simT, model.TotalSec)
				}
				fmt.Println(line)
			}
		}
		fmt.Println()
	}
}

// ---------------------------------------------------------------------------
// Batched vs unbatched wire protocol

func runBatchComparison() {
	fmt.Println("Batched statement execution — one wire batch per BFS level vs one round trip")
	fmt.Println("per statement (MLE on the paper's scenarios, 256 kbit/s / 150 ms). Result sets")
	fmt.Println("are identical by construction; the batched model estimate is in parentheses.")
	fmt.Println()
	net := costmodel.PaperNetworks()[0]
	link := pdmtune.LinkOf(net)
	for scenIdx, scen := range costmodel.PaperScenarios() {
		fmt.Printf("Scenario %s\n", scen.Name)
		sys := pdmtune.NewSystem(nil)
		prod, err := loadScenario(sys, scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		for _, strat := range []pdmtune.Strategy{pdmtune.LateEval, pdmtune.EarlyEval} {
			plain, err := runMLE(sys, prod.RootID, link, strat, false, false)
			if err != nil {
				fail(err)
			}
			batched, err := runMLE(sys, prod.RootID, link, strat, true, false)
			if err != nil {
				fail(err)
			}
			if batched.Visible != plain.Visible {
				fail(fmt.Errorf("batched client sees %d nodes, unbatched %d", batched.Visible, plain.Visible))
			}
			model := costmodel.Model{Net: net, Tree: scen}.PredictBatched(costmodel.MLE, costmodel.Strategy(strat))
			fmt.Printf("  %-10s rt %5d -> %-4d (saved %5d)  T %8.2fs -> %7.2fs (%7.2fs)\n",
				strat.String(), plain.Metrics.RoundTrips, batched.Metrics.RoundTrips,
				batched.Metrics.SavedRoundTrips,
				plain.Metrics.TotalSec(), batched.Metrics.TotalSec(), model.TotalSec)
		}
	}
	fmt.Println()
}

// runMLE opens a session in the given wire configuration (plus any
// extra options) and runs one multi-level expand.
func runMLE(sys *pdmtune.System, root int64, link pdmtune.Link, strat pdmtune.Strategy, batched, prepared bool, extra ...pdmtune.Option) (*pdmtune.ActionResult, error) {
	opts := []pdmtune.Option{
		pdmtune.WithLink(link),
		pdmtune.WithUser(pdmtune.DefaultUser("sim")),
		pdmtune.WithStrategy(strat),
		pdmtune.WithBatching(batched),
		pdmtune.WithPreparedStatements(prepared),
	}
	sess, err := sys.Open(append(opts, extra...)...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.MultiLevelExpand(context.Background(), root)
}

// ---------------------------------------------------------------------------
// Columnar + compressed results vs the v1 row-major wire

func runCompressComparison() {
	fmt.Println("Columnar v2 results + negotiated deflate — the cold-path response volume")
	fmt.Println("lever: each column is encoded once (dictionary strings, delta-varint ids,")
	fmt.Println("null bitmaps) and bodies above the adaptive threshold are deflated. Decoded")
	fmt.Println("trees are identical by construction; the compressed model estimate (measured")
	fmt.Println("ratio) is in parentheses. (Batched early eval and recursive, 256 kbit/s / 150 ms.)")
	fmt.Println()
	net := costmodel.PaperNetworks()[0]
	link := pdmtune.LinkOf(net)
	for scenIdx, scen := range costmodel.PaperScenarios() {
		fmt.Printf("Scenario %s\n", scen.Name)
		sys := pdmtune.NewSystem(nil)
		prod, err := loadScenario(sys, scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		for _, strat := range []pdmtune.Strategy{pdmtune.EarlyEval, pdmtune.Recursive} {
			batched := strat != pdmtune.Recursive
			plain, err := runMLE(sys, prod.RootID, link, strat, batched, false)
			if err != nil {
				fail(err)
			}
			z, err := runMLE(sys, prod.RootID, link, strat, batched, false,
				pdmtune.WithColumnarResults(true), pdmtune.WithCompression(true))
			if err != nil {
				fail(err)
			}
			if z.Visible != plain.Visible {
				fail(fmt.Errorf("compressed client sees %d nodes, plain %d", z.Visible, plain.Visible))
			}
			// The model's ratio parameter is the total v1-to-wire shrink
			// (columnar + deflate), which is exactly the measured charged
			// response-volume ratio.
			ratio := 0.0
			if z.Metrics.ResponseBytes > 0 {
				ratio = plain.Metrics.ResponseBytes / z.Metrics.ResponseBytes
			}
			model := costmodel.Model{Net: net, Tree: scen}.PredictCompressed(
				costmodel.MLE, costmodel.Strategy(strat), ratio)
			fmt.Printf("  %-10s resp %8.0f KiB -> %6.0f KiB (%5.1fx, %d frames deflated)  T %8.2fs -> %7.2fs (%7.2fs)\n",
				strat.String(), plain.Metrics.ResponseBytes/1024, z.Metrics.ResponseBytes/1024,
				ratio, z.Metrics.CompressedFrames,
				plain.Metrics.TotalSec(), z.Metrics.TotalSec(), model.TotalSec)
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Prepared statements vs SQL text

func runPreparedComparison() {
	fmt.Println("Prepared statements — the per-node expand is prepared once per session and")
	fmt.Println("executed by handle + parameters; with level batching the request volume of a")
	fmt.Println("navigational MLE collapses. (δ=9/β=3 and δ=3/β=9, 256 kbit/s / 150 ms, early eval.)")
	fmt.Println()
	link := pdmtune.LinkOf(costmodel.PaperNetworks()[0])
	for scenIdx, scen := range costmodel.PaperScenarios()[:2] {
		fmt.Printf("Scenario %s\n", scen.Name)
		sys := pdmtune.NewSystem(nil)
		prod, err := loadScenario(sys, scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		text, err := runMLE(sys, prod.RootID, link, pdmtune.EarlyEval, true, false)
		if err != nil {
			fail(err)
		}
		prep, err := runMLE(sys, prod.RootID, link, pdmtune.EarlyEval, true, true)
		if err != nil {
			fail(err)
		}
		if prep.Visible != text.Visible {
			fail(fmt.Errorf("prepared client sees %d nodes, text client %d", prep.Visible, text.Visible))
		}
		fmt.Printf("  text:     rt=%-5d req=%8.0f KiB                          T=%8.2fs\n",
			text.Metrics.RoundTrips, text.Metrics.RequestBytes/1024, text.Metrics.TotalSec())
		fmt.Printf("  prepared: rt=%-5d req=%8.0f KiB (saved %7.0f KiB SQL)  T=%8.2fs  execs=%d\n",
			prep.Metrics.RoundTrips, prep.Metrics.RequestBytes/1024,
			prep.Metrics.SavedRequestBytes/1024, prep.Metrics.TotalSec(), prep.Metrics.PreparedExecs)
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Structure cache: cold vs warm vs post-write

func runCacheComparison() {
	fmt.Println("Structure cache — the client keeps validated expand pages keyed by (parent,")
	fmt.Println("action) with server version stamps. A repeated MLE revalidates the whole")
	fmt.Println("cached tree in ONE TypeValidate round trip; a check-in bumps the touched")
	fmt.Println("objects' versions, so the next MLE re-fetches only then. (Batched early eval,")
	fmt.Println("256 kbit/s / 150 ms; warm model estimate in parentheses.)")
	fmt.Println()
	net := costmodel.PaperNetworks()[0]
	link := pdmtune.LinkOf(net)
	for scenIdx, scen := range costmodel.PaperScenarios() {
		fmt.Printf("Scenario %s\n", scen.Name)
		sys := pdmtune.NewSystem(nil)
		prod, err := loadScenario(sys, scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		sess, err := sys.Open(
			pdmtune.WithLink(link),
			pdmtune.WithUser(pdmtune.DefaultUser("sim")),
			pdmtune.WithStrategy(pdmtune.EarlyEval),
			pdmtune.WithBatching(true),
			pdmtune.WithCache(1<<20),
		)
		if err != nil {
			fail(err)
		}
		ctx := context.Background()
		cold, err := sess.MultiLevelExpand(ctx, prod.RootID)
		if err != nil {
			fail(err)
		}
		warm, err := sess.MultiLevelExpand(ctx, prod.RootID)
		if err != nil {
			fail(err)
		}
		if warm.Visible != cold.Visible {
			fail(fmt.Errorf("warm MLE sees %d nodes, cold %d", warm.Visible, cold.Visible))
		}
		// A write from another session stales the cached subtree: the
		// next MLE detects it through the validate exchange and re-fetches.
		writer, err := sys.Open(pdmtune.WithLink(link), pdmtune.WithUser(pdmtune.DefaultUser("writer")))
		if err != nil {
			fail(err)
		}
		if _, err := writer.CheckOutViaProcedure(ctx, prod.RootID); err != nil {
			fail(err)
		}
		stale, err := sess.MultiLevelExpand(ctx, prod.RootID)
		if err != nil {
			fail(err)
		}
		if _, err := writer.CheckInViaProcedure(ctx, prod.RootID); err != nil {
			fail(err)
		}
		if err := writer.Close(); err != nil {
			fail(err)
		}
		if err := sess.Close(); err != nil {
			fail(err)
		}
		model := costmodel.Model{Net: net, Tree: scen}.PredictCached(costmodel.MLE, costmodel.EarlyEval, true)
		fmt.Printf("  cold:       rt=%-5d vol=%8.0f KiB  T=%8.2fs\n",
			cold.Metrics.RoundTrips, cold.Metrics.VolumeBytes()/1024, cold.Metrics.TotalSec())
		fmt.Printf("  warm:       rt=%-5d vol=%8.0f KiB  T=%8.2fs (%5.2fs)  hits=%d validate_rt=%d saved_rt=%d\n",
			warm.Metrics.RoundTrips, warm.Metrics.VolumeBytes()/1024, warm.Metrics.TotalSec(),
			model.TotalSec, warm.Metrics.CacheHits, warm.Metrics.ValidateRoundTrips, warm.Metrics.SavedRoundTrips)
		fmt.Printf("  post-write: rt=%-5d vol=%8.0f KiB  T=%8.2fs  (staleness detected, re-fetched)\n",
			stale.Metrics.RoundTrips, stale.Metrics.VolumeBytes()/1024, stale.Metrics.TotalSec())
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Machine-readable metrics (-json)

// jsonRecord is one measured configuration in the -json output, stable
// field names for benchmark trajectory tracking.
type jsonRecord struct {
	Scenario           string  `json:"scenario"`
	Action             string  `json:"action"`
	Strategy           string  `json:"strategy"`
	Batched            bool    `json:"batched"`
	Prepared           bool    `json:"prepared"`
	Cached             bool    `json:"cached"`
	Warm               bool    `json:"warm"`
	Columnar           bool    `json:"columnar"`
	Compressed         bool    `json:"compressed"`
	Visible            int     `json:"visible"`
	RoundTrips         int     `json:"round_trips"`
	Statements         int     `json:"statements"`
	PreparedExecs      int     `json:"prepared_execs"`
	CacheHits          int     `json:"cache_hits"`
	CacheMisses        int     `json:"cache_misses"`
	ValidateRoundTrips int     `json:"validate_round_trips"`
	SavedRoundTrips    int     `json:"saved_round_trips"`
	CompressedFrames   int     `json:"compressed_frames"`
	RequestBytes       float64 `json:"request_bytes"`
	ResponseBytes      float64 `json:"response_bytes"`
	SavedRequestBytes  float64 `json:"saved_request_bytes"`
	ResponseBytesSaved float64 `json:"response_bytes_saved"`
	SimulatedSec       float64 `json:"simulated_sec"`
}

// record converts one measured action result into a jsonRecord.
func record(scen costmodel.Tree, strat pdmtune.Strategy, res *pdmtune.ActionResult,
	batched, prepared, cached, warm, columnar, compressed bool) jsonRecord {
	return jsonRecord{
		Scenario:           scen.Name,
		Action:             pdmtune.MLE.String(),
		Strategy:           strat.String(),
		Batched:            batched,
		Prepared:           prepared,
		Cached:             cached,
		Warm:               warm,
		Columnar:           columnar,
		Compressed:         compressed,
		CompressedFrames:   res.Metrics.CompressedFrames,
		ResponseBytesSaved: res.Metrics.ResponseBytesSaved,
		Visible:            res.Visible,
		RoundTrips:         res.Metrics.RoundTrips,
		Statements:         res.Metrics.Statements,
		PreparedExecs:      res.Metrics.PreparedExecs,
		CacheHits:          res.Metrics.CacheHits,
		CacheMisses:        res.Metrics.CacheMisses,
		ValidateRoundTrips: res.Metrics.ValidateRoundTrips,
		SavedRoundTrips:    res.Metrics.SavedRoundTrips,
		RequestBytes:       res.Metrics.RequestBytes,
		ResponseBytes:      res.Metrics.ResponseBytes,
		SavedRequestBytes:  res.Metrics.SavedRequestBytes,
		SimulatedSec:       res.Metrics.TotalSec(),
	}
}

// runJSON measures every strategy and wire mode on the paper's MLE
// workload (first network profile) and emits one JSON array on stdout.
// withCompressed additionally measures each strategy through the
// negotiated columnar+deflate encodings.
func runJSON(withCompressed bool) {
	link := pdmtune.LinkOf(costmodel.PaperNetworks()[0])
	var records []jsonRecord
	for scenIdx, scen := range costmodel.PaperScenarios() {
		sys := pdmtune.NewSystem(nil)
		prod, err := loadScenario(sys, scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		for _, strat := range []pdmtune.Strategy{pdmtune.LateEval, pdmtune.EarlyEval, pdmtune.Recursive} {
			modes := [][2]bool{{false, false}}
			if strat != pdmtune.Recursive {
				modes = append(modes, [2]bool{true, false}, [2]bool{true, true})
			}
			for _, m := range modes {
				res, err := runMLE(sys, prod.RootID, link, strat, m[0], m[1])
				if err != nil {
					fail(err)
				}
				records = append(records, record(scen, strat, res, m[0], m[1], false, false, false, false))
			}
			if withCompressed {
				batched := strat != pdmtune.Recursive
				res, err := runMLE(sys, prod.RootID, link, strat, batched, false,
					pdmtune.WithColumnarResults(true), pdmtune.WithCompression(true))
				if err != nil {
					fail(err)
				}
				records = append(records, record(scen, strat, res, batched, false, false, false, true, true))
			}
			// Cached pair: the same session runs the MLE cold (fills the
			// cache) and warm (one validate round trip).
			batched := strat != pdmtune.Recursive
			sess, err := sys.Open(
				pdmtune.WithLink(link),
				pdmtune.WithUser(pdmtune.DefaultUser("sim")),
				pdmtune.WithStrategy(strat),
				pdmtune.WithBatching(batched),
				pdmtune.WithCache(1<<20),
			)
			if err != nil {
				fail(err)
			}
			cold, err := sess.MultiLevelExpand(context.Background(), prod.RootID)
			if err != nil {
				fail(err)
			}
			warm, err := sess.MultiLevelExpand(context.Background(), prod.RootID)
			if err != nil {
				fail(err)
			}
			if err := sess.Close(); err != nil {
				fail(err)
			}
			records = append(records,
				record(scen, strat, cold, batched, false, true, false, false, false),
				record(scen, strat, warm, batched, false, true, true, false, false))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fail(err)
	}
}

// ---------------------------------------------------------------------------
// Multi-site topology: replica reads vs primary reads

// siteOutcome is one site's measured traffic in a topology run.
type siteOutcome struct {
	scen      costmodel.Tree
	site      string
	link      string
	syncStats pdmtune.SyncStats
	syncM     pdmtune.Metrics // the site meter: replication pulls on the WAN
	cold      *pdmtune.ActionResult
	repeat    *pdmtune.ActionResult
	wan       pdmtune.Metrics // the sessions' write-path traffic
	// Partial replication (-subscribe): the effective coverage fraction,
	// one MLE outside the subscription (which falls through to the
	// primary) and its charged fall-through round trips.
	coverage    float64
	outProbe    *pdmtune.ActionResult
	fallThrough int
}

// runSites builds one cluster per paper scenario with n replica sites
// (WAN links rotating over the paper's network profiles), syncs each
// site once, and measures a recursive MLE at every site — cold and
// repeated — plus the per-site sync volume. With subscribe > 0 each
// site subscribes to ceil(subscribe·β) of the root's subtrees before
// its first sync: the pull ships only the subscription closure (stamps
// stay full), the measured MLEs target a subscribed subtree, and one
// extra MLE targets an unsubscribed subtree to exercise fall-through.
func runSites(n int, staleness time.Duration, subscribe float64) []siteOutcome {
	ctx := context.Background()
	var out []siteOutcome
	for scenIdx, scen := range costmodel.PaperScenarios() {
		nets := costmodel.PaperNetworks()
		var cfgs []pdmtune.SiteConfig
		for i := 0; i < n; i++ {
			cfgs = append(cfgs, pdmtune.SiteConfig{
				Name: fmt.Sprintf("site%d", i+1),
				Link: pdmtune.LinkOf(nets[i%len(nets)]),
			})
		}
		cl, err := pdmtune.NewCluster(nil, cfgs...)
		if err != nil {
			fail(err)
		}
		prod, err := loadScenario(cl.Primary(), scen, int64(scenIdx+1))
		if err != nil {
			fail(err)
		}
		children := prod.Nodes[prod.RootID].Children
		subscribed, coverage := 0, 0.0
		target := prod.RootID
		if subscribe > 0 && len(children) > 1 {
			subscribed = int(math.Ceil(subscribe * float64(len(children))))
			if subscribed >= len(children) {
				subscribed = len(children) - 1 // keep one subtree out for the probe
			}
			coverage = float64(subscribed) / float64(len(children))
			target = children[0]
			for _, cfg := range cfgs {
				if err := cl.Subscribe(cfg.Name, children[:subscribed]...); err != nil {
					fail(err)
				}
			}
		}
		for _, cfg := range cfgs {
			stats, err := cl.SyncSite(ctx, cfg.Name)
			if err != nil {
				fail(err)
			}
			opts := []pdmtune.Option{
				pdmtune.WithUser(pdmtune.DefaultUser("sim")),
				pdmtune.WithStrategy(pdmtune.Recursive),
			}
			if staleness >= 0 {
				opts = append(opts, pdmtune.WithMaxStaleness(staleness))
			}
			sess, err := cl.OpenAt(ctx, cfg.Name, opts...)
			if err != nil {
				fail(err)
			}
			cold, err := sess.MultiLevelExpand(ctx, target)
			if err != nil {
				fail(err)
			}
			repeat, err := sess.MultiLevelExpand(ctx, target)
			if err != nil {
				fail(err)
			}
			o := siteOutcome{
				scen: scen, site: cfg.Name, link: cfg.Link.Name,
				syncStats: stats,
				cold:      cold, repeat: repeat,
				coverage: coverage,
				// wan is captured before the out-of-subscription probe, so
				// it shows the in-subscription reads' WAN cost: zero.
				wan: sess.WANMetrics(),
			}
			if subscribed > 0 {
				probe, err := sess.MultiLevelExpand(ctx, children[len(children)-1])
				if err != nil {
					fail(err)
				}
				o.outProbe = probe
				o.fallThrough = sess.WANMetrics().FallThroughRoundTrips
			}
			site, _ := cl.Site(cfg.Name)
			o.syncM = site.Metrics()
			out = append(out, o)
			if err := sess.Close(); err != nil {
				fail(err)
			}
		}
	}
	return out
}

func runSitesComparison(n int, staleness time.Duration, subscribe float64) {
	fmt.Printf("Multi-site topology — %d replica sites per scenario, recursive MLE read at\n", n)
	fmt.Println("each site over the LAN after one sync across the site's WAN link. The read")
	fmt.Println("costs zero WAN bytes; the sync pays the row volume once per change, not once")
	fmt.Println("per read. (PredictReplicated steady-state estimate in parentheses.)")
	if subscribe > 0 {
		fmt.Printf("Partial replication: each site subscribes to %.0f%% of the root's subtrees;\n", subscribe*100)
		fmt.Println("the sync ships only the closure, and the out-of-subscription MLE falls")
		fmt.Println("through to the primary at WAN cost.")
	}
	fmt.Println()
	lanNet := costmodel.Network{Name: "LAN", PacketBytes: 4096, LatencySec: 0.0005, RateKbps: 100 * 1024}
	var last string
	for _, o := range runSites(n, staleness, subscribe) {
		if o.scen.Name != last {
			fmt.Printf("Scenario %s\n", o.scen.Name)
			wan := costmodel.Model{Net: costmodel.PaperNetworks()[0], Tree: o.scen}.
				Predict(costmodel.MLE, costmodel.Recursive)
			fmt.Printf("  (primary read across the 256 kbit/s WAN: model %.2fs)\n", wan.TotalSec)
			last = o.scen.Name
		}
		model := costmodel.Model{Net: costmodel.PaperNetworks()[0], Tree: o.scen}.
			PredictReplicated(costmodel.MLE, costmodel.Recursive, lanNet, 0)
		fmt.Printf("  %-7s sync %8.0f KiB (%6d rows) across %-22s  cold MLE %6.3fs (%6.3fs)  repeat %6.3fs  WAN read bytes: %.0f\n",
			o.site, o.syncM.VolumeBytes()/1024, o.syncStats.Rows, o.link,
			o.cold.Metrics.TotalSec(), model.TotalSec, o.repeat.Metrics.TotalSec(),
			o.wan.VolumeBytes())
		if o.outProbe != nil {
			fmt.Printf("          coverage %.2f  shipped %d rows, skipped %d  out-of-sub MLE %6.3fs (%d fall-through rt)\n",
				o.coverage, o.syncM.SubscribedRows, o.syncM.SkippedRows,
				o.outProbe.Metrics.TotalSec(), o.fallThrough)
		}
	}
	fmt.Println()
}

// sitesJSONRecord is one site's record in the -sites -json output.
type sitesJSONRecord struct {
	Scenario        string  `json:"scenario"`
	Site            string  `json:"site"`
	Link            string  `json:"link"`
	SyncRoundTrips  int     `json:"sync_round_trips"`
	SyncRows        int     `json:"sync_rows"`
	SyncKeys        int     `json:"sync_keys"`
	SyncBytes       float64 `json:"sync_bytes"`
	SyncSec         float64 `json:"sync_sec"`
	ColdRoundTrips  int     `json:"cold_round_trips"`
	ColdSec         float64 `json:"cold_sec"`
	WarmRoundTrips  int     `json:"warm_round_trips"`
	WarmSec         float64 `json:"warm_sec"`
	WANReadBytes    float64 `json:"wan_read_bytes"`
	WANReadTrips    int     `json:"wan_read_round_trips"`
	Visible         int     `json:"visible"`
	EndToEndSeconds float64 `json:"end_to_end_sec"`
	// Partial replication (-subscribe > 0).
	Coverage              float64 `json:"coverage"`
	SubscribedRows        int     `json:"subscribed_rows"`
	SkippedRows           int     `json:"skipped_rows"`
	FallThroughRoundTrips int     `json:"fall_through_round_trips"`
	OutOfSubSec           float64 `json:"out_of_sub_sec"`
}

func runSitesJSON(n int, staleness time.Duration, subscribe float64) {
	var records []sitesJSONRecord
	for _, o := range runSites(n, staleness, subscribe) {
		r := sitesJSONRecord{
			Scenario:       o.scen.Name,
			Site:           o.site,
			Link:           o.link,
			SyncRoundTrips: o.syncM.SyncRoundTrips,
			SyncRows:       o.syncStats.Rows,
			SyncKeys:       o.syncStats.Keys,
			SyncBytes:      o.syncM.VolumeBytes(),
			SyncSec:        o.syncM.TotalSec(),
			ColdRoundTrips: o.cold.Metrics.RoundTrips,
			ColdSec:        o.cold.Metrics.TotalSec(),
			WarmRoundTrips: o.repeat.Metrics.RoundTrips,
			WarmSec:        o.repeat.Metrics.TotalSec(),
			WANReadBytes:   o.wan.VolumeBytes(),
			WANReadTrips:   o.wan.RoundTrips,
			Visible:        o.cold.Visible,
			EndToEndSeconds: o.syncM.TotalSec() +
				o.cold.Metrics.TotalSec() + o.repeat.Metrics.TotalSec(),
			Coverage:              o.coverage,
			SubscribedRows:        o.syncM.SubscribedRows,
			SkippedRows:           o.syncM.SkippedRows,
			FallThroughRoundTrips: o.fallThrough,
		}
		if o.outProbe != nil {
			r.OutOfSubSec = o.outProbe.Metrics.TotalSec()
		}
		records = append(records, r)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fail(err)
	}
}

// ---------------------------------------------------------------------------
// Engineering-change workloads (-whereused, -eco, -report)

// modeJSONRecord is one measured workload-mode run (BENCH_whereused /
// BENCH_eco / BENCH_report records): the simulation against the model's
// prediction, which must land within 25%.
type modeJSONRecord struct {
	Mode         string  `json:"mode"`
	Scenario     string  `json:"scenario"`
	Chain        int     `json:"chain,omitempty"`
	Rows         int     `json:"rows,omitempty"`
	Affected     int     `json:"affected,omitempty"`
	Updated      int     `json:"updated,omitempty"`
	Conflicts    int     `json:"conflicts,omitempty"`
	RoundTrips   int     `json:"round_trips"`
	MeasuredSec  float64 `json:"measured_sec"`
	PredictedSec float64 `json:"predicted_sec"`
	ErrorPct     float64 `json:"error_pct"`
}

// ecWorkload generates the engineering-change benchmark product (δ=5,
// β=4 — deterministic visibility so chain lengths are exact) and returns
// the system, its ground truth and the deepest visible component.
func ecWorkload() (*pdmtune.System, *pdmtune.Product, int64) {
	sys := pdmtune.NewSystem(nil)
	prod, err := sys.LoadProduct(pdmtune.ProductConfig{Depth: 5, Branch: 4, Sigma: 0.75, Seed: 11})
	if err != nil {
		fail(err)
	}
	part := int64(0)
	for id, n := range prod.Nodes {
		if n.Type == "comp" && n.Visible && n.Level == prod.Config.Depth && (part == 0 || id < part) {
			part = id
		}
	}
	if part == 0 {
		fail(fmt.Errorf("no visible leaf component in the generated product"))
	}
	return sys, prod, part
}

// checkAccuracy verifies the model prediction is within 25% of the
// simulation and returns the signed error percentage.
func checkAccuracy(mode string, measured, predicted float64) float64 {
	errPct := (measured - predicted) / predicted * 100
	if errPct > 25 || errPct < -25 {
		fail(fmt.Errorf("%s: model %.2fs vs simulated %.2fs (%.1f%% off, bar is 25%%)", mode, predicted, measured, errPct))
	}
	return errPct
}

func emitMode(jsonOut bool, rec modeJSONRecord, lines func()) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]modeJSONRecord{rec}); err != nil {
			fail(err)
		}
		return
	}
	lines()
}

func runWhereUsed(jsonOut bool) {
	net := costmodel.PaperNetworks()[0]
	sys, prod, part := ecWorkload()
	sess, err := sys.Open(
		pdmtune.WithLink(pdmtune.LinkOf(net)),
		pdmtune.WithUser(pdmtune.DefaultUser("ec")),
	)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	res, err := sess.WhereUsed(context.Background(), part)
	if err != nil {
		fail(err)
	}
	chain := prod.Nodes[part].Level // one ancestor per level above the part
	if res.Visible != chain {
		fail(fmt.Errorf("where-used found %d ancestors, ground truth has %d", res.Visible, chain))
	}
	scen := costmodel.Tree{Depth: prod.Config.Depth, Branch: prod.Config.Branch, Sigma: prod.Config.Sigma}
	predicted := costmodel.Model{Net: net, Tree: scen}.PredictWhereUsed(chain).TotalSec
	measured := res.Metrics.TotalSec()
	errPct := checkAccuracy("where-used", measured, predicted)
	emitMode(jsonOut, modeJSONRecord{
		Mode: "where-used", Scenario: scen.Name, Chain: chain,
		RoundTrips: res.Metrics.RoundTrips, MeasuredSec: measured,
		PredictedSec: predicted, ErrorPct: errPct,
	}, func() {
		fmt.Println("Where-used — inverse traversal from the deepest component (δ=5, β=4,")
		fmt.Println("256 kbit/s / 150 ms): one upward level query per ancestor level plus one")
		fmt.Println("set-oriented record fetch; model prediction in parentheses.")
		fmt.Printf("  chain=%d ancestors  rt=%d  T=%.2fs (%.2fs, %+.1f%%)\n\n",
			chain, res.Metrics.RoundTrips, measured, predicted, errPct)
	})
}

func runECO(jsonOut bool) {
	net := costmodel.PaperNetworks()[0]
	sys, prod, part := ecWorkload()
	ctx := context.Background()
	sess, err := sys.Open(
		pdmtune.WithLink(pdmtune.LinkOf(net)),
		pdmtune.WithUser(pdmtune.DefaultUser("ec")),
	)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	res, err := sess.ECOPropagate(ctx, part, "revised")
	if err != nil {
		fail(err)
	}
	chain := prod.Nodes[part].Level
	if len(res.Affected) != chain || res.Conflicts != 0 || res.Updated != chain+1 {
		fail(fmt.Errorf("ECO touched %d of %d affected assemblies (%d conflicts), expected a clean %d",
			res.Updated, len(res.Affected), res.Conflicts, chain+1))
	}
	// The conflict interaction: an ancestor checked out by another user
	// keeps its state, and the ECO reports it instead of updating it.
	holder, err := sys.Open(pdmtune.WithLink(pdmtune.LinkOf(net)), pdmtune.WithUser(pdmtune.DefaultUser("holder")))
	if err != nil {
		fail(err)
	}
	defer holder.Close()
	if _, err := holder.CheckOutViaProcedure(ctx, res.Affected[0]); err != nil {
		fail(err)
	}
	contested, err := sess.ECOPropagate(ctx, part, "frozen")
	if err != nil {
		fail(err)
	}
	if contested.Conflicts == 0 {
		fail(fmt.Errorf("ECO against a checked-out ancestor reported no conflicts"))
	}
	scen := costmodel.Tree{Depth: prod.Config.Depth, Branch: prod.Config.Branch, Sigma: prod.Config.Sigma}
	predicted := costmodel.Model{Net: net, Tree: scen}.PredictECO(chain).TotalSec
	measured := res.Metrics.TotalSec()
	errPct := checkAccuracy("eco", measured, predicted)
	emitMode(jsonOut, modeJSONRecord{
		Mode: "eco", Scenario: scen.Name, Chain: chain,
		Affected: len(res.Affected), Updated: res.Updated, Conflicts: contested.Conflicts,
		RoundTrips: res.Metrics.RoundTrips, MeasuredSec: measured,
		PredictedSec: predicted, ErrorPct: errPct,
	}, func() {
		fmt.Println("ECO propagation — touch the deepest component, revalidate its where-used")
		fmt.Println("closure with check-out-conditional updates (δ=5, β=4, 256 kbit/s / 150 ms);")
		fmt.Println("model prediction in parentheses.")
		fmt.Printf("  chain=%d  updated=%d  rt=%d  T=%.2fs (%.2fs, %+.1f%%)\n", chain, res.Updated,
			res.Metrics.RoundTrips, measured, predicted, errPct)
		fmt.Printf("  with a checked-out ancestor: %d conflict(s) reported, state kept\n\n", contested.Conflicts)
	})
}

func runReport(jsonOut bool) {
	net := costmodel.PaperNetworks()[0]
	sys, prod, _ := ecWorkload()
	sess, err := sys.Open(
		pdmtune.WithLink(pdmtune.LinkOf(net)),
		pdmtune.WithUser(pdmtune.DefaultUser("ec")),
	)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	res, err := sess.Report(context.Background(), prod.Config.ProdID)
	if err != nil {
		fail(err)
	}
	rows := prod.AllNodes() + 1
	if res.Assemblies+res.Components != rows {
		fail(fmt.Errorf("report scanned %d nodes, product has %d", res.Assemblies+res.Components, rows))
	}
	scen := costmodel.Tree{Depth: prod.Config.Depth, Branch: prod.Config.Branch, Sigma: prod.Config.Sigma}
	predicted := costmodel.Model{Net: net, Tree: scen}.PredictReport(rows).TotalSec
	measured := res.Metrics.TotalSec()
	errPct := checkAccuracy("report", measured, predicted)
	emitMode(jsonOut, modeJSONRecord{
		Mode: "report", Scenario: scen.Name, Rows: rows,
		RoundTrips: res.Metrics.RoundTrips, MeasuredSec: measured,
		PredictedSec: predicted, ErrorPct: errPct,
	}, func() {
		fmt.Println("Bulk reporting scan — per-product aggregates from two set-oriented scans")
		fmt.Println("(δ=5, β=4, 256 kbit/s / 150 ms); model prediction in parentheses.")
		fmt.Printf("  %d nodes (%d assy + %d comp, %d checked out, weight %.1f)  rt=%d  T=%.2fs (%.2fs, %+.1f%%)\n\n",
			rows, res.Assemblies, res.Components, res.CheckedOut, res.TotalWeight,
			res.Metrics.RoundTrips, measured, predicted, errPct)
	})
}

// ---------------------------------------------------------------------------
// Check-out comparison (Section 6)

func runCheckout() {
	fmt.Println("Check-out comparison (Section 6) — δ=4, β=4, σ=0.5, 256 kbit/s / 150 ms")
	sys := pdmtune.NewSystem(nil)
	prod, err := sys.LoadProduct(pdmtune.ProductConfig{Depth: 4, Branch: 4, Sigma: 0.5, Seed: 3})
	if err != nil {
		fail(err)
	}
	link := pdmtune.Intercontinental()
	ctx := context.Background()
	type mode struct {
		name string
		run  func(s *pdmtune.Session) (*pdmtune.CheckOutResult, error)
		str  pdmtune.Strategy
	}
	modes := []mode{
		{"navigational (early eval)", func(s *pdmtune.Session) (*pdmtune.CheckOutResult, error) {
			return s.CheckOut(ctx, prod.RootID)
		}, pdmtune.EarlyEval},
		{"recursive + updates", func(s *pdmtune.Session) (*pdmtune.CheckOutResult, error) {
			return s.CheckOut(ctx, prod.RootID)
		}, pdmtune.Recursive},
		{"stored procedure", func(s *pdmtune.Session) (*pdmtune.CheckOutResult, error) {
			return s.CheckOutViaProcedure(ctx, prod.RootID)
		}, pdmtune.Recursive},
	}
	for i, m := range modes {
		sess, err := sys.Open(
			pdmtune.WithLink(link),
			pdmtune.WithUser(pdmtune.DefaultUser(fmt.Sprintf("user%d", i))),
			pdmtune.WithStrategy(m.str),
		)
		if err != nil {
			fail(err)
		}
		res, err := m.run(sess)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-28s granted=%-5v updated=%-5d rt=%-5d T=%8.2fs\n",
			m.name, res.Granted, res.Updated, res.Metrics.RoundTrips, res.Metrics.TotalSec())
		if _, err := sess.CheckInViaProcedure(ctx, prod.RootID); err != nil {
			fail(err)
		}
		if err := sess.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Ablations

func runAblation() {
	fmt.Println("Ablation 1 — packet size sweep (δ=9, β=3, σ=0.6, 256 kbit/s / 150 ms, MLE)")
	tree := costmodel.PaperScenarios()[1]
	for _, packet := range []float64{512, 1024, 4096, 16384} {
		net := costmodel.Network{PacketBytes: packet, LatencySec: 0.15, RateKbps: 256}
		late := costmodel.Model{Net: net, Tree: tree}.Predict(costmodel.MLE, costmodel.LateEval)
		rec := costmodel.Model{Net: net, Tree: tree}.Predict(costmodel.MLE, costmodel.Recursive)
		fmt.Printf("  packet=%6.0fB  late=%8.2fs  recursive=%6.2fs  saving=%.2f%%\n",
			packet, late.TotalSec, rec.TotalSec, costmodel.SavingPct(late, rec))
	}
	fmt.Println()

	fmt.Println("Ablation 2 — σ sweep (δ=9, β=3, 256 kbit/s / 150 ms, MLE savings)")
	for _, sigma := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		t := costmodel.Tree{Depth: 9, Branch: 3, Sigma: sigma}
		net := costmodel.PaperNetworks()[0]
		late := costmodel.Model{Net: net, Tree: t}.Predict(costmodel.MLE, costmodel.LateEval)
		early := costmodel.Model{Net: net, Tree: t}.Predict(costmodel.MLE, costmodel.EarlyEval)
		rec := costmodel.Model{Net: net, Tree: t}.Predict(costmodel.MLE, costmodel.Recursive)
		fmt.Printf("  σ=%.1f  late=%9.2fs  early=%9.2fs (%5.2f%%)  recursive=%7.2fs (%5.2f%%)\n",
			sigma, late.TotalSec, early.TotalSec, costmodel.SavingPct(late, early),
			rec.TotalSec, costmodel.SavingPct(late, rec))
	}
	fmt.Println()

	fmt.Println("Ablation 3 — paper packet accounting vs exact bytes (simulated, δ=3, β=9, MLE)")
	sys := pdmtune.NewSystem(nil)
	prod, err := sys.LoadProduct(pdmtune.ProductConfig{
		Depth: 3, Branch: 9, Sigma: 0.6, Seed: 1, RandomVisibility: true,
	})
	if err != nil {
		fail(err)
	}
	for _, exact := range []bool{false, true} {
		link := pdmtune.Intercontinental()
		link.ExactBytes = exact
		for _, strat := range []pdmtune.Strategy{pdmtune.LateEval, pdmtune.Recursive} {
			sess, err := sys.Open(
				pdmtune.WithLink(link),
				pdmtune.WithUser(pdmtune.DefaultUser("abl")),
				pdmtune.WithStrategy(strat),
			)
			if err != nil {
				fail(err)
			}
			res, err := sess.Run(context.Background(), pdmtune.MLE, prod.RootID)
			if err != nil {
				fail(err)
			}
			if err := sess.Close(); err != nil {
				fail(err)
			}
			name := "paper-packets"
			if exact {
				name = "exact-bytes"
			}
			fmt.Printf("  %-14s %-10s T=%8.2fs vol=%8.0f KiB\n",
				name, strat.String(), res.Metrics.TotalSec(), res.Metrics.VolumeBytes()/1024)
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Failover (-failover)

// failoverJSONRecord is the BENCH_failover.json record: one measured
// kill-the-primary run.
type failoverJSONRecord struct {
	Scenario         string  `json:"scenario"`
	Sites            int     `json:"sites"`
	WritesAcked      int     `json:"writes_acked"`
	WritesRefused    int     `json:"writes_refused_primaryless"`
	TimeToRecoverSec float64 `json:"time_to_recover_sec"`
	LostAckedWrites  int     `json:"lost_acked_writes"`
	DumpsConverged   bool    `json:"dumps_converged"`
	FencingTerm      uint64  `json:"fencing_term"`
	HealthProbes     int     `json:"health_probes"`
	ProbeFailures    int     `json:"probe_failures"`
}

// runFailover builds a two-replica cluster, drives check-out/check-in
// traffic from a replica session, kills the primary's transport, and
// measures the health-checked failover: how long until a write commits
// again, how many writes were structurally refused while the cluster
// was primary-less, and — after the old primary rejoins — that no
// acknowledged write was lost anywhere.
func runFailover(jsonOut bool) {
	cl, err := pdmtune.NewCluster(nil,
		pdmtune.SiteConfig{Name: "munich"}, pdmtune.SiteConfig{Name: "tokyo"})
	if err != nil {
		fail(err)
	}
	prod, err := cl.LoadProduct(pdmtune.ProductConfig{Depth: 4, Branch: 3, Sigma: 0.7, Seed: 42})
	if err != nil {
		fail(err)
	}
	ctx := context.Background()
	if err := cl.SyncAll(ctx); err != nil {
		fail(err)
	}
	plan := &netsim.FaultPlan{}
	cl.SetTransportWrapper(func(target string, tr pdmtune.Transport) pdmtune.Transport {
		if target == pdmtune.PrimarySite {
			return netsim.NewFaultInjector(tr, plan)
		}
		return tr
	})
	sess, err := cl.OpenAt(ctx, "munich")
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	ck := cl.WatchPrimary(pdmtune.HealthConfig{Threshold: 3})

	acked := 0
	// cycle runs one check-out/check-in pair, counting each granted op
	// as one acknowledged write. A pair left half-done by an outage is
	// completed by the next call: the re-checkout is denied (the user
	// still holds the subtree) and the check-in releases it.
	cycle := func() error {
		res, err := sess.CheckOut(ctx, prod.RootID)
		if err != nil {
			return err
		}
		if res.Granted {
			acked++
		}
		res, err = sess.CheckIn(ctx, prod.RootID)
		if err != nil {
			return err
		}
		if res.Granted {
			acked++
		}
		return nil
	}
	for i := 0; i < 5; i++ {
		if err := cycle(); err != nil {
			fail(err)
		}
	}

	// Kill the primary's transport and keep writing. Every refusal is a
	// structured error (never a silent drop); each one drives a health
	// probe, so after Threshold failed probes the checker auto-promotes
	// the best replica and the next write lands on the new primary.
	plan.Kill()
	killedAt := time.Now()
	refused := 0
	recoverSec := float64(0)
	for {
		if err := cycle(); err != nil {
			refused++
			ck.CheckNow(ctx)
			if refused > 1000 {
				fail(fmt.Errorf("no recovery after %d refused writes: %w", refused, err))
			}
			continue
		}
		recoverSec = time.Since(killedAt).Seconds()
		break
	}
	for i := 0; i < 5; i++ {
		if err := cycle(); err != nil {
			fail(err)
		}
	}

	// The dead primary comes back and rejoins as a replica; after one
	// full sync round every database must agree, and every acknowledged
	// check-in must have survived (no subtree left checked out).
	plan.Revive()
	if _, err := cl.Rejoin(ctx); err != nil {
		fail(err)
	}
	if err := cl.SyncAll(ctx); err != nil {
		fail(err)
	}
	dump := func(site string) string {
		s, err := cl.OpenAt(ctx, site)
		if err != nil {
			fail(err)
		}
		defer s.Close()
		var b strings.Builder
		for _, table := range []string{"assy", "comp", "link"} {
			resp, err := s.Exec(ctx, "SELECT * FROM "+table)
			if err != nil {
				fail(err)
			}
			lines := make([]string, 0, len(resp.Rows))
			for _, row := range resp.Rows {
				parts := make([]string, len(row))
				for j, v := range row {
					parts[j] = v.String()
				}
				lines = append(lines, table+"|"+strings.Join(parts, "|"))
			}
			sort.Strings(lines)
			b.WriteString(strings.Join(lines, "\n"))
			b.WriteByte('\n')
		}
		return b.String()
	}
	primaryName := cl.PrimaryName()
	want := dump(primaryName)
	converged := true
	for _, site := range cl.SiteNames() {
		if site != primaryName && dump(site) != want {
			converged = false
		}
	}
	lost := 0
	{
		s, err := cl.OpenAt(ctx, primaryName)
		if err != nil {
			fail(err)
		}
		defer s.Close()
		for _, table := range []string{"assy", "comp"} {
			resp, err := s.Exec(ctx, "SELECT obid FROM "+table+" WHERE checkedout = TRUE")
			if err != nil {
				fail(err)
			}
			lost += len(resp.Rows)
		}
	}
	hm := cl.HealthMetrics()

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]failoverJSONRecord{{
			Scenario:         "kill-primary",
			Sites:            len(cl.SiteNames()),
			WritesAcked:      acked,
			WritesRefused:    refused,
			TimeToRecoverSec: recoverSec,
			LostAckedWrites:  lost,
			DumpsConverged:   converged,
			FencingTerm:      cl.Term(),
			HealthProbes:     hm.HealthProbes,
			ProbeFailures:    hm.ProbeFailures,
		}}); err != nil {
			fail(err)
		}
		if lost != 0 || !converged {
			fail(fmt.Errorf("failover lost %d acknowledged writes (converged=%v)", lost, converged))
		}
		return
	}
	fmt.Println("Failover — primary killed under check-out/check-in traffic (δ=4, β=3, 2 sites)")
	fmt.Printf("  new primary %q at fencing term %d after %d health probes (%d failed)\n",
		primaryName, cl.Term(), hm.HealthProbes, hm.ProbeFailures)
	fmt.Printf("  writes acknowledged: %d   refused while primary-less: %d   lost: %d\n",
		acked, refused, lost)
	fmt.Printf("  time to recover (kill -> first committed write): %.3fs\n", recoverSec)
	fmt.Printf("  databases converged after rejoin: %v\n", converged)
	fmt.Println()
	if lost != 0 || !converged {
		fail(fmt.Errorf("failover lost %d acknowledged writes (converged=%v)", lost, converged))
	}
}
