package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"pdmtune/internal/minisql/parser"
	"pdmtune/internal/minisql/token"
)

// The -parse mode measures the server's SQL front end in isolation:
// tokenizer and parser throughput (MB/s) and allocations per statement,
// on the two statement shapes that dominate the PDM workload. "warm" is
// the steady-state path (reused token buffer / reused parser arena, what
// a busy server session pays per statement); "cold" is the one-shot path
// (fresh buffers, what a plan-cache miss pays).

// parseBenchSelect is the shape of the per-level expand statement the
// client issues thousands of times per multi-level expand.
const parseBenchSelect = "SELECT type, obid, name, dec FROM assy JOIN link ON assy.obid = link.left WHERE assy.dec = 'released' AND link.right IN (1, 2, 3)"

// parseBenchRecursiveMLE is the paper's Section 5.2 single-statement
// recursive multi-level expansion — the largest statement in the workload.
const parseBenchRecursiveMLE = `WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC", left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl) AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2`

// parseJSONRecord is one measured front-end configuration in the
// -parse -json output, stable field names for trajectory tracking.
type parseJSONRecord struct {
	Stage          string  `json:"stage"` // tokenize | parse
	Statement      string  `json:"statement"`
	Mode           string  `json:"mode"` // warm | cold
	StatementBytes int     `json:"statement_bytes"`
	NsPerOp        float64 `json:"ns_per_op"`
	MBPerSec       float64 `json:"mb_per_sec"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
}

// measureParse runs one front-end benchmark body under the standard
// benchmark harness and converts the result into a record.
func measureParse(stage, statement, mode, sql string, body func(b *testing.B)) parseJSONRecord {
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(sql)))
		b.ReportAllocs()
		body(b)
	})
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	return parseJSONRecord{
		Stage:          stage,
		Statement:      statement,
		Mode:           mode,
		StatementBytes: len(sql),
		NsPerOp:        ns,
		MBPerSec:       float64(len(sql)) / ns * 1e9 / (1 << 20),
		AllocsPerOp:    res.AllocsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
	}
}

// runParse measures tokenizer and parser throughput on the expand and
// recursive-MLE statements, warm and cold, and prints a table (or a JSON
// array with -json).
func runParse(jsonOut bool) {
	stmts := []struct{ name, sql string }{
		{"expand-select", parseBenchSelect},
		{"recursive-mle", parseBenchRecursiveMLE},
	}
	var records []parseJSONRecord
	for _, st := range stmts {
		sql := st.sql
		records = append(records,
			measureParse("tokenize", st.name, "warm", sql, func(b *testing.B) {
				var toks []token.Token
				var err error
				for i := 0; i < b.N; i++ {
					toks, err = token.Tokenize(sql, toks[:0])
					if err != nil {
						b.Fatal(err)
					}
				}
			}),
			measureParse("tokenize", st.name, "cold", sql, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := token.NewLexer(sql).All(); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measureParse("parse", st.name, "warm", sql, func(b *testing.B) {
				p := parser.New()
				for i := 0; i < b.N; i++ {
					if _, err := p.Statement(sql); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measureParse("parse", st.name, "cold", sql, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := parser.Parse(sql); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println("SQL front end — tokenizer and parser throughput on the workload's statement")
	fmt.Println("shapes. warm = reused token buffer / parser arena (the per-statement cost of")
	fmt.Println("a busy session); cold = fresh buffers (the cost of a plan-cache miss).")
	fmt.Println()
	fmt.Printf("%-10s %-15s %-5s %7s %10s %10s %8s %10s\n",
		"stage", "statement", "mode", "bytes", "ns/op", "MB/s", "allocs", "B/op")
	for _, r := range records {
		fmt.Printf("%-10s %-15s %-5s %7d %10.0f %10.1f %8d %10d\n",
			r.Stage, r.Statement, r.Mode, r.StatementBytes,
			r.NsPerOp, r.MBPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
}
