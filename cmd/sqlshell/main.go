// Command sqlshell is an interactive REPL for the minisql engine —
// handy for poking at the PDM schema and trying the paper's queries
// directly (it accepts the Section 5 recursive queries verbatim).
//
//	sqlshell                  # empty database
//	sqlshell -paper-example   # with the paper's Figure 2 data loaded
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pdmtune"
	"pdmtune/internal/minisql"
)

func main() {
	paperExample := flag.Bool("paper-example", false, "load the paper's Figure 2 example data")
	flag.Parse()

	sys := pdmtune.NewSystem(nil)
	if *paperExample {
		if err := sys.LoadPaperExample(); err != nil {
			fmt.Fprintln(os.Stderr, "sqlshell:", err)
			os.Exit(1)
		}
		fmt.Println("paper Figure 2 example loaded; try:")
		fmt.Println("  SELECT * FROM assy;")
		fmt.Println("  WITH RECURSIVE rtbl (obid) AS (SELECT obid FROM assy WHERE obid = 1")
		fmt.Println("    UNION SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left)")
		fmt.Println("    SELECT COUNT(*) FROM rtbl;")
	}
	session := sys.DB.NewSession()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "quit" || trimmed == "exit" || trimmed == `\q`) {
			return
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("...> ")
			continue
		}
		execute(session, buf.String())
		buf.Reset()
		fmt.Print("sql> ")
	}
}

func execute(session *minisql.Session, sql string) {
	res, err := session.ExecScript(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Cols != nil {
		fmt.Println(strings.Join(res.Cols, " | "))
		fmt.Println(strings.Repeat("-", 4+8*len(res.Cols)))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
}
