// Command pdmserver runs a PDM database server over TCP: the minisql
// engine loaded with a generated product structure (or the paper's
// Figure 2 example), fronted by the wire protocol. Combined with
// cmd/pdmclient it demonstrates the paper's phenomenon live — the same
// action is fast against a LAN-ish server and painful across a
// simulated intercontinental link.
//
//	pdmserver -addr :7070 -depth 5 -branch 4 -sigma 0.6
//	pdmserver -addr :7070 -paper-example
package main

import (
	"flag"
	"log"
	"net"

	"pdmtune"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	depth := flag.Int("depth", 5, "product tree depth δ")
	branch := flag.Int("branch", 4, "product tree branching β")
	sigma := flag.Float64("sigma", 0.6, "branch visibility probability σ")
	seed := flag.Int64("seed", 1, "generator seed")
	paperExample := flag.Bool("paper-example", false, "load the paper's Figure 2 example instead of a generated tree")
	flag.Parse()

	sys := pdmtune.NewSystem(nil)
	if *paperExample {
		if err := sys.LoadPaperExample(); err != nil {
			log.Fatalf("pdmserver: loading paper example: %v", err)
		}
		log.Printf("loaded paper Figure 2 example (root object 1)")
	} else {
		prod, err := sys.LoadProduct(pdmtune.ProductConfig{
			Depth: *depth, Branch: *branch, Sigma: *sigma, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("pdmserver: generating product: %v", err)
		}
		log.Printf("generated product: δ=%d β=%d σ=%.2f, %d nodes (%d visible), root object %d",
			*depth, *branch, *sigma, prod.AllNodes(), prod.VisibleNodes(), prod.RootID)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pdmserver: listen: %v", err)
	}
	log.Printf("PDM server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("pdmserver: accept: %v", err)
		}
		go func(c net.Conn) {
			defer c.Close()
			log.Printf("client %s connected", c.RemoteAddr())
			sc := sys.Server.NewConn()
			if err := sc.Serve(c); err != nil {
				log.Printf("client %s: %v", c.RemoteAddr(), err)
			}
			log.Printf("client %s disconnected", c.RemoteAddr())
		}(conn)
	}
}
