// Command pdmclient is an interactive PDM client for a pdmserver: it
// connects over TCP, optionally shaping traffic like the paper's
// Germany↔Brazil WAN (delays scaled down so a "30-minute" expand takes
// seconds), and offers the paper's user actions as commands.
//
//	pdmclient -addr localhost:7070 -strategy recursive -wan -scale 0.01
//
// Commands:
//
//	expand <obid>     single-level expand
//	mle <obid>        multi-level expand
//	query <prod>      set-oriented query
//	checkout <obid>   check out a subtree (stored procedure)
//	checkin <obid>    check a subtree back in
//	sql <statement>   raw SQL
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"pdmtune"
	"pdmtune/internal/core"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "server address")
	strategy := flag.String("strategy", "recursive", "late | early | recursive")
	user := flag.String("user", "scott", "user name")
	wan := flag.Bool("wan", false, "shape traffic like the 256 kbit/s / 150 ms WAN")
	scale := flag.Float64("scale", 0.01, "real-delay scale factor for -wan")
	flag.Parse()

	var strat pdmtune.Strategy
	switch *strategy {
	case "late":
		strat = pdmtune.LateEval
	case "early":
		strat = pdmtune.EarlyEval
	case "recursive":
		strat = pdmtune.Recursive
	default:
		log.Fatalf("pdmclient: unknown strategy %q", *strategy)
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("pdmclient: %v", err)
	}
	defer conn.Close()

	link := pdmtune.Intercontinental()
	var stream = conn
	var transport wire.Transport = &wire.StreamChannel{Stream: stream}
	if *wan {
		transport = &wire.StreamChannel{Stream: &netsim.DelayedConn{Stream: conn, Link: link, Scale: *scale}}
		fmt.Printf("traffic shaped: %s at %.0f%% real time\n", link, *scale*100)
	}
	// Charge real round trips to a meter so the client can report what
	// the exchange would cost on the unscaled WAN.
	meter := netsim.NewMeter(link)
	client := core.NewClient(wire.Metered(transport, meter), meter,
		pdmtune.StandardRules(), pdmtune.DefaultUser(*user), costmodel.Strategy(strat))
	// Release the server-side prepared-statement registry on exit.
	defer client.Close(context.Background())

	fmt.Printf("connected to %s as %s (strategy: %s)\n", *addr, *user, strat)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("pdm> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := run(client, meter, line); quit {
				return
			}
		}
		fmt.Print("pdm> ")
	}
}

func run(client *core.Client, meter *netsim.Meter, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	arg := int64(0)
	if len(fields) > 1 {
		arg, _ = strconv.ParseInt(fields[1], 10, 64)
	}
	meter.Reset()
	switch cmd {
	case "quit", "exit":
		return true
	case "expand":
		res, err := client.Expand(context.Background(), arg)
		report(res, err)
	case "mle":
		res, err := client.MultiLevelExpand(context.Background(), arg)
		report(res, err)
	case "query":
		res, err := client.QueryAll(context.Background(), arg)
		report(res, err)
	case "checkout":
		res, err := client.CheckOutViaProcedure(context.Background(), arg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("granted=%v updated=%d (%s)\n", res.Granted, res.Updated, res.Metrics)
	case "checkin":
		res, err := client.CheckInViaProcedure(context.Background(), arg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("updated=%d (%s)\n", res.Updated, res.Metrics)
	case "sql":
		resp, err := client.Exec(context.Background(), strings.TrimSpace(strings.TrimPrefix(line, "sql")))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if resp.Cols != nil {
			fmt.Println(strings.Join(resp.Cols, " | "))
			for _, row := range resp.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
		}
		fmt.Printf("%d rows, %d affected (%s)\n", len(resp.Rows), resp.RowsAffected, meter.Metrics)
	default:
		fmt.Println("commands: expand N | mle N | query P | checkout N | checkin N | sql ... | quit")
	}
	return false
}

func report(res *core.ActionResult, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d objects visible, %d rows received\n", res.Visible, res.RowsReceived)
	if res.Tree != nil && res.Tree.Root != nil {
		printTree(res.Tree.Root, 0, 3)
	}
	fmt.Printf("WAN (unscaled): %s\n", res.Metrics)
}

func printTree(n *core.Node, depth, maxDepth int) {
	if depth > maxDepth {
		return
	}
	fmt.Printf("%s%s %d %s\n", strings.Repeat("  ", depth), n.Type, n.ObID, n.Name)
	shown := 0
	for _, c := range n.Children {
		if shown >= 5 {
			fmt.Printf("%s... (%d more)\n", strings.Repeat("  ", depth+1), len(n.Children)-shown)
			break
		}
		printTree(c, depth+1, maxDepth)
		shown++
	}
}
