package subscribe_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pdmtune/internal/core"
	"pdmtune/internal/minisql"
	"pdmtune/internal/subscribe"
	"pdmtune/internal/workload"
)

// TestClosureTracksRandomLinkMutations is the closure maintenance
// property test: after any sequence of random link insertions and
// deletions, the incrementally-maintained closure must equal the one a
// fresh registry computes from scratch over the same database.
func TestClosureTracksRandomLinkMutations(t *testing.T) {
	db := minisql.NewDB()
	core.RegisterProcedures(db, core.StandardRules())
	sess := db.NewSession()
	prod, err := workload.Generate(sess, workload.Config{Depth: 4, Branch: 3, Sigma: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	roots := prod.Nodes[prod.RootID].Children[:1]
	reg := subscribe.New(db)
	reg.Subscribe("site", roots...)
	if got := reg.Closure("site"); len(got) == 0 {
		t.Fatal("empty initial closure")
	}

	// The mutation pool: every node can become a link endpoint. Random
	// edges may create diamonds and even cycles — the closure is a graph
	// reachability, not a tree walk, and must stay correct regardless.
	var ids []int64
	for id := range prod.Nodes {
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(99))
	nextObID := int64(workload.LinkIDBase + 500_000)
	var inserted []int64
	for step := 0; step < 60; step++ {
		if len(inserted) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(inserted))
			obid := inserted[i]
			inserted = append(inserted[:i], inserted[i+1:]...)
			if _, err := sess.Exec(fmt.Sprintf("DELETE FROM link WHERE obid = %d", obid)); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
		} else {
			parent := ids[rng.Intn(len(ids))]
			child := ids[rng.Intn(len(ids))]
			nextObID++
			if _, err := sess.Exec(fmt.Sprintf(
				"INSERT INTO link (type, obid, left, right, eff_from, eff_to, strc_opt) VALUES ('link', %d, %d, %d, 0, 99999, '%s')",
				nextObID, parent, child, workload.VisibleOption)); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			inserted = append(inserted, nextObID)
		}

		got := reg.Closure("site")
		fresh := subscribe.New(db)
		fresh.Subscribe("site", roots...)
		want := fresh.Closure("site")
		if len(got) != len(want) {
			t.Fatalf("step %d: incremental closure has %d ids, from-scratch %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: closures diverge at index %d: incremental %d, from-scratch %d",
					step, i, got[i], want[i])
			}
		}
	}
}

// TestFilterKeepsNonStructureTables pins the filter contract: only the
// five structure tables are bounded by a subscription; any other table
// replicates in full.
func TestFilterKeepsNonStructureTables(t *testing.T) {
	db := minisql.NewDB()
	core.RegisterProcedures(db, core.StandardRules())
	prod, err := workload.Generate(db.NewSession(), workload.Config{Depth: 2, Branch: 2, Sigma: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := subscribe.New(db)
	reg.Subscribe("site", prod.Nodes[prod.RootID].Children[0])
	keep, holds, ok := reg.FilterFor("site")
	if !ok {
		t.Fatal("subscribed site resolved to no filter")
	}
	if len(holds) == 0 {
		t.Fatal("empty closure for a subscribed subtree")
	}
	if !keep("some_catalog", 42) {
		t.Error("non-structure table filtered out")
	}
	if keep("assy", prod.RootID) {
		t.Error("product root is outside the subscribed subtree but kept")
	}
	if !keep("assy", holds[0]) {
		t.Error("closure member not kept")
	}
	if reg.Subscribed("other") {
		t.Error("unsubscribed site reported as subscribed")
	}
	if _, _, ok := reg.FilterFor("other"); ok {
		t.Error("unsubscribed site resolved to a filter")
	}
}
