// Package subscribe implements partial replication by product
// subscription: a site registers a set of product subtree roots, the
// registry resolves them — via the link structure of the primary's
// database — to the closure of version keys below them, and the sync
// path ships a site only the rows of its closure. The closure is
// maintained incrementally as links change: every refresh asks the
// version log for the keys modified since the last one and re-derives
// only those adjacency entries, so steady-state maintenance cost is
// proportional to the write rate, not the database size.
package subscribe

import (
	"sort"
	"sync"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

// structureTables are the tables a subscription bounds; every other
// table (rule catalogs, future extensions) replicates in full. link
// rows are version-keyed by their left (parent) object and
// specified_by rows by their left (component) object, so one closure
// over object ids covers the row sets of all five tables.
var structureTables = map[string]bool{
	"assy": true, "comp": true, "link": true, "spec": true, "specified_by": true,
}

// IsStructureTable reports whether a subscription filter applies to
// the named table.
func IsStructureTable(name string) bool { return structureTables[name] }

// Registry resolves per-site subscriptions against one primary
// database. It is safe for concurrent use (the wire server resolves
// filters from connection goroutines while the control plane
// subscribes and promotes).
type Registry struct {
	mu sync.Mutex
	db *minisql.DB
	// roots maps a site to its subscribed subtree roots.
	roots map[string][]int64
	// children is the downward adjacency (link ∪ specified_by) the
	// closures are computed over, maintained incrementally.
	children map[int64][]int64
	// built marks the adjacency as initialized; lastEpoch is the
	// version-log epoch the adjacency is current to.
	built     bool
	lastEpoch uint64
}

// New creates a registry resolving closures against db.
func New(db *minisql.DB) *Registry {
	return &Registry{db: db, roots: map[string][]int64{}}
}

// Subscribe registers (or replaces) a site's subscription: the site
// will be shipped exactly the closure of the given subtree roots.
func (r *Registry) Subscribe(site string, roots ...int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roots[site] = append([]int64(nil), roots...)
}

// Unsubscribe removes a site's subscription; its next pull ships the
// full delta again.
func (r *Registry) Unsubscribe(site string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.roots, site)
}

// Subscribed reports whether the site has a subscription.
func (r *Registry) Subscribed(site string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.roots[site]
	return ok
}

// Roots returns a site's subscribed subtree roots (nil when the site
// has no subscription).
func (r *Registry) Roots(site string) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.roots[site]...)
}

// Sites lists every subscribed site, sorted.
func (r *Registry) Sites() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.roots))
	for s := range r.roots {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Retarget re-points the registry at a new primary database (the
// promotion hand-over). The adjacency is rebuilt from scratch on the
// next resolution — the new primary's version log numbers epochs
// differently than the old one's incremental state assumed.
func (r *Registry) Retarget(db *minisql.DB) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.db = db
	r.built = false
	r.children = nil
	r.lastEpoch = 0
}

// FilterFor resolves a site's subscription into a sync filter: a keep
// predicate over (table, version key) and the sorted closure of object
// ids the site holds after applying a delta filtered by it. ok is
// false when the site has no subscription (full replication). The
// returned predicate is immutable — later refreshes build new closure
// maps — so it is safe to use after the registry moves on.
func (r *Registry) FilterFor(site string) (keep func(table string, key int64) bool, holds []int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	roots, ok := r.roots[site]
	if !ok {
		return nil, nil, false
	}
	r.refreshLocked()
	cl := r.closureLocked(roots)
	holds = make([]int64, 0, len(cl))
	for k := range cl {
		holds = append(holds, k)
	}
	sort.Slice(holds, func(i, j int) bool { return holds[i] < holds[j] })
	keep = func(table string, key int64) bool {
		if !structureTables[table] {
			return true
		}
		return cl[key]
	}
	return keep, holds, true
}

// Closure returns the current closure of a site's subscription as a
// sorted id list (nil when the site has no subscription).
func (r *Registry) Closure(site string) []int64 {
	_, holds, ok := r.FilterFor(site)
	if !ok {
		return nil
	}
	return holds
}

// refreshLocked brings the adjacency up to the version log: a full
// link scan on first use, then only the modified keys' entries.
func (r *Registry) refreshLocked() {
	if r.db == nil {
		return
	}
	stamps, epoch := r.db.ModifiedSince(r.lastEpoch)
	if !r.built {
		r.children = map[int64][]int64{}
		sess := r.db.NewSession()
		for _, table := range []string{"link", "specified_by"} {
			res, err := sess.Exec("SELECT left, right FROM " + table)
			if err != nil {
				continue // table not created yet: nothing to traverse
			}
			for _, row := range res.Rows {
				l, rr, ok := edgeOf(row)
				if !ok {
					continue
				}
				r.children[l] = append(r.children[l], rr)
			}
		}
		r.built = true
		r.lastEpoch = epoch
		return
	}
	if len(stamps) == 0 {
		return
	}
	// Incremental: a modified version key k may mean "the link rows
	// under parent k changed" (link and specified_by are keyed by
	// left), so k's adjacency entry is re-derived from scratch. Object
	// mutations that touch no links re-derive an unchanged entry —
	// idempotent, and still proportional to the write set.
	sess := r.db.NewSession()
	for k := range stamps {
		var kids []int64
		for _, table := range []string{"link", "specified_by"} {
			res, err := sess.Exec("SELECT right FROM "+table+" WHERE left = ?", types.NewInt(k))
			if err != nil {
				continue
			}
			for _, row := range res.Rows {
				if len(row) > 0 && row[0].Kind() == types.KindInt {
					kids = append(kids, row[0].Int())
				}
			}
		}
		if len(kids) == 0 {
			delete(r.children, k)
		} else {
			r.children[k] = kids
		}
	}
	r.lastEpoch = epoch
}

// closureLocked computes the downward closure of the given roots over
// the current adjacency (the roots themselves included). The result is
// a fresh map — callers may hold it past the lock.
func (r *Registry) closureLocked(roots []int64) map[int64]bool {
	cl := make(map[int64]bool, len(roots))
	frontier := append([]int64(nil), roots...)
	for _, id := range frontier {
		cl[id] = true
	}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, id := range frontier {
			for _, kid := range r.children[id] {
				if !cl[kid] {
					cl[kid] = true
					next = append(next, kid)
				}
			}
		}
		frontier = next
	}
	return cl
}

func edgeOf(row storage.Row) (int64, int64, bool) {
	if len(row) < 2 {
		return 0, 0, false
	}
	l, r := row[0], row[1]
	if l.Kind() != types.KindInt || r.Kind() != types.KindInt {
		return 0, 0, false
	}
	return l.Int(), r.Int(), true
}
