// Package cache implements the client-side structure cache of the PDM
// system: a bounded, concurrency-safe LRU store whose entries carry
// server version stamps. The PDM layer (internal/core) layers it
// behind its read path as a decorating fetcher — a remote site then
// re-ships a product structure only when the server's per-object
// version counters say it changed, turning the repeat cost of a
// worldwide Query/Expand/MLE into one small validate round trip.
//
// The package is deliberately ignorant of PDM types: entries hold
// opaque values plus the object ids that govern their lifetime. Two
// mechanisms retire an entry before LRU pressure does:
//
//   - validate-on-use: the reader compares the entry's fetch-time
//     stamp against the server's version log (the wire TypeValidate
//     exchange) and drops entries whose objects changed;
//   - invalidate-on-write: a client that itself modifies objects drops
//     every entry depending on them, locally and immediately, via the
//     reverse index over InvalidateIDs.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached read: the object the read was rooted at,
// the PDM action that produced it, and the evaluation profile (user,
// rules, strategy) the result is only valid under.
type Key struct {
	// ID is the root object id of the cached read (the expanded
	// parent, the recursive root, the looked-up object).
	ID int64
	// Action is the PDM action (plus an internal discriminator for
	// non-action reads such as type lookups).
	Action string
	// Profile fingerprints everything else the result depends on —
	// user context, rule table, strategy — so sessions sharing a cache
	// can never serve each other results their rules would not permit.
	Profile string
}

// Entry is one cached read result.
type Entry struct {
	// Value is the cached payload (owned by the cache; callers clone
	// on put and get).
	Value any
	// Stamp is the server's modification epoch at fetch time.
	Stamp uint64
	// ValidateIDs are the object ids whose server-side versions govern
	// this entry's freshness; the reader sends (id, Stamp) pairs over
	// the validate exchange.
	ValidateIDs []int64
	// InvalidateIDs are the object ids that retire this entry when a
	// local write touches them (a superset of ValidateIDs is fine; an
	// empty slice opts out of write invalidation).
	InvalidateIDs []int64
}

// Store is a bounded LRU of versioned entries, safe for concurrent
// use by many sessions.
type Store struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *slot
	items map[Key]*list.Element
	// byID maps an object id to the keys of entries it invalidates.
	byID map[int64]map[Key]struct{}
}

type slot struct {
	key   Key
	entry Entry
}

// DefaultSize bounds a store created with a non-positive size.
const DefaultSize = 4096

// New returns a store bounded to the given number of entries
// (DefaultSize when size <= 0).
func New(size int) *Store {
	if size <= 0 {
		size = DefaultSize
	}
	return &Store{
		cap:   size,
		ll:    list.New(),
		items: map[Key]*list.Element{},
		byID:  map[int64]map[Key]struct{}{},
	}
}

// Cap returns the configured entry bound.
func (s *Store) Cap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}

// Len returns the current entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Get returns the entry under the key and marks it most recently
// used.
func (s *Store) Get(key Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Entry{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*slot).entry, true
}

// Put stores an entry under the key, replacing any previous entry and
// evicting the least recently used entries beyond the bound.
func (s *Store) Put(key Key, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.unindex(key, el.Value.(*slot).entry)
		el.Value.(*slot).entry = e
		s.index(key, e)
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&slot{key: key, entry: e})
	s.items[key] = el
	s.index(key, e)
	for s.ll.Len() > s.cap {
		s.removeElement(s.ll.Back())
	}
}

// Drop removes the entry under the key, if present.
func (s *Store) Drop(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.removeElement(el)
	}
}

// Invalidate drops every entry (across all actions and profiles)
// whose InvalidateIDs contain any of the given object ids, returning
// the number of entries dropped. This is the no-round-trip path a
// writer uses on its own modifications.
func (s *Store) Invalidate(ids ...int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, id := range ids {
		for key := range s.byID[id] {
			if el, ok := s.items[key]; ok {
				s.removeElement(el)
				dropped++
			}
		}
	}
	return dropped
}

// index/unindex maintain the id → keys reverse map; both run under mu.

func (s *Store) index(key Key, e Entry) {
	for _, id := range e.InvalidateIDs {
		set := s.byID[id]
		if set == nil {
			set = map[Key]struct{}{}
			s.byID[id] = set
		}
		set[key] = struct{}{}
	}
}

func (s *Store) unindex(key Key, e Entry) {
	for _, id := range e.InvalidateIDs {
		if set := s.byID[id]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(s.byID, id)
			}
		}
	}
}

func (s *Store) removeElement(el *list.Element) {
	sl := el.Value.(*slot)
	s.ll.Remove(el)
	delete(s.items, sl.key)
	s.unindex(sl.key, sl.entry)
}
