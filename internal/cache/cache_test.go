package cache

import (
	"fmt"
	"sync"
	"testing"
)

func key(id int64) Key { return Key{ID: id, Action: "mle", Profile: "u"} }

func TestLRUBound(t *testing.T) {
	s := New(3)
	for i := int64(1); i <= 10; i++ {
		s.Put(key(i), Entry{Value: i, InvalidateIDs: []int64{i}})
		if s.Len() > 3 {
			t.Fatalf("after %d puts: len = %d, want <= 3", i, s.Len())
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	// The three most recent survive, the oldest were evicted.
	for i := int64(8); i <= 10; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Errorf("entry %d missing, want resident", i)
		}
	}
	if _, ok := s.Get(key(1)); ok {
		t.Error("entry 1 resident, want evicted")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	s := New(2)
	s.Put(key(1), Entry{Value: 1})
	s.Put(key(2), Entry{Value: 2})
	s.Get(key(1)) // 1 is now the most recent
	s.Put(key(3), Entry{Value: 3})
	if _, ok := s.Get(key(1)); !ok {
		t.Error("recently used entry 1 evicted")
	}
	if _, ok := s.Get(key(2)); ok {
		t.Error("least recently used entry 2 survived")
	}
}

func TestInvalidateByID(t *testing.T) {
	s := New(10)
	// Entry for parent 1 depends on children 10, 11; entry for parent 2
	// depends on child 11 only; entry 3 is independent.
	s.Put(key(1), Entry{Value: "a", InvalidateIDs: []int64{1, 10, 11}})
	s.Put(key(2), Entry{Value: "b", InvalidateIDs: []int64{2, 11}})
	s.Put(key(3), Entry{Value: "c", InvalidateIDs: []int64{3}})
	if n := s.Invalidate(11); n != 2 {
		t.Fatalf("Invalidate(11) dropped %d entries, want 2", n)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Error("entry depending on 11 survived")
	}
	if _, ok := s.Get(key(2)); ok {
		t.Error("entry depending on 11 survived")
	}
	if _, ok := s.Get(key(3)); !ok {
		t.Error("independent entry dropped")
	}
	// The reverse index forgets dropped entries: a second invalidation
	// is a no-op.
	if n := s.Invalidate(11); n != 0 {
		t.Errorf("second Invalidate(11) dropped %d entries, want 0", n)
	}
}

func TestInvalidateCrossesProfiles(t *testing.T) {
	s := New(10)
	a := Key{ID: 1, Action: "mle", Profile: "alice"}
	b := Key{ID: 1, Action: "mle", Profile: "bob"}
	s.Put(a, Entry{Value: "a", InvalidateIDs: []int64{1}})
	s.Put(b, Entry{Value: "b", InvalidateIDs: []int64{1}})
	if n := s.Invalidate(1); n != 2 {
		t.Fatalf("Invalidate dropped %d entries, want both profiles", n)
	}
}

func TestReplaceReindexes(t *testing.T) {
	s := New(10)
	s.Put(key(1), Entry{Value: "old", InvalidateIDs: []int64{1, 10}})
	s.Put(key(1), Entry{Value: "new", InvalidateIDs: []int64{1, 20}})
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1 after replace", s.Len())
	}
	if n := s.Invalidate(10); n != 0 {
		t.Error("stale reverse-index entry for 10 survived the replace")
	}
	if n := s.Invalidate(20); n != 1 {
		t.Errorf("Invalidate(20) dropped %d, want 1", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := int64(i % 100)
				k := Key{ID: id, Action: "mle", Profile: fmt.Sprintf("u%d", g%2)}
				switch i % 3 {
				case 0:
					s.Put(k, Entry{Value: i, InvalidateIDs: []int64{id, id + 1000}})
				case 1:
					s.Get(k)
				default:
					s.Invalidate(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 64 {
		t.Errorf("len = %d, want <= 64", s.Len())
	}
}
