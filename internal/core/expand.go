package core

import (
	"context"
	"strconv"
	"strings"

	"pdmtune/internal/costmodel"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/wire"
)

// This file is the wire fetcher's single-level expand strategy: how
// the children of one parent (or one whole BFS level) are pulled
// across the WAN under the client's configured statement mode.

// expandParentSentinel is the parent id the cached expand template is
// rendered with. Generated object ids are nonnegative and rule text
// cannot contain this literal, so substituting its decimal form with
// the real parent id touches exactly the two injected id positions.
const expandParentSentinel = -(1<<62 + 20010615)

var expandSentinelText = strconv.FormatInt(expandParentSentinel, 10)

// buildExpandSQL returns the (strategy-modified) single-level expand
// query text for one parent. A multi-level expand ships this statement
// once per visited node with only the parent id changing, so the
// built, rule-modified and rendered text is cached per action as a
// template (invalidated with the rest of preparedSQL on strategy
// switches) and each node costs two integer substitutions instead of a
// parse + modify + render of the whole statement.
func (c *Client) buildExpandSQL(parent int64, action string) (string, error) {
	key := "expandsql\x00" + action
	st, ok := c.preparedSQL[key]
	if !ok {
		q := BuildExpandQuery(expandParentSentinel)
		if c.strategy != costmodel.LateEval {
			if err := c.modifier().ModifyNavigational(q, action); err != nil {
				return "", err
			}
		}
		st = preparedStmt{sql: q.String()}
		c.preparedSQL[key] = st
	}
	return strings.ReplaceAll(st.sql, expandSentinelText, strconv.FormatInt(parent, 10)), nil
}

// expandStmtPrepared returns the parameterized expand statement for an
// action: built and rule-modified once per session, then reused for
// every node. The two UNION branches each bind the parent id.
func (c *Client) expandStmtPrepared(action string) (preparedStmt, error) {
	key := "expand\x00" + action
	if st, ok := c.preparedSQL[key]; ok {
		return st, nil
	}
	q := BuildExpandQueryParam()
	if c.strategy != costmodel.LateEval {
		if err := c.modifier().ModifyNavigational(q, action); err != nil {
			return preparedStmt{}, err
		}
	}
	st := preparedStmt{sql: q.String(), nparams: 2}
	c.preparedSQL[key] = st
	return st, nil
}

// expandRequest builds the wire request expanding one parent: a
// prepared execution (handle + parent id) in prepared mode, the full
// statement text otherwise.
func (c *Client) expandRequest(ctx context.Context, parent int64, action string) (*wire.Request, error) {
	if c.prepared {
		st, err := c.expandStmtPrepared(action)
		if err != nil {
			return nil, err
		}
		h, err := c.ensurePrepared(ctx, st.sql)
		if err != nil {
			return nil, err
		}
		params := make([]types.Value, st.nparams)
		for i := range params {
			params[i] = types.NewInt(parent)
		}
		return &wire.Request{Prepared: true, Handle: h, Params: params}, nil
	}
	sql, err := c.buildExpandSQL(parent, action)
	if err != nil {
		return nil, err
	}
	return &wire.Request{SQL: sql}, nil
}

// filterExpandRows applies the client-side rule filters to the rows of
// one expand answer. It returns the surviving candidate children and
// the object ids of every received row (the filtered ones included —
// the cache layer validates against all of them, so a modification
// that makes a filtered child visible is detected). ∃structure
// conditions are not checked here — they need server probes.
func (c *Client) filterExpandRows(rows []storage.Row, action string) ([]*Node, []int64, error) {
	var out []*Node
	allIDs := make([]int64, 0, len(rows))
	for _, row := range rows {
		n, err := decodeNode(row)
		if err != nil {
			return nil, nil, err
		}
		allIDs = append(allIDs, n.ObID)
		c.rememberType(n)
		if c.strategy == costmodel.LateEval {
			// Link traversal rules (structure options, effectivities).
			ok, err := c.localRowPermitted("link", []string{action, ActionAccess}, row)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
			// Row conditions on the child's object type.
			ok, err = c.localRowPermitted(n.Type, []string{action, ActionAccess}, row)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, n)
	}
	return out, allIDs, nil
}

// expandOnce ships one navigational expand query and returns the
// permitted children of one parent. Under late evaluation the client
// filters the received rows against its rule table; ∃structure
// conditions require extra probe round trips under every navigational
// strategy because the related objects live only in the server's
// database.
func (w *wireFetcher) expandOnce(ctx context.Context, parent int64, action string) (expandPage, error) {
	c := w.c
	req, err := c.expandRequest(ctx, parent, action)
	if err != nil {
		return expandPage{}, err
	}
	resp, err := c.execRequest(ctx, req)
	if err != nil {
		return expandPage{}, err
	}
	cands, allIDs, err := c.filterExpandRows(resp.Rows, action)
	if err != nil {
		return expandPage{}, err
	}
	var out []*Node
	for _, n := range cands {
		keep, err := w.probeExistsStructure(ctx, n, action)
		if err != nil {
			return expandPage{}, err
		}
		if keep {
			out = append(out, n)
		}
	}
	return expandPage{Children: out, AllIDs: allIDs, Epoch: resp.Epoch}, nil
}

// expandLevelBatched expands every parent of one BFS level in a single
// batch round trip — the paper's statement-per-node loop collapsed into
// one WAN communication per tree level. A second batch carries all
// ∃structure probes of the level, when any apply.
func (w *wireFetcher) expandLevelBatched(ctx context.Context, parents []*Node, action string) ([]expandPage, int, error) {
	c := w.c
	reqs := make([]*wire.Request, len(parents))
	for i, p := range parents {
		req, err := c.expandRequest(ctx, p.ObID, action)
		if err != nil {
			return nil, 0, err
		}
		reqs[i] = req
	}
	resps, err := c.sql.ExecBatch(ctx, reqs)
	if err != nil {
		return nil, 0, err
	}
	received := 0
	pages := make([]expandPage, len(parents))
	children := make([][]*Node, len(parents))
	for i, resp := range resps {
		received += len(resp.Rows)
		ns, allIDs, err := c.filterExpandRows(resp.Rows, action)
		if err != nil {
			return nil, 0, err
		}
		children[i] = ns
		pages[i] = expandPage{AllIDs: allIDs, Epoch: resp.Epoch}
	}
	children, err = w.probeExistsStructureBatched(ctx, children, action)
	if err != nil {
		return nil, 0, err
	}
	for i := range pages {
		pages[i].Children = children[i]
	}
	return pages, received, nil
}
