package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pdmtune/internal/core"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/minisql"
)

// Two users racing a procedure check-out of the same subtree: exactly
// one wins, the loser gets a ConflictError, and afterwards every
// checked-out row belongs to the winner. Run with -race.
func TestProcedureCheckOutFirstWins(t *testing.T) {
	for round := 0; round < 5; round++ {
		srv := pdmServer(t)
		rules := core.StandardRules()
		rules.MustAdd(core.CheckOutRule())

		type outcome struct {
			user string
			res  *core.CheckOutResult
			err  error
		}
		results := make(chan outcome, 2)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for _, name := range []string{"alice", "bob"} {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				c, _ := pdmClient(srv, rules, core.DefaultUser(name), costmodel.Recursive)
				<-start
				res, err := c.CheckOutViaProcedure(context.Background(), 1)
				results <- outcome{name, res, err}
			}(name)
		}
		close(start)
		wg.Wait()
		close(results)

		winners, losers := 0, 0
		var winner string
		for o := range results {
			var conflict *core.ConflictError
			switch {
			case o.err == nil && o.res.Granted:
				winners++
				winner = o.user
			case errors.As(o.err, &conflict):
				losers++
				if conflict.Root != 1 {
					t.Errorf("conflict root = %d, want 1", conflict.Root)
				}
				if o.res.Granted || o.res.Updated != 0 {
					t.Errorf("loser result %+v, want ungranted/0", o.res)
				}
			case o.err != nil:
				t.Fatalf("%s: unexpected error %v", o.user, o.err)
			default:
				// Granted=false without conflict: the loser's rule check
				// already saw the winner's committed flags — also a valid
				// first-wins outcome, but then the winner must exist.
				losers++
			}
		}
		if winners != 1 || losers != 1 {
			t.Fatalf("round %d: %d winners, %d losers; want exactly 1 each", round, winners, losers)
		}

		// Every checked-out row belongs to the winner; none are torn.
		owners := checkedOutOwners(t, srv)
		for _, owner := range owners {
			if owner != winner {
				t.Errorf("row checked out by %q, want winner %q", owner, winner)
			}
		}
		if len(owners) == 0 {
			t.Error("winner granted but no rows checked out")
		}
	}
}

// The client-driven (non-procedure) check-out detects the same race by
// its conditional-update shortfall and compensates: the loser ends up
// owning nothing.
func TestClientCheckOutFirstWins(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	rules.MustAdd(core.CheckOutRule())

	// Alice fetches the tree, then Bob sneaks in a full procedure
	// check-out before Alice's updates land. Interleave deterministically
	// by doing Bob's whole action between Alice's expand and her updates:
	// easiest via the race window — run Alice's client-driven action
	// concurrently with Bob's and accept either interleaving.
	var wg sync.WaitGroup
	type outcome struct {
		user string
		res  *core.CheckOutResult
		err  error
	}
	results := make(chan outcome, 2)
	start := make(chan struct{})
	for _, name := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			c, _ := pdmClient(srv, rules, core.DefaultUser(name), costmodel.Recursive)
			<-start
			res, err := c.CheckOut(context.Background(), 1)
			results <- outcome{name, res, err}
		}(name)
	}
	close(start)
	wg.Wait()
	close(results)

	granted := map[string]bool{}
	for o := range results {
		var conflict *core.ConflictError
		if o.err != nil && !errors.As(o.err, &conflict) {
			t.Fatalf("%s: %v", o.user, o.err)
		}
		granted[o.user] = o.err == nil && o.res.Granted
	}
	winners := 0
	var winner string
	for user, ok := range granted {
		if ok {
			winners++
			winner = user
		}
	}
	if winners != 1 {
		t.Fatalf("granted = %v, want exactly one winner", granted)
	}
	for _, owner := range checkedOutOwners(t, srv) {
		if owner != winner {
			t.Errorf("row owned by %q, want %q", owner, winner)
		}
	}
}

// checkedOutOwners returns the checkedout_by values of every
// checked-out object row.
func checkedOutOwners(t *testing.T, srv interface {
	DB() *minisql.DB
}) []string {
	t.Helper()
	s := srv.DB().NewSession()
	var owners []string
	for _, table := range []string{"assy", "comp"} {
		res, err := s.Query("SELECT checkedout_by FROM " + table + " WHERE checkedout = TRUE")
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			owners = append(owners, row[0].Text())
		}
	}
	return owners
}
