package core

import (
	"context"
	"fmt"

	"pdmtune/internal/cache"
	"pdmtune/internal/wire"
)

// fallThroughFetcher is the partial-replication read layer: a client at
// a subscription-bounded replica serves in-subscription reads from the
// site (the inner chain — cache over the site-local wire path) and
// transparently re-issues everything else against the primary, at WAN
// cost. The subtree closure guarantees "root held ⇒ whole subtree
// held", so a recursive fetch routes whole-call by its root; the
// navigational expand partitions each BFS level parent-by-parent (a
// level can mix held and fallen-through parents when the action's root
// itself was out of subscription).
//
// The primary path always ships plain statement text over the write
// client — prepared handles are connection-scoped to the site server,
// and the fall-through path is the explicitly-expensive slow lane the
// subscription is meant to make rare. Every primary exchange increments
// the FallThroughRoundTrips counter on the WAN meter.
type fallThroughFetcher struct {
	inner fetcher
	c     *Client
	holds HoldsSource
}

func (f *fallThroughFetcher) BeginAction() { f.inner.BeginAction() }

func (f *fallThroughFetcher) EnsureFresh(ctx context.Context) error {
	return f.inner.EnsureFresh(ctx)
}

// active reports whether fall-through routing applies at all — it
// switches itself off while the site replicates in full.
func (f *fallThroughFetcher) active() bool { return f.holds.Partial() }

func (f *fallThroughFetcher) LookupType(ctx context.Context, obid int64) (string, error) {
	if !f.active() || f.holds.Holds(obid) {
		return f.inner.LookupType(ctx, obid)
	}
	c := f.c
	if e, ok := c.types.Get(c.typeKey(obid)); ok {
		return e.Value.(string), nil
	}
	resp, err := c.execFallThrough(ctx, fmt.Sprintf(
		"SELECT type FROM assy WHERE obid = %d UNION ALL SELECT type FROM comp WHERE obid = %d", obid, obid))
	if err != nil {
		return "", err
	}
	if len(resp.Rows) == 0 || len(resp.Rows[0]) == 0 {
		return "", fmt.Errorf("core: object %d does not exist", obid)
	}
	t := resp.Rows[0][0].String()
	c.types.Put(c.typeKey(obid), cache.Entry{Value: t})
	return t, nil
}

func (f *fallThroughFetcher) FetchRecursive(ctx context.Context, root int64, action string) (*Tree, int, uint64, error) {
	if !f.active() || f.holds.Holds(root) {
		return f.inner.FetchRecursive(ctx, root, action)
	}
	c := f.c
	q := BuildRecursiveQuery(root)
	if err := c.modifier().ModifyRecursive(q, action); err != nil {
		return nil, 0, 0, err
	}
	resp, err := c.execFallThrough(ctx, q.String())
	if err != nil {
		return nil, 0, 0, err
	}
	tree, err := AssembleRecursive(root, resp.Rows)
	if err != nil {
		return nil, 0, 0, err
	}
	tree.Walk(func(n *Node) { c.rememberType(n) })
	return tree, len(resp.Rows), resp.Epoch, nil
}

// ExpandLevel partitions the level by what the replica holds: held
// parents expand through the inner chain (cache, batching, prepared
// statements — the fast lane), the rest expand against the primary one
// statement at a time. Page order matches the parents, as the fetcher
// contract requires.
func (f *fallThroughFetcher) ExpandLevel(ctx context.Context, parents []*Node, action string) ([]expandPage, int, error) {
	if !f.active() {
		return f.inner.ExpandLevel(ctx, parents, action)
	}
	var held []*Node
	heldIdx := make([]int, 0, len(parents))
	missIdx := make([]int, 0)
	for i, p := range parents {
		if f.holds.Holds(p.ObID) {
			held = append(held, p)
			heldIdx = append(heldIdx, i)
		} else {
			missIdx = append(missIdx, i)
		}
	}
	pages := make([]expandPage, len(parents))
	received := 0
	if len(held) > 0 {
		inner, got, err := f.inner.ExpandLevel(ctx, held, action)
		if err != nil {
			return nil, 0, err
		}
		received += got
		for k, i := range heldIdx {
			pages[i] = inner[k]
		}
	}
	for _, i := range missIdx {
		page, err := f.expandOnPrimary(ctx, parents[i].ObID, action)
		if err != nil {
			return nil, 0, err
		}
		received += len(page.AllIDs)
		pages[i] = page
	}
	return pages, received, nil
}

// expandOnPrimary is expandOnce re-aimed at the primary: same statement
// text, same client-side filtering, same ∃structure probes — only the
// transport differs.
func (f *fallThroughFetcher) expandOnPrimary(ctx context.Context, parent int64, action string) (expandPage, error) {
	c := f.c
	sql, err := c.buildExpandSQL(parent, action)
	if err != nil {
		return expandPage{}, err
	}
	resp, err := c.execFallThrough(ctx, sql)
	if err != nil {
		return expandPage{}, err
	}
	cands, allIDs, err := c.filterExpandRows(resp.Rows, action)
	if err != nil {
		return expandPage{}, err
	}
	var out []*Node
	for _, n := range cands {
		rules := c.rules.Relevant(c.user.Name, []string{action, ActionAccess}, n.Type, KindExistsStructure)
		keep := len(rules) == 0
		for _, r := range rules {
			probe, err := BuildProbeExists(r.Cond, c.user, n.Type, n.ObID)
			if err != nil {
				return expandPage{}, err
			}
			presp, err := c.execFallThrough(ctx, probe.String())
			if err != nil {
				return expandPage{}, err
			}
			if len(presp.Rows) > 0 {
				keep = true // permissions are OR-combined
				break
			}
		}
		if keep {
			out = append(out, n)
		}
	}
	return expandPage{Children: out, AllIDs: allIDs, Epoch: resp.Epoch}, nil
}

// execFallThrough ships one statement to the primary over the write
// path and charges the fall-through round trip to the WAN meter. The
// byte and latency accounting happens in the transport as for any
// primary exchange; this counter is what attributes the trip to a
// subscription miss.
func (c *Client) execFallThrough(ctx context.Context, sql string) (*wire.Response, error) {
	var resp *wire.Response
	err := c.withWrite(func(w *wire.Client, _ map[string]uint32) error {
		var err error
		resp, err = w.Exec(ctx, sql)
		return err
	})
	if err != nil {
		return nil, err
	}
	c.countFallThrough(1)
	return resp, nil
}

// partialReplica reports whether the client currently reads from a
// subscription-bounded replica — the actions that cannot respect the
// downward closure (where-used walks upward) route themselves wholly to
// the primary when it does.
func (c *Client) partialReplica() bool {
	return c.site != nil && c.site.holds != nil && c.site.holds.Partial()
}

// countFallThrough charges fall-through round trips to the meter of the
// link they crossed (the primary/WAN meter when the write path has its
// own).
func (c *Client) countFallThrough(n int) {
	c.writeMu.RLock()
	m := c.writeMeter
	c.writeMu.RUnlock()
	if m == nil {
		m = c.meter
	}
	if m != nil {
		m.CountFallThrough(n)
	}
}
