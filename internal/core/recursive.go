package core

import (
	"context"
)

// FetchRecursive ships the Section 5 combined query and reassembles
// the tree from the unified rows. The root's type comes from the
// result itself, so no lookup statement is needed.
func (w *wireFetcher) FetchRecursive(ctx context.Context, root int64, action string) (*Tree, int, uint64, error) {
	c := w.c
	q := BuildRecursiveQuery(root)
	if err := c.modifier().ModifyRecursive(q, action); err != nil {
		return nil, 0, 0, err
	}
	resp, err := c.sql.Exec(ctx, q.String())
	if err != nil {
		return nil, 0, 0, err
	}
	tree, err := AssembleRecursive(root, resp.Rows)
	if err != nil {
		return nil, 0, 0, err
	}
	tree.Walk(func(n *Node) { c.rememberType(n) })
	return tree, len(resp.Rows), resp.Epoch, nil
}
