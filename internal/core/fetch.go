package core

import (
	"context"
)

// fetcher is the unified read path of the PDM client. Every byte a
// read action pulls across the WAN flows through one of its methods:
// the per-level navigational expand (probes included), the object
// type lookup, and the Section 5 recursive fetch. Unifying the four
// formerly hand-woven code paths behind one interface is what lets
// the structure cache decorate all read traffic in one place — and
// what keeps the wire strategies (batching, prepared statements) in
// one file each instead of threaded through every action.
//
// Implementations: wireFetcher (the real WAN paths) and cachedFetcher
// (the version-validated structure cache decorating a wireFetcher).
type fetcher interface {
	// BeginAction resets per-action state; every user action calls it
	// once before its first fetch. The cached fetcher uses it to scope
	// its validate-on-use exchange to one round trip per action.
	BeginAction()

	// EnsureFresh applies the session's replica-staleness bound before
	// the action reads anything. The routed fetcher syncs a
	// stale-beyond-bound site here; every fetch method calls it
	// implicitly, so only actions that read outside the fetcher (the
	// set-oriented Query) need to call it themselves.
	EnsureFresh(ctx context.Context) error

	// ExpandLevel fetches the visible children of every parent of one
	// BFS level — the single-level expand queries plus the ∃structure
	// probes the survivors need. It returns one page per parent (same
	// order) and the total number of rows received over the wire.
	ExpandLevel(ctx context.Context, parents []*Node, action string) ([]expandPage, int, error)

	// LookupType resolves an object id to its object type ("assy",
	// "comp"). An id found in no object table is an error.
	LookupType(ctx context.Context, obid int64) (string, error)

	// FetchRecursive ships the Section 5 combined recursive query and
	// returns the reassembled tree, the rows received and the server
	// epoch of the fetch.
	FetchRecursive(ctx context.Context, root int64, action string) (*Tree, int, uint64, error)
}

// expandPage is the result of expanding one parent: the children the
// user may see, plus the bookkeeping the cache layer needs to stamp
// and later revalidate the page.
type expandPage struct {
	// Children are the visible children (rule-filtered, probes
	// applied), each with its connecting link attributes.
	Children []*Node
	// AllIDs are the object ids of every row the expand answer
	// carried, including children the rules filtered out — the full
	// set whose server versions govern this page's freshness.
	AllIDs []int64
	// Epoch is the server's modification epoch at fetch time (0 when
	// the server does not version its data, or when the page was
	// served from cache).
	Epoch uint64
}

// wireFetcher is the real read path: every call crosses the transport
// under the client's configured wire strategy (plain statements,
// batched levels, prepared executions). Its method bodies live in
// expand.go, probe.go and recursive.go.
type wireFetcher struct {
	c *Client
}

// BeginAction is a no-op: the wire fetcher keeps no per-action state.
func (w *wireFetcher) BeginAction() {}

// EnsureFresh is a no-op: the wire fetcher reads whatever its server
// holds.
func (w *wireFetcher) EnsureFresh(ctx context.Context) error { return nil }

// ExpandLevel expands one BFS level: as a single batch round trip per
// level when batching is enabled, one round trip per parent (the
// paper's behavior) otherwise.
func (w *wireFetcher) ExpandLevel(ctx context.Context, parents []*Node, action string) ([]expandPage, int, error) {
	if w.c.batching {
		return w.expandLevelBatched(ctx, parents, action)
	}
	pages := make([]expandPage, len(parents))
	received := 0
	for i, parent := range parents {
		page, err := w.expandOnce(ctx, parent.ObID, action)
		if err != nil {
			return nil, 0, err
		}
		received += len(page.AllIDs)
		pages[i] = page
	}
	return pages, received, nil
}
