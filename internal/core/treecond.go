package core

import (
	"fmt"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/exec"
	"pdmtune/internal/minisql/storage"
)

// Client-side rule evaluation: the row-condition filtering of the late
// strategy and the tree conditions (∀rows, tree aggregates) no
// navigational query can carry (Section 4.1).

// localRowPermitted evaluates the disjunction of the user's row
// conditions for an object type against a received unified row — the
// client-side ("late") rule evaluation the paper starts from.
func (c *Client) localRowPermitted(objType string, actions []string, row storage.Row) (bool, error) {
	rules := c.rules.Relevant(c.user.Name, actions, objType, KindRow)
	if len(rules) == 0 {
		return true, nil
	}
	pred, err := disjunction(rules, c.user)
	if err != nil {
		return false, err
	}
	env := exec.NewEnv(unifiedColsFor(objType), row, nil)
	v, err := c.local.EvalExpr(pred, env)
	if err != nil {
		return false, err
	}
	return boolValue(v), nil
}

// unifiedColsFor binds the unified columns under an object type's alias
// so rule predicates like assy.make_or_buy or link.strc_opt resolve.
func unifiedColsFor(objType string) []exec.ColMeta {
	cols := make([]exec.ColMeta, len(UnifiedCols))
	for i, name := range UnifiedCols {
		cols[i] = exec.ColMeta{Table: objType, Name: name}
	}
	return cols
}

// clientTreeConditions evaluates ∀rows and tree-aggregate rules on a
// fetched tree (late/early navigational strategies). It reports whether
// the tree survives.
func (c *Client) clientTreeConditions(tree *Tree, action string) (bool, error) {
	actions := []string{action, ActionAccess}

	// ∀rows: every node must meet the row condition.
	forall := c.rules.Relevant(c.user.Name, actions, TreeObjType, KindForAllRows)
	if len(forall) > 0 {
		pred, err := disjunction(forall, c.user)
		if err != nil {
			return false, err
		}
		holds := true
		var evalErr error
		tree.Walk(func(n *Node) {
			if !holds || evalErr != nil {
				return
			}
			env := exec.NewEnv(unifiedColsFor(RecTable), nodeToUnifiedRow(n), nil)
			v, err := c.local.EvalExpr(pred, env)
			if err != nil {
				evalErr = err
				return
			}
			if !boolValue(v) {
				holds = false
			}
		})
		if evalErr != nil {
			return false, evalErr
		}
		if !holds {
			return false, nil
		}
	}

	// Tree aggregates: rebuild the recursion table in the client's local
	// workspace database and evaluate the condition as SQL.
	aggs := c.rules.Relevant(c.user.Name, actions, TreeObjType, KindTreeAggregate)
	if len(aggs) > 0 {
		ok, err := c.evalTreeAggregatesLocally(tree, aggs)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// evalTreeAggregatesLocally loads the fetched nodes into a local rtbl
// and runs the aggregate conditions against it.
func (c *Client) evalTreeAggregatesLocally(tree *Tree, rules []Rule) (bool, error) {
	s := c.scratch.NewSession()
	if _, err := s.Exec("DROP TABLE IF EXISTS " + RecTable); err != nil {
		return false, err
	}
	ddl := `CREATE TABLE rtbl (type TEXT, obid INTEGER, name TEXT, dec TEXT,
		make_or_buy TEXT, state TEXT, material TEXT, weight FLOAT,
		checkedout BOOLEAN, data TEXT, path_opt TEXT, left INTEGER, right INTEGER,
		eff_from INTEGER, eff_to INTEGER, strc_opt TEXT)`
	if _, err := s.Exec(ddl); err != nil {
		return false, err
	}
	var insertErr error
	tree.Walk(func(n *Node) {
		if insertErr != nil {
			return
		}
		row := nodeToUnifiedRow(n)
		_, insertErr = s.Exec(
			"INSERT INTO rtbl VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
			row...)
	})
	if insertErr != nil {
		return false, insertErr
	}
	pred, err := disjunction(rules, c.user)
	if err != nil {
		return false, err
	}
	check := &ast.Select{Body: &ast.SelectCore{
		Items: []ast.SelectItem{{Expr: &ast.Case{
			Whens: []ast.When{{Cond: pred, Result: &ast.Literal{Value: intValue(1)}}},
			Else:  &ast.Literal{Value: intValue(0)},
		}, Alias: "ok"}},
	}}
	res, err := s.Exec(check.String())
	if err != nil {
		return false, err
	}
	if len(res.Rows) != 1 {
		return false, fmt.Errorf("core: tree-aggregate check returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0].Int() == 1, nil
}
