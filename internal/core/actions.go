package core

import (
	"context"

	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
)

// The paper's read actions, orchestrated over the client's fetcher.
// The fetcher is the only way these actions touch the WAN, so the
// structure cache (when configured) accelerates all of them
// uniformly.

// ActionResult reports one user action: what came back and what it cost.
type ActionResult struct {
	// Tree is the reassembled structure (expand actions).
	Tree *Tree
	// Objects is the flat result of the set-oriented Query action.
	Objects []*Node
	// RowsReceived counts unified rows shipped to the client before
	// client-side filtering — the transferred data volume in rows. A
	// cache hit ships nothing, so warm actions report fewer rows.
	RowsReceived int
	// Visible counts objects the user is finally allowed to see.
	Visible int
	// Metrics is the WAN cost of exactly this action.
	Metrics netsim.Metrics
}

// ---------------------------------------------------------------------------
// Query (set-oriented retrieval of all nodes of a product)

// QueryAll performs the paper's "Query" action: retrieve all nodes of a
// product (without structure information) in one statement. Under late
// evaluation all rows are shipped and filtered at the client; otherwise
// the row conditions travel inside the query. A single statement gains
// nothing from preparation, so the prepared mode does not change it.
// The result is not structure-cached: rows join the product by a
// `prod` attribute the version log does not key, so a cached answer
// could not detect newly inserted nodes.
func (c *Client) QueryAll(ctx context.Context, prod int64) (*ActionResult, error) {
	before := c.snapshot()
	c.fetch.BeginAction()
	// Query ships its one statement outside the fetcher, so the
	// replica-staleness bound must be applied explicitly.
	if err := c.fetch.EnsureFresh(ctx); err != nil {
		return nil, err
	}
	q := BuildQueryAll(prod)
	if c.strategy != costmodel.LateEval {
		if err := c.modifier().ModifyNavigational(q, ActionQuery); err != nil {
			return nil, err
		}
	}
	resp, err := c.sql.Exec(ctx, q.String())
	if err != nil {
		return nil, err
	}
	res := &ActionResult{RowsReceived: len(resp.Rows)}
	for _, row := range resp.Rows {
		n, err := decodeNode(row)
		if err != nil {
			return nil, err
		}
		c.rememberType(n)
		if c.strategy == costmodel.LateEval {
			ok, err := c.localRowPermitted(n.Type, []string{ActionQuery, ActionAccess}, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		res.Objects = append(res.Objects, n)
	}
	res.Visible = len(res.Objects)
	res.Metrics = c.delta(before)
	c.countAction(ActionQuery, prod, false)
	return res, nil
}

// ---------------------------------------------------------------------------
// Single-level expand

// Expand performs a single-level expand: fetch the direct children of
// one object together with the connecting links. The root's actual
// object type is looked up (and cached), not assumed to be an assembly.
func (c *Client) Expand(ctx context.Context, parent int64) (*ActionResult, error) {
	before := c.snapshot()
	c.fetch.BeginAction()
	rootType, err := c.fetch.LookupType(ctx, parent)
	if err != nil {
		return nil, err
	}
	root := &Node{Type: rootType, ObID: parent}
	pages, received, err := c.fetch.ExpandLevel(ctx, []*Node{root}, ActionExpand)
	if err != nil {
		return nil, err
	}
	children := pages[0].Children
	root.Children = children
	tree := &Tree{Root: root, Index: map[int64]*Node{parent: root}}
	for _, ch := range children {
		tree.Index[ch.ObID] = ch
	}
	c.countAction(ActionExpand, parent, false)
	return &ActionResult{
		Tree:         tree,
		RowsReceived: received,
		Visible:      len(children),
		Metrics:      c.delta(before),
	}, nil
}

// ---------------------------------------------------------------------------
// Multi-level expand

// MultiLevelExpand retrieves the entire structure under root. Under the
// navigational strategies it recursively applies single-level expands
// ("the resulting objects are filtered according to the rules, and the
// surviving objects are then expanded recursively"); under the Recursive
// strategy it ships one recursive query with all rules embedded.
func (c *Client) MultiLevelExpand(ctx context.Context, root int64) (*ActionResult, error) {
	return c.multiLevelExpand(ctx, root, ActionMLE)
}

func (c *Client) multiLevelExpand(ctx context.Context, root int64, action string) (*ActionResult, error) {
	before := c.snapshot()
	c.fetch.BeginAction()
	if c.strategy == costmodel.Recursive {
		tree, received, _, err := c.fetch.FetchRecursive(ctx, root, action)
		if err != nil {
			return nil, err
		}
		if action == ActionMLE {
			c.countAction(action, root, false)
		}
		return &ActionResult{
			Tree:         tree,
			RowsReceived: received,
			Visible:      tree.Size(),
			Metrics:      c.delta(before),
		}, nil
	}

	// Navigational: breadth-first expansion. The root is already at the
	// client (paper footnote 4) but its object type is not assumed — it
	// is looked up (one cached WAN statement). Every surviving node is
	// expanded, leaves included — the client only learns they are leaves
	// from the empty answer. With batching enabled the whole level
	// travels as one wire batch; otherwise each node costs its own round
	// trip, as in the paper.
	rootType, err := c.fetch.LookupType(ctx, root)
	if err != nil {
		return nil, err
	}
	rootNode := &Node{Type: rootType, ObID: root}
	tree := &Tree{Root: rootNode, Index: map[int64]*Node{root: rootNode}}
	received := 0
	level := []*Node{rootNode}
	for len(level) > 0 {
		pages, got, err := c.fetch.ExpandLevel(ctx, level, action)
		if err != nil {
			return nil, err
		}
		received += got
		var next []*Node
		for i, parent := range level {
			parent.Children = pages[i].Children
			for _, ch := range pages[i].Children {
				tree.Index[ch.ObID] = ch
				next = append(next, ch)
			}
		}
		level = next
	}

	// Tree conditions cannot travel inside navigational queries
	// (Section 4.1) — evaluate them at the client on the fetched tree.
	ok, err := c.clientTreeConditions(tree, action)
	if err != nil {
		return nil, err
	}
	if !ok {
		tree = &Tree{Index: map[int64]*Node{}} // all-or-nothing
	}
	// The check actions run this expand as their read phase — they count
	// themselves as writes, so only a user-level MLE counts here.
	if action == ActionMLE {
		c.countAction(action, root, false)
	}
	return &ActionResult{
		Tree:         tree,
		RowsReceived: received,
		Visible:      tree.Size(),
		Metrics:      c.delta(before),
	}, nil
}
