package core_test

import (
	"context"
	"errors"
	"testing"

	"pdmtune/internal/core"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
	"pdmtune/internal/workload"
)

// preparedClient connects a metered client with prepared statements on
// (and optionally batching).
func preparedClient(srv *wire.Server, rules *core.RuleTable, user core.UserContext, s costmodel.Strategy, batched bool) (*core.Client, *netsim.Meter) {
	c, m := pdmClient(srv, rules, user, s)
	c.SetPrepared(true)
	c.SetBatching(batched)
	return c, m
}

// TestPreparedMLEMatchesText: under both navigational strategies,
// batched or not, the prepared client must see exactly the nodes the
// text client sees while shipping strictly fewer request payload bytes
// per statement (visible in SavedRequestBytes and PreparedExecs).
func TestPreparedMLEMatchesText(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	ctx := context.Background()
	for _, strat := range []costmodel.Strategy{costmodel.LateEval, costmodel.EarlyEval} {
		for _, batched := range []bool{false, true} {
			text, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
			text.SetBatching(batched)
			resT, err := text.MultiLevelExpand(ctx, prod.RootID)
			if err != nil {
				t.Fatalf("%v batched=%v: text MLE: %v", strat, batched, err)
			}
			prep, pm := preparedClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat, batched)
			resP, err := prep.MultiLevelExpand(ctx, prod.RootID)
			if err != nil {
				t.Fatalf("%v batched=%v: prepared MLE: %v", strat, batched, err)
			}
			idsT, idsP := visibleIDs(resT.Tree), visibleIDs(resP.Tree)
			if len(idsT) != len(idsP) {
				t.Fatalf("%v batched=%v: prepared sees %d nodes, text %d", strat, batched, len(idsP), len(idsT))
			}
			for i := range idsT {
				if idsT[i] != idsP[i] {
					t.Fatalf("%v batched=%v: node %d differs: %d != %d", strat, batched, i, idsP[i], idsT[i])
				}
			}
			if resP.RowsReceived != resT.RowsReceived {
				t.Errorf("%v batched=%v: prepared received %d rows, text %d",
					strat, batched, resP.RowsReceived, resT.RowsReceived)
			}
			if pm.Metrics.PreparedExecs == 0 {
				t.Errorf("%v batched=%v: no prepared executions recorded", strat, batched)
			}
			if pm.Metrics.SavedRequestBytes <= 0 {
				t.Errorf("%v batched=%v: SavedRequestBytes = %.0f, want > 0",
					strat, batched, pm.Metrics.SavedRequestBytes)
			}
		}
	}
}

// TestPreparedProbesMatchText: ∃structure probes executed as prepared
// statements preserve the per-node verdicts.
func TestPreparedProbesMatchText(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	rules.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionAccess, ObjType: "comp",
		Kind: core.KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)",
	})
	want := []int64{2, 3, 4, 5, 101, 103}
	ctx := context.Background()
	for _, batched := range []bool{false, true} {
		c, meter := preparedClient(srv, rules, core.DefaultUser("scott"), costmodel.EarlyEval, batched)
		res, err := c.MultiLevelExpand(ctx, 1)
		if err != nil {
			t.Fatalf("batched=%v: prepared MLE: %v", batched, err)
		}
		ids := visibleIDs(res.Tree)
		if len(ids) != len(want) {
			t.Fatalf("batched=%v: prepared MLE = %v, want %v", batched, ids, want)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Errorf("batched=%v: node %d = %d, want %d", batched, i, ids[i], want[i])
			}
		}
		if meter.Metrics.PreparedExecs == 0 {
			t.Errorf("batched=%v: probes did not run prepared", batched)
		}
	}
}

// TestPreparedBatchedCheckOut: the prepared+batched modify flips the
// same flags as the text path, in one batch of per-node executions.
func TestPreparedBatchedCheckOut(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	rules.MustAdd(core.CheckOutRule())
	ctx := context.Background()
	c, meter := preparedClient(srv, rules, core.DefaultUser("scott"), costmodel.Recursive, true)
	res, err := c.CheckOut(ctx, 1)
	if err != nil {
		t.Fatalf("prepared check-out: %v", err)
	}
	if !res.Granted || res.Updated != 9 {
		t.Fatalf("prepared check-out granted=%v updated=%d, want true/9", res.Granted, res.Updated)
	}
	if meter.Metrics.PreparedExecs < 9 {
		t.Errorf("PreparedExecs = %d, want >= 9 (one per node)", meter.Metrics.PreparedExecs)
	}
	// A second check-out is denied; check-in restores.
	c2, _ := preparedClient(srv, rules, core.DefaultUser("erich"), costmodel.Recursive, true)
	res2, err := c2.CheckOut(ctx, 1)
	if err != nil {
		t.Fatalf("second prepared check-out: %v", err)
	}
	if res2.Granted {
		t.Error("second check-out must be denied by the ∀rows rule")
	}
	res3, err := c.CheckIn(ctx, 1)
	if err != nil {
		t.Fatalf("prepared check-in: %v", err)
	}
	if res3.Updated != 9 {
		t.Errorf("prepared check-in updated %d, want 9", res3.Updated)
	}
}

// TestRootTypeIsLookedUp: expanding a component root must label it
// "comp", not assume an assembly — and an id that exists in no object
// table is an error, not an empty assembly tree.
func TestRootTypeIsLookedUp(t *testing.T) {
	srv := pdmServer(t)
	ctx := context.Background()
	c, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), costmodel.EarlyEval)
	// 101 is Comp1 in the paper example: a leaf.
	res, err := c.Expand(ctx, 101)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Root.Type != "comp" {
		t.Errorf("root type = %q, want \"comp\"", res.Tree.Root.Type)
	}
	if len(res.Tree.Root.Children) != 0 {
		t.Errorf("component expand returned %d children", len(res.Tree.Root.Children))
	}
	// An assembly root keeps its type too.
	res2, err := c.Expand(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tree.Root.Type != "assy" {
		t.Errorf("root type = %q, want \"assy\"", res2.Tree.Root.Type)
	}
	// Nonexistent object: error on every navigational action.
	if _, err := c.Expand(ctx, 424242); err == nil {
		t.Error("expand of nonexistent object succeeded")
	}
	if _, err := c.MultiLevelExpand(ctx, 424242); err == nil {
		t.Error("MLE of nonexistent object succeeded")
	}
}

// cancelAfterTransport cancels the context once n round trips have been
// attempted, simulating a user abort in the middle of a long MLE.
type cancelAfterTransport struct {
	inner  wire.Transport
	n      int
	count  int
	cancel context.CancelFunc
}

func (ct *cancelAfterTransport) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	ct.count++
	if ct.count == ct.n {
		ct.cancel()
	}
	return ct.inner.RoundTrip(ctx, req)
}

// TestCancelMidMLEStopsRoundTrips: cancelling the context mid-expand
// returns ctx.Err() and stops issuing round trips — the meter records
// only the exchanges that happened before the cancellation.
func TestCancelMidMLEStopsRoundTrips(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	meter := netsim.NewMeter(netsim.Intercontinental())
	const after = 5
	tr := &cancelAfterTransport{
		inner:  &wire.MeteredChannel{Conn: srv.NewConn(), Meter: meter},
		n:      after,
		cancel: cancel,
	}
	c := core.NewClient(tr, meter, core.StandardRules(), core.DefaultUser("scott"), costmodel.LateEval)
	_, err := c.MultiLevelExpand(ctx, prod.RootID)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The nth attempt found the context cancelled: it was not charged,
	// and nothing was issued after it.
	if meter.Metrics.RoundTrips != after-1 {
		t.Errorf("charged %d round trips, want %d", meter.Metrics.RoundTrips, after-1)
	}
	if tr.count != after {
		t.Errorf("transport saw %d attempts, want %d", tr.count, after)
	}
}
