package core

import (
	"context"
	"fmt"
	"strings"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// CheckOutResult reports a check-out/check-in attempt.
type CheckOutResult struct {
	// Granted is false when a rule (typically the ∀rows "all nodes must
	// be checked-in" condition of paper example 2) denied the action.
	Granted bool
	// Updated counts the objects whose checked-out flag changed.
	Updated int
	// Metrics is the WAN cost of the whole action.
	Metrics netsim.Metrics
}

// ConflictError reports a first-wins write race lost: a concurrent
// check-out grabbed part of the subtree between this client's rule
// check and its flag updates. The loser's partial updates have been
// rolled back (procedure path) or compensated (client-driven path) —
// the subtree is left untouched by the loser, and retrying after the
// winner checks in is the caller's decision.
type ConflictError struct {
	// Action names the losing action ("check-out").
	Action string
	// Root is the subtree root the action targeted.
	Root int64
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("pdm: %s of %d lost a concurrent write race (first wins); retry after the winner checks in", e.Action, e.Root)
}

// CheckOutRule returns the paper's example 2 as a rule: "permits every
// user to check-out an entire subtree if all nodes in this subtree are
// checked-in" (∀n ∈ tree(assembly): n.checkedout ≠ TRUE).
func CheckOutRule() Rule {
	return Rule{
		User: Wildcard, Action: ActionCheck, ObjType: TreeObjType,
		Kind: KindForAllRows, Cond: "checkedout <> TRUE",
	}
}

// CheckOut retrieves the structure under root and marks every returned
// object as checked out by the user. As Section 6 observes, this action
// "cannot be represented in one single query": even with the recursive
// strategy, the flag updates are separate WAN communications.
func (c *Client) CheckOut(ctx context.Context, root int64) (*CheckOutResult, error) {
	before := c.snapshot()
	c.countAction(ActionCheck, root, true)
	res, err := c.multiLevelExpand(ctx, root, ActionCheck)
	if err != nil {
		return nil, err
	}
	out := &CheckOutResult{}
	if res.Tree == nil || res.Tree.Root == nil {
		out.Metrics = c.delta(before)
		return out, nil // denied by a tree condition
	}
	out.Granted = true
	updated, err := c.setCheckedOut(ctx, res.Tree, true)
	if err != nil {
		return nil, err
	}
	// The flags just flipped under every cached entry covering this
	// subtree — retire them locally, without a round trip.
	c.invalidateTree(res.Tree)
	// First-wins: the conditional updates flip only still-checked-in
	// rows, so a shortfall means a concurrent check-out won part of the
	// subtree between our rule check and our updates. Compensate by
	// releasing the rows we did grab and report the lost race.
	if expected := checkableNodes(res.Tree); updated < expected {
		if _, err := c.setCheckedOut(ctx, res.Tree, false); err != nil {
			return nil, fmt.Errorf("pdm: compensating lost check-out race: %w", err)
		}
		if m := c.conflictMeter(); m != nil {
			m.CountContention(0, 0, 1)
		}
		out.Granted = false
		out.Updated = 0
		out.Metrics = c.delta(before)
		return out, &ConflictError{Action: "check-out", Root: root}
	}
	out.Updated = updated
	out.Metrics = c.delta(before)
	return out, nil
}

// checkableNodes counts the tree nodes that live in an object table and
// therefore carry a checked-out flag.
func checkableNodes(tree *Tree) int {
	n := 0
	tree.Walk(func(node *Node) {
		if node.Type == "assy" || node.Type == "comp" {
			n++
		}
	})
	return n
}

// conflictMeter picks the meter write conflicts are charged to: the
// write path's WAN meter when the session has one, the session meter
// otherwise.
func (c *Client) conflictMeter() *netsim.Meter {
	c.writeMu.RLock()
	wm := c.writeMeter
	c.writeMu.RUnlock()
	if wm != nil {
		return wm
	}
	return c.meter
}

// CheckIn releases a previously checked-out subtree owned by the user.
func (c *Client) CheckIn(ctx context.Context, root int64) (*CheckOutResult, error) {
	before := c.snapshot()
	c.countAction(ActionCheck+"-in", root, true)
	res, err := c.multiLevelExpand(ctx, root, ActionCheck+"-in")
	if err != nil {
		return nil, err
	}
	out := &CheckOutResult{Granted: true}
	if res.Tree != nil && res.Tree.Root != nil {
		updated, err := c.setCheckedOut(ctx, res.Tree, false)
		if err != nil {
			return nil, err
		}
		c.invalidateTree(res.Tree)
		out.Updated = updated
	}
	out.Metrics = c.delta(before)
	return out, nil
}

// checkedOutUpdateSQL is the parameterized per-node flag update the
// prepared+batched modify prepares once per table and direction.
func checkedOutUpdateSQL(table string, out bool) string {
	if out {
		return fmt.Sprintf(
			"UPDATE %s SET checkedout = TRUE, checkedout_by = ? WHERE obid = ? AND checkedout <> TRUE", table)
	}
	return fmt.Sprintf(
		"UPDATE %s SET checkedout = FALSE, checkedout_by = NULL WHERE obid = ? AND checkedout_by = ?", table)
}

// setCheckedOut ships the UPDATE statements flipping the flag for every
// node in the tree — one WAN round trip per object table, or a single
// batch round trip for the whole modify when batching is enabled. With
// prepared statements AND batching, the modify becomes one batch of
// per-node prepared executions: two prepares per session, then handle +
// (user, obid) pairs on the wire.
func (c *Client) setCheckedOut(ctx context.Context, tree *Tree, out bool) (int, error) {
	if c.prepared && c.batching {
		return c.setCheckedOutPrepared(ctx, tree, out)
	}
	ids := map[string][]string{}
	tree.Walk(func(n *Node) {
		ids[n.Type] = append(ids[n.Type], fmt.Sprintf("%d", n.ObID))
	})
	var stmts []string
	for _, table := range []string{"assy", "comp"} {
		list := ids[table]
		if len(list) == 0 {
			continue
		}
		if out {
			stmts = append(stmts, fmt.Sprintf(
				"UPDATE %s SET checkedout = TRUE, checkedout_by = %s WHERE obid IN (%s) AND checkedout <> TRUE",
				table, sqlText(c.user.Name), strings.Join(list, ", ")))
		} else {
			stmts = append(stmts, fmt.Sprintf(
				"UPDATE %s SET checkedout = FALSE, checkedout_by = NULL WHERE obid IN (%s) AND checkedout_by = %s",
				table, strings.Join(list, ", "), sqlText(c.user.Name)))
		}
	}
	updated := 0
	if c.batching && len(stmts) > 1 {
		reqs := make([]*wire.Request, len(stmts))
		for i, sql := range stmts {
			reqs[i] = &wire.Request{SQL: sql}
		}
		err := c.withWrite(func(w *wire.Client, _ map[string]uint32) error {
			updated = 0
			resps, err := w.ExecBatch(ctx, reqs)
			for _, resp := range resps {
				updated += resp.RowsAffected
			}
			return err
		})
		return updated, err
	}
	err := c.withWrite(func(w *wire.Client, _ map[string]uint32) error {
		updated = 0
		for _, sql := range stmts {
			resp, err := w.Exec(ctx, sql)
			if err != nil {
				return err
			}
			updated += resp.RowsAffected
		}
		return nil
	})
	return updated, err
}

// setCheckedOutPrepared flips the flag with one batch of per-node
// prepared executions (prepared+batched mode). Statements are prepared
// only for the object tables the tree actually contains, and — like the
// text path, which iterates the known object tables — node types
// without an object table are skipped.
func (c *Client) setCheckedOutPrepared(ctx context.Context, tree *Tree, out bool) (int, error) {
	ids := map[string][]int64{}
	tree.Walk(func(n *Node) {
		ids[n.Type] = append(ids[n.Type], n.ObID)
	})
	updated := 0
	// Prepare and execute against one snapshot of the write path: a
	// fenced re-issue after failover re-prepares on the new primary.
	err := c.withWrite(func(w *wire.Client, handles map[string]uint32) error {
		updated = 0
		var reqs []*wire.Request
		for _, table := range []string{"assy", "comp"} {
			if len(ids[table]) == 0 {
				continue
			}
			h, err := c.ensurePreparedWrite(ctx, w, handles, checkedOutUpdateSQL(table, out))
			if err != nil {
				return err
			}
			for _, obid := range ids[table] {
				params := []types.Value{types.NewText(c.user.Name), types.NewInt(obid)}
				if !out {
					params = []types.Value{types.NewInt(obid), types.NewText(c.user.Name)}
				}
				reqs = append(reqs, &wire.Request{Prepared: true, Handle: h, Params: params})
			}
		}
		resps, err := w.ExecBatch(ctx, reqs)
		for _, resp := range resps {
			updated += resp.RowsAffected
		}
		return err
	})
	return updated, err
}

// CheckOutViaProcedure performs the whole check-out in a single WAN
// round trip by calling a stored procedure at the server — the
// "application-specific functionality ... installed at the database
// server" remedy of Section 6.
func (c *Client) CheckOutViaProcedure(ctx context.Context, root int64) (*CheckOutResult, error) {
	return c.callCheckProc(ctx, "pdm_check_out", root)
}

// CheckInViaProcedure is the single-round-trip check-in.
func (c *Client) CheckInViaProcedure(ctx context.Context, root int64) (*CheckOutResult, error) {
	return c.callCheckProc(ctx, "pdm_check_in", root)
}

func (c *Client) callCheckProc(ctx context.Context, proc string, root int64) (*CheckOutResult, error) {
	before := c.snapshot()
	c.countAction(proc, root, true)
	call := fmt.Sprintf("CALL %s(%d, %s, %s, %d, %d)",
		proc, root, sqlText(c.user.Name), sqlText(c.user.Options), c.user.EffFrom, c.user.EffTo)
	var resp *wire.Response
	err := c.withWrite(func(w *wire.Client, _ map[string]uint32) error {
		var err error
		resp, err = w.Exec(ctx, call)
		return err
	})
	if err != nil {
		return nil, err
	}
	out := &CheckOutResult{Metrics: c.delta(before)}
	conflict := false
	if len(resp.Rows) == 1 && len(resp.Rows[0]) >= 2 {
		out.Granted = types.Truth(resp.Rows[0][0]) == types.True
		out.Updated = int(resp.Rows[0][1].Int())
		// Servers since the MVCC redesign add a third column flagging a
		// lost first-wins race; two-column answers (older servers) never
		// report conflicts.
		if len(resp.Rows[0]) >= 3 {
			conflict = types.Truth(resp.Rows[0][2]) == types.True
		}
	}
	// The procedure modified a subtree the client never fetched: retire
	// the root's entries locally; deeper cached entries are caught by
	// the next validate-on-use exchange (the server bumped their nodes).
	if out.Granted && out.Updated > 0 {
		c.invalidateCache([]int64{root})
	}
	if conflict {
		return out, &ConflictError{Action: "check-out", Root: root}
	}
	return out, nil
}

// RegisterProcedures installs the server-side stored procedures
// pdm_check_out and pdm_check_in, and configures the PDM version-key
// overrides of the object version log: link rows (and spec relations)
// version their *parent* object via the left column, so attaching or
// detaching a child bumps the parent — which is exactly when a cached
// single-level expansion of the parent goes stale. The server owns a
// rule table too — rules guard the action regardless of how the
// client connects.
func RegisterProcedures(db *minisql.DB, rules *RuleTable) {
	db.RegisterProc("pdm_check_out", checkProc(rules, true))
	db.RegisterProc("pdm_check_in", checkProc(rules, false))
	// The overrides are remembered if the tables do not exist yet.
	_ = db.SetVersionKey("link", "left")
	_ = db.SetVersionKey("specified_by", "left")
}

func checkProc(rules *RuleTable, out bool) minisql.Procedure {
	return func(s *minisql.Session, args []minisql.Value) (*minisql.Result, error) {
		if len(args) != 5 {
			return nil, fmt.Errorf("pdm_check: want 5 arguments (root, user, options, eff_from, eff_to), got %d", len(args))
		}
		root := args[0].Int()
		user := UserContext{
			Name:    args[1].Text(),
			Options: args[2].Text(),
			EffFrom: args[3].Int(),
			EffTo:   args[4].Int(),
		}
		// Fetch the permitted subtree with the same machinery the client
		// would use — but locally, without WAN round trips.
		q := BuildRecursiveQuery(root)
		m := &Modifier{Rules: rules, User: user}
		action := ActionCheck
		if !out {
			action = ActionCheck + "-in"
		}
		if err := m.ModifyRecursive(q, action); err != nil {
			return nil, err
		}
		res, err := s.ExecStmt(q)
		if err != nil {
			return nil, err
		}
		tree, err := AssembleRecursive(root, res.Rows)
		if err != nil {
			return nil, err
		}
		granted := tree.Root != nil
		updated := 0
		conflict := false
		if granted {
			ids := map[string][]string{}
			expected := 0
			tree.Walk(func(n *Node) {
				if n.Type == "assy" || n.Type == "comp" {
					ids[n.Type] = append(ids[n.Type], fmt.Sprintf("%d", n.ObID))
					expected++
				}
			})
			// The rule check above ran against a lock-free snapshot; the
			// updates below re-verify row by row (conditional WHERE) while
			// holding both object tables' write latches, so between two
			// racing check-outs of overlapping subtrees exactly one sees
			// all its conditions still true — first wins, the loser rolls
			// back.
			release, err := s.LockTables("assy", "comp")
			if err != nil {
				return nil, err
			}
			defer release()
			if _, err := s.Exec("BEGIN"); err != nil {
				return nil, err
			}
			for _, table := range []string{"assy", "comp"} {
				if len(ids[table]) == 0 {
					continue
				}
				var sql string
				if out {
					sql = fmt.Sprintf(
						"UPDATE %s SET checkedout = TRUE, checkedout_by = %s WHERE obid IN (%s) AND checkedout <> TRUE",
						table, sqlText(user.Name), strings.Join(ids[table], ", "))
				} else {
					sql = fmt.Sprintf(
						"UPDATE %s SET checkedout = FALSE, checkedout_by = NULL WHERE obid IN (%s) AND checkedout_by = %s",
						table, strings.Join(ids[table], ", "), sqlText(user.Name))
				}
				r, err := s.Exec(sql)
				if err != nil {
					_, _ = s.Exec("ROLLBACK")
					return nil, err
				}
				updated += r.RowsAffected
			}
			if out && updated < expected {
				// A concurrent check-out committed part of this subtree
				// after our snapshot: we are the loser. Undo our partial
				// grab and report the conflict.
				if _, err := s.Exec("ROLLBACK"); err != nil {
					return nil, err
				}
				s.CountWriteConflict()
				granted = false
				updated = 0
				conflict = true
			} else if _, err := s.Exec("COMMIT"); err != nil {
				return nil, err
			}
		}
		return &minisql.Result{
			Cols: []string{"granted", "updated", "conflict"},
			Rows: []minisql.Row{{types.NewBool(granted), types.NewInt(int64(updated)), types.NewBool(conflict)}},
		}, nil
	}
}
