package core

import (
	"fmt"

	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

// Positions of the unified result columns (cf. UnifiedCols).
const (
	colType = iota
	colObID
	colName
	colDec
	colMakeOrBuy
	colState
	colMaterial
	colWeight
	colCheckedOut
	colData
	colPathOpt
	colLeft
	colRight
	colEffFrom
	colEffTo
	colStrcOpt
)

// Node is one reassembled product object as the PDM client presents it
// to the user, with the link that attached it to its parent.
type Node struct {
	Type       string
	ObID       int64
	Name       string
	Dec        string
	MakeOrBuy  string
	State      string
	Material   string
	Weight     float64
	CheckedOut bool
	// Link attributes (zero for roots and set-oriented query results).
	Parent  int64
	EffFrom int64
	EffTo   int64
	StrcOpt string
	PathOpt string

	Children []*Node
}

// Tree is a reassembled product structure.
type Tree struct {
	Root  *Node
	Index map[int64]*Node
}

// Size returns the number of nodes excluding the root (the paper's n_v
// convention: "the root object is considered to be already at the
// client").
func (t *Tree) Size() int {
	if t == nil || t.Root == nil {
		return 0
	}
	return len(t.Index) - 1
}

// Walk visits every node (root first, depth first).
func (t *Tree) Walk(fn func(*Node)) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

func intOf(v types.Value) int64 {
	switch v.Kind() {
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return int64(v.Float())
	}
	return 0
}

func floatOf(v types.Value) float64 {
	f, _ := v.AsFloat()
	return f
}

// decodeNode converts one unified row into a Node (link columns included
// when the row carries them, as navigational expand rows do).
func decodeNode(row storage.Row) (*Node, error) {
	if len(row) != len(UnifiedCols) {
		return nil, fmt.Errorf("core: unified row has %d columns, want %d", len(row), len(UnifiedCols))
	}
	n := &Node{
		Type:       row[colType].String(),
		ObID:       intOf(row[colObID]),
		Name:       row[colName].String(),
		Dec:        row[colDec].String(),
		MakeOrBuy:  row[colMakeOrBuy].String(),
		State:      row[colState].String(),
		Material:   row[colMaterial].String(),
		Weight:     floatOf(row[colWeight]),
		CheckedOut: types.Truth(row[colCheckedOut]) == types.True,
		PathOpt:    row[colPathOpt].String(),
	}
	if !row[colLeft].IsNull() {
		n.Parent = intOf(row[colLeft])
		n.EffFrom = intOf(row[colEffFrom])
		n.EffTo = intOf(row[colEffTo])
		n.StrcOpt = row[colStrcOpt].String()
	}
	return n, nil
}

// AssembleRecursive rebuilds the product tree from the rows of a
// Section 5.2 recursive query: node rows (type assy/comp) plus link rows
// (type link) that carry the structure information.
func AssembleRecursive(rootID int64, rows []storage.Row) (*Tree, error) {
	tree := &Tree{Index: map[int64]*Node{}}
	type linkRow struct {
		left, right, effFrom, effTo int64
		opt                         string
	}
	var links []linkRow
	for _, row := range rows {
		if len(row) != len(UnifiedCols) {
			return nil, fmt.Errorf("core: unified row has %d columns, want %d", len(row), len(UnifiedCols))
		}
		if row[colType].String() == "link" {
			links = append(links, linkRow{
				left:    intOf(row[colLeft]),
				right:   intOf(row[colRight]),
				effFrom: intOf(row[colEffFrom]),
				effTo:   intOf(row[colEffTo]),
				opt:     row[colStrcOpt].String(),
			})
			continue
		}
		n, err := decodeNode(row)
		if err != nil {
			return nil, err
		}
		tree.Index[n.ObID] = n
	}
	if len(tree.Index) == 0 {
		return tree, nil // empty result (e.g. an ∀rows condition failed)
	}
	root, ok := tree.Index[rootID]
	if !ok {
		return nil, fmt.Errorf("core: recursive result does not contain the root %d", rootID)
	}
	tree.Root = root
	for _, l := range links {
		parent, ok := tree.Index[l.left]
		if !ok {
			continue
		}
		child, ok := tree.Index[l.right]
		if !ok {
			continue
		}
		child.Parent = l.left
		child.EffFrom, child.EffTo, child.StrcOpt = l.effFrom, l.effTo, l.opt
		parent.Children = append(parent.Children, child)
	}
	return tree, nil
}

// pruneSubtree removes a node and its descendants from the tree index
// (client-side equivalent of a node failing an ∃structure condition
// inside the recursion: its subtree is never reached).
func (t *Tree) pruneSubtree(n *Node) {
	var rec func(*Node)
	rec = func(x *Node) {
		delete(t.Index, x.ObID)
		for _, c := range x.Children {
			rec(c)
		}
	}
	rec(n)
	if parent, ok := t.Index[n.Parent]; ok {
		kept := parent.Children[:0]
		for _, c := range parent.Children {
			if c != n {
				kept = append(kept, c)
			}
		}
		parent.Children = kept
	}
	if t.Root == n {
		t.Root = nil
	}
}

// nodeToUnifiedRow re-projects a Node into the unified layout so rule
// conditions can be evaluated client-side against received objects.
func nodeToUnifiedRow(n *Node) storage.Row {
	row := make(storage.Row, len(UnifiedCols))
	row[colType] = types.NewText(n.Type)
	row[colObID] = types.NewInt(n.ObID)
	row[colName] = types.NewText(n.Name)
	row[colDec] = types.NewText(n.Dec)
	row[colMakeOrBuy] = types.NewText(n.MakeOrBuy)
	row[colState] = types.NewText(n.State)
	row[colMaterial] = types.NewText(n.Material)
	row[colWeight] = types.NewFloat(n.Weight)
	row[colCheckedOut] = types.NewBool(n.CheckedOut)
	row[colData] = types.NewText("")
	row[colPathOpt] = types.NewText(n.PathOpt)
	if n.Parent != 0 {
		row[colLeft] = types.NewInt(n.Parent)
		row[colRight] = types.NewInt(n.ObID)
		row[colEffFrom] = types.NewInt(n.EffFrom)
		row[colEffTo] = types.NewInt(n.EffTo)
		row[colStrcOpt] = types.NewText(n.StrcOpt)
	} else {
		row[colLeft] = types.Null
		row[colRight] = types.Null
		row[colEffFrom] = types.Null
		row[colEffTo] = types.Null
		row[colStrcOpt] = types.Null
	}
	return row
}
