package core_test

import (
	"context"
	"testing"

	"pdmtune/internal/cache"
	"pdmtune/internal/core"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/workload"
)

// TestCachedMLEAllWireModes: under both navigational strategies and
// every wire mode (plain, batched, prepared), a warm cached MLE
// returns exactly the cold tree, costs at most the validate round
// trip, and serves every page locally.
func TestCachedMLEAllWireModes(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	ctx := context.Background()
	for _, strat := range []costmodel.Strategy{costmodel.LateEval, costmodel.EarlyEval} {
		for _, batched := range []bool{false, true} {
			for _, prepared := range []bool{false, true} {
				c, meter := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
				c.SetBatching(batched)
				c.SetPrepared(prepared)
				c.SetCache(cache.New(1<<12), "test")
				cold, err := c.MultiLevelExpand(ctx, prod.RootID)
				if err != nil {
					t.Fatalf("%v b=%v p=%v: cold MLE: %v", strat, batched, prepared, err)
				}
				before := meter.Metrics
				warm, err := c.MultiLevelExpand(ctx, prod.RootID)
				if err != nil {
					t.Fatalf("%v b=%v p=%v: warm MLE: %v", strat, batched, prepared, err)
				}
				d := meter.Metrics.Sub(before)
				if d.RoundTrips > 1 || d.ValidateRoundTrips != 1 {
					t.Errorf("%v b=%v p=%v: warm MLE cost %d round trips (%d validate), want 1 validate only",
						strat, batched, prepared, d.RoundTrips, d.ValidateRoundTrips)
				}
				if d.CacheMisses != 0 || d.CacheHits == 0 {
					t.Errorf("%v b=%v p=%v: warm MLE hits=%d misses=%d", strat, batched, prepared, d.CacheHits, d.CacheMisses)
				}
				idsC, idsW := visibleIDs(cold.Tree), visibleIDs(warm.Tree)
				if len(idsC) != len(idsW) {
					t.Fatalf("%v b=%v p=%v: warm sees %d nodes, cold %d", strat, batched, prepared, len(idsW), len(idsC))
				}
				for i := range idsC {
					if idsC[i] != idsW[i] {
						t.Fatalf("%v b=%v p=%v: node %d differs: %d != %d", strat, batched, prepared, i, idsW[i], idsC[i])
					}
				}
				if warm.RowsReceived != 0 {
					t.Errorf("%v b=%v p=%v: warm MLE received %d rows over the wire", strat, batched, prepared, warm.RowsReceived)
				}
			}
		}
	}
}

// TestCachedExpandAfterRawWrite: validate-on-use catches even writes
// the client performed outside the action machinery (raw Exec), which
// the local invalidation cannot see.
func TestCachedExpandAfterRawWrite(t *testing.T) {
	srv := pdmServer(t)
	ctx := context.Background()
	c, meter := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), costmodel.EarlyEval)
	c.SetCache(cache.New(256), "test")
	if _, err := c.Expand(ctx, 1); err != nil {
		t.Fatal(err)
	}
	warm, err := c.Expand(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.CacheHits == 0 {
		t.Fatal("second expand not served from cache")
	}
	// A raw write touching a child of 1 stales the cached page.
	if _, err := c.Exec(ctx, "UPDATE assy SET state = 'draft' WHERE obid = 2"); err != nil {
		t.Fatal(err)
	}
	before := meter.Metrics
	res, err := c.Expand(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := meter.Metrics.Sub(before)
	if d.CacheMisses == 0 {
		t.Error("expand after raw write served stale cached page")
	}
	found := false
	for _, ch := range res.Tree.Root.Children {
		if ch.ObID == 2 && ch.State == "draft" {
			found = true
		}
	}
	if !found {
		t.Error("refetched expand does not reflect the raw write")
	}
}
