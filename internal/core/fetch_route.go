package core

import (
	"context"
)

// routedFetcher is the topology-aware read path of a client at a
// replica site. The routing itself is in the wiring — the client's
// read transport already points at the site-local replica server and
// SetPrimary points the write path at the primary — so the only job
// left at fetch time is freshness: once per action, before the first
// byte is read (cache validation included, which is why this layer
// sits outermost), the site is synced when it is stale beyond the
// session's bound. Sessions without a bound never sync here and read
// whatever the site last pulled — the paper-faithful "read your own
// site" semantics.
type routedFetcher struct {
	inner fetcher
	site  *siteRouting
	// checked marks that this action already ran its freshness check;
	// reset by BeginAction so each user action checks at most once.
	checked bool
}

// BeginAction opens a fresh staleness scope for the next user action.
func (f *routedFetcher) BeginAction() {
	f.checked = false
	f.inner.BeginAction()
}

// EnsureFresh applies the session's staleness bound: at most one sync
// check per action, skipped entirely for unbounded (read-your-own-site)
// sessions.
func (f *routedFetcher) EnsureFresh(ctx context.Context) error {
	if f.checked || f.site.bound < 0 {
		return nil
	}
	f.checked = true
	return f.site.syncer.SyncIfStale(ctx, f.site.bound)
}

func (f *routedFetcher) ExpandLevel(ctx context.Context, parents []*Node, action string) ([]expandPage, int, error) {
	if err := f.EnsureFresh(ctx); err != nil {
		return nil, 0, err
	}
	return f.inner.ExpandLevel(ctx, parents, action)
}

func (f *routedFetcher) LookupType(ctx context.Context, obid int64) (string, error) {
	if err := f.EnsureFresh(ctx); err != nil {
		return "", err
	}
	return f.inner.LookupType(ctx, obid)
}

func (f *routedFetcher) FetchRecursive(ctx context.Context, root int64, action string) (*Tree, int, uint64, error) {
	if err := f.EnsureFresh(ctx); err != nil {
		return nil, 0, 0, err
	}
	return f.inner.FetchRecursive(ctx, root, action)
}
