package core

import (
	"context"
	"errors"

	"pdmtune/internal/minisql/types"
	"pdmtune/internal/wire"
)

// This file is the wire fetcher's ∃structure probe strategy: the
// extra round trips a navigational client must pay per candidate node
// because the related objects live only in the server's database.

// probeStmtPrepared returns the parameterized ∃structure probe for one
// rule and object type, cached per session. Every reference to
// <objType>.obid becomes a parameter bound to the probed id.
func (c *Client) probeStmtPrepared(cond, objType string) (preparedStmt, error) {
	key := "probe\x00" + objType + "\x00" + cond
	if st, ok := c.preparedSQL[key]; ok {
		return st, nil
	}
	q, nparams, err := BuildProbeExistsParam(cond, c.user, objType)
	if err != nil {
		return preparedStmt{}, err
	}
	st := preparedStmt{sql: q.String(), nparams: nparams}
	c.preparedSQL[key] = st
	return st, nil
}

// probeRequest builds the wire request probing one ∃structure rule for
// one candidate node.
func (c *Client) probeRequest(ctx context.Context, r Rule, n *Node) (*wire.Request, error) {
	if c.prepared {
		st, err := c.probeStmtPrepared(r.Cond, n.Type)
		if err != nil {
			return nil, err
		}
		h, err := c.ensurePrepared(ctx, st.sql)
		if err != nil {
			return nil, err
		}
		params := make([]types.Value, st.nparams)
		for i := range params {
			params[i] = types.NewInt(n.ObID)
		}
		return &wire.Request{Prepared: true, Handle: h, Params: params}, nil
	}
	probe, err := BuildProbeExists(r.Cond, c.user, n.Type, n.ObID)
	if err != nil {
		return nil, err
	}
	return &wire.Request{SQL: probe.String()}, nil
}

// probeExistsStructure checks ∃structure rules for one candidate object
// by shipping a probe query per rule group — the round trips a
// navigational client cannot avoid.
func (w *wireFetcher) probeExistsStructure(ctx context.Context, n *Node, action string) (bool, error) {
	c := w.c
	rules := c.rules.Relevant(c.user.Name, []string{action, ActionAccess}, n.Type, KindExistsStructure)
	if len(rules) == 0 {
		return true, nil
	}
	for _, r := range rules {
		req, err := c.probeRequest(ctx, r, n)
		if err != nil {
			return false, err
		}
		resp, err := c.execRequest(ctx, req)
		if err != nil {
			return false, err
		}
		if len(resp.Rows) > 0 {
			return true, nil // permissions are OR-combined
		}
	}
	return false, nil
}

// probeExistsStructureBatched checks ∃structure rules for all candidates
// of one BFS level with a single batch of probe queries instead of one
// round trip per (node, rule) pair. The per-node verdict is unchanged:
// a node survives when any of its rules' probes returns a row, and — as
// in the unbatched OR short-circuit — a probe that errors only fails the
// action when no earlier rule already permitted its node; otherwise the
// surviving probes are re-batched past the failure.
func (w *wireFetcher) probeExistsStructureBatched(ctx context.Context, children [][]*Node, action string) ([][]*Node, error) {
	c := w.c
	type nodeRef struct{ level, child int }
	type probe struct {
		node nodeRef
		req  *wire.Request
	}
	var pending []probe
	probed := map[nodeRef]bool{}
	permit := map[nodeRef]bool{}
	for i, ns := range children {
		for j, n := range ns {
			rules := c.rules.Relevant(c.user.Name, []string{action, ActionAccess}, n.Type, KindExistsStructure)
			for _, r := range rules {
				req, err := c.probeRequest(ctx, r, n)
				if err != nil {
					return nil, err
				}
				ref := nodeRef{level: i, child: j}
				pending = append(pending, probe{node: ref, req: req})
				probed[ref] = true
			}
		}
	}
	for len(pending) > 0 {
		// Short-circuit: a node permitted by an earlier rule needs no
		// further probes (permissions are OR-combined).
		var rest []probe
		for _, p := range pending {
			if !permit[p.node] {
				rest = append(rest, p)
			}
		}
		pending = rest
		if len(pending) == 0 {
			break
		}
		reqs := make([]*wire.Request, len(pending))
		for i, p := range pending {
			reqs[i] = p.req
		}
		resps, err := c.sql.ExecBatch(ctx, reqs)
		for i, resp := range resps {
			if len(resp.Rows) > 0 {
				permit[pending[i].node] = true
			}
		}
		if err == nil {
			break
		}
		var be *wire.BatchError
		if !errors.As(err, &be) {
			return nil, err
		}
		// The unbatched client would only reach this probe if no earlier
		// rule had permitted the node — in that case the error is real.
		if !permit[pending[be.Index].node] {
			return nil, err
		}
		pending = pending[be.Index+1:]
	}
	out := make([][]*Node, len(children))
	for i, ns := range children {
		for j, n := range ns {
			ref := nodeRef{level: i, child: j}
			if !probed[ref] || permit[ref] {
				out[i] = append(out[i], n)
			}
		}
	}
	return out, nil
}
