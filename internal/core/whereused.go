package core

import (
	"context"
	"fmt"

	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// The engineering-change workloads: where-used (the inverse traversal —
// which assemblies use this part), ECO propagation (touch a part,
// revalidate every assembly the change reaches) and the bulk reporting
// scan. Where-used walks the structure upward, against the direction
// the subscription closure guarantees, so on a partial replica these
// traversals route wholly to the primary as fall-through reads; the
// reporting scan stays site-local and aggregates what the site holds.

// whereUsedExec picks the statement path of an upward traversal: the
// site-local read connection normally, the primary (counted as
// fall-through) when the replica is subscription-bounded — an ancestor
// chain can leave the subscribed subtree at any level, so the whole
// traversal runs where the full structure lives.
func (c *Client) whereUsedExec() func(ctx context.Context, sql string) (*wire.Response, error) {
	if c.partialReplica() {
		return c.execFallThrough
	}
	return func(ctx context.Context, sql string) (*wire.Response, error) {
		return c.sql.Exec(ctx, sql)
	}
}

// whereUsedClosure walks the link structure upward from start and
// returns every transitive ancestor (start excluded) in BFS order,
// plus the rows received. One statement per ancestor level; the last
// level's empty answer is what terminates the walk, as in the downward
// navigational expand.
func (c *Client) whereUsedClosure(ctx context.Context, start int64) ([]int64, int, error) {
	exec := c.whereUsedExec()
	seen := map[int64]bool{start: true}
	frontier := []int64{start}
	var ancestors []int64
	received := 0
	for len(frontier) > 0 {
		resp, err := exec(ctx, BuildWhereUsedLevelSQL(frontier))
		if err != nil {
			return nil, 0, err
		}
		received += len(resp.Rows)
		var next []int64
		for _, row := range resp.Rows {
			if len(row) == 0 || row[0].Kind() != types.KindInt {
				continue
			}
			id := row[0].Int()
			if !seen[id] {
				seen[id] = true
				ancestors = append(ancestors, id)
				next = append(next, id)
			}
		}
		frontier = next
	}
	return ancestors, received, nil
}

// WhereUsed performs the where-used action: find every assembly that
// (transitively) uses the given part, then fetch their records. The
// traversal is navigational and upward — one statement per ancestor
// level — followed by one set-oriented record fetch; row conditions are
// evaluated at the client (the inverse traversal has no rule-modified
// builder, so every strategy filters late here).
func (c *Client) WhereUsed(ctx context.Context, part int64) (*ActionResult, error) {
	before := c.snapshot()
	c.fetch.BeginAction()
	if err := c.fetch.EnsureFresh(ctx); err != nil {
		return nil, err
	}
	ancestors, received, err := c.whereUsedClosure(ctx, part)
	if err != nil {
		return nil, err
	}
	res := &ActionResult{}
	if len(ancestors) > 0 {
		resp, err := c.whereUsedExec()(ctx, BuildFetchNodesSQL(ancestors))
		if err != nil {
			return nil, err
		}
		received += len(resp.Rows)
		for _, row := range resp.Rows {
			n, err := decodeNode(row)
			if err != nil {
				return nil, err
			}
			c.rememberType(n)
			ok, err := c.localRowPermitted(n.Type, []string{ActionWhereUsed, ActionAccess}, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			res.Objects = append(res.Objects, n)
		}
	}
	res.RowsReceived = received
	res.Visible = len(res.Objects)
	res.Metrics = c.delta(before)
	c.countAction(ActionWhereUsed, part, false)
	return res, nil
}

// ECOResult reports one engineering-change propagation.
type ECOResult struct {
	// Affected lists the assemblies the change reaches (the part's
	// where-used closure).
	Affected []int64
	// Updated counts the objects whose state was revalidated — the part
	// plus the affected assemblies that were not checked out.
	Updated int
	// Conflicts counts the objects skipped because a user holds them
	// checked out; the change owner must retry after check-in.
	Conflicts int
	// RowsReceived counts rows shipped during the traversal.
	RowsReceived int
	// Metrics is the WAN cost of the whole action.
	Metrics netsim.Metrics
}

// ECOPropagate performs an engineering-change order against one part:
// walk its where-used closure, then flip the part and every affected
// assembly into the new state. The updates are conditional on the
// checked-out flag — an object someone holds checked out is not
// revalidated under them and is reported as a conflict instead. Cached
// structures covering the changed objects are invalidated locally.
func (c *Client) ECOPropagate(ctx context.Context, part int64, newState string) (*ECOResult, error) {
	before := c.snapshot()
	c.fetch.BeginAction()
	if err := c.fetch.EnsureFresh(ctx); err != nil {
		return nil, err
	}
	affected, received, err := c.whereUsedClosure(ctx, part)
	if err != nil {
		return nil, err
	}
	partType, err := c.fetch.LookupType(ctx, part)
	if err != nil {
		return nil, err
	}
	stmts := []string{fmt.Sprintf(
		"UPDATE %s SET state = %s WHERE obid = %d AND checkedout <> TRUE",
		partType, sqlText(newState), part)}
	if len(affected) > 0 {
		// Upward link traversal only ever reaches assemblies (only they
		// parent links), so one table covers the whole closure.
		stmts = append(stmts, fmt.Sprintf(
			"UPDATE assy SET state = %s WHERE obid IN (%s) AND checkedout <> TRUE",
			sqlText(newState), idList(affected)))
	}
	updated := 0
	err = c.withWrite(func(w *wire.Client, _ map[string]uint32) error {
		updated = 0
		for _, sql := range stmts {
			resp, err := w.Exec(ctx, sql)
			if err != nil {
				return err
			}
			updated += resp.RowsAffected
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &ECOResult{
		Affected:     affected,
		Updated:      updated,
		Conflicts:    1 + len(affected) - updated,
		RowsReceived: received,
	}
	if out.Conflicts > 0 {
		if m := c.conflictMeter(); m != nil {
			m.CountContention(0, 0, int64(out.Conflicts))
		}
	}
	// The states just changed under every cached entry covering these
	// objects — retire them locally, without a round trip.
	c.invalidateCache(append(append([]int64(nil), affected...), part))
	out.Metrics = c.delta(before)
	c.countAction(ActionECO, part, true)
	return out, nil
}

// ReportResult is the bulk reporting scan's aggregate.
type ReportResult struct {
	// Assemblies and Components count the product's nodes by kind.
	Assemblies, Components int
	// CheckedOut counts nodes currently held checked out.
	CheckedOut int
	// TotalWeight sums the weight attribute over all nodes.
	TotalWeight float64
	// RowsReceived counts rows shipped for the scan.
	RowsReceived int
	// Metrics is the WAN cost of the whole action.
	Metrics netsim.Metrics
}

// Report performs the bulk reporting scan: a full-structure aggregate
// over one product — node counts, total weight, outstanding check-outs
// — computed from two set-oriented scans shipped to the client. At a
// replica site the scans run against the local replica (a
// subscription-bounded site reports over what it holds, which is the
// per-site view the paper's reporting clients want).
func (c *Client) Report(ctx context.Context, prod int64) (*ReportResult, error) {
	before := c.snapshot()
	c.fetch.BeginAction()
	if err := c.fetch.EnsureFresh(ctx); err != nil {
		return nil, err
	}
	out := &ReportResult{}
	for _, table := range []string{"assy", "comp"} {
		resp, err := c.sql.Exec(ctx, fmt.Sprintf(
			"SELECT obid, weight, checkedout FROM %s WHERE prod = %d", table, prod))
		if err != nil {
			return nil, err
		}
		out.RowsReceived += len(resp.Rows)
		for _, row := range resp.Rows {
			if len(row) < 3 {
				continue
			}
			if table == "assy" {
				out.Assemblies++
			} else {
				out.Components++
			}
			if f, ok := row[1].AsFloat(); ok {
				out.TotalWeight += f
			}
			if types.Truth(row[2]) == types.True {
				out.CheckedOut++
			}
		}
	}
	out.Metrics = c.delta(before)
	c.countAction(ActionReport, prod, false)
	return out, nil
}
