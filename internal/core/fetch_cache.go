package core

import (
	"context"

	"pdmtune/internal/cache"
	"pdmtune/internal/wire"
)

// cachedFetcher decorates a wire fetcher with the version-validated
// structure cache: fetched expand pages and recursive trees are kept
// in an LRU store stamped with the server epoch of their fetch, and a
// warm action revalidates the whole cached closure in one TypeValidate
// round trip (ids + versions up, stale ids back) instead of
// re-shipping the structure. Staleness semantics:
//
//   - validate-on-use: the first fetch of every action validates all
//     cached entries reachable from its roots in one exchange; entries
//     whose objects the server reports stale are dropped and re-fetched,
//     everything else is served locally for the rest of the action.
//   - invalidate-on-write: the client's own write actions (check-out,
//     check-in) drop affected entries directly — no round trip, and
//     sessions sharing the store see the drop immediately.
//
// The wire fetcher underneath is unchanged: a cold action costs
// exactly what an uncached session pays.
type cachedFetcher struct {
	inner   fetcher
	c       *Client
	store   *cache.Store
	profile string
	// validated marks the store keys this action already revalidated
	// (or just fetched); reset by BeginAction.
	validated map[cache.Key]bool
}

// cachedPage is the stored value of one expand page: the visible
// children of one parent, held as childless clones.
type cachedPage struct {
	children []*Node
}

// cachedTree is the stored value of one recursive fetch. (The row
// count is not kept: a warm hit ships nothing, so it reports zero
// rows received.)
type cachedTree struct {
	tree *Tree
}

// BeginAction starts a fresh validation scope: the next fetch
// revalidates the cached closure it touches in one exchange.
func (f *cachedFetcher) BeginAction() {
	f.validated = map[cache.Key]bool{}
	f.inner.BeginAction()
}

// EnsureFresh delegates down: the cache has no freshness state of its
// own beyond the per-action validation scope.
func (f *cachedFetcher) EnsureFresh(ctx context.Context) error { return f.inner.EnsureFresh(ctx) }

func (f *cachedFetcher) key(id int64, action string) cache.Key {
	return cache.Key{ID: id, Action: action, Profile: f.profile}
}

// ensureValidated revalidates, in at most one round trip, every
// not-yet-validated cached entry reachable from the given roots under
// this action: the entries' (id, fetch-epoch) pairs travel up, the
// stale ids come back, and every entry depending on a stale id is
// dropped (a later fetch re-fills it). Walking the cached closure —
// each page names its children, which key the next level's pages —
// is what lets a fully warm multi-level expand validate its whole
// tree before the first level is served.
func (f *cachedFetcher) ensureValidated(ctx context.Context, roots []int64, action string) error {
	// Checks are deduplicated per id at the oldest stamp among the
	// entries depending on it. This is deliberately conservative: when
	// two entries check the same object at different epochs and it
	// changed between them, both are dropped — the fresher one is
	// re-fetched needlessly, but a stale entry can never survive.
	var keys []cache.Key
	since := map[int64]uint64{} // id -> oldest stamp among entries checking it
	queue := append([]int64(nil), roots...)
	seen := map[int64]bool{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		k := f.key(id, action)
		if f.validated[k] {
			continue
		}
		e, ok := f.store.Get(k)
		if !ok {
			continue
		}
		keys = append(keys, k)
		for _, vid := range e.ValidateIDs {
			if s, ok := since[vid]; !ok || e.Stamp < s {
				since[vid] = e.Stamp
			}
		}
		if page, ok := e.Value.(cachedPage); ok {
			for _, ch := range page.children {
				queue = append(queue, ch.ObID)
			}
		}
	}
	if len(keys) == 0 {
		return nil
	}
	checks := make([]wire.StaleCheck, 0, len(since))
	for id, s := range since {
		checks = append(checks, wire.StaleCheck{ID: id, Since: s})
	}
	stale, err := f.c.sql.Validate(ctx, checks)
	if err != nil {
		return err
	}
	if len(stale) > 0 {
		f.store.Invalidate(stale...)
	}
	for _, k := range keys {
		if _, ok := f.store.Get(k); ok {
			f.validated[k] = true
		}
	}
	return nil
}

// ExpandLevel serves every validated cached parent locally and fetches
// only the rest through the wire fetcher, caching their pages for the
// next action.
func (f *cachedFetcher) ExpandLevel(ctx context.Context, parents []*Node, action string) ([]expandPage, int, error) {
	ids := make([]int64, len(parents))
	for i, p := range parents {
		ids[i] = p.ObID
	}
	if err := f.ensureValidated(ctx, ids, action); err != nil {
		return nil, 0, err
	}
	pages := make([]expandPage, len(parents))
	var missIdx []int
	var missParents []*Node
	hits := 0
	for i, p := range parents {
		k := f.key(p.ObID, action)
		if e, ok := f.store.Get(k); ok && f.validated[k] {
			if page, ok := e.Value.(cachedPage); ok {
				pages[i] = expandPage{Children: cloneNodes(page.children)}
				hits++
				continue
			}
		}
		missIdx = append(missIdx, i)
		missParents = append(missParents, p)
	}
	received := 0
	if len(missParents) > 0 {
		fetched, got, err := f.inner.ExpandLevel(ctx, missParents, action)
		if err != nil {
			return nil, 0, err
		}
		received = got
		for j, page := range fetched {
			i := missIdx[j]
			pages[i] = page
			f.putPage(missParents[j].ObID, action, page)
		}
	}
	f.countCache(hits, len(missParents))
	return pages, received, nil
}

// putPage stores one fetched expand page. The page validates (and is
// invalidated) against the parent and every received row — filtered
// children included, so a modify that makes a hidden child visible is
// detected. Objects a page depends on only through rule predicates
// (e.g. the spec documents an ∃structure probe joins) are not in the
// id set: changing them goes undetected until the relation rows
// change too or the entry leaves the cache — a documented granularity
// limit of per-object versioning. Pages without a server epoch are
// not cacheable.
func (f *cachedFetcher) putPage(parent int64, action string, page expandPage) {
	if page.Epoch == 0 {
		return
	}
	ids := make([]int64, 0, len(page.AllIDs)+1)
	ids = append(ids, parent)
	ids = append(ids, page.AllIDs...)
	k := f.key(parent, action)
	f.store.Put(k, cache.Entry{
		Value:         cachedPage{children: cloneNodes(page.Children)},
		Stamp:         page.Epoch,
		ValidateIDs:   ids,
		InvalidateIDs: ids,
	})
	f.validated[k] = true
}

// LookupType delegates to the wire fetcher, which already consults the
// (bounded) type cache: object types are immutable, so they need no
// version validation.
func (f *cachedFetcher) LookupType(ctx context.Context, obid int64) (string, error) {
	return f.inner.LookupType(ctx, obid)
}

// FetchRecursive serves a validated cached tree locally, or fetches
// and caches it. A warm recursive MLE costs one validate exchange
// instead of re-shipping every node record — the latency is the same
// single round trip, but the transferred volume collapses to the
// id+version list.
func (f *cachedFetcher) FetchRecursive(ctx context.Context, root int64, action string) (*Tree, int, uint64, error) {
	if err := f.ensureValidated(ctx, []int64{root}, action); err != nil {
		return nil, 0, 0, err
	}
	k := f.key(root, action)
	if e, ok := f.store.Get(k); ok && f.validated[k] {
		if ct, ok := e.Value.(cachedTree); ok {
			f.countCache(1, 0)
			return cloneTree(ct.tree), 0, e.Stamp, nil
		}
	}
	tree, received, epoch, err := f.inner.FetchRecursive(ctx, root, action)
	if err != nil {
		return nil, 0, 0, err
	}
	f.countCache(0, 1)
	if epoch > 0 && tree != nil && tree.Root != nil {
		ids := treeIDs(tree)
		f.store.Put(k, cache.Entry{
			Value:         cachedTree{tree: cloneTree(tree)},
			Stamp:         epoch,
			ValidateIDs:   ids,
			InvalidateIDs: ids,
		})
		f.validated[k] = true
	}
	return tree, received, epoch, nil
}

// countCache charges hits/misses and the fetch round trips the hits
// avoided: one per locally-served parent when each parent would have
// been its own round trip, one per fully-served level under batching.
func (f *cachedFetcher) countCache(hits, misses int) {
	if f.c.meter == nil || hits+misses == 0 {
		return
	}
	saved := hits
	if f.c.batching {
		saved = 0
		if hits > 0 && misses == 0 {
			saved = 1
		}
	}
	f.c.meter.CountCache(hits, misses, saved)
}

// ---------------------------------------------------------------------------
// clone helpers — cached values are owned by the store; both puts and
// gets deep-copy so no session can mutate another's view.

// cloneNodes copies expand-page children: per-node copies without
// Children links (the BFS loop re-attaches them per action).
func cloneNodes(ns []*Node) []*Node {
	out := make([]*Node, len(ns))
	for i, n := range ns {
		cp := *n
		cp.Children = nil
		out[i] = &cp
	}
	return out
}

// cloneTree deep-copies a reassembled tree, index included.
func cloneTree(t *Tree) *Tree {
	out := &Tree{Index: map[int64]*Node{}}
	if t == nil || t.Root == nil {
		return out
	}
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		cp := *n
		cp.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			cp.Children[i] = rec(ch)
		}
		out.Index[cp.ObID] = &cp
		return &cp
	}
	out.Root = rec(t.Root)
	return out
}

// treeIDs lists every node id of a tree (root included).
func treeIDs(t *Tree) []int64 {
	var ids []int64
	t.Walk(func(n *Node) { ids = append(ids, n.ObID) })
	return ids
}
