package core_test

import (
	"context"
	"math"
	"sort"
	"testing"

	"pdmtune/internal/core"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/minisql"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
	"pdmtune/internal/workload"
)

// pdmServer builds a database server with the paper's Figure 2 example.
func pdmServer(t *testing.T) *wire.Server {
	t.Helper()
	db := minisql.NewDB()
	if err := workload.LoadPaperExample(db.NewSession()); err != nil {
		t.Fatalf("loading paper example: %v", err)
	}
	// The server's procedures enforce the check-out rule regardless of
	// which client calls them.
	rules := core.StandardRules()
	rules.MustAdd(core.CheckOutRule())
	core.RegisterProcedures(db, rules)
	return wire.NewServer(db)
}

// pdmClient connects a metered client under the given strategy.
func pdmClient(srv *wire.Server, rules *core.RuleTable, user core.UserContext, s costmodel.Strategy) (*core.Client, *netsim.Meter) {
	meter := netsim.NewMeter(netsim.Intercontinental())
	ch := &wire.MeteredChannel{Conn: srv.NewConn(), Meter: meter}
	return core.NewClient(ch, meter, rules, user, s), meter
}

// generatedServer builds a server with a generated β-ary product.
func generatedServer(t *testing.T, cfg workload.Config) (*wire.Server, *workload.Product) {
	t.Helper()
	db := minisql.NewDB()
	prod, err := workload.Generate(db.NewSession(), cfg)
	if err != nil {
		t.Fatalf("generating workload: %v", err)
	}
	core.RegisterProcedures(db, core.StandardRules())
	return wire.NewServer(db), prod
}

func visibleIDs(tree *core.Tree) []int64 {
	var ids []int64
	tree.Walk(func(n *core.Node) {
		if tree.Root != n {
			ids = append(ids, n.ObID)
		}
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestExpandPaperExample(t *testing.T) {
	srv := pdmServer(t)
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		res, err := c.Expand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: expand: %v", strat, err)
		}
		ids := visibleIDs(res.Tree)
		if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
			t.Errorf("%v: children of 1 = %v, want [2 3]", strat, ids)
		}
	}
}

func TestMLEPaperExampleAllStrategies(t *testing.T) {
	srv := pdmServer(t)
	want := []int64{2, 3, 4, 5, 101, 102, 103, 104}
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: MLE: %v", strat, err)
		}
		ids := visibleIDs(res.Tree)
		if len(ids) != len(want) {
			t.Fatalf("%v: MLE returned %v, want %v", strat, ids, want)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Errorf("%v: node %d = %d, want %d", strat, i, ids[i], want[i])
			}
		}
	}
}

func TestEffectivityFiltersLinks(t *testing.T) {
	srv := pdmServer(t)
	// Effectivity units 8..10: link 1001 (1-3) and 1006 (1-5) drop out,
	// so assembly 2's subtree and component 102 disappear.
	user := core.UserContext{Name: "scott", Options: "base", EffFrom: 8, EffTo: 10}
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, core.StandardRules(), user, strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: MLE: %v", strat, err)
		}
		ids := visibleIDs(res.Tree)
		want := []int64{3}
		if len(ids) != len(want) || ids[0] != want[0] {
			t.Errorf("%v: MLE with eff 8-10 = %v, want %v", strat, ids, want)
		}
	}
}

func TestScottRowRule(t *testing.T) {
	srv := pdmServer(t)
	// Paper example 1: Scott may multi-level-expand assemblies only if
	// they are not bought from a supplier. Assy3 has make_or_buy = 'buy'.
	rules := core.StandardRules()
	rules.MustAdd(core.Rule{
		User: "scott", Action: core.ActionMLE, ObjType: "assy",
		Kind: core.KindRow, Cond: "assy.make_or_buy <> 'buy'",
	})
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, rules, core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: MLE: %v", strat, err)
		}
		for _, id := range visibleIDs(res.Tree) {
			if id == 3 {
				t.Errorf("%v: bought assembly 3 must be filtered", strat)
			}
		}
		// Another user is unaffected by Scott's rule.
		c2, _ := pdmClient(srv, rules, core.DefaultUser("erich"), strat)
		res2, err := c2.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: MLE as erich: %v", strat, err)
		}
		found := false
		for _, id := range visibleIDs(res2.Tree) {
			if id == 3 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: assembly 3 must stay visible for other users", strat)
		}
	}
}

func TestExistsStructureRule(t *testing.T) {
	srv := pdmServer(t)
	// Section 5.3.2: components are visible only when specified by at
	// least one document. Specs exist for 101 and 103 only.
	rules := core.StandardRules()
	rules.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionAccess, ObjType: "comp",
		Kind: core.KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)",
	})
	want := []int64{2, 3, 4, 5, 101, 103}
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, rules, core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: MLE: %v", strat, err)
		}
		ids := visibleIDs(res.Tree)
		if len(ids) != len(want) {
			t.Fatalf("%v: MLE = %v, want %v", strat, ids, want)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Errorf("%v: node %d = %d, want %d", strat, i, ids[i], want[i])
			}
		}
	}
	// The navigational strategies pay probe round trips; the recursive
	// strategy must not.
	cNav, mNav := pdmClient(srv, rules, core.DefaultUser("scott"), costmodel.EarlyEval)
	if _, err := cNav.MultiLevelExpand(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	cRec, mRec := pdmClient(srv, rules, core.DefaultUser("scott"), costmodel.Recursive)
	if _, err := cRec.MultiLevelExpand(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if mRec.Metrics.RoundTrips != 1 {
		t.Errorf("recursive MLE took %d round trips, want 1", mRec.Metrics.RoundTrips)
	}
	if mNav.Metrics.RoundTrips <= mRec.Metrics.RoundTrips {
		t.Errorf("navigational probing should cost extra round trips (nav=%d rec=%d)",
			mNav.Metrics.RoundTrips, mRec.Metrics.RoundTrips)
	}
}

func TestTreeAggregateRule(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	// Section 5.3.3: the user may only retrieve trees containing at most
	// ten assemblies — the example tree has four visible ones, so it
	// survives; with a limit of two it must come back empty.
	rules.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionMLE, ObjType: core.TreeObjType,
		Kind: core.KindTreeAggregate,
		Cond: "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10",
	})
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, rules, core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: MLE: %v", strat, err)
		}
		if res.Visible != 8 {
			t.Errorf("%v: visible = %d, want 8", strat, res.Visible)
		}
	}
	strict := core.StandardRules()
	strict.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionMLE, ObjType: core.TreeObjType,
		Kind: core.KindTreeAggregate,
		Cond: "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 2",
	})
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, strict, core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: strict MLE: %v", strat, err)
		}
		if res.Visible != 0 {
			t.Errorf("%v: strict visible = %d, want 0 (all-or-nothing)", strat, res.Visible)
		}
	}
}

func TestForAllRowsCheckOutRule(t *testing.T) {
	for _, strat := range costmodel.Strategies {
		srv := pdmServer(t) // fresh database per strategy (check-out mutates)
		rules := core.StandardRules()
		rules.MustAdd(core.CheckOutRule())
		c, _ := pdmClient(srv, rules, core.DefaultUser("scott"), strat)
		res, err := c.CheckOut(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: check-out: %v", strat, err)
		}
		if !res.Granted || res.Updated != 9 {
			t.Fatalf("%v: check-out granted=%v updated=%d, want true/9", strat, res.Granted, res.Updated)
		}
		// A second check-out must be denied: nodes are checked out now.
		c2, _ := pdmClient(srv, rules, core.DefaultUser("erich"), strat)
		res2, err := c2.CheckOut(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: second check-out: %v", strat, err)
		}
		if res2.Granted {
			t.Errorf("%v: second check-out must be denied by the ∀rows rule", strat)
		}
		// Check-in by the owner restores the tree.
		res3, err := c.CheckIn(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: check-in: %v", strat, err)
		}
		if res3.Updated != 9 {
			t.Errorf("%v: check-in updated %d, want 9", strat, res3.Updated)
		}
	}
}

func TestCheckOutProcedureOneRoundTrip(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	rules.MustAdd(core.CheckOutRule())
	c, meter := pdmClient(srv, rules, core.DefaultUser("scott"), costmodel.Recursive)
	res, err := c.CheckOutViaProcedure(context.Background(), 1)
	if err != nil {
		t.Fatalf("check-out via procedure: %v", err)
	}
	if !res.Granted || res.Updated != 9 {
		t.Fatalf("procedure check-out granted=%v updated=%d, want true/9", res.Granted, res.Updated)
	}
	if meter.Metrics.RoundTrips != 1 {
		t.Errorf("procedure check-out took %d round trips, want 1", meter.Metrics.RoundTrips)
	}
	// And it really is checked out.
	res2, err := c.CheckOutViaProcedure(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Granted {
		t.Error("second procedure check-out must be denied")
	}
	res3, err := c.CheckInViaProcedure(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Updated != 9 {
		t.Errorf("procedure check-in updated %d, want 9", res3.Updated)
	}
}

func TestStrategiesAgreeOnGeneratedTree(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	var results [][]int64
	for _, strat := range costmodel.Strategies {
		c, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), prod.RootID)
		if err != nil {
			t.Fatalf("%v: MLE: %v", strat, err)
		}
		results = append(results, visibleIDs(res.Tree))
	}
	if len(results[0]) == 0 {
		t.Fatal("no visible nodes — broken generator or rules")
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("strategy %v sees %d nodes, strategy %v sees %d",
				costmodel.Strategies[i], len(results[i]), costmodel.Strategies[0], len(results[0]))
		}
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatalf("strategy %v node %d = %d, want %d",
					costmodel.Strategies[i], j, results[i][j], results[0][j])
			}
		}
	}
	// Ground truth: σβ = 2 exactly, so visible counts are 2, 4, 8.
	if got := prod.VisibleNodes(); got != 14 {
		t.Errorf("generator visible nodes = %d, want 14", got)
	}
	if len(results[0]) != 14 {
		t.Errorf("MLE visible nodes = %d, want 14", len(results[0]))
	}
}

func TestQueryAllStrategies(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	cLate, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), costmodel.LateEval)
	late, err := cLate.QueryAll(context.Background(), 1)
	if err != nil {
		t.Fatalf("late query: %v", err)
	}
	cEarly, _ := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), costmodel.EarlyEval)
	early, err := cEarly.QueryAll(context.Background(), 1)
	if err != nil {
		t.Fatalf("early query: %v", err)
	}
	if late.Visible != early.Visible {
		t.Errorf("late sees %d, early sees %d", late.Visible, early.Visible)
	}
	if late.Visible != prod.VisibleNodes()+1 { // +1: the root matches too
		t.Errorf("query sees %d nodes, want %d", late.Visible, prod.VisibleNodes()+1)
	}
	// Late evaluation must transfer the whole product; early only the
	// visible share.
	if late.RowsReceived != prod.AllNodes()+1 {
		t.Errorf("late received %d rows, want %d", late.RowsReceived, prod.AllNodes()+1)
	}
	if early.RowsReceived != early.Visible {
		t.Errorf("early received %d rows, want %d", early.RowsReceived, early.Visible)
	}
	if early.Metrics.ResponseBytes >= late.Metrics.ResponseBytes {
		t.Errorf("early eval must reduce transferred volume (%.0f >= %.0f)",
			early.Metrics.ResponseBytes, late.Metrics.ResponseBytes)
	}
}

// TestRoundTripCounts verifies the simulation reproduces the model's
// query counts: navigational MLE = 1 + n_v expand round trips (plus the
// root's one-off type lookup), recursive = 1.
func TestRoundTripCounts(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	for _, strat := range []costmodel.Strategy{costmodel.LateEval, costmodel.EarlyEval} {
		c, meter := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		if _, err := c.MultiLevelExpand(context.Background(), prod.RootID); err != nil {
			t.Fatal(err)
		}
		want := 2 + prod.VisibleNodes()
		if meter.Metrics.RoundTrips != want {
			t.Errorf("%v: %d round trips, want %d", strat, meter.Metrics.RoundTrips, want)
		}
	}
	c, meter := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), costmodel.Recursive)
	if _, err := c.MultiLevelExpand(context.Background(), prod.RootID); err != nil {
		t.Fatal(err)
	}
	if meter.Metrics.RoundTrips != 1 {
		t.Errorf("recursive MLE: %d round trips, want 1", meter.Metrics.RoundTrips)
	}
}

// TestSimulatedSavingsShape: on a mid-size tree the simulation must
// reproduce the paper's shape — early evaluation barely helps MLE,
// recursion eliminates ≳95 % of the delay.
func TestSimulatedSavingsShape(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 4, Branch: 4, Sigma: 0.5, Seed: 11, PadBytes: 420,
	})
	totals := map[costmodel.Strategy]float64{}
	for _, strat := range costmodel.Strategies {
		c, meter := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		if _, err := c.MultiLevelExpand(context.Background(), prod.RootID); err != nil {
			t.Fatal(err)
		}
		totals[strat] = meter.Metrics.TotalSec()
	}
	if !(totals[costmodel.Recursive] < totals[costmodel.EarlyEval] &&
		totals[costmodel.EarlyEval] < totals[costmodel.LateEval]) {
		t.Fatalf("ordering violated: late=%.2f early=%.2f rec=%.2f",
			totals[costmodel.LateEval], totals[costmodel.EarlyEval], totals[costmodel.Recursive])
	}
	saving := (1 - totals[costmodel.Recursive]/totals[costmodel.LateEval]) * 100
	if saving < 90 {
		t.Errorf("recursive saving = %.1f%%, expected ≳90%% (paper: >95%%)", saving)
	}
	// Early evaluation alone saves little on MLE (paper: ~2%).
	earlySaving := (1 - totals[costmodel.EarlyEval]/totals[costmodel.LateEval]) * 100
	if earlySaving > 30 {
		t.Errorf("early-eval MLE saving = %.1f%%, expected small (paper: ~2%%)", earlySaving)
	}
}

// TestGeneratorGroundTruth checks the generator's visible counts track
// (σβ)^i and the padding produces ~512 B node rows on the wire.
func TestGeneratorGroundTruth(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 4, Branch: 5, Sigma: 0.6, Seed: 3, PadBytes: 420,
	})
	_ = srv
	sb := prod.Config.Sigma * float64(prod.Config.Branch) // 3.0
	expect := 1.0
	for lvl := 1; lvl <= prod.Config.Depth; lvl++ {
		expect *= sb
		got := float64(prod.VisibleCount[lvl])
		if math.Abs(got-expect) > expect/2 {
			t.Errorf("level %d: visible = %.0f, expected ≈ %.0f", lvl, got, expect)
		}
	}
	total := 0
	for lvl := 1; lvl <= prod.Config.Depth; lvl++ {
		total += prod.TotalCount[lvl]
	}
	want := 0
	pow := 1
	for lvl := 1; lvl <= prod.Config.Depth; lvl++ {
		pow *= prod.Config.Branch
		want += pow
	}
	if total != want {
		t.Errorf("total nodes = %d, want %d", total, want)
	}
}
