// Package core implements the paper's contribution: the PDM system layer
// that sits between users and the relational database. It provides
//
//   - the rule machinery of Section 3 (structure options, effectivities
//     and message access rules as 4-tuples with row / ∀rows / ∃structure /
//     tree-aggregate conditions),
//   - the query-modification algorithm of Section 5.5 (steps A-D) that
//     injects translated conditions into navigational and recursive SQL,
//   - the recursive query builder of Section 5.2 with the unified
//     ("homogenized") result type,
//   - the PDM client actions (Query, single-/multi-level expand,
//     check-out/check-in) under the three strategies the paper compares:
//     late evaluation, early rule evaluation, and recursive SQL, and
//   - the Section 6 "function shipping" remedy: a server-side stored
//     procedure for check-out.
package core

import (
	"fmt"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/parser"
	"pdmtune/internal/minisql/types"
)

// Kind classifies rule conditions (paper Figure 1).
type Kind uint8

// The condition classes of Section 3.2. Row conditions involve a single
// object; the three tree-condition classes involve the whole object tree.
const (
	KindRow Kind = iota
	KindForAllRows
	KindExistsStructure
	KindTreeAggregate
)

func (k Kind) String() string {
	switch k {
	case KindRow:
		return "row"
	case KindForAllRows:
		return "forall-rows"
	case KindExistsStructure:
		return "exists-structure"
	case KindTreeAggregate:
		return "tree-aggregate"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Wildcard matches any user or action in a rule.
const Wildcard = "*"

// ActionAccess is the implicit action of Section 5.5 step D: ordinary
// row conditions with action "access" apply to every query touching the
// object type. Structure options and effectivities are "access" rules on
// the relation type "link" (Section 3.1, example 3).
const ActionAccess = "access"

// Standard PDM action names used in rules.
const (
	ActionQuery     = "query"
	ActionExpand    = "expand"
	ActionMLE       = "multi-level-expand"
	ActionCheck     = "check-out"
	ActionWhereUsed = "where-used"
	ActionECO       = "eco"
	ActionReport    = "report"
)

// Rule is the 4-tuple of Section 3.1: a user is permitted to perform an
// action on instances of an object type if the condition is met. The
// condition is stored pre-translated to SQL (Section 4.1: conditions are
// translated "only once ... directly after the definition of a new rule"
// and kept in a rule table at the client).
type Rule struct {
	User    string // user name or "*"
	Action  string // action name, "access", or "*"
	ObjType string // "assy", "comp", "link" — or the unified tree for ∀rows/tree-aggregate rules
	Kind    Kind
	// Cond is the SQL predicate. It may reference the user's environment
	// through the macros {user}, {options}, {eff_from}, {eff_to}, which
	// the query modificator binds at modification time.
	//
	//   - KindRow: predicate over the object type's columns, e.g.
	//     "assy.make_or_buy <> 'buy'".
	//   - KindForAllRows: row condition every tree node must meet, over
	//     the unified columns, e.g. "checkedout <> TRUE".
	//   - KindExistsStructure: EXISTS predicate correlated through
	//     <ObjType>.obid, e.g. "EXISTS (SELECT * FROM specified_by AS s
	//     JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)".
	//   - KindTreeAggregate: predicate with a scalar aggregate over the
	//     unified recursion table rtbl, e.g.
	//     "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10".
	Cond string
}

// UserContext carries the environment variables a session binds into
// rule conditions: the user's name, selected structure options (a
// comma-separated set, cf. sets_overlap) and selected effectivity range.
type UserContext struct {
	Name    string
	Options string
	EffFrom int64
	EffTo   int64
}

// Expand substitutes the environment macros in a condition text with SQL
// literals.
func (u UserContext) Expand(cond string) string {
	r := strings.NewReplacer(
		"{user}", sqlText(u.Name),
		"{options}", sqlText(u.Options),
		"{eff_from}", fmt.Sprintf("%d", u.EffFrom),
		"{eff_to}", fmt.Sprintf("%d", u.EffTo),
	)
	return r.Replace(cond)
}

func sqlText(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// RuleTable is the client-side store of translated rules (Section 5.5:
// "translated conditions are stored — together with the four components
// defining the rule — in ... a table ... at each client").
type RuleTable struct {
	rules []Rule
}

// NewRuleTable returns an empty rule table.
func NewRuleTable() *RuleTable { return &RuleTable{} }

// Add validates the rule's condition (it must parse as an SQL expression
// after macro expansion) and stores it. Only authorized users introduce
// rules (Section 5.5); validation errors surface at definition time.
func (rt *RuleTable) Add(r Rule) error {
	if r.User == "" || r.Action == "" || r.ObjType == "" {
		return fmt.Errorf("core: rule needs user, action and object type")
	}
	probe := UserContext{Name: "probe", Options: "base", EffFrom: 1, EffTo: 1}
	if _, err := parser.ParseExpr(probe.Expand(r.Cond)); err != nil {
		return fmt.Errorf("core: rule condition does not translate to SQL: %v", err)
	}
	rt.rules = append(rt.rules, r)
	return nil
}

// MustAdd is Add for statically known rules; it panics on invalid rules.
func (rt *RuleTable) MustAdd(r Rule) {
	if err := rt.Add(r); err != nil {
		panic(err)
	}
}

// Len reports the number of rules.
func (rt *RuleTable) Len() int { return len(rt.rules) }

// All returns a copy of the stored rules.
func (rt *RuleTable) All() []Rule { return append([]Rule{}, rt.rules...) }

// Relevant returns the rules matching the user, one of the actions, and
// the object type, filtered by kind ("relevant" in the paper's footnote:
// the condition refers to the user, the object type, and the action
// under consideration).
func (rt *RuleTable) Relevant(user string, actions []string, objType string, kind Kind) []Rule {
	var out []Rule
	for _, r := range rt.rules {
		if r.Kind != kind {
			continue
		}
		if r.User != Wildcard && r.User != user {
			continue
		}
		if !strings.EqualFold(r.ObjType, objType) {
			continue
		}
		ok := false
		for _, a := range actions {
			if r.Action == Wildcard || strings.EqualFold(r.Action, a) {
				ok = true
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// disjunction parses and OR-combines the conditions of a rule group
// after binding the user environment (Section 5.5: "form the disjunction
// of all conditions found").
func disjunction(rules []Rule, u UserContext) (ast.Expr, error) {
	var preds []ast.Expr
	for _, r := range rules {
		e, err := parser.ParseExpr(u.Expand(r.Cond))
		if err != nil {
			return nil, fmt.Errorf("core: rule for %s/%s: %v", r.ObjType, r.Action, err)
		}
		preds = append(preds, e)
	}
	return ast.OrAll(preds), nil
}

// StandardRules returns the rule set the generated workload uses:
// structure options and effectivities as "access" rules on the link
// relation (Section 3.1 example 3), and path visibility for the
// set-oriented query action. Rule selectivity matches the generator's σ.
func StandardRules() *RuleTable {
	rt := NewRuleTable()
	// Example 3: "permits every user to access (traverse) the relation if
	// the set of structure options associated with this relation overlaps
	// the user-selected ones." Effectivities behave exactly like structure
	// options; both must hold, so they form one conjunctive condition
	// (rules within a group are OR-combined permissions, cf. Section 5.5).
	rt.MustAdd(Rule{User: Wildcard, Action: ActionAccess, ObjType: "link", Kind: KindRow,
		Cond: "sets_overlap(link.strc_opt, {options})" +
			" AND ranges_overlap(link.eff_from, link.eff_to, {eff_from}, {eff_to})"})
	// The set-oriented Query action filters nodes by their accumulated
	// path options (visible ⇔ every link on the path is visible).
	rt.MustAdd(Rule{User: Wildcard, Action: ActionQuery, ObjType: "assy", Kind: KindRow,
		Cond: "sets_overlap(assy.path_opt, {options})"})
	rt.MustAdd(Rule{User: Wildcard, Action: ActionQuery, ObjType: "comp", Kind: KindRow,
		Cond: "sets_overlap(comp.path_opt, {options})"})
	return rt
}

// DefaultUser returns the user context the generated workload expects:
// options {base} and the full effectivity range.
func DefaultUser(name string) UserContext {
	return UserContext{Name: name, Options: "base", EffFrom: 1, EffTo: 10}
}

// boolValue is a tiny helper for client-side rule evaluation results.
func boolValue(v types.Value) bool {
	return types.Truth(v) == types.True
}
