package core

import (
	"context"
	"errors"
	"fmt"

	"pdmtune/internal/costmodel"
	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/exec"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// Client is the PDM client. It executes the paper's user actions against
// a (remote) database server under one of the three strategies the paper
// compares; every statement crosses the WAN transport and is charged to
// the meter. All actions take a context: cancelling it between round
// trips aborts the action with ctx.Err(), and only the round trips that
// actually happened are charged.
type Client struct {
	sql      *wire.Client
	meter    *netsim.Meter
	rules    *RuleTable
	user     UserContext
	strategy costmodel.Strategy

	// local evaluates rule predicates client-side (late evaluation).
	local *exec.Context
	// scratch is the client's local workspace database used to evaluate
	// tree-aggregate conditions over already-fetched trees.
	scratch *minisql.DB
	// batching groups the statements of one logical step (a BFS level of
	// a structure expand, the probes of that level, the updates of a
	// modify) into single wire batches, collapsing WAN round trips.
	batching bool
	// prepared ships the parameterized per-node statements (expand,
	// probes, modify) as prepared executions: the SQL text travels once
	// per session, every repetition is handle + parameters.
	prepared bool
	// handles caches the server-side handle of each prepared SQL text.
	handles map[string]uint32
	// preparedSQL caches the parameterized (and rule-modified) statement
	// texts, keyed by action resp. probe identity.
	preparedSQL map[string]preparedStmt
	// objTypes caches looked-up object types, so the root of a repeated
	// expand costs its type lookup only once.
	objTypes map[int64]string
}

// preparedStmt is a parameterized statement text and the number of
// parameter slots it expects.
type preparedStmt struct {
	sql     string
	nparams int
}

// NewClient connects a PDM client to a transport. meter may be nil (no
// accounting); rules may be empty.
func NewClient(tr wire.Transport, meter *netsim.Meter, rules *RuleTable, user UserContext, strategy costmodel.Strategy) *Client {
	if rules == nil {
		rules = NewRuleTable()
	}
	return &Client{
		sql:         wire.NewClient(tr),
		meter:       meter,
		rules:       rules,
		user:        user,
		strategy:    strategy,
		local:       &exec.Context{Funcs: minisql.BuiltinFuncs()},
		scratch:     minisql.NewDB(),
		handles:     map[string]uint32{},
		preparedSQL: map[string]preparedStmt{},
		objTypes:    map[int64]string{},
	}
}

// Strategy reports the client's access strategy.
func (c *Client) Strategy() costmodel.Strategy { return c.strategy }

// SetBatching switches statement batching on or off. Off (the default)
// reproduces the paper's one-round-trip-per-statement behavior; on, the
// client ships each BFS level of a structure expand and each
// multi-statement modify as one wire batch.
func (c *Client) SetBatching(on bool) { c.batching = on }

// Batching reports whether statement batching is enabled.
func (c *Client) Batching() bool { return c.batching }

// SetPrepared switches prepared-statement execution on or off. Off (the
// default) ships full SQL text per statement, as the paper's system
// does; on, the navigational per-node statements are prepared once per
// session and executed by handle, shrinking every repeated request to a
// few dozen bytes.
func (c *Client) SetPrepared(on bool) { c.prepared = on }

// Prepared reports whether prepared-statement execution is enabled.
func (c *Client) Prepared() bool { return c.prepared }

// User reports the client's user context.
func (c *Client) User() UserContext { return c.user }

// Rules exposes the client's rule table (e.g. for administration).
func (c *Client) Rules() *RuleTable { return c.rules }

// Metrics returns the accumulated WAN metrics.
func (c *Client) Metrics() netsim.Metrics {
	if c.meter == nil {
		return netsim.Metrics{}
	}
	return c.meter.Metrics
}

// ResetMetrics clears the meter (between actions).
func (c *Client) ResetMetrics() {
	if c.meter != nil {
		c.meter.Reset()
	}
}

// Exec ships one raw SQL statement over the WAN (administration, DDL,
// loading). Rule machinery is not applied.
func (c *Client) Exec(ctx context.Context, sql string, params ...minisql.Value) (*wire.Response, error) {
	return c.sql.Exec(ctx, sql, params...)
}

func (c *Client) modifier() *Modifier { return &Modifier{Rules: c.rules, User: c.user} }

// ---------------------------------------------------------------------------
// prepared-statement plumbing

// ensurePrepared returns the server-side handle for a statement text,
// preparing it on first use (one extra round trip per session and text).
func (c *Client) ensurePrepared(ctx context.Context, sql string) (uint32, error) {
	if h, ok := c.handles[sql]; ok {
		return h, nil
	}
	h, err := c.sql.Prepare(ctx, sql)
	if err != nil {
		return 0, err
	}
	c.handles[sql] = h
	return h, nil
}

// execRequest ships one request built by a *Request constructor — a
// prepared execution or plain text.
func (c *Client) execRequest(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if req.Prepared {
		return c.sql.ExecPrepared(ctx, req.Handle, req.Params...)
	}
	return c.sql.Exec(ctx, req.SQL, req.Params...)
}

// ActionResult reports one user action: what came back and what it cost.
type ActionResult struct {
	// Tree is the reassembled structure (expand actions).
	Tree *Tree
	// Objects is the flat result of the set-oriented Query action.
	Objects []*Node
	// RowsReceived counts unified rows shipped to the client before
	// client-side filtering — the transferred data volume in rows.
	RowsReceived int
	// Visible counts objects the user is finally allowed to see.
	Visible int
	// Metrics is the WAN cost of exactly this action.
	Metrics netsim.Metrics
}

func (c *Client) snapshot() netsim.Metrics {
	if c.meter == nil {
		return netsim.Metrics{}
	}
	return c.meter.Metrics
}

func (c *Client) delta(before netsim.Metrics) netsim.Metrics {
	if c.meter == nil {
		return netsim.Metrics{}
	}
	return c.meter.Metrics.Sub(before)
}

// ---------------------------------------------------------------------------
// object type resolution

// typeLookupParamSQL resolves an object id to its type across the node
// tables — the object model's discriminator query.
const typeLookupParamSQL = "SELECT type FROM assy WHERE obid = ? UNION ALL SELECT type FROM comp WHERE obid = ?"

// lookupObjectType resolves the actual type of an object (the paper's
// object tables assy and comp). Results are cached — expanding below a
// node whose row the client already received costs nothing — and the
// first lookup of an unknown id is one WAN statement. An id found in
// neither table is an error, not an empty assembly.
func (c *Client) lookupObjectType(ctx context.Context, obid int64) (string, error) {
	if t, ok := c.objTypes[obid]; ok {
		return t, nil
	}
	var resp *wire.Response
	var err error
	if c.prepared {
		var h uint32
		h, err = c.ensurePrepared(ctx, typeLookupParamSQL)
		if err != nil {
			return "", err
		}
		resp, err = c.sql.ExecPrepared(ctx, h, types.NewInt(obid), types.NewInt(obid))
	} else {
		resp, err = c.sql.Exec(ctx, fmt.Sprintf(
			"SELECT type FROM assy WHERE obid = %d UNION ALL SELECT type FROM comp WHERE obid = %d", obid, obid))
	}
	if err != nil {
		return "", err
	}
	if len(resp.Rows) == 0 || len(resp.Rows[0]) == 0 {
		return "", fmt.Errorf("core: object %d does not exist", obid)
	}
	t := resp.Rows[0][0].String()
	c.objTypes[obid] = t
	return t, nil
}

// rememberType caches an object's type learned from a received row.
func (c *Client) rememberType(n *Node) {
	if n != nil && n.Type != "" {
		c.objTypes[n.ObID] = n.Type
	}
}

// ---------------------------------------------------------------------------
// Query (set-oriented retrieval of all nodes of a product)

// QueryAll performs the paper's "Query" action: retrieve all nodes of a
// product (without structure information) in one statement. Under late
// evaluation all rows are shipped and filtered at the client; otherwise
// the row conditions travel inside the query. A single statement gains
// nothing from preparation, so the prepared mode does not change it.
func (c *Client) QueryAll(ctx context.Context, prod int64) (*ActionResult, error) {
	before := c.snapshot()
	q := BuildQueryAll(prod)
	if c.strategy != costmodel.LateEval {
		if err := c.modifier().ModifyNavigational(q, ActionQuery); err != nil {
			return nil, err
		}
	}
	resp, err := c.sql.Exec(ctx, q.String())
	if err != nil {
		return nil, err
	}
	res := &ActionResult{RowsReceived: len(resp.Rows)}
	for _, row := range resp.Rows {
		n, err := decodeNode(row)
		if err != nil {
			return nil, err
		}
		c.rememberType(n)
		if c.strategy == costmodel.LateEval {
			ok, err := c.localRowPermitted(n.Type, []string{ActionQuery, ActionAccess}, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		res.Objects = append(res.Objects, n)
	}
	res.Visible = len(res.Objects)
	res.Metrics = c.delta(before)
	return res, nil
}

// ---------------------------------------------------------------------------
// Single-level expand

// Expand performs a single-level expand: fetch the direct children of
// one object together with the connecting links. The root's actual
// object type is looked up (and cached), not assumed to be an assembly.
func (c *Client) Expand(ctx context.Context, parent int64) (*ActionResult, error) {
	before := c.snapshot()
	rootType, err := c.lookupObjectType(ctx, parent)
	if err != nil {
		return nil, err
	}
	children, received, err := c.expandOnce(ctx, parent, ActionExpand)
	if err != nil {
		return nil, err
	}
	root := &Node{Type: rootType, ObID: parent, Children: children}
	tree := &Tree{Root: root, Index: map[int64]*Node{parent: root}}
	for _, ch := range children {
		tree.Index[ch.ObID] = ch
	}
	return &ActionResult{
		Tree:         tree,
		RowsReceived: received,
		Visible:      len(children),
		Metrics:      c.delta(before),
	}, nil
}

// buildExpandSQL returns the (strategy-modified) single-level expand
// query text for one parent.
func (c *Client) buildExpandSQL(parent int64, action string) (string, error) {
	q := BuildExpandQuery(parent)
	if c.strategy != costmodel.LateEval {
		if err := c.modifier().ModifyNavigational(q, action); err != nil {
			return "", err
		}
	}
	return q.String(), nil
}

// expandStmtPrepared returns the parameterized expand statement for an
// action: built and rule-modified once per session, then reused for
// every node. The two UNION branches each bind the parent id.
func (c *Client) expandStmtPrepared(action string) (preparedStmt, error) {
	key := "expand\x00" + action
	if st, ok := c.preparedSQL[key]; ok {
		return st, nil
	}
	q := BuildExpandQueryParam()
	if c.strategy != costmodel.LateEval {
		if err := c.modifier().ModifyNavigational(q, action); err != nil {
			return preparedStmt{}, err
		}
	}
	st := preparedStmt{sql: q.String(), nparams: 2}
	c.preparedSQL[key] = st
	return st, nil
}

// expandRequest builds the wire request expanding one parent: a
// prepared execution (handle + parent id) in prepared mode, the full
// statement text otherwise.
func (c *Client) expandRequest(ctx context.Context, parent int64, action string) (*wire.Request, error) {
	if c.prepared {
		st, err := c.expandStmtPrepared(action)
		if err != nil {
			return nil, err
		}
		h, err := c.ensurePrepared(ctx, st.sql)
		if err != nil {
			return nil, err
		}
		params := make([]types.Value, st.nparams)
		for i := range params {
			params[i] = types.NewInt(parent)
		}
		return &wire.Request{Prepared: true, Handle: h, Params: params}, nil
	}
	sql, err := c.buildExpandSQL(parent, action)
	if err != nil {
		return nil, err
	}
	return &wire.Request{SQL: sql}, nil
}

// filterExpandRows applies the client-side rule filters to the rows of
// one expand answer and returns the surviving candidate children.
// ∃structure conditions are not checked here — they need server probes.
func (c *Client) filterExpandRows(rows []storage.Row, action string) ([]*Node, error) {
	var out []*Node
	for _, row := range rows {
		n, err := decodeNode(row)
		if err != nil {
			return nil, err
		}
		c.rememberType(n)
		if c.strategy == costmodel.LateEval {
			// Link traversal rules (structure options, effectivities).
			ok, err := c.localRowPermitted("link", []string{action, ActionAccess}, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			// Row conditions on the child's object type.
			ok, err = c.localRowPermitted(n.Type, []string{action, ActionAccess}, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, n)
	}
	return out, nil
}

// expandOnce ships one navigational expand query and returns the
// permitted children. Under late evaluation the client filters the
// received rows against its rule table; ∃structure conditions require
// extra probe round trips under every navigational strategy because the
// related objects live only in the server's database.
func (c *Client) expandOnce(ctx context.Context, parent int64, action string) ([]*Node, int, error) {
	req, err := c.expandRequest(ctx, parent, action)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.execRequest(ctx, req)
	if err != nil {
		return nil, 0, err
	}
	cands, err := c.filterExpandRows(resp.Rows, action)
	if err != nil {
		return nil, 0, err
	}
	var out []*Node
	for _, n := range cands {
		keep, err := c.probeExistsStructure(ctx, n, action)
		if err != nil {
			return nil, 0, err
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, len(resp.Rows), nil
}

// expandLevelBatched expands every parent of one BFS level in a single
// batch round trip — the paper's statement-per-node loop collapsed into
// one WAN communication per tree level. A second batch carries all
// ∃structure probes of the level, when any apply.
func (c *Client) expandLevelBatched(ctx context.Context, parents []*Node, action string) ([][]*Node, int, error) {
	reqs := make([]*wire.Request, len(parents))
	for i, p := range parents {
		req, err := c.expandRequest(ctx, p.ObID, action)
		if err != nil {
			return nil, 0, err
		}
		reqs[i] = req
	}
	resps, err := c.sql.ExecBatch(ctx, reqs)
	if err != nil {
		return nil, 0, err
	}
	received := 0
	children := make([][]*Node, len(parents))
	for i, resp := range resps {
		received += len(resp.Rows)
		ns, err := c.filterExpandRows(resp.Rows, action)
		if err != nil {
			return nil, 0, err
		}
		children[i] = ns
	}
	children, err = c.probeExistsStructureBatched(ctx, children, action)
	if err != nil {
		return nil, 0, err
	}
	return children, received, nil
}

// probeStmtPrepared returns the parameterized ∃structure probe for one
// rule and object type, cached per session. Every reference to
// <objType>.obid becomes a parameter bound to the probed id.
func (c *Client) probeStmtPrepared(cond, objType string) (preparedStmt, error) {
	key := "probe\x00" + objType + "\x00" + cond
	if st, ok := c.preparedSQL[key]; ok {
		return st, nil
	}
	q, nparams, err := BuildProbeExistsParam(cond, c.user, objType)
	if err != nil {
		return preparedStmt{}, err
	}
	st := preparedStmt{sql: q.String(), nparams: nparams}
	c.preparedSQL[key] = st
	return st, nil
}

// probeRequest builds the wire request probing one ∃structure rule for
// one candidate node.
func (c *Client) probeRequest(ctx context.Context, r Rule, n *Node) (*wire.Request, error) {
	if c.prepared {
		st, err := c.probeStmtPrepared(r.Cond, n.Type)
		if err != nil {
			return nil, err
		}
		h, err := c.ensurePrepared(ctx, st.sql)
		if err != nil {
			return nil, err
		}
		params := make([]types.Value, st.nparams)
		for i := range params {
			params[i] = types.NewInt(n.ObID)
		}
		return &wire.Request{Prepared: true, Handle: h, Params: params}, nil
	}
	probe, err := BuildProbeExists(r.Cond, c.user, n.Type, n.ObID)
	if err != nil {
		return nil, err
	}
	return &wire.Request{SQL: probe.String()}, nil
}

// probeExistsStructure checks ∃structure rules for one candidate object
// by shipping a probe query per rule group — the round trips a
// navigational client cannot avoid.
func (c *Client) probeExistsStructure(ctx context.Context, n *Node, action string) (bool, error) {
	rules := c.rules.Relevant(c.user.Name, []string{action, ActionAccess}, n.Type, KindExistsStructure)
	if len(rules) == 0 {
		return true, nil
	}
	for _, r := range rules {
		req, err := c.probeRequest(ctx, r, n)
		if err != nil {
			return false, err
		}
		resp, err := c.execRequest(ctx, req)
		if err != nil {
			return false, err
		}
		if len(resp.Rows) > 0 {
			return true, nil // permissions are OR-combined
		}
	}
	return false, nil
}

// probeExistsStructureBatched checks ∃structure rules for all candidates
// of one BFS level with a single batch of probe queries instead of one
// round trip per (node, rule) pair. The per-node verdict is unchanged:
// a node survives when any of its rules' probes returns a row, and — as
// in the unbatched OR short-circuit — a probe that errors only fails the
// action when no earlier rule already permitted its node; otherwise the
// surviving probes are re-batched past the failure.
func (c *Client) probeExistsStructureBatched(ctx context.Context, children [][]*Node, action string) ([][]*Node, error) {
	type nodeRef struct{ level, child int }
	type probe struct {
		node nodeRef
		req  *wire.Request
	}
	var pending []probe
	probed := map[nodeRef]bool{}
	permit := map[nodeRef]bool{}
	for i, ns := range children {
		for j, n := range ns {
			rules := c.rules.Relevant(c.user.Name, []string{action, ActionAccess}, n.Type, KindExistsStructure)
			for _, r := range rules {
				req, err := c.probeRequest(ctx, r, n)
				if err != nil {
					return nil, err
				}
				ref := nodeRef{level: i, child: j}
				pending = append(pending, probe{node: ref, req: req})
				probed[ref] = true
			}
		}
	}
	for len(pending) > 0 {
		// Short-circuit: a node permitted by an earlier rule needs no
		// further probes (permissions are OR-combined).
		var rest []probe
		for _, p := range pending {
			if !permit[p.node] {
				rest = append(rest, p)
			}
		}
		pending = rest
		if len(pending) == 0 {
			break
		}
		reqs := make([]*wire.Request, len(pending))
		for i, p := range pending {
			reqs[i] = p.req
		}
		resps, err := c.sql.ExecBatch(ctx, reqs)
		for i, resp := range resps {
			if len(resp.Rows) > 0 {
				permit[pending[i].node] = true
			}
		}
		if err == nil {
			break
		}
		var be *wire.BatchError
		if !errors.As(err, &be) {
			return nil, err
		}
		// The unbatched client would only reach this probe if no earlier
		// rule had permitted the node — in that case the error is real.
		if !permit[pending[be.Index].node] {
			return nil, err
		}
		pending = pending[be.Index+1:]
	}
	out := make([][]*Node, len(children))
	for i, ns := range children {
		for j, n := range ns {
			ref := nodeRef{level: i, child: j}
			if !probed[ref] || permit[ref] {
				out[i] = append(out[i], n)
			}
		}
	}
	return out, nil
}

// localRowPermitted evaluates the disjunction of the user's row
// conditions for an object type against a received unified row — the
// client-side ("late") rule evaluation the paper starts from.
func (c *Client) localRowPermitted(objType string, actions []string, row storage.Row) (bool, error) {
	rules := c.rules.Relevant(c.user.Name, actions, objType, KindRow)
	if len(rules) == 0 {
		return true, nil
	}
	pred, err := disjunction(rules, c.user)
	if err != nil {
		return false, err
	}
	env := exec.NewEnv(unifiedColsFor(objType), row, nil)
	v, err := c.local.EvalExpr(pred, env)
	if err != nil {
		return false, err
	}
	return boolValue(v), nil
}

// unifiedColsFor binds the unified columns under an object type's alias
// so rule predicates like assy.make_or_buy or link.strc_opt resolve.
func unifiedColsFor(objType string) []exec.ColMeta {
	cols := make([]exec.ColMeta, len(UnifiedCols))
	for i, name := range UnifiedCols {
		cols[i] = exec.ColMeta{Table: objType, Name: name}
	}
	return cols
}

// ---------------------------------------------------------------------------
// Multi-level expand

// MultiLevelExpand retrieves the entire structure under root. Under the
// navigational strategies it recursively applies single-level expands
// ("the resulting objects are filtered according to the rules, and the
// surviving objects are then expanded recursively"); under the Recursive
// strategy it ships one recursive query with all rules embedded.
func (c *Client) MultiLevelExpand(ctx context.Context, root int64) (*ActionResult, error) {
	return c.multiLevelExpand(ctx, root, ActionMLE)
}

func (c *Client) multiLevelExpand(ctx context.Context, root int64, action string) (*ActionResult, error) {
	before := c.snapshot()
	if c.strategy == costmodel.Recursive {
		tree, received, err := c.recursiveFetch(ctx, root, action)
		if err != nil {
			return nil, err
		}
		return &ActionResult{
			Tree:         tree,
			RowsReceived: received,
			Visible:      tree.Size(),
			Metrics:      c.delta(before),
		}, nil
	}

	// Navigational: breadth-first expansion. The root is already at the
	// client (paper footnote 4) but its object type is not assumed — it
	// is looked up (one cached WAN statement). Every surviving node is
	// expanded, leaves included — the client only learns they are leaves
	// from the empty answer. With batching enabled the whole level
	// travels as one wire batch; otherwise each node costs its own round
	// trip, as in the paper.
	rootType, err := c.lookupObjectType(ctx, root)
	if err != nil {
		return nil, err
	}
	rootNode := &Node{Type: rootType, ObID: root}
	tree := &Tree{Root: rootNode, Index: map[int64]*Node{root: rootNode}}
	received := 0
	level := []*Node{rootNode}
	for len(level) > 0 {
		var perParent [][]*Node
		if c.batching {
			var got int
			var err error
			perParent, got, err = c.expandLevelBatched(ctx, level, action)
			if err != nil {
				return nil, err
			}
			received += got
		} else {
			perParent = make([][]*Node, len(level))
			for i, parent := range level {
				children, got, err := c.expandOnce(ctx, parent.ObID, action)
				if err != nil {
					return nil, err
				}
				received += got
				perParent[i] = children
			}
		}
		var next []*Node
		for i, parent := range level {
			parent.Children = perParent[i]
			for _, ch := range perParent[i] {
				tree.Index[ch.ObID] = ch
				next = append(next, ch)
			}
		}
		level = next
	}

	// Tree conditions cannot travel inside navigational queries
	// (Section 4.1) — evaluate them at the client on the fetched tree.
	ok, err := c.clientTreeConditions(tree, action)
	if err != nil {
		return nil, err
	}
	if !ok {
		tree = &Tree{Index: map[int64]*Node{}} // all-or-nothing
	}
	return &ActionResult{
		Tree:         tree,
		RowsReceived: received,
		Visible:      tree.Size(),
		Metrics:      c.delta(before),
	}, nil
}

// recursiveFetch ships the Section 5 combined query and reassembles the
// tree from the unified rows. The root's type comes from the result
// itself, so no lookup statement is needed.
func (c *Client) recursiveFetch(ctx context.Context, root int64, action string) (*Tree, int, error) {
	q := BuildRecursiveQuery(root)
	if err := c.modifier().ModifyRecursive(q, action); err != nil {
		return nil, 0, err
	}
	resp, err := c.sql.Exec(ctx, q.String())
	if err != nil {
		return nil, 0, err
	}
	tree, err := AssembleRecursive(root, resp.Rows)
	if err != nil {
		return nil, 0, err
	}
	tree.Walk(func(n *Node) { c.rememberType(n) })
	return tree, len(resp.Rows), nil
}

// clientTreeConditions evaluates ∀rows and tree-aggregate rules on a
// fetched tree (late/early navigational strategies). It reports whether
// the tree survives.
func (c *Client) clientTreeConditions(tree *Tree, action string) (bool, error) {
	actions := []string{action, ActionAccess}

	// ∀rows: every node must meet the row condition.
	forall := c.rules.Relevant(c.user.Name, actions, TreeObjType, KindForAllRows)
	if len(forall) > 0 {
		pred, err := disjunction(forall, c.user)
		if err != nil {
			return false, err
		}
		holds := true
		var evalErr error
		tree.Walk(func(n *Node) {
			if !holds || evalErr != nil {
				return
			}
			env := exec.NewEnv(unifiedColsFor(RecTable), nodeToUnifiedRow(n), nil)
			v, err := c.local.EvalExpr(pred, env)
			if err != nil {
				evalErr = err
				return
			}
			if !boolValue(v) {
				holds = false
			}
		})
		if evalErr != nil {
			return false, evalErr
		}
		if !holds {
			return false, nil
		}
	}

	// Tree aggregates: rebuild the recursion table in the client's local
	// workspace database and evaluate the condition as SQL.
	aggs := c.rules.Relevant(c.user.Name, actions, TreeObjType, KindTreeAggregate)
	if len(aggs) > 0 {
		ok, err := c.evalTreeAggregatesLocally(tree, aggs)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// evalTreeAggregatesLocally loads the fetched nodes into a local rtbl
// and runs the aggregate conditions against it.
func (c *Client) evalTreeAggregatesLocally(tree *Tree, rules []Rule) (bool, error) {
	s := c.scratch.NewSession()
	if _, err := s.Exec("DROP TABLE IF EXISTS " + RecTable); err != nil {
		return false, err
	}
	ddl := `CREATE TABLE rtbl (type TEXT, obid INTEGER, name TEXT, dec TEXT,
		make_or_buy TEXT, state TEXT, material TEXT, weight FLOAT,
		checkedout BOOLEAN, data TEXT, path_opt TEXT, left INTEGER, right INTEGER,
		eff_from INTEGER, eff_to INTEGER, strc_opt TEXT)`
	if _, err := s.Exec(ddl); err != nil {
		return false, err
	}
	var insertErr error
	tree.Walk(func(n *Node) {
		if insertErr != nil {
			return
		}
		row := nodeToUnifiedRow(n)
		_, insertErr = s.Exec(
			"INSERT INTO rtbl VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
			row...)
	})
	if insertErr != nil {
		return false, insertErr
	}
	pred, err := disjunction(rules, c.user)
	if err != nil {
		return false, err
	}
	check := &ast.Select{Body: &ast.SelectCore{
		Items: []ast.SelectItem{{Expr: &ast.Case{
			Whens: []ast.When{{Cond: pred, Result: &ast.Literal{Value: intValue(1)}}},
			Else:  &ast.Literal{Value: intValue(0)},
		}, Alias: "ok"}},
	}}
	res, err := s.Exec(check.String())
	if err != nil {
		return false, err
	}
	if len(res.Rows) != 1 {
		return false, fmt.Errorf("core: tree-aggregate check returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0].Int() == 1, nil
}
