package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode"

	"pdmtune/internal/cache"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/exec"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// Client is the PDM client. It executes the paper's user actions against
// a (remote) database server under one of the three strategies the paper
// compares; every statement crosses the WAN transport and is charged to
// the meter. All actions take a context: cancelling it between round
// trips aborts the action with ctx.Err(), and only the round trips that
// actually happened are charged.
//
// All read traffic flows through the client's fetcher (see fetch.go):
// by default the plain wire fetcher, optionally decorated with the
// version-validated structure cache (SetCache).
type Client struct {
	sql      *wire.Client
	meter    *netsim.Meter
	rules    *RuleTable
	user     UserContext
	strategy costmodel.Strategy

	// writeMu guards the write path's identity: a failover re-points
	// writeSQL at the new primary from the cluster's goroutine while the
	// session's own goroutine may be mid-action. Ops snapshot the
	// (client, handle registry) pair under the read lock, so a handle is
	// only ever executed on the connection that prepared it.
	writeMu sync.RWMutex
	// writeSQL is the write path: check-out/check-in updates, CALLs and
	// raw DML. It equals sql for a single-server client; a client at a
	// replica site points it at the primary (SetPrimary), so reads stay
	// on the site-local link while writes cross the WAN.
	writeSQL *wire.Client
	// writeMeter accounts the write path's traffic when it runs over
	// its own link (nil when writeSQL == sql and everything is charged
	// to meter).
	writeMeter *netsim.Meter
	// writeHandles caches prepared-statement handles of the write
	// connection (handles are connection-scoped, so the read and write
	// paths each keep their own registry; SetPrimary swaps the map
	// wholesale rather than mutating it).
	writeHandles map[string]uint32
	// term is the cluster fencing-term source, re-applied to every
	// write client SetPrimary creates.
	term wire.TermSource
	// site triggers replica syncs at read time (nil for single-server
	// clients); see SetSiteSync and fetch_route.go.
	site *siteRouting

	// fetch is the unified read path: wireFetcher, or cachedFetcher
	// wrapping it when a structure cache is configured.
	fetch fetcher
	// types is the client's private LRU-bounded object-type cache. It
	// is deliberately NOT the structure store: type entries arrive one
	// per received row and would otherwise crowd whole structure pages
	// out of the configured bound.
	types *cache.Store
	// structs is the structure cache store, nil unless SetCache was
	// called. Write actions invalidate their objects here.
	structs *cache.Store
	// cacheNS namespaces this client's cache keys by the server the
	// entries came from, so a store shared across systems can never
	// serve one database's structures (or types) for another's ids.
	cacheNS string

	// local evaluates rule predicates client-side (late evaluation).
	local *exec.Context
	// scratch is the client's local workspace database used to evaluate
	// tree-aggregate conditions over already-fetched trees.
	scratch *minisql.DB
	// batching groups the statements of one logical step (a BFS level of
	// a structure expand, the probes of that level, the updates of a
	// modify) into single wire batches, collapsing WAN round trips.
	batching bool
	// prepared ships the parameterized per-node statements (expand,
	// probes, modify) as prepared executions: the SQL text travels once
	// per session, every repetition is handle + parameters.
	prepared bool
	// handleMu guards handles: Reroute clears the cache from the
	// cluster's goroutine while the session's own goroutine may be
	// preparing (the cleared entries simply re-prepare at the new
	// server).
	handleMu sync.Mutex
	// handles caches the server-side handle of each prepared SQL text.
	handles map[string]uint32
	// preparedSQL caches the parameterized (and rule-modified) statement
	// texts, keyed by action resp. probe identity.
	preparedSQL map[string]preparedStmt
	// seenActions records every (action, target) pair the client has
	// completed, so countAction can flag repeats — the workload-shape
	// signal that separates a repeat-heavy session (a structure cache
	// would pay off) from a cold scan, visible even without a cache.
	seenActions map[string]bool
}

// preparedStmt is a parameterized statement text and the number of
// parameter slots it expects.
type preparedStmt struct {
	sql     string
	nparams int
}

// typeCacheSize bounds the private object-type cache of a client
// without a configured structure cache. The old implementation kept an
// unbounded id→type map — a silent memory leak over a long session.
const typeCacheSize = 4096

// NewClient connects a PDM client to a transport. meter may be nil (no
// accounting); rules may be empty.
func NewClient(tr wire.Transport, meter *netsim.Meter, rules *RuleTable, user UserContext, strategy costmodel.Strategy) *Client {
	if rules == nil {
		rules = NewRuleTable()
	}
	c := &Client{
		sql:          wire.NewClient(tr),
		meter:        meter,
		rules:        rules,
		user:         user,
		strategy:     strategy,
		local:        &exec.Context{Funcs: minisql.BuiltinFuncs()},
		scratch:      minisql.NewDB(),
		handles:      map[string]uint32{},
		writeHandles: map[string]uint32{},
		preparedSQL:  map[string]preparedStmt{},
		types:        cache.New(typeCacheSize),
	}
	c.writeSQL = c.sql
	c.rebuildFetch()
	return c
}

// rebuildFetch composes the client's read path from the configured
// layers: the wire fetcher at the bottom, the structure cache over it
// when one is set, and the site router on top when the client reads
// from a replica — the router's staleness sync must run before the
// cache validates, or a bounded-staleness session could validate a
// warm tree against a replica that is itself beyond the bound.
func (c *Client) rebuildFetch() {
	var f fetcher = &wireFetcher{c: c}
	if c.structs != nil {
		f = &cachedFetcher{inner: f, c: c, store: c.structs, profile: c.cacheProfile()}
	}
	if c.site != nil {
		if c.site.holds != nil {
			// Partial-replication fall-through: reads outside the site's
			// subscription re-issue against the primary. Below the router
			// (the staleness sync also refreshes the holds set) and above
			// the cache (a fallen-through page must not be validated
			// against the replica, which does not hold it).
			f = &fallThroughFetcher{inner: f, c: c, holds: c.site.holds}
		}
		f = &routedFetcher{inner: f, site: c.site}
	}
	c.fetch = f
}

// Strategy reports the client's access strategy.
func (c *Client) Strategy() costmodel.Strategy { return c.strategy }

// SetStrategy switches the client's access strategy at runtime (the
// advisor's lever). The cached parameterized statement texts embed the
// strategy's rule modification, so they are dropped — already-prepared
// server-side handles stay valid and are simply not reused — and the
// read path is rebuilt because the structure cache keys its profile by
// strategy.
func (c *Client) SetStrategy(s costmodel.Strategy) {
	if s == c.strategy {
		return
	}
	c.strategy = s
	c.preparedSQL = map[string]preparedStmt{}
	c.rebuildFetch()
}

// SetBatching switches statement batching on or off. Off (the default)
// reproduces the paper's one-round-trip-per-statement behavior; on, the
// client ships each BFS level of a structure expand and each
// multi-statement modify as one wire batch.
func (c *Client) SetBatching(on bool) { c.batching = on }

// Batching reports whether statement batching is enabled.
func (c *Client) Batching() bool { return c.batching }

// SetPrepared switches prepared-statement execution on or off. Off (the
// default) ships full SQL text per statement, as the paper's system
// does; on, the navigational per-node statements are prepared once per
// session and executed by handle, shrinking every repeated request to a
// few dozen bytes.
func (c *Client) SetPrepared(on bool) { c.prepared = on }

// Prepared reports whether prepared-statement execution is enabled.
func (c *Client) Prepared() bool { return c.prepared }

// NegotiateWire performs the connection's capability handshake:
// columnar v2 result frames and/or whole-body response compression
// (threshold <= 0 selects the wire default). One round trip at session
// open; the decoded trees of every action are identical either way —
// the negotiated encodings change only what crosses the WAN, which is
// what the meter reports. A no-capability call is free.
func (c *Client) NegotiateWire(ctx context.Context, columnar, compress bool, threshold int) (wire.Caps, error) {
	if !columnar && !compress {
		return wire.Caps{}, nil
	}
	return c.sql.Negotiate(ctx, wire.Caps{
		Columnar:          columnar,
		Compress:          compress,
		CompressThreshold: threshold,
	})
}

// RenegotiateWire re-runs the capability handshake mid-session — the
// advisor's lever for flipping the negotiated encodings on a live
// connection. Unlike NegotiateWire it always performs the round trip:
// an all-false renegotiation is how an applied change set (or its
// rollback) turns the capabilities off again.
func (c *Client) RenegotiateWire(ctx context.Context, columnar, compress bool, threshold int) (wire.Caps, error) {
	return c.sql.Negotiate(ctx, wire.Caps{
		Columnar:          columnar,
		Compress:          compress,
		CompressThreshold: threshold,
	})
}

// SetCache layers the structure cache over the client's read path:
// fetched expand pages and recursive trees are kept (version-stamped)
// in the store, warm actions revalidate them in one wire exchange
// instead of re-fetching, and the client's own write actions
// invalidate affected entries locally. The store may be private or
// shared between sessions (it is safe for concurrent use); nil
// removes the cache. The store's bound counts structure entries only
// — the object-type cache stays in its own bounded store, so type
// entries cannot evict structure pages.
//
// namespace identifies the server/system the client talks to; clients
// of different servers sharing one store MUST pass different
// namespaces, or one database's cached structures could answer for
// another's ids (the facade derives it from the System).
func (c *Client) SetCache(store *cache.Store, namespace string) {
	c.cacheNS = namespace
	c.structs = store
	c.rebuildFetch()
}

// Cache returns the client's structure cache store (nil when none is
// configured).
func (c *Client) Cache() *cache.Store { return c.structs }

// SetPrimary splits the client's write path off to a second transport
// — the cluster's primary server — while reads keep flowing over the
// client's own (site-local) transport. meter accounts the primary
// path's traffic and may be nil. Passing a nil transport reunifies the
// paths. Safe to call from another goroutine (a failover re-points
// open sessions' writes); in-flight write ops finish against the old
// path and are transparently re-issued when the old primary fences
// them (see withWrite).
func (c *Client) SetPrimary(tr wire.Transport, meter *netsim.Meter) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if tr == nil {
		c.writeSQL = c.sql
		c.writeMeter = nil
		c.writeHandles = map[string]uint32{}
		return
	}
	w := wire.NewClient(tr)
	if c.term != nil {
		w.SetTermSource(c.term)
	}
	c.writeSQL = w
	c.writeMeter = meter
	c.writeHandles = map[string]uint32{}
}

// SetTermSource installs the cluster fencing-term source: write frames
// carry the term, so a deposed primary refuses them instead of
// accepting a write the cluster has moved past. Applied to both paths
// and re-applied to every future write client.
func (c *Client) SetTermSource(ts wire.TermSource) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.term = ts
	c.sql.SetTermSource(ts)
	if c.writeSQL != c.sql {
		c.writeSQL.SetTermSource(ts)
	}
}

// SetRetry installs the read path's retry policy: idempotent exchanges
// (fetches, probes, validates) ride out transient connection loss with
// capped backoff. The write path never retries at the wire layer.
func (c *Client) SetRetry(p *wire.RetryPolicy) {
	c.sql.SetRetry(p)
}

// writePath snapshots the write path under the lock: the client and
// the handle registry that belongs to it.
func (c *Client) writePath() (*wire.Client, map[string]uint32) {
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	return c.writeSQL, c.writeHandles
}

// withWrite runs one write operation against the current write path.
// When the op comes back fenced — the primary was deposed mid-flight —
// the fenced frame provably never executed, so if a failover has
// re-pointed the write path in the meantime (a new write client, or
// the same client re-routed onto a new transport) the op is re-issued
// once against the new primary; a fenced error with nowhere new to go
// is returned to the caller.
func (c *Client) withWrite(op func(w *wire.Client, handles map[string]uint32) error) error {
	w, h := c.writePath()
	gen := w.TransportGen()
	err := op(w, h)
	var fe *wire.FencedError
	if err == nil || !errors.As(err, &fe) {
		return err
	}
	w2, h2 := c.writePath()
	if w2 == w && w2.TransportGen() == gen {
		return err
	}
	return op(w2, h2)
}

// Reroute swaps the client's entire path — reads and writes — onto tr.
// The cluster calls it during a failover for sessions attached to the
// deposed primary's own server: unlike a replica-site session there is
// no local database behind such a session, so after the promotion its
// reads would be frozen at the fencing instant forever. The installed
// term source and retry policy carry over; prepared handles are
// connection-scoped, so both handle caches are dropped and statements
// re-prepare on first use at the new server.
func (c *Client) Reroute(tr wire.Transport) {
	c.writeMu.Lock()
	c.sql.SetTransport(tr)
	c.writeSQL = c.sql
	c.writeMeter = nil
	c.writeHandles = map[string]uint32{}
	c.writeMu.Unlock()
	c.handleMu.Lock()
	c.handles = map[string]uint32{}
	c.handleMu.Unlock()
}

// Syncer pulls a replica site forward from its primary. It is
// implemented by topology.Site; the client only needs the read-time
// staleness hook.
type Syncer interface {
	// SyncIfStale pulls the delta above the replica's last-seen epoch
	// when the last successful sync is older than bound (always when
	// bound is 0). Implementations serialize concurrent calls.
	SyncIfStale(ctx context.Context, bound time.Duration) error
}

// HoldsSource reports what a partial replica holds: implemented by
// topology.Site for subscription-bounded sites. A full replica reports
// Partial() == false and holds everything.
type HoldsSource interface {
	// Partial reports whether the replica is subscription-bounded.
	Partial() bool
	// Holds reports whether the replica holds the structure rows of the
	// given object id.
	Holds(id int64) bool
}

// siteRouting is the client's view of its replica site: the syncer and
// the session's staleness bound (negative: never sync at read time —
// the paper-faithful "read your own site" semantics). holds is non-nil
// when the site can be subscription-bounded, enabling the fall-through
// read layer.
type siteRouting struct {
	syncer Syncer
	bound  time.Duration
	holds  HoldsSource
}

// SetSiteSync marks the client as reading from a replica site: before
// the first fetch of every action, the site is synced when its last
// sync is older than bound (bound 0: before every action; bound < 0:
// never — reads serve whatever the site last synced). The write path
// is unaffected; combine with SetPrimary.
func (c *Client) SetSiteSync(s Syncer, bound time.Duration) {
	if s == nil {
		c.site = nil
	} else {
		c.site = &siteRouting{syncer: s, bound: bound}
		if hs, ok := s.(HoldsSource); ok {
			c.site.holds = hs
		}
	}
	c.rebuildFetch()
}

// SetStalenessBound changes the replica-read staleness bound of a
// site-reading client at runtime (no-op for single-server clients —
// there is no replica to bound).
func (c *Client) SetStalenessBound(bound time.Duration) {
	if c.site != nil {
		c.site.bound = bound
	}
}

// StalenessBound reports the client's replica staleness bound and
// whether the client reads from a replica at all.
func (c *Client) StalenessBound() (time.Duration, bool) {
	if c.site == nil {
		return 0, false
	}
	return c.site.bound, true
}

// Close releases the client's server-side session state: connections
// that prepared statements get a teardown round trip clearing their
// registries (connections that never prepared cost nothing). The
// client remains usable — later prepared executions re-prepare.
func (c *Client) Close(ctx context.Context) error {
	var firstErr error
	c.handleMu.Lock()
	prepared := len(c.handles) > 0
	if prepared {
		c.handles = map[string]uint32{}
	}
	c.handleMu.Unlock()
	if prepared {
		if err := c.sql.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	w, handles := c.writePath()
	if w != c.sql && len(handles) > 0 {
		if err := w.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		c.writeMu.Lock()
		if c.writeSQL == w {
			c.writeHandles = map[string]uint32{}
		}
		c.writeMu.Unlock()
	}
	return firstErr
}

// ruleTableIDs assigns every rule table a process-unique id the first
// time it keys a cache profile. A pointer formatted with %p would not
// do: a freed table's address can be reused by a different table,
// colliding two profiles. The registry pins profiled tables for the
// process lifetime, which is the price of collision-free identity.
var (
	ruleTableIDs  sync.Map // *RuleTable -> uint64
	nextRuleTblID atomic.Uint64
)

func ruleTableID(rt *RuleTable) uint64 {
	if id, ok := ruleTableIDs.Load(rt); ok {
		return id.(uint64)
	}
	id, _ := ruleTableIDs.LoadOrStore(rt, nextRuleTblID.Add(1))
	return id.(uint64)
}

// cacheProfile fingerprints everything a cached read result depends on
// besides its key: the user context, the rule table identity and the
// strategy. Sessions sharing a store only share entries when their
// profiles match, so differing rules or users can never leak results
// to each other.
func (c *Client) cacheProfile() string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d\x00%d\x00%d\x00%d",
		c.cacheNS, c.user.Name, c.user.Options, c.user.EffFrom, c.user.EffTo, c.strategy, ruleTableID(c.rules))
}

// invalidateCache drops every cached entry depending on the given
// objects — the no-round-trip invalidation a write action performs on
// its own modifications. Shared stores propagate it to every session
// immediately.
func (c *Client) invalidateCache(ids []int64) {
	if c.structs != nil && len(ids) > 0 {
		c.structs.Invalidate(ids...)
	}
}

// invalidateTree invalidates every node of a modified subtree. The
// (O(n)) id walk only happens when a cache is actually configured.
func (c *Client) invalidateTree(t *Tree) {
	if c.structs != nil {
		c.structs.Invalidate(treeIDs(t)...)
	}
}

// User reports the client's user context.
func (c *Client) User() UserContext { return c.user }

// Rules exposes the client's rule table (e.g. for administration).
func (c *Client) Rules() *RuleTable { return c.rules }

// Metrics returns the accumulated WAN metrics — the read path's plus,
// for a split client, the write path's.
func (c *Client) Metrics() netsim.Metrics { return c.snapshot() }

// ResetMetrics clears the meters (between actions).
func (c *Client) ResetMetrics() {
	if c.meter != nil {
		c.meter.Reset()
	}
	c.writeMu.RLock()
	wm := c.writeMeter
	c.writeMu.RUnlock()
	if wm != nil && wm != c.meter {
		wm.Reset()
	}
}

// Exec ships one raw SQL statement over the WAN (administration, DDL,
// loading). Rule machinery is not applied, and the structure cache is
// not invalidated — a raw write is caught by the next validate-on-use
// exchange instead. At a replica site the statement is routed by kind:
// queries run against the local replica, everything else (DML, DDL,
// CALL, transaction control) goes to the primary.
func (c *Client) Exec(ctx context.Context, sql string, params ...minisql.Value) (*wire.Response, error) {
	if isReadOnlySQL(sql) {
		return c.sql.Exec(ctx, sql, params...)
	}
	var resp *wire.Response
	err := c.withWrite(func(w *wire.Client, _ map[string]uint32) error {
		var err error
		resp, err = w.Exec(ctx, sql, params...)
		return err
	})
	return resp, err
}

// isReadOnlySQL reports whether a raw statement is a pure read — one a
// replica can answer. Classification is by leading keyword; anything
// unrecognized is treated as a write, the safe direction.
func isReadOnlySQL(sql string) bool {
	s := strings.TrimSpace(sql)
	for i, r := range s {
		if !unicode.IsLetter(r) {
			s = s[:i]
			break
		}
	}
	switch strings.ToUpper(s) {
	case "SELECT", "WITH", "EXPLAIN":
		return true
	}
	return false
}

func (c *Client) modifier() *Modifier { return &Modifier{Rules: c.rules, User: c.user} }

// ---------------------------------------------------------------------------
// prepared-statement plumbing

// ensurePrepared returns the read connection's server-side handle for
// a statement text, preparing it on first use (one extra round trip
// per session and text).
func (c *Client) ensurePrepared(ctx context.Context, sql string) (uint32, error) {
	c.handleMu.Lock()
	h, ok := c.handles[sql]
	c.handleMu.Unlock()
	if ok {
		return h, nil
	}
	h, err := c.sql.Prepare(ctx, sql)
	if err != nil {
		return 0, err
	}
	c.handleMu.Lock()
	c.handles[sql] = h
	c.handleMu.Unlock()
	return h, nil
}

// ensurePreparedWrite is ensurePrepared for a snapshotted write path —
// handles are connection-scoped, so a statement prepared at a replica
// is useless at the primary and vice versa, and a handle must only
// ever execute on the (w, handles) pair it was prepared against.
func (c *Client) ensurePreparedWrite(ctx context.Context, w *wire.Client, handles map[string]uint32, sql string) (uint32, error) {
	if w == c.sql {
		return c.ensurePrepared(ctx, sql)
	}
	if h, ok := handles[sql]; ok {
		return h, nil
	}
	h, err := w.Prepare(ctx, sql)
	if err != nil {
		return 0, err
	}
	handles[sql] = h
	return h, nil
}

// execRequest ships one request built by a *Request constructor — a
// prepared execution or plain text.
func (c *Client) execRequest(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if req.Prepared {
		return c.sql.ExecPrepared(ctx, req.Handle, req.Params...)
	}
	return c.sql.Exec(ctx, req.SQL, req.Params...)
}

func (c *Client) snapshot() netsim.Metrics {
	var m netsim.Metrics
	if c.meter != nil {
		m = c.meter.Snapshot()
	}
	c.writeMu.RLock()
	wm := c.writeMeter
	c.writeMu.RUnlock()
	if wm != nil && wm != c.meter {
		m = m.Add(wm.Snapshot())
	}
	return m
}

func (c *Client) delta(before netsim.Metrics) netsim.Metrics {
	return c.snapshot().Sub(before)
}

// countAction charges one completed user action to the meter that
// carried it, flagging repeats of the same (action, target) pair —
// the per-kind counters the advisor classifies workload shape from.
func (c *Client) countAction(action string, target int64, write bool) {
	key := fmt.Sprintf("%s\x00%d", action, target)
	repeat := c.seenActions[key]
	if c.seenActions == nil {
		c.seenActions = map[string]bool{}
	}
	c.seenActions[key] = true
	m := c.meter
	if write {
		c.writeMu.RLock()
		if c.writeMeter != nil {
			m = c.writeMeter
		}
		c.writeMu.RUnlock()
	}
	if m != nil {
		m.CountAction(write, repeat)
	}
}
