package core_test

import (
	"context"
	"testing"

	"pdmtune/internal/core"
	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
	"pdmtune/internal/workload"
)

// batchedClient connects a metered client with statement batching on.
func batchedClient(srv *wire.Server, rules *core.RuleTable, user core.UserContext, s costmodel.Strategy) (*core.Client, *netsim.Meter) {
	c, m := pdmClient(srv, rules, user, s)
	c.SetBatching(true)
	return c, m
}

// TestBatchedMLEMatchesUnbatched: under every strategy the batched
// client must see exactly the nodes the unbatched client sees, while
// paying strictly fewer round trips on the navigational strategies.
func TestBatchedMLEMatchesUnbatched(t *testing.T) {
	srv, prod := generatedServer(t, workload.Config{
		Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16,
	})
	for _, strat := range costmodel.Strategies {
		plain, pm := pdmClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		resP, err := plain.MultiLevelExpand(context.Background(), prod.RootID)
		if err != nil {
			t.Fatalf("%v: plain MLE: %v", strat, err)
		}
		batched, bm := batchedClient(srv, core.StandardRules(), core.DefaultUser("scott"), strat)
		resB, err := batched.MultiLevelExpand(context.Background(), prod.RootID)
		if err != nil {
			t.Fatalf("%v: batched MLE: %v", strat, err)
		}
		idsP, idsB := visibleIDs(resP.Tree), visibleIDs(resB.Tree)
		if len(idsP) != len(idsB) {
			t.Fatalf("%v: batched sees %d nodes, unbatched %d", strat, len(idsB), len(idsP))
		}
		for i := range idsP {
			if idsP[i] != idsB[i] {
				t.Fatalf("%v: node %d differs: %d != %d", strat, i, idsB[i], idsP[i])
			}
		}
		if resB.RowsReceived != resP.RowsReceived {
			t.Errorf("%v: batched received %d rows, unbatched %d", strat, resB.RowsReceived, resP.RowsReceived)
		}
		if strat == costmodel.Recursive {
			// Already one round trip; batching must not change it.
			if bm.Metrics.RoundTrips != pm.Metrics.RoundTrips {
				t.Errorf("recursive: batched %d round trips, unbatched %d",
					bm.Metrics.RoundTrips, pm.Metrics.RoundTrips)
			}
			continue
		}
		if bm.Metrics.RoundTrips >= pm.Metrics.RoundTrips {
			t.Errorf("%v: batching saved nothing (%d >= %d round trips)",
				strat, bm.Metrics.RoundTrips, pm.Metrics.RoundTrips)
		}
		// Every statement still shipped, just in fewer frames.
		if bm.Metrics.Statements != pm.Metrics.Statements {
			t.Errorf("%v: batched shipped %d statements, unbatched %d",
				strat, bm.Metrics.Statements, pm.Metrics.Statements)
		}
	}
}

// TestBatchedMLERoundTripsPerLevel: a δ-deep visible tree takes exactly
// δ+2 batch round trips — the root's type lookup plus one batch per BFS
// level, leaves included — when no probe rules apply.
func TestBatchedMLERoundTripsPerLevel(t *testing.T) {
	cfg := workload.Config{Depth: 3, Branch: 4, Sigma: 0.5, Seed: 7, PadBytes: 16}
	srv, prod := generatedServer(t, cfg)
	c, meter := batchedClient(srv, core.StandardRules(), core.DefaultUser("scott"), costmodel.EarlyEval)
	if _, err := c.MultiLevelExpand(context.Background(), prod.RootID); err != nil {
		t.Fatal(err)
	}
	want := cfg.Depth + 2
	if meter.Metrics.RoundTrips != want {
		t.Errorf("batched MLE took %d round trips, want %d (type lookup + one per level)",
			meter.Metrics.RoundTrips, want)
	}
	if meter.Metrics.Statements != 2+prod.VisibleNodes() {
		t.Errorf("batched MLE shipped %d statements, want %d",
			meter.Metrics.Statements, 2+prod.VisibleNodes())
	}
}

// TestBatchedExistsStructureRule: the probe batch preserves the
// ∃structure verdicts of the per-node probing path.
func TestBatchedExistsStructureRule(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	rules.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionAccess, ObjType: "comp",
		Kind: core.KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)",
	})
	want := []int64{2, 3, 4, 5, 101, 103}
	for _, strat := range []costmodel.Strategy{costmodel.LateEval, costmodel.EarlyEval} {
		c, _ := batchedClient(srv, rules, core.DefaultUser("scott"), strat)
		res, err := c.MultiLevelExpand(context.Background(), 1)
		if err != nil {
			t.Fatalf("%v: batched MLE: %v", strat, err)
		}
		ids := visibleIDs(res.Tree)
		if len(ids) != len(want) {
			t.Fatalf("%v: batched MLE = %v, want %v", strat, ids, want)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Errorf("%v: node %d = %d, want %d", strat, i, ids[i], want[i])
			}
		}
	}
}

// TestBatchedProbeShortCircuitOnError: a probe the unbatched client
// would never execute (its node already permitted by an earlier rule)
// must not fail the batched expand — and an error the unbatched client
// WOULD hit must fail both the same way.
func TestBatchedProbeShortCircuitOnError(t *testing.T) {
	// Rule 1 permits every component; rule 2 errors at execution time
	// (missing table). Under OR short-circuit rule 2 never runs.
	okThenErr := core.StandardRules()
	okThenErr.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionAccess, ObjType: "comp",
		Kind: core.KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM comp AS c2 WHERE c2.obid = comp.obid)",
	})
	okThenErr.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionAccess, ObjType: "comp",
		Kind: core.KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM no_such_table WHERE no_such_table.x = comp.obid)",
	})
	srv := pdmServer(t)
	plain, _ := pdmClient(srv, okThenErr, core.DefaultUser("scott"), costmodel.EarlyEval)
	resP, errP := plain.MultiLevelExpand(context.Background(), 1)
	batched, _ := batchedClient(srv, okThenErr, core.DefaultUser("scott"), costmodel.EarlyEval)
	resB, errB := batched.MultiLevelExpand(context.Background(), 1)
	if errP != nil || errB != nil {
		t.Fatalf("permit-before-error must succeed on both paths: plain=%v batched=%v", errP, errB)
	}
	if resP.Visible != resB.Visible {
		t.Errorf("batched sees %d nodes, unbatched %d", resB.Visible, resP.Visible)
	}

	// With the erroring rule first, no permit precedes the error: both
	// clients must report it.
	errFirst := core.StandardRules()
	errFirst.MustAdd(core.Rule{
		User: core.Wildcard, Action: core.ActionAccess, ObjType: "comp",
		Kind: core.KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM no_such_table WHERE no_such_table.x = comp.obid)",
	})
	plain2, _ := pdmClient(srv, errFirst, core.DefaultUser("scott"), costmodel.EarlyEval)
	_, errP2 := plain2.MultiLevelExpand(context.Background(), 1)
	batched2, _ := batchedClient(srv, errFirst, core.DefaultUser("scott"), costmodel.EarlyEval)
	_, errB2 := batched2.MultiLevelExpand(context.Background(), 1)
	if errP2 == nil || errB2 == nil {
		t.Fatalf("error-before-permit must fail on both paths: plain=%v batched=%v", errP2, errB2)
	}
}

// TestBatchedCheckOut: the batched modify flips the same flags and
// stays ahead of the unbatched client on round trips.
func TestBatchedCheckOut(t *testing.T) {
	srv := pdmServer(t)
	rules := core.StandardRules()
	rules.MustAdd(core.CheckOutRule())
	c, meter := batchedClient(srv, rules, core.DefaultUser("scott"), costmodel.EarlyEval)
	res, err := c.CheckOut(context.Background(), 1)
	if err != nil {
		t.Fatalf("batched check-out: %v", err)
	}
	if !res.Granted || res.Updated != 9 {
		t.Fatalf("batched check-out granted=%v updated=%d, want true/9", res.Granted, res.Updated)
	}
	if meter.Metrics.SavedRoundTrips <= 0 {
		t.Errorf("batched check-out saved %d round trips, want > 0", meter.Metrics.SavedRoundTrips)
	}
	res2, err := c.CheckIn(context.Background(), 1)
	if err != nil {
		t.Fatalf("batched check-in: %v", err)
	}
	if res2.Updated != 9 {
		t.Errorf("batched check-in updated %d, want 9", res2.Updated)
	}
}
