package core

import (
	"strings"
	"testing"
)

// These tests pin the Section 5.5 algorithm at the SQL-text level: which
// predicate lands in which SELECT of the recursive query.

func modifierFor(rules *RuleTable) *Modifier {
	return &Modifier{Rules: rules, User: DefaultUser("scott")}
}

func modified(t *testing.T, rules *RuleTable, action string) string {
	t.Helper()
	q := BuildRecursiveQuery(1)
	if err := modifierFor(rules).ModifyRecursive(q, action); err != nil {
		t.Fatalf("ModifyRecursive: %v", err)
	}
	return q.String()
}

// cteAndOuter splits the printed query at the closing of the WITH clause
// so tests can assert predicate placement inside vs outside the
// recursive part.
func cteAndOuter(t *testing.T, sql string) (cte, outer string) {
	t.Helper()
	idx := strings.Index(sql, ") SELECT type")
	if idx < 0 {
		t.Fatalf("cannot split query: %s", sql)
	}
	return sql[:idx], sql[idx:]
}

func TestStepDRowConditionPlacement(t *testing.T) {
	rules := NewRuleTable()
	rules.MustAdd(Rule{User: "scott", Action: ActionMLE, ObjType: "assy", Kind: KindRow,
		Cond: "assy.make_or_buy <> 'buy'"})
	sql := modified(t, rules, ActionMLE)
	cte, outer := cteAndOuter(t, sql)
	if got := strings.Count(cte, "assy.make_or_buy <> 'buy'"); got != 2 {
		// Seed branch (FROM assy WHERE obid = 1) and the recursive assy
		// branch both reference assy.
		t.Errorf("row condition appears %d times inside the recursion, want 2\n%s", got, cte)
	}
	if strings.Contains(outer, "make_or_buy <> 'buy'") {
		t.Errorf("row condition must not reach the outer selects (they read rtbl/link)\n%s", outer)
	}
}

func TestStepDLinkRulesReachOuterLinkSelect(t *testing.T) {
	sql := modified(t, StandardRules(), ActionMLE)
	cte, outer := cteAndOuter(t, sql)
	// The link access rule guards both recursive branches and the outer
	// link select ("inside and outside the recursive part").
	if got := strings.Count(cte, "sets_overlap(link.strc_opt"); got != 2 {
		t.Errorf("link rule in recursion %d times, want 2", got)
	}
	if got := strings.Count(outer, "sets_overlap(link.strc_opt"); got != 1 {
		t.Errorf("link rule in outer part %d times, want 1", got)
	}
}

func TestStepAForAllRows(t *testing.T) {
	rules := NewRuleTable()
	rules.MustAdd(Rule{User: Wildcard, Action: ActionCheck, ObjType: TreeObjType,
		Kind: KindForAllRows, Cond: "checkedout <> TRUE"})
	sql := modified(t, rules, ActionCheck)
	cte, outer := cteAndOuter(t, sql)
	want := "NOT EXISTS (SELECT * FROM rtbl WHERE (NOT (checkedout <> TRUE)))"
	if got := strings.Count(outer, want); got != 2 {
		t.Errorf("∀rows guard on outer selects %d times, want 2 (node + link select)\n%s", got, outer)
	}
	if strings.Contains(cte, "NOT EXISTS") {
		t.Errorf("∀rows guard must stay outside the recursive part")
	}
}

func TestStepBTreeAggregate(t *testing.T) {
	rules := NewRuleTable()
	rules.MustAdd(Rule{User: Wildcard, Action: ActionMLE, ObjType: TreeObjType,
		Kind: KindTreeAggregate, Cond: "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10"})
	sql := modified(t, rules, ActionMLE)
	cte, outer := cteAndOuter(t, sql)
	if got := strings.Count(outer, "COUNT(*)"); got != 2 {
		t.Errorf("tree-aggregate on outer selects %d times, want 2\n%s", got, outer)
	}
	if strings.Contains(cte, "COUNT(*)") {
		t.Error("tree-aggregate must stay outside the recursive part")
	}
}

func TestStepCExistsStructure(t *testing.T) {
	rules := NewRuleTable()
	rules.MustAdd(Rule{User: Wildcard, Action: ActionAccess, ObjType: "comp",
		Kind: KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)"})
	sql := modified(t, rules, ActionMLE)
	cte, outer := cteAndOuter(t, sql)
	if got := strings.Count(cte, "specified_by"); got != 1 {
		t.Errorf("∃structure inside the recursion %d times, want 1 (comp branch only)\n%s", got, cte)
	}
	if strings.Contains(outer, "specified_by") {
		t.Error("∃structure must not reach the outer selects")
	}
	// It must sit in the comp branch, not the assy branch.
	compBranch := cte[strings.Index(cte, "JOIN comp"):]
	if !strings.Contains(compBranch, "specified_by") {
		t.Error("∃structure missing from the comp branch")
	}
}

func TestRulesAreORCombined(t *testing.T) {
	rules := NewRuleTable()
	rules.MustAdd(Rule{User: "scott", Action: ActionMLE, ObjType: "assy", Kind: KindRow,
		Cond: "assy.make_or_buy <> 'buy'"})
	rules.MustAdd(Rule{User: "scott", Action: ActionMLE, ObjType: "assy", Kind: KindRow,
		Cond: "assy.state = 'released'"})
	sql := modified(t, rules, ActionMLE)
	if !strings.Contains(sql, "(assy.make_or_buy <> 'buy') OR (assy.state = 'released')") {
		t.Errorf("conditions of one group must be OR-combined:\n%s", sql)
	}
}

func TestMacroExpansion(t *testing.T) {
	u := UserContext{Name: "o'brien", Options: "base,sport", EffFrom: 3, EffTo: 9}
	got := u.Expand("sets_overlap(x, {options}) AND u = {user} AND e BETWEEN {eff_from} AND {eff_to}")
	want := "sets_overlap(x, 'base,sport') AND u = 'o''brien' AND e BETWEEN 3 AND 9"
	if got != want {
		t.Errorf("Expand = %q, want %q", got, want)
	}
}

func TestRuleValidationAtDefinitionTime(t *testing.T) {
	rt := NewRuleTable()
	if err := rt.Add(Rule{User: "u", Action: "a", ObjType: "t", Cond: "x ="}); err == nil {
		t.Error("syntactically broken condition must be rejected when the rule is defined")
	}
	if err := rt.Add(Rule{User: "", Action: "a", ObjType: "t", Cond: "1 = 1"}); err == nil {
		t.Error("rule without user must be rejected")
	}
	if err := rt.Add(Rule{User: "u", Action: "a", ObjType: "t", Cond: "sets_overlap(x, {options})"}); err != nil {
		t.Errorf("macro condition must validate: %v", err)
	}
	if rt.Len() != 1 {
		t.Errorf("Len = %d, want 1", rt.Len())
	}
}

func TestRelevantMatching(t *testing.T) {
	rt := NewRuleTable()
	rt.MustAdd(Rule{User: "scott", Action: ActionMLE, ObjType: "assy", Kind: KindRow, Cond: "1 = 1"})
	rt.MustAdd(Rule{User: Wildcard, Action: ActionAccess, ObjType: "assy", Kind: KindRow, Cond: "2 = 2"})
	rt.MustAdd(Rule{User: "erich", Action: ActionMLE, ObjType: "assy", Kind: KindRow, Cond: "3 = 3"})
	rt.MustAdd(Rule{User: "scott", Action: ActionMLE, ObjType: "comp", Kind: KindRow, Cond: "4 = 4"})
	rt.MustAdd(Rule{User: "scott", Action: ActionMLE, ObjType: "assy", Kind: KindForAllRows, Cond: "5 = 5"})

	got := rt.Relevant("scott", []string{ActionMLE, ActionAccess}, "assy", KindRow)
	if len(got) != 2 {
		t.Fatalf("Relevant returned %d rules, want 2 (own + wildcard)", len(got))
	}
	if got := rt.Relevant("nobody", []string{ActionMLE}, "assy", KindRow); len(got) != 0 {
		t.Errorf("unknown user matched %d rules", len(got))
	}
	if got := rt.Relevant("scott", []string{"check-out"}, "assy", KindRow); len(got) != 0 {
		t.Errorf("other action matched %d rules", len(got))
	}
}

func TestModifyNavigationalAppendsOnlyRowConditions(t *testing.T) {
	rules := StandardRules()
	rules.MustAdd(Rule{User: Wildcard, Action: ActionMLE, ObjType: TreeObjType,
		Kind: KindTreeAggregate, Cond: "(SELECT COUNT(*) FROM rtbl) <= 10"})
	q := BuildExpandQuery(7)
	if err := modifierFor(rules).ModifyNavigational(q, ActionMLE); err != nil {
		t.Fatal(err)
	}
	sql := q.String()
	if !strings.Contains(sql, "sets_overlap(link.strc_opt") {
		t.Error("link row rule missing from the navigational expand")
	}
	if strings.Contains(sql, "rtbl") {
		t.Error("tree conditions cannot be evaluated within navigational queries (Section 4.1)")
	}
	if !strings.Contains(sql, "link.left = 7") {
		t.Error("original navigational predicate lost")
	}
}

func TestBuildProbeExists(t *testing.T) {
	cond := "EXISTS (SELECT * FROM specified_by AS s WHERE s.left = comp.obid)"
	probe, err := BuildProbeExists(cond, DefaultUser("u"), "comp", 101)
	if err != nil {
		t.Fatal(err)
	}
	sql := probe.String()
	if !strings.Contains(sql, "s.left = 101") {
		t.Errorf("correlation not substituted: %s", sql)
	}
	if strings.Contains(sql, "comp.obid") {
		t.Errorf("probe still references the object column: %s", sql)
	}
}

func TestModifiedQueriesStillParse(t *testing.T) {
	rules := StandardRules()
	rules.MustAdd(CheckOutRule())
	rules.MustAdd(Rule{User: Wildcard, Action: ActionAccess, ObjType: "comp",
		Kind: KindExistsStructure,
		Cond: "EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)"})
	rules.MustAdd(Rule{User: Wildcard, Action: ActionMLE, ObjType: TreeObjType,
		Kind: KindTreeAggregate, Cond: "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10"})
	sql := modified(t, rules, ActionMLE)
	// A second modification pass over the re-parsed text must also work —
	// the printer and grammar agree on the modified query.
	q2 := mustParseSelect(sql)
	if q2.String() != sql {
		t.Error("modified query does not round-trip through the parser")
	}
}
