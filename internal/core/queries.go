package core

import (
	"fmt"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/parser"
)

// RecTable is the name of the recursion table in generated queries; tree
// conditions (∀rows, tree-aggregate) reference it.
const RecTable = "rtbl"

// UnifiedCols lists the columns of the unified ("homogenized") result
// type of Section 5.2: the union of all attribute definitions of all
// object types in the result, plus the type discriminator; attributes an
// object type lacks are NULL/empty.
var UnifiedCols = []string{
	"type", "obid", "name", "dec", "make_or_buy", "state", "material",
	"weight", "checkedout", "data", "path_opt",
	"left", "right", "eff_from", "eff_to", "strc_opt",
}

// mustParseSelect parses builder-generated SQL; generation bugs are
// programming errors, hence panic.
func mustParseSelect(sql string) *ast.Select {
	stmt, err := parser.Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("core: generated query does not parse: %v\n%s", err, sql))
	}
	sel, ok := stmt.(*ast.Select)
	if !ok {
		panic("core: generated query is not a SELECT")
	}
	return sel
}

// BuildExpandQuery returns the navigational single-level-expand query
// for one parent object: a single SQL statement fetching all direct
// children (assemblies and components) together with the connecting
// links, homogenized into one result type. The paper's navigational
// access translates tree traversal "nearly one-to-one into single,
// isolated SQL queries" of this shape — one per visited node.
func BuildExpandQuery(parent int64) *ast.Select {
	sql := fmt.Sprintf(`
SELECT assy.type, assy.obid, assy.name, assy.dec, assy.make_or_buy, assy.state,
       '' AS "material", assy.weight, assy.checkedout, assy.data, assy.path_opt,
       link.left, link.right, link.eff_from, link.eff_to, link.strc_opt
  FROM link JOIN assy ON link.right = assy.obid
  WHERE link.left = %d
UNION ALL
SELECT comp.type, comp.obid, comp.name, '' AS "dec", '' AS "make_or_buy", comp.state,
       comp.material, comp.weight, comp.checkedout, comp.data, comp.path_opt,
       link.left, link.right, link.eff_from, link.eff_to, link.strc_opt
  FROM link JOIN comp ON link.right = comp.obid
  WHERE link.left = %d`, parent, parent)
	return mustParseSelect(sql)
}

// BuildExpandQueryParam returns the single-level-expand query in its
// parameterized form: the parent id is a `?` placeholder (once per UNION
// branch), so the statement text is identical for every visited node.
// This is what the prepared-statement mode prepares once per session —
// the server parses one statement and every subsequent node costs only
// a handle and two integer parameters on the wire.
func BuildExpandQueryParam() *ast.Select {
	sql := `
SELECT assy.type, assy.obid, assy.name, assy.dec, assy.make_or_buy, assy.state,
       '' AS "material", assy.weight, assy.checkedout, assy.data, assy.path_opt,
       link.left, link.right, link.eff_from, link.eff_to, link.strc_opt
  FROM link JOIN assy ON link.right = assy.obid
  WHERE link.left = ?
UNION ALL
SELECT comp.type, comp.obid, comp.name, '' AS "dec", '' AS "make_or_buy", comp.state,
       comp.material, comp.weight, comp.checkedout, comp.data, comp.path_opt,
       link.left, link.right, link.eff_from, link.eff_to, link.strc_opt
  FROM link JOIN comp ON link.right = comp.obid
  WHERE link.left = ?`
	return mustParseSelect(sql)
}

// BuildQueryAll returns the set-oriented "Query" action of Table 2: all
// nodes of a product in one statement, without structure information.
// (PDM node rows carry the product id, so no recursion is needed.)
func BuildQueryAll(prod int64) *ast.Select {
	sql := fmt.Sprintf(`
SELECT assy.type, assy.obid, assy.name, assy.dec, assy.make_or_buy, assy.state,
       '' AS "material", assy.weight, assy.checkedout, assy.data, assy.path_opt,
       CAST(NULL AS INTEGER) AS "left", CAST(NULL AS INTEGER) AS "right",
       CAST(NULL AS INTEGER) AS "eff_from", CAST(NULL AS INTEGER) AS "eff_to",
       CAST(NULL AS TEXT) AS "strc_opt"
  FROM assy
  WHERE assy.prod = %d
UNION ALL
SELECT comp.type, comp.obid, comp.name, '' AS "dec", '' AS "make_or_buy", comp.state,
       comp.material, comp.weight, comp.checkedout, comp.data, comp.path_opt,
       CAST(NULL AS INTEGER) AS "left", CAST(NULL AS INTEGER) AS "right",
       CAST(NULL AS INTEGER) AS "eff_from", CAST(NULL AS INTEGER) AS "eff_to",
       CAST(NULL AS TEXT) AS "strc_opt"
  FROM comp
  WHERE comp.prod = %d`, prod, prod)
	return mustParseSelect(sql)
}

// BuildRecursiveQuery returns the Section 5.2 recursive query: one
// statement collecting the whole object tree under root into the unified
// result type — node rows from the recursion table plus the link rows
// needed to reconstruct the structure. Rule predicates are injected
// afterwards by the Modifier (Section 5.5).
func BuildRecursiveQuery(root int64) *ast.Select {
	sql := fmt.Sprintf(`
WITH RECURSIVE rtbl (type, obid, name, dec, make_or_buy, state, material, weight, checkedout, data, path_opt) AS
 (SELECT type, obid, name, dec, make_or_buy, state, '', weight, checkedout, data, path_opt
    FROM assy
    WHERE assy.obid = %d
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec, assy.make_or_buy, assy.state, '',
         assy.weight, assy.checkedout, assy.data, assy.path_opt
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, '', '', comp.state, comp.material,
         comp.weight, comp.checkedout, comp.data, comp.path_opt
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid
 )
SELECT type, obid, name, dec, make_or_buy, state, material, weight, checkedout, data, path_opt,
       CAST(NULL AS INTEGER) AS "left", CAST(NULL AS INTEGER) AS "right",
       CAST(NULL AS INTEGER) AS "eff_from", CAST(NULL AS INTEGER) AS "eff_to",
       CAST(NULL AS TEXT) AS "strc_opt"
  FROM rtbl
UNION
SELECT type, obid, '' AS "name", '' AS "dec", '' AS "make_or_buy", '' AS "state",
       '' AS "material", CAST(NULL AS FLOAT) AS "weight",
       CAST(NULL AS BOOLEAN) AS "checkedout", '' AS "data", '' AS "path_opt",
       left, right, eff_from, eff_to, strc_opt
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl)
     AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2`, root)
	return mustParseSelect(sql)
}

// BuildWhereUsedLevelSQL returns one upward BFS level of a where-used
// traversal: the parent assemblies of the given objects. The inverse of
// the expand direction, so it walks link.right → link.left.
func BuildWhereUsedLevelSQL(ids []int64) string {
	return "SELECT left FROM link WHERE right IN (" + idList(ids) + ")"
}

// BuildFetchNodesSQL returns the record-fetch statement of a where-used
// result: the given objects (assemblies and components) homogenized
// into the unified result type, without link columns — the ancestors
// are a set, not a tree.
func BuildFetchNodesSQL(ids []int64) string {
	in := idList(ids)
	return fmt.Sprintf(`
SELECT assy.type, assy.obid, assy.name, assy.dec, assy.make_or_buy, assy.state,
       '' AS "material", assy.weight, assy.checkedout, assy.data, assy.path_opt,
       CAST(NULL AS INTEGER) AS "left", CAST(NULL AS INTEGER) AS "right",
       CAST(NULL AS INTEGER) AS "eff_from", CAST(NULL AS INTEGER) AS "eff_to",
       CAST(NULL AS TEXT) AS "strc_opt"
  FROM assy
  WHERE assy.obid IN (%s)
UNION ALL
SELECT comp.type, comp.obid, comp.name, '' AS "dec", '' AS "make_or_buy", comp.state,
       comp.material, comp.weight, comp.checkedout, comp.data, comp.path_opt,
       CAST(NULL AS INTEGER) AS "left", CAST(NULL AS INTEGER) AS "right",
       CAST(NULL AS INTEGER) AS "eff_from", CAST(NULL AS INTEGER) AS "eff_to",
       CAST(NULL AS TEXT) AS "strc_opt"
  FROM comp
  WHERE comp.obid IN (%s)`, in, in)
}

// idList renders ids as a comma-separated SQL IN list.
func idList(ids []int64) string {
	var b []byte
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, "%d", id)
	}
	return string(b)
}

// BuildProbeExists turns an ∃structure condition into a standalone probe
// query for one concrete object — what a navigational client must ship
// per candidate node because it cannot evaluate the condition locally
// (the related objects live on the server). References to
// <objType>.obid in the condition are replaced by the object id.
func BuildProbeExists(cond string, u UserContext, objType string, obid int64) (*ast.Select, error) {
	e, err := parser.ParseExpr(u.Expand(cond))
	if err != nil {
		return nil, err
	}
	e = substituteColumn(e, objType, "obid", obid)
	core := &ast.SelectCore{
		Items: []ast.SelectItem{{Expr: &ast.Literal{Value: intValue(1)}, Alias: "ok"}},
		Where: e,
	}
	return &ast.Select{Body: core}, nil
}

// BuildProbeExistsParam is the parameterized form of BuildProbeExists:
// every reference to <objType>.obid becomes a `?` placeholder, so one
// prepared probe serves all candidate nodes of a rule. It returns the
// number of placeholders; the caller binds the probed object id to each
// (all placeholders carry the same value, so binding order is
// immaterial).
func BuildProbeExistsParam(cond string, u UserContext, objType string) (*ast.Select, int, error) {
	e, err := parser.ParseExpr(u.Expand(cond))
	if err != nil {
		return nil, 0, err
	}
	n := 0
	e = substituteColumnParam(e, objType, "obid", &n)
	core := &ast.SelectCore{
		Items: []ast.SelectItem{{Expr: &ast.Literal{Value: intValue(1)}, Alias: "ok"}},
		Where: e,
	}
	return &ast.Select{Body: core}, n, nil
}
