package core

import (
	"fmt"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/types"
)

// Modifier is the query modificator of Section 5.5: it rewrites
// generated queries so that access rules, structure options and
// effectivities are evaluated early, at the database server.
type Modifier struct {
	Rules *RuleTable
	User  UserContext
}

// TreeObjType is the object type ∀rows and tree-aggregate rules are
// registered under (the paper's example 2 uses "tree(assembly)").
const TreeObjType = "tree(assy)"

// ModifyNavigational applies step D — ordinary row conditions — to a
// navigational query (single-level expand or set-oriented query). Tree
// conditions cannot be evaluated within navigational queries
// (Section 4.1) and remain the client's burden.
func (m *Modifier) ModifyNavigational(sel *ast.Select, action string) error {
	return m.applyRowConditions(collectCores(sel.Body), action)
}

// ModifyRecursive applies the full algorithm of Section 5.5 to a
// recursive query: (A) ∀rows conditions, (B) tree-aggregate conditions,
// (C) ∃structure conditions, (D) ordinary row conditions.
func (m *Modifier) ModifyRecursive(sel *ast.Select, action string) error {
	if sel.With == nil {
		return fmt.Errorf("core: recursive modification requires a WITH query")
	}
	outer := collectCores(sel.Body)
	var inner []*ast.SelectCore
	for i := range sel.With.CTEs {
		inner = append(inner, collectCores(sel.With.CTEs[i].Select.Body)...)
	}
	actions := []string{action, ActionAccess}

	// A. ∀rows conditions: NOT EXISTS (SELECT * FROM rtbl WHERE NOT cond)
	// appended to all SELECTs outside the recursive part — the
	// "all-or-nothing" principle of Section 5.3.1.
	forall := m.Rules.Relevant(m.User.Name, actions, TreeObjType, KindForAllRows)
	if len(forall) > 0 {
		rowCond, err := disjunction(forall, m.User)
		if err != nil {
			return err
		}
		guard := &ast.Exists{
			Not: true,
			Select: &ast.Select{Body: &ast.SelectCore{
				Items: []ast.SelectItem{{Star: true}},
				From:  &ast.BaseTable{Name: RecTable},
				Where: &ast.Unary{Op: "NOT", Expr: rowCond},
			}},
		}
		for _, c := range outer {
			c.Where = ast.AndWhere(c.Where, guard)
		}
	}

	// B. Tree-aggregate conditions: appended verbatim to the outer
	// SELECTs (they already reference rtbl in a scalar subquery).
	aggs := m.Rules.Relevant(m.User.Name, actions, TreeObjType, KindTreeAggregate)
	if len(aggs) > 0 {
		pred, err := disjunction(aggs, m.User)
		if err != nil {
			return err
		}
		for _, c := range outer {
			c.Where = ast.AndWhere(c.Where, pred)
		}
	}

	// C. ∃structure conditions: grouped by object type O, appended to the
	// SELECT statements inside the recursive part which refer to O.
	for _, objType := range coreObjectTypes(inner) {
		rules := m.Rules.Relevant(m.User.Name, actions, objType, KindExistsStructure)
		if len(rules) == 0 {
			continue
		}
		pred, err := disjunction(rules, m.User)
		if err != nil {
			return err
		}
		for _, c := range inner {
			if fromReferencesTable(c.From, objType) {
				c.Where = ast.AndWhere(c.Where, pred)
			}
		}
	}

	// D. Ordinary row conditions, inside and outside the recursive part.
	return m.applyRowConditions(append(append([]*ast.SelectCore{}, inner...), outer...), action)
}

// applyRowConditions implements step D: for every object type occurring
// in the query, the disjunction of the user's row conditions is appended
// (with AND) to each SELECT referring to that type in its FROM clause.
func (m *Modifier) applyRowConditions(cores []*ast.SelectCore, action string) error {
	actions := []string{action, ActionAccess}
	for _, objType := range coreObjectTypes(cores) {
		rules := m.Rules.Relevant(m.User.Name, actions, objType, KindRow)
		if len(rules) == 0 {
			continue
		}
		pred, err := disjunction(rules, m.User)
		if err != nil {
			return err
		}
		for _, c := range cores {
			if fromReferencesTable(c.From, objType) {
				c.Where = ast.AndWhere(c.Where, clone(pred))
			}
		}
	}
	return nil
}

// collectCores flattens a set-operation tree into its SELECT cores.
func collectCores(body ast.SelectBody) []*ast.SelectCore {
	switch b := body.(type) {
	case *ast.SelectCore:
		return []*ast.SelectCore{b}
	case *ast.SetOp:
		return append(collectCores(b.Left), collectCores(b.Right)...)
	}
	return nil
}

// coreObjectTypes lists the base tables referenced by the cores' FROM
// clauses (excluding the recursion table), in first-seen order.
func coreObjectTypes(cores []*ast.SelectCore) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(ref ast.TableRef)
	walk = func(ref ast.TableRef) {
		switch r := ref.(type) {
		case *ast.BaseTable:
			name := strings.ToLower(r.Name)
			if name == RecTable || seen[name] {
				return
			}
			seen[name] = true
			out = append(out, name)
		case *ast.Join:
			walk(r.Left)
			walk(r.Right)
		case *ast.CrossList:
			for _, it := range r.Items {
				walk(it)
			}
		case *ast.SubqueryTable:
			for _, c := range collectCores(r.Select.Body) {
				if c.From != nil {
					walk(c.From)
				}
			}
		}
	}
	for _, c := range cores {
		if c.From != nil {
			walk(c.From)
		}
	}
	return out
}

// fromReferencesTable reports whether a FROM tree references the table.
func fromReferencesTable(ref ast.TableRef, table string) bool {
	switch r := ref.(type) {
	case *ast.BaseTable:
		return strings.EqualFold(r.Name, table) ||
			(r.Alias != "" && strings.EqualFold(r.Alias, table))
	case *ast.Join:
		return fromReferencesTable(r.Left, table) || fromReferencesTable(r.Right, table)
	case *ast.CrossList:
		for _, it := range r.Items {
			if fromReferencesTable(it, table) {
				return true
			}
		}
	case *ast.SubqueryTable:
		for _, c := range collectCores(r.Select.Body) {
			if c.From != nil && fromReferencesTable(c.From, table) {
				return true
			}
		}
	}
	return false
}

// clone deep-copies an expression so the same rule predicate can be
// appended to several SELECT cores without sharing mutable nodes.
func clone(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.Literal:
		c := *e
		return &c
	case *ast.Param:
		c := *e
		return &c
	case *ast.ColumnRef:
		c := *e
		return &c
	case *ast.Binary:
		return &ast.Binary{Op: e.Op, Left: clone(e.Left), Right: clone(e.Right)}
	case *ast.Unary:
		return &ast.Unary{Op: e.Op, Expr: clone(e.Expr)}
	case *ast.IsNull:
		return &ast.IsNull{Expr: clone(e.Expr), Not: e.Not}
	case *ast.Between:
		return &ast.Between{Expr: clone(e.Expr), Lo: clone(e.Lo), Hi: clone(e.Hi), Not: e.Not}
	case *ast.Like:
		return &ast.Like{Expr: clone(e.Expr), Pattern: clone(e.Pattern), Not: e.Not}
	case *ast.InList:
		items := make([]ast.Expr, len(e.Items))
		for i, it := range e.Items {
			items[i] = clone(it)
		}
		return &ast.InList{Expr: clone(e.Expr), Items: items, Not: e.Not}
	case *ast.Cast:
		return &ast.Cast{Expr: clone(e.Expr), Type: e.Type}
	case *ast.FuncCall:
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = clone(a)
		}
		return &ast.FuncCall{Name: e.Name, Args: args}
	case *ast.Case:
		c := &ast.Case{}
		if e.Operand != nil {
			c.Operand = clone(e.Operand)
		}
		for _, w := range e.Whens {
			c.Whens = append(c.Whens, ast.When{Cond: clone(w.Cond), Result: clone(w.Result)})
		}
		if e.Else != nil {
			c.Else = clone(e.Else)
		}
		return c
	default:
		// Subquery-bearing expressions (Exists, InSubquery, ScalarSubquery,
		// Aggregate) are shared read-only: the executor never mutates them.
		return e
	}
}

// substituteColumn replaces references to table.column with a literal —
// used to turn a correlated ∃structure condition into a standalone probe.
func substituteColumn(e ast.Expr, table, column string, val int64) ast.Expr {
	return substituteColumnWith(e, table, column, func() ast.Expr {
		return &ast.Literal{Value: intValue(val)}
	})
}

// substituteColumnParam replaces references to table.column with `?`
// placeholders, counting them in *count — the parameterized probe the
// prepared-statement mode prepares once per rule.
func substituteColumnParam(e ast.Expr, table, column string, count *int) ast.Expr {
	return substituteColumnWith(e, table, column, func() ast.Expr {
		p := &ast.Param{Index: *count}
		*count++
		return p
	})
}

// substituteColumnWith rewrites every reference to table.column using
// the given replacement constructor.
func substituteColumnWith(e ast.Expr, table, column string, repl func() ast.Expr) ast.Expr {
	replace := func(x ast.Expr) ast.Expr { return substituteColumnWith(x, table, column, repl) }
	switch e := e.(type) {
	case *ast.ColumnRef:
		if strings.EqualFold(e.Table, table) && strings.EqualFold(e.Column, column) {
			return repl()
		}
		return e
	case *ast.Binary:
		return &ast.Binary{Op: e.Op, Left: replace(e.Left), Right: replace(e.Right)}
	case *ast.Unary:
		return &ast.Unary{Op: e.Op, Expr: replace(e.Expr)}
	case *ast.IsNull:
		return &ast.IsNull{Expr: replace(e.Expr), Not: e.Not}
	case *ast.Between:
		return &ast.Between{Expr: replace(e.Expr), Lo: replace(e.Lo), Hi: replace(e.Hi), Not: e.Not}
	case *ast.Like:
		return &ast.Like{Expr: replace(e.Expr), Pattern: replace(e.Pattern), Not: e.Not}
	case *ast.InList:
		items := make([]ast.Expr, len(e.Items))
		for i, it := range e.Items {
			items[i] = replace(it)
		}
		return &ast.InList{Expr: replace(e.Expr), Items: items, Not: e.Not}
	case *ast.Cast:
		return &ast.Cast{Expr: replace(e.Expr), Type: e.Type}
	case *ast.FuncCall:
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = replace(a)
		}
		return &ast.FuncCall{Name: e.Name, Args: args}
	case *ast.Exists:
		return &ast.Exists{Not: e.Not, Select: substituteInSelect(e.Select, table, column, repl)}
	case *ast.InSubquery:
		return &ast.InSubquery{Expr: replace(e.Expr), Not: e.Not, Select: substituteInSelect(e.Select, table, column, repl)}
	case *ast.ScalarSubquery:
		return &ast.ScalarSubquery{Select: substituteInSelect(e.Select, table, column, repl)}
	}
	return e
}

// substituteInSelect rewrites WHERE clauses of a (sub)query — sufficient
// for probe generation, where the correlation always sits in a WHERE.
func substituteInSelect(sel *ast.Select, table, column string, repl func() ast.Expr) *ast.Select {
	out := *sel
	cores := collectCores(out.Body)
	for _, c := range cores {
		if c.Where != nil {
			c.Where = substituteColumnWith(c.Where, table, column, repl)
		}
	}
	return &out
}

func intValue(v int64) types.Value { return types.NewInt(v) }
