package core

import (
	"context"
	"fmt"

	"pdmtune/internal/cache"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/wire"
)

// Object type resolution. Looked-up and received types are remembered
// in the client's (LRU-bounded) cache store, so the root of a repeated
// expand costs its type lookup only once — and a long session can no
// longer grow an unbounded id→type map. Object types are immutable in
// the PDM schema, so type entries need no version validation; they
// leave the cache only under LRU pressure.

// typeAction is the cache-key action discriminator of type entries.
// The NUL byte keeps it disjoint from every PDM action name.
const typeAction = "\x00type"

// typeKey returns the cache key of an object's type entry. Types are
// objective — independent of user, rules and strategy — so the
// profile carries only the server namespace and sessions of one
// system sharing a store share the lookups.
func (c *Client) typeKey(obid int64) cache.Key {
	return cache.Key{ID: obid, Action: typeAction, Profile: c.cacheNS}
}

// typeLookupParamSQL resolves an object id to its type across the node
// tables — the object model's discriminator query.
const typeLookupParamSQL = "SELECT type FROM assy WHERE obid = ? UNION ALL SELECT type FROM comp WHERE obid = ?"

// LookupType resolves the actual type of an object (the paper's
// object tables assy and comp). Cached results cost nothing; the
// first lookup of an unknown id is one WAN statement. An id found in
// neither table is an error, not an empty assembly.
func (w *wireFetcher) LookupType(ctx context.Context, obid int64) (string, error) {
	c := w.c
	if e, ok := c.types.Get(c.typeKey(obid)); ok {
		return e.Value.(string), nil
	}
	var resp *wire.Response
	var err error
	if c.prepared {
		var h uint32
		h, err = c.ensurePrepared(ctx, typeLookupParamSQL)
		if err != nil {
			return "", err
		}
		resp, err = c.sql.ExecPrepared(ctx, h, types.NewInt(obid), types.NewInt(obid))
	} else {
		resp, err = c.sql.Exec(ctx, fmt.Sprintf(
			"SELECT type FROM assy WHERE obid = %d UNION ALL SELECT type FROM comp WHERE obid = %d", obid, obid))
	}
	if err != nil {
		return "", err
	}
	if len(resp.Rows) == 0 || len(resp.Rows[0]) == 0 {
		return "", fmt.Errorf("core: object %d does not exist", obid)
	}
	t := resp.Rows[0][0].String()
	c.types.Put(c.typeKey(obid), cache.Entry{Value: t})
	return t, nil
}

// rememberType caches an object's type learned from a received row.
func (c *Client) rememberType(n *Node) {
	if n != nil && n.Type != "" {
		c.types.Put(c.typeKey(n.ObID), cache.Entry{Value: n.Type})
	}
}
