package minisql

import (
	"fmt"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/types"
)

// explain produces a textual access plan without executing the statement.
// The planner in this engine is rule-based, so the plan can be described
// statically: which tables are scanned, which equality predicates are
// served by hash indexes, and which joins hash versus nest.
func (s *Session) explain(stmt ast.Statement, params []Value) (*Result, error) {
	var lines []string
	add := func(depth int, format string, args ...any) {
		lines = append(lines, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
	}
	switch st := stmt.(type) {
	case *ast.Select:
		s.explainSelect(st, 0, add)
	case *ast.Insert:
		add(0, "INSERT INTO %s (%d row literals)", st.Table, len(st.Rows))
		if st.Select != nil {
			s.explainSelect(st.Select, 1, add)
		}
	case *ast.Update:
		add(0, "UPDATE %s: full scan + predicate", st.Table)
	case *ast.Delete:
		add(0, "DELETE FROM %s: full scan + predicate", st.Table)
	default:
		add(0, "%s", stmt.String())
	}
	res := &Result{Cols: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []Value{types.NewText(l)})
	}
	return res, nil
}

func (s *Session) explainSelect(sel *ast.Select, depth int, add func(int, string, ...any)) {
	if sel.With != nil {
		for _, cte := range sel.With.CTEs {
			kind := "CTE"
			if sel.With.Recursive {
				kind = "RECURSIVE CTE (semi-naive fixpoint)"
			}
			add(depth, "%s %s:", kind, cte.Name)
			s.explainSelect(cte.Select, depth+1, add)
		}
	}
	cores, ops := flattenBody(sel.Body)
	for i, core := range cores {
		if i > 0 {
			add(depth, "%s", ops[i-1])
		}
		s.explainCore(core, depth, add)
	}
	if len(sel.OrderBy) > 0 {
		add(depth, "SORT (%d key(s))", len(sel.OrderBy))
	}
}

func (s *Session) explainCore(core *ast.SelectCore, depth int, add func(int, string, ...any)) {
	agg := ""
	if len(core.GroupBy) > 0 {
		agg = fmt.Sprintf(" GROUP BY %d expr(s)", len(core.GroupBy))
	}
	add(depth, "SELECT%s", agg)
	if core.From != nil {
		s.explainFrom(core.From, depth+1, add)
	}
	if core.Where != nil {
		add(depth+1, "FILTER %s", core.Where.String())
	}
}

func (s *Session) explainFrom(ref ast.TableRef, depth int, add func(int, string, ...any)) {
	switch r := ref.(type) {
	case *ast.BaseTable:
		t, ok := s.db.store.Table(r.Name)
		if !ok {
			add(depth, "SCAN %s (CTE or unknown)", r.Name)
			return
		}
		idx := ""
		if n := len(t.Indexes()); n > 0 {
			names := make([]string, 0, n)
			for _, ix := range t.Indexes() {
				names = append(names, ix.Name+"("+ix.Column+")")
			}
			idx = " indexes: " + strings.Join(names, ", ")
		}
		add(depth, "SCAN %s (%d rows)%s", r.Name, t.NumRows(), idx)
	case *ast.Join:
		kind := "HASH JOIN (if equi-pair found) / NESTED LOOP"
		add(depth, "%s %s ON %s", r.Type, kind, r.On.String())
		s.explainFrom(r.Left, depth+1, add)
		s.explainFrom(r.Right, depth+1, add)
	case *ast.CrossList:
		add(depth, "CROSS LIST (%d items, WHERE equi-conjuncts become hash joins)", len(r.Items))
		for _, it := range r.Items {
			s.explainFrom(it, depth+1, add)
		}
	case *ast.SubqueryTable:
		add(depth, "DERIVED TABLE %s:", r.Alias)
		s.explainSelect(r.Select, depth+1, add)
	}
}

func flattenBody(body ast.SelectBody) ([]*ast.SelectCore, []string) {
	switch b := body.(type) {
	case *ast.SelectCore:
		return []*ast.SelectCore{b}, nil
	case *ast.SetOp:
		lc, lo := flattenBody(b.Left)
		rc, ro := flattenBody(b.Right)
		return append(lc, rc...), append(append(lo, b.Op), ro...)
	}
	return nil, nil
}
