// Package minisql is the engine facade of the from-scratch relational
// database that substitutes for the commercial RDBMS underneath the
// paper's PDM system. It wires the lexer/parser, executor and storage
// into a DB with sessions, transactions, parameters, stored functions
// and stored procedures.
//
// The SQL dialect covers what the paper's workload requires: DDL, DML,
// SELECT with joins / set operations / subqueries / aggregates / CAST /
// CASE, and SQL:1999 WITH RECURSIVE — the engine runs the paper's
// Section 5 example queries verbatim (modulo the minor syntactic changes
// the paper itself notes for DB2).
package minisql

import (
	"fmt"
	"strings"
	"sync"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/exec"
	"pdmtune/internal/minisql/parser"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

// Value and Row re-export the engine's value model so callers need not
// import the internal subpackages.
type Value = types.Value

// Row is one result tuple.
type Row = storage.Row

// Result is the outcome of one statement.
type Result struct {
	// Cols are the output column names (empty for non-queries).
	Cols []string
	// Rows are the output tuples (nil for non-queries).
	Rows []storage.Row
	// RowsAffected counts rows written by INSERT/UPDATE/DELETE.
	RowsAffected int
}

// ScalarFunc is a server-registered scalar function, the engine's
// equivalent of an SQL/PSM stored function (paper Section 3.2: conditions
// beyond standard predicates are evaluated by "stored functions ...
// provided at the server").
type ScalarFunc = exec.ScalarFunc

// Procedure is a server-side stored procedure invoked via CALL. It runs
// inside the server with full access to a session — the paper's Section 6
// "function shipping" remedy for check-out style actions.
type Procedure func(s *Session, args []Value) (*Result, error)

// Options tune engine behaviour; the zero value is the default.
type Options struct {
	// DisableSubqueryCache turns off memoization of uncorrelated
	// subqueries (ablation knob; the paper assumes an "intelligent query
	// optimizer" evaluates them once).
	DisableSubqueryCache bool
	// MaxRecursion bounds recursive CTE iterations (0 = default 100000).
	MaxRecursion int
}

// DB is an in-memory database instance. It is safe for concurrent use;
// statements execute under a database-wide reader/writer lock, which is
// the "more or less simple record manager" concurrency the paper's PDM
// systems assume.
type DB struct {
	mu    sync.RWMutex
	store *storage.DB
	funcs map[string]ScalarFunc
	procs map[string]Procedure
	opts  Options
}

// NewDB creates an empty database with the built-in function library.
func NewDB() *DB {
	db := &DB{
		store: storage.NewDB(),
		funcs: map[string]ScalarFunc{},
		procs: map[string]Procedure{},
	}
	registerBuiltins(db)
	return db
}

// SetOptions replaces the engine options.
func (db *DB) SetOptions(o Options) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.opts = o
}

// SetVersionKey overrides the version-key column of a table (see
// storage.DB.SetVersionKey): its rows then bump the version of the
// object named by that column instead of their primary key. The
// override is remembered for tables created later, so it can be
// registered before the schema is loaded.
func (db *DB) SetVersionKey(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.store.SetVersionKey(table, column)
}

// Epoch returns the database's current modification epoch — the
// version stamp a fetch performed now would carry.
func (db *DB) Epoch() uint64 { return db.store.Versions().Epoch() }

// ExtractDelta collects the replication delta above the given epoch:
// the current rows (full rows, keyed by version key) of every object
// modified after it, plus the version stamps a replica needs to mirror
// this database's log. The returned rows alias the live storage —
// row slices are immutable once stored, so the snapshot stays valid
// after the lock is released.
func (db *DB) ExtractDelta(since uint64) *storage.Delta {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.ExtractDelta(since)
}

// ApplyDelta applies a replication delta pulled from a primary,
// transactionally: on error the database is left as it was. The
// version log is fast-forwarded to the primary's stamps instead of
// bumping locally, so validate exchanges against this replica answer
// exactly as the primary would.
func (db *DB) ApplyDelta(d *storage.Delta) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.store.ApplyDelta(d)
}

// LastModified returns the epoch of the last mutation of the object
// with the given version key (0 when never mutated).
func (db *DB) LastModified(key int64) uint64 { return db.store.Versions().LastModified(key) }

// RegisterFunc installs a stored scalar function callable from SQL.
func (db *DB) RegisterFunc(name string, fn ScalarFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToLower(name)] = fn
}

// RegisterProc installs a stored procedure callable via CALL name(...).
func (db *DB) RegisterProc(name string, p Procedure) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.procs[strings.ToLower(name)] = p
}

// NumRows reports the live row count of a table (0 if absent); used by
// tests and diagnostics.
func (db *DB) NumRows(table string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.store.Table(table)
	if !ok {
		return 0
	}
	return t.NumRows()
}

// TableNames lists the tables in the catalog.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.TableNames()
}

// Session is one client connection to the database. Sessions are not
// safe for concurrent use; create one per goroutine.
type Session struct {
	db   *DB
	inTx bool
	undo []storage.Undo
}

// NewSession opens a session.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// Exec parses and executes a single statement with optional positional
// parameters bound to '?' placeholders.
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt, params...)
}

// ExecScript executes a semicolon-separated script, returning the result
// of the last statement.
func (s *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := parser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecStmt(st)
		if err != nil {
			return nil, err
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// Query is Exec restricted to statements that return rows.
func (s *Session) Query(sql string, params ...Value) (*Result, error) {
	res, err := s.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	if res.Cols == nil {
		return nil, fmt.Errorf("sql: statement returns no rows")
	}
	return res, nil
}

// ExecStmt executes an already-parsed statement.
func (s *Session) ExecStmt(stmt ast.Statement, params ...Value) (*Result, error) {
	switch st := stmt.(type) {
	case *ast.Select:
		s.db.mu.RLock()
		defer s.db.mu.RUnlock()
		ctx := s.newContext(params)
		rel, err := ctx.EvalSelect(st, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: rel.ColNames(), Rows: rel.Rows}, nil

	case *ast.Explain:
		s.db.mu.RLock()
		defer s.db.mu.RUnlock()
		return s.explain(st.Stmt, params)

	case *ast.Insert:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		return s.execInsert(st, params)

	case *ast.Update:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		return s.execUpdate(st, params)

	case *ast.Delete:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		return s.execDelete(st, params)

	case *ast.CreateTable:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		return s.execCreateTable(st)

	case *ast.CreateIndex:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		t, ok := s.db.store.Table(st.Table)
		if !ok {
			return nil, fmt.Errorf("sql: no such table %s", st.Table)
		}
		if st.IfNotExists && t.HasIndex(st.Name) {
			return &Result{}, nil
		}
		if err := t.CreateIndex(st.Name, st.Column, st.Unique); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *ast.DropTable:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		if err := s.db.store.DropTable(st.Name, st.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *ast.Begin:
		if s.inTx {
			return nil, fmt.Errorf("sql: transaction already in progress")
		}
		s.inTx = true
		s.undo = s.undo[:0]
		return &Result{}, nil

	case *ast.Commit:
		if !s.inTx {
			return nil, fmt.Errorf("sql: no transaction in progress")
		}
		s.inTx = false
		s.undo = s.undo[:0]
		return &Result{}, nil

	case *ast.Rollback:
		if !s.inTx {
			return nil, fmt.Errorf("sql: no transaction in progress")
		}
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		for i := len(s.undo) - 1; i >= 0; i-- {
			if err := s.undo[i].Apply(); err != nil {
				return nil, fmt.Errorf("sql: rollback failed: %v", err)
			}
		}
		s.inTx = false
		s.undo = s.undo[:0]
		return &Result{}, nil

	case *ast.Call:
		s.db.mu.RLock()
		proc, ok := s.db.procs[strings.ToLower(st.Proc)]
		s.db.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("sql: no such procedure %s", st.Proc)
		}
		ctx := s.newContext(params)
		args := make([]Value, len(st.Args))
		for i, a := range st.Args {
			v, err := ctx.EvalExpr(a, nil)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return proc(s, args)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

func (s *Session) newContext(params []Value) *exec.Context {
	return &exec.Context{
		DB:                   s.db.store,
		Params:               params,
		Funcs:                s.db.funcs,
		CTEs:                 map[string]*exec.Relation{},
		SubqueryCache:        map[*ast.Select]*exec.Relation{},
		DisableSubqueryCache: s.db.opts.DisableSubqueryCache,
		MaxRecursion:         s.db.opts.MaxRecursion,
	}
}

// record appends an undo entry when a transaction is open.
func (s *Session) record(u storage.Undo) {
	if s.inTx {
		s.undo = append(s.undo, u)
	}
}

func (s *Session) execCreateTable(st *ast.CreateTable) (*Result, error) {
	schema := &storage.Schema{Name: st.Name}
	ctx := s.newContext(nil)
	for _, c := range st.Cols {
		col := storage.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey}
		if c.Default != nil {
			v, err := ctx.EvalExpr(c.Default, nil)
			if err != nil {
				return nil, err
			}
			cv, err := types.Coerce(v, c.Type)
			if err != nil {
				return nil, err
			}
			col.HasDefault = true
			col.Default = cv
		}
		schema.Cols = append(schema.Cols, col)
	}
	if err := s.db.store.CreateTable(schema, st.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) execInsert(st *ast.Insert, params []Value) (*Result, error) {
	table, ok := s.db.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", st.Table)
	}
	schema := table.Schema
	ctx := s.newContext(params)

	// Map the provided column list (or the full schema) to positions.
	positions := make([]int, 0, len(schema.Cols))
	if len(st.Cols) == 0 {
		for i := range schema.Cols {
			positions = append(positions, i)
		}
	} else {
		for _, name := range st.Cols {
			p := schema.ColIndex(name)
			if p < 0 {
				return nil, fmt.Errorf("sql: table %s has no column %s", st.Table, name)
			}
			positions = append(positions, p)
		}
	}

	buildRow := func(values []Value) (storage.Row, error) {
		if len(values) != len(positions) {
			return nil, fmt.Errorf("sql: INSERT expects %d values, got %d", len(positions), len(values))
		}
		row := make(storage.Row, len(schema.Cols))
		filled := make([]bool, len(schema.Cols))
		for i, p := range positions {
			row[p] = values[i]
			filled[p] = true
		}
		for i := range row {
			if !filled[i] {
				if schema.Cols[i].HasDefault {
					row[i] = schema.Cols[i].Default
				} else {
					row[i] = types.Null
				}
			}
		}
		return row, nil
	}

	n := 0
	insert := func(row storage.Row) error {
		id, err := table.Insert(row)
		if err != nil {
			return err
		}
		s.record(storage.Undo{Kind: storage.UndoInsert, Table: table, RowID: id})
		n++
		return nil
	}

	if st.Select != nil {
		rel, err := ctx.EvalSelect(st.Select, nil)
		if err != nil {
			return nil, err
		}
		for _, row := range rel.Rows {
			r, err := buildRow(row)
			if err != nil {
				return nil, err
			}
			if err := insert(r); err != nil {
				return nil, err
			}
		}
		return &Result{RowsAffected: n}, nil
	}

	for _, exprRow := range st.Rows {
		values := make([]Value, len(exprRow))
		for i, e := range exprRow {
			v, err := ctx.EvalExpr(e, nil)
			if err != nil {
				return nil, err
			}
			values[i] = v
		}
		r, err := buildRow(values)
		if err != nil {
			return nil, err
		}
		if err := insert(r); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: n}, nil
}

func (s *Session) execUpdate(st *ast.Update, params []Value) (*Result, error) {
	table, ok := s.db.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", st.Table)
	}
	schema := table.Schema
	ctx := s.newContext(params)

	setPos := make([]int, len(st.Set))
	for i, a := range st.Set {
		p := schema.ColIndex(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", st.Table, a.Column)
		}
		setPos[i] = p
	}

	cols := make([]exec.ColMeta, len(schema.Cols))
	for i := range schema.Cols {
		cols[i] = exec.ColMeta{Table: strings.ToLower(st.Table), Name: schema.Cols[i].Name}
	}

	// Two-phase: gather matching row ids first, then mutate, so the scan
	// is not disturbed by index updates.
	var ids []int
	var evalErr error
	table.Scan(func(id int, row storage.Row) bool {
		env := exec.NewEnv(cols, row, nil)
		if st.Where != nil {
			t, err := ctx.EvalPredicate(st.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if t != types.True {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}

	for _, id := range ids {
		old, _ := table.Get(id)
		before := append(storage.Row{}, old...)
		newRow := append(storage.Row{}, old...)
		env := exec.NewEnv(cols, old, nil)
		for i, a := range st.Set {
			v, err := ctx.EvalExpr(a.Value, env)
			if err != nil {
				return nil, err
			}
			newRow[setPos[i]] = v
		}
		if err := table.Update(id, newRow); err != nil {
			return nil, err
		}
		s.record(storage.Undo{Kind: storage.UndoUpdate, Table: table, RowID: id, Before: before})
	}
	return &Result{RowsAffected: len(ids)}, nil
}

func (s *Session) execDelete(st *ast.Delete, params []Value) (*Result, error) {
	table, ok := s.db.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", st.Table)
	}
	schema := table.Schema
	ctx := s.newContext(params)
	cols := make([]exec.ColMeta, len(schema.Cols))
	for i := range schema.Cols {
		cols[i] = exec.ColMeta{Table: strings.ToLower(st.Table), Name: schema.Cols[i].Name}
	}
	var ids []int
	var evalErr error
	table.Scan(func(id int, row storage.Row) bool {
		if st.Where != nil {
			env := exec.NewEnv(cols, row, nil)
			t, err := ctx.EvalPredicate(st.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if t != types.True {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	for _, id := range ids {
		old, _ := table.Get(id)
		before := append(storage.Row{}, old...)
		if err := table.Delete(id); err != nil {
			return nil, err
		}
		s.record(storage.Undo{Kind: storage.UndoDelete, Table: table, RowID: id, Before: before})
	}
	return &Result{RowsAffected: len(ids)}, nil
}
