// Package minisql is the engine facade of the from-scratch relational
// database that substitutes for the commercial RDBMS underneath the
// paper's PDM system. It wires the lexer/parser, executor and storage
// into a DB with sessions, transactions, parameters, stored functions
// and stored procedures.
//
// The SQL dialect covers what the paper's workload requires: DDL, DML,
// SELECT with joins / set operations / subqueries / aggregates / CAST /
// CASE, and SQL:1999 WITH RECURSIVE — the engine runs the paper's
// Section 5 example queries verbatim (modulo the minor syntactic changes
// the paper itself notes for DB2).
package minisql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/exec"
	"pdmtune/internal/minisql/parser"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

// Value and Row re-export the engine's value model so callers need not
// import the internal subpackages.
type Value = types.Value

// Row is one result tuple.
type Row = storage.Row

// Result is the outcome of one statement.
type Result struct {
	// Cols are the output column names (empty for non-queries).
	Cols []string
	// Rows are the output tuples (nil for non-queries).
	Rows []storage.Row
	// RowsAffected counts rows written by INSERT/UPDATE/DELETE.
	RowsAffected int
}

// ScalarFunc is a server-registered scalar function, the engine's
// equivalent of an SQL/PSM stored function (paper Section 3.2: conditions
// beyond standard predicates are evaluated by "stored functions ...
// provided at the server").
type ScalarFunc = exec.ScalarFunc

// Procedure is a server-side stored procedure invoked via CALL. It runs
// inside the server with full access to a session — the paper's Section 6
// "function shipping" remedy for check-out style actions.
type Procedure func(s *Session, args []Value) (*Result, error)

// Options tune engine behaviour; the zero value is the default.
type Options struct {
	// DisableSubqueryCache turns off memoization of uncorrelated
	// subqueries (ablation knob; the paper assumes an "intelligent query
	// optimizer" evaluates them once).
	DisableSubqueryCache bool
	// MaxRecursion bounds recursive CTE iterations (0 = default 100000).
	MaxRecursion int
	// CoarseLocking restores the pre-MVCC concurrency story — every
	// statement under one database-wide reader/writer lock, the paper's
	// "more or less simple record manager" — as an ablation knob for
	// contention benchmarks (pdmbench -coarse). The default is snapshot
	// isolation: reads run lock-free against a version-log snapshot and
	// writers serialize per table only.
	CoarseLocking bool
}

// DB is an in-memory database instance, safe for concurrent use by any
// number of sessions.
//
// Concurrency model (the MVCC redesign; see also storage's package
// comment): a read statement captures the version-log epoch once and
// evaluates entirely against that snapshot — it takes no locks and is
// never blocked by writers. A write statement takes only its target
// table's write latch, stages its mutations as pending row versions,
// and publishes them atomically under one fresh epoch. The old
// database-wide RWMutex survives solely behind Options.CoarseLocking
// as an ablation path.
type DB struct {
	store *storage.DB

	// coarse is the database-wide reader/writer lock of the ablation
	// mode (Options.CoarseLocking); unused otherwise.
	coarse sync.RWMutex

	// regMu guards the registries and options. The function/procedure
	// maps are copy-on-write so statements can read them lock-free
	// after grabbing the reference.
	regMu sync.RWMutex
	funcs map[string]ScalarFunc
	procs map[string]Procedure
	opts  Options

	// plans caches parsed statements by SQL text so repeated Execs skip
	// lexing and parsing entirely (see plancache.go). Invalidated by DDL.
	plans *planCache
}

// NewDB creates an empty database with the built-in function library.
func NewDB() *DB {
	db := &DB{
		store: storage.NewDB(),
		funcs: map[string]ScalarFunc{},
		procs: map[string]Procedure{},
		plans: newPlanCache(defaultPlanCacheSize),
	}
	registerBuiltins(db)
	return db
}

// SetOptions replaces the engine options.
func (db *DB) SetOptions(o Options) {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	db.opts = o
}

// options returns the current engine options.
func (db *DB) options() Options {
	db.regMu.RLock()
	defer db.regMu.RUnlock()
	return db.opts
}

// SetVersionKey overrides the version-key column of a table (see
// storage.DB.SetVersionKey): its rows then bump the version of the
// object named by that column instead of their primary key. The
// override is remembered for tables created later, so it can be
// registered before the schema is loaded.
func (db *DB) SetVersionKey(table, column string) error {
	return db.store.SetVersionKey(table, column)
}

// Epoch returns the database's current modification epoch — the
// version stamp a fetch performed now would carry, and the snapshot a
// statement started now would read at.
func (db *DB) Epoch() uint64 { return db.store.Versions().Epoch() }

// ExtractDelta collects the replication delta above the given epoch:
// the rows (full rows, keyed by version key) of every object modified
// after it, plus the version stamps a replica needs to mirror this
// database's log. The extraction is a consistent snapshot read — the
// stamp set and capture epoch come from the version log atomically and
// the rows are resolved at that epoch — so no lock is held and
// concurrent writers proceed undisturbed.
func (db *DB) ExtractDelta(since uint64) *storage.Delta {
	return db.ExtractDeltaFiltered(since, nil)
}

// ExtractDeltaFiltered is ExtractDelta with a subscription filter: a
// non-nil keep decides per (table, version key) whether a modified row
// ships. Stamps always ship in full (see storage.DB.ExtractDeltaFiltered).
func (db *DB) ExtractDeltaFiltered(since uint64, keep func(table string, key int64) bool) *storage.Delta {
	if db.options().CoarseLocking {
		db.coarse.RLock()
		defer db.coarse.RUnlock()
	}
	return db.store.ExtractDeltaFiltered(since, keep)
}

// ModifiedSince returns the version keys modified after the given epoch
// with their stamps, plus the log's current epoch — the incremental
// feed a subscription registry uses to refresh its link closures.
func (db *DB) ModifiedSince(since uint64) (map[int64]uint64, uint64) {
	return db.store.Versions().ModifiedSince(since)
}

// ApplyDelta applies a replication delta pulled from a primary,
// transactionally: on error the database is left as it was. The
// version log is fast-forwarded to the primary's stamps instead of
// bumping locally, so validate exchanges against this replica answer
// exactly as the primary would. The apply latches every affected
// table; replica readers see the delta atomically when the final epoch
// fast-forward publishes it.
func (db *DB) ApplyDelta(d *storage.Delta) error {
	return db.ApplyDeltaCtx(context.Background(), d)
}

// ApplyDeltaCtx is ApplyDelta with cancellation: the context is checked
// between tables and a cancelled apply rolls back completely, leaving
// no partial state (see storage.DB.ApplyDeltaCtx).
func (db *DB) ApplyDeltaCtx(ctx context.Context, d *storage.Delta) error {
	if db.options().CoarseLocking {
		db.coarse.Lock()
		defer db.coarse.Unlock()
	}
	return db.store.ApplyDeltaCtx(ctx, d)
}

// DiscardSince erases every row modified after the given epoch — the
// rewind a deposed primary performs before rejoining as a replica. It
// reports whether anything was discarded (see storage.DB.DiscardSince
// for why that forces the next pull to be a full one).
func (db *DB) DiscardSince(since uint64) (bool, error) {
	if db.options().CoarseLocking {
		db.coarse.Lock()
		defer db.coarse.Unlock()
	}
	return db.store.DiscardSince(since)
}

// LastModified returns the epoch of the last mutation of the object
// with the given version key (0 when never mutated).
func (db *DB) LastModified(key int64) uint64 { return db.store.Versions().LastModified(key) }

// RegisterFunc installs a stored scalar function callable from SQL.
func (db *DB) RegisterFunc(name string, fn ScalarFunc) {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	m := make(map[string]ScalarFunc, len(db.funcs)+1)
	for k, v := range db.funcs {
		m[k] = v
	}
	m[strings.ToLower(name)] = fn
	db.funcs = m
}

// RegisterProc installs a stored procedure callable via CALL name(...).
func (db *DB) RegisterProc(name string, p Procedure) {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	m := make(map[string]Procedure, len(db.procs)+1)
	for k, v := range db.procs {
		m[k] = v
	}
	m[strings.ToLower(name)] = p
	db.procs = m
}

// registry returns the current (immutable) function and procedure maps.
func (db *DB) registry() (map[string]ScalarFunc, map[string]Procedure) {
	db.regMu.RLock()
	defer db.regMu.RUnlock()
	return db.funcs, db.procs
}

// NumRows reports the live row count of a table (0 if absent); used by
// tests and diagnostics.
func (db *DB) NumRows(table string) int {
	t, ok := db.store.Table(table)
	if !ok {
		return 0
	}
	return t.NumRows()
}

// TableNames lists the tables in the catalog.
func (db *DB) TableNames() []string {
	return db.store.TableNames()
}

// ContentionStats counts a session's brushes with the engine's
// concurrency machinery: time spent waiting for write latches (or the
// coarse lock, or a pooled connection), snapshots opened for read
// statements, and first-wins write conflicts lost. The wire layer
// drains them per round trip into the netsim meters, which is how
// contention becomes observable per session and per site.
type ContentionStats struct {
	// LockWaitNanos is the total time spent blocked acquiring write
	// latches (and, in coarse mode, the database-wide lock).
	LockWaitNanos int64
	// SnapshotsStarted counts read statements that opened a snapshot.
	SnapshotsStarted int64
	// WriteConflicts counts first-wins races lost (check-out conflicts).
	WriteConflicts int64
	// PlanHits / PlanMisses count plan-cache outcomes: hits executed a
	// cached AST without any lexing or parsing, misses paid a full
	// parse (and populated the cache when the statement is cacheable).
	PlanHits   int64
	PlanMisses int64
}

// IsZero reports whether the stats count nothing.
func (c ContentionStats) IsZero() bool { return c == ContentionStats{} }

// Add accumulates other into c.
func (c *ContentionStats) Add(o ContentionStats) {
	c.LockWaitNanos += o.LockWaitNanos
	c.SnapshotsStarted += o.SnapshotsStarted
	c.WriteConflicts += o.WriteConflicts
	c.PlanHits += o.PlanHits
	c.PlanMisses += o.PlanMisses
}

// Session is one client connection to the database. Sessions are not
// safe for concurrent use; create one per goroutine (the wire layer's
// connection pool multiplexes many client sessions over few engine
// sessions, serializing statements per session).
type Session struct {
	db   *DB
	inTx bool
	undo []storage.Undo

	// held tracks latches acquired by an enclosing LockTables, so the
	// statements of a multi-table procedure do not re-acquire (and
	// deadlock on) latches the procedure already holds.
	held *heldLocks

	stats ContentionStats
}

type heldLocks struct {
	coarse bool
	tables map[*storage.Table]bool
}

// NewSession opens a session.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// TakeContention returns the session's accumulated contention counters
// and resets them — the per-round-trip drain the wire server uses.
func (s *Session) TakeContention() ContentionStats {
	st := s.stats
	s.stats = ContentionStats{}
	return st
}

// CountWriteConflict records a lost first-wins write race (called by
// stored procedures that detect conflicts, e.g. pdm_check_out).
func (s *Session) CountWriteConflict() { s.stats.WriteConflicts++ }

// AddLockWait folds externally measured lock-wait time (e.g. the wire
// pool's connection-acquire wait) into the session's counters.
func (c *ContentionStats) AddLockWait(d time.Duration) { c.LockWaitNanos += int64(d) }

// lockWrite acquires the write path for one table — the table's latch,
// or the database-wide lock in coarse mode — measuring the time spent
// blocked. The returned func releases it. A latch already held by an
// enclosing LockTables is not re-acquired.
func (s *Session) lockWrite(t *storage.Table) func() {
	if s.db.options().CoarseLocking {
		if s.held != nil && s.held.coarse {
			return func() {}
		}
		start := time.Now()
		s.db.coarse.Lock()
		s.stats.LockWaitNanos += time.Since(start).Nanoseconds()
		return s.db.coarse.Unlock
	}
	if t == nil || (s.held != nil && s.held.tables[t]) {
		return func() {}
	}
	if t.TryLock() {
		return t.Unlock
	}
	start := time.Now()
	t.Lock()
	s.stats.LockWaitNanos += time.Since(start).Nanoseconds()
	return t.Unlock
}

// lockRead acquires the read path: nothing at all under snapshot
// isolation, the shared side of the database-wide lock in coarse mode.
func (s *Session) lockRead() func() {
	if s.db.options().CoarseLocking {
		if s.held != nil && s.held.coarse {
			return func() {}
		}
		start := time.Now()
		s.db.coarse.RLock()
		s.stats.LockWaitNanos += time.Since(start).Nanoseconds()
		return s.db.coarse.RUnlock
	}
	return func() {}
}

// snapshotEpoch opens a read snapshot: the statement evaluates as of
// this epoch regardless of concurrent commits.
func (s *Session) snapshotEpoch() uint64 {
	s.stats.SnapshotsStarted++
	return s.db.store.Versions().Epoch()
}

// LockTables acquires the write latches of the named tables (in sorted
// name order, the same order every multi-table writer uses, so
// concurrent acquirers cannot deadlock) and holds them until the
// returned release func runs. It is the engine's multi-statement write
// unit: statements the session executes in between skip re-acquiring
// the held latches, which is what lets a stored procedure make a
// read-check-update sequence atomic against other writers (first-wins
// check-out). Missing tables are skipped. In coarse mode the database
// lock is taken instead.
func (s *Session) LockTables(names ...string) (func(), error) {
	if s.held != nil {
		return nil, fmt.Errorf("minisql: LockTables while table locks are already held")
	}
	if s.db.options().CoarseLocking {
		start := time.Now()
		s.db.coarse.Lock()
		s.stats.LockWaitNanos += time.Since(start).Nanoseconds()
		s.held = &heldLocks{coarse: true}
		return func() {
			s.held = nil
			s.db.coarse.Unlock()
		}, nil
	}
	sorted := make([]string, len(names))
	for i, n := range names {
		sorted[i] = strings.ToLower(n)
	}
	sort.Strings(sorted)
	var tabs []*storage.Table
	seen := map[*storage.Table]bool{}
	for _, n := range sorted {
		if t, ok := s.db.store.Table(n); ok && !seen[t] {
			seen[t] = true
			tabs = append(tabs, t)
		}
	}
	for _, t := range tabs {
		if t.TryLock() {
			continue
		}
		start := time.Now()
		t.Lock()
		s.stats.LockWaitNanos += time.Since(start).Nanoseconds()
	}
	s.held = &heldLocks{tables: seen}
	return func() {
		s.held = nil
		for i := len(tabs) - 1; i >= 0; i-- {
			tabs[i].Unlock()
		}
	}, nil
}

// Exec parses and executes a single statement with optional positional
// parameters bound to '?' placeholders. Parsing goes through the DB's
// plan cache, so repeated statements skip the parser entirely.
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	stmt, err := s.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt, params...)
}

// Parse returns the AST for sql, consulting the DB's shared plan cache.
// A hit performs no lexing or parsing; a miss parses with a fresh arena
// (so the AST is safe to share and retain) and populates the cache for
// cacheable (non-DDL) statements. Hit/miss counts land in the session's
// contention stats, which the wire layer drains into netsim metrics.
func (s *Session) Parse(sql string) (ast.Statement, error) {
	if stmt, ok := s.db.plans.get(sql); ok {
		s.stats.PlanHits++
		return stmt, nil
	}
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.stats.PlanMisses++
	if cacheablePlan(stmt) {
		s.db.plans.put(sql, stmt)
	}
	return stmt, nil
}

// ExecScript executes a semicolon-separated script, returning the result
// of the last statement.
func (s *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := parser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecStmt(st)
		if err != nil {
			return nil, err
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// Query is Exec restricted to statements that return rows.
func (s *Session) Query(sql string, params ...Value) (*Result, error) {
	res, err := s.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	if res.Cols == nil {
		return nil, fmt.Errorf("sql: statement returns no rows")
	}
	return res, nil
}

// ExecStmt executes an already-parsed statement. Reads run against a
// snapshot captured here; writes latch their target table for the
// statement's duration and commit atomically.
func (s *Session) ExecStmt(stmt ast.Statement, params ...Value) (*Result, error) {
	switch st := stmt.(type) {
	case *ast.Select:
		unlock := s.lockRead()
		defer unlock()
		ctx := s.newContext(params, s.snapshotEpoch())
		rel, err := ctx.EvalSelect(st, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: rel.ColNames(), Rows: rel.Rows}, nil

	case *ast.Explain:
		unlock := s.lockRead()
		defer unlock()
		return s.explain(st.Stmt, params)

	case *ast.Insert:
		return s.execInsert(st, params)

	case *ast.Update:
		return s.execUpdate(st, params)

	case *ast.Delete:
		return s.execDelete(st, params)

	case *ast.CreateTable:
		unlock := s.lockWrite(nil) // catalog ops self-synchronize; coarse mode still serializes
		defer unlock()
		res, err := s.execCreateTable(st)
		if err == nil {
			s.db.plans.invalidateAll()
		}
		return res, err

	case *ast.CreateIndex:
		t, ok := s.db.store.Table(st.Table)
		if !ok {
			return nil, fmt.Errorf("sql: no such table %s", st.Table)
		}
		unlock := s.lockWrite(t)
		defer unlock()
		if st.IfNotExists && t.HasIndex(st.Name) {
			return &Result{}, nil
		}
		if err := t.CreateIndex(st.Name, st.Column, st.Unique); err != nil {
			return nil, err
		}
		s.db.plans.invalidateAll()
		return &Result{}, nil

	case *ast.DropTable:
		unlock := s.lockWrite(nil)
		defer unlock()
		if err := s.db.store.DropTable(st.Name, st.IfExists); err != nil {
			return nil, err
		}
		s.db.plans.invalidateAll()
		return &Result{}, nil

	case *ast.Begin:
		if s.inTx {
			return nil, fmt.Errorf("sql: transaction already in progress")
		}
		s.inTx = true
		s.undo = s.undo[:0]
		return &Result{}, nil

	case *ast.Commit:
		if !s.inTx {
			return nil, fmt.Errorf("sql: no transaction in progress")
		}
		s.inTx = false
		s.undo = s.undo[:0]
		return &Result{}, nil

	case *ast.Rollback:
		if !s.inTx {
			return nil, fmt.Errorf("sql: no transaction in progress")
		}
		return s.execRollback()

	case *ast.Call:
		_, procs := s.db.registry()
		proc, ok := procs[strings.ToLower(st.Proc)]
		if !ok {
			return nil, fmt.Errorf("sql: no such procedure %s", st.Proc)
		}
		ctx := s.newContext(params, 0)
		args := make([]Value, len(st.Args))
		for i, a := range st.Args {
			v, err := ctx.EvalExpr(a, nil)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return proc(s, args)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

// execRollback reverses the open transaction's undo log. The latches
// of every touched table are taken (sorted) so the rollback is atomic
// against concurrent writers; latches already held by an enclosing
// LockTables are reused.
func (s *Session) execRollback() (*Result, error) {
	tables := map[*storage.Table]bool{}
	for _, u := range s.undo {
		tables[u.Table] = true
	}
	var order []*storage.Table
	for t := range tables {
		order = append(order, t)
	}
	sort.Slice(order, func(a, b int) bool {
		return strings.ToLower(order[a].Schema.Name) < strings.ToLower(order[b].Schema.Name)
	})
	var unlocks []func()
	for _, t := range order {
		unlocks = append(unlocks, s.lockWrite(t))
	}
	defer func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
	}()
	for i := len(s.undo) - 1; i >= 0; i-- {
		if err := s.undo[i].Apply(); err != nil {
			return nil, fmt.Errorf("sql: rollback failed: %v", err)
		}
	}
	s.inTx = false
	s.undo = s.undo[:0]
	return &Result{}, nil
}

// newContext builds an evaluation context reading at the given snapshot
// epoch (0 = latest committed state, the write statements' view).
func (s *Session) newContext(params []Value, epoch uint64) *exec.Context {
	funcs, _ := s.db.registry()
	opts := s.db.options()
	return &exec.Context{
		DB:                   s.db.store,
		Epoch:                epoch,
		Params:               params,
		Funcs:                funcs,
		CTEs:                 map[string]*exec.Relation{},
		SubqueryCache:        map[*ast.Select]*exec.Relation{},
		DisableSubqueryCache: opts.DisableSubqueryCache,
		MaxRecursion:         opts.MaxRecursion,
	}
}

// record appends an undo entry when a transaction is open.
func (s *Session) record(u storage.Undo) {
	if s.inTx {
		s.undo = append(s.undo, u)
	}
}

func (s *Session) execCreateTable(st *ast.CreateTable) (*Result, error) {
	schema := &storage.Schema{Name: st.Name}
	ctx := s.newContext(nil, 0)
	for _, c := range st.Cols {
		col := storage.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey}
		if c.Default != nil {
			v, err := ctx.EvalExpr(c.Default, nil)
			if err != nil {
				return nil, err
			}
			cv, err := types.Coerce(v, c.Type)
			if err != nil {
				return nil, err
			}
			col.HasDefault = true
			col.Default = cv
		}
		schema.Cols = append(schema.Cols, col)
	}
	if err := s.db.store.CreateTable(schema, st.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) execInsert(st *ast.Insert, params []Value) (*Result, error) {
	table, ok := s.db.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", st.Table)
	}
	schema := table.Schema
	ctx := s.newContext(params, 0)
	unlock := s.lockWrite(table)
	defer unlock()

	// Map the provided column list (or the full schema) to positions.
	positions := make([]int, 0, len(schema.Cols))
	if len(st.Cols) == 0 {
		for i := range schema.Cols {
			positions = append(positions, i)
		}
	} else {
		for _, name := range st.Cols {
			p := schema.ColIndex(name)
			if p < 0 {
				return nil, fmt.Errorf("sql: table %s has no column %s", st.Table, name)
			}
			positions = append(positions, p)
		}
	}

	buildRow := func(values []Value) (storage.Row, error) {
		if len(values) != len(positions) {
			return nil, fmt.Errorf("sql: INSERT expects %d values, got %d", len(positions), len(values))
		}
		row := make(storage.Row, len(schema.Cols))
		filled := make([]bool, len(schema.Cols))
		for i, p := range positions {
			row[p] = values[i]
			filled[p] = true
		}
		for i := range row {
			if !filled[i] {
				if schema.Cols[i].HasDefault {
					row[i] = schema.Cols[i].Default
				} else {
					row[i] = types.Null
				}
			}
		}
		return row, nil
	}

	// The statement's mutations stage as one commit batch: they publish
	// under a single epoch, and an error aborts the whole statement.
	c := storage.NewCommit(s.db.store.Versions())
	var undos []storage.Undo
	n := 0
	insert := func(row storage.Row) error {
		id, err := table.InsertC(c, row)
		if err != nil {
			return err
		}
		undos = append(undos, storage.Undo{Kind: storage.UndoInsert, Table: table, RowID: id})
		n++
		return nil
	}
	fail := func(err error) (*Result, error) {
		c.Abort()
		return nil, err
	}

	if st.Select != nil {
		rel, err := ctx.EvalSelect(st.Select, nil)
		if err != nil {
			return fail(err)
		}
		for _, row := range rel.Rows {
			r, err := buildRow(row)
			if err != nil {
				return fail(err)
			}
			if err := insert(r); err != nil {
				return fail(err)
			}
		}
	} else {
		for _, exprRow := range st.Rows {
			values := make([]Value, len(exprRow))
			for i, e := range exprRow {
				v, err := ctx.EvalExpr(e, nil)
				if err != nil {
					return fail(err)
				}
				values[i] = v
			}
			r, err := buildRow(values)
			if err != nil {
				return fail(err)
			}
			if err := insert(r); err != nil {
				return fail(err)
			}
		}
	}
	c.Commit()
	for _, u := range undos {
		s.record(u)
	}
	return &Result{RowsAffected: n}, nil
}

func (s *Session) execUpdate(st *ast.Update, params []Value) (*Result, error) {
	table, ok := s.db.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", st.Table)
	}
	schema := table.Schema
	ctx := s.newContext(params, 0)
	unlock := s.lockWrite(table)
	defer unlock()

	setPos := make([]int, len(st.Set))
	for i, a := range st.Set {
		p := schema.ColIndex(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", st.Table, a.Column)
		}
		setPos[i] = p
	}

	cols := make([]exec.ColMeta, len(schema.Cols))
	for i := range schema.Cols {
		cols[i] = exec.ColMeta{Table: strings.ToLower(st.Table), Name: schema.Cols[i].Name}
	}

	// Two-phase: gather matching row ids first, then mutate, so the scan
	// is not disturbed by the staged versions.
	var ids []int
	var evalErr error
	table.Scan(func(id int, row storage.Row) bool {
		env := exec.NewEnv(cols, row, nil)
		if st.Where != nil {
			t, err := ctx.EvalPredicate(st.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if t != types.True {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}

	c := storage.NewCommit(s.db.store.Versions())
	var undos []storage.Undo
	for _, id := range ids {
		old, _ := table.Get(id)
		before := append(storage.Row{}, old...)
		newRow := append(storage.Row{}, old...)
		env := exec.NewEnv(cols, old, nil)
		for i, a := range st.Set {
			v, err := ctx.EvalExpr(a.Value, env)
			if err != nil {
				c.Abort()
				return nil, err
			}
			newRow[setPos[i]] = v
		}
		if err := table.UpdateC(c, id, newRow); err != nil {
			c.Abort()
			return nil, err
		}
		undos = append(undos, storage.Undo{Kind: storage.UndoUpdate, Table: table, RowID: id, Before: before})
	}
	c.Commit()
	for _, u := range undos {
		s.record(u)
	}
	return &Result{RowsAffected: len(ids)}, nil
}

func (s *Session) execDelete(st *ast.Delete, params []Value) (*Result, error) {
	table, ok := s.db.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", st.Table)
	}
	schema := table.Schema
	ctx := s.newContext(params, 0)
	unlock := s.lockWrite(table)
	defer unlock()
	cols := make([]exec.ColMeta, len(schema.Cols))
	for i := range schema.Cols {
		cols[i] = exec.ColMeta{Table: strings.ToLower(st.Table), Name: schema.Cols[i].Name}
	}
	var ids []int
	var evalErr error
	table.Scan(func(id int, row storage.Row) bool {
		if st.Where != nil {
			env := exec.NewEnv(cols, row, nil)
			t, err := ctx.EvalPredicate(st.Where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if t != types.True {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	c := storage.NewCommit(s.db.store.Versions())
	var undos []storage.Undo
	for _, id := range ids {
		old, _ := table.Get(id)
		before := append(storage.Row{}, old...)
		if err := table.DeleteC(c, id); err != nil {
			c.Abort()
			return nil, err
		}
		undos = append(undos, storage.Undo{Kind: storage.UndoDelete, Table: table, RowID: id, Before: before})
	}
	c.Commit()
	for _, u := range undos {
		s.record(u)
	}
	return &Result{RowsAffected: len(ids)}, nil
}
