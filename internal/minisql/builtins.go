package minisql

import (
	"fmt"
	"math"
	"strings"

	"pdmtune/internal/minisql/types"
)

// BuiltinFuncs returns a fresh map of the built-in scalar functions, for
// callers that evaluate SQL expressions outside a database session (the
// PDM client's local, late rule evaluation).
func BuiltinFuncs() map[string]ScalarFunc {
	db := &DB{funcs: map[string]ScalarFunc{}}
	registerBuiltins(db)
	return db.funcs
}

// registerBuiltins installs the built-in scalar function library. PDM
// deployments add their own stored functions on top (e.g. the structure
// option overlap test of paper Section 3.1, example 3).
func registerBuiltins(db *DB) {
	db.funcs["abs"] = func(args []Value) (Value, error) {
		if err := arity("abs", args, 1); err != nil {
			return types.Null, err
		}
		v := args[0]
		if v.IsNull() {
			return types.Null, nil
		}
		switch v.Kind() {
		case types.KindInt:
			if v.Int() < 0 {
				return types.NewInt(-v.Int()), nil
			}
			return v, nil
		case types.KindFloat:
			return types.NewFloat(math.Abs(v.Float())), nil
		}
		return types.Null, fmt.Errorf("sql: abs requires a numeric argument")
	}
	db.funcs["lower"] = stringFunc("lower", strings.ToLower)
	db.funcs["upper"] = stringFunc("upper", strings.ToUpper)
	db.funcs["trim"] = stringFunc("trim", strings.TrimSpace)
	db.funcs["length"] = func(args []Value) (Value, error) {
		if err := arity("length", args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(len(args[0].String()))), nil
	}
	db.funcs["substr"] = func(args []Value) (Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return types.Null, fmt.Errorf("sql: substr takes 2 or 3 arguments, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		s := args[0].String()
		start := int(args[1].Int()) - 1 // SQL substr is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return types.NewText(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			if args[2].IsNull() {
				return types.Null, nil
			}
			n := int(args[2].Int())
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
		return types.NewText(s[start:end]), nil
	}
	db.funcs["coalesce"] = func(args []Value) (Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null, nil
	}
	db.funcs["nullif"] = func(args []Value) (Value, error) {
		if err := arity("nullif", args, 2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return args[0], nil
		}
		t, err := types.CompareOp("=", args[0], args[1])
		if err != nil {
			return args[0], nil
		}
		if t == types.True {
			return types.Null, nil
		}
		return args[0], nil
	}
	// ranges_overlap(a_from, a_to, b_from, b_to) implements the interval
	// overlap predicate the paper uses for effectivities ("objects are
	// included ... only if the associated effectivity overlaps the
	// effectivity selected by the user"). Inclusive bounds.
	db.funcs["ranges_overlap"] = func(args []Value) (Value, error) {
		if err := arity("ranges_overlap", args, 4); err != nil {
			return types.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return types.Null, nil
			}
		}
		le1, err := types.CompareOp("<=", args[0], args[3])
		if err != nil {
			return types.Null, err
		}
		le2, err := types.CompareOp("<=", args[2], args[1])
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(le1 == types.True && le2 == types.True), nil
	}
	// sets_overlap(a, b) treats its TEXT arguments as comma-separated
	// element sets and tests for a non-empty intersection — the stored
	// function behind "relation.strc_opt overlaps user_strc_opt" (paper
	// Section 3.1, example 3). An empty set on the relation side means
	// "no structure option required" and overlaps everything.
	db.funcs["sets_overlap"] = func(args []Value) (Value, error) {
		if err := arity("sets_overlap", args, 2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		a := splitSet(args[0].String())
		b := splitSet(args[1].String())
		if len(a) == 0 {
			return types.NewBool(true), nil
		}
		for e := range a {
			if b[e] {
				return types.NewBool(true), nil
			}
		}
		return types.NewBool(false), nil
	}
}

func stringFunc(name string, fn func(string) string) ScalarFunc {
	return func(args []Value) (Value, error) {
		if err := arity(name, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewText(fn(args[0].String())), nil
	}
}

func arity(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("sql: %s takes %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

func splitSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		if p != "" {
			out[p] = true
		}
	}
	return out
}
