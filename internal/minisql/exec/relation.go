// Package exec evaluates parsed SQL statements against storage. It
// implements scans with index-backed predicate pushdown, hash and
// nested-loop joins, set operations, grouping and aggregation, ordering,
// correlated subqueries with automatic caching of uncorrelated ones, and
// SQL:1999 recursive common table expressions (semi-naive evaluation) —
// everything the paper's PDM queries require.
package exec

import (
	"fmt"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

// ColMeta names one column of an intermediate relation. Table is the
// binding alias (lower-cased); Name preserves the source spelling.
type ColMeta struct {
	Table string
	Name  string
}

// Relation is a materialized intermediate result.
type Relation struct {
	Cols []ColMeta
	Rows []storage.Row
}

// ColNames returns the output column names.
func (r *Relation) ColNames() []string {
	out := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		out[i] = c.Name
	}
	return out
}

// colIndex resolves a possibly table-qualified column within the relation.
// It returns the position, or an error when absent or ambiguous.
func (r *Relation) colIndex(table, name string) (int, error) {
	found := -1
	for i, c := range r.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column reference %s", refString(table, name))
		}
		found = i
	}
	if found < 0 {
		return 0, errNoColumn{table: table, name: name}
	}
	return found, nil
}

type errNoColumn struct{ table, name string }

func (e errNoColumn) Error() string {
	return "sql: no such column " + refString(e.table, e.name)
}

func refString(table, name string) string {
	if table != "" {
		return table + "." + name
	}
	return name
}

// Env is a name-resolution scope: one relation row plus a parent scope
// for correlated subqueries. touched, when non-nil, is set whenever a
// lookup passes through this scope upward — the mechanism behind the
// uncorrelated-subquery result cache ("an intelligent query optimizer
// will recognize that the inner clause needs to be evaluated only once").
type Env struct {
	cols    []ColMeta
	row     storage.Row
	parent  *Env
	touched *bool // barrier marker; scope itself holds no columns then
}

// NewEnv builds a scope over the given columns and row.
func NewEnv(cols []ColMeta, row storage.Row, parent *Env) *Env {
	return &Env{cols: cols, row: row, parent: parent}
}

// lookup resolves a column reference through the scope chain.
func (e *Env) lookup(table, name string) (types.Value, error) {
	for env := e; env != nil; env = env.parent {
		if env.touched != nil {
			*env.touched = true
			continue
		}
		found := -1
		for i, c := range env.cols {
			if !strings.EqualFold(c.Name, name) {
				continue
			}
			if table != "" && !strings.EqualFold(c.Table, table) {
				continue
			}
			if found >= 0 {
				return types.Null, fmt.Errorf("sql: ambiguous column reference %s", refString(table, name))
			}
			found = i
		}
		if found >= 0 {
			return env.row[found], nil
		}
	}
	return types.Null, errNoColumn{table: table, name: name}
}

// Context carries everything an evaluation needs: the database, statement
// parameters, registered scalar functions, CTE bindings and the
// uncorrelated-subquery cache.
type Context struct {
	DB     *storage.DB
	Params []types.Value
	Funcs  map[string]ScalarFunc

	// Epoch is the snapshot this evaluation reads at: base-table access
	// resolves rows as of this VersionLog epoch, so a whole statement
	// sees one consistent state no matter what commits concurrently.
	// 0 means "latest committed state" — the view write statements
	// (which run under their table's write latch) and ad-hoc contexts
	// use. The engine sets a captured epoch for SELECTs.
	Epoch uint64

	// CTEs maps lower-cased CTE names to their (current) materialization.
	CTEs map[string]*Relation

	// SubqueryCache memoizes results of subqueries that did not read any
	// outer column. DisableSubqueryCache turns the optimization off (an
	// ablation knob; see DESIGN.md).
	SubqueryCache        map[*ast.Select]*Relation
	DisableSubqueryCache bool

	// inSetCache memoizes hash sets for cached IN-subqueries so that
	// `x IN (SELECT ...)` probes are O(1) per outer row instead of a scan.
	inSetCache map[*ast.Select]*inSet

	// MaxRecursion bounds the number of semi-naive iterations of a
	// recursive CTE; 0 means the default (100000).
	MaxRecursion int

	// Stats accumulates counters for EXPLAIN/diagnostics.
	Stats ExecStats

	// aggValues holds precomputed aggregate results for the group whose
	// projection/HAVING is currently being evaluated; keyed by AST node.
	aggValues map[*ast.Aggregate]types.Value
}

// ExecStats counts physical operations during a statement.
type ExecStats struct {
	RowsScanned    int
	IndexLookups   int
	HashJoins      int
	NestedLoops    int
	SubqueryEvals  int
	SubqueryCached int
	RecursionSteps int
}

// ScalarFunc is a registered scalar function (a "stored function" in the
// paper's SQL/PSM sense, implemented in Go at the server).
type ScalarFunc func(args []types.Value) (types.Value, error)

// snap maps the context's Epoch to a storage snapshot epoch (0 reads
// the latest committed state).
func (ctx *Context) snap() uint64 {
	if ctx.Epoch == 0 {
		return storage.Latest
	}
	return ctx.Epoch
}

// clone returns a context sharing DB/Funcs/Params but with an isolated
// CTE binding map (used when a CTE must be rebound during recursion).
func (ctx *Context) cloneCTEs() map[string]*Relation {
	m := make(map[string]*Relation, len(ctx.CTEs)+1)
	for k, v := range ctx.CTEs {
		m[k] = v
	}
	return m
}
