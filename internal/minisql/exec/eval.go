package exec

import (
	"fmt"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/types"
)

// EvalExpr evaluates a scalar expression in the given scope.
func (ctx *Context) EvalExpr(e ast.Expr, env *Env) (types.Value, error) {
	switch e := e.(type) {
	case *ast.Literal:
		return e.Value, nil

	case *ast.Param:
		if e.Index < 0 || e.Index >= len(ctx.Params) {
			return types.Null, fmt.Errorf("sql: statement has parameter %d but only %d values were bound", e.Index+1, len(ctx.Params))
		}
		return ctx.Params[e.Index], nil

	case *ast.ColumnRef:
		if env == nil {
			return types.Null, errNoColumn{table: e.Table, name: e.Column}
		}
		return env.lookup(e.Table, e.Column)

	case *ast.Binary:
		return ctx.evalBinary(e, env)

	case *ast.Unary:
		v, err := ctx.EvalExpr(e.Expr, env)
		if err != nil {
			return types.Null, err
		}
		if e.Op == "NOT" {
			return tristateValue(types.Truth(v).Not()), nil
		}
		// unary minus
		if v.IsNull() {
			return types.Null, nil
		}
		switch v.Kind() {
		case types.KindInt:
			return types.NewInt(-v.Int()), nil
		case types.KindFloat:
			return types.NewFloat(-v.Float()), nil
		}
		return types.Null, fmt.Errorf("sql: unary minus requires a numeric operand, got %s", v.Kind())

	case *ast.IsNull:
		v, err := ctx.EvalExpr(e.Expr, env)
		if err != nil {
			return types.Null, err
		}
		res := v.IsNull()
		if e.Not {
			res = !res
		}
		return types.NewBool(res), nil

	case *ast.Between:
		v, err := ctx.EvalExpr(e.Expr, env)
		if err != nil {
			return types.Null, err
		}
		lo, err := ctx.EvalExpr(e.Lo, env)
		if err != nil {
			return types.Null, err
		}
		hi, err := ctx.EvalExpr(e.Hi, env)
		if err != nil {
			return types.Null, err
		}
		ge, err := types.CompareOp(">=", v, lo)
		if err != nil {
			return types.Null, err
		}
		le, err := types.CompareOp("<=", v, hi)
		if err != nil {
			return types.Null, err
		}
		t := ge.And(le)
		if e.Not {
			t = t.Not()
		}
		return tristateValue(t), nil

	case *ast.Like:
		v, err := ctx.EvalExpr(e.Expr, env)
		if err != nil {
			return types.Null, err
		}
		pat, err := ctx.EvalExpr(e.Pattern, env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || pat.IsNull() {
			return types.Null, nil
		}
		m := likeMatch(pat.String(), v.String())
		if e.Not {
			m = !m
		}
		return types.NewBool(m), nil

	case *ast.InList:
		return ctx.evalInList(e, env)

	case *ast.InSubquery:
		return ctx.evalInSubquery(e, env)

	case *ast.Exists:
		rel, err := ctx.evalSubquery(e.Select, env)
		if err != nil {
			return types.Null, err
		}
		res := len(rel.Rows) > 0
		if e.Not {
			res = !res
		}
		return types.NewBool(res), nil

	case *ast.ScalarSubquery:
		rel, err := ctx.evalSubquery(e.Select, env)
		if err != nil {
			return types.Null, err
		}
		if len(rel.Cols) != 1 {
			return types.Null, fmt.Errorf("sql: scalar subquery must return one column, got %d", len(rel.Cols))
		}
		switch len(rel.Rows) {
		case 0:
			return types.Null, nil
		case 1:
			return rel.Rows[0][0], nil
		}
		return types.Null, fmt.Errorf("sql: scalar subquery returned %d rows", len(rel.Rows))

	case *ast.Cast:
		v, err := ctx.EvalExpr(e.Expr, env)
		if err != nil {
			return types.Null, err
		}
		return types.Coerce(v, e.Type)

	case *ast.FuncCall:
		fn, ok := ctx.Funcs[strings.ToLower(e.Name)]
		if !ok {
			return types.Null, fmt.Errorf("sql: unknown function %s", e.Name)
		}
		args := make([]types.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := ctx.EvalExpr(a, env)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		return fn(args)

	case *ast.Case:
		return ctx.evalCase(e, env)

	case *ast.Aggregate:
		if ctx.aggValues != nil {
			if v, ok := ctx.aggValues[e]; ok {
				return v, nil
			}
		}
		return types.Null, fmt.Errorf("sql: aggregate %s used outside of an aggregating query", e.Func)
	}
	return types.Null, fmt.Errorf("sql: cannot evaluate %T", e)
}

// EvalPredicate evaluates a WHERE/ON/HAVING condition to a Tristate.
func (ctx *Context) EvalPredicate(e ast.Expr, env *Env) (types.Tristate, error) {
	v, err := ctx.EvalExpr(e, env)
	if err != nil {
		return types.Unknown, err
	}
	return types.Truth(v), nil
}

func (ctx *Context) evalBinary(e *ast.Binary, env *Env) (types.Value, error) {
	switch e.Op {
	case "AND":
		l, err := ctx.EvalPredicate(e.Left, env)
		if err != nil {
			return types.Null, err
		}
		if l == types.False {
			return types.NewBool(false), nil
		}
		r, err := ctx.EvalPredicate(e.Right, env)
		if err != nil {
			return types.Null, err
		}
		return tristateValue(l.And(r)), nil
	case "OR":
		l, err := ctx.EvalPredicate(e.Left, env)
		if err != nil {
			return types.Null, err
		}
		if l == types.True {
			return types.NewBool(true), nil
		}
		r, err := ctx.EvalPredicate(e.Right, env)
		if err != nil {
			return types.Null, err
		}
		return tristateValue(l.Or(r)), nil
	}
	l, err := ctx.EvalExpr(e.Left, env)
	if err != nil {
		return types.Null, err
	}
	r, err := ctx.EvalExpr(e.Right, env)
	if err != nil {
		return types.Null, err
	}
	switch e.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		t, err := types.CompareOp(e.Op, l, r)
		if err != nil {
			return types.Null, err
		}
		return tristateValue(t), nil
	default:
		return types.Arith(e.Op, l, r)
	}
}

func (ctx *Context) evalInList(e *ast.InList, env *Env) (types.Value, error) {
	v, err := ctx.EvalExpr(e.Expr, env)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	for _, item := range e.Items {
		iv, err := ctx.EvalExpr(item, env)
		if err != nil {
			return types.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		t, err := types.CompareOp("=", v, iv)
		if err != nil {
			continue // incomparable kinds never match
		}
		if t == types.True {
			return types.NewBool(!e.Not), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(e.Not), nil
}

// inSet is a materialized IN-subquery result for O(1) membership probes.
type inSet struct {
	keys    map[string]bool
	sawNull bool
}

func (ctx *Context) evalInSubquery(e *ast.InSubquery, env *Env) (types.Value, error) {
	v, err := ctx.EvalExpr(e.Expr, env)
	if err != nil {
		return types.Null, err
	}
	set, cached := ctx.inSetCache[e.Select]
	if !cached {
		rel, err := ctx.evalSubquery(e.Select, env)
		if err != nil {
			return types.Null, err
		}
		if len(rel.Cols) != 1 {
			return types.Null, fmt.Errorf("sql: IN subquery must return one column, got %d", len(rel.Cols))
		}
		set = &inSet{keys: make(map[string]bool, len(rel.Rows))}
		for _, row := range rel.Rows {
			if row[0].IsNull() {
				set.sawNull = true
				continue
			}
			set.keys[row[0].Key()] = true
		}
		// The set may be reused only when the underlying relation was
		// cacheable (uncorrelated); evalSubquery tracked that for us.
		if _, ok := ctx.SubqueryCache[e.Select]; ok && !ctx.DisableSubqueryCache {
			if ctx.inSetCache == nil {
				ctx.inSetCache = map[*ast.Select]*inSet{}
			}
			ctx.inSetCache[e.Select] = set
		}
	}
	if v.IsNull() {
		return types.Null, nil
	}
	if set.keys[v.Key()] {
		return types.NewBool(!e.Not), nil
	}
	if set.sawNull {
		return types.Null, nil
	}
	return types.NewBool(e.Not), nil
}

func (ctx *Context) evalCase(e *ast.Case, env *Env) (types.Value, error) {
	if e.Operand != nil {
		op, err := ctx.EvalExpr(e.Operand, env)
		if err != nil {
			return types.Null, err
		}
		for _, w := range e.Whens {
			wv, err := ctx.EvalExpr(w.Cond, env)
			if err != nil {
				return types.Null, err
			}
			if op.IsNull() || wv.IsNull() {
				continue
			}
			t, err := types.CompareOp("=", op, wv)
			if err != nil {
				continue
			}
			if t == types.True {
				return ctx.EvalExpr(w.Result, env)
			}
		}
	} else {
		for _, w := range e.Whens {
			t, err := ctx.EvalPredicate(w.Cond, env)
			if err != nil {
				return types.Null, err
			}
			if t == types.True {
				return ctx.EvalExpr(w.Result, env)
			}
		}
	}
	if e.Else != nil {
		return ctx.EvalExpr(e.Else, env)
	}
	return types.Null, nil
}

// evalSubquery evaluates a nested select with outer-scope correlation,
// consulting and maintaining the uncorrelated-subquery cache.
func (ctx *Context) evalSubquery(sel *ast.Select, outer *Env) (*Relation, error) {
	if !ctx.DisableSubqueryCache {
		if rel, ok := ctx.SubqueryCache[sel]; ok {
			ctx.Stats.SubqueryCached++
			return rel, nil
		}
	}
	ctx.Stats.SubqueryEvals++
	touched := false
	barrier := &Env{parent: outer, touched: &touched}
	rel, err := ctx.EvalSelect(sel, barrier)
	if err != nil {
		return nil, err
	}
	if !touched && !ctx.DisableSubqueryCache {
		if ctx.SubqueryCache == nil {
			ctx.SubqueryCache = map[*ast.Select]*Relation{}
		}
		ctx.SubqueryCache[sel] = rel
	}
	return rel, nil
}

func tristateValue(t types.Tristate) types.Value {
	switch t {
	case types.True:
		return types.NewBool(true)
	case types.False:
		return types.NewBool(false)
	}
	return types.Null
}

// likeMatch implements SQL LIKE with % (any run) and _ (single char),
// case-sensitive, over bytes.
func likeMatch(pattern, s string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	pi, si := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			ss = si
			pi++
		case star >= 0:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
