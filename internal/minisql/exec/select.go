package exec

import (
	"fmt"
	"sort"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

const defaultMaxRecursion = 100000

// EvalSelect evaluates a full SELECT (with CTEs, set operations, ordering
// and limits) in the given outer scope (nil at top level).
func (ctx *Context) EvalSelect(sel *ast.Select, outer *Env) (*Relation, error) {
	restore, err := ctx.bindCTEs(sel.With, outer)
	if err != nil {
		return nil, err
	}
	defer restore()

	rel, err := ctx.evalBody(sel.Body, outer)
	if err != nil {
		return nil, err
	}
	if len(sel.OrderBy) > 0 {
		if err := ctx.orderRelation(rel, sel.OrderBy, outer); err != nil {
			return nil, err
		}
	}
	if sel.Offset != nil || sel.Limit != nil {
		if err := ctx.applyLimit(rel, sel.Limit, sel.Offset, outer); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// bindCTEs evaluates WITH clauses and binds them in the context. The
// returned function restores the previous bindings.
func (ctx *Context) bindCTEs(w *ast.With, outer *Env) (func(), error) {
	if w == nil {
		return func() {}, nil
	}
	if ctx.CTEs == nil {
		ctx.CTEs = map[string]*Relation{}
	}
	saved := map[string]*Relation{}
	savedExists := map[string]bool{}
	var bound []string
	restore := func() {
		for _, name := range bound {
			if savedExists[name] {
				ctx.CTEs[name] = saved[name]
			} else {
				delete(ctx.CTEs, name)
			}
		}
		ctx.SubqueryCache = nil
		ctx.inSetCache = nil
	}
	for i := range w.CTEs {
		cte := &w.CTEs[i]
		key := strings.ToLower(cte.Name)
		prev, existed := ctx.CTEs[key]
		saved[key] = prev
		savedExists[key] = existed
		bound = append(bound, key)

		var rel *Relation
		var err error
		if w.Recursive && selectReferencesTable(cte.Select, cte.Name) {
			rel, err = ctx.evalRecursiveCTE(cte, outer)
		} else {
			rel, err = ctx.EvalSelect(cte.Select, outer)
			if err == nil {
				rel, err = renameCTE(rel, cte)
			}
		}
		if err != nil {
			restore()
			return nil, err
		}
		ctx.setCTE(key, rel)
	}
	return restore, nil
}

// setCTE binds (or rebinds) a CTE materialization. Rebinding invalidates
// the uncorrelated-subquery cache: a cached subquery may have read the
// previous binding.
func (ctx *Context) setCTE(key string, rel *Relation) {
	ctx.CTEs[key] = rel
	ctx.SubqueryCache = nil
	ctx.inSetCache = nil
}

func renameCTE(rel *Relation, cte *ast.CTE) (*Relation, error) {
	cols := make([]ColMeta, len(rel.Cols))
	if len(cte.Cols) > 0 {
		if len(cte.Cols) != len(rel.Cols) {
			return nil, fmt.Errorf("sql: CTE %s declares %d columns but its query returns %d",
				cte.Name, len(cte.Cols), len(rel.Cols))
		}
		for i, c := range cte.Cols {
			cols[i] = ColMeta{Table: strings.ToLower(cte.Name), Name: c}
		}
	} else {
		for i, c := range rel.Cols {
			cols[i] = ColMeta{Table: strings.ToLower(cte.Name), Name: c.Name}
		}
	}
	return &Relation{Cols: cols, Rows: rel.Rows}, nil
}

// evalRecursiveCTE runs semi-naive fixpoint evaluation: seed branches
// once, then repeatedly evaluate recursive branches with the CTE bound to
// the previous iteration's delta, until no new rows appear (SQL:1999).
func (ctx *Context) evalRecursiveCTE(cte *ast.CTE, outer *Env) (*Relation, error) {
	inner := cte.Select
	if inner.With != nil {
		return nil, fmt.Errorf("sql: nested WITH inside recursive CTE %s is not supported", cte.Name)
	}
	if len(inner.OrderBy) > 0 || inner.Limit != nil {
		return nil, fmt.Errorf("sql: ORDER BY/LIMIT inside recursive CTE %s is not supported", cte.Name)
	}
	branches, ops := flattenSetOps(inner.Body)
	dedup := false
	for _, op := range ops {
		if op == "UNION" {
			dedup = true
		}
	}
	if len(ops) == 0 {
		dedup = true // single branch that references itself: treat as UNION
	}

	var seeds, recs []*ast.SelectCore
	for _, b := range branches {
		if coreReferencesTable(b, cte.Name) {
			recs = append(recs, b)
		} else {
			seeds = append(seeds, b)
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("sql: recursive CTE %s has no recursive branch", cte.Name)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sql: recursive CTE %s has no seed branch", cte.Name)
	}

	key := strings.ToLower(cte.Name)
	makeRel := func(rows []storage.Row, template *Relation) (*Relation, error) {
		return renameCTE(&Relation{Cols: template.Cols, Rows: rows}, cte)
	}

	seen := map[string]bool{}
	var all []storage.Row
	var template *Relation
	addRows := func(rel *Relation, into *[]storage.Row) error {
		if template == nil {
			template = rel
		} else if len(rel.Cols) != len(template.Cols) {
			return fmt.Errorf("sql: recursive CTE %s branches disagree on column count (%d vs %d)",
				cte.Name, len(rel.Cols), len(template.Cols))
		}
		for _, row := range rel.Rows {
			if dedup {
				k := rowKey(row)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			*into = append(*into, row)
		}
		return nil
	}

	var delta []storage.Row
	for _, s := range seeds {
		rel, err := ctx.evalCore(s, outer)
		if err != nil {
			return nil, err
		}
		if err := addRows(rel, &delta); err != nil {
			return nil, err
		}
	}
	all = append(all, delta...)

	maxIter := ctx.MaxRecursion
	if maxIter <= 0 {
		maxIter = defaultMaxRecursion
	}
	for iter := 0; len(delta) > 0; iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("sql: recursive CTE %s exceeded %d iterations", cte.Name, maxIter)
		}
		ctx.Stats.RecursionSteps++
		deltaRel, err := makeRel(delta, template)
		if err != nil {
			return nil, err
		}
		ctx.setCTE(key, deltaRel)
		var next []storage.Row
		for _, r := range recs {
			rel, err := ctx.evalCore(r, outer)
			if err != nil {
				return nil, err
			}
			if err := addRows(rel, &next); err != nil {
				return nil, err
			}
		}
		all = append(all, next...)
		delta = next
	}
	if template == nil {
		return nil, fmt.Errorf("sql: recursive CTE %s produced no template relation", cte.Name)
	}
	return makeRel(all, template)
}

// evalBody evaluates a set-operation tree.
func (ctx *Context) evalBody(body ast.SelectBody, outer *Env) (*Relation, error) {
	switch b := body.(type) {
	case *ast.SelectCore:
		return ctx.evalCore(b, outer)
	case *ast.SetOp:
		left, err := ctx.evalBody(b.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := ctx.evalBody(b.Right, outer)
		if err != nil {
			return nil, err
		}
		if len(left.Cols) != len(right.Cols) {
			return nil, fmt.Errorf("sql: UNION operands have %d and %d columns", len(left.Cols), len(right.Cols))
		}
		out := &Relation{Cols: left.Cols}
		if b.Op == "UNION ALL" {
			out.Rows = append(append([]storage.Row{}, left.Rows...), right.Rows...)
			return out, nil
		}
		seen := map[string]bool{}
		for _, rows := range [][]storage.Row{left.Rows, right.Rows} {
			for _, row := range rows {
				k := rowKey(row)
				if seen[k] {
					continue
				}
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("sql: unknown select body %T", body)
}

// conjunct is one ANDed WHERE term; base-table scans may consume it
// during predicate pushdown.
type conjunct struct {
	expr ast.Expr
	used bool
}

func splitAnd(e ast.Expr, into []*conjunct) []*conjunct {
	if e == nil {
		return into
	}
	if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
		into = splitAnd(b.Left, into)
		return splitAnd(b.Right, into)
	}
	return append(into, &conjunct{expr: e})
}

// evalCore evaluates one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING.
func (ctx *Context) evalCore(core *ast.SelectCore, outer *Env) (*Relation, error) {
	var src *Relation
	conjs := splitAnd(core.Where, nil)
	if core.From != nil {
		single := ""
		if bt, ok := core.From.(*ast.BaseTable); ok {
			single = bt.Name
			if bt.Alias != "" {
				single = bt.Alias
			}
		}
		rel, err := ctx.evalFrom(core.From, outer, conjs, single, true)
		if err != nil {
			return nil, err
		}
		src = rel
	} else {
		src = &Relation{Rows: []storage.Row{{}}} // constant SELECT: one empty row
	}

	// Static reference check: even when the relation is empty, direct
	// column references must resolve (row-driven evaluation alone would
	// let typos pass silently on empty tables).
	if err := validateColumnRefs(core, src.Cols, outer); err != nil {
		return nil, err
	}

	// Apply remaining WHERE conjuncts.
	var filtered []storage.Row
	remaining := unusedConjuncts(conjs)
	if len(remaining) == 0 {
		filtered = src.Rows
	} else {
		env := &Env{cols: src.Cols, parent: outer}
		for _, row := range src.Rows {
			env.row = row
			ok := true
			for _, c := range remaining {
				t, err := ctx.EvalPredicate(c.expr, env)
				if err != nil {
					return nil, err
				}
				if t != types.True {
					ok = false
					break
				}
			}
			if ok {
				filtered = append(filtered, row)
			}
		}
	}
	work := &Relation{Cols: src.Cols, Rows: filtered}

	// Aggregation?
	aggs := collectAggregates(core)
	if len(aggs) > 0 || len(core.GroupBy) > 0 {
		rel, err := ctx.evalGrouped(core, work, aggs, outer)
		if err != nil {
			return nil, err
		}
		work = rel
	} else {
		rel, err := ctx.project(core.Items, work, outer)
		if err != nil {
			return nil, err
		}
		work = rel
	}

	if core.Distinct {
		seen := map[string]bool{}
		var rows []storage.Row
		for _, row := range work.Rows {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			rows = append(rows, row)
		}
		work.Rows = rows
	}
	return work, nil
}

func unusedConjuncts(conjs []*conjunct) []*conjunct {
	var out []*conjunct
	for _, c := range conjs {
		if !c.used {
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// FROM evaluation

// evalFrom materializes a table reference. conjs are WHERE conjuncts
// available for pushdown; singleTable names the only FROM table (for
// unqualified pushdown) or is empty; pushable disables pushdown under the
// right side of LEFT JOINs where it would change semantics.
func (ctx *Context) evalFrom(ref ast.TableRef, outer *Env, conjs []*conjunct, singleTable string, pushable bool) (*Relation, error) {
	switch r := ref.(type) {
	case *ast.BaseTable:
		return ctx.evalBaseTable(r, outer, conjs, singleTable, pushable)
	case *ast.SubqueryTable:
		rel, err := ctx.evalSubquery(r.Select, outer)
		if err != nil {
			return nil, err
		}
		cols := make([]ColMeta, len(rel.Cols))
		for i, c := range rel.Cols {
			cols[i] = ColMeta{Table: strings.ToLower(r.Alias), Name: c.Name}
		}
		return &Relation{Cols: cols, Rows: rel.Rows}, nil
	case *ast.Join:
		return ctx.evalJoin(r, outer, conjs, pushable)
	case *ast.CrossList:
		return ctx.evalCrossList(r, outer, conjs, pushable)
	}
	return nil, fmt.Errorf("sql: unknown table reference %T", ref)
}

func (ctx *Context) evalBaseTable(bt *ast.BaseTable, outer *Env, conjs []*conjunct, singleTable string, pushable bool) (*Relation, error) {
	alias := bt.Name
	if bt.Alias != "" {
		alias = bt.Alias
	}
	lower := strings.ToLower(alias)

	// CTE binding takes precedence over stored tables.
	if rel, ok := ctx.CTEs[strings.ToLower(bt.Name)]; ok {
		cols := make([]ColMeta, len(rel.Cols))
		for i, c := range rel.Cols {
			cols[i] = ColMeta{Table: lower, Name: c.Name}
		}
		return &Relation{Cols: cols, Rows: rel.Rows}, nil
	}

	table, ok := ctx.DB.Table(bt.Name)
	if !ok {
		return nil, fmt.Errorf("sql: no such table %s", bt.Name)
	}
	schema := table.Schema
	cols := make([]ColMeta, len(schema.Cols))
	for i := range schema.Cols {
		cols[i] = ColMeta{Table: lower, Name: schema.Cols[i].Name}
	}
	rel := &Relation{Cols: cols}

	// Predicate pushdown: collect `col = const` conjuncts for this table.
	type pushed struct {
		colPos int
		val    types.Value
	}
	var eqs []pushed
	if pushable {
		for _, c := range conjs {
			if c.used {
				continue
			}
			col, valExpr, ok := eqColConst(c.expr)
			if !ok {
				continue
			}
			if col.Table != "" {
				if !strings.EqualFold(col.Table, alias) {
					continue
				}
			} else if !strings.EqualFold(singleTable, alias) {
				continue // unqualified column in a multi-table FROM: not safe here
			}
			pos := schema.ColIndex(col.Column)
			if pos < 0 {
				continue
			}
			v, err := ctx.EvalExpr(valExpr, outer)
			if err != nil {
				return nil, err
			}
			eqs = append(eqs, pushed{colPos: pos, val: v})
			c.used = true
		}
	}

	match := func(row storage.Row) bool {
		for _, p := range eqs {
			t, err := types.CompareOp("=", row[p.colPos], p.val)
			if err != nil || t != types.True {
				return false
			}
		}
		return true
	}

	// Prefer an index lookup for the first indexed equality. All reads
	// resolve at the statement's snapshot epoch.
	snap := ctx.snap()
	for _, p := range eqs {
		idx := table.IndexOn(schema.Cols[p.colPos].Name)
		if idx == nil {
			continue
		}
		ctx.Stats.IndexLookups++
		for _, id := range idx.LookupAt(snap, p.val) {
			row, ok := table.GetAt(snap, id)
			if !ok {
				continue
			}
			if match(row) {
				rel.Rows = append(rel.Rows, row)
			}
		}
		return rel, nil
	}

	table.ScanAt(snap, func(_ int, row storage.Row) bool {
		ctx.Stats.RowsScanned++
		if match(row) {
			rel.Rows = append(rel.Rows, row)
		}
		return true
	})
	return rel, nil
}

// eqColConst matches `col = constexpr` or `constexpr = col`.
func eqColConst(e ast.Expr) (*ast.ColumnRef, ast.Expr, bool) {
	b, ok := e.(*ast.Binary)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	if col, ok := b.Left.(*ast.ColumnRef); ok && isConstExpr(b.Right) {
		return col, b.Right, true
	}
	if col, ok := b.Right.(*ast.ColumnRef); ok && isConstExpr(b.Left) {
		return col, b.Left, true
	}
	return nil, nil, false
}

// isConstExpr reports whether an expression references no columns or
// subqueries and can thus be evaluated once before a scan.
func isConstExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Literal, *ast.Param:
		return true
	case *ast.Unary:
		return isConstExpr(e.Expr)
	case *ast.Binary:
		return isConstExpr(e.Left) && isConstExpr(e.Right)
	case *ast.Cast:
		return isConstExpr(e.Expr)
	case *ast.FuncCall:
		for _, a := range e.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}

func (ctx *Context) evalJoin(j *ast.Join, outer *Env, conjs []*conjunct, pushable bool) (*Relation, error) {
	left, err := ctx.evalFrom(j.Left, outer, conjs, "", pushable)
	if err != nil {
		return nil, err
	}
	if rel, ok, err := ctx.tryIndexJoin(left, j, outer); err != nil {
		return nil, err
	} else if ok {
		return rel, nil
	}
	rightPushable := pushable && j.Type != "LEFT"
	right, err := ctx.evalFrom(j.Right, outer, conjs, "", rightPushable)
	if err != nil {
		return nil, err
	}
	return ctx.joinRelations(left, right, j.On, j.Type, outer)
}

// tryIndexJoin runs an indexed nested-loop join when the right side is a
// stored base table with a hash index on its equi-join column — the plan
// that makes navigational expands (WHERE link.left = ? JOIN assy ON
// link.right = assy.obid) and the recursive join (rtbl JOIN link ON
// rtbl.obid = link.left) cheap instead of hashing the whole table.
func (ctx *Context) tryIndexJoin(left *Relation, j *ast.Join, outer *Env) (*Relation, bool, error) {
	bt, ok := j.Right.(*ast.BaseTable)
	if !ok {
		return nil, false, nil
	}
	if _, isCTE := ctx.CTEs[strings.ToLower(bt.Name)]; isCTE {
		return nil, false, nil
	}
	table, ok := ctx.DB.Table(bt.Name)
	if !ok {
		return nil, false, nil
	}
	alias := bt.Name
	if bt.Alias != "" {
		alias = bt.Alias
	}
	schema := table.Schema

	onConjs := splitAnd(j.On, nil)
	var hashConj *conjunct
	leftPos := -1
	var idx *storage.Index
	for _, c := range onConjs {
		b, ok := c.expr.(*ast.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.Left.(*ast.ColumnRef)
		rc, rok := b.Right.(*ast.ColumnRef)
		if !lok || !rok {
			continue
		}
		try := func(lref, rref *ast.ColumnRef) bool {
			lp, err := left.colIndex(lref.Table, lref.Column)
			if err != nil {
				return false
			}
			if rref.Table != "" && !strings.EqualFold(rref.Table, alias) {
				return false
			}
			if schema.ColIndex(rref.Column) < 0 {
				return false
			}
			ix := table.IndexOn(rref.Column)
			if ix == nil {
				return false
			}
			leftPos, idx = lp, ix
			return true
		}
		if try(lc, rc) || try(rc, lc) {
			hashConj = c
			break
		}
	}
	if hashConj == nil {
		return nil, false, nil
	}

	lowerAlias := strings.ToLower(alias)
	rightCols := make([]ColMeta, len(schema.Cols))
	for i := range schema.Cols {
		rightCols[i] = ColMeta{Table: lowerAlias, Name: schema.Cols[i].Name}
	}
	out := &Relation{Cols: append(append([]ColMeta{}, left.Cols...), rightCols...)}
	env := &Env{cols: out.Cols, parent: outer}
	nullRight := make(storage.Row, len(rightCols))
	for i := range nullRight {
		nullRight[i] = types.Null
	}

	snap := ctx.snap()
	for _, lrow := range left.Rows {
		v := lrow[leftPos]
		matched := false
		if !v.IsNull() {
			ctx.Stats.IndexLookups++
			for _, id := range idx.LookupAt(snap, v) {
				rrow, ok := table.GetAt(snap, id)
				if !ok {
					continue
				}
				combined := append(append(make(storage.Row, 0, len(lrow)+len(rrow)), lrow...), rrow...)
				env.row = combined
				pass := true
				for _, c := range onConjs {
					if c == hashConj {
						continue
					}
					t, err := ctx.EvalPredicate(c.expr, env)
					if err != nil {
						return nil, false, err
					}
					if t != types.True {
						pass = false
						break
					}
				}
				if pass {
					out.Rows = append(out.Rows, combined)
					matched = true
				}
			}
		}
		if !matched && j.Type == "LEFT" {
			combined := append(append(make(storage.Row, 0, len(lrow)+len(nullRight)), lrow...), nullRight...)
			out.Rows = append(out.Rows, combined)
		}
	}
	return out, true, nil
}

// joinRelations joins two materialized relations with the given ON
// condition, using a hash join when an equi-pair is found.
func (ctx *Context) joinRelations(left, right *Relation, on ast.Expr, joinType string, outer *Env) (*Relation, error) {
	out := &Relation{Cols: append(append([]ColMeta{}, left.Cols...), right.Cols...)}
	onConjs := splitAnd(on, nil)

	// Look for left.col = right.col among the ON conjuncts.
	var leftPos, rightPos = -1, -1
	var hashConj *conjunct
	for _, c := range onConjs {
		b, ok := c.expr.(*ast.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.Left.(*ast.ColumnRef)
		rc, rok := b.Right.(*ast.ColumnRef)
		if !lok || !rok {
			continue
		}
		if lp, err := left.colIndex(lc.Table, lc.Column); err == nil {
			if rp, err2 := right.colIndex(rc.Table, rc.Column); err2 == nil {
				leftPos, rightPos, hashConj = lp, rp, c
				break
			}
		}
		if lp, err := left.colIndex(rc.Table, rc.Column); err == nil {
			if rp, err2 := right.colIndex(lc.Table, lc.Column); err2 == nil {
				leftPos, rightPos, hashConj = lp, rp, c
				break
			}
		}
	}

	env := &Env{cols: out.Cols, parent: outer}
	residual := func(lrow, rrow storage.Row) (bool, error) {
		combined := append(append(make(storage.Row, 0, len(lrow)+len(rrow)), lrow...), rrow...)
		env.row = combined
		for _, c := range onConjs {
			if c == hashConj {
				continue
			}
			t, err := ctx.EvalPredicate(c.expr, env)
			if err != nil {
				return false, err
			}
			if t != types.True {
				return false, nil
			}
		}
		return true, nil
	}
	emit := func(lrow, rrow storage.Row) {
		combined := append(append(make(storage.Row, 0, len(lrow)+len(rrow)), lrow...), rrow...)
		out.Rows = append(out.Rows, combined)
	}
	nullRight := make(storage.Row, len(right.Cols))
	for i := range nullRight {
		nullRight[i] = types.Null
	}

	if hashConj != nil {
		ctx.Stats.HashJoins++
		buckets := make(map[string][]storage.Row, len(right.Rows))
		for _, rrow := range right.Rows {
			v := rrow[rightPos]
			if v.IsNull() {
				continue
			}
			k := v.Key()
			buckets[k] = append(buckets[k], rrow)
		}
		for _, lrow := range left.Rows {
			v := lrow[leftPos]
			matched := false
			if !v.IsNull() {
				for _, rrow := range buckets[v.Key()] {
					ok, err := residual(lrow, rrow)
					if err != nil {
						return nil, err
					}
					if ok {
						emit(lrow, rrow)
						matched = true
					}
				}
			}
			if !matched && joinType == "LEFT" {
				emit(lrow, nullRight)
			}
		}
		return out, nil
	}

	ctx.Stats.NestedLoops++
	for _, lrow := range left.Rows {
		matched := false
		for _, rrow := range right.Rows {
			combined := append(append(make(storage.Row, 0, len(lrow)+len(rrow)), lrow...), rrow...)
			env.row = combined
			ok := true
			for _, c := range onConjs {
				t, err := ctx.EvalPredicate(c.expr, env)
				if err != nil {
					return nil, err
				}
				if t != types.True {
					ok = false
					break
				}
			}
			if ok {
				out.Rows = append(out.Rows, combined)
				matched = true
			}
		}
		if !matched && joinType == "LEFT" {
			emit(lrow, nullRight)
		}
	}
	return out, nil
}

func (ctx *Context) evalCrossList(cl *ast.CrossList, outer *Env, conjs []*conjunct, pushable bool) (*Relation, error) {
	acc, err := ctx.evalFrom(cl.Items[0], outer, conjs, "", pushable)
	if err != nil {
		return nil, err
	}
	for _, item := range cl.Items[1:] {
		next, err := ctx.evalFrom(item, outer, conjs, "", pushable)
		if err != nil {
			return nil, err
		}
		// Try to find an unused WHERE equi-conjunct linking acc and next,
		// so FROM a, b WHERE a.x = b.y becomes a hash join.
		var linking ast.Expr
		var linkConj *conjunct
		for _, c := range conjs {
			if c.used {
				continue
			}
			b, ok := c.expr.(*ast.Binary)
			if !ok || b.Op != "=" {
				continue
			}
			lc, lok := b.Left.(*ast.ColumnRef)
			rc, rok := b.Right.(*ast.ColumnRef)
			if !lok || !rok {
				continue
			}
			link := func(a, b *ast.ColumnRef) bool {
				if _, err := acc.colIndex(a.Table, a.Column); err != nil {
					return false
				}
				if _, err := next.colIndex(b.Table, b.Column); err != nil {
					return false
				}
				return true
			}
			if link(lc, rc) || link(rc, lc) {
				linking = c.expr
				linkConj = c
				break
			}
		}
		if linkConj != nil {
			linkConj.used = true
		}
		joined, err := ctx.joinRelations(acc, next, linking, "INNER", outer)
		if err != nil {
			return nil, err
		}
		acc = joined
	}
	return acc, nil
}

// ---------------------------------------------------------------------------
// projection

func (ctx *Context) project(items []ast.SelectItem, src *Relation, outer *Env) (*Relation, error) {
	cols, evals, err := ctx.projectionPlan(items, src)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: cols, Rows: make([]storage.Row, 0, len(src.Rows))}
	env := &Env{cols: src.Cols, parent: outer}
	for _, row := range src.Rows {
		env.row = row
		outRow := make(storage.Row, 0, len(cols))
		for _, ev := range evals {
			vals, err := ev(env, row)
			if err != nil {
				return nil, err
			}
			outRow = append(outRow, vals...)
		}
		out.Rows = append(out.Rows, outRow)
	}
	return out, nil
}

// projEval produces one or more output values for a select item.
type projEval func(env *Env, row storage.Row) ([]types.Value, error)

func (ctx *Context) projectionPlan(items []ast.SelectItem, src *Relation) ([]ColMeta, []projEval, error) {
	var cols []ColMeta
	var evals []projEval
	for _, item := range items {
		switch {
		case item.Star && item.StarTable == "":
			positions := make([]int, len(src.Cols))
			for i := range src.Cols {
				cols = append(cols, src.Cols[i])
				positions[i] = i
			}
			evals = append(evals, starEval(positions))
		case item.Star:
			var positions []int
			for i, c := range src.Cols {
				if strings.EqualFold(c.Table, item.StarTable) {
					cols = append(cols, c)
					positions = append(positions, i)
				}
			}
			if len(positions) == 0 {
				return nil, nil, fmt.Errorf("sql: %s.* matches no columns", item.StarTable)
			}
			evals = append(evals, starEval(positions))
		default:
			name := item.Alias
			if name == "" {
				if cr, ok := item.Expr.(*ast.ColumnRef); ok {
					name = cr.Column
				} else {
					name = item.Expr.String()
				}
			}
			cols = append(cols, ColMeta{Name: name})
			expr := item.Expr
			evals = append(evals, func(env *Env, _ storage.Row) ([]types.Value, error) {
				v, err := ctx.EvalExpr(expr, env)
				if err != nil {
					return nil, err
				}
				return []types.Value{v}, nil
			})
		}
	}
	return cols, evals, nil
}

func starEval(positions []int) projEval {
	return func(_ *Env, row storage.Row) ([]types.Value, error) {
		out := make([]types.Value, len(positions))
		for i, p := range positions {
			out[i] = row[p]
		}
		return out, nil
	}
}

// ---------------------------------------------------------------------------
// grouping and aggregation

func collectAggregates(core *ast.SelectCore) []*ast.Aggregate {
	var aggs []*ast.Aggregate
	for _, item := range core.Items {
		if item.Expr != nil {
			aggs = collectAggsExpr(item.Expr, aggs)
		}
	}
	if core.Having != nil {
		aggs = collectAggsExpr(core.Having, aggs)
	}
	return aggs
}

// collectAggsExpr gathers aggregate nodes of the *current* query level; it
// does not descend into subqueries (they aggregate independently).
func collectAggsExpr(e ast.Expr, into []*ast.Aggregate) []*ast.Aggregate {
	switch e := e.(type) {
	case *ast.Aggregate:
		return append(into, e)
	case *ast.Binary:
		return collectAggsExpr(e.Right, collectAggsExpr(e.Left, into))
	case *ast.Unary:
		return collectAggsExpr(e.Expr, into)
	case *ast.IsNull:
		return collectAggsExpr(e.Expr, into)
	case *ast.Between:
		return collectAggsExpr(e.Hi, collectAggsExpr(e.Lo, collectAggsExpr(e.Expr, into)))
	case *ast.Like:
		return collectAggsExpr(e.Pattern, collectAggsExpr(e.Expr, into))
	case *ast.InList:
		into = collectAggsExpr(e.Expr, into)
		for _, it := range e.Items {
			into = collectAggsExpr(it, into)
		}
		return into
	case *ast.Cast:
		return collectAggsExpr(e.Expr, into)
	case *ast.FuncCall:
		for _, a := range e.Args {
			into = collectAggsExpr(a, into)
		}
		return into
	case *ast.Case:
		if e.Operand != nil {
			into = collectAggsExpr(e.Operand, into)
		}
		for _, w := range e.Whens {
			into = collectAggsExpr(w.Result, collectAggsExpr(w.Cond, into))
		}
		if e.Else != nil {
			into = collectAggsExpr(e.Else, into)
		}
		return into
	}
	return into
}

type group struct {
	rep  storage.Row // representative row (first of group)
	rows []storage.Row
}

func (ctx *Context) evalGrouped(core *ast.SelectCore, src *Relation, aggs []*ast.Aggregate, outer *Env) (*Relation, error) {
	env := &Env{cols: src.Cols, parent: outer}

	// Partition rows into groups.
	groups := map[string]*group{}
	var order []string
	for _, row := range src.Rows {
		env.row = row
		key := ""
		for _, ge := range core.GroupBy {
			v, err := ctx.EvalExpr(ge, env)
			if err != nil {
				return nil, err
			}
			key += v.Key() + "\x1f"
		}
		g, ok := groups[key]
		if !ok {
			g = &group{rep: row}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	// Aggregates without GROUP BY always produce exactly one group.
	if len(core.GroupBy) == 0 && len(groups) == 0 {
		nullRow := make(storage.Row, len(src.Cols))
		for i := range nullRow {
			nullRow[i] = types.Null
		}
		groups[""] = &group{rep: nullRow}
		order = append(order, "")
	}

	cols, evals, err := ctx.projectionPlan(core.Items, src)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: cols}
	for _, key := range order {
		g := groups[key]
		aggVals, err := ctx.computeAggregates(aggs, g.rows, src.Cols, outer)
		if err != nil {
			return nil, err
		}
		savedAggs := ctx.aggValues
		ctx.aggValues = aggVals
		genv := &Env{cols: src.Cols, row: g.rep, parent: outer}
		if core.Having != nil {
			t, err := ctx.EvalPredicate(core.Having, genv)
			if err != nil {
				ctx.aggValues = savedAggs
				return nil, err
			}
			if t != types.True {
				ctx.aggValues = savedAggs
				continue
			}
		}
		outRow := make(storage.Row, 0, len(cols))
		for _, ev := range evals {
			vals, err := ev(genv, g.rep)
			if err != nil {
				ctx.aggValues = savedAggs
				return nil, err
			}
			outRow = append(outRow, vals...)
		}
		ctx.aggValues = savedAggs
		out.Rows = append(out.Rows, outRow)
	}
	return out, nil
}

func (ctx *Context) computeAggregates(aggs []*ast.Aggregate, rows []storage.Row, cols []ColMeta, outer *Env) (map[*ast.Aggregate]types.Value, error) {
	result := make(map[*ast.Aggregate]types.Value, len(aggs))
	env := &Env{cols: cols, parent: outer}
	for _, agg := range aggs {
		if _, done := result[agg]; done {
			continue
		}
		var count int64
		var sumF float64
		var sumI int64
		anyFloat := false
		nonNull := 0
		var minV, maxV types.Value
		seen := map[string]bool{}
		for _, row := range rows {
			var v types.Value
			if agg.Star {
				count++
				continue
			}
			env.row = row
			var err error
			v, err = ctx.EvalExpr(agg.Arg, env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			if agg.Distinct {
				k := v.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			nonNull++
			count++
			switch agg.Func {
			case "SUM", "AVG":
				f, ok := v.AsFloat()
				if !ok {
					return nil, fmt.Errorf("sql: %s requires numeric values, got %s", agg.Func, v.Kind())
				}
				sumF += f
				if v.Kind() == types.KindFloat {
					anyFloat = true
				} else {
					sumI += v.Int()
				}
			case "MIN":
				if minV.IsNull() {
					minV = v
				} else if c, err := types.Compare(v, minV); err == nil && c < 0 {
					minV = v
				}
			case "MAX":
				if maxV.IsNull() {
					maxV = v
				} else if c, err := types.Compare(v, maxV); err == nil && c > 0 {
					maxV = v
				}
			}
		}
		switch agg.Func {
		case "COUNT":
			if agg.Star {
				result[agg] = types.NewInt(int64(len(rows)))
			} else {
				result[agg] = types.NewInt(int64(nonNull))
			}
		case "SUM":
			if nonNull == 0 {
				result[agg] = types.Null
			} else if anyFloat {
				result[agg] = types.NewFloat(sumF)
			} else {
				result[agg] = types.NewInt(sumI)
			}
		case "AVG":
			if nonNull == 0 {
				result[agg] = types.Null
			} else {
				result[agg] = types.NewFloat(sumF / float64(nonNull))
			}
		case "MIN":
			result[agg] = minV
		case "MAX":
			result[agg] = maxV
		default:
			return nil, fmt.Errorf("sql: unknown aggregate %s", agg.Func)
		}
	}
	return result, nil
}

// ---------------------------------------------------------------------------
// ordering and limits

func (ctx *Context) orderRelation(rel *Relation, items []ast.OrderItem, outer *Env) error {
	for _, item := range items {
		if item.Position > len(rel.Cols) {
			return fmt.Errorf("sql: ORDER BY position %d exceeds %d output columns", item.Position, len(rel.Cols))
		}
	}
	type keyed struct {
		row  storage.Row
		keys []types.Value
	}
	rows := make([]keyed, len(rel.Rows))
	env := &Env{cols: rel.Cols, parent: outer}
	for i, row := range rel.Rows {
		keys := make([]types.Value, len(items))
		for j, item := range items {
			if item.Position > 0 {
				keys[j] = row[item.Position-1]
				continue
			}
			env.row = row
			v, err := ctx.EvalExpr(item.Expr, env)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		rows[i] = keyed{row: row, keys: keys}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for j, item := range items {
			c := types.CompareForSort(rows[a].keys[j], rows[b].keys[j])
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range rows {
		rel.Rows[i] = rows[i].row
	}
	return nil
}

func (ctx *Context) applyLimit(rel *Relation, limit, offset ast.Expr, outer *Env) error {
	start := 0
	if offset != nil {
		v, err := ctx.EvalExpr(offset, outer)
		if err != nil {
			return err
		}
		if v.Kind() != types.KindInt || v.Int() < 0 {
			return fmt.Errorf("sql: OFFSET must be a non-negative integer")
		}
		start = int(v.Int())
	}
	end := len(rel.Rows)
	if limit != nil {
		v, err := ctx.EvalExpr(limit, outer)
		if err != nil {
			return err
		}
		if v.Kind() != types.KindInt || v.Int() < 0 {
			return fmt.Errorf("sql: LIMIT must be a non-negative integer")
		}
		if start+int(v.Int()) < end {
			end = start + int(v.Int())
		}
	}
	if start > len(rel.Rows) {
		start = len(rel.Rows)
	}
	rel.Rows = rel.Rows[start:end]
	return nil
}

// ---------------------------------------------------------------------------
// helpers

// validateColumnRefs checks that every direct column reference in the
// core's items / WHERE / GROUP BY / HAVING resolves against the source
// relation or an outer scope. Subqueries are skipped — they validate in
// their own scope when (and if) they run.
func validateColumnRefs(core *ast.SelectCore, cols []ColMeta, outer *Env) error {
	rel := &Relation{Cols: cols}
	check := func(ref *ast.ColumnRef) error {
		_, err := rel.colIndex(ref.Table, ref.Column)
		if err == nil {
			return nil
		}
		if _, isMissing := err.(errNoColumn); !isMissing {
			return err // ambiguous
		}
		for env := outer; env != nil; env = env.parent {
			for _, c := range env.cols {
				if strings.EqualFold(c.Name, ref.Column) &&
					(ref.Table == "" || strings.EqualFold(c.Table, ref.Table)) {
					return nil
				}
			}
		}
		return err
	}
	var exprs []ast.Expr
	for _, it := range core.Items {
		if it.Expr != nil {
			exprs = append(exprs, it.Expr)
		}
	}
	exprs = append(exprs, core.Where, core.Having)
	exprs = append(exprs, core.GroupBy...)
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if err := walkDirectColumnRefs(e, check); err != nil {
			return err
		}
	}
	return nil
}

// walkDirectColumnRefs visits column references of the current scope,
// not descending into subqueries.
func walkDirectColumnRefs(e ast.Expr, fn func(*ast.ColumnRef) error) error {
	switch e := e.(type) {
	case *ast.ColumnRef:
		return fn(e)
	case *ast.Binary:
		if err := walkDirectColumnRefs(e.Left, fn); err != nil {
			return err
		}
		return walkDirectColumnRefs(e.Right, fn)
	case *ast.Unary:
		return walkDirectColumnRefs(e.Expr, fn)
	case *ast.IsNull:
		return walkDirectColumnRefs(e.Expr, fn)
	case *ast.Between:
		for _, x := range []ast.Expr{e.Expr, e.Lo, e.Hi} {
			if err := walkDirectColumnRefs(x, fn); err != nil {
				return err
			}
		}
	case *ast.Like:
		if err := walkDirectColumnRefs(e.Expr, fn); err != nil {
			return err
		}
		return walkDirectColumnRefs(e.Pattern, fn)
	case *ast.InList:
		if err := walkDirectColumnRefs(e.Expr, fn); err != nil {
			return err
		}
		for _, it := range e.Items {
			if err := walkDirectColumnRefs(it, fn); err != nil {
				return err
			}
		}
	case *ast.InSubquery:
		return walkDirectColumnRefs(e.Expr, fn)
	case *ast.Cast:
		return walkDirectColumnRefs(e.Expr, fn)
	case *ast.FuncCall:
		for _, a := range e.Args {
			if err := walkDirectColumnRefs(a, fn); err != nil {
				return err
			}
		}
	case *ast.Aggregate:
		if e.Arg != nil {
			return walkDirectColumnRefs(e.Arg, fn)
		}
	case *ast.Case:
		if e.Operand != nil {
			if err := walkDirectColumnRefs(e.Operand, fn); err != nil {
				return err
			}
		}
		for _, w := range e.Whens {
			if err := walkDirectColumnRefs(w.Cond, fn); err != nil {
				return err
			}
			if err := walkDirectColumnRefs(w.Result, fn); err != nil {
				return err
			}
		}
		if e.Else != nil {
			return walkDirectColumnRefs(e.Else, fn)
		}
	}
	return nil
}

// flattenSetOps linearizes a left-deep UNION tree into its SELECT cores
// and the list of operators between them.
func flattenSetOps(body ast.SelectBody) ([]*ast.SelectCore, []string) {
	switch b := body.(type) {
	case *ast.SelectCore:
		return []*ast.SelectCore{b}, nil
	case *ast.SetOp:
		lc, lo := flattenSetOps(b.Left)
		rc, ro := flattenSetOps(b.Right)
		ops := append(append(lo, b.Op), ro...)
		return append(lc, rc...), ops
	}
	return nil, nil
}

func rowKey(row storage.Row) string {
	var sb strings.Builder
	for _, v := range row {
		sb.WriteString(v.Key())
		sb.WriteByte('\x1e')
	}
	return sb.String()
}

// selectReferencesTable reports whether a select (including nested
// subqueries and FROM trees) references the named table.
func selectReferencesTable(sel *ast.Select, name string) bool {
	if sel == nil {
		return false
	}
	if sel.With != nil {
		for _, cte := range sel.With.CTEs {
			if selectReferencesTable(cte.Select, name) {
				return true
			}
		}
	}
	return bodyReferencesTable(sel.Body, name) || exprListReferences(nil, name, sel.Limit, sel.Offset)
}

func bodyReferencesTable(body ast.SelectBody, name string) bool {
	switch b := body.(type) {
	case *ast.SelectCore:
		return coreReferencesTable(b, name)
	case *ast.SetOp:
		return bodyReferencesTable(b.Left, name) || bodyReferencesTable(b.Right, name)
	}
	return false
}

func coreReferencesTable(core *ast.SelectCore, name string) bool {
	if core.From != nil && tableRefReferences(core.From, name) {
		return true
	}
	var exprs []ast.Expr
	for _, it := range core.Items {
		if it.Expr != nil {
			exprs = append(exprs, it.Expr)
		}
	}
	exprs = append(exprs, core.Where, core.Having)
	exprs = append(exprs, core.GroupBy...)
	return exprListReferences(exprs, name)
}

func exprListReferences(exprs []ast.Expr, name string, more ...ast.Expr) bool {
	for _, e := range append(exprs, more...) {
		if e != nil && exprReferencesTable(e, name) {
			return true
		}
	}
	return false
}

func tableRefReferences(ref ast.TableRef, name string) bool {
	switch r := ref.(type) {
	case *ast.BaseTable:
		return strings.EqualFold(r.Name, name)
	case *ast.Join:
		return tableRefReferences(r.Left, name) || tableRefReferences(r.Right, name) ||
			(r.On != nil && exprReferencesTable(r.On, name))
	case *ast.CrossList:
		for _, it := range r.Items {
			if tableRefReferences(it, name) {
				return true
			}
		}
	case *ast.SubqueryTable:
		return selectReferencesTable(r.Select, name)
	}
	return false
}

func exprReferencesTable(e ast.Expr, name string) bool {
	switch e := e.(type) {
	case *ast.Binary:
		return exprReferencesTable(e.Left, name) || exprReferencesTable(e.Right, name)
	case *ast.Unary:
		return exprReferencesTable(e.Expr, name)
	case *ast.IsNull:
		return exprReferencesTable(e.Expr, name)
	case *ast.Between:
		return exprReferencesTable(e.Expr, name) || exprReferencesTable(e.Lo, name) || exprReferencesTable(e.Hi, name)
	case *ast.Like:
		return exprReferencesTable(e.Expr, name) || exprReferencesTable(e.Pattern, name)
	case *ast.InList:
		if exprReferencesTable(e.Expr, name) {
			return true
		}
		for _, it := range e.Items {
			if exprReferencesTable(it, name) {
				return true
			}
		}
	case *ast.InSubquery:
		return exprReferencesTable(e.Expr, name) || selectReferencesTable(e.Select, name)
	case *ast.Exists:
		return selectReferencesTable(e.Select, name)
	case *ast.ScalarSubquery:
		return selectReferencesTable(e.Select, name)
	case *ast.Cast:
		return exprReferencesTable(e.Expr, name)
	case *ast.FuncCall:
		for _, a := range e.Args {
			if exprReferencesTable(a, name) {
				return true
			}
		}
	case *ast.Aggregate:
		if e.Arg != nil {
			return exprReferencesTable(e.Arg, name)
		}
	case *ast.Case:
		if e.Operand != nil && exprReferencesTable(e.Operand, name) {
			return true
		}
		for _, w := range e.Whens {
			if exprReferencesTable(w.Cond, name) || exprReferencesTable(w.Result, name) {
				return true
			}
		}
		if e.Else != nil {
			return exprReferencesTable(e.Else, name)
		}
	}
	return false
}
