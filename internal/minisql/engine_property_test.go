package minisql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pdmtune/internal/minisql/types"
)

// TestRecursiveCTEMatchesGoClosure: on random directed graphs, the
// engine's WITH RECURSIVE reachability equals a Go breadth-first search.
func TestRecursiveCTEMatchesGoClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		var edges [][2]int
		for i := 0; i < n*2; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}

		// Go-side closure from node 0.
		adj := map[int][]int{}
		for _, e := range edges {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
		reach := map[int]bool{0: true}
		queue := []int{0}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range adj[x] {
				if !reach[y] {
					reach[y] = true
					queue = append(queue, y)
				}
			}
		}

		// Engine-side closure.
		s := NewDB().NewSession()
		if _, err := s.Exec("CREATE TABLE edge (src INTEGER, dst INTEGER)"); err != nil {
			return false
		}
		for _, e := range edges {
			if _, err := s.Exec("INSERT INTO edge VALUES (?, ?)",
				types.NewInt(int64(e[0])), types.NewInt(int64(e[1]))); err != nil {
				return false
			}
		}
		res, err := s.Exec(`WITH RECURSIVE r (node) AS (
			SELECT 0 UNION SELECT edge.dst FROM r JOIN edge ON r.node = edge.src
		) SELECT node FROM r ORDER BY 1`)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(reach) {
			return false
		}
		for _, row := range res.Rows {
			if !reach[int(row[0].Int())] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIndexTransparency: query results are identical with and without a
// secondary index — the planner's index path is an optimization only.
func TestIndexTransparency(t *testing.T) {
	build := func(indexed bool, rows [][2]int64) *Session {
		s := NewDB().NewSession()
		mustExec(t, s, "CREATE TABLE t (a INTEGER, b INTEGER)")
		mustExec(t, s, "CREATE TABLE u (a INTEGER, c INTEGER)")
		if indexed {
			mustExec(t, s, "CREATE INDEX t_a ON t (a)")
			mustExec(t, s, "CREATE INDEX u_a ON u (a)")
		}
		for _, r := range rows {
			mustExec(t, s, "INSERT INTO t VALUES (?, ?)", types.NewInt(r[0]), types.NewInt(r[1]))
			mustExec(t, s, "INSERT INTO u VALUES (?, ?)", types.NewInt(r[1]%7), types.NewInt(r[0]))
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rows [][2]int64
		for i := 0; i < 30; i++ {
			rows = append(rows, [2]int64{int64(rng.Intn(10)), int64(rng.Intn(10))})
		}
		withIdx := build(true, rows)
		without := build(false, rows)
		queries := []string{
			"SELECT COUNT(*) FROM t WHERE a = 3",
			"SELECT COUNT(*) FROM t WHERE a = 3 AND b = 2",
			"SELECT COUNT(*) FROM t JOIN u ON t.a = u.a",
			"SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE t.b = 1",
			"SELECT COUNT(*) FROM t LEFT JOIN u ON t.a = u.a AND t.b = u.c",
		}
		for _, q := range queries {
			r1, err1 := withIdx.Exec(q)
			r2, err2 := without.Exec(q)
			if err1 != nil || err2 != nil {
				return false
			}
			if r1.Rows[0][0].Int() != r2.Rows[0][0].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSubqueryCacheTransparency: disabling the uncorrelated-subquery
// cache never changes results.
func TestSubqueryCacheTransparency(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM t WHERE b = (SELECT MAX(b) FROM t)",
		"SELECT COUNT(*) FROM t WHERE EXISTS (SELECT 1 FROM t AS x WHERE x.a = t.a AND x.b > t.b)",
		"SELECT COUNT(*) FROM t WHERE a IN (SELECT b FROM t)",
		"SELECT (SELECT COUNT(*) FROM t) + COUNT(*) FROM t",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var stmts []string
		for i := 0; i < 25; i++ {
			stmts = append(stmts, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", rng.Intn(6), rng.Intn(6)))
		}
		run := func(disable bool) ([]int64, bool) {
			db := NewDB()
			db.SetOptions(Options{DisableSubqueryCache: disable})
			s := db.NewSession()
			if _, err := s.Exec("CREATE TABLE t (a INTEGER, b INTEGER)"); err != nil {
				return nil, false
			}
			for _, st := range stmts {
				if _, err := s.Exec(st); err != nil {
					return nil, false
				}
			}
			var out []int64
			for _, q := range queries {
				res, err := s.Exec(q)
				if err != nil {
					return nil, false
				}
				out = append(out, res.Rows[0][0].Int())
			}
			return out, true
		}
		a, ok1 := run(false)
		b, ok2 := run(true)
		if !ok1 || !ok2 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestUnionIdempotenceProperty: r UNION r == SELECT DISTINCT r.
func TestUnionIdempotenceProperty(t *testing.T) {
	f := func(vals []int8) bool {
		s := NewDB().NewSession()
		if _, err := s.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := s.Exec("INSERT INTO t VALUES (?)", types.NewInt(int64(v))); err != nil {
				return false
			}
		}
		u, err := s.Exec("SELECT a FROM t UNION SELECT a FROM t ORDER BY 1")
		if err != nil {
			return false
		}
		d, err := s.Exec("SELECT DISTINCT a FROM t ORDER BY 1")
		if err != nil {
			return false
		}
		if len(u.Rows) != len(d.Rows) {
			return false
		}
		for i := range u.Rows {
			if !u.Rows[i][0].Equal(d.Rows[i][0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOrderBySortedProperty: ORDER BY output is non-decreasing.
func TestOrderBySortedProperty(t *testing.T) {
	f := func(vals []int16) bool {
		s := NewDB().NewSession()
		if _, err := s.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := s.Exec("INSERT INTO t VALUES (?)", types.NewInt(int64(v))); err != nil {
				return false
			}
		}
		res, err := s.Exec("SELECT a FROM t ORDER BY a")
		if err != nil || len(res.Rows) != len(vals) {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].Int() > res.Rows[i][0].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInsertSelectRoundTripProperty: values inserted with parameters come
// back unchanged.
func TestInsertSelectRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		sess := NewDB().NewSession()
		if _, err := sess.Exec("CREATE TABLE t (i INTEGER, f FLOAT, s TEXT, b BOOLEAN)"); err != nil {
			return false
		}
		if _, err := sess.Exec("INSERT INTO t VALUES (?, ?, ?, ?)",
			types.NewInt(i), types.NewFloat(fl), types.NewText(s), types.NewBool(b)); err != nil {
			return false
		}
		res, err := sess.Exec("SELECT i, f, s, b FROM t")
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		row := res.Rows[0]
		return row[0].Equal(types.NewInt(i)) && row[1].Equal(types.NewFloat(fl)) &&
			row[2].Equal(types.NewText(s)) && row[3].Equal(types.NewBool(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRollbackRestoresStateProperty: a transaction with random DML
// followed by ROLLBACK leaves the table exactly as before.
func TestRollbackRestoresStateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewDB().NewSession()
		if _, err := s.Exec("CREATE TABLE t (a INTEGER, b INTEGER)"); err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, rng.Intn(5))); err != nil {
				return false
			}
		}
		fingerprint := func() string {
			res, err := s.Exec("SELECT a, b FROM t ORDER BY a, b")
			if err != nil {
				return "err"
			}
			out := ""
			for _, r := range res.Rows {
				out += r[0].String() + ":" + r[1].String() + ";"
			}
			return out
		}
		before := fingerprint()
		if _, err := s.Exec("BEGIN"); err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			switch rng.Intn(3) {
			case 0:
				s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", 100+i, rng.Intn(5)))
			case 1:
				s.Exec(fmt.Sprintf("UPDATE t SET b = b + 1 WHERE a %% %d = 0", 1+rng.Intn(4)))
			case 2:
				s.Exec(fmt.Sprintf("DELETE FROM t WHERE b = %d", rng.Intn(5)))
			}
		}
		if _, err := s.Exec("ROLLBACK"); err != nil {
			return false
		}
		return fingerprint() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
