package minisql

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pdmtune/internal/minisql/types"
)

func planTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	s := db.NewSession()
	if _, err := s.ExecScript(`
		CREATE TABLE obj (id INTEGER PRIMARY KEY, typ TEXT, state TEXT);
		INSERT INTO obj VALUES (1, 'assy', 'released');
		INSERT INTO obj VALUES (2, 'part', 'working');
		INSERT INTO obj VALUES (3, 'part', 'released');
	`); err != nil {
		t.Fatal(err)
	}
	s.TakeContention() // setup parses are not the test's concern
	return db
}

// TestPlanCacheHitDoesNoParserWork asserts — via the hit/miss counters,
// which Parse bumps strictly around its parser.Parse call — that the
// second execution of a statement is answered from the cache: one miss
// on first sight, pure hits afterwards, identical results both times.
func TestPlanCacheHitDoesNoParserWork(t *testing.T) {
	db := planTestDB(t)
	s := db.NewSession()
	const q = "SELECT id, typ FROM obj WHERE state = 'released' ORDER BY id"

	first, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.TakeContention(); st.PlanMisses != 1 || st.PlanHits != 0 {
		t.Fatalf("cold exec: hits=%d misses=%d, want 0/1", st.PlanHits, st.PlanMisses)
	}

	for i := 0; i < 5; i++ {
		again, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Rows, first.Rows) || !reflect.DeepEqual(again.Cols, first.Cols) {
			t.Fatalf("cached execution diverged: %+v vs %+v", again, first)
		}
	}
	if st := s.TakeContention(); st.PlanHits != 5 || st.PlanMisses != 0 {
		t.Fatalf("warm execs: hits=%d misses=%d, want 5/0", st.PlanHits, st.PlanMisses)
	}

	// The cache is DB-wide: a different session hits immediately.
	other := db.NewSession()
	if _, err := other.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := other.TakeContention(); st.PlanHits != 1 || st.PlanMisses != 0 {
		t.Fatalf("cross-session exec: hits=%d misses=%d, want 1/0", st.PlanHits, st.PlanMisses)
	}
}

// TestPlanCacheDDLInvalidation checks that every DDL statement empties
// the cache — a cached plan must never survive a schema change — and
// that DDL itself is never cached.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := planTestDB(t)
	s := db.NewSession()
	const q = "SELECT COUNT(*) FROM obj"

	ddl := []string{
		"CREATE TABLE aux (id INTEGER)",
		"CREATE INDEX obj_state ON obj (state)",
		"DROP TABLE aux",
	}
	for _, stmt := range ddl {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
		if db.plans.size() == 0 {
			t.Fatalf("query %q did not populate the cache", q)
		}
		if _, err := s.Exec(stmt); err != nil {
			t.Fatal(err)
		}
		if n := db.plans.size(); n != 0 {
			t.Fatalf("%d cached plans survived %q, want 0", n, stmt)
		}
	}

	s.TakeContention()
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := s.TakeContention(); st.PlanMisses != 1 {
		t.Fatalf("post-DDL exec misses=%d, want 1 (invalidated entry must re-parse)", st.PlanMisses)
	}
}

// TestPlanCacheBoundedUnderChurn churns far more distinct statements
// through the cache than its capacity and checks the LRU bound holds,
// with the hottest statement surviving the churn.
func TestPlanCacheBoundedUnderChurn(t *testing.T) {
	db := planTestDB(t)
	s := db.NewSession()
	const hot = "SELECT id FROM obj WHERE id = 1"

	for i := 0; i < 3*defaultPlanCacheSize; i++ {
		if _, err := s.Query(fmt.Sprintf("SELECT id FROM obj WHERE id = %d", i)); err != nil {
			t.Fatal(err)
		}
		// Re-run the hot statement so the LRU keeps it young.
		if _, err := s.Query(hot); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.plans.size(); n > defaultPlanCacheSize {
		t.Fatalf("cache grew to %d entries, cap is %d", n, defaultPlanCacheSize)
	}
	s.TakeContention()
	if _, err := s.Query(hot); err != nil {
		t.Fatal(err)
	}
	if st := s.TakeContention(); st.PlanHits != 1 {
		t.Fatal("hot statement was evicted despite being the most recently used")
	}
}

// TestPlanCacheConcurrentExec runs the same statements on many sessions
// at once (run under -race): all sessions share the cached ASTs, so any
// execution-time mutation of a shared node is a data race this test
// makes visible.
func TestPlanCacheConcurrentExec(t *testing.T) {
	db := planTestDB(t)
	queries := []string{
		"SELECT id, typ FROM obj WHERE state = 'released' ORDER BY id",
		"SELECT typ, COUNT(*) FROM obj GROUP BY typ ORDER BY typ",
		"SELECT COUNT(*) FROM obj WHERE id IN (1, 2, 3) AND state LIKE 're%'",
	}
	// Warm the cache so every worker runs on shared ASTs.
	warm := db.NewSession()
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := warm.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < 200; i++ {
				q := i % len(queries)
				res, err := s.Query(queries[q])
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(res.Rows, want[q].Rows) {
					t.Errorf("concurrent cached exec of %q diverged", queries[q])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPlanCacheParameterizedReuse checks that one cached AST serves
// different parameter bindings — parameters bind at execution, not in
// the plan.
func TestPlanCacheParameterizedReuse(t *testing.T) {
	db := planTestDB(t)
	s := db.NewSession()
	const q = "SELECT typ FROM obj WHERE id = ?"
	for id := int64(1); id <= 3; id++ {
		res, err := s.Query(q, types.NewInt(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("id %d: got %d rows, want 1", id, len(res.Rows))
		}
	}
	if st := s.TakeContention(); st.PlanMisses != 1 || st.PlanHits != 2 {
		t.Fatalf("parameterized reuse: hits=%d misses=%d, want 2/1", st.PlanHits, st.PlanMisses)
	}
}
