package parser

import (
	"math/rand"
	"testing"
)

// fuzzScripts seeds both the Go fuzzer and the deterministic mutation
// test below with every statement shape the dialect supports.
var fuzzScripts = []string{
	"SELECT 1;",
	benchSelect + ";",
	benchRecursiveMLE,
	"SELECT a.*, t.left, \"Q\" FROM t AS a, u b WHERE NOT a.x NOT IN (SELECT y FROM u) AND x NOT BETWEEN 1 AND 2 OR y NOT LIKE 'z%';",
	"INSERT INTO t (a, b) VALUES (1, 'x''y'), (?, NULL); UPDATE t SET a = a + 1, b = default WHERE c IS NOT NULL;",
	"CREATE TABLE IF NOT EXISTS t (id integer PRIMARY KEY, name varchar(40) NOT NULL DEFAULT 'n'); CREATE UNIQUE INDEX i ON t (id);",
	"DROP TABLE IF EXISTS t; BEGIN TRANSACTION; COMMIT WORK; ROLLBACK;",
	"CALL expand(1, count(*)); EXPLAIN SELECT CASE WHEN a = 1 THEN 'one' ELSE cast(a AS text) END FROM t -- trailing\n;",
	"SELECT sum(DISTINCT x), count(*), avg(y) FROM t GROUP BY z HAVING count(*) > 2 ORDER BY 1 DESC LIMIT 10 OFFSET 2;",
	"SELECT * FROM (SELECT x FROM t UNION ALL SELECT y FROM u) sub /* block */ WHERE EXISTS (SELECT 1 FROM v);",
}

// FuzzParseScript asserts the byte-scan lexer + arena parser never panic
// or read out of bounds, whatever bytes arrive.
func FuzzParseScript(f *testing.F) {
	for _, s := range fuzzScripts {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Errors are expected on mangled input; panics/OOB are the bug.
		stmts, err := ParseScript(src)
		if err == nil {
			// Parsed scripts must round-trip through String() without
			// panicking either (the query modificator relies on it).
			for _, st := range stmts {
				_ = st.String()
			}
		}
	})
}

// TestParseScriptRandomMutations is the always-on version of the fuzz
// target: deterministic random byte mutations of valid scripts, so `go
// test` exercises the OOB risk surface without -fuzz.
func TestParseScriptRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	interesting := []byte{0, ' ', '\n', '\'', '"', '-', '/', '*', '|', '!', '<', '>', '=', '.', ';', '(', ')', '?', 'e', '9', 0x85, 0xa0, 0xff}
	for round := 0; round < 5000; round++ {
		src := fuzzScripts[rng.Intn(len(fuzzScripts))]
		b := []byte(src)
		switch rng.Intn(3) {
		case 0: // mutate bytes in place
			for n := rng.Intn(4) + 1; n > 0; n-- {
				b[rng.Intn(len(b))] = interesting[rng.Intn(len(interesting))]
			}
		case 1: // truncate
			b = b[:rng.Intn(len(b))]
		case 2: // splice a random chunk of another script
			other := fuzzScripts[rng.Intn(len(fuzzScripts))]
			cut := rng.Intn(len(b))
			b = append(b[:cut:cut], other[rng.Intn(len(other)):]...)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseScript panicked on %q: %v", b, r)
				}
			}()
			if stmts, err := ParseScript(string(b)); err == nil {
				for _, st := range stmts {
					_ = st.String()
				}
			}
		}()
	}
}

// TestReusableParserMatchesOneShot pins the arena-reuse contract: a warm
// parser must produce the same rendered AST as the package-level Parse.
func TestReusableParserMatchesOneShot(t *testing.T) {
	p := New()
	for _, src := range fuzzScripts {
		warm, warmErr := p.Script(src)
		cold, coldErr := ParseScript(src)
		if (warmErr != nil) != (coldErr != nil) {
			t.Fatalf("warm/cold error mismatch on %q: %v vs %v", src, warmErr, coldErr)
		}
		if warmErr != nil {
			continue
		}
		if len(warm) != len(cold) {
			t.Fatalf("warm/cold statement count mismatch on %q", src)
		}
		for i := range warm {
			if warm[i].String() != cold[i].String() {
				t.Fatalf("warm/cold AST mismatch on %q:\n  warm: %s\n  cold: %s", src, warm[i], cold[i])
			}
		}
	}
	// After all of that churn the same parser must still parse correctly.
	if _, err := p.Statement(benchSelect); err != nil {
		t.Fatal(err)
	}
}
