package parser

import "testing"

// benchSelect is the shape of the per-level expansion statement the PDM
// client issues thousands of times per MLE.
const benchSelect = "SELECT type, obid, name, dec FROM assy JOIN link ON assy.obid = link.left WHERE assy.dec = 'released' AND link.right IN (1, 2, 3)"

// benchRecursiveMLE is the paper's Section 5.2 single-statement recursive
// multi-level expansion — the largest statement in the workload.
const benchRecursiveMLE = `WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC", left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl) AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2`

// BenchmarkParseSelect measures the warm path: a reused parser whose
// arena and token buffer survive across statements.
func BenchmarkParseSelect(b *testing.B) {
	b.SetBytes(int64(len(benchSelect)))
	b.ReportAllocs()
	p := New()
	for i := 0; i < b.N; i++ {
		if _, err := p.Statement(benchSelect); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseSelectCold measures the one-shot package-level Parse used
// on plan-cache misses (fresh arena, immortal AST).
func BenchmarkParseSelectCold(b *testing.B) {
	b.SetBytes(int64(len(benchSelect)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSelect); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRecursiveMLE(b *testing.B) {
	b.SetBytes(int64(len(benchRecursiveMLE)))
	b.ReportAllocs()
	p := New()
	for i := 0; i < b.N; i++ {
		if _, err := p.Statement(benchRecursiveMLE); err != nil {
			b.Fatal(err)
		}
	}
}
