package parser

import (
	"strings"
	"testing"

	"pdmtune/internal/minisql/ast"
)

func parse(t *testing.T, src string) ast.Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

// TestRoundTrip: for a broad sample of the dialect, parsing the printed
// form of a parsed statement yields the same printed form (printer and
// grammar agree — the property the PDM query modificator depends on).
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT 1",
		"SELECT a, b AS \"X\" FROM t",
		"SELECT * FROM t WHERE (a = 1)",
		"SELECT t.* FROM t AS x",
		"SELECT a FROM t WHERE ((a > 1) AND (b < 2))",
		"SELECT a FROM t WHERE (a IS NOT NULL)",
		"SELECT a FROM t WHERE (a BETWEEN 1 AND 2)",
		"SELECT a FROM t WHERE (a LIKE 'x%')",
		"SELECT a FROM t WHERE (a IN (1, 2, 3))",
		"SELECT a FROM t WHERE (a NOT IN (SELECT b FROM u))",
		"SELECT a FROM t WHERE (EXISTS (SELECT 1))",
		"SELECT a FROM t WHERE (NOT EXISTS (SELECT 1))",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING (COUNT(*) > 1)",
		"SELECT SUM(DISTINCT a) FROM t",
		"SELECT CAST(NULL AS INTEGER) AS \"LEFT\" FROM t",
		"SELECT CASE WHEN (a = 1) THEN 'x' ELSE 'y' END FROM t",
		"SELECT CASE a WHEN 1 THEN 'x' END FROM t",
		"SELECT a FROM t JOIN u ON (t.id = u.id)",
		"SELECT a FROM t LEFT JOIN u ON (t.id = u.id)",
		"SELECT a FROM t, u WHERE (t.id = u.id)",
		"SELECT a FROM (SELECT b FROM u) AS v",
		"SELECT a FROM t UNION SELECT b FROM u",
		"SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 10 OFFSET 2",
		"WITH x AS (SELECT 1) SELECT * FROM x",
		"WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT (n + 1) FROM r WHERE (n < 5)) SELECT * FROM r",
		"INSERT INTO t VALUES (1, 'a'), (2, 'b')",
		"INSERT INTO t (a, b) VALUES (?, ?)",
		"UPDATE t SET a = 1, b = (b + 1) WHERE (c = 2)",
		"DELETE FROM t WHERE (a = 1)",
		"CREATE TABLE t (a INTEGER NOT NULL PRIMARY KEY, b VARCHAR(10), c FLOAT DEFAULT 0)",
		"CREATE INDEX i ON t (a)",
		"CREATE UNIQUE INDEX i ON t (a)",
		"DROP TABLE IF EXISTS t",
		"BEGIN",
		"COMMIT",
		"ROLLBACK",
		"CALL p(1, 'x')",
		"SELECT lower(a) FROM t WHERE (f(a, b) = 1)",
		"SELECT a FROM t WHERE ((SELECT MAX(b) FROM u) = 3)",
	}
	for _, src := range srcs {
		st1 := parse(t, src)
		printed := st1.String()
		st2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q failed: %v\n  printed: %s", src, err, printed)
			continue
		}
		if st2.String() != printed {
			t.Errorf("round trip diverged for %q:\n  1: %s\n  2: %s", src, printed, st2.String())
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	st := parse(t, "SELECT 1 + 2 * 3")
	sel := st.(*ast.Select).Body.(*ast.SelectCore)
	if got := sel.Items[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence: %s", got)
	}
	st = parse(t, "SELECT a OR b AND c")
	sel = st.(*ast.Select).Body.(*ast.SelectCore)
	if got := sel.Items[0].Expr.String(); got != "(a OR (b AND c))" {
		t.Errorf("AND binds tighter than OR: %s", got)
	}
	st = parse(t, "SELECT NOT a = b")
	sel = st.(*ast.Select).Body.(*ast.SelectCore)
	if got := sel.Items[0].Expr.String(); got != "(NOT (a = b))" {
		t.Errorf("NOT applies to comparison: %s", got)
	}
}

func TestLeftAsColumnName(t *testing.T) {
	// The paper's link table calls its columns "left" and "right"; LEFT
	// is also the join keyword.
	st := parse(t, "SELECT left, right FROM link WHERE left = 1")
	sel := st.(*ast.Select).Body.(*ast.SelectCore)
	if sel.Items[0].Expr.(*ast.ColumnRef).Column != "left" {
		t.Error("bare 'left' should parse as a column")
	}
	parse(t, "SELECT link.left FROM link")
	parse(t, "CREATE TABLE link (left INTEGER, right INTEGER)")
	parse(t, "INSERT INTO link (left, right) VALUES (1, 2)")
	parse(t, "UPDATE link SET left = 3")
	// And LEFT JOIN still works.
	parse(t, "SELECT * FROM a LEFT JOIN b ON a.x = b.y")
	parse(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
}

func TestParamIndices(t *testing.T) {
	st := parse(t, "SELECT ? , ? FROM t WHERE a = ?")
	sel := st.(*ast.Select).Body.(*ast.SelectCore)
	p0 := sel.Items[0].Expr.(*ast.Param)
	p1 := sel.Items[1].Expr.(*ast.Param)
	if p0.Index != 0 || p1.Index != 1 {
		t.Errorf("param indices %d, %d; want 0, 1", p0.Index, p1.Index)
	}
	n, err := NumParams("SELECT ?, ?, ?")
	if err != nil || n != 3 {
		t.Errorf("NumParams = %d, %v", n, err)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("SELECT 1; ; SELECT 2;")
	if err != nil || len(stmts) != 2 {
		t.Fatalf("ParseScript: %d stmts, %v", len(stmts), err)
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("assy.make_or_buy <> 'buy'")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(assy.make_or_buy <> 'buy')" {
		t.Errorf("printed: %s", e.String())
	}
	if _, err := ParseExpr("a = "); err == nil {
		t.Error("truncated expression must fail")
	}
	if _, err := ParseExpr("a = 1 extra"); err == nil {
		t.Error("trailing tokens must fail")
	}
}

func TestParseErrorsAreInformative(t *testing.T) {
	cases := []string{
		"SELEC 1",
		"SELECT FROM",
		"SELECT * FROM",
		"INSERT t VALUES (1)",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"SELECT * FROM t WHERE",
		"WITH x AS SELECT 1 SELECT 2",
		"SELECT CASE END",
		"SELECT AVG(*) FROM t",
		"UPDATE t SET",
		"SELECT 1 LIMIT",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q must not parse", src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%q: error lacks position info: %v", src, err)
		}
	}
}

func TestPaperQueriesParse(t *testing.T) {
	// The full Section 5.2 query (as in the engine test) must parse, and
	// the printed form must re-parse.
	src := `
WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC", left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl) AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2`
	st := parse(t, src)
	if _, err := Parse(st.String()); err != nil {
		t.Fatalf("printed paper query does not reparse: %v", err)
	}
	sel := st.(*ast.Select)
	if sel.With == nil || !sel.With.Recursive || len(sel.With.CTEs) != 1 {
		t.Error("WITH RECURSIVE structure wrong")
	}
	if len(sel.OrderBy) != 2 || sel.OrderBy[0].Position != 1 {
		t.Error("ORDER BY positions wrong")
	}
	if _, ok := sel.Body.(*ast.SetOp); !ok {
		t.Error("outer body should be a UNION")
	}
}

func TestSelectItemImplicitAlias(t *testing.T) {
	st := parse(t, "SELECT a b FROM t")
	sel := st.(*ast.Select).Body.(*ast.SelectCore)
	if sel.Items[0].Alias != "b" {
		t.Errorf("implicit alias = %q, want b", sel.Items[0].Alias)
	}
}

func TestNegativeNumbersFold(t *testing.T) {
	st := parse(t, "SELECT -5, -2.5")
	sel := st.(*ast.Select).Body.(*ast.SelectCore)
	if sel.Items[0].Expr.String() != "-5" {
		t.Errorf("folded int: %s", sel.Items[0].Expr)
	}
	if sel.Items[1].Expr.String() != "-2.5" {
		t.Errorf("folded float: %s", sel.Items[1].Expr)
	}
}

func TestExplainParses(t *testing.T) {
	st := parse(t, "EXPLAIN SELECT * FROM t")
	if _, ok := st.(*ast.Explain); !ok {
		t.Errorf("got %T", st)
	}
}

func TestInsertFromSelect(t *testing.T) {
	st := parse(t, "INSERT INTO t (a) SELECT b FROM u")
	ins := st.(*ast.Insert)
	if ins.Select == nil || len(ins.Cols) != 1 {
		t.Error("INSERT ... SELECT structure wrong")
	}
}
