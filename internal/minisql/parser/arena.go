package parser

import (
	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/types"
)

// slab is a chunked bump allocator for one AST node type. get returns a
// zeroed slot; reset truncates the chunks for reuse without freeing them.
// Full chunks are never reallocated (a new chunk is appended instead), so
// pointers handed out remain valid until reset.
type slab[T any] struct {
	chunks [][]T
	cur    int
}

// chunkSize doubles per chunk up to 256 slots so small statements stay
// compact while big recursive queries don't thrash the allocator.
func chunkSize(i int) int { return 8 << min(i, 5) }

func (s *slab[T]) get() *T {
	for {
		if s.cur == len(s.chunks) {
			s.chunks = append(s.chunks, make([]T, 0, chunkSize(s.cur)))
		}
		c := &s.chunks[s.cur]
		if len(*c) == cap(*c) {
			s.cur++
			continue
		}
		var zero T
		*c = append(*c, zero)
		return &(*c)[len(*c)-1]
	}
}

func (s *slab[T]) reset() {
	for i := range s.chunks {
		s.chunks[i] = s.chunks[i][:0]
	}
	s.cur = 0
}

// nodeArena holds one slab per AST node type the parser allocates. A
// parser owns one arena; Reset recycles every node at once. ASTs returned
// by a reusable parser are valid only until its next Reset — the
// package-level Parse/ParseScript/ParseExpr functions use a fresh arena
// per call, so their results are immortal.
type nodeArena struct {
	sel       slab[ast.Select]
	with      slab[ast.With]
	setOp     slab[ast.SetOp]
	core      slab[ast.SelectCore]
	baseTable slab[ast.BaseTable]
	join      slab[ast.Join]
	crossList slab[ast.CrossList]
	subqTable slab[ast.SubqueryTable]
	binary    slab[ast.Binary]
	unary     slab[ast.Unary]
	isNull    slab[ast.IsNull]
	between   slab[ast.Between]
	like      slab[ast.Like]
	inList    slab[ast.InList]
	inSubq    slab[ast.InSubquery]
	exists    slab[ast.Exists]
	scalarSub slab[ast.ScalarSubquery]
	cast      slab[ast.Cast]
	funcCall  slab[ast.FuncCall]
	aggregate slab[ast.Aggregate]
	caseExpr  slab[ast.Case]
	literal   slab[ast.Literal]
	param     slab[ast.Param]
	colRef    slab[ast.ColumnRef]
	insert    slab[ast.Insert]
	update    slab[ast.Update]
	delete    slab[ast.Delete]
	create    slab[ast.CreateTable]
	createIdx slab[ast.CreateIndex]
	dropTable slab[ast.DropTable]
	call      slab[ast.Call]
	explain   slab[ast.Explain]
}

func (a *nodeArena) reset() {
	a.sel.reset()
	a.with.reset()
	a.setOp.reset()
	a.core.reset()
	a.baseTable.reset()
	a.join.reset()
	a.crossList.reset()
	a.subqTable.reset()
	a.binary.reset()
	a.unary.reset()
	a.isNull.reset()
	a.between.reset()
	a.like.reset()
	a.inList.reset()
	a.inSubq.reset()
	a.exists.reset()
	a.scalarSub.reset()
	a.cast.reset()
	a.funcCall.reset()
	a.aggregate.reset()
	a.caseExpr.reset()
	a.literal.reset()
	a.param.reset()
	a.colRef.reset()
	a.insert.reset()
	a.update.reset()
	a.delete.reset()
	a.create.reset()
	a.createIdx.reset()
	a.dropTable.reset()
	a.call.reset()
	a.explain.reset()
}

// Constructor helpers: each takes a zeroed slab slot and fills it, so the
// parser body reads like the old &ast.X{...} literals.

func (p *Parser) newBinary(op string, l, r ast.Expr) *ast.Binary {
	n := p.arena.binary.get()
	*n = ast.Binary{Op: op, Left: l, Right: r}
	return n
}

func (p *Parser) newLiteral(v types.Value) *ast.Literal {
	n := p.arena.literal.get()
	n.Value = v
	return n
}

func (p *Parser) newColumnRef(table, column string) *ast.ColumnRef {
	n := p.arena.colRef.get()
	n.Table, n.Column = table, column
	return n
}
