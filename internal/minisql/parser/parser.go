// Package parser turns SQL text into the AST of package ast. It is a
// hand-written recursive-descent parser with Pratt-style expression
// parsing, covering the SQL:1999 subset used by the PDM workload:
// WITH RECURSIVE, multi-branch UNION bodies, joins, EXISTS / IN / scalar
// subqueries, aggregates, CAST, CASE, DDL, DML, transactions and CALL.
//
// AST nodes come from a per-parser slab arena (see arena.go). The
// package-level Parse/ParseScript/ParseExpr functions use a fresh arena
// per call, so their results never expire. A reusable Parser obtained
// from New amortizes the arena and token buffer across statements; its
// ASTs are valid only until the next call on that parser.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"pdmtune/internal/minisql/ast"
	"pdmtune/internal/minisql/token"
	"pdmtune/internal/minisql/types"
)

// Parser consumes a token stream. The zero value is ready to use.
type Parser struct {
	toks   []token.Token
	pos    int
	params int // number of ? parameters seen so far
	depth  int // recursion depth, bounded to keep adversarial input from overflowing the stack
	src    string
	arena  nodeArena
}

// maxDepth bounds recursive-descent depth. Real PDM statements nest a
// handful of levels; anything deeper is adversarial input that would
// otherwise overflow the goroutine stack.
const maxDepth = 500

func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errorf("statement nesting too deep")
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// New returns a reusable Parser. Each Statement/Script/Expr call resets
// the arena, invalidating ASTs returned by previous calls on the same
// parser; use the package-level functions when the AST must outlive the
// next parse (e.g. to store it in a cache).
func New() *Parser { return &Parser{} }

// Reset recycles the parser's node arena. Any AST previously returned by
// this parser must not be used afterwards.
func (p *Parser) Reset() { p.arena.reset() }

// init tokenizes src into the reused token buffer and rewinds the parser.
func (p *Parser) init(src string) error {
	toks, err := token.Tokenize(src, p.toks[:0])
	p.toks = toks // keep capacity even on error
	if err != nil {
		return err
	}
	p.pos, p.params, p.depth, p.src = 0, 0, 0, src
	return nil
}

// Statement parses a single statement (a trailing semicolon is allowed),
// reusing the parser's buffers. The result is valid until the next call.
func (p *Parser) Statement(src string) (ast.Statement, error) {
	p.Reset()
	if err := p.init(src); err != nil {
		return nil, err
	}
	return p.finishStatement()
}

// Script parses a semicolon-separated list of statements, reusing the
// parser's buffers. The results are valid until the next call.
func (p *Parser) Script(src string) ([]ast.Statement, error) {
	p.Reset()
	if err := p.init(src); err != nil {
		return nil, err
	}
	return p.finishScript()
}

// Expr parses a standalone expression, reusing the parser's buffers. The
// result is valid until the next call.
func (p *Parser) Expr(src string) (ast.Expr, error) {
	p.Reset()
	if err := p.init(src); err != nil {
		return nil, err
	}
	return p.finishExpr()
}

// Parse parses a single statement (a trailing semicolon is allowed). The
// returned AST owns a fresh arena and never expires.
func Parse(src string) (ast.Statement, error) {
	var p Parser
	if err := p.init(src); err != nil {
		return nil, err
	}
	return p.finishStatement()
}

// ParseScript parses a semicolon-separated list of statements.
func ParseScript(src string) ([]ast.Statement, error) {
	var p Parser
	if err := p.init(src); err != nil {
		return nil, err
	}
	return p.finishScript()
}

// ParseExpr parses a standalone expression — used by the rule compiler to
// validate condition predicates entered by administrators.
func ParseExpr(src string) (ast.Expr, error) {
	var p Parser
	if err := p.init(src); err != nil {
		return nil, err
	}
	return p.finishExpr()
}

func (p *Parser) finishStatement() (ast.Statement, error) {
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(token.Semicolon)
	if !p.at(token.EOF) {
		return nil, p.errorf("unexpected %s after end of statement", p.peek())
	}
	return st, nil
}

func (p *Parser) finishScript() ([]ast.Statement, error) {
	var out []ast.Statement
	for {
		for p.accept(token.Semicolon) {
		}
		if p.at(token.EOF) {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(token.Semicolon) && !p.at(token.EOF) {
			return nil, p.errorf("expected ';' between statements, got %s", p.peek())
		}
	}
}

func (p *Parser) finishExpr() (ast.Expr, error) {
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(token.EOF) {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// NumParams reports how many ? parameters a statement's source contains.
// It streams tokens without materializing them, so it does not allocate.
func NumParams(src string) (int, error) {
	l := token.NewLexer(src)
	n := 0
	for {
		t, err := l.Next()
		if err != nil {
			return 0, err
		}
		if t.Type == token.EOF {
			return n, nil
		}
		if t.Type == token.Param {
			n++
		}
	}
}

// ---------------------------------------------------------------------------
// token helpers

func (p *Parser) peek() token.Token    { return p.toks[p.pos] }
func (p *Parser) at(t token.Type) bool { return p.toks[p.pos].Type == t }

func (p *Parser) atKeyword(kws ...string) bool {
	t := p.peek()
	if t.Type != token.Keyword {
		return false
	}
	for _, k := range kws {
		if t.Text == k {
			return true
		}
	}
	return false
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Type != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(t token.Type) bool {
	if p.at(t) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(t token.Type, what string) (token.Token, error) {
	if p.at(t) {
		return p.next(), nil
	}
	return token.Token{}, p.errorf("expected %s, got %s", what, p.peek())
}

func (p *Parser) expectKeyword(kw string) error {
	if p.acceptKeyword(kw) {
		return nil
	}
	return p.errorf("expected %s, got %s", kw, p.peek())
}

// parseError defers the line/column scan and message assembly to
// Error(), so constructing an error (and any speculative error paths)
// costs nothing until the text is actually rendered.
type parseError struct {
	src string
	pos int
	msg string
}

func (e *parseError) Error() string {
	line, col := 1, 1
	for i := 0; i < e.pos && i < len(e.src); i++ {
		if e.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return "sql: parse error at line " + strconv.Itoa(line) + " column " + strconv.Itoa(col) + ": " + e.msg
}

func (p *Parser) errorf(format string, args ...any) error {
	return &parseError{src: p.src, pos: p.peek().Pos, msg: fmt.Sprintf(format, args...)}
}

// softKeywords may double as identifiers (column names): the paper's
// schema names a column "left", which is also the LEFT JOIN keyword.
var softKeywords = map[string]bool{"LEFT": true, "KEY": true, "WORK": true, "DEFAULT": true}

// lowerKeyword maps the canonical spellings accepted as identifiers to
// their lower-case form without allocating.
func lowerKeyword(kw string) string {
	switch kw {
	case "LEFT":
		return "left"
	case "KEY":
		return "key"
	case "WORK":
		return "work"
	case "DEFAULT":
		return "default"
	case "ALL":
		return "all"
	}
	return strings.ToLower(kw)
}

// identLike accepts an identifier, quoted identifier or soft keyword.
func (p *Parser) identLike(what string) (string, error) {
	t := p.peek()
	if t.Type == token.Ident || t.Type == token.QuotedIdent {
		p.pos++
		return t.Text, nil
	}
	if t.Type == token.Keyword && softKeywords[t.Text] {
		p.pos++
		return lowerKeyword(t.Text), nil
	}
	return "", p.errorf("expected %s, got %s", what, t)
}

// ---------------------------------------------------------------------------
// statements

func (p *Parser) parseStatement() (ast.Statement, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.atKeyword("SELECT", "WITH"):
		return p.parseSelect()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("DROP"):
		return p.parseDrop()
	case p.atKeyword("BEGIN"):
		p.next()
		p.acceptKeyword("TRANSACTION")
		p.acceptKeyword("WORK")
		return &ast.Begin{}, nil
	case p.atKeyword("COMMIT"):
		p.next()
		p.acceptKeyword("TRANSACTION")
		p.acceptKeyword("WORK")
		return &ast.Commit{}, nil
	case p.atKeyword("ROLLBACK"):
		p.next()
		p.acceptKeyword("TRANSACTION")
		p.acceptKeyword("WORK")
		return &ast.Rollback{}, nil
	case p.atKeyword("CALL"):
		return p.parseCall()
	case p.atKeyword("EXPLAIN"):
		p.next()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		n := p.arena.explain.get()
		n.Stmt = inner
		return n, nil
	}
	return nil, p.errorf("expected a statement, got %s", p.peek())
}

func (p *Parser) parseCall() (ast.Statement, error) {
	p.next() // CALL
	name, err := p.identLike("procedure name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	var args []ast.Expr
	if !p.at(token.RParen) {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	n := p.arena.call.get()
	n.Proc, n.Args = name, args
	return n, nil
}

func (p *Parser) parseCreate() (ast.Statement, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, p.errorf("UNIQUE is not valid for CREATE TABLE")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE, got %s", p.peek())
}

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	st := p.arena.create.get()
	if p.atKeyword("IF") {
		p.next()
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS, got %s", p.peek())
		}
		st.IfNotExists = true
	}
	name, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseColumnDef() (ast.ColumnDef, error) {
	var def ast.ColumnDef
	name, err := p.identLike("column name")
	if err != nil {
		return def, err
	}
	def.Name = name
	tname, err := p.identLike("type name")
	if err != nil {
		return def, err
	}
	size := 0
	if p.accept(token.LParen) {
		t, err := p.expect(token.Number, "type length")
		if err != nil {
			return def, err
		}
		size, err = strconv.Atoi(t.Text)
		if err != nil {
			return def, p.errorf("bad type length %q", t.Text)
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return def, err
		}
	}
	ct, err := types.ParseColumnType(tname, size)
	if err != nil {
		return def, p.errorf("%v", err)
	}
	def.Type = ct
	for {
		switch {
		case p.atKeyword("NOT"):
			p.next()
			if !p.acceptKeyword("NULL") {
				return def, p.errorf("expected NULL after NOT, got %s", p.peek())
			}
			def.NotNull = true
		case p.atKeyword("PRIMARY"):
			p.next()
			if !p.acceptKeyword("KEY") {
				return def, p.errorf("expected KEY after PRIMARY, got %s", p.peek())
			}
			def.PrimaryKey = true
		case p.atKeyword("DEFAULT"):
			p.next()
			e, err := p.parsePrimary()
			if err != nil {
				return def, err
			}
			def.Default = e
		default:
			return def, nil
		}
	}
}

func (p *Parser) parseCreateIndex(unique bool) (ast.Statement, error) {
	ifNotExists := false
	if p.atKeyword("IF") {
		p.next()
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS, got %s", p.peek())
		}
		ifNotExists = true
	}
	name, err := p.identLike("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	col, err := p.identLike("column name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	n := p.arena.createIdx.get()
	*n = ast.CreateIndex{Name: name, Table: table, Column: col, Unique: unique, IfNotExists: ifNotExists}
	return n, nil
}

func (p *Parser) parseDrop() (ast.Statement, error) {
	p.next() // DROP
	if !p.acceptKeyword("TABLE") {
		return nil, p.errorf("expected TABLE after DROP, got %s", p.peek())
	}
	st := p.arena.dropTable.get()
	if p.atKeyword("IF") {
		p.next()
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS, got %s", p.peek())
		}
		st.IfExists = true
	}
	name, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	st := p.arena.insert.get()
	st.Table = table
	if p.accept(token.LParen) {
		for {
			col, err := p.identLike("column name")
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("SELECT") || p.atKeyword("WITH") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(token.LParen, "'('"); err != nil {
			return nil, err
		}
		var row []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(token.Comma) {
			break
		}
	}
	return st, nil
}

func (p *Parser) parseUpdate() (ast.Statement, error) {
	p.next() // UPDATE
	table, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := p.arena.update.get()
	st.Table = table
	for {
		col, err := p.identLike("column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Eq, "'='"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, ast.Assignment{Column: col, Value: e})
		if !p.accept(token.Comma) {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (ast.Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	st := p.arena.delete.get()
	st.Table = table
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// ---------------------------------------------------------------------------
// SELECT

func (p *Parser) parseSelect() (*ast.Select, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	sel := p.arena.sel.get()
	if p.atKeyword("WITH") {
		w, err := p.parseWith()
		if err != nil {
			return nil, err
		}
		sel.With = w
	}
	body, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	sel.Body = body
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			item := ast.OrderItem{}
			if p.at(token.Number) {
				t := p.next()
				n, err := strconv.Atoi(t.Text)
				if err != nil || n < 1 {
					return nil, p.errorf("bad ORDER BY position %q", t.Text)
				}
				item.Position = n
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Expr = e
			}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *Parser) parseWith() (*ast.With, error) {
	p.next() // WITH
	w := p.arena.with.get()
	w.Recursive = p.acceptKeyword("RECURSIVE")
	for {
		name, err := p.identLike("CTE name")
		if err != nil {
			return nil, err
		}
		cte := ast.CTE{Name: name}
		if p.accept(token.LParen) {
			for {
				col, err := p.identLike("CTE column")
				if err != nil {
					return nil, err
				}
				cte.Cols = append(cte.Cols, col)
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.RParen, "')'"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.LParen, "'('"); err != nil {
			return nil, err
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		cte.Select = inner
		w.CTEs = append(w.CTEs, cte)
		if !p.accept(token.Comma) {
			return w, nil
		}
	}
}

// parseSelectBody parses core (UNION [ALL] core)* left-associatively.
func (p *Parser) parseSelectBody() (ast.SelectBody, error) {
	left, err := p.parseSelectCoreOrParen()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("UNION") {
		p.next()
		op := "UNION"
		if p.acceptKeyword("ALL") {
			op = "UNION ALL"
		}
		right, err := p.parseSelectCoreOrParen()
		if err != nil {
			return nil, err
		}
		n := p.arena.setOp.get()
		*n = ast.SetOp{Op: op, Left: left, Right: right}
		left = n
	}
	return left, nil
}

func (p *Parser) parseSelectCoreOrParen() (ast.SelectBody, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.at(token.LParen) {
		// Parenthesized select body (no WITH/ORDER inside for simplicity).
		p.next()
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		return body, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*ast.SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := p.arena.core.get()
	if p.acceptKeyword("DISTINCT") {
		core.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.accept(token.Comma) {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	if p.at(token.Star) {
		p.next()
		return ast.SelectItem{Star: true}, nil
	}
	// table.* — lookahead: Ident Dot Star
	if (p.peek().Type == token.Ident || p.peek().Type == token.QuotedIdent) &&
		p.toks[p.pos+1].Type == token.Dot && p.toks[p.pos+2].Type == token.Star {
		t := p.next()
		p.next() // .
		p.next() // *
		return ast.SelectItem{Star: true, StarTable: t.Text}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.identLike("alias")
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.at(token.Ident) || p.at(token.QuotedIdent) {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseFrom() (ast.TableRef, error) {
	first, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	if !p.at(token.Comma) {
		return first, nil
	}
	list := p.arena.crossList.get()
	list.Items = append(list.Items, first)
	for p.accept(token.Comma) {
		next, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		list.Items = append(list.Items, next)
	}
	return list, nil
}

func (p *Parser) parseJoinChain() (ast.TableRef, error) {
	left, err := p.parseTableFactor()
	if err != nil {
		return nil, err
	}
	for {
		jt := ""
		switch {
		case p.atKeyword("JOIN"):
			p.next()
			jt = "INNER"
		case p.atKeyword("INNER"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = "INNER"
		case p.atKeyword("LEFT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = "LEFT"
		default:
			return left, nil
		}
		right, err := p.parseTableFactor()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n := p.arena.join.get()
		*n = ast.Join{Type: jt, Left: left, Right: right, On: on}
		left = n
	}
}

func (p *Parser) parseTableFactor() (ast.TableRef, error) {
	if p.at(token.LParen) {
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.identLike("subquery alias")
		if err != nil {
			return nil, err
		}
		n := p.arena.subqTable.get()
		n.Select, n.Alias = sel, alias
		return n, nil
	}
	name, err := p.identLike("table name")
	if err != nil {
		return nil, err
	}
	t := p.arena.baseTable.get()
	t.Name = name
	if p.acceptKeyword("AS") {
		alias, err := p.identLike("table alias")
		if err != nil {
			return nil, err
		}
		t.Alias = alias
	} else if p.at(token.Ident) || p.at(token.QuotedIdent) {
		t.Alias = p.next().Text
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// expressions (Pratt)

func (p *Parser) parseExpr() (ast.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *Parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = p.newBinary("OR", left, right)
	}
	return left, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = p.newBinary("AND", left, right)
	}
	return left, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.atKeyword("NOT") && !p.isNotExists() {
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		n := p.arena.unary.get()
		n.Op, n.Expr = "NOT", inner
		return n, nil
	}
	return p.parsePredicate()
}

// isNotExists reports whether the upcoming tokens are NOT EXISTS — handled
// in parsePredicate via the EXISTS path so keep NOT out of Unary there.
func (p *Parser) isNotExists() bool {
	return p.atKeyword("NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Type == token.Keyword && p.toks[p.pos+1].Text == "EXISTS"
}

// parsePredicate parses comparison-level expressions including IS NULL,
// BETWEEN, LIKE, IN and EXISTS.
func (p *Parser) parsePredicate() (ast.Expr, error) {
	if p.isNotExists() {
		p.next() // NOT
		return p.parseExists(true)
	}
	if p.atKeyword("EXISTS") {
		return p.parseExists(false)
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(token.Eq), p.at(token.Neq), p.at(token.Lt), p.at(token.Le), p.at(token.Gt), p.at(token.Ge):
			opTok := p.next()
			op := opTok.Text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = p.newBinary(op, left, right)
		case p.atKeyword("IS"):
			p.next()
			not := p.acceptKeyword("NOT")
			if !p.acceptKeyword("NULL") {
				return nil, p.errorf("expected NULL after IS, got %s", p.peek())
			}
			n := p.arena.isNull.get()
			n.Expr, n.Not = left, not
			left = n
		case p.atKeyword("BETWEEN"):
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			n := p.arena.between.get()
			*n = ast.Between{Expr: left, Lo: lo, Hi: hi}
			left = n
		case p.atKeyword("LIKE"):
			p.next()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			n := p.arena.like.get()
			n.Expr, n.Pattern = left, pat
			left = n
		case p.atKeyword("IN"):
			p.next()
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.atKeyword("NOT"):
			// NOT BETWEEN / NOT LIKE / NOT IN
			save := p.pos
			p.next()
			switch {
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				n := p.arena.between.get()
				*n = ast.Between{Expr: left, Lo: lo, Hi: hi, Not: true}
				left = n
			case p.acceptKeyword("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				n := p.arena.like.get()
				*n = ast.Like{Expr: left, Pattern: pat, Not: true}
				left = n
			case p.acceptKeyword("IN"):
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseExists(not bool) (ast.Expr, error) {
	p.next() // EXISTS
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	n := p.arena.exists.get()
	n.Select, n.Not = sel, not
	return n, nil
}

func (p *Parser) parseInTail(left ast.Expr, not bool) (ast.Expr, error) {
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	if p.atKeyword("SELECT") || p.atKeyword("WITH") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		n := p.arena.inSubq.get()
		*n = ast.InSubquery{Expr: left, Select: sel, Not: not}
		return n, nil
	}
	var items []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	n := p.arena.inList.get()
	*n = ast.InList{Expr: left, Items: items, Not: not}
	return n, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(token.Plus):
			op = "+"
		case p.at(token.Minus):
			op = "-"
		case p.at(token.Concat):
			op = "||"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = p.newBinary(op, left, right)
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(token.Star):
			op = "*"
		case p.at(token.Slash):
			op = "/"
		case p.at(token.Percent):
			op = "%"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = p.newBinary(op, left, right)
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.accept(token.Minus) {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*ast.Literal); ok {
			switch lit.Value.Kind() {
			case types.KindInt:
				return p.newLiteral(types.NewInt(-lit.Value.Int())), nil
			case types.KindFloat:
				return p.newLiteral(types.NewFloat(-lit.Value.Float())), nil
			}
		}
		n := p.arena.unary.get()
		n.Op, n.Expr = "-", inner
		return n, nil
	}
	p.accept(token.Plus)
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.Type {
	case token.Number:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return p.newLiteral(types.NewFloat(f)), nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return p.newLiteral(types.NewFloat(f)), nil
		}
		return p.newLiteral(types.NewInt(i)), nil
	case token.String:
		p.next()
		return p.newLiteral(types.NewText(t.Text)), nil
	case token.Param:
		p.next()
		e := p.arena.param.get()
		e.Index = p.params
		p.params++
		return e, nil
	case token.LParen:
		p.next()
		if p.atKeyword("SELECT") || p.atKeyword("WITH") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen, "')'"); err != nil {
				return nil, err
			}
			n := p.arena.scalarSub.get()
			n.Select = sel
			return n, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case token.Keyword:
		switch t.Text {
		case "NULL":
			p.next()
			return p.newLiteral(types.Null), nil
		case "TRUE":
			p.next()
			return p.newLiteral(types.NewBool(true)), nil
		case "FALSE":
			p.next()
			return p.newLiteral(types.NewBool(false)), nil
		case "CAST":
			return p.parseCast()
		case "CASE":
			return p.parseCase()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseAggregate()
		case "EXISTS", "NOT":
			// Route through parseNot so the NOT token is always consumed:
			// parsePredicate only strips NOT in the NOT EXISTS form, and
			// entering it with an unconsumed NOT recursed forever (the
			// seed parser overflowed the stack on e.g. "SELECT 1 + NOT 2").
			return p.parseNot()
		case "LEFT": // LEFT is reserved (joins) but also a common column name in the paper's schema.
			p.next()
			return p.maybeQualified("left")
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case token.Ident, token.QuotedIdent:
		p.next()
		// Function call?
		if p.at(token.LParen) {
			p.next()
			var args []ast.Expr
			if !p.at(token.RParen) {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, e)
					if !p.accept(token.Comma) {
						break
					}
				}
			}
			if _, err := p.expect(token.RParen, "')'"); err != nil {
				return nil, err
			}
			n := p.arena.funcCall.get()
			n.Name, n.Args = strings.ToLower(t.Text), args
			return n, nil
		}
		return p.maybeQualified(t.Text)
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

// maybeQualified handles ident[.ident] column references. "left"/"right"
// are keywords in the grammar but valid column names in the paper's
// schema, so they are accepted after a dot and as bare refs via callers.
func (p *Parser) maybeQualified(first string) (ast.Expr, error) {
	if !p.at(token.Dot) {
		return p.newColumnRef("", first), nil
	}
	p.next()
	t := p.peek()
	switch {
	case t.Type == token.Ident || t.Type == token.QuotedIdent:
		p.next()
		return p.newColumnRef(first, t.Text), nil
	case t.Type == token.Keyword && (t.Text == "LEFT" || t.Text == "DEFAULT" || t.Text == "KEY" || t.Text == "ALL"):
		// Allow a few keywords as column names when qualified.
		p.next()
		return p.newColumnRef(first, lowerKeyword(t.Text)), nil
	}
	return nil, p.errorf("expected column name after '.', got %s", t)
}

func (p *Parser) parseCast() (ast.Expr, error) {
	p.next() // CAST
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	tname, err := p.identLike("type name")
	if err != nil {
		return nil, err
	}
	size := 0
	if p.accept(token.LParen) {
		t, err := p.expect(token.Number, "type length")
		if err != nil {
			return nil, err
		}
		size, _ = strconv.Atoi(t.Text)
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
	}
	ct, err := types.ParseColumnType(tname, size)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	n := p.arena.cast.get()
	n.Expr, n.Type = e, ct
	return n, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	p.next() // CASE
	c := p.arena.caseExpr.get()
	if !p.atKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if !p.acceptKeyword("END") {
		return nil, p.errorf("expected END to close CASE, got %s", p.peek())
	}
	return c, nil
}

func (p *Parser) parseAggregate() (ast.Expr, error) {
	t := p.next() // COUNT/SUM/AVG/MIN/MAX
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	agg := p.arena.aggregate.get()
	agg.Func = t.Text
	if p.at(token.Star) {
		if t.Text != "COUNT" {
			return nil, p.errorf("%s(*) is not valid", t.Text)
		}
		p.next()
		agg.Star = true
	} else {
		if p.acceptKeyword("DISTINCT") {
			agg.Distinct = true
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	return agg, nil
}
