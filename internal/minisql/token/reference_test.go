package token

// This file preserves the original rune/unicode/strings.ToUpper lexer as a
// test-only reference. golden_test.go asserts the byte-scan lexer in
// token.go produces token-for-token identical output (and identical
// error/ok status) on the full corpus.

import (
	"fmt"
	"strings"
	"unicode"
)

type refLexer struct {
	src string
	pos int
}

func newRefLexer(src string) *refLexer { return &refLexer{src: src} }

func refIsKeyword(s string) bool {
	for _, kw := range keywordList {
		if kw == strings.ToUpper(s) {
			return true
		}
	}
	return false
}

func (l *refLexer) Next() (Token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Type: EOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case refIsDigit(c) || (c == '.' && l.pos+1 < len(l.src) && refIsDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case refIsIdentStart(c):
		return l.lexIdent()
	}
	l.pos++
	mk := func(t Type, text string) (Token, error) {
		return Token{Type: t, Text: text, Pos: start}, nil
	}
	switch c {
	case '(':
		return mk(LParen, "(")
	case ')':
		return mk(RParen, ")")
	case ',':
		return mk(Comma, ",")
	case ';':
		return mk(Semicolon, ";")
	case '.':
		return mk(Dot, ".")
	case '*':
		return mk(Star, "*")
	case '+':
		return mk(Plus, "+")
	case '-':
		if l.pos < len(l.src) && l.src[l.pos] == '-' { // -- comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			return l.Next()
		}
		return mk(Minus, "-")
	case '/':
		if l.pos < len(l.src) && l.src[l.pos] == '*' { // /* comment */
			end := strings.Index(l.src[l.pos:], "*/")
			if end < 0 {
				return Token{}, fmt.Errorf("sql: unterminated comment at offset %d", start)
			}
			l.pos += end + 2
			return l.Next()
		}
		return mk(Slash, "/")
	case '%':
		return mk(Percent, "%")
	case '?':
		return mk(Param, "?")
	case '|':
		if l.pos < len(l.src) && l.src[l.pos] == '|' {
			l.pos++
			return mk(Concat, "||")
		}
		return Token{}, fmt.Errorf("sql: unexpected '|' at offset %d", start)
	case '=':
		return mk(Eq, "=")
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return mk(Neq, "!=")
		}
		return Token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)
	case '<':
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '>':
				l.pos++
				return mk(Neq, "<>")
			case '=':
				l.pos++
				return mk(Le, "<=")
			}
		}
		return mk(Lt, "<")
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return mk(Ge, ">=")
		}
		return mk(Gt, ">")
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func (l *refLexer) All() ([]Token, error) {
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == EOF {
			return out, nil
		}
	}
}

func (l *refLexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *refLexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: String, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
}

func (l *refLexer) lexQuotedIdent() (Token, error) {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: QuotedIdent, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

func (l *refLexer) lexNumber() (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case refIsDigit(c):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				l.pos++
			}
		default:
			return Token{Type: Number, Text: l.src[start:l.pos], Pos: start}, nil
		}
		l.pos++
	}
	return Token{Type: Number, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *refLexer) lexIdent() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && refIsIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if refIsKeyword(text) {
		return Token{Type: Keyword, Text: strings.ToUpper(text), Pos: start}, nil
	}
	return Token{Type: Ident, Text: text, Pos: start}, nil
}

func refIsDigit(c byte) bool      { return c >= '0' && c <= '9' }
func refIsIdentStart(c byte) bool { return c == '_' || refIsLetter(c) }
func refIsIdentPart(c byte) bool {
	return c == '_' || c == '$' || refIsLetter(c) || refIsDigit(c)
}
func refIsLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
