package token

import "testing"

// benchMLE is the paper's Section 5.2 recursive multi-level expansion
// query — the heaviest statement the PDM workload tokenizes.
const benchMLE = `WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC", left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl) AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2`

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchMLE)))
	b.ReportAllocs()
	var toks []Token
	var err error
	for i := 0; i < b.N; i++ {
		toks, err = Tokenize(benchMLE, toks[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenizeCold measures the one-shot path (fresh output slice
// per statement), i.e. what a cache-missing server pays.
func BenchmarkTokenizeCold(b *testing.B) {
	b.SetBytes(int64(len(benchMLE)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewLexer(benchMLE).All(); err != nil {
			b.Fatal(err)
		}
	}
}
