// Package token defines the lexical tokens of the minisql dialect and a
// hand-written lexer producing them. The dialect covers the SQL:1999
// subset the PDM workload needs: DDL/DML, WITH RECURSIVE, set operations,
// joins, subqueries, aggregates, CAST and stored routine invocation.
//
// The lexer is a byte-scan state machine driven by [256]-entry class
// tables. Token texts are sub-slices of the source string (or static
// canonical spellings for keywords and operators), so tokenizing a
// statement performs no per-token heap work; the only allocations are
// the output slice and the rare string/quoted-identifier literal that
// actually contains a doubled-quote escape.
package token

import (
	"fmt"
	"strings"
)

// Type classifies a token.
type Type uint8

// Token types. Keywords share the Keyword type; the Lexer upper-cases
// their text so the parser can match on it directly.
const (
	EOF Type = iota
	Ident
	QuotedIdent // "Name" — case-preserved identifier
	Keyword
	Number
	String
	Param // ?
	// Operators and punctuation, one type each for cheap matching.
	LParen
	RParen
	Comma
	Semicolon
	Dot
	Star
	Plus
	Minus
	Slash
	Percent
	Concat // ||
	Eq     // =
	Neq    // <> or !=
	Lt
	Le
	Gt
	Ge
)

// Token is one lexical unit. Text holds the normalized spelling: keywords
// upper-case, identifiers as written (quoted identifiers without quotes),
// strings unescaped. Text shares the source string's backing array except
// for keywords/operators (static strings) and escaped literals.
type Token struct {
	Type Type
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	switch t.Type {
	case EOF:
		return "end of input"
	case String:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

// Byte-class bits for the [256] scan table.
const (
	clsSpace byte = 1 << iota
	clsDigit
	clsIdentStart
	clsIdentPart
)

var (
	charClass  [256]byte
	upperTable [256]byte // ASCII case folding; identity elsewhere
)

// keywordList holds the canonical (upper-case) spelling of every reserved
// word. Lookups match case-insensitively in place against length buckets;
// a hit returns the canonical string here, so keyword tokens never
// allocate and the parser can compare Text against these spellings.
var keywordList = [...]string{
	"SELECT", "FROM", "WHERE", "AND", "OR",
	"NOT", "AS", "JOIN", "ON", "INNER",
	"LEFT", "OUTER", "UNION", "ALL", "WITH",
	"RECURSIVE", "ORDER", "BY", "GROUP",
	"HAVING", "LIMIT", "OFFSET", "ASC", "DESC",
	"INSERT", "INTO", "VALUES", "UPDATE",
	"SET", "DELETE", "CREATE", "TABLE",
	"INDEX", "DROP", "PRIMARY", "KEY",
	"NULL", "TRUE", "FALSE", "IS", "IN",
	"EXISTS", "BETWEEN", "LIKE", "CAST",
	"DISTINCT", "CASE", "WHEN", "THEN",
	"ELSE", "END", "BEGIN", "COMMIT",
	"ROLLBACK", "CALL", "EXPLAIN", "UNIQUE",
	"DEFAULT", "COUNT", "SUM", "AVG", "MIN",
	"MAX", "IF", "TRANSACTION", "WORK",
}

const maxKeywordLen = len("TRANSACTION")

var keywordBuckets [maxKeywordLen + 1][]string

func init() {
	for i := range upperTable {
		upperTable[i] = byte(i)
	}
	for c := 'a'; c <= 'z'; c++ {
		upperTable[c] = byte(c) - 'a' + 'A'
	}
	// The seed lexer used unicode.IsSpace(rune(byte)), which also matched
	// the Latin-1 bytes NEL (0x85) and NBSP (0xA0); keep that behavior.
	for _, c := range []byte{'\t', '\n', '\v', '\f', '\r', ' ', 0x85, 0xA0} {
		charClass[c] |= clsSpace
	}
	for c := '0'; c <= '9'; c++ {
		charClass[c] |= clsDigit | clsIdentPart
	}
	for c := 'a'; c <= 'z'; c++ {
		charClass[c] |= clsIdentStart | clsIdentPart
	}
	for c := 'A'; c <= 'Z'; c++ {
		charClass[c] |= clsIdentStart | clsIdentPart
	}
	charClass['_'] |= clsIdentStart | clsIdentPart
	charClass['$'] |= clsIdentPart
	for _, kw := range keywordList {
		keywordBuckets[len(kw)] = append(keywordBuckets[len(kw)], kw)
	}
}

// canonKeyword matches s case-insensitively against the reserved words
// without allocating and returns the canonical upper-case spelling.
func canonKeyword(s string) (string, bool) {
	if len(s) >= len(keywordBuckets) {
		return "", false
	}
bucket:
	for _, kw := range keywordBuckets[len(s)] {
		for i := 0; i < len(s); i++ {
			if upperTable[s[i]] != kw[i] {
				continue bucket
			}
		}
		return kw, true
	}
	return "", false
}

// IsKeyword reports whether s (any case) is a reserved word.
func IsKeyword(s string) bool {
	_, ok := canonKeyword(s)
	return ok
}

// Lexer splits an SQL string into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	src := l.src
	// Skip whitespace and comments iteratively.
	for l.pos < len(src) {
		c := src[l.pos]
		if charClass[c]&clsSpace != 0 {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(src) && src[l.pos+1] == '-' { // -- comment
			l.pos += 2
			for l.pos < len(src) && src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == '/' && l.pos+1 < len(src) && src[l.pos+1] == '*' { // /* comment */
			// Search from the opening '*' itself, matching the seed lexer
			// (so "/*/" closes as an empty comment).
			end := strings.Index(src[l.pos+1:], "*/")
			if end < 0 {
				return Token{}, fmt.Errorf("sql: unterminated comment at offset %d", l.pos)
			}
			l.pos += 1 + end + 2
			continue
		}
		break
	}
	start := l.pos
	if start >= len(src) {
		return Token{Type: EOF, Pos: start}, nil
	}
	c := src[start]
	cls := charClass[c]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case cls&clsDigit != 0 || (c == '.' && start+1 < len(src) && charClass[src[start+1]]&clsDigit != 0):
		return l.lexNumber()
	case cls&clsIdentStart != 0:
		return l.lexIdent()
	}
	l.pos++
	mk := func(t Type, text string) (Token, error) {
		return Token{Type: t, Text: text, Pos: start}, nil
	}
	switch c {
	case '(':
		return mk(LParen, "(")
	case ')':
		return mk(RParen, ")")
	case ',':
		return mk(Comma, ",")
	case ';':
		return mk(Semicolon, ";")
	case '.':
		return mk(Dot, ".")
	case '*':
		return mk(Star, "*")
	case '+':
		return mk(Plus, "+")
	case '-':
		return mk(Minus, "-")
	case '/':
		return mk(Slash, "/")
	case '%':
		return mk(Percent, "%")
	case '?':
		return mk(Param, "?")
	case '|':
		if l.pos < len(src) && src[l.pos] == '|' {
			l.pos++
			return mk(Concat, "||")
		}
		return Token{}, fmt.Errorf("sql: unexpected '|' at offset %d", start)
	case '=':
		return mk(Eq, "=")
	case '!':
		if l.pos < len(src) && src[l.pos] == '=' {
			l.pos++
			return mk(Neq, "!=")
		}
		return Token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)
	case '<':
		if l.pos < len(src) {
			switch src[l.pos] {
			case '>':
				l.pos++
				return mk(Neq, "<>")
			case '=':
				l.pos++
				return mk(Le, "<=")
			}
		}
		return mk(Lt, "<")
	case '>':
		if l.pos < len(src) && src[l.pos] == '=' {
			l.pos++
			return mk(Ge, ">=")
		}
		return mk(Gt, ">")
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

// Tokenize appends src's tokens (terminated by the EOF token) to dst and
// returns the extended slice. Passing a previous result's dst[:0] reuses
// its capacity, making steady-state tokenization allocation-free.
func Tokenize(src string, dst []Token) ([]Token, error) {
	l := Lexer{src: src}
	if cap(dst) == 0 {
		dst = make([]Token, 0, len(src)/6+4)
	}
	for {
		t, err := l.Next()
		if err != nil {
			return dst, err
		}
		dst = append(dst, t)
		if t.Type == EOF {
			return dst, nil
		}
	}
}

// All tokenizes the whole input.
func (l *Lexer) All() ([]Token, error) {
	out := make([]Token, 0, (len(l.src)-l.pos)/6+4)
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) lexString() (Token, error) {
	src := l.src
	start := l.pos
	i := start + 1
	escaped := false
	for i < len(src) {
		if src[i] != '\'' {
			i++
			continue
		}
		if i+1 < len(src) && src[i+1] == '\'' { // '' escape
			escaped = true
			i += 2
			continue
		}
		l.pos = i + 1
		raw := src[start+1 : i]
		if !escaped {
			return Token{Type: String, Text: raw, Pos: start}, nil
		}
		return Token{Type: String, Text: unescape(raw, '\''), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
}

func (l *Lexer) lexQuotedIdent() (Token, error) {
	src := l.src
	start := l.pos
	i := start + 1
	escaped := false
	for i < len(src) {
		if src[i] != '"' {
			i++
			continue
		}
		if i+1 < len(src) && src[i+1] == '"' { // "" escape
			escaped = true
			i += 2
			continue
		}
		l.pos = i + 1
		raw := src[start+1 : i]
		if !escaped {
			return Token{Type: QuotedIdent, Text: raw, Pos: start}, nil
		}
		return Token{Type: QuotedIdent, Text: unescape(raw, '"'), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

// unescape collapses doubled quote characters in raw. Only called when at
// least one escape is present, so the allocation is pay-per-use.
func unescape(raw string, quote byte) string {
	var sb strings.Builder
	sb.Grow(len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		sb.WriteByte(c)
		if c == quote {
			i++ // skip the second quote of the pair
		}
	}
	return sb.String()
}

func (l *Lexer) lexNumber() (Token, error) {
	src := l.src
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(src) {
		c := src[l.pos]
		switch {
		case charClass[c]&clsDigit != 0:
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			if l.pos+1 < len(src) && (src[l.pos+1] == '+' || src[l.pos+1] == '-') {
				l.pos++
			}
		default:
			return Token{Type: Number, Text: src[start:l.pos], Pos: start}, nil
		}
		l.pos++
	}
	return Token{Type: Number, Text: src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexIdent() (Token, error) {
	src := l.src
	start := l.pos
	i := start + 1
	for i < len(src) && charClass[src[i]]&clsIdentPart != 0 {
		i++
	}
	l.pos = i
	text := src[start:i]
	if kw, ok := canonKeyword(text); ok {
		return Token{Type: Keyword, Text: kw, Pos: start}, nil
	}
	return Token{Type: Ident, Text: text, Pos: start}, nil
}
