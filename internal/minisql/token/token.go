// Package token defines the lexical tokens of the minisql dialect and a
// hand-written lexer producing them. The dialect covers the SQL:1999
// subset the PDM workload needs: DDL/DML, WITH RECURSIVE, set operations,
// joins, subqueries, aggregates, CAST and stored routine invocation.
package token

import (
	"fmt"
	"strings"
	"unicode"
)

// Type classifies a token.
type Type uint8

// Token types. Keywords share the Keyword type; the Lexer upper-cases
// their text so the parser can match on it directly.
const (
	EOF Type = iota
	Ident
	QuotedIdent // "Name" — case-preserved identifier
	Keyword
	Number
	String
	Param // ?
	// Operators and punctuation, one type each for cheap matching.
	LParen
	RParen
	Comma
	Semicolon
	Dot
	Star
	Plus
	Minus
	Slash
	Percent
	Concat // ||
	Eq     // =
	Neq    // <> or !=
	Lt
	Le
	Gt
	Ge
)

// Token is one lexical unit. Text holds the normalized spelling: keywords
// upper-case, identifiers as written (quoted identifiers without quotes),
// strings unescaped.
type Token struct {
	Type Type
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	switch t.Type {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords recognized by the dialect. Any identifier matching one of
// these (case-insensitively) lexes as a Keyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "JOIN": true, "ON": true, "INNER": true,
	"LEFT": true, "OUTER": true, "UNION": true, "ALL": true, "WITH": true,
	"RECURSIVE": true, "ORDER": true, "BY": true, "GROUP": true,
	"HAVING": true, "LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "DROP": true, "PRIMARY": true, "KEY": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"EXISTS": true, "BETWEEN": true, "LIKE": true, "CAST": true,
	"DISTINCT": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "CALL": true, "EXPLAIN": true, "UNIQUE": true,
	"DEFAULT": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "IF": true, "TRANSACTION": true, "WORK": true,
}

// IsKeyword reports whether s (any case) is a reserved word.
func IsKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// Lexer splits an SQL string into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Type: EOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	}
	l.pos++
	mk := func(t Type, text string) (Token, error) {
		return Token{Type: t, Text: text, Pos: start}, nil
	}
	switch c {
	case '(':
		return mk(LParen, "(")
	case ')':
		return mk(RParen, ")")
	case ',':
		return mk(Comma, ",")
	case ';':
		return mk(Semicolon, ";")
	case '.':
		return mk(Dot, ".")
	case '*':
		return mk(Star, "*")
	case '+':
		return mk(Plus, "+")
	case '-':
		if l.pos < len(l.src) && l.src[l.pos] == '-' { // -- comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			return l.Next()
		}
		return mk(Minus, "-")
	case '/':
		if l.pos < len(l.src) && l.src[l.pos] == '*' { // /* comment */
			end := strings.Index(l.src[l.pos:], "*/")
			if end < 0 {
				return Token{}, fmt.Errorf("sql: unterminated comment at offset %d", start)
			}
			l.pos += end + 2
			return l.Next()
		}
		return mk(Slash, "/")
	case '%':
		return mk(Percent, "%")
	case '?':
		return mk(Param, "?")
	case '|':
		if l.pos < len(l.src) && l.src[l.pos] == '|' {
			l.pos++
			return mk(Concat, "||")
		}
		return Token{}, fmt.Errorf("sql: unexpected '|' at offset %d", start)
	case '=':
		return mk(Eq, "=")
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return mk(Neq, "!=")
		}
		return Token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)
	case '<':
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '>':
				l.pos++
				return mk(Neq, "<>")
			case '=':
				l.pos++
				return mk(Le, "<=")
			}
		}
		return mk(Lt, "<")
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return mk(Ge, ">=")
		}
		return mk(Gt, ">")
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

// All tokenizes the whole input.
func (l *Lexer) All() ([]Token, error) {
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *Lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: String, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
}

func (l *Lexer) lexQuotedIdent() (Token, error) {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: QuotedIdent, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				l.pos++
			}
		default:
			return Token{Type: Number, Text: l.src[start:l.pos], Pos: start}, nil
		}
		l.pos++
	}
	return Token{Type: Number, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexIdent() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if IsKeyword(text) {
		return Token{Type: Keyword, Text: strings.ToUpper(text), Pos: start}, nil
	}
	return Token{Type: Ident, Text: text, Pos: start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || isLetter(c) }
func isIdentPart(c byte) bool  { return c == '_' || c == '$' || isLetter(c) || isDigit(c) }
func isLetter(c byte) bool     { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
