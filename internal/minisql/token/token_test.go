package token

import (
	"strings"
	"testing"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := NewLexer(src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks[:len(toks)-1] // strip EOF
}

func TestKeywordsAreCaseInsensitive(t *testing.T) {
	for _, src := range []string{"select", "SELECT", "SeLeCt"} {
		toks := lex(t, src)
		if len(toks) != 1 || toks[0].Type != Keyword || toks[0].Text != "SELECT" {
			t.Errorf("%q lexed to %v", src, toks)
		}
	}
	toks := lex(t, "my_table")
	if toks[0].Type != Ident || toks[0].Text != "my_table" {
		t.Errorf("identifier lexed to %v", toks[0])
	}
}

func TestOperators(t *testing.T) {
	src := "= <> != < <= > >= + - * / % || ( ) , ; . ?"
	want := []Type{Eq, Neq, Neq, Lt, Le, Gt, Ge, Plus, Minus, Star, Slash,
		Percent, Concat, LParen, RParen, Comma, Semicolon, Dot, Param}
	toks := lex(t, src)
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Type != w {
			t.Errorf("token %d (%s) has type %d, want %d", i, toks[i].Text, toks[i].Type, w)
		}
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks := lex(t, "'it''s' 'a'")
	if toks[0].Type != String || toks[0].Text != "it's" {
		t.Errorf("escaped string = %v", toks[0])
	}
	if toks[1].Text != "a" {
		t.Errorf("second string = %v", toks[1])
	}
	if _, err := NewLexer("'unterminated").All(); err == nil {
		t.Error("unterminated string must fail")
	}
}

func TestQuotedIdent(t *testing.T) {
	toks := lex(t, `"EFF_FROM" "with""quote"`)
	if toks[0].Type != QuotedIdent || toks[0].Text != "EFF_FROM" {
		t.Errorf("quoted ident = %v", toks[0])
	}
	if toks[1].Text != `with"quote` {
		t.Errorf("escaped quoted ident = %v", toks[1])
	}
	if _, err := NewLexer(`"open`).All(); err == nil {
		t.Error("unterminated quoted identifier must fail")
	}
}

func TestNumbers(t *testing.T) {
	toks := lex(t, "42 3.14 .5 1e3 2.5E-2")
	want := []string{"42", "3.14", ".5", "1e3", "2.5E-2"}
	for i, w := range want {
		if toks[i].Type != Number || toks[i].Text != w {
			t.Errorf("number %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	toks := lex(t, "SELECT -- line comment\n 1 /* block\ncomment */ + 2")
	texts := make([]string, len(toks))
	for i, tok := range toks {
		texts[i] = tok.Text
	}
	if strings.Join(texts, " ") != "SELECT 1 + 2" {
		t.Errorf("comments not skipped: %v", texts)
	}
	if _, err := NewLexer("/* open").All(); err == nil {
		t.Error("unterminated block comment must fail")
	}
}

func TestPaperQueryLexes(t *testing.T) {
	// The Section 5.2 query header must tokenize cleanly.
	src := `WITH RECURSIVE rtbl (type, obid, name, dec) AS
	 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1)`
	toks := lex(t, src)
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
	if toks[0].Text != "WITH" || toks[1].Text != "RECURSIVE" {
		t.Errorf("prefix = %v %v", toks[0], toks[1])
	}
}

func TestBadCharacters(t *testing.T) {
	for _, src := range []string{"a @ b", "x | y", "!x"} {
		if _, err := NewLexer(src).All(); err == nil {
			t.Errorf("%q should fail to lex", src)
		}
	}
}

func TestPositionsForErrors(t *testing.T) {
	l := NewLexer("SELECT\n  foo")
	tok, err := l.Next()
	if err != nil || tok.Pos != 0 {
		t.Fatalf("first token pos = %d (%v)", tok.Pos, err)
	}
	tok, err = l.Next()
	if err != nil || tok.Pos != 9 {
		t.Errorf("second token pos = %d (%v), want 9", tok.Pos, err)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("UNION") {
		t.Error("reserved words not recognized")
	}
	if IsKeyword("obid") || IsKeyword("assy") {
		t.Error("ordinary identifiers misclassified")
	}
}
