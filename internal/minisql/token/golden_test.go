package token

import (
	"math/rand"
	"testing"
)

// goldenCorpus covers every token kind, comment form, escape, error path
// and whitespace quirk of the dialect. golden_test asserts the byte-scan
// lexer and the seed reference lexer agree token-for-token on all of it.
var goldenCorpus = []string{
	"",
	"   \t\n\v\f\r  ",
	"\x85\xa0 SELECT \x85 1 \xa0",
	"SELECT * FROM t",
	"select name, obid from assy where dec = 'released'",
	"SeLeCt CoUnT(*) FrOm AsSy GrOuP bY tYpE hAvInG cOuNt(*) > 2",
	"WITH RECURSIVE rtbl (a) AS (SELECT 1 UNION SELECT a + 1 FROM rtbl) SELECT * FROM rtbl",
	"INSERT INTO t (a, b) VALUES (?, ?), (3, 'x')",
	"UPDATE t SET a = a + 1 WHERE b IS NOT NULL",
	"DELETE FROM t WHERE a BETWEEN 1 AND 10 OR b LIKE 'x%'",
	"CREATE TABLE t (id integer PRIMARY KEY, name text DEFAULT 'n')",
	"CREATE UNIQUE INDEX i ON t (a, b)",
	"DROP TABLE t; BEGIN; COMMIT; ROLLBACK WORK",
	"CALL expand(1, 2); EXPLAIN SELECT 1",
	"SELECT \"Name\", \"quoted \"\" ident\", 'it''s', '' FROM \"T\"",
	"SELECT .5, 1e3, 2.5E-2, 1e+9, 7., 0.0.0, 1e, 5e-",
	"SELECT a || b, a != b, a <> b, a <= b, a >= b, a < b > c, a % b / c",
	"SELECT CASE WHEN a = 1 THEN 'one' ELSE cast(a AS text) END FROM t",
	"x -- line comment\ny",
	"x --",
	"a /* block\n comment */ b",
	"a /**/ b",
	"a /*/ b",     // seed quirk: the '*' both opens and closes
	"a /* b",      // unterminated comment
	"'open",       // unterminated string
	"\"open",      // unterminated quoted ident
	"'a''",        // escape then unterminated
	"a @ b",       // bad character
	"x | y",       // lone pipe
	"!x",          // lone bang
	"caf\xc3\xa9", // non-ASCII ident bytes are errors in both lexers
	"_under $notstart a$b a1_2$",
	"left LEFT key WORK default TRANSACTION if",
	"?+?-?*?/?%?",
	"((()))..,,;;**",
	"1.2.3 .5.6 9..8",
}

func lexAllNew(src string) ([]Token, error) { return NewLexer(src).All() }
func lexAllRef(src string) ([]Token, error) { return newRefLexer(src).All() }

func compareLexers(t *testing.T, src string) {
	t.Helper()
	got, gotErr := lexAllNew(src)
	want, wantErr := lexAllRef(src)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("lexer error status diverged on %q:\n  new: %v\n  ref: %v", src, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("lexer error text diverged on %q:\n  new: %v\n  ref: %v", src, gotErr, wantErr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("token count diverged on %q: new %d, ref %d", src, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged on %q:\n  new: %v (type %d pos %d)\n  ref: %v (type %d pos %d)",
				i, src, got[i], got[i].Type, got[i].Pos, want[i], want[i].Type, want[i].Pos)
		}
	}
}

func TestGoldenAgainstReferenceLexer(t *testing.T) {
	for _, src := range goldenCorpus {
		compareLexers(t, src)
	}
}

// TestGoldenMutations fuzzes the byte-scan lexer against the reference:
// random byte mutations of the corpus must produce identical token
// streams or identical errors, and must never panic or read out of
// bounds. Deterministic seed so failures reproduce.
func TestGoldenMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	interesting := []byte{0, ' ', '\n', '\'', '"', '-', '/', '*', '|', '!', '<', '>', '=', '.', 'e', 'E', '$', '_', '9', 0x7f, 0x85, 0xa0, 0xff}
	for round := 0; round < 4000; round++ {
		src := goldenCorpus[rng.Intn(len(goldenCorpus))]
		if len(src) == 0 {
			continue
		}
		b := []byte(src)
		for n := rng.Intn(3) + 1; n > 0; n-- {
			pos := rng.Intn(len(b))
			if rng.Intn(2) == 0 {
				b[pos] = interesting[rng.Intn(len(interesting))]
			} else {
				b[pos] = byte(rng.Intn(256))
			}
		}
		compareLexers(t, string(b))
	}
}

func TestTokenizeReusesCapacity(t *testing.T) {
	first, err := Tokenize("SELECT a FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Tokenize("SELECT b FROM u WHERE x = 1", first[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(second) == 0 || second[len(second)-1].Type != EOF {
		t.Fatalf("Tokenize reuse produced bad stream: %v", second)
	}
	want, _ := lexAllRef("SELECT b FROM u WHERE x = 1")
	for i := range want {
		if second[i] != want[i] {
			t.Fatalf("reused-buffer token %d = %v, want %v", i, second[i], want[i])
		}
	}
}
