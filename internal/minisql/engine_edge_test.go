package minisql

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"pdmtune/internal/minisql/types"
)

// Error-path coverage: the engine must fail loudly and precisely, never
// silently return wrong data.

func TestErrorUnknownTableAndColumn(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	for _, q := range []string{
		"SELECT * FROM missing",
		"SELECT nope FROM t",
		"SELECT t.nope FROM t",
		"SELECT a FROM t WHERE missing.a = 1",
		"INSERT INTO missing VALUES (1)",
		"INSERT INTO t (nope) VALUES (1)",
		"UPDATE t SET nope = 1",
		"UPDATE missing SET a = 1",
		"DELETE FROM missing",
		"CREATE INDEX i ON missing (a)",
		"CREATE INDEX i ON t (nope)",
		"DROP TABLE missing",
		"CALL nope()",
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("%q must fail", q)
		}
	}
}

func TestErrorAmbiguousColumn(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE a (x INTEGER)")
	mustExec(t, s, "CREATE TABLE b (x INTEGER)")
	mustExec(t, s, "INSERT INTO a VALUES (1)")
	mustExec(t, s, "INSERT INTO b VALUES (1)")
	if _, err := s.Exec("SELECT x FROM a JOIN b ON a.x = b.x"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous reference must fail, got %v", err)
	}
}

func TestErrorScalarSubqueryCardinality(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2)")
	if _, err := s.Exec("SELECT (SELECT a FROM t)"); err == nil {
		t.Error("scalar subquery with two rows must fail")
	}
	if _, err := s.Exec("SELECT (SELECT a, a FROM t)"); err == nil {
		t.Error("scalar subquery with two columns must fail")
	}
}

func TestErrorUnionArity(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Exec("SELECT 1 UNION SELECT 1, 2"); err == nil {
		t.Error("UNION arity mismatch must fail")
	}
}

func TestErrorOrderLimit(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	if _, err := s.Exec("SELECT a FROM t ORDER BY 2"); err == nil {
		t.Error("ORDER BY beyond output columns must fail")
	}
	if _, err := s.Exec("SELECT a FROM t LIMIT -1"); err == nil {
		t.Error("negative LIMIT must fail")
	}
	if _, err := s.Exec("SELECT a FROM t LIMIT 'x'"); err == nil {
		t.Error("non-integer LIMIT must fail")
	}
}

func TestErrorRecursiveCTEShape(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE e (a INTEGER)")
	// No seed branch.
	if _, err := s.Exec("WITH RECURSIVE r (n) AS (SELECT n FROM r) SELECT * FROM r"); err == nil {
		t.Error("recursive CTE without seed must fail")
	}
	// ORDER BY inside the recursive CTE.
	if _, err := s.Exec("WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT n + 1 FROM r ORDER BY 1) SELECT * FROM r"); err == nil {
		t.Error("ORDER BY inside recursive CTE must fail")
	}
	// Arity mismatch between CTE columns and the query.
	if _, err := s.Exec("WITH r (a, b) AS (SELECT 1) SELECT * FROM r"); err == nil {
		t.Error("CTE column arity mismatch must fail")
	}
}

func TestErrorAggregateMisuse(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER, s TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'x')")
	if _, err := s.Exec("SELECT SUM(s) FROM t"); err == nil {
		t.Error("SUM over text must fail")
	}
	if _, err := s.Exec("SELECT a FROM t WHERE COUNT(*) > 1"); err == nil {
		t.Error("aggregate in WHERE must fail")
	}
}

func TestErrorTypeMismatches(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER, s TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'x')")
	if _, err := s.Exec("SELECT a + s FROM t"); err == nil {
		t.Error("int + text must fail")
	}
	if _, err := s.Exec("SELECT a FROM t WHERE a > 'x'"); err == nil {
		t.Error("int > text comparison must fail")
	}
	if _, err := s.Exec("SELECT CAST('nope' AS INTEGER)"); err == nil {
		t.Error("bad cast must fail")
	}
}

func TestNestedCTEs(t *testing.T) {
	s := newTestSession(t)
	res := mustExec(t, s, `WITH a AS (SELECT 1 AS x), b AS (SELECT x + 1 AS y FROM a)
		SELECT y FROM b`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("chained CTEs = %s", res.Rows[0][0])
	}
	// Shadowing: a CTE hides a real table of the same name.
	mustExec(t, s, "CREATE TABLE real_t (v INTEGER)")
	mustExec(t, s, "INSERT INTO real_t VALUES (100)")
	res = mustExec(t, s, "WITH real_t AS (SELECT 1 AS v) SELECT v FROM real_t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("CTE must shadow the stored table, got %s", res.Rows[0][0])
	}
	// After the query the table is visible again.
	res = mustExec(t, s, "SELECT v FROM real_t")
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("table binding not restored, got %s", res.Rows[0][0])
	}
}

func TestDerivedTable(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2), (3)")
	res := mustExec(t, s, "SELECT v.m FROM (SELECT MAX(a) AS m FROM t) AS v")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("derived table = %s", res.Rows[0][0])
	}
}

func TestInsertFromSelectExecutes(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE src (a INTEGER)")
	mustExec(t, s, "CREATE TABLE dst (a INTEGER)")
	mustExec(t, s, "INSERT INTO src VALUES (1), (2)")
	res := mustExec(t, s, "INSERT INTO dst SELECT a + 10 FROM src")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT SUM(a) FROM dst")
	if res.Rows[0][0].Int() != 23 {
		t.Fatalf("sum = %s", res.Rows[0][0])
	}
}

func TestGroupByExpression(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2), (3), (4)")
	res := mustExec(t, s, "SELECT a % 2, COUNT(*) FROM t GROUP BY a % 2 ORDER BY 1")
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "0|2" || got[1] != "1|2" {
		t.Fatalf("group by expr = %v", got)
	}
}

func TestExplainRecursive(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE link (left INTEGER, right INTEGER)")
	res := mustExec(t, s, `EXPLAIN WITH RECURSIVE r (n) AS (
		SELECT 1 UNION SELECT link.right FROM r JOIN link ON r.n = link.left
	) SELECT * FROM r`)
	plan := ""
	for _, row := range res.Rows {
		plan += row[0].Text() + "\n"
	}
	if !strings.Contains(plan, "RECURSIVE CTE") || !strings.Contains(plan, "SCAN link") {
		t.Errorf("plan lacks structure:\n%s", plan)
	}
}

// TestLikeMatchesRegexpProperty: LIKE agrees with the equivalent regexp
// on random inputs over a small alphabet.
func TestLikeMatchesRegexpProperty(t *testing.T) {
	s := newTestSession(t)
	toRegexp := func(pattern string) *regexp.Regexp {
		var sb strings.Builder
		sb.WriteString("(?s)^")
		for _, r := range pattern {
			switch r {
			case '%':
				sb.WriteString(".*")
			case '_':
				sb.WriteString(".")
			default:
				sb.WriteString(regexp.QuoteMeta(string(r)))
			}
		}
		sb.WriteString("$")
		return regexp.MustCompile(sb.String())
	}
	alphabet := []byte("ab%_")
	small := func(n uint8, len int) string {
		out := make([]byte, len)
		v := int(n)
		for i := range out {
			out[i] = alphabet[v%len]
			v /= 3
		}
		return string(out)
	}
	_ = small
	f := func(pat, str uint32) bool {
		mk := func(v uint32, allowWild bool) string {
			chars := "ab"
			if allowWild {
				chars = "ab%_"
			}
			out := []byte{}
			for i := 0; i < 6; i++ {
				out = append(out, chars[int(v)%len(chars)])
				v /= uint32(len(chars))
			}
			return string(out)
		}
		p := mk(pat, true)
		str2 := mk(str, false)
		res, err := s.Exec("SELECT CASE WHEN ? LIKE ? THEN 1 ELSE 0 END",
			types.NewText(str2), types.NewText(p))
		if err != nil {
			return false
		}
		want := int64(0)
		if toRegexp(p).MatchString(str2) {
			want = 1
		}
		return res.Rows[0][0].Int() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoredProcedureRoundTrip(t *testing.T) {
	db := NewDB()
	db.RegisterProc("add_one", func(s *Session, args []Value) (*Result, error) {
		return &Result{
			Cols: []string{"v"},
			Rows: []Row{{types.NewInt(args[0].Int() + 1)}},
		}, nil
	})
	s := db.NewSession()
	res := mustExec(t, s, "CALL add_one(41)")
	if res.Rows[0][0].Int() != 42 {
		t.Fatalf("proc result = %s", res.Rows[0][0])
	}
}

func TestUserRegisteredFunction(t *testing.T) {
	db := NewDB()
	db.RegisterFunc("twice", func(args []Value) (Value, error) {
		return types.NewInt(args[0].Int() * 2), nil
	})
	s := db.NewSession()
	res := mustExec(t, s, "SELECT twice(21)")
	if res.Rows[0][0].Int() != 42 {
		t.Fatalf("twice(21) = %s", res.Rows[0][0])
	}
}

func TestLeftJoinWithResidualCondition(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE a (id INTEGER)")
	mustExec(t, s, "CREATE TABLE b (aid INTEGER, flag INTEGER)")
	mustExec(t, s, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, s, "INSERT INTO b VALUES (1, 0), (2, 1)")
	// Row 1 joins but fails the residual flag condition -> NULL-padded.
	res := mustExec(t, s, "SELECT a.id, b.flag FROM a LEFT JOIN b ON a.id = b.aid AND b.flag = 1 ORDER BY 1")
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "1|NULL" || got[1] != "2|1" {
		t.Fatalf("left join residual = %v", got)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2), (3)")
	res := mustExec(t, s, "SELECT COUNT(*) FROM t AS x JOIN t AS y ON x.a = y.a")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("self join count = %s", res.Rows[0][0])
	}
}
