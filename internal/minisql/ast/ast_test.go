package ast

import (
	"testing"

	"pdmtune/internal/minisql/types"
)

func lit(i int64) Expr     { return &Literal{Value: types.NewInt(i)} }
func col(t, c string) Expr { return &ColumnRef{Table: t, Column: c} }
func text(s string) Expr   { return &Literal{Value: types.NewText(s)} }

func TestAndWhere(t *testing.T) {
	if AndWhere(nil, nil) != nil {
		t.Error("nil AND nil must be nil")
	}
	e := lit(1)
	if AndWhere(nil, e) != e {
		t.Error("nil AND e must be e")
	}
	if AndWhere(e, nil) != e {
		t.Error("e AND nil must be e")
	}
	combined := AndWhere(col("", "a"), col("", "b"))
	if combined.String() != "(a AND b)" {
		t.Errorf("combined = %s", combined)
	}
}

func TestOrAll(t *testing.T) {
	if OrAll(nil) != nil {
		t.Error("empty disjunction must be nil")
	}
	one := OrAll([]Expr{col("", "a")})
	if one.String() != "a" {
		t.Errorf("single = %s", one)
	}
	three := OrAll([]Expr{col("", "a"), col("", "b"), col("", "c")})
	if three.String() != "((a OR b) OR c)" {
		t.Errorf("three = %s", three)
	}
}

func TestStatementPrinters(t *testing.T) {
	cases := []struct {
		stmt Statement
		want string
	}{
		{&Begin{}, "BEGIN"},
		{&Commit{}, "COMMIT"},
		{&Rollback{}, "ROLLBACK"},
		{&DropTable{Name: "t"}, "DROP TABLE t"},
		{&DropTable{Name: "t", IfExists: true}, "DROP TABLE IF EXISTS t"},
		{&Call{Proc: "p", Args: []Expr{lit(1), text("x")}}, "CALL p(1, 'x')"},
		{&CreateIndex{Name: "i", Table: "t", Column: "c"}, "CREATE INDEX i ON t (c)"},
		{&CreateIndex{Name: "i", Table: "t", Column: "c", Unique: true, IfNotExists: true},
			"CREATE UNIQUE INDEX IF NOT EXISTS i ON t (c)"},
		{&Delete{Table: "t", Where: lit(1)}, "DELETE FROM t WHERE 1"},
		{&Update{Table: "t", Set: []Assignment{{Column: "a", Value: lit(2)}}},
			"UPDATE t SET a = 2"},
	}
	for _, c := range cases {
		if got := c.stmt.String(); got != c.want {
			t.Errorf("%T = %q, want %q", c.stmt, got, c.want)
		}
	}
}

func TestExplainPrinter(t *testing.T) {
	e := &Explain{Stmt: &Begin{}}
	if e.String() != "EXPLAIN BEGIN" {
		t.Errorf("explain = %s", e)
	}
}

func TestSelectPrinterParts(t *testing.T) {
	sel := &Select{
		With: &With{Recursive: true, CTEs: []CTE{{
			Name: "r", Cols: []string{"n"},
			Select: &Select{Body: &SelectCore{Items: []SelectItem{{Expr: lit(1)}}}},
		}}},
		Body: &SelectCore{
			Distinct: true,
			Items:    []SelectItem{{Star: true, StarTable: "t"}},
			From:     &CrossList{Items: []TableRef{&BaseTable{Name: "t"}, &BaseTable{Name: "u", Alias: "v"}}},
			Where:    &Binary{Op: "=", Left: col("t", "a"), Right: col("v", "b")},
			GroupBy:  []Expr{col("t", "a")},
			Having:   &Binary{Op: ">", Left: &Aggregate{Func: "COUNT", Star: true}, Right: lit(1)},
		},
		OrderBy: []OrderItem{{Position: 1, Desc: true}, {Expr: col("t", "a")}},
		Limit:   lit(5),
		Offset:  lit(2),
	}
	want := `WITH RECURSIVE r (n) AS (SELECT 1) SELECT DISTINCT t.* FROM t, u AS v ` +
		`WHERE (t.a = v.b) GROUP BY t.a HAVING (COUNT(*) > 1) ORDER BY 1 DESC, t.a LIMIT 5 OFFSET 2`
	if got := sel.String(); got != want {
		t.Errorf("select printer:\n got %s\nwant %s", got, want)
	}
}

func TestExprPrinters(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Param{}, "?"},
		{&Unary{Op: "-", Expr: col("", "a")}, "(-a)"},
		{&IsNull{Expr: col("", "a"), Not: true}, "(a IS NOT NULL)"},
		{&Between{Expr: col("", "a"), Lo: lit(1), Hi: lit(2), Not: true}, "(a NOT BETWEEN 1 AND 2)"},
		{&Like{Expr: col("", "a"), Pattern: text("x%"), Not: true}, "(a NOT LIKE 'x%')"},
		{&InList{Expr: col("", "a"), Items: []Expr{lit(1), lit(2)}, Not: true}, "(a NOT IN (1, 2))"},
		{&Cast{Expr: lit(1), Type: types.ColumnType{Kind: types.KindText, Size: 5}}, "CAST(1 AS VARCHAR(5))"},
		{&FuncCall{Name: "f", Args: []Expr{lit(1)}}, "f(1)"},
		{&Aggregate{Func: "SUM", Distinct: true, Arg: col("", "a")}, "SUM(DISTINCT a)"},
		{&Case{Operand: col("", "a"), Whens: []When{{Cond: lit(1), Result: text("x")}}, Else: text("y")},
			"CASE a WHEN 1 THEN 'x' ELSE 'y' END"},
		{&Literal{Value: types.NewText("o'x")}, "'o''x'"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%T = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestInsertPrinter(t *testing.T) {
	ins := &Insert{Table: "t", Cols: []string{"a"}, Rows: [][]Expr{{lit(1)}, {lit(2)}}}
	if got := ins.String(); got != "INSERT INTO t (a) VALUES (1), (2)" {
		t.Errorf("insert = %s", got)
	}
	sel := &Insert{Table: "t", Select: &Select{Body: &SelectCore{Items: []SelectItem{{Star: true}}, From: &BaseTable{Name: "u"}}}}
	if got := sel.String(); got != "INSERT INTO t SELECT * FROM u" {
		t.Errorf("insert-select = %s", got)
	}
}

func TestSubqueryTablePrinter(t *testing.T) {
	st := &SubqueryTable{
		Select: &Select{Body: &SelectCore{Items: []SelectItem{{Expr: lit(1), Alias: "x"}}}},
		Alias:  "v",
	}
	if got := st.String(); got != `(SELECT 1 AS "x") AS v` {
		t.Errorf("subquery table = %s", got)
	}
}
