// Package ast defines the abstract syntax tree of the minisql dialect.
// Every node renders back to parseable SQL via String(), which the PDM
// query modificator relies on: it edits query trees (appending rule
// predicates, wrapping subqueries) and ships the serialized text to the
// database server.
package ast

import (
	"strings"

	"pdmtune/internal/minisql/types"
)

// Statement is any top-level SQL statement.
type Statement interface {
	String() string
	stmt()
}

// Expr is any scalar or predicate expression.
type Expr interface {
	String() string
	expr()
}

// TableRef is an entry in a FROM clause.
type TableRef interface {
	String() string
	tableRef()
}

// ---------------------------------------------------------------------------
// Statements

// CreateTable is CREATE TABLE name (col type [NOT NULL] [PRIMARY KEY], ...).
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	IfNotExists bool
}

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       types.ColumnType
	NotNull    bool
	PrimaryKey bool
	Default    Expr // nil if absent
}

func (s *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Name)
	sb.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name + " " + c.Type.String())
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.Default != nil {
			sb.WriteString(" DEFAULT " + c.Default.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// CreateIndex is CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table (col).
type CreateIndex struct {
	Name        string
	Table       string
	Column      string
	Unique      bool
	IfNotExists bool
}

func (s *CreateIndex) String() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	ine := ""
	if s.IfNotExists {
		ine = "IF NOT EXISTS "
	}
	return "CREATE " + u + "INDEX " + ine + s.Name + " ON " + s.Table + " (" + s.Column + ")"
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (s *DropTable) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Name
	}
	return "DROP TABLE " + s.Name
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...) | INSERT INTO table [(cols)] select.
type Insert struct {
	Table  string
	Cols   []string
	Rows   [][]Expr
	Select *Select // alternative to Rows
}

func (s *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + s.Table)
	if len(s.Cols) > 0 {
		sb.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	if s.Select != nil {
		sb.WriteString(" " + s.Select.String())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Update is UPDATE table SET col = expr, ... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Value  Expr
}

func (s *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column + " = " + a.Value.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	return sb.String()
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Begin / Commit / Rollback control transactions.
type Begin struct{}

func (*Begin) String() string { return "BEGIN" }

// Commit ends a transaction, making its effects durable.
type Commit struct{}

func (*Commit) String() string { return "COMMIT" }

// Rollback ends a transaction, undoing its effects.
type Rollback struct{}

func (*Rollback) String() string { return "ROLLBACK" }

// Call is CALL proc(arg, ...), invoking a server-side stored procedure.
type Call struct {
	Proc string
	Args []Expr
}

func (s *Call) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	return "CALL " + s.Proc + "(" + strings.Join(args, ", ") + ")"
}

// Explain wraps a statement to return its plan instead of executing it.
type Explain struct {
	Stmt Statement
}

func (s *Explain) String() string { return "EXPLAIN " + s.Stmt.String() }

// Select is a full query: optional WITH clause, a set-operation body and
// outer ORDER BY / LIMIT.
type Select struct {
	With    *With
	Body    SelectBody
	OrderBy []OrderItem
	Limit   Expr // nil if absent
	Offset  Expr // nil if absent
}

// With is WITH [RECURSIVE] cte [, cte...].
type With struct {
	Recursive bool
	CTEs      []CTE
}

// CTE is name (cols) AS (select).
type CTE struct {
	Name   string
	Cols   []string
	Select *Select
}

// SelectBody is either a SelectCore or a set operation combining two bodies.
type SelectBody interface {
	String() string
	selectBody()
}

// SetOp combines two select bodies with UNION / UNION ALL.
type SetOp struct {
	Op    string // "UNION" | "UNION ALL"
	Left  SelectBody
	Right SelectBody
}

func (s *SetOp) String() string {
	return s.Left.String() + " " + s.Op + " " + s.Right.String()
}
func (*SetOp) selectBody() {}

// SelectCore is one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil means no FROM (constant select)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

// SelectItem is one projection: expression with optional alias, or a star.
type SelectItem struct {
	Star      bool   // SELECT * or table.*
	StarTable string // qualifier for table.*; empty for bare *
	Expr      Expr
	Alias     string
}

func (s *SelectCore) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			sb.WriteString(it.StarTable + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS \"" + it.Alias + "\"")
			}
		}
	}
	if s.From != nil {
		sb.WriteString(" FROM " + s.From.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	return sb.String()
}
func (*SelectCore) selectBody() {}

// OrderItem is one ORDER BY entry; Position > 0 means positional form.
type OrderItem struct {
	Expr     Expr
	Position int
	Desc     bool
}

func (s *Select) String() string {
	var sb strings.Builder
	if s.With != nil {
		sb.WriteString("WITH ")
		if s.With.Recursive {
			sb.WriteString("RECURSIVE ")
		}
		for i, cte := range s.With.CTEs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(cte.Name)
			if len(cte.Cols) > 0 {
				sb.WriteString(" (" + strings.Join(cte.Cols, ", ") + ")")
			}
			sb.WriteString(" AS (" + cte.Select.String() + ")")
		}
		sb.WriteString(" ")
	}
	sb.WriteString(s.Body.String())
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			if o.Position > 0 {
				sb.WriteString(itoa(o.Position))
			} else {
				sb.WriteString(o.Expr.String())
			}
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT " + s.Limit.String())
	}
	if s.Offset != nil {
		sb.WriteString(" OFFSET " + s.Offset.String())
	}
	return sb.String()
}

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Select) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}
func (*Call) stmt()        {}
func (*Explain) stmt()     {}

// ---------------------------------------------------------------------------
// Table references

// BaseTable is a named table with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

func (t *BaseTable) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}
func (*BaseTable) tableRef() {}

// Join is left JOIN right ON cond. Type is "INNER" or "LEFT".
type Join struct {
	Type  string
	Left  TableRef
	Right TableRef
	On    Expr
}

func (t *Join) String() string {
	kw := "JOIN"
	if t.Type == "LEFT" {
		kw = "LEFT JOIN"
	}
	return t.Left.String() + " " + kw + " " + t.Right.String() + " ON " + t.On.String()
}
func (*Join) tableRef() {}

// CrossList is FROM a, b, c — implicit cross join.
type CrossList struct {
	Items []TableRef
}

func (t *CrossList) String() string {
	parts := make([]string, len(t.Items))
	for i, it := range t.Items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}
func (*CrossList) tableRef() {}

// SubqueryTable is (select) AS alias.
type SubqueryTable struct {
	Select *Select
	Alias  string
}

func (t *SubqueryTable) String() string {
	return "(" + t.Select.String() + ") AS " + t.Alias
}
func (*SubqueryTable) tableRef() {}

// ---------------------------------------------------------------------------
// Expressions

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

func (e *Literal) String() string { return e.Value.SQLLiteral() }

// Param is a positional parameter "?"; Index is assigned by the parser
// in order of appearance (0-based).
type Param struct {
	Index int
}

func (e *Param) String() string { return "?" }

// ColumnRef is [table.]column.
type ColumnRef struct {
	Table  string
	Column string
}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

// Binary is a binary operation: comparison, logic, arithmetic or concat.
type Binary struct {
	Op    string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/", "%", "||"
	Left  Expr
	Right Expr
}

func (e *Binary) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}

// Unary is NOT expr or -expr.
type Unary struct {
	Op   string // "NOT", "-"
	Expr Expr
}

func (e *Unary) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.Expr.String() + ")"
	}
	return "(-" + e.Expr.String() + ")"
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (e *IsNull) String() string {
	if e.Not {
		return "(" + e.Expr.String() + " IS NOT NULL)"
	}
	return "(" + e.Expr.String() + " IS NULL)"
}

// Between is expr [NOT] BETWEEN lo AND hi.
type Between struct {
	Expr Expr
	Lo   Expr
	Hi   Expr
	Not  bool
}

func (e *Between) String() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return "(" + e.Expr.String() + " " + n + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// Like is expr [NOT] LIKE pattern (% and _ wildcards).
type Like struct {
	Expr    Expr
	Pattern Expr
	Not     bool
}

func (e *Like) String() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return "(" + e.Expr.String() + " " + n + "LIKE " + e.Pattern.String() + ")"
}

// InList is expr [NOT] IN (e1, e2, ...).
type InList struct {
	Expr  Expr
	Items []Expr
	Not   bool
}

func (e *InList) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	n := ""
	if e.Not {
		n = "NOT "
	}
	return "(" + e.Expr.String() + " " + n + "IN (" + strings.Join(parts, ", ") + "))"
}

// InSubquery is expr [NOT] IN (select).
type InSubquery struct {
	Expr   Expr
	Select *Select
	Not    bool
}

func (e *InSubquery) String() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return "(" + e.Expr.String() + " " + n + "IN (" + e.Select.String() + "))"
}

// Exists is [NOT] EXISTS (select).
type Exists struct {
	Select *Select
	Not    bool
}

func (e *Exists) String() string {
	if e.Not {
		return "(NOT EXISTS (" + e.Select.String() + "))"
	}
	return "(EXISTS (" + e.Select.String() + "))"
}

// ScalarSubquery is (select) used as a scalar value.
type ScalarSubquery struct {
	Select *Select
}

func (e *ScalarSubquery) String() string { return "(" + e.Select.String() + ")" }

// Cast is CAST(expr AS type).
type Cast struct {
	Expr Expr
	Type types.ColumnType
}

func (e *Cast) String() string {
	return "CAST(" + e.Expr.String() + " AS " + e.Type.String() + ")"
}

// FuncCall is a scalar function invocation (built-in or user-registered
// stored function, cf. SQL/PSM).
type FuncCall struct {
	Name string
	Args []Expr
}

func (e *FuncCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Aggregate is COUNT/SUM/AVG/MIN/MAX. Star is COUNT(*).
type Aggregate struct {
	Func     string // upper-case
	Star     bool
	Distinct bool
	Arg      Expr
}

func (e *Aggregate) String() string {
	if e.Star {
		return e.Func + "(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Func + "(" + d + e.Arg.String() + ")"
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// When is one WHEN cond THEN result arm.
type When struct {
	Cond   Expr
	Result Expr
}

func (e *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if e.Operand != nil {
		sb.WriteString(" " + e.Operand.String())
	}
	for _, w := range e.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

func (*Literal) expr()        {}
func (*Param) expr()          {}
func (*ColumnRef) expr()      {}
func (*Binary) expr()         {}
func (*Unary) expr()          {}
func (*IsNull) expr()         {}
func (*Between) expr()        {}
func (*Like) expr()           {}
func (*InList) expr()         {}
func (*InSubquery) expr()     {}
func (*Exists) expr()         {}
func (*ScalarSubquery) expr() {}
func (*Cast) expr()           {}
func (*FuncCall) expr()       {}
func (*Aggregate) expr()      {}
func (*Case) expr()           {}

// AndWhere conjoins extra onto where with AND, handling nil where — the
// primitive the PDM query modificator uses to append rule predicates
// ("the resulting predicate is either appended to an already existing
// WHERE clause with an AND or a new WHERE clause has to be generated").
func AndWhere(where, extra Expr) Expr {
	if extra == nil {
		return where
	}
	if where == nil {
		return extra
	}
	return &Binary{Op: "AND", Left: where, Right: extra}
}

// OrAll disjoins a list of predicates ("two or more qualifying conditions
// are always connected via the OR operator"). Returns nil for an empty list.
func OrAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: "OR", Left: out, Right: p}
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
