// Package types defines the value model of the minisql engine: the
// dynamically typed Value, SQL's three-valued logic, comparisons, casts
// and arithmetic. All engine layers (storage, executor, wire protocol)
// share this representation.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported runtime kinds. KindNull is the zero value so that an
// uninitialized Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{kind: KindText, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the int64 payload; valid only when Kind is KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float64 payload; valid only when Kind is KindFloat.
func (v Value) Float() float64 { return v.f }

// Text returns the string payload; valid only when Kind is KindText.
func (v Value) Text() string { return v.s }

// Bool returns the bool payload; valid only when Kind is KindBool.
func (v Value) Bool() bool { return v.b }

// AsFloat converts a numeric value to float64. It reports false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// String renders the value the way the shell and tests display it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// SQLLiteral renders the value as a literal that the parser would accept.
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.String()
	}
}

// Equal reports strict equality: same kind and same payload. NULL equals
// NULL under this relation (used by DISTINCT/UNION dedup, not by SQL `=`).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// int/float cross-kind numeric equality for dedup purposes.
		if a, ok := v.AsFloat(); ok {
			if b, ok2 := o.AsFloat(); ok2 {
				return a == b
			}
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindText:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Tristate is SQL's three-valued logic value.
type Tristate uint8

// The three logic states.
const (
	False Tristate = iota
	True
	Unknown
)

func (t Tristate) String() string {
	switch t {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	default:
		return "UNKNOWN"
	}
}

// And returns SQL AND over three-valued logic.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or returns SQL OR over three-valued logic.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not returns SQL NOT over three-valued logic.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// TristateOf lifts a bool into Tristate.
func TristateOf(b bool) Tristate {
	if b {
		return True
	}
	return False
}

// Compare compares two non-NULL values, returning -1, 0 or +1. Numeric
// values compare across int/float; text compares lexicographically; bool
// orders FALSE < TRUE. Comparing incompatible kinds returns an error.
// If either side is NULL the caller must handle it (SQL: Unknown).
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("types: cannot compare NULL")
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok2 := b.AsFloat(); ok2 {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			}
			return 0, nil
		}
	}
	if a.kind == KindText && b.kind == KindText {
		return strings.Compare(a.s, b.s), nil
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case a.b == b.b:
			return 0, nil
		case b.b:
			return -1, nil
		}
		return 1, nil
	}
	return 0, fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
}

// CompareForSort orders values for ORDER BY and index keys: NULL sorts
// first, then bools, ints/floats numerically, then text. Unlike Compare
// it never fails; incompatible kinds order by kind rank.
func CompareForSort(a, b Value) int {
	ra, rb := sortRank(a), sortRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if a.IsNull() {
		return 0
	}
	c, err := Compare(a, b)
	if err != nil {
		return 0
	}
	return c
}

func sortRank(v Value) int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindText:
		return 3
	}
	return 4
}

// Key returns a map key identifying the value for hashing (GROUP BY,
// DISTINCT, hash joins, hash indexes). Numerically equal int/float values
// share a key.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return "t" + v.s
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// Truth interprets a value as a WHERE-clause condition result.
func Truth(v Value) Tristate {
	switch v.kind {
	case KindNull:
		return Unknown
	case KindBool:
		return TristateOf(v.b)
	case KindInt:
		return TristateOf(v.i != 0)
	case KindFloat:
		return TristateOf(v.f != 0)
	}
	return Unknown
}

// ColumnType is a declared column type from DDL.
type ColumnType struct {
	Kind Kind
	// Size is the declared length for VARCHAR(n)/CHAR(n); 0 if absent.
	Size int
}

func (t ColumnType) String() string {
	if t.Kind == KindText && t.Size > 0 {
		return fmt.Sprintf("VARCHAR(%d)", t.Size)
	}
	return t.Kind.String()
}

// ParseColumnType resolves a type name from DDL or CAST.
func ParseColumnType(name string, size int) (ColumnType, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return ColumnType{Kind: KindInt}, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return ColumnType{Kind: KindFloat}, nil
	case "TEXT", "VARCHAR", "CHAR", "CHARACTER", "STRING", "CLOB":
		return ColumnType{Kind: KindText, Size: size}, nil
	case "BOOL", "BOOLEAN":
		return ColumnType{Kind: KindBool}, nil
	}
	return ColumnType{}, fmt.Errorf("types: unknown type %q", name)
}

// Coerce converts v to the column type t following SQL assignment rules:
// NULL passes through, ints widen to float, floats truncate to int when
// integral, anything casts to text, text parses to numerics/bools.
func Coerce(v Value, t ColumnType) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch t.Kind {
	case KindInt:
		switch v.kind {
		case KindInt:
			return v, nil
		case KindFloat:
			if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
				return NewInt(int64(v.f)), nil
			}
			return NewInt(int64(v.f)), nil
		case KindText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("types: cannot cast %q to INTEGER", v.s)
			}
			return NewInt(i), nil
		case KindBool:
			if v.b {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case KindFloat:
		switch v.kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return NewFloat(float64(v.i)), nil
		case KindText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null, fmt.Errorf("types: cannot cast %q to FLOAT", v.s)
			}
			return NewFloat(f), nil
		}
	case KindText:
		s := v.String()
		if t.Size > 0 && len(s) > t.Size {
			s = s[:t.Size]
		}
		return NewText(s), nil
	case KindBool:
		switch v.kind {
		case KindBool:
			return v, nil
		case KindInt:
			return NewBool(v.i != 0), nil
		case KindText:
			switch strings.ToUpper(strings.TrimSpace(v.s)) {
			case "TRUE", "T", "1":
				return NewBool(true), nil
			case "FALSE", "F", "0":
				return NewBool(false), nil
			}
			return Null, fmt.Errorf("types: cannot cast %q to BOOLEAN", v.s)
		}
	}
	return Null, fmt.Errorf("types: cannot coerce %s to %s", v.kind, t)
}

// Arith applies a binary arithmetic operator. NULL operands yield NULL.
// The operator is one of "+", "-", "*", "/", "%" and "||" (concat).
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == "||" {
		return NewText(a.String() + b.String()), nil
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return Null, fmt.Errorf("types: %s requires numeric operands, got %s and %s", op, a.kind, b.kind)
	}
	bothInt := a.kind == KindInt && b.kind == KindInt
	switch op {
	case "+":
		if bothInt {
			return NewInt(a.i + b.i), nil
		}
		return NewFloat(af + bf), nil
	case "-":
		if bothInt {
			return NewInt(a.i - b.i), nil
		}
		return NewFloat(af - bf), nil
	case "*":
		if bothInt {
			return NewInt(a.i * b.i), nil
		}
		return NewFloat(af * bf), nil
	case "/":
		if bothInt {
			if b.i == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInt(a.i / b.i), nil
		}
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewFloat(af / bf), nil
	case "%":
		if !bothInt {
			return Null, fmt.Errorf("types: %% requires integer operands")
		}
		if b.i == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewInt(a.i % b.i), nil
	}
	return Null, fmt.Errorf("types: unknown operator %q", op)
}

// CompareOp applies an SQL comparison operator under three-valued logic.
// op is one of "=", "<>", "<", "<=", ">", ">=".
func CompareOp(op string, a, b Value) (Tristate, error) {
	if a.IsNull() || b.IsNull() {
		return Unknown, nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return Unknown, err
	}
	switch op {
	case "=":
		return TristateOf(c == 0), nil
	case "<>", "!=":
		return TristateOf(c != 0), nil
	case "<":
		return TristateOf(c < 0), nil
	case "<=":
		return TristateOf(c <= 0), nil
	case ">":
		return TristateOf(c > 0), nil
	case ">=":
		return TristateOf(c >= 0), nil
	}
	return Unknown, fmt.Errorf("types: unknown comparison %q", op)
}
