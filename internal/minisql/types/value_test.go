package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("zero Value must be NULL")
	}
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt {
		t.Error("NewInt roundtrip failed")
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Kind() != KindFloat {
		t.Error("NewFloat roundtrip failed")
	}
	if v := NewText("x"); v.Text() != "x" || v.Kind() != KindText {
		t.Error("NewText roundtrip failed")
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Error("NewBool roundtrip failed")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewText("ab"), "ab"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestSQLLiteralEscaping(t *testing.T) {
	v := NewText("it's")
	if got := v.SQLLiteral(); got != "'it''s'" {
		t.Errorf("SQLLiteral = %q, want 'it''s'", got)
	}
	if got := NewInt(5).SQLLiteral(); got != "5" {
		t.Errorf("int literal = %q", got)
	}
}

func TestTristateTables(t *testing.T) {
	// Kleene logic truth tables.
	and := [3][3]Tristate{
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	or := [3][3]Tristate{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	states := []Tristate{False, True, Unknown}
	for i, a := range states {
		for j, b := range states {
			if got := a.And(b); got != and[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[i][j])
			}
			if got := a.Or(b); got != or[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
}

// Property: De Morgan holds in three-valued logic.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Tristate(a%3), Tristate(b%3)
		return x.And(y).Not() == x.Not().Or(y.Not()) &&
			x.Or(y).Not() == x.Not().And(y.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(NewInt(2), NewFloat(2.0))
	if err != nil || c != 0 {
		t.Errorf("2 = 2.0 failed: c=%d err=%v", c, err)
	}
	c, err = Compare(NewFloat(1.5), NewInt(2))
	if err != nil || c != -1 {
		t.Errorf("1.5 < 2 failed: c=%d err=%v", c, err)
	}
	if _, err := Compare(NewInt(1), NewText("1")); err == nil {
		t.Error("int vs text must not compare")
	}
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("NULL must not compare")
	}
}

// Property: Compare is antisymmetric and total for same-kind non-null ints.
func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(NewInt(a), NewInt(b))
		y, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CompareForSort is a consistent total order (antisymmetry over
// mixed kinds, NULL first).
func TestCompareForSortProperties(t *testing.T) {
	gen := func(tag uint8, i int64, s string) Value {
		switch tag % 4 {
		case 0:
			return Null
		case 1:
			return NewInt(i)
		case 2:
			return NewText(s)
		default:
			return NewBool(i%2 == 0)
		}
	}
	f := func(t1, t2 uint8, i1, i2 int64, s1, s2 string) bool {
		a, b := gen(t1, i1, s1), gen(t2, i2, s2)
		return CompareForSort(a, b) == -CompareForSort(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if CompareForSort(Null, NewInt(math.MinInt64)) != -1 {
		t.Error("NULL must sort before any value")
	}
}

// Property: Key() agrees with numeric equality across int/float.
func TestKeyConsistentWithEquality(t *testing.T) {
	f := func(a int64) bool {
		return NewInt(a).Key() == NewFloat(float64(a)).Key() ||
			float64(a) != math.Trunc(float64(a)) // precision loss allowed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewText("1").Key() == NewInt(1).Key() {
		t.Error("text and int keys must differ")
	}
	if Null.Key() == NewText("").Key() {
		t.Error("NULL and empty string keys must differ")
	}
}

func TestTruth(t *testing.T) {
	cases := []struct {
		v    Value
		want Tristate
	}{
		{Null, Unknown},
		{NewBool(true), True},
		{NewBool(false), False},
		{NewInt(0), False},
		{NewInt(3), True},
		{NewFloat(0), False},
		{NewFloat(0.1), True},
		{NewText("x"), Unknown},
	}
	for _, c := range cases {
		if got := Truth(c.v); got != c.want {
			t.Errorf("Truth(%s) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestParseColumnType(t *testing.T) {
	for name, kind := range map[string]Kind{
		"INTEGER": KindInt, "int": KindInt, "BIGINT": KindInt,
		"FLOAT": KindFloat, "real": KindFloat, "DECIMAL": KindFloat,
		"TEXT": KindText, "VARCHAR": KindText, "clob": KindText,
		"BOOLEAN": KindBool, "bool": KindBool,
	} {
		ct, err := ParseColumnType(name, 0)
		if err != nil || ct.Kind != kind {
			t.Errorf("ParseColumnType(%q) = %v, %v; want kind %v", name, ct, err, kind)
		}
	}
	if _, err := ParseColumnType("BLOB", 0); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestCoerce(t *testing.T) {
	intT := ColumnType{Kind: KindInt}
	textT := ColumnType{Kind: KindText}
	boolT := ColumnType{Kind: KindBool}
	floatT := ColumnType{Kind: KindFloat}

	if v, err := Coerce(NewText(" 42 "), intT); err != nil || v.Int() != 42 {
		t.Errorf("text->int: %v %v", v, err)
	}
	if _, err := Coerce(NewText("x"), intT); err == nil {
		t.Error("bad text->int must fail")
	}
	if v, err := Coerce(NewInt(1), boolT); err != nil || !v.Bool() {
		t.Errorf("int->bool: %v %v", v, err)
	}
	if v, err := Coerce(NewInt(7), floatT); err != nil || v.Float() != 7 {
		t.Errorf("int->float: %v %v", v, err)
	}
	if v, err := Coerce(NewBool(true), textT); err != nil || v.Text() != "TRUE" {
		t.Errorf("bool->text: %v %v", v, err)
	}
	if v, err := Coerce(Null, intT); err != nil || !v.IsNull() {
		t.Errorf("NULL passthrough: %v %v", v, err)
	}
	// VARCHAR(n) truncates.
	if v, err := Coerce(NewText("abcdef"), ColumnType{Kind: KindText, Size: 3}); err != nil || v.Text() != "abc" {
		t.Errorf("varchar truncation: %v %v", v, err)
	}
}

func TestArith(t *testing.T) {
	if v, _ := Arith("+", NewInt(2), NewInt(3)); v.Int() != 5 {
		t.Error("2+3")
	}
	if v, _ := Arith("*", NewInt(2), NewFloat(1.5)); v.Float() != 3 {
		t.Error("2*1.5 must be float 3")
	}
	if v, _ := Arith("/", NewInt(7), NewInt(2)); v.Int() != 3 {
		t.Error("integer division 7/2 = 3")
	}
	if _, err := Arith("/", NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must fail")
	}
	if v, _ := Arith("%", NewInt(7), NewInt(3)); v.Int() != 1 {
		t.Error("7%3")
	}
	if v, _ := Arith("||", NewText("a"), NewInt(1)); v.Text() != "a1" {
		t.Error("concat coerces to text")
	}
	if v, _ := Arith("+", Null, NewInt(1)); !v.IsNull() {
		t.Error("NULL propagates through arithmetic")
	}
	if _, err := Arith("+", NewText("a"), NewInt(1)); err == nil {
		t.Error("text arithmetic must fail")
	}
}

func TestCompareOpNullIsUnknown(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		tr, err := CompareOp(op, Null, NewInt(1))
		if err != nil || tr != Unknown {
			t.Errorf("NULL %s 1 = %v, %v; want Unknown", op, tr, err)
		}
	}
	tr, err := CompareOp("<=", NewInt(3), NewInt(3))
	if err != nil || tr != True {
		t.Errorf("3 <= 3 = %v, %v", tr, err)
	}
}
