package minisql

import (
	"container/list"
	"sync"

	"pdmtune/internal/minisql/ast"
)

// defaultPlanCacheSize bounds the shared plan cache. Navigational PDM
// access emits one literal-id expand statement per visited node, so a
// repeated multi-level expand replays the exact same statement texts —
// the paper's δ=7/β=5 product visits ~3,300 nodes. LRU thrashes when a
// repeated scan exceeds the capacity (every entry is evicted moments
// before its reuse), so the default leaves headroom above that working
// set; parameterized and prepared statements need only one entry per
// shape.
const defaultPlanCacheSize = 4096

// planCache is a bounded, concurrency-safe LRU of parsed statements
// keyed by SQL text. Cached ASTs come from the package-level
// parser.Parse (fresh arena per call), so they never expire, and the
// executor treats ASTs as read-only, so one cached statement may run on
// any number of sessions concurrently. DDL execution invalidates the
// whole cache.
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type planEntry struct {
	sql  string
	stmt ast.Statement
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		lru: list.New(),
	}
}

func (c *planCache) get(sql string) (ast.Statement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sql]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).stmt, true
}

func (c *planCache) put(sql string, stmt ast.Statement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sql]; ok {
		el.Value.(*planEntry).stmt = stmt
		c.lru.MoveToFront(el)
		return
	}
	c.m[sql] = c.lru.PushFront(&planEntry{sql: sql, stmt: stmt})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*planEntry).sql)
	}
}

// invalidateAll empties the cache — called after any DDL statement.
func (c *planCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.m)
	c.lru.Init()
}

func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// cacheablePlan excludes DDL from the cache: executing DDL invalidates
// every entry anyway, and schema statements run once.
func cacheablePlan(st ast.Statement) bool {
	switch st.(type) {
	case *ast.CreateTable, *ast.CreateIndex, *ast.DropTable:
		return false
	}
	return true
}
