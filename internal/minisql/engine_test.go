package minisql

import (
	"strings"
	"testing"

	"pdmtune/internal/minisql/types"
)

// mustExec runs a statement and fails the test on error.
func mustExec(t *testing.T, s *Session, sql string, params ...Value) *Result {
	t.Helper()
	res, err := s.Exec(sql, params...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// rowsToStrings renders all rows for compact comparison.
func rowsToStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func newTestSession(t *testing.T) *Session {
	t.Helper()
	return NewDB().NewSession()
}

func TestCreateInsertSelect(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE p (id INTEGER PRIMARY KEY, name TEXT, weight FLOAT)")
	res := mustExec(t, s, "INSERT INTO p VALUES (1, 'bolt', 0.5), (2, 'nut', 0.2)")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT id, name FROM p ORDER BY id")
	got := rowsToStrings(res)
	want := []string{"1|bolt", "2|nut"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestInsertColumnListAndDefaults(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER, b TEXT DEFAULT 'x', c INTEGER)")
	mustExec(t, s, "INSERT INTO t (a) VALUES (1)")
	res := mustExec(t, s, "SELECT a, b, c FROM t")
	if got := rowsToStrings(res)[0]; got != "1|x|NULL" {
		t.Fatalf("row = %q, want 1|x|NULL", got)
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'a')")
	if _, err := s.Exec("INSERT INTO t VALUES (1, 'b')"); err == nil {
		t.Fatal("duplicate primary key insert should fail")
	}
	// The failed insert must not leave a phantom row.
	res := mustExec(t, s, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("count = %s, want 1", res.Rows[0][0])
	}
}

func TestNotNullEnforced(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER NOT NULL)")
	if _, err := s.Exec("INSERT INTO t VALUES (NULL)"); err == nil {
		t.Fatal("NULL into NOT NULL column should fail")
	}
}

func TestUpdateDelete(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER, v TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c')")
	res := mustExec(t, s, "UPDATE t SET v = 'z' WHERE id >= 2")
	if res.RowsAffected != 2 {
		t.Fatalf("update affected %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, s, "DELETE FROM t WHERE v = 'z'")
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("count = %s, want 1", res.Rows[0][0])
	}
}

func TestUpdateSelfReference(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER, v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 10), (2, 20)")
	mustExec(t, s, "UPDATE t SET v = v + 1")
	res := mustExec(t, s, "SELECT SUM(v) FROM t")
	if res.Rows[0][0].Int() != 32 {
		t.Fatalf("sum = %s, want 32", res.Rows[0][0])
	}
}

func TestThreeValuedLogic(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (a INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (NULL), (3)")
	// NULL = NULL is Unknown, filtered out by WHERE.
	res := mustExec(t, s, "SELECT COUNT(*) FROM t WHERE a = a")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("a = a matched %s rows, want 2", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM t WHERE a IS NULL")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("IS NULL matched %s rows, want 1", res.Rows[0][0])
	}
	// NOT (NULL > 1) is still Unknown.
	res = mustExec(t, s, "SELECT COUNT(*) FROM t WHERE NOT (a > 1)")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("NOT (a > 1) matched %s rows, want 1", res.Rows[0][0])
	}
}

func TestJoinInnerAndLeft(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE a (id INTEGER, x TEXT)")
	mustExec(t, s, "CREATE TABLE b (aid INTEGER, y TEXT)")
	mustExec(t, s, "INSERT INTO a VALUES (1,'p'),(2,'q'),(3,'r')")
	mustExec(t, s, "INSERT INTO b VALUES (1,'u'),(1,'v'),(3,'w')")

	res := mustExec(t, s, "SELECT a.id, b.y FROM a JOIN b ON a.id = b.aid ORDER BY 1, 2")
	got := rowsToStrings(res)
	want := []string{"1|u", "1|v", "3|w"}
	if len(got) != len(want) {
		t.Fatalf("inner join rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inner row %d = %q, want %q", i, got[i], want[i])
		}
	}

	res = mustExec(t, s, "SELECT a.id, b.y FROM a LEFT JOIN b ON a.id = b.aid ORDER BY 1, 2")
	got = rowsToStrings(res)
	want = []string{"1|u", "1|v", "2|NULL", "3|w"}
	if len(got) != len(want) {
		t.Fatalf("left join rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("left row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCrossListWithWhereBecomesJoin(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE a (id INTEGER)")
	mustExec(t, s, "CREATE TABLE b (id INTEGER)")
	mustExec(t, s, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, s, "INSERT INTO b VALUES (2),(3)")
	res := mustExec(t, s, "SELECT a.id FROM a, b WHERE a.id = b.id")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v, want single row 2", rowsToStrings(res))
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (grp TEXT, v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES ('a',1),('a',2),('b',3),('b',NULL)")
	res := mustExec(t, s, "SELECT grp, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY grp ORDER BY 1")
	got := rowsToStrings(res)
	want := []string{"a|2|2|3|1.5|1|2", "b|2|1|3|3|3|3"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("group %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (v INTEGER)")
	res := mustExec(t, s, "SELECT COUNT(*), SUM(v), AVG(v), MIN(v) FROM t")
	if got := rowsToStrings(res)[0]; got != "0|NULL|NULL|NULL" {
		t.Fatalf("empty aggregate = %q, want 0|NULL|NULL|NULL", got)
	}
}

func TestHaving(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (grp TEXT, v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES ('a',1),('a',2),('b',3)")
	res := mustExec(t, s, "SELECT grp FROM t GROUP BY grp HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "a" {
		t.Fatalf("having result = %v, want [a]", rowsToStrings(res))
	}
}

func TestCountDistinct(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(1),(2),(NULL)")
	res := mustExec(t, s, "SELECT COUNT(DISTINCT v) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("count distinct = %s, want 2", res.Rows[0][0])
	}
}

func TestExistsCorrelatedAndNot(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE comp (obid INTEGER, name TEXT)")
	mustExec(t, s, "CREATE TABLE spec (obid INTEGER, compid INTEGER)")
	mustExec(t, s, "INSERT INTO comp VALUES (1,'c1'),(2,'c2'),(3,'c3')")
	mustExec(t, s, "INSERT INTO spec VALUES (100,1),(101,3)")
	res := mustExec(t, s, "SELECT name FROM comp WHERE EXISTS (SELECT * FROM spec WHERE spec.compid = comp.obid) ORDER BY 1")
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "c1" || got[1] != "c3" {
		t.Fatalf("exists result = %v, want [c1 c3]", got)
	}
	res = mustExec(t, s, "SELECT name FROM comp WHERE NOT EXISTS (SELECT * FROM spec WHERE spec.compid = comp.obid)")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "c2" {
		t.Fatalf("not exists result = %v, want [c2]", rowsToStrings(res))
	}
}

func TestInSubqueryNullSemantics(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE a (v INTEGER)")
	mustExec(t, s, "CREATE TABLE b (v INTEGER)")
	mustExec(t, s, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, s, "INSERT INTO b VALUES (1),(NULL)")
	// 2 NOT IN (1, NULL) is Unknown, so only... 1 NOT IN (1,NULL) is False.
	res := mustExec(t, s, "SELECT COUNT(*) FROM a WHERE v NOT IN (SELECT v FROM b)")
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("NOT IN with NULL matched %s rows, want 0", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM a WHERE v IN (SELECT v FROM b)")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("IN with NULL matched %s rows, want 1", res.Rows[0][0])
	}
}

func TestScalarSubquery(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(2),(3)")
	res := mustExec(t, s, "SELECT v FROM t WHERE v = (SELECT MAX(v) FROM t)")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("scalar subquery result = %v, want [3]", rowsToStrings(res))
	}
	// Empty scalar subquery yields NULL.
	res = mustExec(t, s, "SELECT (SELECT v FROM t WHERE v > 100)")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("empty scalar subquery = %s, want NULL", res.Rows[0][0])
	}
}

func TestUnionAndUnionAll(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(2)")
	res := mustExec(t, s, "SELECT v FROM t UNION SELECT v FROM t ORDER BY 1")
	if len(res.Rows) != 2 {
		t.Fatalf("UNION rows = %d, want 2", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT v FROM t UNION ALL SELECT v FROM t")
	if len(res.Rows) != 4 {
		t.Fatalf("UNION ALL rows = %d, want 4", len(res.Rows))
	}
}

func TestDistinctAndOrderLimit(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (v INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (3),(1),(3),(2)")
	res := mustExec(t, s, "SELECT DISTINCT v FROM t ORDER BY v DESC LIMIT 2")
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "3" || got[1] != "2" {
		t.Fatalf("distinct+order+limit = %v, want [3 2]", got)
	}
	res = mustExec(t, s, "SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 1")
	got = rowsToStrings(res)
	if len(got) != 2 || got[0] != "2" || got[1] != "3" {
		t.Fatalf("limit offset = %v, want [2 3]", got)
	}
}

func TestCaseCastLikeBetween(t *testing.T) {
	s := newTestSession(t)
	res := mustExec(t, s, "SELECT CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END")
	if res.Rows[0][0].Text() != "yes" {
		t.Fatalf("CASE = %s, want yes", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
	if res.Rows[0][0].Text() != "two" {
		t.Fatalf("operand CASE = %s, want two", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT CAST('42' AS INTEGER) + 1")
	if res.Rows[0][0].Int() != 43 {
		t.Fatalf("CAST = %s, want 43", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT CAST(NULL AS INTEGER)")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("CAST NULL = %s, want NULL", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT CASE WHEN 'assembly' LIKE 'ass%' THEN 1 ELSE 0 END")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("LIKE should match")
	}
	res = mustExec(t, s, "SELECT CASE WHEN 5 BETWEEN 1 AND 10 THEN 1 ELSE 0 END")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("BETWEEN should match")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	s := newTestSession(t)
	res := mustExec(t, s, "SELECT upper('ab'), lower('AB'), length('abc'), abs(-3), coalesce(NULL, 7), substr('abcdef', 2, 3)")
	if got := rowsToStrings(res)[0]; got != "AB|ab|3|3|7|bcd" {
		t.Fatalf("builtins = %q", got)
	}
	res = mustExec(t, s, "SELECT ranges_overlap(1, 5, 4, 10), ranges_overlap(1, 3, 4, 10)")
	if got := rowsToStrings(res)[0]; got != "TRUE|FALSE" {
		t.Fatalf("ranges_overlap = %q", got)
	}
	res = mustExec(t, s, "SELECT sets_overlap('sunroof,sport', 'sport'), sets_overlap('cabrio', 'sport'), sets_overlap('', 'sport')")
	if got := rowsToStrings(res)[0]; got != "TRUE|FALSE|TRUE" {
		t.Fatalf("sets_overlap = %q", got)
	}
}

func TestParameters(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER, name TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (?, ?)", types.NewInt(1), types.NewText("x"))
	res := mustExec(t, s, "SELECT name FROM t WHERE id = ?", types.NewInt(1))
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "x" {
		t.Fatalf("param query = %v", rowsToStrings(res))
	}
	if _, err := s.Exec("SELECT * FROM t WHERE id = ?"); err == nil {
		t.Fatal("missing parameter should fail")
	}
}

func TestTransactionsRollback(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER, v TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'keep')")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (2, 'tx')")
	mustExec(t, s, "UPDATE t SET v = 'changed' WHERE id = 1")
	mustExec(t, s, "DELETE FROM t WHERE id = 1")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT id, v FROM t ORDER BY id")
	got := rowsToStrings(res)
	if len(got) != 1 || got[0] != "1|keep" {
		t.Fatalf("after rollback = %v, want [1|keep]", got)
	}
}

func TestTransactionsCommit(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	mustExec(t, s, "COMMIT")
	res := mustExec(t, s, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("after commit count = %s, want 1", res.Rows[0][0])
	}
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN should fail")
	}
}

func TestIndexUse(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER, v TEXT)")
	mustExec(t, s, "CREATE INDEX t_id ON t (id)")
	for i := 0; i < 100; i++ {
		mustExec(t, s, "INSERT INTO t VALUES (?, ?)", types.NewInt(int64(i)), types.NewText("v"))
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM t WHERE id = 42")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("indexed lookup count = %s, want 1", res.Rows[0][0])
	}
	// Index stays correct under update/delete.
	mustExec(t, s, "UPDATE t SET id = 1000 WHERE id = 42")
	res = mustExec(t, s, "SELECT COUNT(*) FROM t WHERE id = 1000")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("after update count = %s, want 1", res.Rows[0][0])
	}
	mustExec(t, s, "DELETE FROM t WHERE id = 1000")
	res = mustExec(t, s, "SELECT COUNT(*) FROM t WHERE id = 1000")
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("after delete count = %s, want 0", res.Rows[0][0])
	}
}

func TestRecursiveCTENumbers(t *testing.T) {
	s := newTestSession(t)
	res := mustExec(t, s, `WITH RECURSIVE n (v) AS (
		SELECT 1 UNION SELECT v + 1 FROM n WHERE v < 5
	) SELECT SUM(v) FROM n`)
	if res.Rows[0][0].Int() != 15 {
		t.Fatalf("sum 1..5 = %s, want 15", res.Rows[0][0])
	}
}

func TestRecursiveCTEGraphReachability(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE edge (src INTEGER, dst INTEGER)")
	// Diamond with a cycle: 1->2, 1->3, 2->4, 3->4, 4->2.
	mustExec(t, s, "INSERT INTO edge VALUES (1,2),(1,3),(2,4),(3,4),(4,2)")
	res := mustExec(t, s, `WITH RECURSIVE reach (node) AS (
		SELECT 1 UNION SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src
	) SELECT node FROM reach ORDER BY 1`)
	got := rowsToStrings(res)
	want := []string{"1", "2", "3", "4"}
	if len(got) != len(want) {
		t.Fatalf("reachability = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRecursiveCTEUnionAllTermination(t *testing.T) {
	s := newTestSession(t)
	db := s.db
	db.SetOptions(Options{MaxRecursion: 50})
	// UNION ALL with a cycle would not terminate; the guard must trip.
	mustExec(t, s, "CREATE TABLE edge (src INTEGER, dst INTEGER)")
	mustExec(t, s, "INSERT INTO edge VALUES (1,2),(2,1)")
	_, err := s.Exec(`WITH RECURSIVE reach (node) AS (
		SELECT 1 UNION ALL SELECT edge.dst FROM reach JOIN edge ON reach.node = edge.src
	) SELECT COUNT(*) FROM reach`)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("expected recursion guard error, got %v", err)
	}
}

// TestPaperFigure3 loads the paper's Figure 2 example tables and runs the
// Section 5.2 recursive query verbatim; the result must match Figure 3
// row for row.
func TestPaperFigure3(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.ExecScript(paperFigure2Script); err != nil {
		t.Fatalf("loading figure 2 tables: %v", err)
	}
	res, err := s.Query(paperSection52Query)
	if err != nil {
		t.Fatalf("running section 5.2 query: %v", err)
	}
	got := rowsToStrings(res)
	want := []string{
		"assy|1|Assy1|+|NULL|NULL|NULL|NULL",
		"assy|2|Assy2|+|NULL|NULL|NULL|NULL",
		"assy|3|Assy3|+|NULL|NULL|NULL|NULL",
		"assy|4|Assy4|+|NULL|NULL|NULL|NULL",
		"assy|5|Assy5|-|NULL|NULL|NULL|NULL",
		"comp|101|Comp1||NULL|NULL|NULL|NULL",
		"comp|102|Comp2||NULL|NULL|NULL|NULL",
		"comp|103|Comp3||NULL|NULL|NULL|NULL",
		"comp|104|Comp4||NULL|NULL|NULL|NULL",
		"link|1001|||1|2|1|3",
		"link|1002|||1|3|4|10",
		"link|1003|||2|4|1|10",
		"link|1004|||2|5|1|10",
		"link|1005|||4|101|6|10",
		"link|1006|||4|102|1|5",
		"link|1007|||5|103|1|10",
		"link|1008|||5|104|1|10",
	}
	if len(got) != len(want) {
		t.Fatalf("result has %d rows, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPaperForAllRows runs the Section 5.3.1 "all assemblies must be
// decomposable" query: assembly 5 is not decomposable, so the result is
// empty ("all-or-nothing" principle).
func TestPaperForAllRows(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.ExecScript(paperFigure2Script); err != nil {
		t.Fatalf("loading figure 2 tables: %v", err)
	}
	res, err := s.Query(paperSection531Query)
	if err != nil {
		t.Fatalf("running section 5.3.1 query: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("result should be empty (Assy5 is not decomposable), got %d rows", len(res.Rows))
	}
}

// TestPaperExistsStructure runs the Section 5.3.2 query: components are
// visible only when specified by at least one document.
func TestPaperExistsStructure(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.ExecScript(paperFigure2Script); err != nil {
		t.Fatalf("loading figure 2 tables: %v", err)
	}
	// Specifications for components 101 and 103 only.
	mustExec(t, s, "INSERT INTO spec VALUES ('spec', 9001, 'Spec1'), ('spec', 9002, 'Spec3')")
	mustExec(t, s, "INSERT INTO specified_by VALUES (101, 9001), (103, 9002)")
	res, err := s.Query(paperSection532Query)
	if err != nil {
		t.Fatalf("running section 5.3.2 query: %v", err)
	}
	var comps []string
	for _, row := range res.Rows {
		if row[0].Text() == "comp" {
			comps = append(comps, row[1].String())
		}
	}
	if len(comps) != 2 || comps[0] != "101" || comps[1] != "103" {
		t.Fatalf("visible components = %v, want [101 103]", comps)
	}
}

// TestPaperTreeAggregate runs the Section 5.3.3 query: the user may only
// retrieve trees containing at most ten assemblies; the example tree has
// five, so the whole tree comes back.
func TestPaperTreeAggregate(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.ExecScript(paperFigure2Script); err != nil {
		t.Fatalf("loading figure 2 tables: %v", err)
	}
	res, err := s.Query(paperSection533Query)
	if err != nil {
		t.Fatalf("running section 5.3.3 query: %v", err)
	}
	if len(res.Rows) != 17 {
		t.Fatalf("tree-aggregate query returned %d rows, want 17", len(res.Rows))
	}
	// Tighten the limit to 4 assemblies: now nothing comes back.
	strict := strings.ReplaceAll(paperSection533Query, "<= 10", "<= 4")
	res, err = s.Query(strict)
	if err != nil {
		t.Fatalf("running strict variant: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("strict tree-aggregate query returned %d rows, want 0", len(res.Rows))
	}
}

func TestExplain(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	res := mustExec(t, s, "EXPLAIN SELECT * FROM t WHERE id = 1")
	if len(res.Rows) == 0 {
		t.Fatal("EXPLAIN returned no plan rows")
	}
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].Text() + "\n"
	}
	if !strings.Contains(joined, "SCAN t") {
		t.Fatalf("plan does not mention table scan:\n%s", joined)
	}
}

func TestSubqueryCacheAblation(t *testing.T) {
	run := func(disable bool) int64 {
		db := NewDB()
		db.SetOptions(Options{DisableSubqueryCache: disable})
		s := db.NewSession()
		mustExec(t, s, "CREATE TABLE t (v INTEGER)")
		mustExec(t, s, "INSERT INTO t VALUES (1),(2),(3)")
		res := mustExec(t, s, "SELECT COUNT(*) FROM t WHERE (SELECT MAX(v) FROM t) = 3")
		return res.Rows[0][0].Int()
	}
	if run(false) != 3 || run(true) != 3 {
		t.Fatal("subquery cache must not change results")
	}
}

// paperFigure2Script creates and loads the example tables of Figure 2
// (plus the spec/specified_by tables used in Section 5.3.2).
const paperFigure2Script = `
CREATE TABLE assy (type VARCHAR(8), obid INTEGER PRIMARY KEY, name VARCHAR(32), dec VARCHAR(1));
CREATE TABLE comp (type VARCHAR(8), obid INTEGER PRIMARY KEY, name VARCHAR(32));
CREATE TABLE link (type VARCHAR(8), obid INTEGER PRIMARY KEY, left INTEGER, right INTEGER,
                   eff_from INTEGER, eff_to INTEGER);
CREATE TABLE spec (type VARCHAR(8), obid INTEGER PRIMARY KEY, name VARCHAR(32));
CREATE TABLE specified_by (left INTEGER, right INTEGER);
CREATE INDEX link_left ON link (left);

INSERT INTO assy VALUES
  ('assy', 1, 'Assy1', '+'), ('assy', 2, 'Assy2', '+'), ('assy', 3, 'Assy3', '+'),
  ('assy', 4, 'Assy4', '+'), ('assy', 5, 'Assy5', '-'), ('assy', 6, 'Assy6', '-'),
  ('assy', 7, 'Assy7', '-'), ('assy', 8, 'Assy8', '-');
INSERT INTO comp VALUES
  ('comp', 101, 'Comp1'), ('comp', 102, 'Comp2'), ('comp', 103, 'Comp3'),
  ('comp', 104, 'Comp4'), ('comp', 105, 'Comp5'), ('comp', 106, 'Comp6'),
  ('comp', 107, 'Comp7');
INSERT INTO link VALUES
  ('link', 1001, 1, 2, 1, 3), ('link', 1002, 1, 3, 4, 10),
  ('link', 1003, 2, 4, 1, 10), ('link', 1004, 2, 5, 1, 10),
  ('link', 1005, 4, 101, 6, 10), ('link', 1006, 4, 102, 1, 5),
  ('link', 1007, 5, 103, 1, 10), ('link', 1008, 5, 104, 1, 10);
`

// paperSection52Query is the Section 5.2 recursive query (verbatim except
// for whitespace): collect the tree under assembly 1 into the unified
// result type, then add the connecting links.
const paperSection52Query = `
WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec
    FROM assy
    WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid
 )
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl)
     AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2
`

// paperSection531Query adds the ∀rows condition "all assemblies in the
// tree must be decomposable" to the recursive query.
const paperSection531Query = `
WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid
 )
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
  WHERE NOT EXISTS (SELECT * FROM rtbl WHERE (type = 'assy' AND dec != '+'))
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl)
     AND right IN (SELECT obid FROM rtbl))
    AND NOT EXISTS (SELECT * FROM rtbl WHERE (type = 'assy' AND dec != '+'))
ORDER BY 1, 2
`

// paperSection532Query embeds the ∃structure condition in the recursive
// part: components join only when specified by at least one document.
const paperSection532Query = `
WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid
    WHERE EXISTS (SELECT * FROM specified_by AS s JOIN spec
                    ON s.right = spec.obid WHERE s.left = comp.obid)
 )
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
ORDER BY 1, 2
`

// paperSection533Query applies the tree-aggregate condition "at most ten
// assemblies in the tree".
const paperSection533Query = `
WITH RECURSIVE rtbl (type, obid, name, dec) AS
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
  UNION
  SELECT assy.type, assy.obid, assy.name, assy.dec
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN assy ON link.right = assy.obid
  UNION
  SELECT comp.type, comp.obid, comp.name, ''
    FROM rtbl JOIN link ON rtbl.obid = link.left
              JOIN comp ON link.right = comp.obid
 )
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
  WHERE (SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
  FROM link
  WHERE (left IN (SELECT obid FROM rtbl)
     AND right IN (SELECT obid FROM rtbl))
    AND (SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10
ORDER BY 1, 2
`
