package minisql

import (
	"fmt"
	"sync"

	"pdmtune/internal/minisql/types"
	"testing"
)

func newConcurrencyDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db := NewDB()
	db.SetOptions(opts)
	s := db.NewSession()
	script := `
CREATE TABLE kv (id INTEGER PRIMARY KEY, val INTEGER NOT NULL);
INSERT INTO kv VALUES (1, 0), (2, 0), (3, 0);
CREATE TABLE other (id INTEGER PRIMARY KEY, val INTEGER NOT NULL);
INSERT INTO other VALUES (1, 0);`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

// A multi-row UPDATE is atomic under snapshot isolation: a concurrent
// SELECT sees either all three rows flipped or none — never a mix.
// Run with -race.
func TestSnapshotStatementAtomicity(t *testing.T) {
	for _, coarse := range []bool{false, true} {
		t.Run(fmt.Sprintf("coarse=%v", coarse), func(t *testing.T) {
			db := newConcurrencyDB(t, Options{CoarseLocking: coarse})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			fail := make(chan string, 4)
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := db.NewSession()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := s.Query("SELECT DISTINCT val FROM kv")
						if err != nil {
							fail <- err.Error()
							return
						}
						if len(res.Rows) != 1 {
							fail <- fmt.Sprintf("torn statement: saw %d distinct values", len(res.Rows))
							return
						}
					}
				}()
			}
			w := db.NewSession()
			for i := 1; i <= 150; i++ {
				if _, err := w.Exec("UPDATE kv SET val = ?", types.NewInt(int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case msg := <-fail:
				t.Fatal(msg)
			default:
			}
		})
	}
}

// Writers on different tables do not serialize against each other under
// MVCC, and every session's counters add up. Run with -race.
func TestConcurrentWritersDifferentTables(t *testing.T) {
	db := newConcurrencyDB(t, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	run := func(table string) {
		defer wg.Done()
		s := db.NewSession()
		for i := 0; i < 100; i++ {
			if _, err := s.Exec(fmt.Sprintf("UPDATE %s SET val = val + 1 WHERE id = 1", table)); err != nil {
				errs <- err
				return
			}
		}
	}
	wg.Add(2)
	go run("kv")
	go run("other")
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s := db.NewSession()
	for _, table := range []string{"kv", "other"} {
		res, err := s.Query(fmt.Sprintf("SELECT val FROM %s WHERE id = 1", table))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Int(); got != 100 {
			t.Errorf("%s.val = %d, want 100 (lost update)", table, got)
		}
	}
}

// Same-table writers serialize on the table latch: no lost updates.
// Run with -race.
func TestConcurrentWritersSameTable(t *testing.T) {
	for _, coarse := range []bool{false, true} {
		t.Run(fmt.Sprintf("coarse=%v", coarse), func(t *testing.T) {
			db := newConcurrencyDB(t, Options{CoarseLocking: coarse})
			var wg sync.WaitGroup
			const workers, per = 4, 50
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := db.NewSession()
					for i := 0; i < per; i++ {
						if _, err := s.Exec("UPDATE kv SET val = val + 1 WHERE id = 2"); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			res, err := db.NewSession().Query("SELECT val FROM kv WHERE id = 2")
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Rows[0][0].Int(); got != workers*per {
				t.Errorf("val = %d, want %d (lost update)", got, workers*per)
			}
		})
	}
}

// LockTables makes a read-check-write sequence atomic: two racing
// sessions incrementing via explicit latches never lose an update, and
// the loser of each race accumulates lock-wait time.
func TestLockTablesAtomicSequence(t *testing.T) {
	db := newConcurrencyDB(t, Options{})
	var wg sync.WaitGroup
	const workers, per = 4, 25
	var waitNanos int64
	var mu sync.Mutex
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < per; i++ {
				release, err := s.LockTables("kv")
				if err != nil {
					errs <- err
					return
				}
				res, err := s.Query("SELECT val FROM kv WHERE id = 3")
				if err == nil {
					_, err = s.Exec("UPDATE kv SET val = ? WHERE id = 3", types.NewInt(res.Rows[0][0].Int()+1))
				}
				release()
				if err != nil {
					errs <- err
					return
				}
			}
			st := s.TakeContention()
			mu.Lock()
			waitNanos += st.LockWaitNanos
			mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	res, err := db.NewSession().Query("SELECT val FROM kv WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != workers*per {
		t.Errorf("val = %d, want %d (read-check-write not atomic)", got, workers*per)
	}
	_ = waitNanos // contention is timing-dependent; presence is asserted elsewhere
}

// Contention counters: snapshots are counted per read statement and
// TakeContention drains.
func TestContentionStats(t *testing.T) {
	db := newConcurrencyDB(t, Options{})
	s := db.NewSession()
	for i := 0; i < 3; i++ {
		if _, err := s.Query("SELECT val FROM kv WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.TakeContention()
	if st.SnapshotsStarted != 3 {
		t.Errorf("SnapshotsStarted = %d, want 3", st.SnapshotsStarted)
	}
	if !s.TakeContention().IsZero() {
		t.Error("TakeContention did not drain")
	}
	s.CountWriteConflict()
	if got := s.TakeContention().WriteConflicts; got != 1 {
		t.Errorf("WriteConflicts = %d, want 1", got)
	}
}

// Coarse mode and MVCC agree on results: the ablation flag changes the
// locking story, not the semantics.
func TestCoarseEquivalence(t *testing.T) {
	run := func(coarse bool) []string {
		db := newConcurrencyDB(t, Options{CoarseLocking: coarse})
		s := db.NewSession()
		if _, err := s.Exec("UPDATE kv SET val = id * 10"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("DELETE FROM kv WHERE id = 2"); err != nil {
			t.Fatal(err)
		}
		res, err := s.Query("SELECT id, val FROM kv ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		for _, r := range res.Rows {
			rows = append(rows, fmt.Sprintf("%d:%d", r[0].Int(), r[1].Int()))
		}
		return rows
	}
	fine, coarse := run(false), run(true)
	if fmt.Sprint(fine) != fmt.Sprint(coarse) {
		t.Errorf("fine = %v, coarse = %v", fine, coarse)
	}
}
