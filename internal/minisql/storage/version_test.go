package storage

import (
	"testing"

	"pdmtune/internal/minisql/types"
)

func versionedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	err := db.CreateTable(&Schema{Name: "assy", Cols: []Column{
		{Name: "obid", Type: types.ColumnType{Kind: types.KindInt}, PrimaryKey: true},
		{Name: "name", Type: types.ColumnType{Kind: types.KindText}},
	}}, false)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestVersionBumpsOnMutations(t *testing.T) {
	db := versionedDB(t)
	tab, _ := db.Table("assy")
	if got := db.Versions().Epoch(); got != 0 {
		t.Fatalf("fresh epoch = %d, want 0", got)
	}

	id, err := tab.Insert(Row{types.NewInt(7), types.NewText("a")})
	if err != nil {
		t.Fatal(err)
	}
	afterInsert := db.Versions().LastModified(7)
	if afterInsert == 0 {
		t.Fatal("insert did not bump the object version")
	}
	if db.Versions().Epoch() != afterInsert {
		t.Fatalf("epoch %d != last bump %d", db.Versions().Epoch(), afterInsert)
	}

	if err := tab.Update(id, Row{types.NewInt(7), types.NewText("b")}); err != nil {
		t.Fatal(err)
	}
	afterUpdate := db.Versions().LastModified(7)
	if afterUpdate <= afterInsert {
		t.Fatalf("update stamp %d not beyond insert stamp %d", afterUpdate, afterInsert)
	}

	if err := tab.Delete(id); err != nil {
		t.Fatal(err)
	}
	afterDelete := db.Versions().LastModified(7)
	if afterDelete <= afterUpdate {
		t.Fatalf("delete stamp %d not beyond update stamp %d", afterDelete, afterUpdate)
	}

	// Rollback revival counts as a mutation too — a cache must not
	// trust an entry spanning an aborted transaction.
	if err := tab.undelete(id); err != nil {
		t.Fatal(err)
	}
	if db.Versions().LastModified(7) <= afterDelete {
		t.Fatal("undelete did not bump the object version")
	}

	if db.Versions().LastModified(999) != 0 {
		t.Error("untouched object has a version stamp")
	}
}

func TestVersionKeyOverride(t *testing.T) {
	db := versionedDB(t)
	// Registered before creation: remembered and applied at CREATE.
	if err := db.SetVersionKey("link", "left"); err != nil {
		t.Fatal(err)
	}
	err := db.CreateTable(&Schema{Name: "link", Cols: []Column{
		{Name: "obid", Type: types.ColumnType{Kind: types.KindInt}, PrimaryKey: true},
		{Name: "left", Type: types.ColumnType{Kind: types.KindInt}},
		{Name: "right", Type: types.ColumnType{Kind: types.KindInt}},
	}}, false)
	if err != nil {
		t.Fatal(err)
	}
	link, _ := db.Table("link")
	if _, err := link.Insert(Row{types.NewInt(1000), types.NewInt(5), types.NewInt(6)}); err != nil {
		t.Fatal(err)
	}
	if db.Versions().LastModified(5) == 0 {
		t.Error("link insert did not bump the parent (left) version")
	}
	if db.Versions().LastModified(1000) != 0 {
		t.Error("link insert bumped its own pk despite the override")
	}

	// Registered after creation: applied retroactively.
	if err := db.SetVersionKey("assy", "name"); err == nil {
		// name is TEXT — the override is accepted, but non-integer keys
		// are skipped at bump time.
		tab, _ := db.Table("assy")
		before := db.Versions().Epoch()
		if _, err := tab.Insert(Row{types.NewInt(8), types.NewText("x")}); err != nil {
			t.Fatal(err)
		}
		if db.Versions().LastModified(8) != 0 {
			t.Error("override to a text column still bumped the pk")
		}
		_ = before
	}
	if err := db.SetVersionKey("link", "nope"); err == nil {
		t.Error("SetVersionKey accepted a missing column on an existing table")
	}
}
