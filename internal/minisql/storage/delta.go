package storage

import (
	"fmt"

	"pdmtune/internal/minisql/types"
)

// ---------------------------------------------------------------------------
// Replication deltas
//
// A replica site keeps a full copy of the primary's database and pulls
// it forward by epoch: ExtractDelta collects, for every version key
// modified after the replica's last-seen epoch, the *current* rows
// keyed by it — full rows, not diffs, so applying a delta is a
// delete-then-insert per key and needs no per-row history. Deletions
// fall out naturally: a deleted row's key is in the modified set with
// no surviving rows, so the replica's delete has nothing to re-insert.
//
// The delta also carries each table's schema and indexes, so a fresh
// replica (since == 0) bootstraps its catalog from the first sync, and
// the primary's per-key modification stamps, so the replica's version
// log becomes a mirror of the primary's — which is what keeps the
// client cache's validate exchange working unchanged against a
// replica.

// IndexSpec describes one secondary index for delta transfer.
type IndexSpec struct {
	Name   string
	Column string
	Unique bool
}

// TableDelta is the per-table slice of a replication delta.
type TableDelta struct {
	// Schema is the table's full catalog entry (used to create the
	// table on a replica that does not have it yet).
	Schema *Schema
	// VersionKey is the table's version-key column ("" when the table
	// is not version-tracked; such tables are not replicated).
	VersionKey string
	// Indexes are the table's secondary indexes (the primary-key index
	// is implied by the schema).
	Indexes []IndexSpec
	// Rows are the current rows whose version key was modified after
	// the delta's Since epoch.
	Rows []Row
}

// Delta is everything a replica needs to advance from epoch Since to
// epoch Epoch.
type Delta struct {
	// Since is the epoch the delta starts above (the replica's
	// last-seen epoch; 0 for a full bootstrap).
	Since uint64
	// Epoch is the primary's epoch at extraction time — the replica's
	// new last-seen epoch after a successful apply.
	Epoch uint64
	// Stamps maps every version key modified after Since to the epoch
	// of its last mutation. Applying a delta deletes all replica rows
	// keyed by these and re-inserts the shipped Rows.
	Stamps map[int64]uint64
	// Tables are the per-table row sets, in catalog order.
	Tables []TableDelta
}

// RowCount reports the total number of rows the delta ships.
func (d *Delta) RowCount() int {
	n := 0
	for _, td := range d.Tables {
		n += len(td.Rows)
	}
	return n
}

// ModifiedSince returns the keys modified after the given epoch with
// their last-modified stamps, plus the log's current epoch.
func (v *VersionLog) ModifiedSince(since uint64) (map[int64]uint64, uint64) {
	if v == nil {
		return map[int64]uint64{}, 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[int64]uint64)
	for k, e := range v.modified {
		if e > since {
			out[k] = e
		}
	}
	return out, v.epoch
}

// SyncTo fast-forwards the log to a primary's state: the epoch is
// raised to at least epoch and every stamp is copied verbatim. It is
// the replica-side counterpart of ModifiedSince — after a sync the
// replica's log answers LastModified exactly as the primary's would
// (for the synced keys), which keeps client-side cache validation
// correct against a replica.
func (v *VersionLog) SyncTo(epoch uint64, stamps map[int64]uint64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch > v.epoch {
		v.epoch = epoch
	}
	for k, e := range stamps {
		if e > v.modified[k] {
			v.modified[k] = e
		}
	}
}

// ExtractDelta collects the replication delta above the given epoch:
// every version-tracked table contributes its current rows whose
// version key was modified after since. Call under the engine's read
// lock (the wire server does).
func (db *DB) ExtractDelta(since uint64) *Delta {
	stamps, epoch := db.vlog.ModifiedSince(since)
	d := &Delta{Since: since, Epoch: epoch, Stamps: stamps}
	for _, name := range db.TableNames() {
		t := db.tables[name]
		if t.verPos < 0 || t.vlog == nil {
			continue // not version-tracked: not replicated
		}
		td := TableDelta{
			Schema:     t.Schema,
			VersionKey: t.Schema.Cols[t.verPos].Name,
		}
		for _, ix := range t.indexes {
			if ix.Name == t.Schema.Name+"_pk" {
				continue
			}
			td.Indexes = append(td.Indexes, IndexSpec{Name: ix.Name, Column: ix.Column, Unique: ix.Unique})
		}
		if len(stamps) > 0 {
			t.Scan(func(id int, row Row) bool {
				if k, ok := rowVersionKey(row, t.verPos); ok {
					if _, mod := stamps[k]; mod {
						td.Rows = append(td.Rows, row)
					}
				}
				return true
			})
		}
		d.Tables = append(d.Tables, td)
	}
	return d
}

// rowVersionKey extracts the integer version key of a row (false for
// NULL or non-integer keys, which the version log never tracks).
func rowVersionKey(row Row, verPos int) (int64, bool) {
	if verPos < 0 || verPos >= len(row) {
		return 0, false
	}
	if v := row[verPos]; v.Kind() == types.KindInt {
		return v.Int(), true
	}
	return 0, false
}

// ApplyDelta applies a replication delta: per table, every row whose
// version key is in the delta's modified set is deleted and the
// shipped rows are inserted in their place; missing tables and indexes
// are created first. The row mutations bypass the replica's own
// version bumping — instead the primary's stamps are copied in via
// SyncTo, so the replica's log mirrors the primary's rather than
// inventing local epochs. The apply is transactional: on any error
// every mutation made so far is rolled back and the version log is
// left untouched. Call under the engine's write lock.
func (db *DB) ApplyDelta(d *Delta) error {
	if d == nil {
		return fmt.Errorf("storage: nil delta")
	}
	var undo []Undo
	// catUndo reverses catalog changes (created tables and indexes,
	// version-key redesignations) that the row undo log cannot.
	var catUndo []func()
	rollback := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			_ = undo[i].Apply()
		}
		for i := len(catUndo) - 1; i >= 0; i-- {
			catUndo[i]()
		}
	}
	for i := range d.Tables {
		td := &d.Tables[i]
		t, err := db.ensureDeltaTable(td, &catUndo)
		if err != nil {
			rollback()
			return err
		}
		// Suspend version bumping for the table while the delta applies
		// (the undo operations of a failed apply included).
		vlog := t.vlog
		t.vlog = nil
		err = applyTableDelta(t, td, d.Stamps, &undo)
		t.vlog = vlog
		if err != nil {
			// Re-suspend every table's bumping for the cross-table rollback.
			for j := 0; j <= i; j++ {
				if tt, ok := db.Table(d.Tables[j].Schema.Name); ok {
					v := tt.vlog
					tt.vlog = nil
					defer func(tt *Table, v *VersionLog) { tt.vlog = v }(tt, v)
				}
			}
			rollback()
			return err
		}
	}
	db.vlog.SyncTo(d.Epoch, d.Stamps)
	return nil
}

// ensureDeltaTable resolves (or creates) the delta's target table,
// including its version-key designation and secondary indexes. Every
// catalog change is paired with an undo closure appended to catUndo,
// so a later failure of the same apply can put the catalog back.
func (db *DB) ensureDeltaTable(td *TableDelta, catUndo *[]func()) (*Table, error) {
	if td.Schema == nil || td.Schema.Name == "" {
		return nil, fmt.Errorf("storage: delta table without a schema")
	}
	if _, existed := db.Table(td.Schema.Name); !existed {
		if err := db.CreateTable(td.Schema, false); err != nil {
			return nil, err
		}
		name := td.Schema.Name
		*catUndo = append(*catUndo, func() { _ = db.DropTable(name, true) })
	}
	t, _ := db.Table(td.Schema.Name)
	if td.VersionKey != "" {
		prevPos, prevLog := t.verPos, t.vlog
		if err := t.SetVersionKey(td.VersionKey, db.vlog); err != nil {
			return nil, err
		}
		if prevPos != t.verPos || prevLog != t.vlog {
			*catUndo = append(*catUndo, func() { t.verPos, t.vlog = prevPos, prevLog })
		}
	}
	for _, ix := range td.Indexes {
		if !t.HasIndex(ix.Name) {
			if err := t.CreateIndex(ix.Name, ix.Column, ix.Unique); err != nil {
				return nil, err
			}
			name := ix.Name
			*catUndo = append(*catUndo, func() { t.dropIndex(name) })
		}
	}
	return t, nil
}

// applyTableDelta replaces, in one table, every row keyed by a
// modified version key with the delta's shipped rows. Mutations are
// recorded into undo so a failed apply can roll back.
func applyTableDelta(t *Table, td *TableDelta, stamps map[int64]uint64, undo *[]Undo) error {
	// Delete phase: collect ids first — Scan must not observe its own
	// deletions.
	var stale []int
	t.Scan(func(id int, row Row) bool {
		if k, ok := rowVersionKey(row, t.verPos); ok {
			if _, mod := stamps[k]; mod {
				stale = append(stale, id)
			}
		}
		return true
	})
	for _, id := range stale {
		if err := t.Delete(id); err != nil {
			return fmt.Errorf("storage: delta delete in %s: %v", t.Schema.Name, err)
		}
		// UndoDelete revives the tombstoned row in place; no Before copy
		// is needed.
		*undo = append(*undo, Undo{Kind: UndoDelete, Table: t, RowID: id})
	}
	for _, row := range td.Rows {
		id, err := t.Insert(row)
		if err != nil {
			return fmt.Errorf("storage: delta insert into %s: %v", t.Schema.Name, err)
		}
		*undo = append(*undo, Undo{Kind: UndoInsert, Table: t, RowID: id})
	}
	return nil
}
