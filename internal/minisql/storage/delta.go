package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pdmtune/internal/minisql/types"
)

// ---------------------------------------------------------------------------
// Replication deltas
//
// A replica site keeps a full copy of the primary's database and pulls
// it forward by epoch: ExtractDelta collects, for every version key
// modified after the replica's last-seen epoch, the *current* rows
// keyed by it — full rows, not diffs, so applying a delta is a
// delete-then-insert per key and needs no per-row history. Deletions
// fall out naturally: a deleted row's key is in the modified set with
// no surviving rows, so the replica's delete has nothing to re-insert.
//
// The delta also carries each table's schema and indexes, so a fresh
// replica (since == 0) bootstraps its catalog from the first sync, and
// the primary's per-key modification stamps, so the replica's version
// log becomes a mirror of the primary's — which is what keeps the
// client cache's validate exchange working unchanged against a
// replica.
//
// Concurrency: extraction is a lock-free snapshot read — the stamp set
// and target epoch are captured atomically from the version log, then
// rows are read at that snapshot, so concurrent writers on the primary
// cannot tear a delta. Application pins every inserted or tombstoned
// version directly at the delta's epoch, which is above the replica's
// current epoch until the final SyncTo publishes it — so replica
// readers switch from the old state to the fully applied delta
// atomically, and a failed apply is invisible by construction (the
// physical rollback merely reclaims storage).

// IndexSpec describes one secondary index for delta transfer.
type IndexSpec struct {
	Name   string
	Column string
	Unique bool
}

// TableDelta is the per-table slice of a replication delta.
type TableDelta struct {
	// Schema is the table's full catalog entry (used to create the
	// table on a replica that does not have it yet).
	Schema *Schema
	// VersionKey is the table's version-key column ("" when the table
	// is not version-tracked; such tables are not replicated).
	VersionKey string
	// Indexes are the table's secondary indexes (the primary-key index
	// is implied by the schema).
	Indexes []IndexSpec
	// Rows are the rows, as of the delta's Epoch, whose version key was
	// modified after the delta's Since epoch.
	Rows []Row
}

// Delta is everything a replica needs to advance from epoch Since to
// epoch Epoch.
type Delta struct {
	// Since is the epoch the delta starts above (the replica's
	// last-seen epoch; 0 for a full bootstrap).
	Since uint64
	// Epoch is the primary's epoch at extraction time — the replica's
	// new last-seen epoch after a successful apply.
	Epoch uint64
	// Stamps maps every version key modified after Since to the epoch
	// of its last mutation. Applying a delta deletes all replica rows
	// keyed by these and re-inserts the shipped Rows.
	Stamps map[int64]uint64
	// Tables are the per-table row sets, in catalog order.
	Tables []TableDelta

	// Partial marks a subscription-filtered delta: rows outside the
	// requesting site's subscription were skipped. Stamps are always
	// complete — the replica's version log stays a full mirror even when
	// its row set is not, so cache validation and staleness bounds keep
	// working on a partial replica.
	Partial bool
	// Holds is the closure of version keys the subscription covers, as
	// resolved by the primary at extraction time (nil for full deltas).
	// The replica records it to route out-of-subscription reads.
	Holds []int64
	// Skipped counts the rows the subscription filter dropped.
	Skipped int
}

// RowCount reports the total number of rows the delta ships.
func (d *Delta) RowCount() int {
	n := 0
	for _, td := range d.Tables {
		n += len(td.Rows)
	}
	return n
}

// ModifiedSince returns the keys modified after the given epoch with
// their last-modified stamps, plus the log's current epoch. The pair
// is captured atomically, so every returned stamp is <= the returned
// epoch and a snapshot read at that epoch sees exactly the stamped
// state.
func (v *VersionLog) ModifiedSince(since uint64) (map[int64]uint64, uint64) {
	if v == nil {
		return map[int64]uint64{}, 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[int64]uint64)
	for k, e := range v.modified {
		if e > since {
			out[k] = e
		}
	}
	return out, v.epoch
}

// SyncTo fast-forwards the log to a primary's state: the epoch is
// raised to at least epoch and every stamp is copied verbatim. It is
// the replica-side counterpart of ModifiedSince — after a sync the
// replica's log answers LastModified exactly as the primary's would
// (for the synced keys), which keeps client-side cache validation
// correct against a replica. Raising the epoch is also what publishes
// an applied delta's rows to replica readers (their versions are
// pinned at the delta epoch, invisible to any earlier snapshot).
func (v *VersionLog) SyncTo(epoch uint64, stamps map[int64]uint64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch > v.epoch {
		v.epoch = epoch
	}
	for k, e := range stamps {
		if e > v.modified[k] {
			v.modified[k] = e
		}
	}
}

// ExtractDelta collects the replication delta above the given epoch:
// every version-tracked table contributes its rows, as visible at the
// capture epoch, whose version key was modified after since. No locks
// are held over the row collection — the snapshot read is consistent
// by itself, so the wire server can extract deltas while writers
// proceed.
func (db *DB) ExtractDelta(since uint64) *Delta {
	return db.ExtractDeltaFiltered(since, nil)
}

// ExtractDeltaFiltered is ExtractDelta with a row filter: a non-nil
// keep decides, per table and version key, whether a modified row is
// shipped. Skipped rows are counted but their stamps still travel —
// the replica's version log mirrors the primary's either way, only the
// row set is subscription-bounded. A nil keep ships everything.
func (db *DB) ExtractDeltaFiltered(since uint64, keep func(table string, key int64) bool) *Delta {
	stamps, epoch := db.vlog.ModifiedSince(since)
	d := &Delta{Since: since, Epoch: epoch, Stamps: stamps}
	for _, name := range db.TableNames() {
		t, ok := db.Table(name)
		if !ok {
			continue
		}
		idxs, verPos, vlog := t.meta()
		if verPos < 0 || vlog == nil {
			continue // not version-tracked: not replicated
		}
		td := TableDelta{
			Schema:     t.Schema,
			VersionKey: t.Schema.Cols[verPos].Name,
		}
		for _, ix := range idxs {
			if ix.Name == t.Schema.Name+"_pk" {
				continue
			}
			td.Indexes = append(td.Indexes, IndexSpec{Name: ix.Name, Column: ix.Column, Unique: ix.Unique})
		}
		if len(stamps) > 0 {
			t.ScanAt(epoch, func(id int, row Row) bool {
				if k, ok := rowVersionKey(row, verPos); ok {
					if _, mod := stamps[k]; mod {
						if keep != nil && !keep(td.Schema.Name, k) {
							d.Skipped++
							return true
						}
						td.Rows = append(td.Rows, row)
					}
				}
				return true
			})
		}
		d.Tables = append(d.Tables, td)
	}
	return d
}

// rowVersionKey extracts the integer version key of a row (false for
// NULL or non-integer keys, which the version log never tracks).
func rowVersionKey(row Row, verPos int) (int64, bool) {
	if verPos < 0 || verPos >= len(row) {
		return 0, false
	}
	if v := row[verPos]; v.Kind() == types.KindInt {
		return v.Int(), true
	}
	return 0, false
}

// insertAt stores a row as a version pinned directly at the given
// epoch (no version-log commit — delta applies copy the primary's
// stamps instead of minting local ones). Caller holds the write latch.
// The returned closure physically reverts the insert.
func (t *Table) insertAt(row Row, epoch uint64) (func(), error) {
	r, err := t.checkRow(row)
	if err != nil {
		return nil, err
	}
	idxs, _, _ := t.meta()
	for _, ix := range idxs {
		if err := ix.checkUnique(r[ix.colPos], -1); err != nil {
			return nil, err
		}
	}
	v := &version{row: r}
	v.begin.Store(epoch)
	s := &slot{}
	s.head.Store(v)
	id := t.appendSlot(s)
	for _, ix := range idxs {
		ix.add(r[ix.colPos], id)
	}
	t.liveN.Add(1)
	return func() {
		s.head.Store(&version{}) // dead to every snapshot
		t.liveN.Add(-1)
	}, nil
}

// deleteAt tombstones the row with the given id at the given epoch
// (see insertAt). Caller holds the write latch.
func (t *Table) deleteAt(id int, epoch uint64) (func(), error) {
	sl := *t.slots.Load()
	if id < 0 || id >= len(sl) {
		return nil, fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	s := sl[id]
	if _, ok := currentOf(s); !ok {
		return nil, fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	prev := s.head.Load()
	v := &version{prev: prev}
	v.begin.Store(epoch)
	s.head.Store(v)
	t.liveN.Add(-1)
	return func() {
		s.head.Store(prev)
		t.liveN.Add(1)
	}, nil
}

// ApplyDelta applies a replication delta: per table, every row whose
// version key is in the delta's modified set is deleted and the
// shipped rows are inserted in their place; missing tables and indexes
// are created first. Row versions are pinned at the delta's epoch and
// the primary's stamps are copied in via SyncTo, so the replica's log
// mirrors the primary's rather than inventing local epochs — and the
// whole delta becomes visible to replica readers atomically when
// SyncTo raises the epoch. The apply is transactional: on any error
// every mutation made so far is rolled back and the version log is
// left untouched. The write latches of every affected table are held
// (in sorted order) for the duration.
func (db *DB) ApplyDelta(d *Delta) error {
	return db.ApplyDeltaCtx(context.Background(), d)
}

// ApplyDeltaCtx is ApplyDelta with cancellation: the context is checked
// before any mutation and again between tables, and a cancelled apply
// rolls back completely — the replica keeps its pre-apply state, never
// a partially applied delta. (Within one table the apply is not
// interruptible; tables are the granularity at which a pull of many
// tables can be abandoned early.)
func (db *DB) ApplyDeltaCtx(ctx context.Context, d *Delta) error {
	if d == nil {
		return fmt.Errorf("storage: nil delta")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var undo []func()
	// catUndo reverses catalog changes (created tables and indexes,
	// version-key redesignations) that the row undo closures cannot.
	var catUndo []func()
	rollback := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		for i := len(catUndo) - 1; i >= 0; i-- {
			catUndo[i]()
		}
	}
	// Catalog phase: resolve or create every target table, then latch
	// them all in sorted name order (the same order every multi-table
	// writer uses, so applies cannot deadlock against procedures).
	targets := make([]*Table, len(d.Tables))
	for i := range d.Tables {
		t, err := db.ensureDeltaTable(&d.Tables[i], &catUndo)
		if err != nil {
			rollback()
			return err
		}
		targets[i] = t
	}
	order := make([]int, len(targets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		// Case-insensitive, matching the engine's LockTables order.
		return strings.ToLower(targets[order[a]].Schema.Name) < strings.ToLower(targets[order[b]].Schema.Name)
	})
	locked := make(map[*Table]bool, len(targets))
	for _, i := range order {
		if t := targets[i]; !locked[t] {
			t.Lock()
			locked[t] = true
		}
	}
	defer func() {
		for t := range locked {
			t.Unlock()
		}
	}()
	for i := range d.Tables {
		if err := ctx.Err(); err != nil {
			rollback()
			return err
		}
		if err := applyTableDelta(targets[i], &d.Tables[i], d.Stamps, d.Epoch, &undo); err != nil {
			rollback()
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		rollback()
		return err
	}
	db.vlog.SyncTo(d.Epoch, d.Stamps)
	return nil
}

// DiscardSince erases every row whose version key was modified after
// the given epoch — the divergence-erasing step of a deposed primary's
// rejoin: writes it accepted after the promotion base epoch were never
// replicated, so before pulling from the new primary it rewinds to the
// base and lets the following sync re-ship the authoritative rows. The
// discard is a self-delta (this database's own stamps, no rows) and so
// inherits ApplyDelta's atomicity. It reports whether anything was
// discarded: a caller that erased divergent keys must make its next
// pull a full one (since 0) — the new primary never modified those
// keys, so an incremental delta would not re-ship their authoritative
// rows.
func (db *DB) DiscardSince(since uint64) (bool, error) {
	stamps, epoch := db.vlog.ModifiedSince(since)
	if len(stamps) == 0 {
		return false, nil
	}
	d := &Delta{Since: since, Epoch: epoch, Stamps: stamps}
	for _, name := range db.TableNames() {
		t, ok := db.Table(name)
		if !ok {
			continue
		}
		_, verPos, vlog := t.meta()
		if verPos < 0 || vlog == nil {
			continue
		}
		d.Tables = append(d.Tables, TableDelta{
			Schema:     t.Schema,
			VersionKey: t.Schema.Cols[verPos].Name,
		})
	}
	return true, db.ApplyDelta(d)
}

// ensureDeltaTable resolves (or creates) the delta's target table,
// including its version-key designation and secondary indexes. Every
// catalog change is paired with an undo closure appended to catUndo,
// so a later failure of the same apply can put the catalog back.
func (db *DB) ensureDeltaTable(td *TableDelta, catUndo *[]func()) (*Table, error) {
	if td.Schema == nil || td.Schema.Name == "" {
		return nil, fmt.Errorf("storage: delta table without a schema")
	}
	if _, existed := db.Table(td.Schema.Name); !existed {
		if err := db.CreateTable(td.Schema, false); err != nil {
			return nil, err
		}
		name := td.Schema.Name
		*catUndo = append(*catUndo, func() { _ = db.DropTable(name, true) })
	}
	t, _ := db.Table(td.Schema.Name)
	if td.VersionKey != "" {
		_, prevPos, prevLog := t.meta()
		if err := t.SetVersionKey(td.VersionKey, db.vlog); err != nil {
			return nil, err
		}
		if _, pos, log := t.meta(); prevPos != pos || prevLog != log {
			*catUndo = append(*catUndo, func() {
				t.metaMu.Lock()
				t.verPos, t.vlog = prevPos, prevLog
				t.metaMu.Unlock()
			})
		}
	}
	for _, ix := range td.Indexes {
		if !t.HasIndex(ix.Name) {
			if err := t.CreateIndex(ix.Name, ix.Column, ix.Unique); err != nil {
				return nil, err
			}
			name := ix.Name
			*catUndo = append(*catUndo, func() { t.dropIndex(name) })
		}
	}
	return t, nil
}

// applyTableDelta replaces, in one table, every row keyed by a
// modified version key with the delta's shipped rows, pinning all
// versions at the delta epoch. Mutations are recorded into undo so a
// failed apply can roll back. Caller holds the table's write latch.
func applyTableDelta(t *Table, td *TableDelta, stamps map[int64]uint64, epoch uint64, undo *[]func()) error {
	_, verPos, _ := t.meta()
	// Delete phase: collect ids first — the scan must not observe its
	// own deletions.
	var stale []int
	t.Scan(func(id int, row Row) bool {
		if k, ok := rowVersionKey(row, verPos); ok {
			if _, mod := stamps[k]; mod {
				stale = append(stale, id)
			}
		}
		return true
	})
	for _, id := range stale {
		revert, err := t.deleteAt(id, epoch)
		if err != nil {
			return fmt.Errorf("storage: delta delete in %s: %v", t.Schema.Name, err)
		}
		*undo = append(*undo, revert)
	}
	for _, row := range td.Rows {
		revert, err := t.insertAt(row, epoch)
		if err != nil {
			return fmt.Errorf("storage: delta insert into %s: %v", t.Schema.Name, err)
		}
		*undo = append(*undo, revert)
	}
	return nil
}
