// Package storage implements the physical layer of the minisql engine:
// table schemas (catalog), in-memory multi-version tables, hash indexes
// maintained under DML, and undo records for transaction rollback. The
// PDM database server holds one storage.DB per instance.
//
// Concurrency contract (the MVCC redesign):
//
//   - Every row lives in a slot holding an immutable version chain.
//     A version's begin epoch is the VersionLog epoch of the statement
//     that committed it; a deletion pushes a tombstone version. Readers
//     resolve a slot at a snapshot epoch by walking the chain to the
//     newest version whose begin epoch is <= the snapshot — so reads
//     take no locks at all and never block writers.
//   - Writers (Insert/Update/Delete and their *C batch variants) must
//     hold the table's write latch — Table.Lock/Unlock — for the whole
//     statement. The latch is exposed rather than taken internally so
//     the engine can cover a multi-mutation statement (or, via the
//     engine's LockTables, a multi-statement procedure) with one
//     acquisition. This replaces the old "mutations already run under
//     the engine's writer lock" contract: there is no engine-wide
//     writer lock any more.
//   - A Commit batch groups all mutations of one statement under one
//     VersionLog epoch, published atomically: versions are created
//     pending (invisible to every snapshot) and stamped inside the
//     log's critical section, so a concurrent snapshot sees either none
//     or all of a statement's rows.
//   - Catalog operations (CreateTable/DropTable/Table) synchronize on
//     the DB's own catalog lock; index attachment and version-key
//     changes on the table's metaMu.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pdmtune/internal/minisql/types"
)

// ---------------------------------------------------------------------------
// Object version log
//
// The PDM layer caches fetched product structures at the client and
// needs to know when a cached entry went stale. The storage layer is
// the single place every mutation passes through, so it keeps the
// ground truth: a database-wide monotonic epoch and, per object key,
// the epoch of the object's last mutation. "Object key" is the value
// of a table's version-key column — the integer primary key by
// default (assy.obid, comp.obid), overridable per table so that link
// rows version their *parent* object (link.left): inserting or
// deleting a child link bumps the parent's version, which is exactly
// the granularity a cached single-level expansion needs.
//
// Since the MVCC redesign the log is also the commit clock: a row
// version's begin epoch is the epoch its statement committed at, and a
// snapshot is simply "the state as of epoch E".

// VersionLog records the last-modified epoch of every object key. It
// has its own lock; it is read and written from any goroutine (writers
// commit through it, snapshot readers sample it, the wire server's
// validate handler queries it).
type VersionLog struct {
	mu       sync.RWMutex
	epoch    uint64
	modified map[int64]uint64
}

// NewVersionLog returns an empty log at epoch 0.
func NewVersionLog() *VersionLog {
	return &VersionLog{modified: map[int64]uint64{}}
}

// Bump advances the epoch and stamps every given key with it.
func (v *VersionLog) Bump(keys ...int64) {
	if v == nil || len(keys) == 0 {
		return
	}
	v.mu.Lock()
	v.epoch++
	for _, k := range keys {
		v.modified[k] = v.epoch
	}
	v.mu.Unlock()
}

// commit advances the epoch (when keys were touched), stamps the keys,
// and runs publish inside the log's critical section. Publishing under
// the lock is what makes a statement atomic to snapshots: Epoch() can
// never return an epoch whose row versions are not yet visible, and a
// snapshot taken before the commit can never observe a partial
// statement. With no keys the epoch does not advance (preserving the
// pre-MVCC rule that only version-tracked mutations move the clock) and
// publish runs at the current epoch.
func (v *VersionLog) commit(keys []int64, publish func(epoch uint64)) uint64 {
	if v == nil {
		if publish != nil {
			publish(0)
		}
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.epoch
	if len(keys) > 0 {
		v.epoch++
		e = v.epoch
		for _, k := range keys {
			v.modified[k] = e
		}
	}
	if publish != nil {
		publish(e)
	}
	return e
}

// Epoch returns the current epoch (the stamp a fetch made now would
// carry, and the snapshot a statement started now would read at).
func (v *VersionLog) Epoch() uint64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch
}

// LastModified returns the epoch of the key's last mutation (0 when
// the object was never mutated since the log started).
func (v *VersionLog) LastModified(key int64) uint64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.modified[key]
}

// ---------------------------------------------------------------------------
// Schemas and rows

// Column is one column of a table schema.
type Column struct {
	Name       string
	Type       types.ColumnType
	NotNull    bool
	PrimaryKey bool
	HasDefault bool
	Default    types.Value
}

// Schema is the catalog entry of a table.
type Schema struct {
	Name string
	Cols []Column
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	for i := range s.Cols {
		if strings.EqualFold(s.Cols[i].Name, name) {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in declaration order.
func (s *Schema) ColNames() []string {
	out := make([]string, len(s.Cols))
	for i := range s.Cols {
		out[i] = s.Cols[i].Name
	}
	return out
}

// Row is one tuple; len(Row) == len(Schema.Cols). Rows are immutable
// once stored: an update creates a new version with a new row slice.
type Row = []types.Value

// ---------------------------------------------------------------------------
// Version chains

// Snapshot epochs. Latest reads the newest committed state; pending
// marks a version created by a statement that has not committed yet
// (invisible to every snapshot, Latest included).
const (
	pendingEpoch = ^uint64(0)
	// Latest is the snapshot epoch denoting the latest committed state.
	Latest = ^uint64(0) - 1
)

// version is one immutable revision of a slot's row. row == nil marks a
// deletion tombstone. begin is the commit epoch (pendingEpoch until the
// owning statement's Commit stamps it); prev links to the superseded
// version, giving snapshot readers the chain to walk.
type version struct {
	row   Row
	begin atomic.Uint64
	prev  *version
}

// slot is one logical row: a stable id owning a version chain. The head
// pointer is the only mutable cell; it is published atomically so
// lock-free readers always see a fully built version.
type slot struct {
	head atomic.Pointer[version]
}

// visibleVersion resolves a chain at a snapshot epoch: the newest
// version committed at or before it (nil when the slot did not exist).
func visibleVersion(head *version, epoch uint64) *version {
	for v := head; v != nil; v = v.prev {
		if v.begin.Load() <= epoch {
			return v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Commit batches

// Commit groups the row mutations of one statement into a single
// version-log epoch. Mutations performed through InsertC/UpdateC/
// DeleteC create pending (invisible) versions; Commit stamps them all
// with one freshly minted epoch inside the log's critical section, so
// the statement becomes visible to snapshots atomically. Abort unwinds
// the pending versions instead (the caller must still hold the write
// latches it mutated under).
type Commit struct {
	vlog *VersionLog
	keys []int64
	pend []*version
	undo []func()
	done bool
}

// NewCommit starts a commit batch against the given log (nil is
// allowed: mutations then publish at epoch 0, for standalone tables).
func NewCommit(vlog *VersionLog) *Commit { return &Commit{vlog: vlog} }

// add records one pending mutation: the version to stamp, the version
// keys it modified, and the closure that physically reverts it.
func (c *Commit) add(v *version, keys []int64, revert func()) {
	c.pend = append(c.pend, v)
	c.keys = append(c.keys, keys...)
	c.undo = append(c.undo, revert)
}

// Commit stamps every pending version with one new epoch and returns
// it. The batch must not be reused.
func (c *Commit) Commit() uint64 {
	if c.done {
		return 0
	}
	c.done = true
	return c.vlog.commit(c.keys, func(e uint64) {
		for _, v := range c.pend {
			v.begin.Store(e)
		}
	})
}

// Abort physically reverts every pending mutation, newest first. The
// caller must hold the same write latches the mutations ran under.
func (c *Commit) Abort() {
	if c.done {
		return
	}
	c.done = true
	for i := len(c.undo) - 1; i >= 0; i-- {
		c.undo[i]()
	}
}

// ---------------------------------------------------------------------------
// Indexes

// Index is a hash index over a single column. Buckets map a value key
// to the slot ids that ever carried the value; lookups filter the
// candidates against the rows visible at the requested snapshot, so
// superseded versions never leak out and no bucket maintenance is
// needed when a version dies. The bucket map has its own small lock
// (mutations run under the table's write latch, but lock-free readers
// copy buckets concurrently).
type Index struct {
	Name   string
	Column string
	colPos int
	Unique bool

	t       *Table
	mu      sync.RWMutex
	buckets map[string][]int
}

// add registers a slot id under the value's key (idempotent: a slot
// re-acquiring a value it already had keeps one entry).
func (ix *Index) add(v types.Value, id int) {
	k := v.Key()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, x := range ix.buckets[k] {
		if x == id {
			return
		}
	}
	ix.buckets[k] = append(ix.buckets[k], id)
}

// candidates returns a copy of the bucket for the value's key.
func (ix *Index) candidates(v types.Value) []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	b := ix.buckets[v.Key()]
	if len(b) == 0 {
		return nil
	}
	return append([]int(nil), b...)
}

// Lookup returns the ids of rows whose indexed column equals v in the
// latest committed state.
func (ix *Index) Lookup(v types.Value) []int { return ix.LookupAt(Latest, v) }

// LookupAt returns the ids of rows whose indexed column equals v in the
// snapshot at the given epoch. Candidates come from the hash bucket and
// are verified against the visible row, so entries left behind by old
// versions are filtered here.
func (ix *Index) LookupAt(epoch uint64, v types.Value) []int {
	cand := ix.candidates(v)
	if len(cand) == 0 {
		return nil
	}
	key := v.Key()
	out := cand[:0]
	for _, id := range cand {
		if row, ok := ix.t.GetAt(epoch, id); ok && row[ix.colPos].Key() == key {
			out = append(out, id)
		}
	}
	return out
}

// checkUnique reports a duplicate-key error when a row other than self
// currently carries the value (pending versions of the running
// statement included — the statement sees its own effects).
func (ix *Index) checkUnique(v types.Value, self int) error {
	if !ix.Unique || v.IsNull() {
		return nil
	}
	key := v.Key()
	for _, id := range ix.candidates(v) {
		if id == self {
			continue
		}
		if row, ok := ix.t.currentRow(id); ok && row[ix.colPos].Key() == key {
			return fmt.Errorf("storage: duplicate key %s for unique index %s", v, ix.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tables

// Table is a multi-version table: an append-only array of slots, each
// owning a version chain. Snapshot readers (GetAt/ScanAt/LookupAt) are
// lock-free; writers must hold the table's write latch (Lock/Unlock)
// for the whole statement.
type Table struct {
	Schema *Schema

	// latch is the per-table write latch. It is exported as Lock/
	// Unlock/TryLock so the engine can hold it across a whole statement
	// (or across several, for multi-table procedures); the mutation
	// methods themselves do not take it.
	latch sync.Mutex

	// slots is the published slot array; appends store a fresh header so
	// concurrent readers iterate a consistent prefix.
	slots atomic.Pointer[[]*slot]
	liveN atomic.Int64

	// metaMu guards the index list and the version-key designation
	// (mutated by DDL and delta bootstrap, read by every statement).
	metaMu  sync.RWMutex
	indexes []*Index
	vlog    *VersionLog
	verPos  int
}

// NewTable creates an empty table for the schema. A unique index is
// created automatically for a PRIMARY KEY column.
func NewTable(schema *Schema) (*Table, error) {
	t := &Table{Schema: schema, verPos: -1}
	empty := make([]*slot, 0)
	t.slots.Store(&empty)
	for i, c := range schema.Cols {
		if c.PrimaryKey {
			idx := &Index{
				Name:    schema.Name + "_pk",
				Column:  c.Name,
				colPos:  i,
				Unique:  true,
				t:       t,
				buckets: map[string][]int{},
			}
			t.indexes = append(t.indexes, idx)
			t.verPos = i // objects version by their primary key by default
		}
	}
	return t, nil
}

// Lock acquires the table's write latch. Writers — the engine's DML
// statements, delta applies, rollbacks — hold it for their whole
// statement; snapshot readers never take it.
func (t *Table) Lock() { t.latch.Lock() }

// TryLock acquires the write latch without blocking, reporting success.
func (t *Table) TryLock() bool { return t.latch.TryLock() }

// Unlock releases the write latch.
func (t *Table) Unlock() { t.latch.Unlock() }

// SetVersionKey designates the column whose integer value identifies
// the versioned object of each row (overriding the primary-key
// default) and attaches the log the table reports bumps to.
func (t *Table) SetVersionKey(column string, vlog *VersionLog) error {
	pos := t.Schema.ColIndex(column)
	if pos < 0 {
		return fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, column)
	}
	t.metaMu.Lock()
	t.verPos = pos
	t.vlog = vlog
	t.metaMu.Unlock()
	return nil
}

// meta returns the table's index list and version-key position under
// the meta lock (the slice is append-only, so holding the returned
// header without the lock is safe).
func (t *Table) meta() ([]*Index, int, *VersionLog) {
	t.metaMu.RLock()
	defer t.metaMu.RUnlock()
	return t.indexes, t.verPos, t.vlog
}

// versionKeys extracts the version keys of the given rows (non-integer
// or NULL keys are skipped).
func versionKeys(verPos int, rows ...Row) []int64 {
	if verPos < 0 {
		return nil
	}
	var keys []int64
	for _, r := range rows {
		if k, ok := rowVersionKey(r, verPos); ok {
			keys = append(keys, k)
		}
	}
	return keys
}

// NumRows reports the number of live rows (pending mutations of an
// uncommitted statement included).
func (t *Table) NumRows() int { return int(t.liveN.Load()) }

// CreateIndex attaches a hash index on the named column and backfills
// it from the current rows. Callers mutating concurrently must hold
// the write latch (the engine does); snapshot readers only see the
// index after it is fully built.
func (t *Table) CreateIndex(name, column string, unique bool) error {
	pos := t.Schema.ColIndex(column)
	if pos < 0 {
		return fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, column)
	}
	if t.HasIndex(name) {
		return fmt.Errorf("storage: index %s already exists", name)
	}
	idx := &Index{Name: name, Column: column, colPos: pos, Unique: unique, t: t, buckets: map[string][]int{}}
	sl := *t.slots.Load()
	for id, s := range sl {
		row, ok := currentOf(s)
		if !ok {
			continue
		}
		if err := idx.checkUnique(row[pos], id); err != nil {
			return err
		}
		idx.add(row[pos], id)
	}
	t.metaMu.Lock()
	t.indexes = append(t.indexes, idx)
	t.metaMu.Unlock()
	return nil
}

// HasIndex reports whether an index with the given name exists.
func (t *Table) HasIndex(name string) bool {
	idxs, _, _ := t.meta()
	for _, idx := range idxs {
		if strings.EqualFold(idx.Name, name) {
			return true
		}
	}
	return false
}

// IndexOn returns the index covering the column, or nil.
func (t *Table) IndexOn(column string) *Index {
	idxs, _, _ := t.meta()
	for _, idx := range idxs {
		if strings.EqualFold(idx.Column, column) {
			return idx
		}
	}
	return nil
}

// Indexes returns all attached indexes.
func (t *Table) Indexes() []*Index {
	idxs, _, _ := t.meta()
	return idxs
}

// dropIndex detaches an index by name (the catalog rollback of a
// failed delta apply; a no-op when the index does not exist).
func (t *Table) dropIndex(name string) {
	t.metaMu.Lock()
	defer t.metaMu.Unlock()
	for i, ix := range t.indexes {
		if strings.EqualFold(ix.Name, name) {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return
		}
	}
}

// checkRow validates arity, NOT NULL and coerces values to column types.
func (t *Table) checkRow(row Row) (Row, error) {
	if len(row) != len(t.Schema.Cols) {
		return nil, fmt.Errorf("storage: table %s expects %d values, got %d",
			t.Schema.Name, len(t.Schema.Cols), len(row))
	}
	out := make(Row, len(row))
	for i, c := range t.Schema.Cols {
		v, err := types.Coerce(row[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %v", t.Schema.Name, c.Name, err)
		}
		if v.IsNull() && (c.NotNull || c.PrimaryKey) {
			return nil, fmt.Errorf("storage: column %s.%s is NOT NULL", t.Schema.Name, c.Name)
		}
		out[i] = v
	}
	return out, nil
}

// currentOf resolves a slot's current row — the chain head, pending
// versions included — which is the state a writer holding the latch
// operates on.
func currentOf(s *slot) (Row, bool) {
	h := s.head.Load()
	if h == nil || h.row == nil {
		return nil, false
	}
	return h.row, true
}

// currentRow is currentOf by slot id.
func (t *Table) currentRow(id int) (Row, bool) {
	sl := *t.slots.Load()
	if id < 0 || id >= len(sl) {
		return nil, false
	}
	return currentOf(sl[id])
}

// appendSlot publishes a new slot and returns its id. Caller holds the
// write latch; the atomic header store releases the element write to
// concurrent readers.
func (t *Table) appendSlot(s *slot) int {
	old := t.slots.Load()
	id := len(*old)
	ns := append(*old, s)
	t.slots.Store(&ns)
	return id
}

// InsertC validates and stores a row as a pending version in the
// commit batch, returning its slot id. Caller holds the write latch.
func (t *Table) InsertC(c *Commit, row Row) (int, error) {
	r, err := t.checkRow(row)
	if err != nil {
		return 0, err
	}
	idxs, verPos, _ := t.meta()
	for _, ix := range idxs {
		if err := ix.checkUnique(r[ix.colPos], -1); err != nil {
			return 0, err
		}
	}
	v := &version{row: r}
	v.begin.Store(pendingEpoch)
	s := &slot{}
	s.head.Store(v)
	id := t.appendSlot(s)
	for _, ix := range idxs {
		ix.add(r[ix.colPos], id)
	}
	t.liveN.Add(1)
	c.add(v, versionKeys(verPos, r), func() {
		// Kill the slot: a tombstone at epoch 0 is dead to every snapshot.
		dead := &version{}
		s.head.Store(dead)
		t.liveN.Add(-1)
	})
	return id, nil
}

// UpdateC replaces the row with the given id as a pending version in
// the commit batch. Caller holds the write latch.
func (t *Table) UpdateC(c *Commit, id int, row Row) error {
	sl := *t.slots.Load()
	if id < 0 || id >= len(sl) {
		return fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	s := sl[id]
	old, ok := currentOf(s)
	if !ok {
		return fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	r, err := t.checkRow(row)
	if err != nil {
		return err
	}
	idxs, verPos, _ := t.meta()
	for _, ix := range idxs {
		if old[ix.colPos].Equal(r[ix.colPos]) {
			continue
		}
		if err := ix.checkUnique(r[ix.colPos], id); err != nil {
			return err
		}
	}
	prev := s.head.Load()
	v := &version{row: r, prev: prev}
	v.begin.Store(pendingEpoch)
	s.head.Store(v)
	for _, ix := range idxs {
		if !old[ix.colPos].Equal(r[ix.colPos]) {
			ix.add(r[ix.colPos], id)
		}
	}
	c.add(v, versionKeys(verPos, old, r), func() { s.head.Store(prev) })
	return nil
}

// DeleteC tombstones the row with the given id as a pending version in
// the commit batch. Caller holds the write latch.
func (t *Table) DeleteC(c *Commit, id int) error {
	sl := *t.slots.Load()
	if id < 0 || id >= len(sl) {
		return fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	s := sl[id]
	old, ok := currentOf(s)
	if !ok {
		return fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	_, verPos, _ := t.meta()
	prev := s.head.Load()
	v := &version{prev: prev} // tombstone
	v.begin.Store(pendingEpoch)
	s.head.Store(v)
	t.liveN.Add(-1)
	c.add(v, versionKeys(verPos, old), func() {
		s.head.Store(prev)
		t.liveN.Add(1)
	})
	return nil
}

// Insert validates and stores a row, committing it immediately under
// its own epoch, and returns its slot id. (Single-mutation auto-commit;
// the engine's statements use InsertC with a shared batch instead.)
func (t *Table) Insert(row Row) (int, error) {
	_, _, vlog := t.meta()
	c := NewCommit(vlog)
	id, err := t.InsertC(c, row)
	if err != nil {
		c.Abort()
		return 0, err
	}
	c.Commit()
	return id, nil
}

// Update replaces the row with the given id, committing immediately.
func (t *Table) Update(id int, row Row) error {
	_, _, vlog := t.meta()
	c := NewCommit(vlog)
	if err := t.UpdateC(c, id, row); err != nil {
		c.Abort()
		return err
	}
	c.Commit()
	return nil
}

// Delete tombstones the row with the given id, committing immediately.
func (t *Table) Delete(id int) error {
	_, _, vlog := t.meta()
	c := NewCommit(vlog)
	if err := t.DeleteC(c, id); err != nil {
		c.Abort()
		return err
	}
	c.Commit()
	return nil
}

// undelete revives a tombstoned row during rollback: a fresh version
// carrying the deleted row is pushed onto the chain (the tombstone
// stays visible to snapshots that saw the delete). Fails when another
// row has taken a unique key in the meantime.
func (t *Table) undelete(id int) error {
	sl := *t.slots.Load()
	if id < 0 || id >= len(sl) {
		return fmt.Errorf("storage: row %d of %s is not dead", id, t.Schema.Name)
	}
	s := sl[id]
	h := s.head.Load()
	if h == nil || h.row != nil || h.prev == nil || h.prev.row == nil {
		return fmt.Errorf("storage: row %d of %s is not dead", id, t.Schema.Name)
	}
	row := h.prev.row
	idxs, verPos, vlog := t.meta()
	for _, ix := range idxs {
		if err := ix.checkUnique(row[ix.colPos], id); err != nil {
			return err
		}
	}
	c := NewCommit(vlog)
	v := &version{row: row, prev: h}
	v.begin.Store(pendingEpoch)
	s.head.Store(v)
	for _, ix := range idxs {
		ix.add(row[ix.colPos], id)
	}
	t.liveN.Add(1)
	c.add(v, versionKeys(verPos, row), func() {
		s.head.Store(h)
		t.liveN.Add(-1)
	})
	c.Commit()
	return nil
}

// GetAt returns the row with the given id as visible at the snapshot
// epoch. Lock-free.
func (t *Table) GetAt(epoch uint64, id int) (Row, bool) {
	sl := *t.slots.Load()
	if id < 0 || id >= len(sl) {
		return nil, false
	}
	v := visibleVersion(sl[id].head.Load(), epoch)
	if v == nil || v.row == nil {
		return nil, false
	}
	return v.row, true
}

// Get returns the row with the given id in the latest committed state.
func (t *Table) Get(id int) (Row, bool) { return t.GetAt(Latest, id) }

// ScanAt calls fn for every row visible at the snapshot epoch, in
// insertion order, until fn returns false. Lock-free; the row must not
// be mutated by fn.
func (t *Table) ScanAt(epoch uint64, fn func(id int, row Row) bool) {
	sl := *t.slots.Load()
	for id, s := range sl {
		v := visibleVersion(s.head.Load(), epoch)
		if v == nil || v.row == nil {
			continue
		}
		if !fn(id, v.row) {
			return
		}
	}
}

// Scan calls fn for every live row of the latest committed state in
// insertion order until fn returns false.
func (t *Table) Scan(fn func(id int, row Row) bool) { t.ScanAt(Latest, fn) }

// ---------------------------------------------------------------------------
// Database catalog

// DB is a set of named tables. The catalog map has its own lock;
// individual tables carry their own write latches and lock-free read
// paths (see the package comment for the full concurrency contract).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// vlog is the database-wide object version log every
	// version-tracked table commits through.
	vlog *VersionLog
	// versionKeys maps lower-cased table names to version-key column
	// overrides, applied when the table is (re)created.
	versionKeys map[string]string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, vlog: NewVersionLog(), versionKeys: map[string]string{}}
}

// Versions exposes the database's object version log.
func (db *DB) Versions() *VersionLog { return db.vlog }

// SetVersionKey overrides the version-key column of a table: its rows
// then version the object identified by that column's value instead of
// their primary key (e.g. link rows versioning their parent via
// "left"). The override applies immediately when the table exists and
// is remembered for tables created later.
func (db *DB) SetVersionKey(table, column string) error {
	db.mu.Lock()
	db.versionKeys[strings.ToLower(table)] = column
	t, ok := db.tables[strings.ToLower(table)]
	db.mu.Unlock()
	if ok {
		return t.SetVersionKey(column, db.vlog)
	}
	return nil
}

// Table resolves a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable registers a new table.
func (db *DB) CreateTable(schema *Schema, ifNotExists bool) error {
	key := strings.ToLower(schema.Name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("storage: table %s already exists", schema.Name)
	}
	if len(schema.Cols) == 0 {
		return fmt.Errorf("storage: table %s has no columns", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("storage: duplicate column %s in table %s", c.Name, schema.Name)
		}
		seen[lc] = true
	}
	t, err := NewTable(schema)
	if err != nil {
		return err
	}
	t.vlog = db.vlog
	if col, ok := db.versionKeys[key]; ok {
		if err := t.SetVersionKey(col, db.vlog); err != nil {
			return err
		}
	}
	db.tables[key] = t
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string, ifExists bool) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("storage: table %s does not exist", name)
	}
	delete(db.tables, key)
	return nil
}

// ---------------------------------------------------------------------------
// Undo log

// UndoKind discriminates undo records.
type UndoKind uint8

// Undo record kinds.
const (
	UndoInsert UndoKind = iota // row was inserted: delete it
	UndoDelete                 // row was deleted: revive it
	UndoUpdate                 // row was updated: restore Before
)

// Undo is one reversible mutation.
type Undo struct {
	Kind   UndoKind
	Table  *Table
	RowID  int
	Before Row
}

// Apply reverses the recorded mutation as a fresh committed mutation
// (rollback pushes new versions — it never rewrites history a snapshot
// might be reading). The caller must hold the table's write latch.
func (u Undo) Apply() error {
	switch u.Kind {
	case UndoInsert:
		return u.Table.Delete(u.RowID)
	case UndoDelete:
		return u.Table.undelete(u.RowID)
	case UndoUpdate:
		return u.Table.Update(u.RowID, u.Before)
	}
	return fmt.Errorf("storage: unknown undo kind %d", u.Kind)
}
