// Package storage implements the physical layer of the minisql engine:
// table schemas (catalog), in-memory heap tables with tombstoned row ids,
// hash indexes maintained under DML, and undo records for transaction
// rollback. The PDM database server holds one storage.DB per instance.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pdmtune/internal/minisql/types"
)

// ---------------------------------------------------------------------------
// Object version log
//
// The PDM layer caches fetched product structures at the client and
// needs to know when a cached entry went stale. The storage layer is
// the single place every mutation passes through, so it keeps the
// ground truth: a database-wide monotonic epoch and, per object key,
// the epoch of the object's last mutation. "Object key" is the value
// of a table's version-key column — the integer primary key by
// default (assy.obid, comp.obid), overridable per table so that link
// rows version their *parent* object (link.left): inserting or
// deleting a child link bumps the parent's version, which is exactly
// the granularity a cached single-level expansion needs.

// VersionLog records the last-modified epoch of every object key. It
// has its own lock (mutations already run under the engine's writer
// lock; reads may come from any goroutine, e.g. the wire server's
// validate handler).
type VersionLog struct {
	mu       sync.RWMutex
	epoch    uint64
	modified map[int64]uint64
}

// NewVersionLog returns an empty log at epoch 0.
func NewVersionLog() *VersionLog {
	return &VersionLog{modified: map[int64]uint64{}}
}

// Bump advances the epoch and stamps every given key with it.
func (v *VersionLog) Bump(keys ...int64) {
	if v == nil || len(keys) == 0 {
		return
	}
	v.mu.Lock()
	v.epoch++
	for _, k := range keys {
		v.modified[k] = v.epoch
	}
	v.mu.Unlock()
}

// Epoch returns the current epoch (the stamp a fetch made now would
// carry).
func (v *VersionLog) Epoch() uint64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch
}

// LastModified returns the epoch of the key's last mutation (0 when
// the object was never mutated since the log started).
func (v *VersionLog) LastModified(key int64) uint64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.modified[key]
}

// Column is one column of a table schema.
type Column struct {
	Name       string
	Type       types.ColumnType
	NotNull    bool
	PrimaryKey bool
	HasDefault bool
	Default    types.Value
}

// Schema is the catalog entry of a table.
type Schema struct {
	Name string
	Cols []Column
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	for i := range s.Cols {
		if strings.EqualFold(s.Cols[i].Name, name) {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in declaration order.
func (s *Schema) ColNames() []string {
	out := make([]string, len(s.Cols))
	for i := range s.Cols {
		out[i] = s.Cols[i].Name
	}
	return out
}

// Row is one tuple; len(Row) == len(Schema.Cols).
type Row = []types.Value

// Index is a hash index over a single column.
type Index struct {
	Name    string
	Column  string
	colPos  int
	Unique  bool
	buckets map[string][]int // value key -> live row ids
}

// Table is a heap table with tombstones and attached indexes.
type Table struct {
	Schema  *Schema
	rows    []Row
	dead    []bool
	liveN   int
	indexes []*Index

	// vlog receives a version bump for every row mutation; verPos is
	// the column whose integer value identifies the versioned object
	// (-1: the table is not version-tracked).
	vlog   *VersionLog
	verPos int
}

// NewTable creates an empty table for the schema. A unique index is
// created automatically for a PRIMARY KEY column.
func NewTable(schema *Schema) (*Table, error) {
	t := &Table{Schema: schema, verPos: -1}
	for i, c := range schema.Cols {
		if c.PrimaryKey {
			idx := &Index{
				Name:    schema.Name + "_pk",
				Column:  c.Name,
				colPos:  i,
				Unique:  true,
				buckets: map[string][]int{},
			}
			t.indexes = append(t.indexes, idx)
			t.verPos = i // objects version by their primary key by default
		}
	}
	return t, nil
}

// SetVersionKey designates the column whose integer value identifies
// the versioned object of each row (overriding the primary-key
// default) and attaches the log the table reports bumps to.
func (t *Table) SetVersionKey(column string, vlog *VersionLog) error {
	pos := t.Schema.ColIndex(column)
	if pos < 0 {
		return fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, column)
	}
	t.verPos = pos
	t.vlog = vlog
	return nil
}

// bump reports the mutation of the given rows' version keys to the
// attached log. Non-integer or NULL keys are skipped.
func (t *Table) bump(rows ...Row) {
	if t.vlog == nil || t.verPos < 0 {
		return
	}
	var keys []int64
	for _, r := range rows {
		if t.verPos >= len(r) {
			continue
		}
		if v := r[t.verPos]; v.Kind() == types.KindInt {
			keys = append(keys, v.Int())
		}
	}
	t.vlog.Bump(keys...)
}

// NumRows reports the number of live rows.
func (t *Table) NumRows() int { return t.liveN }

// CreateIndex attaches a hash index on the named column and backfills it.
func (t *Table) CreateIndex(name, column string, unique bool) error {
	pos := t.Schema.ColIndex(column)
	if pos < 0 {
		return fmt.Errorf("storage: table %s has no column %s", t.Schema.Name, column)
	}
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Name, name) {
			return fmt.Errorf("storage: index %s already exists", name)
		}
	}
	idx := &Index{Name: name, Column: column, colPos: pos, Unique: unique, buckets: map[string][]int{}}
	for id, row := range t.rows {
		if t.dead[id] {
			continue
		}
		if err := idx.add(row[pos], id); err != nil {
			return err
		}
	}
	t.indexes = append(t.indexes, idx)
	return nil
}

// HasIndex reports whether an index with the given name exists.
func (t *Table) HasIndex(name string) bool {
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Name, name) {
			return true
		}
	}
	return false
}

// IndexOn returns the index covering the column, or nil.
func (t *Table) IndexOn(column string) *Index {
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Column, column) {
			return idx
		}
	}
	return nil
}

// Indexes returns all attached indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// dropIndex detaches an index by name (the catalog rollback of a
// failed delta apply; a no-op when the index does not exist).
func (t *Table) dropIndex(name string) {
	for i, ix := range t.indexes {
		if strings.EqualFold(ix.Name, name) {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return
		}
	}
}

func (ix *Index) add(v types.Value, id int) error {
	k := v.Key()
	if ix.Unique && !v.IsNull() && len(ix.buckets[k]) > 0 {
		return fmt.Errorf("storage: duplicate key %s for unique index %s", v, ix.Name)
	}
	ix.buckets[k] = append(ix.buckets[k], id)
	return nil
}

func (ix *Index) remove(v types.Value, id int) {
	k := v.Key()
	b := ix.buckets[k]
	for i, x := range b {
		if x == id {
			b[i] = b[len(b)-1]
			ix.buckets[k] = b[:len(b)-1]
			return
		}
	}
}

// Lookup returns the live row ids whose indexed column equals v.
func (ix *Index) Lookup(v types.Value) []int { return ix.buckets[v.Key()] }

// checkRow validates arity, NOT NULL and coerces values to column types.
func (t *Table) checkRow(row Row) (Row, error) {
	if len(row) != len(t.Schema.Cols) {
		return nil, fmt.Errorf("storage: table %s expects %d values, got %d",
			t.Schema.Name, len(t.Schema.Cols), len(row))
	}
	out := make(Row, len(row))
	for i, c := range t.Schema.Cols {
		v, err := types.Coerce(row[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s.%s: %v", t.Schema.Name, c.Name, err)
		}
		if v.IsNull() && (c.NotNull || c.PrimaryKey) {
			return nil, fmt.Errorf("storage: column %s.%s is NOT NULL", t.Schema.Name, c.Name)
		}
		out[i] = v
	}
	return out, nil
}

// Insert validates and stores a row, returning its row id.
func (t *Table) Insert(row Row) (int, error) {
	r, err := t.checkRow(row)
	if err != nil {
		return 0, err
	}
	id := len(t.rows)
	for _, ix := range t.indexes {
		if err := ix.add(r[ix.colPos], id); err != nil {
			// roll back index entries added so far
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(r[prev.colPos], id)
			}
			return 0, err
		}
	}
	t.rows = append(t.rows, r)
	t.dead = append(t.dead, false)
	t.liveN++
	t.bump(r)
	return id, nil
}

// Get returns the live row with the given id.
func (t *Table) Get(id int) (Row, bool) {
	if id < 0 || id >= len(t.rows) || t.dead[id] {
		return nil, false
	}
	return t.rows[id], true
}

// Update replaces the row with the given id.
func (t *Table) Update(id int, row Row) error {
	old, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	r, err := t.checkRow(row)
	if err != nil {
		return err
	}
	for _, ix := range t.indexes {
		if old[ix.colPos].Equal(r[ix.colPos]) {
			continue
		}
		ix.remove(old[ix.colPos], id)
		if err := ix.add(r[ix.colPos], id); err != nil {
			ix.add(old[ix.colPos], id) // restore
			return err
		}
	}
	t.rows[id] = r
	t.bump(old, r) // both keys, in case the version key itself changed
	return nil
}

// Delete tombstones the row with the given id.
func (t *Table) Delete(id int) error {
	row, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("storage: row %d of %s does not exist", id, t.Schema.Name)
	}
	for _, ix := range t.indexes {
		ix.remove(row[ix.colPos], id)
	}
	t.dead[id] = true
	t.liveN--
	t.bump(row)
	return nil
}

// undelete revives a tombstoned row during rollback.
func (t *Table) undelete(id int) error {
	if id < 0 || id >= len(t.rows) || !t.dead[id] {
		return fmt.Errorf("storage: row %d of %s is not dead", id, t.Schema.Name)
	}
	row := t.rows[id]
	for _, ix := range t.indexes {
		if err := ix.add(row[ix.colPos], id); err != nil {
			return err
		}
	}
	t.dead[id] = false
	t.liveN++
	t.bump(row)
	return nil
}

// Scan calls fn for every live row in insertion order until fn returns
// false. The row must not be mutated by fn.
func (t *Table) Scan(fn func(id int, row Row) bool) {
	for id, row := range t.rows {
		if t.dead[id] {
			continue
		}
		if !fn(id, row) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Database catalog

// DB is a set of named tables.
type DB struct {
	tables map[string]*Table
	// vlog is the database-wide object version log every
	// version-tracked table bumps.
	vlog *VersionLog
	// versionKeys maps lower-cased table names to version-key column
	// overrides, applied when the table is (re)created.
	versionKeys map[string]string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, vlog: NewVersionLog(), versionKeys: map[string]string{}}
}

// Versions exposes the database's object version log.
func (db *DB) Versions() *VersionLog { return db.vlog }

// SetVersionKey overrides the version-key column of a table: its rows
// then version the object identified by that column's value instead of
// their primary key (e.g. link rows versioning their parent via
// "left"). The override applies immediately when the table exists and
// is remembered for tables created later.
func (db *DB) SetVersionKey(table, column string) error {
	db.versionKeys[strings.ToLower(table)] = column
	if t, ok := db.Table(table); ok {
		return t.SetVersionKey(column, db.vlog)
	}
	return nil
}

// Table resolves a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable registers a new table.
func (db *DB) CreateTable(schema *Schema, ifNotExists bool) error {
	key := strings.ToLower(schema.Name)
	if _, exists := db.tables[key]; exists {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("storage: table %s already exists", schema.Name)
	}
	if len(schema.Cols) == 0 {
		return fmt.Errorf("storage: table %s has no columns", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("storage: duplicate column %s in table %s", c.Name, schema.Name)
		}
		seen[lc] = true
	}
	t, err := NewTable(schema)
	if err != nil {
		return err
	}
	t.vlog = db.vlog
	if col, ok := db.versionKeys[key]; ok {
		if err := t.SetVersionKey(col, db.vlog); err != nil {
			return err
		}
	}
	db.tables[key] = t
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string, ifExists bool) error {
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("storage: table %s does not exist", name)
	}
	delete(db.tables, key)
	return nil
}

// ---------------------------------------------------------------------------
// Undo log

// UndoKind discriminates undo records.
type UndoKind uint8

// Undo record kinds.
const (
	UndoInsert UndoKind = iota // row was inserted: delete it
	UndoDelete                 // row was deleted: revive it
	UndoUpdate                 // row was updated: restore Before
)

// Undo is one reversible mutation.
type Undo struct {
	Kind   UndoKind
	Table  *Table
	RowID  int
	Before Row
}

// Apply reverses the recorded mutation.
func (u Undo) Apply() error {
	switch u.Kind {
	case UndoInsert:
		return u.Table.Delete(u.RowID)
	case UndoDelete:
		return u.Table.undelete(u.RowID)
	case UndoUpdate:
		return u.Table.Update(u.RowID, u.Before)
	}
	return fmt.Errorf("storage: unknown undo kind %d", u.Kind)
}
