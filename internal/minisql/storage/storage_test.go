package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"pdmtune/internal/minisql/types"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	schema := &Schema{Name: "t", Cols: []Column{
		{Name: "id", Type: types.ColumnType{Kind: types.KindInt}, PrimaryKey: true},
		{Name: "name", Type: types.ColumnType{Kind: types.KindText}},
		{Name: "w", Type: types.ColumnType{Kind: types.KindFloat}},
	}}
	table, err := NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func row(id int64, name string, w float64) Row {
	return Row{types.NewInt(id), types.NewText(name), types.NewFloat(w)}
}

func TestInsertGetScan(t *testing.T) {
	table := newTestTable(t)
	id1, err := table.Insert(row(1, "a", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := table.Insert(row(2, "b", 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != 2 {
		t.Fatalf("NumRows = %d", table.NumRows())
	}
	r, ok := table.Get(id1)
	if !ok || r[1].Text() != "a" {
		t.Fatalf("Get(%d) = %v, %v", id1, r, ok)
	}
	seen := 0
	table.Scan(func(id int, r Row) bool {
		seen++
		return true
	})
	if seen != 2 {
		t.Fatalf("scan saw %d rows", seen)
	}
	// Early termination.
	seen = 0
	table.Scan(func(id int, r Row) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("aborted scan saw %d rows", seen)
	}
	_ = id2
}

func TestPrimaryKeyIndexEnforced(t *testing.T) {
	table := newTestTable(t)
	if _, err := table.Insert(row(1, "a", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := table.Insert(row(1, "dup", 0)); err == nil {
		t.Fatal("duplicate PK must fail")
	}
	if table.NumRows() != 1 {
		t.Fatalf("failed insert left %d rows", table.NumRows())
	}
	idx := table.IndexOn("id")
	if idx == nil {
		t.Fatal("PK index missing")
	}
	if got := idx.Lookup(types.NewInt(1)); len(got) != 1 {
		t.Fatalf("index lookup = %v", got)
	}
}

func TestArityAndCoercion(t *testing.T) {
	table := newTestTable(t)
	if _, err := table.Insert(Row{types.NewInt(1)}); err == nil {
		t.Error("short row must fail")
	}
	// Text that parses as a number coerces into the float column.
	id, err := table.Insert(Row{types.NewInt(2), types.NewText("x"), types.NewText("2.5")})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := table.Get(id)
	if r[2].Kind() != types.KindFloat || r[2].Float() != 2.5 {
		t.Errorf("coerced value = %v", r[2])
	}
	// NULL into PK fails.
	if _, err := table.Insert(Row{types.Null, types.NewText("x"), types.Null}); err == nil {
		t.Error("NULL PK must fail")
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	table := newTestTable(t)
	if err := table.CreateIndex("t_name", "name", false); err != nil {
		t.Fatal(err)
	}
	id, _ := table.Insert(row(1, "old", 0))
	if err := table.Update(id, row(1, "new", 0)); err != nil {
		t.Fatal(err)
	}
	if got := table.IndexOn("name").Lookup(types.NewText("old")); len(got) != 0 {
		t.Errorf("stale index entry: %v", got)
	}
	if got := table.IndexOn("name").Lookup(types.NewText("new")); len(got) != 1 {
		t.Errorf("missing index entry: %v", got)
	}
	// Update violating the PK restores the old index entry.
	table.Insert(row(2, "x", 0))
	if err := table.Update(id, row(2, "new", 0)); err == nil {
		t.Fatal("PK-violating update must fail")
	}
	if got := table.IndexOn("id").Lookup(types.NewInt(1)); len(got) != 1 {
		t.Errorf("PK index lost original entry after failed update: %v", got)
	}
}

func TestDeleteAndUndelete(t *testing.T) {
	table := newTestTable(t)
	id, _ := table.Insert(row(1, "a", 0))
	if err := table.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Get(id); ok {
		t.Error("deleted row still visible")
	}
	if table.NumRows() != 0 {
		t.Errorf("NumRows = %d after delete", table.NumRows())
	}
	if err := table.Delete(id); err == nil {
		t.Error("double delete must fail")
	}
	// Undo via the undo record.
	u := Undo{Kind: UndoDelete, Table: table, RowID: id}
	if err := u.Apply(); err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Get(id); !ok {
		t.Error("undelete did not restore the row")
	}
	if got := table.IndexOn("id").Lookup(types.NewInt(1)); len(got) != 1 {
		t.Errorf("undelete did not restore index: %v", got)
	}
}

func TestUndoRecords(t *testing.T) {
	table := newTestTable(t)
	id, _ := table.Insert(row(1, "a", 0))
	cur, _ := table.Get(id)
	before := append(Row{}, cur...)
	table.Update(id, row(1, "b", 1))
	undo := Undo{Kind: UndoUpdate, Table: table, RowID: id, Before: before}
	if err := undo.Apply(); err != nil {
		t.Fatal(err)
	}
	r, _ := table.Get(id)
	if r[1].Text() != "a" {
		t.Errorf("undo update restored %v", r[1])
	}
	undoIns := Undo{Kind: UndoInsert, Table: table, RowID: id}
	if err := undoIns.Apply(); err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != 0 {
		t.Error("undo insert did not delete")
	}
}

func TestCreateIndexBackfillsAndValidates(t *testing.T) {
	table := newTestTable(t)
	for i := 0; i < 10; i++ {
		table.Insert(row(int64(i), fmt.Sprintf("n%d", i%3), 0))
	}
	if err := table.CreateIndex("t_name", "name", false); err != nil {
		t.Fatal(err)
	}
	if got := table.IndexOn("name").Lookup(types.NewText("n0")); len(got) != 4 {
		t.Errorf("backfilled lookup = %d entries, want 4", len(got))
	}
	if err := table.CreateIndex("t_name", "name", false); err == nil {
		t.Error("duplicate index name must fail")
	}
	if err := table.CreateIndex("nope", "missing", false); err == nil {
		t.Error("index on missing column must fail")
	}
	if err := table.CreateIndex("uniq_name", "name", true); err == nil {
		t.Error("unique index over duplicate values must fail")
	}
	if !table.HasIndex("t_name") || table.HasIndex("uniq") {
		t.Error("HasIndex wrong")
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	schema := &Schema{Name: "T1", Cols: []Column{{Name: "a", Type: types.ColumnType{Kind: types.KindInt}}}}
	if err := db.CreateTable(schema, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("t1"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if err := db.CreateTable(schema, false); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := db.CreateTable(schema, true); err != nil {
		t.Error("IF NOT EXISTS must not fail")
	}
	dup := &Schema{Name: "bad", Cols: []Column{
		{Name: "a", Type: types.ColumnType{Kind: types.KindInt}},
		{Name: "A", Type: types.ColumnType{Kind: types.KindInt}},
	}}
	if err := db.CreateTable(dup, false); err == nil {
		t.Error("duplicate column names must fail")
	}
	if err := db.DropTable("t1", false); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("t1", false); err == nil {
		t.Error("dropping a missing table must fail")
	}
	if err := db.DropTable("t1", true); err != nil {
		t.Error("DROP IF EXISTS must not fail")
	}
}

// Property: after a random sequence of inserts and deletes, the index
// over "id" agrees exactly with a scan.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(ops []int16) bool {
		schema := &Schema{Name: "p", Cols: []Column{
			{Name: "id", Type: types.ColumnType{Kind: types.KindInt}},
		}}
		table, _ := NewTable(schema)
		_ = table.CreateIndex("p_id", "id", false)
		var live []int
		for _, op := range ops {
			if op >= 0 || len(live) == 0 {
				id, err := table.Insert(Row{types.NewInt(int64(op % 50))})
				if err != nil {
					return false
				}
				live = append(live, id)
			} else {
				victim := live[int(-op)%len(live)]
				live = append(live[:0], removeOne(live, victim)...)
				if err := table.Delete(victim); err != nil {
					return false
				}
			}
		}
		// Index lookups must match a full scan for every key.
		counts := map[string]int{}
		table.Scan(func(_ int, r Row) bool {
			counts[r[0].Key()]++
			return true
		})
		idx := table.IndexOn("id")
		for k := int64(-50); k <= 50; k++ {
			v := types.NewInt(k)
			if len(idx.Lookup(v)) != counts[v.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func removeOne(s []int, v int) []int {
	out := s[:0]
	removed := false
	for _, x := range s {
		if x == v && !removed {
			removed = true
			continue
		}
		out = append(out, x)
	}
	return out
}
