package storage

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"pdmtune/internal/minisql/types"
)

// gateCtx is a context whose Err() flips to Canceled after the first
// n calls — it lets a test cancel an ApplyDeltaCtx deterministically at
// a chosen checkpoint (before any mutation, between tables, before the
// final publish) without goroutine timing.
type gateCtx struct {
	calls atomic.Int64
	after int64
}

func (g *gateCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (g *gateCtx) Done() <-chan struct{}       { return nil }
func (g *gateCtx) Value(any) any               { return nil }
func (g *gateCtx) Err() error {
	if g.calls.Add(1) > g.after {
		return context.Canceled
	}
	return nil
}

func twoTableDelta(t *testing.T, primary *DB) *Delta {
	t.Helper()
	for _, name := range []string{"alpha", "beta"} {
		tbl := mustCreate(t, primary, deltaSchema(name))
		for i := int64(1); i <= 3; i++ {
			if _, err := tbl.Insert(Row{types.NewInt(i*10 + int64(len(name))), types.NewText(fmt.Sprintf("%s%d", name, i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return primary.ExtractDelta(0)
}

// TestApplyDeltaCtxCancelledUpFront: an already-cancelled context
// aborts before any mutation.
func TestApplyDeltaCtxCancelledUpFront(t *testing.T) {
	d := twoTableDelta(t, NewDB())
	replica := NewDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := replica.ApplyDeltaCtx(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyDeltaCtx = %v, want context.Canceled", err)
	}
	if _, ok := replica.Table("alpha"); ok {
		t.Fatal("cancelled apply created a table")
	}
	if replica.Versions().Epoch() != 0 {
		t.Fatal("cancelled apply advanced the version log")
	}
}

// TestApplyDeltaCtxCancelledMidApply: a context cancelled between
// tables rolls back everything — no partially applied delta is ever
// observable, and a later retry with a live context succeeds.
func TestApplyDeltaCtxCancelledMidApply(t *testing.T) {
	primary := NewDB()
	d := twoTableDelta(t, primary)
	// The apply checks the context once up front and once per table;
	// letting two checks pass cancels between the first and the second
	// table's row work.
	for _, after := range []int64{1, 2, 3} {
		replica := NewDB()
		err := replica.ApplyDeltaCtx(&gateCtx{after: after}, d)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: ApplyDeltaCtx = %v, want context.Canceled", after, err)
		}
		// All-or-nothing: whatever checkpoint fired, no rows survive and
		// the version log is untouched.
		for _, name := range []string{"alpha", "beta"} {
			if rows := dump(t, replica, name); len(rows) != 0 {
				t.Fatalf("after=%d: %d rows of %s survived a cancelled apply", after, len(rows), name)
			}
		}
		if replica.Versions().Epoch() != 0 {
			t.Fatalf("after=%d: cancelled apply advanced the version log", after)
		}
		// The rollback leaves the replica fully usable: the same delta
		// applies cleanly afterwards.
		if err := replica.ApplyDeltaCtx(context.Background(), d); err != nil {
			t.Fatalf("after=%d: retry: %v", after, err)
		}
		for _, name := range []string{"alpha", "beta"} {
			if !reflect.DeepEqual(dump(t, replica, name), dump(t, primary, name)) {
				t.Fatalf("after=%d: %s differs after retry", after, name)
			}
		}
	}
}

// TestDiscardSinceReportsDivergence: no tail → (false, nil) and no
// change; a divergent tail → (true, nil) with exactly the post-base
// rows erased.
func TestDiscardSinceReportsDivergence(t *testing.T) {
	db := NewDB()
	tbl := mustCreate(t, db, deltaSchema("obj"))
	for i := int64(1); i <= 3; i++ {
		if _, err := tbl.Insert(Row{types.NewInt(i), types.NewText(fmt.Sprintf("n%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	base := db.Versions().Epoch()
	if discarded, err := db.DiscardSince(base); err != nil || discarded {
		t.Fatalf("clean DiscardSince = %v, %v, want false, nil", discarded, err)
	}
	if got := len(dump(t, db, "obj")); got != 3 {
		t.Fatalf("clean discard touched rows: %d left, want 3", got)
	}
	// Diverge: update key 2, insert key 4 above the base.
	ids := tbl.IndexOn("obid").Lookup(types.NewInt(2))
	if err := tbl.Update(ids[0], Row{types.NewInt(2), types.NewText("divergent")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{types.NewInt(4), types.NewText("n4")}); err != nil {
		t.Fatal(err)
	}
	discarded, err := db.DiscardSince(base)
	if err != nil || !discarded {
		t.Fatalf("divergent DiscardSince = %v, %v, want true, nil", discarded, err)
	}
	rows := dump(t, db, "obj")
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 3 {
		t.Fatalf("post-discard rows = %v, want keys 1 and 3 only", rows)
	}
}
