package storage

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"pdmtune/internal/minisql/types"
)

func deltaSchema(name string) *Schema {
	return &Schema{Name: name, Cols: []Column{
		{Name: "obid", Type: types.ColumnType{Kind: types.KindInt}, PrimaryKey: true},
		{Name: "name", Type: types.ColumnType{Kind: types.KindText}},
	}}
}

func mustCreate(t *testing.T, db *DB, schema *Schema) *Table {
	t.Helper()
	if err := db.CreateTable(schema, false); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table(schema.Name)
	return tbl
}

func dump(t *testing.T, db *DB, table string) []Row {
	t.Helper()
	tbl, ok := db.Table(table)
	if !ok {
		return nil
	}
	var rows []Row
	tbl.Scan(func(id int, row Row) bool { rows = append(rows, row); return true })
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].Int() < rows[j][0].Int() })
	return rows
}

// TestDeltaRoundTrip: a bootstrap delta (since 0) recreates the table,
// an incremental delta carries exactly the touched keys, and a
// deletion at the primary deletes at the replica.
func TestDeltaRoundTrip(t *testing.T) {
	primary := NewDB()
	tbl := mustCreate(t, primary, deltaSchema("obj"))
	for i := int64(1); i <= 5; i++ {
		if _, err := tbl.Insert(Row{types.NewInt(i), types.NewText(fmt.Sprintf("n%d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	replica := NewDB()
	boot := primary.ExtractDelta(0)
	if boot.RowCount() != 5 || len(boot.Stamps) != 5 {
		t.Fatalf("bootstrap delta: %d rows, %d stamps, want 5/5", boot.RowCount(), len(boot.Stamps))
	}
	if err := replica.ApplyDelta(boot); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump(t, replica, "obj"), dump(t, primary, "obj")) {
		t.Fatal("replica dump differs after bootstrap")
	}
	if replica.Versions().Epoch() != primary.Versions().Epoch() {
		t.Fatalf("replica epoch %d, primary %d", replica.Versions().Epoch(), primary.Versions().Epoch())
	}

	// Update one row, delete another, insert a new one at the primary.
	synced := boot.Epoch
	ids := tbl.IndexOn("obid").Lookup(types.NewInt(2))
	if err := tbl.Update(ids[0], Row{types.NewInt(2), types.NewText("renamed")}); err != nil {
		t.Fatal(err)
	}
	ids = tbl.IndexOn("obid").Lookup(types.NewInt(3))
	if err := tbl.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{types.NewInt(6), types.NewText("n6")}); err != nil {
		t.Fatal(err)
	}

	inc := primary.ExtractDelta(synced)
	if len(inc.Stamps) != 3 {
		t.Fatalf("incremental stamps = %d, want 3 (update, delete, insert)", len(inc.Stamps))
	}
	if inc.RowCount() != 2 { // keys 2 and 6 ship rows, deleted key 3 ships none
		t.Fatalf("incremental rows = %d, want 2", inc.RowCount())
	}
	if err := replica.ApplyDelta(inc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump(t, replica, "obj"), dump(t, primary, "obj")) {
		t.Fatal("replica dump differs after incremental sync")
	}
	// The replica's stamps mirror the primary's, so a validate-style
	// LastModified comparison answers identically.
	for _, k := range []int64{1, 2, 3, 6} {
		if got, want := replica.Versions().LastModified(k), primary.Versions().LastModified(k); got != want {
			t.Errorf("LastModified(%d) = %d at the replica, %d at the primary", k, got, want)
		}
	}
}

// TestDeltaVersionKeyOverride: rows versioned by a non-PK column (link
// rows keyed by their parent) replicate by that key.
func TestDeltaVersionKeyOverride(t *testing.T) {
	schema := &Schema{Name: "lnk", Cols: []Column{
		{Name: "obid", Type: types.ColumnType{Kind: types.KindInt}, PrimaryKey: true},
		{Name: "left", Type: types.ColumnType{Kind: types.KindInt}},
	}}
	primary := NewDB()
	if err := primary.SetVersionKey("lnk", "left"); err != nil {
		t.Fatal(err)
	}
	tbl := mustCreate(t, primary, schema)
	if err := tbl.CreateIndex("lnk_left_idx", "left", false); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		if _, err := tbl.Insert(Row{types.NewInt(100 + i), types.NewInt(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	replica := NewDB()
	d := primary.ExtractDelta(0)
	if got := d.Tables[0].VersionKey; got != "left" {
		t.Fatalf("delta version key = %q, want left", got)
	}
	if len(d.Tables[0].Indexes) != 1 || d.Tables[0].Indexes[0].Name != "lnk_left_idx" {
		t.Fatalf("delta indexes = %+v, want lnk_left_idx", d.Tables[0].Indexes)
	}
	if err := replica.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	rt, _ := replica.Table("lnk")
	if rt.IndexOn("left") == nil {
		t.Fatal("replica missing the replicated secondary index")
	}
	if !reflect.DeepEqual(dump(t, replica, "lnk"), dump(t, primary, "lnk")) {
		t.Fatal("replica dump differs")
	}

	// Touching one parent key re-ships only that key's rows.
	synced := d.Epoch
	ids := tbl.IndexOn("obid").Lookup(types.NewInt(101))
	if err := tbl.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	inc := primary.ExtractDelta(synced)
	if len(inc.Stamps) != 1 || inc.RowCount() != 1 {
		// key 1 was touched; its surviving row (obid 103) re-ships.
		t.Fatalf("stamps=%d rows=%d, want 1/1", len(inc.Stamps), inc.RowCount())
	}
	if err := replica.ApplyDelta(inc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump(t, replica, "lnk"), dump(t, primary, "lnk")) {
		t.Fatal("replica dump differs after keyed delete")
	}
}

// TestApplyDeltaRollsBack: a delta that fails mid-apply (duplicate
// primary key) leaves the replica untouched — rows, epoch and stamps.
func TestApplyDeltaRollsBack(t *testing.T) {
	replica := NewDB()
	tbl := mustCreate(t, replica, deltaSchema("obj"))
	if _, err := tbl.Insert(Row{types.NewInt(1), types.NewText("keep")}); err != nil {
		t.Fatal(err)
	}
	epoch := replica.Versions().Epoch()
	before := dump(t, replica, "obj")

	bad := &Delta{
		Since: epoch,
		Epoch: epoch + 10,
		// Key 2 is "modified": ship its row twice — the second insert
		// violates the primary key after the first succeeded.
		Stamps: map[int64]uint64{2: epoch + 10},
		Tables: []TableDelta{{
			Schema:     tbl.Schema,
			VersionKey: "obid",
			Rows: []Row{
				{types.NewInt(2), types.NewText("a")},
				{types.NewInt(2), types.NewText("b")},
			},
		}},
	}
	if err := replica.ApplyDelta(bad); err == nil {
		t.Fatal("conflicting delta applied without error")
	}
	if !reflect.DeepEqual(dump(t, replica, "obj"), before) {
		t.Fatal("failed apply left partial rows behind")
	}
	if replica.Versions().Epoch() != epoch {
		t.Fatalf("failed apply advanced the epoch to %d", replica.Versions().Epoch())
	}
	if replica.Versions().LastModified(2) != 0 {
		t.Fatal("failed apply stamped key 2")
	}
}

// TestApplyDeltaRollsBackCatalog: a failed apply also removes the
// tables and indexes an earlier table delta of the same apply created.
func TestApplyDeltaRollsBackCatalog(t *testing.T) {
	replica := NewDB()
	existing := mustCreate(t, replica, deltaSchema("obj"))
	epoch := replica.Versions().Epoch()

	fresh := deltaSchema("newtable")
	bad := &Delta{
		Epoch:  epoch + 5,
		Stamps: map[int64]uint64{1: epoch + 5},
		Tables: []TableDelta{
			{
				// Creates a new table and an index on the existing one.
				Schema:     fresh,
				VersionKey: "obid",
				Rows:       []Row{{types.NewInt(1), types.NewText("a")}},
			},
			{
				Schema:     existing.Schema,
				VersionKey: "obid",
				Indexes:    []IndexSpec{{Name: "obj_name_idx", Column: "name"}},
				// Duplicate PK: fails after the catalog changes applied.
				Rows: []Row{
					{types.NewInt(1), types.NewText("x")},
					{types.NewInt(1), types.NewText("y")},
				},
			},
		},
	}
	if err := replica.ApplyDelta(bad); err == nil {
		t.Fatal("conflicting delta applied without error")
	}
	if _, ok := replica.Table("newtable"); ok {
		t.Error("failed apply left the created table behind")
	}
	if existing.HasIndex("obj_name_idx") {
		t.Error("failed apply left the created index behind")
	}
	if n := existing.NumRows(); n != 0 {
		t.Errorf("failed apply left %d rows behind", n)
	}
}
