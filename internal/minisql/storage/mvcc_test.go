package storage

import (
	"fmt"
	"sync"
	"testing"

	"pdmtune/internal/minisql/types"
)

// newVersionedTable returns a table wired to a fresh version log, the
// configuration every engine table runs with.
func newVersionedTable(t *testing.T) (*Table, *VersionLog) {
	t.Helper()
	db := NewDB()
	schema := &Schema{Name: "t", Cols: []Column{
		{Name: "id", Type: types.ColumnType{Kind: types.KindInt}, PrimaryKey: true},
		{Name: "name", Type: types.ColumnType{Kind: types.KindText}},
	}}
	if err := db.CreateTable(schema, false); err != nil {
		t.Fatal(err)
	}
	table, _ := db.Table("t")
	return table, db.Versions()
}

func vrow(id int64, name string) Row {
	return Row{types.NewInt(id), types.NewText(name)}
}

// A snapshot opened before a write never sees it; one opened after the
// commit always does.
func TestSnapshotVisibility(t *testing.T) {
	table, vlog := newVersionedTable(t)
	id, err := table.Insert(vrow(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	before := vlog.Epoch()
	if err := table.Update(id, vrow(1, "b")); err != nil {
		t.Fatal(err)
	}
	after := vlog.Epoch()
	if after == before {
		t.Fatal("update did not advance the epoch")
	}
	if r, ok := table.GetAt(before, id); !ok || r[1].Text() != "a" {
		t.Errorf("snapshot %d sees %v, want the pre-update row", before, r)
	}
	if r, ok := table.GetAt(after, id); !ok || r[1].Text() != "b" {
		t.Errorf("snapshot %d sees %v, want the updated row", after, r)
	}
	if r, ok := table.GetAt(Latest, id); !ok || r[1].Text() != "b" {
		t.Errorf("Latest sees %v", r)
	}
}

// Deletes are tombstones: old snapshots keep the row, new ones lose it;
// inserts are invisible to snapshots opened before them.
func TestSnapshotInsertDelete(t *testing.T) {
	table, vlog := newVersionedTable(t)
	empty := vlog.Epoch()
	id, _ := table.Insert(vrow(1, "a"))
	inserted := vlog.Epoch()
	if err := table.Delete(id); err != nil {
		t.Fatal(err)
	}
	deleted := vlog.Epoch()

	if _, ok := table.GetAt(empty, id); ok {
		t.Error("pre-insert snapshot sees the row")
	}
	if r, ok := table.GetAt(inserted, id); !ok || r[1].Text() != "a" {
		t.Errorf("post-insert snapshot sees %v, %v", r, ok)
	}
	if _, ok := table.GetAt(deleted, id); ok {
		t.Error("post-delete snapshot still sees the row")
	}
	count := func(epoch uint64) int {
		n := 0
		table.ScanAt(epoch, func(int, Row) bool { n++; return true })
		return n
	}
	if count(empty) != 0 || count(inserted) != 1 || count(deleted) != 0 {
		t.Errorf("ScanAt counts = %d/%d/%d, want 0/1/0", count(empty), count(inserted), count(deleted))
	}
}

// A commit batch publishes all its mutations under one epoch: no
// snapshot can observe half the statement. Abort leaves no trace.
func TestCommitBatchAtomicity(t *testing.T) {
	table, vlog := newVersionedTable(t)
	c := NewCommit(vlog)
	if _, err := table.InsertC(c, vrow(1, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := table.InsertC(c, vrow(2, "b")); err != nil {
		t.Fatal(err)
	}
	// Staged but uncommitted: invisible to every snapshot, including
	// Latest (NumRows, a bookkeeping counter, does include pending rows).
	visible := 0
	table.ScanAt(Latest, func(int, Row) bool { visible++; return true })
	if visible != 0 {
		t.Fatalf("pending rows visible to a snapshot: %d", visible)
	}
	pre := vlog.Epoch()
	epoch := c.Commit()
	if epoch <= pre {
		t.Fatalf("commit epoch %d not after %d", epoch, pre)
	}
	if _, ok := table.GetAt(pre, 0); ok {
		t.Error("pre-commit snapshot sees a committed row")
	}
	n := 0
	table.ScanAt(epoch, func(int, Row) bool { n++; return true })
	if n != 2 {
		t.Errorf("commit published %d rows, want 2", n)
	}

	// Abort: staged insert disappears, unique index entry is dead.
	c2 := NewCommit(vlog)
	if _, err := table.InsertC(c2, vrow(3, "c")); err != nil {
		t.Fatal(err)
	}
	c2.Abort()
	if table.NumRows() != 2 {
		t.Errorf("abort left %d rows, want 2", table.NumRows())
	}
	if _, err := table.Insert(vrow(3, "c")); err != nil {
		t.Errorf("insert after abort of same key: %v", err)
	}
}

// LookupAt filters dead index entries: the bucket keeps entries for old
// versions, but only rows visible at the snapshot come back.
func TestLookupAtFiltersStaleEntries(t *testing.T) {
	table, vlog := newVersionedTable(t)
	if err := table.CreateIndex("t_name", "name", false); err != nil {
		t.Fatal(err)
	}
	id, _ := table.Insert(vrow(1, "old"))
	renamed := table.Update(id, vrow(1, "new"))
	if renamed != nil {
		t.Fatal(renamed)
	}
	now := vlog.Epoch()
	idx := table.IndexOn("name")
	if got := idx.LookupAt(now, types.NewText("old")); len(got) != 0 {
		t.Errorf("stale entry surfaced: %v", got)
	}
	if got := idx.LookupAt(now, types.NewText("new")); len(got) != 1 {
		t.Errorf("live entry missing: %v", got)
	}
	// An old snapshot still resolves the old value.
	var oldEpoch uint64
	for e := uint64(1); e < now; e++ {
		if r, ok := table.GetAt(e, id); ok && r[1].Text() == "old" {
			oldEpoch = e
		}
	}
	if oldEpoch == 0 {
		t.Fatal("no epoch shows the old value")
	}
	if got := idx.LookupAt(oldEpoch, types.NewText("old")); len(got) != 1 {
		t.Errorf("old snapshot lookup = %v, want the original row", got)
	}
}

// Unique constraints check current heads, so a value freed by a delete
// or update is immediately reusable while old versions still hold it.
func TestUniqueWithDeadVersions(t *testing.T) {
	table, _ := newVersionedTable(t)
	id, _ := table.Insert(vrow(1, "a"))
	if err := table.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := table.Insert(vrow(1, "again")); err != nil {
		t.Errorf("PK freed by delete not reusable: %v", err)
	}
	if _, err := table.Insert(vrow(1, "dup")); err == nil {
		t.Error("live duplicate PK accepted")
	}
}

// Concurrent snapshot readers over a stream of single-row updates must
// always see one of the committed names, never a torn or pending state.
// Run with -race: readers are lock-free while the writer holds the
// table latch.
func TestConcurrentReadersNeverBlockOrTear(t *testing.T) {
	table, vlog := newVersionedTable(t)
	id, _ := table.Insert(vrow(1, "v0"))
	const writes = 200
	valid := map[string]bool{"v0": true}
	for i := 1; i <= writes; i++ {
		valid[fmt.Sprintf("v%d", i)] = true
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				epoch := vlog.Epoch()
				r1, ok1 := table.GetAt(epoch, id)
				r2, ok2 := table.GetAt(epoch, id)
				if !ok1 || !ok2 {
					errs <- "row vanished from a snapshot"
					return
				}
				if !valid[r1[1].Text()] || r1[1].Text() != r2[1].Text() {
					errs <- fmt.Sprintf("torn read: %q then %q", r1[1].Text(), r2[1].Text())
					return
				}
			}
		}()
	}
	for i := 1; i <= writes; i++ {
		table.Lock()
		c := NewCommit(vlog)
		if err := table.UpdateC(c, id, vrow(1, fmt.Sprintf("v%d", i))); err != nil {
			table.Unlock()
			t.Fatal(err)
		}
		c.Commit()
		table.Unlock()
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
