// Package workload generates synthetic product structures: complete
// β-ary trees of depth δ whose branches are visible to the user with
// probability σ, padded so that the average node record matches the
// paper's 512 B. It substitutes for DaimlerChrysler's proprietary
// product data — the paper's evaluation characterizes trees only by
// (δ, β, σ, node size), which the generator reproduces exactly.
//
// Internal nodes are assemblies ("assy"), leaves are single parts
// ("comp"), and the parent/child relation is stored in "link" rows with
// effectivities and structure options, following the paper's Figure 2
// schema (extended with the attributes the paper's rule examples use:
// make_or_buy, checkedout, weight, ...).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"pdmtune/internal/minisql"
)

// Object ID ranges per table keep ids disjoint, like the paper's example
// (assemblies 1.., components 101.., links 1001..).
const (
	CompIDBase = 1_000_000
	LinkIDBase = 2_000_000
	SpecIDBase = 3_000_000
)

// VisibleOption is the structure option every user has selected; links
// carrying it are traversable ("visible").
const VisibleOption = "base"

// HiddenOption marks links whose structure options do not overlap the
// user's selection.
const HiddenOption = "opt17"

// Config describes one product structure.
type Config struct {
	// ProdID identifies the product; all node rows carry it so that the
	// paper's set-oriented "Query" action can fetch a tree in one query.
	ProdID int64
	// Depth is δ, Branch is β.
	Depth  int
	Branch int
	// Sigma is σ, the probability that a link is visible to the user.
	Sigma float64
	// PadBytes sizes the filler "data" attribute of each node so the
	// average encoded node record is ~512 B (DefaultPadBytes when 0).
	PadBytes int
	// Seed makes generation deterministic.
	Seed int64
	// RandomVisibility draws link visibility iid with probability σ.
	// When false (default) an error-diffusion scheme makes the number of
	// visible children of every visible node track σ·β exactly on
	// average, so simulated node counts match the model's (σβ)^i.
	RandomVisibility bool
	// SpecFraction is the fraction of components that receive a
	// specification document (for ∃structure rules). Default 0.5.
	SpecFraction float64
}

// DefaultPadBytes pads node rows to roughly the paper's 512 B average
// (the remaining attributes plus wire encoding overhead make up the rest).
const DefaultPadBytes = 420

// Node is the generator's in-memory view of one product node, used by
// tests and experiments to know ground truth (e.g. expected visibility).
type Node struct {
	Type     string // "assy" or "comp"
	ObID     int64
	Name     string
	Level    int
	Parent   int64 // 0 for the root
	LinkID   int64 // link connecting to the parent (0 for the root)
	Visible  bool  // every link on the path from the root is visible
	LinkVis  bool  // the link to the parent itself is visible
	HasSpec  bool
	Children []int64
}

// Product is the generated ground truth.
type Product struct {
	Config Config
	RootID int64
	// Nodes maps obid to ground truth (including the root).
	Nodes map[int64]*Node
	// VisibleCount[i] is the number of visible nodes at level i (root =
	// level 0, always visible).
	VisibleCount []int
	// TotalCount[i] is the total number of nodes at level i.
	TotalCount []int
}

// VisibleNodes returns the number of visible nodes below the root.
func (p *Product) VisibleNodes() int {
	n := 0
	for i := 1; i < len(p.VisibleCount); i++ {
		n += p.VisibleCount[i]
	}
	return n
}

// AllNodes returns the total number of nodes below the root.
func (p *Product) AllNodes() int {
	n := 0
	for i := 1; i < len(p.TotalCount); i++ {
		n += p.TotalCount[i]
	}
	return n
}

// Schema returns the DDL of the PDM database: the paper's Figure 2
// tables extended with the attributes its rule examples reference, plus
// the indexes a production deployment would have.
func Schema() string {
	return `
CREATE TABLE IF NOT EXISTS assy (
  type VARCHAR(8) NOT NULL,
  obid INTEGER PRIMARY KEY,
  prod INTEGER NOT NULL,
  name VARCHAR(32) NOT NULL,
  dec VARCHAR(1) NOT NULL,
  make_or_buy VARCHAR(4) NOT NULL,
  state VARCHAR(12) NOT NULL,
  weight FLOAT,
  checkedout BOOLEAN NOT NULL,
  checkedout_by VARCHAR(16),
  path_opt TEXT NOT NULL,
  data TEXT
);
CREATE TABLE IF NOT EXISTS comp (
  type VARCHAR(8) NOT NULL,
  obid INTEGER PRIMARY KEY,
  prod INTEGER NOT NULL,
  name VARCHAR(32) NOT NULL,
  material VARCHAR(12) NOT NULL,
  state VARCHAR(12) NOT NULL,
  weight FLOAT,
  checkedout BOOLEAN NOT NULL,
  checkedout_by VARCHAR(16),
  path_opt TEXT NOT NULL,
  data TEXT
);
CREATE TABLE IF NOT EXISTS link (
  type VARCHAR(8) NOT NULL,
  obid INTEGER PRIMARY KEY,
  left INTEGER NOT NULL,
  right INTEGER NOT NULL,
  eff_from INTEGER NOT NULL,
  eff_to INTEGER NOT NULL,
  strc_opt TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS spec (
  type VARCHAR(8) NOT NULL,
  obid INTEGER PRIMARY KEY,
  name VARCHAR(32) NOT NULL,
  doc TEXT
);
CREATE TABLE IF NOT EXISTS specified_by (
  left INTEGER NOT NULL,
  right INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS link_left_idx ON link (left);
CREATE INDEX IF NOT EXISTS link_right_idx ON link (right);
CREATE INDEX IF NOT EXISTS specified_by_left_idx ON specified_by (left);
CREATE INDEX IF NOT EXISTS assy_prod_idx ON assy (prod);
CREATE INDEX IF NOT EXISTS comp_prod_idx ON comp (prod);
`
}

// Generate creates the product tree and loads it into the database
// through SQL, returning the ground truth.
func Generate(s *minisql.Session, cfg Config) (*Product, error) {
	if cfg.Depth < 1 || cfg.Branch < 1 {
		return nil, fmt.Errorf("workload: depth and branch must be >= 1, got δ=%d β=%d", cfg.Depth, cfg.Branch)
	}
	if cfg.Sigma < 0 || cfg.Sigma > 1 {
		return nil, fmt.Errorf("workload: sigma must be in [0,1], got %g", cfg.Sigma)
	}
	if cfg.ProdID == 0 {
		cfg.ProdID = 1
	}
	if cfg.PadBytes == 0 {
		cfg.PadBytes = DefaultPadBytes
	}
	if cfg.SpecFraction == 0 {
		cfg.SpecFraction = 0.5
	}
	if _, err := s.ExecScript(Schema()); err != nil {
		return nil, fmt.Errorf("workload: creating schema: %v", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pad := strings.Repeat("x", cfg.PadBytes)
	prod := &Product{
		Config:       cfg,
		Nodes:        map[int64]*Node{},
		VisibleCount: make([]int, cfg.Depth+1),
		TotalCount:   make([]int, cfg.Depth+1),
	}

	var nextAssy = cfg.ProdID * 100_000 // keep products disjoint
	if nextAssy == 0 {
		nextAssy = 1
	}
	var nextComp = CompIDBase + nextAssy
	var nextLink = LinkIDBase + nextAssy
	var nextSpec = SpecIDBase + nextAssy

	loader := newBatchLoader(s)

	newAssy := func(level int, parent, linkID int64, visible, linkVis bool) (*Node, error) {
		id := nextAssy
		nextAssy++
		n := &Node{Type: "assy", ObID: id, Name: fmt.Sprintf("Assy%d", id), Level: level,
			Parent: parent, LinkID: linkID, Visible: visible, LinkVis: linkVis}
		prod.Nodes[id] = n
		prod.TotalCount[level]++
		if visible {
			prod.VisibleCount[level]++
		}
		mob := "make"
		if rng.Intn(5) == 0 {
			mob = "buy"
		}
		dec := "+"
		if rng.Intn(10) == 0 {
			dec = "-"
		}
		pathOpt := VisibleOption
		if !visible {
			pathOpt = HiddenOption
		}
		err := loader.add("assy",
			fmt.Sprintf("('assy', %d, %d, '%s', '%s', '%s', 'released', %.2f, FALSE, NULL, '%s', '%s')",
				id, cfg.ProdID, n.Name, dec, mob, 0.5+rng.Float64()*10, pathOpt, pad))
		return n, err
	}
	newComp := func(level int, parent, linkID int64, visible, linkVis bool) (*Node, error) {
		id := nextComp
		nextComp++
		n := &Node{Type: "comp", ObID: id, Name: fmt.Sprintf("Comp%d", id), Level: level,
			Parent: parent, LinkID: linkID, Visible: visible, LinkVis: linkVis}
		prod.Nodes[id] = n
		prod.TotalCount[level]++
		if visible {
			prod.VisibleCount[level]++
		}
		materials := [...]string{"steel", "aluminium", "plastic", "rubber"}
		pathOpt := VisibleOption
		if !visible {
			pathOpt = HiddenOption
		}
		if err := loader.add("comp",
			fmt.Sprintf("('comp', %d, %d, '%s', '%s', 'released', %.3f, FALSE, NULL, '%s', '%s')",
				id, cfg.ProdID, n.Name, materials[rng.Intn(len(materials))], 0.01+rng.Float64(), pathOpt, pad)); err != nil {
			return nil, err
		}
		if rng.Float64() < cfg.SpecFraction {
			n.HasSpec = true
			sid := nextSpec
			nextSpec++
			if err := loader.add("spec",
				fmt.Sprintf("('spec', %d, 'Spec%d', 'doc')", sid, sid)); err != nil {
				return nil, err
			}
			if err := loader.add("specified_by", fmt.Sprintf("(%d, %d)", id, sid)); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	newLink := func(parent, child int64, visible bool) (int64, error) {
		id := nextLink
		nextLink++
		opt := VisibleOption
		if !visible {
			opt = HiddenOption
		}
		// Effectivities: visible links cover the user's default unit (5);
		// ranges vary so effectivity rules have something to filter.
		effFrom, effTo := int64(1), int64(10)
		if rng.Intn(3) == 0 {
			effFrom, effTo = 1, 7
		}
		return id, loader.add("link",
			fmt.Sprintf("('link', %d, %d, %d, %d, %d, '%s')", id, parent, child, effFrom, effTo, opt))
	}

	root, err := newAssy(0, 0, 0, true, true)
	if err != nil {
		return nil, err
	}
	prod.RootID = root.ObID

	// Error diffusion so every visible parent has ≈ σ·β visible children.
	carry := 0.0
	visibleChildren := func() int {
		if cfg.RandomVisibility {
			k := 0
			for i := 0; i < cfg.Branch; i++ {
				if rng.Float64() < cfg.Sigma {
					k++
				}
			}
			return k
		}
		exact := cfg.Sigma*float64(cfg.Branch) + carry
		k := int(exact)
		carry = exact - float64(k)
		if k > cfg.Branch {
			k = cfg.Branch
		}
		return k
	}

	frontier := []*Node{root}
	for level := 1; level <= cfg.Depth; level++ {
		isLeaf := level == cfg.Depth
		var next []*Node
		for _, parent := range frontier {
			nVis := 0
			if parent.Visible {
				nVis = visibleChildren()
			}
			// Shuffle which child positions are visible.
			perm := rng.Perm(cfg.Branch)
			visAt := make([]bool, cfg.Branch)
			for i := 0; i < nVis; i++ {
				visAt[perm[i]] = true
			}
			for i := 0; i < cfg.Branch; i++ {
				linkVis := visAt[i]
				childVisible := parent.Visible && linkVis
				var child *Node
				var err error
				// Link ids are assigned before the child so they pair up.
				if isLeaf {
					child, err = newComp(level, parent.ObID, 0, childVisible, linkVis)
				} else {
					child, err = newAssy(level, parent.ObID, 0, childVisible, linkVis)
				}
				if err != nil {
					return nil, err
				}
				linkID, err := newLink(parent.ObID, child.ObID, linkVis)
				if err != nil {
					return nil, err
				}
				child.LinkID = linkID
				parent.Children = append(parent.Children, child.ObID)
				next = append(next, child)
			}
		}
		frontier = next
	}
	if err := loader.flush(); err != nil {
		return nil, err
	}
	return prod, nil
}

// batchLoader batches INSERT statements per table to keep generation fast.
type batchLoader struct {
	s       *minisql.Session
	pending map[string][]string
	sizes   map[string]int
}

const batchRows = 200

func newBatchLoader(s *minisql.Session) *batchLoader {
	return &batchLoader{s: s, pending: map[string][]string{}, sizes: map[string]int{}}
}

func (b *batchLoader) add(table, valuesTuple string) error {
	b.pending[table] = append(b.pending[table], valuesTuple)
	if len(b.pending[table]) >= batchRows {
		return b.flushTable(table)
	}
	return nil
}

func (b *batchLoader) flushTable(table string) error {
	rows := b.pending[table]
	if len(rows) == 0 {
		return nil
	}
	sql := "INSERT INTO " + table + " VALUES " + strings.Join(rows, ", ")
	b.pending[table] = b.pending[table][:0]
	_, e := b.s.Exec(sql)
	return e
}

func (b *batchLoader) flush() error {
	for table := range b.pending {
		if e := b.flushTable(table); e != nil {
			return e
		}
	}
	return nil
}

// LoadPaperExample loads the paper's Figure 2 example data (the 8
// assemblies / 7 components / 8 links tree) into the PDM schema, giving
// examples and tests the exact object ids of the paper.
func LoadPaperExample(s *minisql.Session) error {
	if _, err := s.ExecScript(Schema()); err != nil {
		return err
	}
	script := `
INSERT INTO assy (type, obid, prod, name, dec, make_or_buy, state, weight, checkedout, checkedout_by, path_opt, data) VALUES
  ('assy', 1, 1, 'Assy1', '+', 'make', 'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 2, 1, 'Assy2', '+', 'make', 'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 3, 1, 'Assy3', '+', 'buy',  'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 4, 1, 'Assy4', '+', 'make', 'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 5, 1, 'Assy5', '-', 'make', 'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 6, 1, 'Assy6', '-', 'make', 'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 7, 1, 'Assy7', '-', 'make', 'released', 1.0, FALSE, NULL, 'base', ''),
  ('assy', 8, 1, 'Assy8', '-', 'make', 'released', 1.0, FALSE, NULL, 'base', '');
INSERT INTO comp (type, obid, prod, name, material, state, weight, checkedout, checkedout_by, path_opt, data) VALUES
  ('comp', 101, 1, 'Comp1', 'steel',   'released', 0.1, FALSE, NULL, 'base', ''),
  ('comp', 102, 1, 'Comp2', 'steel',   'released', 0.1, FALSE, NULL, 'base', ''),
  ('comp', 103, 1, 'Comp3', 'plastic', 'released', 0.1, FALSE, NULL, 'base', ''),
  ('comp', 104, 1, 'Comp4', 'plastic', 'released', 0.1, FALSE, NULL, 'base', ''),
  ('comp', 105, 1, 'Comp5', 'rubber',  'released', 0.1, FALSE, NULL, 'base', ''),
  ('comp', 106, 1, 'Comp6', 'rubber',  'released', 0.1, FALSE, NULL, 'base', ''),
  ('comp', 107, 1, 'Comp7', 'steel',   'released', 0.1, FALSE, NULL, 'base', '');
INSERT INTO link (type, obid, left, right, eff_from, eff_to, strc_opt) VALUES
  ('link', 1001, 1, 2, 1, 3, 'base'),
  ('link', 1002, 1, 3, 4, 10, 'base'),
  ('link', 1003, 2, 4, 1, 10, 'base'),
  ('link', 1004, 2, 5, 1, 10, 'base'),
  ('link', 1005, 4, 101, 6, 10, 'base'),
  ('link', 1006, 4, 102, 1, 5, 'base'),
  ('link', 1007, 5, 103, 1, 10, 'base'),
  ('link', 1008, 5, 104, 1, 10, 'base');
INSERT INTO spec (type, obid, name, doc) VALUES
  ('spec', 9001, 'Spec1', 'doc'), ('spec', 9002, 'Spec3', 'doc');
INSERT INTO specified_by (left, right) VALUES (101, 9001), (103, 9002);
`
	_, e := s.ExecScript(script)
	return e
}
