package workload

import (
	"testing"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/types"
)

func generate(t *testing.T, cfg Config) (*minisql.DB, *Product) {
	t.Helper()
	db := minisql.NewDB()
	prod, err := Generate(db.NewSession(), cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return db, prod
}

func TestShapeAndCounts(t *testing.T) {
	db, prod := generate(t, Config{Depth: 3, Branch: 4, Sigma: 0.5, Seed: 1, PadBytes: 8})
	// Complete β-ary tree: levels 1..δ have β^i nodes.
	wantTotals := []int{1, 4, 16, 64}
	for lvl, want := range wantTotals {
		if prod.TotalCount[lvl] != want {
			t.Errorf("level %d: %d nodes, want %d", lvl, prod.TotalCount[lvl], want)
		}
	}
	if prod.AllNodes() != 84 {
		t.Errorf("AllNodes = %d, want 84", prod.AllNodes())
	}
	// σβ = 2 exactly: deterministic visibility gives 2/4/8.
	if prod.VisibleNodes() != 14 {
		t.Errorf("VisibleNodes = %d, want 14", prod.VisibleNodes())
	}
	// Database row counts match: assemblies are internal nodes, comps leaves.
	if n := db.NumRows("assy"); n != 1+4+16 {
		t.Errorf("assy rows = %d, want 21", n)
	}
	if n := db.NumRows("comp"); n != 64 {
		t.Errorf("comp rows = %d, want 64", n)
	}
	if n := db.NumRows("link"); n != 84 {
		t.Errorf("link rows = %d, want 84", n)
	}
}

func TestDeterminism(t *testing.T) {
	_, p1 := generate(t, Config{Depth: 3, Branch: 3, Sigma: 0.6, Seed: 99, PadBytes: 8})
	_, p2 := generate(t, Config{Depth: 3, Branch: 3, Sigma: 0.6, Seed: 99, PadBytes: 8})
	if p1.VisibleNodes() != p2.VisibleNodes() || p1.RootID != p2.RootID {
		t.Error("same seed must generate identical products")
	}
	for id, n1 := range p1.Nodes {
		n2, ok := p2.Nodes[id]
		if !ok || n1.Visible != n2.Visible || n1.Type != n2.Type {
			t.Fatalf("node %d differs between runs", id)
		}
	}
}

func TestVisibilityConsistency(t *testing.T) {
	_, prod := generate(t, Config{Depth: 4, Branch: 3, Sigma: 0.5, Seed: 5, PadBytes: 8})
	for id, n := range prod.Nodes {
		if n.Parent == 0 {
			continue
		}
		parent := prod.Nodes[n.Parent]
		// A node is visible iff its parent is visible and its link is.
		want := parent.Visible && n.LinkVis
		if n.Visible != want {
			t.Errorf("node %d: Visible=%v, want %v", id, n.Visible, want)
		}
	}
}

func TestPathOptMatchesVisibility(t *testing.T) {
	db, prod := generate(t, Config{Depth: 3, Branch: 3, Sigma: 0.5, Seed: 2, PadBytes: 8})
	s := db.NewSession()
	res, err := s.Query("SELECT obid, path_opt FROM assy UNION ALL SELECT obid, path_opt FROM comp")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		n := prod.Nodes[row[0].Int()]
		if n == nil {
			t.Fatalf("database has unknown node %s", row[0])
		}
		wantOpt := VisibleOption
		if !n.Visible {
			wantOpt = HiddenOption
		}
		if row[1].Text() != wantOpt {
			t.Errorf("node %d path_opt = %q, want %q", n.ObID, row[1].Text(), wantOpt)
		}
	}
}

func TestLinkOptionsMatchGroundTruth(t *testing.T) {
	db, prod := generate(t, Config{Depth: 3, Branch: 3, Sigma: 0.5, Seed: 4, PadBytes: 8})
	s := db.NewSession()
	res, err := s.Query("SELECT right, strc_opt FROM link")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		n := prod.Nodes[row[0].Int()]
		visible := row[1].Text() == VisibleOption
		if n.LinkVis != visible {
			t.Errorf("link to %d: strc_opt %q vs ground truth LinkVis=%v", n.ObID, row[1].Text(), n.LinkVis)
		}
	}
}

func TestRandomVisibilityUnbiased(t *testing.T) {
	// With iid visibility the expected visible count is Σ(σβ)^i; check
	// the sample lands within a loose band.
	_, prod := generate(t, Config{Depth: 5, Branch: 4, Sigma: 0.5, Seed: 13, PadBytes: 8, RandomVisibility: true})
	expect := 0.0
	pow := 1.0
	for i := 1; i <= 5; i++ {
		pow *= 2 // σβ = 2
		expect += pow
	}
	got := float64(prod.VisibleNodes())
	if got < expect/3 || got > expect*3 {
		t.Errorf("random visibility: %v visible, expected around %v", got, expect)
	}
}

func TestPaddingControlsRowSize(t *testing.T) {
	db, _ := generate(t, Config{Depth: 2, Branch: 2, Sigma: 1, Seed: 1, PadBytes: 100})
	s := db.NewSession()
	res, err := s.Query("SELECT length(data) FROM assy")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0].Int() != 100 {
			t.Fatalf("pad length = %s, want 100", row[0])
		}
	}
}

func TestSpecsOnlyOnComponents(t *testing.T) {
	db, prod := generate(t, Config{Depth: 3, Branch: 3, Sigma: 1, Seed: 8, PadBytes: 8, SpecFraction: 0.5})
	s := db.NewSession()
	res, err := s.Query("SELECT left FROM specified_by")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no specifications generated")
	}
	for _, row := range res.Rows {
		n := prod.Nodes[row[0].Int()]
		if n == nil || n.Type != "comp" {
			t.Errorf("specification attached to non-component %s", row[0])
		}
		if !n.HasSpec {
			t.Errorf("ground truth says node %d has no spec", n.ObID)
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	s := minisql.NewDB().NewSession()
	for _, cfg := range []Config{
		{Depth: 0, Branch: 3},
		{Depth: 3, Branch: 0},
		{Depth: 3, Branch: 3, Sigma: -0.1},
		{Depth: 3, Branch: 3, Sigma: 1.1},
	} {
		if _, err := Generate(s, cfg); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
}

func TestMultipleProductsCoexist(t *testing.T) {
	db := minisql.NewDB()
	s := db.NewSession()
	p1, err := Generate(s, Config{ProdID: 1, Depth: 2, Branch: 2, Sigma: 1, Seed: 1, PadBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(s, Config{ProdID: 2, Depth: 2, Branch: 3, Sigma: 1, Seed: 2, PadBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p1.RootID == p2.RootID {
		t.Fatal("products must have distinct roots")
	}
	res, err := s.Query("SELECT COUNT(*) FROM assy WHERE prod = ?", types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != int64(1+3) {
		t.Errorf("product 2 assemblies = %s, want 4", res.Rows[0][0])
	}
}

func TestLoadPaperExample(t *testing.T) {
	db := minisql.NewDB()
	if err := LoadPaperExample(db.NewSession()); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	res, err := s.Query("SELECT COUNT(*) FROM assy")
	if err != nil || res.Rows[0][0].Int() != 8 {
		t.Fatalf("assy count: %v %v", res, err)
	}
	res, err = s.Query("SELECT COUNT(*) FROM link")
	if err != nil || res.Rows[0][0].Int() != 8 {
		t.Fatalf("link count: %v %v", res, err)
	}
}
