package topology

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pdmtune/internal/minisql"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

func newPrimary(t *testing.T) (*minisql.DB, *wire.Server) {
	t.Helper()
	db := minisql.NewDB()
	s := db.NewSession()
	for _, sql := range []string{
		"CREATE TABLE obj (obid INTEGER PRIMARY KEY, name TEXT, n INTEGER)",
		"CREATE TABLE lnk (obid INTEGER PRIMARY KEY, left INTEGER NOT NULL, right INTEGER NOT NULL)",
		"CREATE INDEX lnk_left_idx ON lnk (left)",
	} {
		if _, err := s.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.SetVersionKey("lnk", "left"); err != nil {
		t.Fatal(err)
	}
	return db, wire.NewServer(db)
}

func newSite(t *testing.T, name string, primary *wire.Server) *Site {
	t.Helper()
	meter := netsim.NewMeter(netsim.Intercontinental())
	tr := &wire.MeteredChannel{Conn: primary.NewConn(), Meter: meter}
	return New(name, minisql.NewDB(), tr, meter, netsim.Intercontinental())
}

// dumpDB serializes every row of every table, sorted, so two databases
// with equal dumps hold identical data.
func dumpDB(t *testing.T, db *minisql.DB) string {
	t.Helper()
	var lines []string
	for _, table := range db.TableNames() {
		res, err := db.NewSession().Query("SELECT * FROM " + table)
		if err != nil {
			t.Fatalf("dump %s: %v", table, err)
		}
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			lines = append(lines, table+"|"+strings.Join(parts, "|"))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestReplicationProperty: after any random interleaving of primary
// writes (inserts, updates, deletes, link churn) and site syncs, the
// replica's full dump equals the primary's as of the synced epoch.
func TestReplicationProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db, server := newPrimary(t)
			ps := db.NewSession()
			site := newSite(t, "munich", server)
			ctx := context.Background()

			var live []int64
			nextID := int64(1)
			for step := 0; step < 200; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // insert an object (and sometimes a link)
					id := nextID
					nextID++
					mustExec(t, ps, fmt.Sprintf("INSERT INTO obj VALUES (%d, 'n%d', %d)", id, id, rng.Intn(100)))
					live = append(live, id)
					if len(live) > 1 && rng.Intn(2) == 0 {
						parent := live[rng.Intn(len(live)-1)]
						mustExec(t, ps, fmt.Sprintf("INSERT INTO lnk VALUES (%d, %d, %d)", 100000+id, parent, id))
					}
				case op < 6 && len(live) > 0: // update
					id := live[rng.Intn(len(live))]
					mustExec(t, ps, fmt.Sprintf("UPDATE obj SET n = %d WHERE obid = %d", rng.Intn(100), id))
				case op < 8 && len(live) > 0: // delete object and its links
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					mustExec(t, ps, fmt.Sprintf("DELETE FROM lnk WHERE left = %d", id))
					mustExec(t, ps, fmt.Sprintf("DELETE FROM lnk WHERE right = %d", id))
					mustExec(t, ps, fmt.Sprintf("DELETE FROM obj WHERE obid = %d", id))
				default: // sync and verify: replica == primary right now
					if _, err := site.Sync(ctx); err != nil {
						t.Fatal(err)
					}
					if p, r := dumpDB(t, db), dumpDB(t, site.DB()); p != r {
						t.Fatalf("step %d: replica dump differs from primary after sync\nprimary:\n%s\nreplica:\n%s", step, p, r)
					}
				}
			}
			// Final sync always converges.
			if _, err := site.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			if p, r := dumpDB(t, db), dumpDB(t, site.DB()); p != r {
				t.Fatal("final replica dump differs from primary")
			}
			if site.Epoch() != db.Epoch() {
				t.Fatalf("site epoch %d, primary %d", site.Epoch(), db.Epoch())
			}
		})
	}
}

func mustExec(t *testing.T, s *minisql.Session, sql string) {
	t.Helper()
	if _, err := s.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// TestConcurrentReadersDuringSync drives wire-level readers against a
// site while the primary keeps writing and the site keeps syncing —
// the -race exercise of the replica's locking.
func TestConcurrentReadersDuringSync(t *testing.T) {
	db, server := newPrimary(t)
	ps := db.NewSession()
	for i := 1; i <= 50; i++ {
		mustExec(t, ps, fmt.Sprintf("INSERT INTO obj VALUES (%d, 'n%d', %d)", i, i, i))
	}
	site := newSite(t, "tokyo", server)
	ctx := context.Background()
	if _, err := site.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers at the primary.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws := db.NewSession()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ws.Exec(fmt.Sprintf("UPDATE obj SET n = %d WHERE obid = %d", i, i%50+1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers at the site, over the wire.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := wire.NewClient(&wire.MeteredChannel{
				Conn: site.Server().NewConn(), Meter: netsim.NewMeter(netsim.LAN()),
			})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := client.Exec(ctx, "SELECT obid, n FROM obj"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Sync loop, both explicit and staleness-bounded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				_, err = site.Sync(ctx)
			} else {
				err = site.SyncIfStale(ctx, time.Millisecond)
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if _, err := site.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if p, r := dumpDB(t, db), dumpDB(t, site.DB()); p != r {
		t.Fatal("replica diverged under concurrent readers and syncs")
	}
}
