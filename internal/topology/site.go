// Package topology implements the multi-site layer of the PDM system:
// replica sites that hold a full copy of the primary's database and
// pull it forward over the WAN by VersionLog epoch. A site fronts its
// replica with its own wire server, so clients at the site read over
// the LAN while only replication pulls (and the clients' writes, which
// the core layer routes past the replica) cross the WAN — the paper's
// worldwide deployment with the 256 kbit/s tax paid once per change
// instead of once per read.
package topology

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// Site is one replica site: a named location holding a synchronized
// copy of the primary's database. All methods are safe for concurrent
// use; syncs serialize against each other while readers proceed under
// the replica engine's own locking.
type Site struct {
	name   string
	db     *minisql.DB
	server *wire.Server
	// primary pulls deltas from the primary server across the site's
	// WAN link; its transport charges the site meter.
	meter *netsim.Meter
	link  netsim.Link

	mu sync.Mutex
	// primary pulls deltas from the primary server across the site's
	// WAN link; its transport charges the site meter. Repoint swaps it
	// after a failover, so it lives under the site lock.
	primary   *wire.Client
	term      wire.TermSource
	retry     *wire.RetryPolicy
	lastEpoch uint64
	lastSync  time.Time
	synced    bool
	// isPrimary marks a promoted site: its database is the cluster's
	// write target, so pulls become no-ops (there is nothing upstream to
	// pull from).
	isPrimary bool
	// partial marks the replica as subscription-bounded: holds is the
	// closure of object ids the last pull shipped, replaced wholesale on
	// every pull. A full replica has partial=false and holds=nil.
	partial bool
	holds   map[int64]bool
}

// New creates a site over an (empty, procedure-registered) replica
// database and a transport to the primary. link is the site's WAN
// profile and meter the meter that transport charges — both kept for
// reporting.
func New(name string, db *minisql.DB, primary wire.Transport, meter *netsim.Meter, link netsim.Link) *Site {
	return NewWithServer(name, db, wire.NewServer(db), primary, meter, link)
}

// NewWithServer is New over an already-running wire server — how a
// deposed primary rejoins the cluster as a replica without dropping
// the sessions still connected to its server.
func NewWithServer(name string, db *minisql.DB, server *wire.Server, primary wire.Transport, meter *netsim.Meter, link netsim.Link) *Site {
	return &Site{
		name:    name,
		db:      db,
		server:  server,
		primary: wire.NewClient(primary),
		meter:   meter,
		link:    link,
	}
}

// Name returns the site's name.
func (s *Site) Name() string { return s.name }

// DB exposes the site's replica database.
func (s *Site) DB() *minisql.DB { return s.db }

// Server returns the wire server fronting the replica — the server
// site-local sessions connect to.
func (s *Site) Server() *wire.Server { return s.server }

// Link returns the site's WAN profile to the primary.
func (s *Site) Link() netsim.Link { return s.link }

// Meter returns the site's WAN meter (replication pulls are charged to
// it); nil for unmetered sites.
func (s *Site) Meter() *netsim.Meter { return s.meter }

// Metrics returns the site's accumulated WAN traffic — the replication
// pulls charged to the site meter (zero value when the site has no
// meter).
func (s *Site) Metrics() netsim.Metrics {
	if s.meter == nil {
		return netsim.Metrics{}
	}
	return s.meter.Snapshot()
}

// Epoch returns the primary epoch the site last synced to (0 before
// the first sync).
func (s *Site) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEpoch
}

// Synced reports whether the site has completed at least one sync.
func (s *Site) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced || s.isPrimary
}

// IsPrimary reports whether the site has been promoted to primary.
func (s *Site) IsPrimary() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.isPrimary
}

// Repoint replaces the site's replication source: future pulls go over
// the given transport (to the new primary after a failover). The term
// source and retry policy of the old pull client carry over. The site's
// last-seen epoch is kept — epochs are comparable cluster-wide because
// every replica mirrors the primary's version log, so the site resumes
// pulling from where it was.
func (s *Site) Repoint(primary wire.Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := wire.NewClient(primary)
	if s.term != nil {
		c.SetTermSource(s.term)
	}
	if s.retry != nil {
		c.SetRetry(s.retry)
	}
	s.primary = c
}

// SetTermSource installs the fencing-term source stamped onto the
// site's sync pulls (and preserved across Repoint).
func (s *Site) SetTermSource(ts wire.TermSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.term = ts
	s.primary.SetTermSource(ts)
}

// SetRetry installs the retry policy of the site's pull client (and
// preserves it across Repoint).
func (s *Site) SetRetry(p *wire.RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = p
	s.primary.SetRetry(p)
}

// BecomePrimary flips the site into the primary role: syncs become
// no-ops and Synced is always true. epoch is the promotion-base epoch —
// recorded as the site's last-seen epoch for reporting.
func (s *Site) BecomePrimary(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.isPrimary = true
	if epoch > s.lastEpoch {
		s.lastEpoch = epoch
	}
}

// BecomeReplica flips a (deposed) primary back into the replica role,
// pulling from the given epoch onward.
func (s *Site) BecomeReplica(fromEpoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.isPrimary = false
	s.lastEpoch = fromEpoch
	s.synced = false
}

// Partial reports whether the replica is subscription-bounded: it
// holds only the closure of its subscribed subtrees, and reads outside
// it must fall through to the primary.
func (s *Site) Partial() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partial
}

// Holds reports whether the replica holds the structure rows of the
// given object id. A full replica holds everything.
func (s *Site) Holds(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.partial {
		return true
	}
	return s.holds[id]
}

// SyncStats reports one replication pull.
type SyncStats struct {
	// Since and Epoch bound the pull: the site advanced from Since to
	// Epoch.
	Since, Epoch uint64
	// Keys is the number of modified version keys the delta covered,
	// Rows the number of full rows re-shipped for them.
	Keys, Rows int
}

// Sync pulls the delta above the site's last-seen epoch from the
// primary and applies it transactionally to the replica. Readers at
// the site block only for the apply (the replica engine's write lock),
// not for the WAN transfer. Concurrent syncs serialize; each pulls
// from the epoch the previous one established.
func (s *Site) Sync(ctx context.Context) (SyncStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked(ctx)
}

func (s *Site) syncLocked(ctx context.Context) (SyncStats, error) {
	if s.isPrimary {
		// The promoted site is the source of truth; nothing to pull.
		return SyncStats{Since: s.lastEpoch, Epoch: s.lastEpoch}, nil
	}
	d, err := s.primary.SyncFrom(ctx, s.lastEpoch, s.name)
	if err != nil {
		return SyncStats{}, fmt.Errorf("topology: site %s: pull: %w", s.name, err)
	}
	if s.synced && s.partial && s.needsBackfillLocked(d) {
		// Rows skipped by earlier filtered pulls are now required here
		// (the subscription was dropped, or its closure gained keys),
		// and no incremental delta can contain them — they were not
		// modified. Recover coverage with one snapshot pull from epoch
		// zero; the apply below replaces the replica wholesale.
		d, err = s.primary.SyncFrom(ctx, 0, s.name)
		if err != nil {
			return SyncStats{}, fmt.Errorf("topology: site %s: backfill pull: %w", s.name, err)
		}
	}
	if err := s.db.ApplyDeltaCtx(ctx, d); err != nil {
		return SyncStats{}, fmt.Errorf("topology: site %s: apply: %w", s.name, err)
	}
	if d.Partial {
		s.partial = true
		s.holds = make(map[int64]bool, len(d.Holds))
		for _, k := range d.Holds {
			s.holds[k] = true
		}
	} else {
		s.partial = false
		s.holds = nil
	}
	if s.meter != nil && (d.Partial || d.Skipped > 0) {
		s.meter.CountSubscription(d.RowCount(), d.Skipped)
	}
	stats := SyncStats{Since: d.Since, Epoch: d.Epoch, Keys: len(d.Stamps), Rows: d.RowCount()}
	s.lastEpoch = d.Epoch
	s.lastSync = time.Now()
	s.synced = true
	return stats, nil
}

// needsBackfillLocked reports whether an incremental delta cannot
// restore this formerly-partial replica's required coverage: the
// subscription was dropped (the delta is full again) or its closure
// gained keys whose rows were never shipped here.
func (s *Site) needsBackfillLocked(d *storage.Delta) bool {
	if !d.Partial {
		return true
	}
	for _, k := range d.Holds {
		if !s.holds[k] {
			return true
		}
	}
	return false
}

// SyncIfStale syncs when the site's last successful sync is older than
// bound (and always when the site never synced, or when bound is 0).
// It is the read-time hook of bounded-staleness sessions: a session
// opened with a staleness bound calls this before every action's first
// fetch, so no read is served from a replica more than bound behind
// the last check.
func (s *Site) SyncIfStale(ctx context.Context, bound time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.synced && bound > 0 && time.Since(s.lastSync) <= bound {
		return nil
	}
	_, err := s.syncLocked(ctx)
	return err
}
