package failover

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// scriptedProber answers probes from a queue of errors (nil = success).
type scriptedProber struct {
	errs []error
	st   wire.Status
}

func (p *scriptedProber) Status(context.Context) (wire.Status, error) {
	if len(p.errs) == 0 {
		return p.st, nil
	}
	err := p.errs[0]
	p.errs = p.errs[1:]
	if err != nil {
		return wire.Status{}, err
	}
	return p.st, nil
}

func TestCheckerThreshold(t *testing.T) {
	down := errors.New("down")
	prober := &scriptedProber{errs: []error{nil, down, down, down}, st: wire.Status{Term: 7, Epoch: 42}}
	fired := 0
	m := netsim.NewMeter(netsim.LAN())
	ck := New(prober, Config{Threshold: 3}, m, func() { fired++ })
	ctx := context.Background()

	if ok, isDown := ck.CheckNow(ctx); !ok || isDown {
		t.Fatalf("healthy probe: ok=%v down=%v", ok, isDown)
	}
	if st := ck.LastStatus(); st.Term != 7 || st.Epoch != 42 {
		t.Fatalf("LastStatus = %+v", st)
	}
	// Two failures: below threshold, no transition.
	for i := 0; i < 2; i++ {
		if _, isDown := ck.CheckNow(ctx); isDown {
			t.Fatalf("down after %d failures (threshold 3)", i+1)
		}
	}
	if fired != 0 {
		t.Fatalf("onDown fired below threshold")
	}
	// Third consecutive failure crosses the threshold, firing once.
	if _, isDown := ck.CheckNow(ctx); !isDown {
		t.Fatal("not down after 3 consecutive failures")
	}
	if fired != 1 || !ck.Down() || ck.Failures() != 3 {
		t.Fatalf("fired=%d down=%v failures=%d", fired, ck.Down(), ck.Failures())
	}
	// Recovery resets the count and the verdict without re-firing.
	if ok, isDown := ck.CheckNow(ctx); !ok || isDown {
		t.Fatalf("recovered probe: ok=%v down=%v", ok, isDown)
	}
	if fired != 1 || ck.Failures() != 0 {
		t.Fatalf("after recovery: fired=%d failures=%d", fired, ck.Failures())
	}
	got := m.Snapshot()
	if got.HealthProbes != 5 || got.ProbeFailures != 3 {
		t.Fatalf("metered probes = %d/%d, want 5/3", got.HealthProbes, got.ProbeFailures)
	}
}

func TestCheckerFiresOncePerTransition(t *testing.T) {
	down := errors.New("down")
	prober := &scriptedProber{errs: []error{down, down, down, down, down}}
	fired := 0
	ck := New(prober, Config{Threshold: 2}, nil, func() { fired++ })
	for i := 0; i < 5; i++ {
		ck.CheckNow(context.Background())
	}
	if fired != 1 {
		t.Fatalf("onDown fired %d times for one down transition", fired)
	}
}

func TestCheckerReset(t *testing.T) {
	down := errors.New("down")
	ck := New(&scriptedProber{errs: []error{down, down, down}}, Config{Threshold: 2}, nil, nil)
	ctx := context.Background()
	ck.CheckNow(ctx)
	ck.CheckNow(ctx)
	if !ck.Down() {
		t.Fatal("not down")
	}
	// Reset with a healthy prober: the failover re-aimed the checker.
	ck.Reset(&scriptedProber{st: wire.Status{Term: 2}})
	if ck.Down() || ck.Failures() != 0 {
		t.Fatalf("after Reset: down=%v failures=%d", ck.Down(), ck.Failures())
	}
	if ok, _ := ck.CheckNow(ctx); !ok {
		t.Fatal("new prober not in effect after Reset")
	}
}

func TestCheckerStartStop(t *testing.T) {
	prober := &scriptedProber{st: wire.Status{Term: 1}}
	ck := New(prober, Config{Interval: time.Millisecond, Threshold: 1}, nil, nil)
	ck.Start()
	ck.Start() // second Start is a no-op, not a second loop
	deadline := time.After(2 * time.Second)
	for ck.LastStatus().Term != 1 {
		select {
		case <-deadline:
			t.Fatal("background loop never probed")
		case <-time.After(time.Millisecond):
		}
	}
	ck.Stop()
	ck.Stop() // idempotent
}
