// Package failover is the high-availability control plane of the PDM
// cluster: a health checker that probes the primary over the ordinary
// wire transport and reports it down after a configurable number of
// consecutive failures. The paper's worldwide deployment treats the
// central server as a single point of failure; this package provides
// the detection half of the remedy (the promotion half lives in the
// cluster facade, which owns the sites and sessions the failover must
// re-point).
package failover

import (
	"context"
	"sync"
	"time"

	"pdmtune/internal/netsim"
	"pdmtune/internal/wire"
)

// Prober answers one health probe. Implemented by wire.Client (its
// Status method is one small round trip); tests substitute scripted
// probers.
type Prober interface {
	Status(ctx context.Context) (wire.Status, error)
}

// Config tunes the health checker.
type Config struct {
	// Interval is the probe period of the background loop (default
	// 500ms). CheckNow ignores it.
	Interval time.Duration
	// Timeout bounds each probe (default 250ms).
	Timeout time.Duration
	// Threshold is the number of consecutive failed probes after which
	// the primary is declared down (default 3). One slow probe must not
	// trigger a failover.
	Threshold int
}

func (c Config) interval() time.Duration {
	if c.Interval <= 0 {
		return 500 * time.Millisecond
	}
	return c.Interval
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 250 * time.Millisecond
	}
	return c.Timeout
}

func (c Config) threshold() int {
	if c.Threshold <= 0 {
		return 3
	}
	return c.Threshold
}

// Checker health-checks one primary. Probes run either on the
// background loop (Start/Stop) or synchronously via CheckNow — the
// deterministic path the tests and the simulated benchmark drive, with
// no wall-clock dependence. All methods are safe for concurrent use.
type Checker struct {
	prober Prober
	cfg    Config
	// meter receives the HealthProbes / ProbeFailures counters (nil:
	// unmetered).
	meter *netsim.Meter
	// onDown fires once per down transition (failures crossing the
	// threshold), outside the checker's lock.
	onDown func()

	mu       sync.Mutex
	failures int
	down     bool
	lastTerm uint64
	lastSeen wire.Status
	cancel   context.CancelFunc
	loopDone chan struct{}
}

// New creates a checker probing the primary through prober. onDown may
// be nil; meter may be nil.
func New(prober Prober, cfg Config, meter *netsim.Meter, onDown func()) *Checker {
	return &Checker{prober: prober, cfg: cfg, meter: meter, onDown: onDown}
}

// CheckNow performs one probe synchronously and returns whether the
// primary answered, along with the checker's down verdict after this
// probe (true once Threshold consecutive probes have failed).
func (c *Checker) CheckNow(ctx context.Context) (ok, down bool) {
	probeCtx, cancel := context.WithTimeout(ctx, c.cfg.timeout())
	st, err := c.prober.Status(probeCtx)
	cancel()
	ok = err == nil
	if c.meter != nil {
		c.meter.CountProbe(ok)
	}
	var fire func()
	c.mu.Lock()
	if ok {
		c.failures = 0
		c.down = false
		c.lastSeen = st
		c.lastTerm = st.Term
	} else {
		c.failures++
		if c.failures >= c.cfg.threshold() && !c.down {
			c.down = true
			fire = c.onDown
		}
	}
	down = c.down
	c.mu.Unlock()
	if fire != nil {
		fire()
	}
	return ok, down
}

// Down reports whether the primary is currently considered down.
func (c *Checker) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Failures returns the current consecutive-failure count.
func (c *Checker) Failures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// LastStatus returns the last successful probe's answer (zero value
// before the first success).
func (c *Checker) LastStatus() wire.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeen
}

// Reset clears the failure state — called after a completed failover
// re-points the checker at the new primary.
func (c *Checker) Reset(prober Prober) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prober != nil {
		c.prober = prober
	}
	c.failures = 0
	c.down = false
}

// Start launches the background probe loop. A second Start is a no-op
// until Stop.
func (c *Checker) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	done := make(chan struct{})
	c.loopDone = done
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.interval())
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.CheckNow(ctx)
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (c *Checker) Stop() {
	c.mu.Lock()
	cancel, done := c.cancel, c.loopDone
	c.cancel, c.loopDone = nil, nil
	c.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}
