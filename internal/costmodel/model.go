// Package costmodel implements the response-time model of paper
// Section 2 (formulas (1)-(4)) and Section 5.4 (formulas (5)-(6)): the
// accumulated WAN delay of PDM user actions on complete β-ary product
// trees. The model reproduces the paper's Tables 2, 3 and 4 and the bar
// charts of Figures 4 and 5 to printed precision.
//
// Conventions taken from the paper's numbers: packet size and node size
// are in bytes, the data transfer rate dtr is in kbit/s with
// 1 kbit = 1024 bits, and the root object "is considered to be already
// at the client", so a multi-level expand issues one query for the root
// plus one per visible descendant.
package costmodel

import (
	"fmt"
	"math"
)

// Action is one of the paper's three structure-oriented user actions.
type Action uint8

// The user actions of Table 2: Query retrieves all nodes of a tree
// (without structure information), Expand retrieves the direct children
// of the root ("single-level expand"), MLE retrieves the entire
// structure ("multi-level expand").
const (
	Query Action = iota
	Expand
	MLE
)

// The engineering-change workloads beyond Table 2: WhereUsed is the
// inverse traversal (which assemblies use this part), ECO propagates an
// engineering-change order along that closure, Report is the bulk
// reporting scan over one product. They extend the action space without
// entering the paper's table grid (Actions stays in table order).
const (
	WhereUsed Action = iota + 3
	ECO
	Report
)

func (a Action) String() string {
	switch a {
	case Query:
		return "Query"
	case Expand:
		return "Expand"
	case MLE:
		return "MLE"
	case WhereUsed:
		return "WhereUsed"
	case ECO:
		return "ECO"
	case Report:
		return "Report"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Actions lists all actions in table order.
var Actions = []Action{Query, Expand, MLE}

// Strategy selects how the PDM client talks to the database.
type Strategy uint8

// LateEval is the unoptimized navigational access with client-side rule
// evaluation; EarlyEval pushes row conditions into the queries (paper
// Section 4); Recursive compiles a tree action into one SQL:1999
// recursive query combined with early rule evaluation (Section 5).
const (
	LateEval Strategy = iota
	EarlyEval
	Recursive
)

func (s Strategy) String() string {
	switch s {
	case LateEval:
		return "late eval"
	case EarlyEval:
		return "early eval"
	case Recursive:
		return "recursion"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Strategies lists all strategies in figure order.
var Strategies = []Strategy{LateEval, EarlyEval, Recursive}

// Network describes one WAN profile (Table 2's rows).
type Network struct {
	Name        string
	PacketBytes float64 // size_p
	LatencySec  float64 // T_Lat, one-way
	RateKbps    float64 // dtr in kbit/s, 1 kbit = 1024 bits
}

// Tree describes one product structure scenario (Table 2's columns):
// a complete β-ary tree of depth δ where each branch is visible to the
// user with probability σ.
type Tree struct {
	Name   string
	Depth  int     // δ
	Branch int     // β
	Sigma  float64 // σ
}

// DefaultNodeBytes is the paper's average node size (512 B).
const DefaultNodeBytes = 512

// DefaultPacketBytes is the paper's packet size (4 kB).
const DefaultPacketBytes = 4 * 1024

// geomSum returns Σ_{i=from}^{to} x^i (0 when to < from).
func geomSum(x float64, from, to int) float64 {
	sum := 0.0
	pow := math.Pow(x, float64(from))
	for i := from; i <= to; i++ {
		sum += pow
		pow *= x
	}
	return sum
}

// VisibleNodes returns n_v(t) = Σ_{i=1}^{δ} (σβ)^i — the expected number
// of nodes the user is allowed to see (the root not counted).
func (t Tree) VisibleNodes() float64 {
	return geomSum(t.Sigma*float64(t.Branch), 1, t.Depth)
}

// AllNodes returns Σ_{i=1}^{δ} β^i — every node below the root.
func (t Tree) AllNodes() float64 {
	return geomSum(float64(t.Branch), 1, t.Depth)
}

// TransmittedNodes returns n_t(t) for an action under a strategy:
// how many node records cross the WAN.
func (t Tree) TransmittedNodes(a Action, s Strategy) float64 {
	beta := float64(t.Branch)
	switch a {
	case Query:
		if s == LateEval {
			return t.AllNodes() // rules evaluated at the client: everything is shipped
		}
		return t.VisibleNodes()
	case Expand:
		if s == LateEval {
			return beta
		}
		return t.Sigma * beta
	case MLE:
		switch s {
		case LateEval:
			// Every visible node is expanded and each expand returns all
			// β children (invisible ones are filtered at the client):
			// n_t = β · Σ_{i=0}^{δ-1} (σβ)^i.
			return beta * geomSum(t.Sigma*beta, 0, t.Depth-1)
		default:
			// With early evaluation only visible children come back, so
			// each visible node is transmitted exactly once.
			return t.VisibleNodes()
		}
	}
	return 0
}

// Queries returns q, the number of isolated SQL queries the navigational
// strategies issue for an action.
func (t Tree) Queries(a Action) float64 {
	switch a {
	case Query, Expand:
		return 1
	case MLE:
		// One expand for the root plus one per visible node (leaves are
		// expanded too — the client only learns they are leaves from the
		// empty answer).
		return 1 + t.VisibleNodes()
	}
	return 0
}

// Estimate is a predicted response-time breakdown for one action.
type Estimate struct {
	Queries          float64 // q (or query packets q_r for Recursive)
	Communications   float64 // c
	Batches          float64 // round trips actually paid (= q without batching)
	TransmittedNodes float64 // n_t
	VolumeBytes      float64 // vol
	LatencySec       float64 // c · T_Lat
	TransferSec      float64 // vol / dtr
	TotalSec         float64 // T
}

// Model combines a network profile with a tree scenario.
type Model struct {
	Net  Network
	Tree Tree
	// NodeBytes is the average node size (DefaultNodeBytes when 0).
	NodeBytes float64
	// RecursiveQueryPackets is q_r, the packets needed to ship the
	// recursive query text to the server (1 when 0, as in the paper).
	RecursiveQueryPackets float64
	// StatementBytes is the assumed per-statement size inside a batch
	// frame (DefaultStatementBytes when 0); only PredictBatched uses it.
	StatementBytes float64
	// PreparedStatementBytes is the assumed size of one prepared
	// execution inside a batch frame (DefaultPreparedStatementBytes when
	// 0); only PredictBatchedPrepared uses it.
	PreparedStatementBytes float64
}

func (m Model) nodeBytes() float64 {
	if m.NodeBytes > 0 {
		return m.NodeBytes
	}
	return DefaultNodeBytes
}

// Predict computes the response-time estimate for an action under a
// strategy, following formulas (1)-(6).
func (m Model) Predict(a Action, s Strategy) Estimate {
	sizeP := m.Net.PacketBytes
	rateBitsPerSec := m.Net.RateKbps * 1024

	var est Estimate
	if s == Recursive && a != Expand {
		// One combined query, one result set: c = 2 (formula (6)).
		qr := m.RecursiveQueryPackets
		if qr <= 0 {
			qr = 1
		}
		est.Queries = qr
		est.Communications = 2
		est.TransmittedNodes = m.Tree.TransmittedNodes(a, s)
		est.VolumeBytes = qr*sizeP + est.TransmittedNodes*m.nodeBytes() + qr*sizeP/2
	} else {
		// Navigational access (formulas (1)-(3)). A single-level expand
		// is a single query under every strategy.
		eff := s
		if s == Recursive {
			eff = EarlyEval
		}
		q := m.Tree.Queries(a)
		est.Queries = q
		est.Communications = 2 * q
		est.TransmittedNodes = m.Tree.TransmittedNodes(a, eff)
		est.VolumeBytes = q*sizeP + est.TransmittedNodes*m.nodeBytes() + q*sizeP/2
	}
	if est.Batches == 0 {
		est.Batches = est.Queries
	}
	est.LatencySec = est.Communications * m.Net.LatencySec
	est.TransferSec = est.VolumeBytes * 8 / rateBitsPerSec
	est.TotalSec = est.LatencySec + est.TransferSec
	return est
}

// DefaultStatementBytes is the assumed size of one statement inside a
// batch frame — a navigational expand query with injected rule
// predicates is a few hundred bytes of SQL text.
const DefaultStatementBytes = 512

// PredictBatched computes the estimate for an action when the client
// ships each BFS level of a multi-level expand as one wire batch: the
// per-statement latency of formulas (1)-(3) collapses to two
// communications per tree level, while the transferred node volume is
// unchanged. Actions that are a single statement anyway (Query, Expand)
// and the Recursive strategy are unaffected by batching.
func (m Model) PredictBatched(a Action, s Strategy) Estimate {
	if a != MLE || s == Recursive {
		return m.Predict(a, s)
	}
	sizeP := m.Net.PacketBytes
	rateBitsPerSec := m.Net.RateKbps * 1024
	stmtBytes := m.StatementBytes
	if stmtBytes <= 0 {
		stmtBytes = DefaultStatementBytes
	}

	// Parents expanded per BFS level: 1 root at depth 0, then the visible
	// (σβ)^i nodes of depths 1..δ (leaves included — the empty answer is
	// how the client learns they are leaves).
	sigmaBeta := m.Tree.Sigma * float64(m.Tree.Branch)
	var est Estimate
	levelParents := 1.0
	for lvl := 0; lvl <= m.Tree.Depth; lvl++ {
		est.Batches++
		est.Queries += levelParents
		packets := math.Ceil(levelParents * stmtBytes / sizeP)
		if packets < 1 {
			packets = 1
		}
		// One batch request (packetized statements) and one batch answer
		// whose half-filled last packet the paper's model charges.
		est.VolumeBytes += packets*sizeP + sizeP/2
		levelParents *= sigmaBeta
	}
	est.Communications = 2 * est.Batches
	est.TransmittedNodes = m.Tree.TransmittedNodes(a, s)
	est.VolumeBytes += est.TransmittedNodes * m.nodeBytes()
	est.LatencySec = est.Communications * m.Net.LatencySec
	est.TransferSec = est.VolumeBytes * 8 / rateBitsPerSec
	est.TotalSec = est.LatencySec + est.TransferSec
	return est
}

// DefaultPreparedStatementBytes is the assumed wire size of one
// prepared execution inside a batch frame: a 1-byte tag, a 4-byte
// handle, a parameter count and two integer parameters plus sub-frame
// framing — a few dozen bytes, independent of the SQL text length.
const DefaultPreparedStatementBytes = 32

// PredictBatchedPrepared computes the estimate for a batched
// multi-level expand executed with prepared statements: the request
// volume per statement shrinks from the full SQL text
// (DefaultStatementBytes) to handle + parameters
// (DefaultPreparedStatementBytes), at the cost of one extra round trip
// that ships the statement text once. The response volume — the node
// records — is unchanged; so is everything batching already fixed.
// Under the paper's packet accounting the saving only materializes once
// a level's statements span multiple packets, exactly as on the real
// wire.
func (m Model) PredictBatchedPrepared(a Action, s Strategy) Estimate {
	if a != MLE || s == Recursive {
		return m.Predict(a, s)
	}
	// The prepared execution size replaces the SQL text size outright —
	// an explicitly configured StatementBytes describes the text mode
	// and must not leak into the prepared prediction.
	mp := m
	mp.StatementBytes = m.PreparedStatementBytes
	if mp.StatementBytes <= 0 {
		mp.StatementBytes = DefaultPreparedStatementBytes
	}
	est := mp.PredictBatched(a, s)
	// One prepare exchange: the statement text up (one packet), the
	// handle back (the model's half-filled response packet).
	rateBitsPerSec := m.Net.RateKbps * 1024
	est.Batches++
	est.Queries++
	est.Communications += 2
	est.VolumeBytes += m.Net.PacketBytes * 1.5
	est.LatencySec = est.Communications * m.Net.LatencySec
	est.TransferSec = est.VolumeBytes * 8 / rateBitsPerSec
	est.TotalSec = est.LatencySec + est.TransferSec
	return est
}

// DefaultCompressionRatio is the response-volume ratio measured for the
// columnar v2 encoding plus deflate on the paper's node rows (repeating
// type/state strings, near-monotone ids): the cold-path node records
// shrink by roughly an order of magnitude.
const DefaultCompressionRatio = 10

// PredictCompressed computes the estimate for an action whose response
// node volume is compressed by the given ratio — the columnar v2
// encoding plus negotiated deflate of the wire layer. It rides on
// PredictBatched: request traffic (statement text, packetized exactly
// as before) and latency are untouched; only the transferred node
// records shrink to 1/ratio of their row-major size. A ratio <= 1
// models a session that did not negotiate compression and returns the
// batched estimate unchanged.
func (m Model) PredictCompressed(a Action, s Strategy, ratio float64) Estimate {
	est := m.PredictBatched(a, s)
	if ratio <= 1 {
		return est
	}
	nodeVolume := est.TransmittedNodes * m.nodeBytes()
	est.VolumeBytes -= nodeVolume * (1 - 1/ratio)
	est.TransferSec = est.VolumeBytes * 8 / (m.Net.RateKbps * 1024)
	est.TotalSec = est.LatencySec + est.TransferSec
	return est
}

// DefaultValidateEntryBytes is the wire size of one validate entry:
// an 8-byte object id plus its 8-byte fetch-time version stamp.
const DefaultValidateEntryBytes = 16

// PredictCached computes the estimate for an action executed through
// the client-side structure cache. Cold (warm=false) the cache adds
// nothing: the estimate equals the batched prediction, which is what
// the cache rides on. Warm, a structure action collapses to a single
// validate exchange — the (id, version) pairs of every cached object
// travel up (packetized like any request) and the stale-id answer
// comes back — with no node records transferred at all: the repeat
// cost of a worldwide structure traversal becomes independent of the
// node volume and linear only in the id list. The set-oriented Query
// is not cached and keeps its plain estimate.
func (m Model) PredictCached(a Action, s Strategy, warm bool) Estimate {
	if a == Query {
		return m.Predict(a, s)
	}
	if !warm {
		return m.PredictBatched(a, s)
	}
	sizeP := m.Net.PacketBytes
	rateBitsPerSec := m.Net.RateKbps * 1024

	// Entries validated: the root plus every visible node for tree
	// actions, the root plus its visible children for a single expand.
	entries := 1 + m.Tree.VisibleNodes()
	if a == Expand {
		entries = 1 + m.Tree.Sigma*float64(m.Tree.Branch)
	}
	var est Estimate
	est.Communications = 2 // one validate round trip
	packets := math.Ceil(entries * DefaultValidateEntryBytes / sizeP)
	if packets < 1 {
		packets = 1
	}
	est.VolumeBytes = packets*sizeP + sizeP/2
	est.LatencySec = est.Communications * m.Net.LatencySec
	est.TransferSec = est.VolumeBytes * 8 / rateBitsPerSec
	est.TotalSec = est.LatencySec + est.TransferSec
	return est
}

// PredictReplicated computes the estimate for an action issued at a
// replica site of a multi-site topology: the read itself runs against
// the site-local network `local` (typically a LAN — that is the point
// of placing a replica at the site), while the replication pull that
// preceded it ships syncBytes of row deltas across the WAN the model
// was built with (m.Net). syncBytes 0 models a read from an
// already-synced replica — the steady state in which the WAN
// contributes nothing to the response time; a full bootstrap passes
// the product's total row volume and amortizes it over every read
// until the next change. Writes are not modeled here: a write crosses
// the WAN exactly as in the single-server Predict.
func (m Model) PredictReplicated(a Action, s Strategy, local Network, syncBytes float64) Estimate {
	lm := m
	lm.Net = local
	est := lm.Predict(a, s)
	if syncBytes > 0 {
		// One sync round trip on the WAN: a one-packet request up, the
		// delta volume (plus the model's half-filled last packet) down.
		wan := m.Net
		vol := wan.PacketBytes + syncBytes + wan.PacketBytes/2
		est.Communications += 2
		est.VolumeBytes += vol
		est.LatencySec += 2 * wan.LatencySec
		est.TransferSec += vol * 8 / (wan.RateKbps * 1024)
		est.TotalSec = est.LatencySec + est.TransferSec
	}
	return est
}

// SavingPct returns the percentage saving of opt relative to base.
func SavingPct(base, opt Estimate) float64 {
	if base.TotalSec == 0 {
		return 0
	}
	return (1 - opt.TotalSec/base.TotalSec) * 100
}

// ---------------------------------------------------------------------------
// The paper's concrete scenarios

// PaperNetworks returns the three WAN profiles of Tables 2-4, in row
// order: 256 kbit/s with 150 ms, 512 kbit/s with 150 ms, 1024 kbit/s
// with 50 ms; all with 4 kB packets.
func PaperNetworks() []Network {
	return []Network{
		{Name: "256 kbit/s, 150 ms", PacketBytes: DefaultPacketBytes, LatencySec: 0.15, RateKbps: 256},
		{Name: "512 kbit/s, 150 ms", PacketBytes: DefaultPacketBytes, LatencySec: 0.15, RateKbps: 512},
		{Name: "1024 kbit/s, 50 ms", PacketBytes: DefaultPacketBytes, LatencySec: 0.05, RateKbps: 1024},
	}
}

// PaperScenarios returns the three product-tree scenarios of Tables 2-4,
// in column order: (δ=3, β=9), (δ=9, β=3), (δ=7, β=5), all with σ=0.6.
func PaperScenarios() []Tree {
	return []Tree{
		{Name: "δ=3, β=9, σ=0.6", Depth: 3, Branch: 9, Sigma: 0.6},
		{Name: "δ=9, β=3, σ=0.6", Depth: 9, Branch: 3, Sigma: 0.6},
		{Name: "δ=7, β=5, σ=0.6", Depth: 7, Branch: 5, Sigma: 0.6},
	}
}

// TableCells computes the full [network][scenario][action] grid of
// estimates for a strategy — the body of Table 2 (LateEval), Table 3
// (EarlyEval) and Table 4 (Recursive, MLE column).
func TableCells(s Strategy) [][][]Estimate {
	nets := PaperNetworks()
	scens := PaperScenarios()
	out := make([][][]Estimate, len(nets))
	for ni, net := range nets {
		out[ni] = make([][]Estimate, len(scens))
		for si, tree := range scens {
			row := make([]Estimate, len(Actions))
			for ai, a := range Actions {
				row[ai] = Model{Net: net, Tree: tree}.Predict(a, s)
			}
			out[ni][si] = row
		}
	}
	return out
}

// FigureTotals computes one bar chart (Figures 4 and 5): response-time
// totals for every strategy and action at a fixed scenario and network.
func FigureTotals(net Network, tree Tree) [3][3]float64 {
	var out [3][3]float64
	for si, s := range Strategies {
		for ai, a := range Actions {
			out[si][ai] = Model{Net: net, Tree: tree}.Predict(a, s).TotalSec
		}
	}
	return out
}

// Figure4 returns the bar chart of paper Figure 4: δ=9, β=3, σ=0.6,
// T_Lat = 150 ms, dtr = 512 kbit/s.
func Figure4() [3][3]float64 {
	return FigureTotals(PaperNetworks()[1], PaperScenarios()[1])
}

// Figure5 returns the bar chart of paper Figure 5: δ=7, β=5, σ=0.6,
// T_Lat = 150 ms, dtr = 256 kbit/s.
func Figure5() [3][3]float64 {
	return FigureTotals(PaperNetworks()[0], PaperScenarios()[2])
}
