package costmodel

import "testing"

// TestPredictBatchedCollapsesLatency: on the paper's scenarios the
// batched MLE pays two communications per tree level instead of two per
// statement, while shipping the same node volume.
func TestPredictBatchedCollapsesLatency(t *testing.T) {
	for _, net := range PaperNetworks() {
		for _, tree := range PaperScenarios() {
			m := Model{Net: net, Tree: tree}
			for _, s := range []Strategy{LateEval, EarlyEval} {
				plain := m.Predict(MLE, s)
				batched := m.PredictBatched(MLE, s)
				wantComms := 2 * float64(tree.Depth+1)
				if batched.Communications != wantComms {
					t.Errorf("%s/%s/%v: batched comms = %.0f, want %.0f",
						net.Name, tree.Name, s, batched.Communications, wantComms)
				}
				if batched.Communications >= plain.Communications {
					t.Errorf("%s/%s/%v: batching did not reduce communications (%.0f >= %.0f)",
						net.Name, tree.Name, s, batched.Communications, plain.Communications)
				}
				if batched.Queries != plain.Queries {
					t.Errorf("%s/%s/%v: batched queries = %.1f, plain = %.1f",
						net.Name, tree.Name, s, batched.Queries, plain.Queries)
				}
				if batched.TransmittedNodes != plain.TransmittedNodes {
					t.Errorf("%s/%s/%v: batched n_t = %.1f, plain = %.1f",
						net.Name, tree.Name, s, batched.TransmittedNodes, plain.TransmittedNodes)
				}
				if batched.TotalSec >= plain.TotalSec {
					t.Errorf("%s/%s/%v: batched T = %.2f >= plain %.2f",
						net.Name, tree.Name, s, batched.TotalSec, plain.TotalSec)
				}
				if batched.LatencySec <= 0 || batched.TransferSec <= 0 {
					t.Errorf("%s/%s/%v: degenerate estimate %+v", net.Name, tree.Name, s, batched)
				}
			}
		}
	}
}

// TestPredictBatchedNoopCases: single-statement actions and the
// recursive strategy are untouched by batching.
func TestPredictBatchedNoopCases(t *testing.T) {
	m := Model{Net: PaperNetworks()[0], Tree: PaperScenarios()[0]}
	for _, a := range []Action{Query, Expand} {
		for _, s := range Strategies {
			if m.PredictBatched(a, s) != m.Predict(a, s) {
				t.Errorf("%v/%v: batched estimate must equal plain", a, s)
			}
		}
	}
	if m.PredictBatched(MLE, Recursive) != m.Predict(MLE, Recursive) {
		t.Error("recursive MLE: batched estimate must equal plain")
	}
}

// TestPredictBatchedPrepared: on the larger paper scenarios — where a
// BFS level's statements span several packets — prepared executions
// shrink the predicted volume below the batched text prediction, while
// the transmitted node volume is untouched. Single-statement actions
// and the recursive strategy are unaffected.
func TestPredictBatchedPrepared(t *testing.T) {
	net := PaperNetworks()[0]
	for _, tree := range PaperScenarios()[1:] { // δ=9/β=3 and δ=7/β=5
		m := Model{Net: net, Tree: tree}
		batched := m.PredictBatched(MLE, EarlyEval)
		prepared := m.PredictBatchedPrepared(MLE, EarlyEval)
		if prepared.TransmittedNodes != batched.TransmittedNodes {
			t.Errorf("%s: prepared n_t = %.1f, batched = %.1f",
				tree.Name, prepared.TransmittedNodes, batched.TransmittedNodes)
		}
		if prepared.VolumeBytes >= batched.VolumeBytes {
			t.Errorf("%s: prepared volume %.0f >= batched %.0f",
				tree.Name, prepared.VolumeBytes, batched.VolumeBytes)
		}
		if prepared.TotalSec >= batched.TotalSec {
			t.Errorf("%s: prepared T %.2f >= batched %.2f",
				tree.Name, prepared.TotalSec, batched.TotalSec)
		}
		// The prepare exchange is one extra round trip.
		if prepared.Communications != batched.Communications+2 {
			t.Errorf("%s: prepared comms = %.0f, want %.0f",
				tree.Name, prepared.Communications, batched.Communications+2)
		}
	}
	// An explicitly configured text StatementBytes must not leak into
	// the prepared prediction.
	mText := Model{Net: net, Tree: PaperScenarios()[2], StatementBytes: 900}
	if got, want := mText.PredictBatchedPrepared(MLE, EarlyEval),
		(Model{Net: net, Tree: PaperScenarios()[2]}).PredictBatchedPrepared(MLE, EarlyEval); got != want {
		t.Errorf("StatementBytes leaked into prepared prediction: %+v != %+v", got, want)
	}
	// Non-MLE and recursive predictions pass through unchanged.
	m := Model{Net: net, Tree: PaperScenarios()[0]}
	if got, want := m.PredictBatchedPrepared(Query, EarlyEval), m.Predict(Query, EarlyEval); got != want {
		t.Errorf("Query prediction changed: %+v != %+v", got, want)
	}
	if got, want := m.PredictBatchedPrepared(MLE, Recursive), m.Predict(MLE, Recursive); got != want {
		t.Errorf("recursive MLE prediction changed: %+v != %+v", got, want)
	}
}
