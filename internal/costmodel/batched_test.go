package costmodel

import "testing"

// TestPredictBatchedCollapsesLatency: on the paper's scenarios the
// batched MLE pays two communications per tree level instead of two per
// statement, while shipping the same node volume.
func TestPredictBatchedCollapsesLatency(t *testing.T) {
	for _, net := range PaperNetworks() {
		for _, tree := range PaperScenarios() {
			m := Model{Net: net, Tree: tree}
			for _, s := range []Strategy{LateEval, EarlyEval} {
				plain := m.Predict(MLE, s)
				batched := m.PredictBatched(MLE, s)
				wantComms := 2 * float64(tree.Depth+1)
				if batched.Communications != wantComms {
					t.Errorf("%s/%s/%v: batched comms = %.0f, want %.0f",
						net.Name, tree.Name, s, batched.Communications, wantComms)
				}
				if batched.Communications >= plain.Communications {
					t.Errorf("%s/%s/%v: batching did not reduce communications (%.0f >= %.0f)",
						net.Name, tree.Name, s, batched.Communications, plain.Communications)
				}
				if batched.Queries != plain.Queries {
					t.Errorf("%s/%s/%v: batched queries = %.1f, plain = %.1f",
						net.Name, tree.Name, s, batched.Queries, plain.Queries)
				}
				if batched.TransmittedNodes != plain.TransmittedNodes {
					t.Errorf("%s/%s/%v: batched n_t = %.1f, plain = %.1f",
						net.Name, tree.Name, s, batched.TransmittedNodes, plain.TransmittedNodes)
				}
				if batched.TotalSec >= plain.TotalSec {
					t.Errorf("%s/%s/%v: batched T = %.2f >= plain %.2f",
						net.Name, tree.Name, s, batched.TotalSec, plain.TotalSec)
				}
				if batched.LatencySec <= 0 || batched.TransferSec <= 0 {
					t.Errorf("%s/%s/%v: degenerate estimate %+v", net.Name, tree.Name, s, batched)
				}
			}
		}
	}
}

// TestPredictBatchedNoopCases: single-statement actions and the
// recursive strategy are untouched by batching.
func TestPredictBatchedNoopCases(t *testing.T) {
	m := Model{Net: PaperNetworks()[0], Tree: PaperScenarios()[0]}
	for _, a := range []Action{Query, Expand} {
		for _, s := range Strategies {
			if m.PredictBatched(a, s) != m.Predict(a, s) {
				t.Errorf("%v/%v: batched estimate must equal plain", a, s)
			}
		}
	}
	if m.PredictBatched(MLE, Recursive) != m.Predict(MLE, Recursive) {
		t.Error("recursive MLE: batched estimate must equal plain")
	}
}
