package costmodel

import (
	"math"
	"testing"
)

// tol is the tolerance against the paper's 2-decimal printed values: a
// correct computation rounds to the printed value, so the difference is
// below 0.005 plus a little slack.
const tol = 0.006

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, paper prints %.2f (diff %.4f)", what, got, want, math.Abs(got-want))
	}
}

// TestTable2 verifies every cell of Table 2 (late evaluation).
func TestTable2(t *testing.T) {
	cells := TableCells(LateEval)
	for ni := range cells {
		for si := range cells[ni] {
			for ai := range cells[ni][si] {
				est := cells[ni][si][ai]
				name := PaperNetworks()[ni].Name + " / " + PaperScenarios()[si].Name + " / " + Actions[ai].String()
				approx(t, "Table2 latency "+name, est.LatencySec, PaperTable2Latency[ni][si][ai])
				approx(t, "Table2 transfer "+name, est.TransferSec, PaperTable2Transfer[ni][si][ai])
				approx(t, "Table2 total "+name, est.TotalSec, PaperTable2Total[ni][si][ai])
			}
		}
	}
}

// TestTable3 verifies every cell of Table 3 (early rule evaluation),
// including the saving percentages relative to Table 2.
func TestTable3(t *testing.T) {
	late := TableCells(LateEval)
	early := TableCells(EarlyEval)
	for ni := range early {
		for si := range early[ni] {
			for ai := range early[ni][si] {
				est := early[ni][si][ai]
				name := PaperNetworks()[ni].Name + " / " + PaperScenarios()[si].Name + " / " + Actions[ai].String()
				// Latency is unchanged by early evaluation.
				approx(t, "Table3 latency "+name, est.LatencySec, PaperTable2Latency[ni][si][ai])
				approx(t, "Table3 transfer "+name, est.TransferSec, PaperTable3Transfer[ni][si][ai])
				approx(t, "Table3 total "+name, est.TotalSec, PaperTable3Total[ni][si][ai])
				saving := SavingPct(late[ni][si][ai], est)
				approx(t, "Table3 saving "+name, saving, PaperTable3Saving[ni][si][ai])
			}
		}
	}
}

// TestTable4 verifies the recursive-query MLE column of Table 4.
func TestTable4(t *testing.T) {
	late := TableCells(LateEval)
	rec := TableCells(Recursive)
	mle := int(MLE)
	for ni := range rec {
		for si := range rec[ni] {
			est := rec[ni][si][mle]
			name := PaperNetworks()[ni].Name + " / " + PaperScenarios()[si].Name
			approx(t, "Table4 latency "+name, est.LatencySec, PaperTable4Latency[ni][si])
			approx(t, "Table4 transfer "+name, est.TransferSec, PaperTable4Transfer[ni][si])
			approx(t, "Table4 total "+name, est.TotalSec, PaperTable4Total[ni][si])
			saving := SavingPct(late[ni][si][mle], est)
			approx(t, "Table4 saving "+name, saving, PaperTable4Saving[ni][si])
		}
	}
}

// TestFigures checks the bar heights of Figures 4 and 5 against the
// corresponding table columns.
func TestFigures(t *testing.T) {
	f4 := Figure4()
	approx(t, "Fig4 late MLE", f4[0][2], 181.02)
	approx(t, "Fig4 early Query", f4[1][0], 3.86)
	approx(t, "Fig4 recursion MLE", f4[2][2], 3.86)
	f5 := Figure5()
	approx(t, "Fig5 late MLE", f5[0][2], 1684.39)
	approx(t, "Fig5 early MLE", f5[1][2], 1650.23)
	approx(t, "Fig5 recursion MLE", f5[2][2], 51.72)
	// The headline claim: recursion + early evaluation eliminates 95 %+
	// of the original MLE delay.
	for _, f := range [][3][3]float64{f4, f5} {
		saving := (1 - f[2][2]/f[0][2]) * 100
		if saving < 95 {
			t.Errorf("recursive MLE saving = %.2f%%, paper claims >95%%", saving)
		}
	}
}

func TestTreeMath(t *testing.T) {
	tree := Tree{Depth: 7, Branch: 5, Sigma: 0.6} // σβ = 3 exactly
	if nv := tree.VisibleNodes(); math.Abs(nv-3279) > 1e-6 {
		t.Errorf("VisibleNodes = %v, want 3279", nv)
	}
	if all := tree.AllNodes(); math.Abs(all-97655) > 1e-6 {
		t.Errorf("AllNodes = %v, want 97655", all)
	}
	if q := tree.Queries(MLE); math.Abs(q-3280) > 1e-6 {
		t.Errorf("Queries(MLE) = %v, want 3280", q)
	}
	if nt := tree.TransmittedNodes(MLE, LateEval); math.Abs(nt-5465) > 1e-6 {
		t.Errorf("TransmittedNodes(MLE, late) = %v, want 5465", nt)
	}
}

func TestSavingPct(t *testing.T) {
	base := Estimate{TotalSec: 100}
	opt := Estimate{TotalSec: 5}
	if got := SavingPct(base, opt); math.Abs(got-95) > 1e-9 {
		t.Errorf("SavingPct = %v, want 95", got)
	}
	if got := SavingPct(Estimate{}, opt); got != 0 {
		t.Errorf("SavingPct with zero base = %v, want 0", got)
	}
}

// TestMonotonicity: response time decreases with bandwidth and increases
// with latency, depth and branching — basic sanity of the model.
func TestMonotonicity(t *testing.T) {
	tree := Tree{Depth: 5, Branch: 4, Sigma: 0.6}
	slow := Model{Net: Network{PacketBytes: 4096, LatencySec: 0.15, RateKbps: 256}, Tree: tree}
	fast := Model{Net: Network{PacketBytes: 4096, LatencySec: 0.15, RateKbps: 1024}, Tree: tree}
	for _, a := range Actions {
		for _, s := range Strategies {
			if slow.Predict(a, s).TotalSec < fast.Predict(a, s).TotalSec {
				t.Errorf("%v/%v: slower link must not be faster", a, s)
			}
		}
	}
	shallow := Model{Net: slow.Net, Tree: Tree{Depth: 3, Branch: 4, Sigma: 0.6}}
	if shallow.Predict(MLE, LateEval).TotalSec > slow.Predict(MLE, LateEval).TotalSec {
		t.Error("shallower tree must not be slower")
	}
}

// TestRecursiveQueryPackets: a query text spanning multiple packets adds
// volume but never extra round trips.
func TestRecursiveQueryPackets(t *testing.T) {
	tree := Tree{Depth: 5, Branch: 4, Sigma: 0.6}
	net := Network{PacketBytes: 4096, LatencySec: 0.15, RateKbps: 256}
	one := Model{Net: net, Tree: tree, RecursiveQueryPackets: 1}.Predict(MLE, Recursive)
	three := Model{Net: net, Tree: tree, RecursiveQueryPackets: 3}.Predict(MLE, Recursive)
	if three.Communications != one.Communications {
		t.Errorf("communications changed: %v vs %v", three.Communications, one.Communications)
	}
	if three.TotalSec <= one.TotalSec {
		t.Error("larger query text must cost more transfer time")
	}
	if three.LatencySec != one.LatencySec {
		t.Error("latency share must not depend on query text size")
	}
}
