package costmodel

import (
	"math"
	"testing"
)

func TestPredictCompressed(t *testing.T) {
	m := Model{Net: PaperNetworks()[0], Tree: PaperScenarios()[2]} // δ=7, β=5 at 256 kbit/s

	batched := m.PredictBatched(MLE, EarlyEval)
	for _, ratio := range []float64{0, 0.5, 1} {
		got := m.PredictCompressed(MLE, EarlyEval, ratio)
		if got != batched {
			t.Errorf("ratio %v must equal the batched estimate", ratio)
		}
	}

	z := m.PredictCompressed(MLE, EarlyEval, 10)
	if z.LatencySec != batched.LatencySec || z.Communications != batched.Communications {
		t.Error("compression must not change latency or round trips")
	}
	if z.VolumeBytes >= batched.VolumeBytes || z.TotalSec >= batched.TotalSec {
		t.Errorf("ratio 10: volume %.0f / T %.2f not below batched %.0f / %.2f",
			z.VolumeBytes, z.TotalSec, batched.VolumeBytes, batched.TotalSec)
	}
	// The node-record share shrinks to 1/ratio exactly.
	wantVol := batched.VolumeBytes - batched.TransmittedNodes*DefaultNodeBytes*(1-1.0/10)
	if math.Abs(z.VolumeBytes-wantVol) > 1e-6 {
		t.Errorf("volume = %.2f, want %.2f", z.VolumeBytes, wantVol)
	}

	// Monotone in the ratio.
	prev := batched.TotalSec
	for _, ratio := range []float64{2, 5, 10, 50} {
		cur := m.PredictCompressed(MLE, EarlyEval, ratio).TotalSec
		if cur >= prev {
			t.Errorf("ratio %v: T %.2f not below previous %.2f", ratio, cur, prev)
		}
		prev = cur
	}

	// Non-MLE actions and the recursive strategy ride on PredictBatched's
	// fallthrough but still shrink their node volume.
	rec := m.PredictCompressed(MLE, Recursive, 10)
	recBase := m.Predict(MLE, Recursive)
	if rec.TotalSec >= recBase.TotalSec {
		t.Errorf("recursive compressed %.2f not below plain %.2f", rec.TotalSec, recBase.TotalSec)
	}
}
