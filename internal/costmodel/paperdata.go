package costmodel

// This file transcribes the numbers printed in the paper's evaluation
// (Tables 2, 3 and 4) so tests, benchmarks and cmd/pdmbench can put
// "paper" and "reproduced" columns side by side. Grid order is
// [network][scenario][action] following PaperNetworks / PaperScenarios /
// Actions; Table 4 carries only the MLE column: [network][scenario].

// PaperTable2Latency is the latency share (c · T_Lat) of Table 2.
var PaperTable2Latency = [3][3][3]float64{
	{{0.30, 0.30, 57.91}, {0.30, 0.30, 133.52}, {0.30, 0.30, 984.00}},
	{{0.30, 0.30, 57.91}, {0.30, 0.30, 133.52}, {0.30, 0.30, 984.00}},
	{{0.10, 0.10, 19.30}, {0.10, 0.10, 44.51}, {0.10, 0.10, 328.00}},
}

// PaperTable2Transfer is the transfer share (vol / dtr) of Table 2.
var PaperTable2Transfer = [3][3][3]float64{
	{{12.98, 0.33, 41.19}, {461.48, 0.23, 95.01}, {1526.05, 0.27, 700.39}},
	{{6.49, 0.16, 20.60}, {230.74, 0.12, 47.51}, {763.02, 0.13, 350.20}},
	{{3.25, 0.08, 10.30}, {115.37, 0.06, 23.75}, {381.51, 0.07, 175.10}},
}

// PaperTable2Total is T_s of Table 2 (late evaluation).
var PaperTable2Total = [3][3][3]float64{
	{{13.28, 0.63, 99.10}, {461.78, 0.53, 228.53}, {1526.35, 0.57, 1684.39}},
	{{6.79, 0.46, 78.50}, {231.04, 0.42, 181.02}, {763.32, 0.43, 1334.20}},
	{{3.35, 0.18, 29.60}, {115.47, 0.16, 68.26}, {381.61, 0.17, 503.10}},
}

// PaperTable3Transfer is the transfer share of Table 3 (early evaluation).
var PaperTable3Transfer = [3][3][3]float64{
	{{3.19, 0.27, 39.19}, {7.13, 0.22, 90.39}, {51.42, 0.23, 666.23}},
	{{1.59, 0.14, 19.60}, {3.56, 0.11, 45.19}, {25.71, 0.12, 333.12}},
	{{0.80, 0.07, 9.80}, {1.78, 0.05, 22.60}, {12.86, 0.06, 166.56}},
}

// PaperTable3Total is T_s of Table 3.
var PaperTable3Total = [3][3][3]float64{
	{{3.49, 0.57, 97.10}, {7.43, 0.52, 223.90}, {51.72, 0.53, 1650.23}},
	{{1.89, 0.44, 77.50}, {3.86, 0.41, 178.71}, {26.01, 0.42, 1317.12}},
	{{0.90, 0.17, 29.10}, {1.88, 0.15, 67.10}, {12.96, 0.16, 494.56}},
}

// PaperTable3Saving is Table 3's "saving in %" row.
var PaperTable3Saving = [3][3][3]float64{
	{{73.74, 8.96, 2.02}, {98.39, 3.51, 2.02}, {96.61, 5.52, 2.03}},
	{{72.12, 6.06, 1.27}, {98.33, 2.25, 1.28}, {96.59, 3.61, 1.28}},
	{{73.19, 7.73, 1.69}, {98.37, 2.96, 1.69}, {96.61, 4.69, 1.70}},
}

// PaperTable4Latency is the latency share of Table 4 (recursive MLE).
var PaperTable4Latency = [3][3]float64{
	{0.30, 0.30, 0.30}, {0.30, 0.30, 0.30}, {0.10, 0.10, 0.10},
}

// PaperTable4Transfer is the transfer share of Table 4.
var PaperTable4Transfer = [3][3]float64{
	{3.19, 7.13, 51.42}, {1.59, 3.56, 25.71}, {0.80, 1.78, 12.86},
}

// PaperTable4Total is T_s of Table 4.
var PaperTable4Total = [3][3]float64{
	{3.49, 7.43, 51.72}, {1.89, 3.86, 26.01}, {0.90, 1.88, 12.96},
}

// PaperTable4Saving is Table 4's "saving in %" row.
var PaperTable4Saving = [3][3]float64{
	{96.48, 96.75, 96.93}, {97.59, 97.87, 98.05}, {96.97, 97.24, 97.42},
}
