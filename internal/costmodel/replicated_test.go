package costmodel

import (
	"math"
	"testing"
)

// lanNet is the analytic counterpart of netsim.LAN().
func lanNet() Network {
	return Network{Name: "LAN", PacketBytes: 4096, LatencySec: 0.0005, RateKbps: 100 * 1024}
}

// TestPredictReplicatedSteadyState: with nothing to sync, a replica
// read is exactly the action priced at the local network — the WAN
// drops out of the estimate entirely.
func TestPredictReplicatedSteadyState(t *testing.T) {
	m := Model{Net: PaperNetworks()[0], Tree: PaperScenarios()[2]}
	for _, s := range Strategies {
		got := m.PredictReplicated(MLE, s, lanNet(), 0)
		want := Model{Net: lanNet(), Tree: m.Tree}.Predict(MLE, s)
		if got != want {
			t.Errorf("%v: replicated steady-state %+v != local predict %+v", s, got, want)
		}
		wan := m.Predict(MLE, s)
		if got.TotalSec >= wan.TotalSec {
			t.Errorf("%v: replica read %.2fs not below WAN read %.2fs", s, got.TotalSec, wan.TotalSec)
		}
	}
}

// TestPredictReplicatedSyncCost: a sync adds one WAN round trip whose
// transfer is the delta volume; the read part is unchanged.
func TestPredictReplicatedSyncCost(t *testing.T) {
	m := Model{Net: PaperNetworks()[0], Tree: PaperScenarios()[2]}
	base := m.PredictReplicated(MLE, Recursive, lanNet(), 0)
	syncBytes := 1 << 20 // 1 MiB of deltas
	got := m.PredictReplicated(MLE, Recursive, lanNet(), float64(syncBytes))
	if got.Communications != base.Communications+2 {
		t.Errorf("communications = %v, want %v", got.Communications, base.Communications+2)
	}
	wantLat := base.LatencySec + 2*m.Net.LatencySec
	if math.Abs(got.LatencySec-wantLat) > 1e-9 {
		t.Errorf("latency = %v, want %v", got.LatencySec, wantLat)
	}
	wantVol := base.VolumeBytes + m.Net.PacketBytes*1.5 + float64(syncBytes)
	if math.Abs(got.VolumeBytes-wantVol) > 1e-6 {
		t.Errorf("volume = %v, want %v", got.VolumeBytes, wantVol)
	}
	if got.TotalSec <= base.TotalSec {
		t.Error("sync volume did not increase the estimate")
	}
	// The dominant term: 1 MiB across 256 kbit/s is ~32 s of transfer.
	if d := got.TotalSec - base.TotalSec; d < 30 || d > 40 {
		t.Errorf("sync cost %.1fs, want ~32s on the 256 kbit/s WAN", d)
	}
}
