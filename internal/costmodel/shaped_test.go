package costmodel

import (
	"fmt"
	"testing"
)

// The advisor ranks configurations by these predictions, so the model
// must move the right direction as the environment degrades: deeper and
// wider trees, more users, more contention and more sync volume must
// never get cheaper, while a better compression ratio and a looser
// staleness bound must never get more expensive. A silent sign flip
// here would invert the advisor's ranking without failing any
// table-reproduction test.

// knobGrid is a spread of candidate configurations the monotonicity
// properties must hold for — not just the baseline.
func knobGrid() []Knobs {
	return []Knobs{
		{},
		{Strategy: EarlyEval},
		{Strategy: Recursive},
		{Strategy: EarlyEval, Batching: true},
		{Strategy: EarlyEval, Batching: true, Prepared: true},
		{Strategy: Recursive, Compress: true},
		{Strategy: EarlyEval, Batching: true, CacheEntries: 256},
		{Strategy: Recursive, Replica: true, StalenessSec: 30},
	}
}

func baseWorkload() Workload {
	return Workload{
		Net:           PaperNetworks()[0],
		Tree:          Tree{Depth: 5, Branch: 4, Sigma: 0.6},
		Action:        MLE,
		WriteFrac:     0.2,
		RepeatFrac:    0.5,
		Users:         4,
		LockWaitSec:   0.01,
		SyncBytes:     32 * 1024,
		ActionsPerSec: 0.5,
	}
}

// assertMonotone checks that f over xs moves only in the given
// direction (allowing plateaus — some knobs are insensitive to some
// parameters, e.g. a recursive query's round trips to depth).
func assertMonotone(t *testing.T, name string, xs []float64, f func(x float64) float64, increasing bool) {
	t.Helper()
	prev := f(xs[0])
	for _, x := range xs[1:] {
		cur := f(x)
		if increasing && cur < prev-1e-12 {
			t.Errorf("%s: prediction dropped from %.6f to %.6f at %v, want non-decreasing", name, prev, cur, x)
		}
		if !increasing && cur > prev+1e-12 {
			t.Errorf("%s: prediction rose from %.6f to %.6f at %v, want non-increasing", name, prev, cur, x)
		}
		prev = cur
	}
}

func TestPredictWorkloadMonotoneInDepth(t *testing.T) {
	for _, k := range knobGrid() {
		t.Run(fmt.Sprintf("%+v", k), func(t *testing.T) {
			assertMonotone(t, "depth", []float64{1, 2, 3, 5, 7, 9}, func(x float64) float64 {
				w := baseWorkload()
				w.Tree.Depth = int(x)
				return PredictWorkload(k, w).PerActionSec
			}, true)
		})
	}
}

func TestPredictWorkloadMonotoneInBranch(t *testing.T) {
	for _, k := range knobGrid() {
		t.Run(fmt.Sprintf("%+v", k), func(t *testing.T) {
			assertMonotone(t, "branch", []float64{2, 3, 5, 7, 9}, func(x float64) float64 {
				w := baseWorkload()
				w.Tree.Branch = int(x)
				return PredictWorkload(k, w).PerActionSec
			}, true)
		})
	}
}

func TestPredictWorkloadMonotoneInUsers(t *testing.T) {
	for _, k := range knobGrid() {
		t.Run(fmt.Sprintf("%+v", k), func(t *testing.T) {
			assertMonotone(t, "users", []float64{1, 2, 4, 8, 16, 64}, func(x float64) float64 {
				w := baseWorkload()
				w.Users = int(x)
				return PredictWorkload(k, w).PerActionSec
			}, true)
		})
	}
}

func TestPredictWorkloadMonotoneInCompressionRatio(t *testing.T) {
	k := Knobs{Strategy: Recursive, Batching: true, Compress: true}
	assertMonotone(t, "ratio", []float64{1, 2, 5, 10, 20, 100}, func(x float64) float64 {
		k.CompressionRatio = x
		return PredictWorkload(k, baseWorkload()).PerActionSec
	}, false)
}

func TestPredictWorkloadMonotoneInStaleness(t *testing.T) {
	k := Knobs{Strategy: Recursive, Replica: true}
	assertMonotone(t, "staleness", []float64{0, 1, 10, 60, 600}, func(x float64) float64 {
		k.StalenessSec = x
		return PredictWorkload(k, baseWorkload()).PerActionSec
	}, false)
}

func TestPredictWorkloadMonotoneInContention(t *testing.T) {
	for _, k := range knobGrid() {
		t.Run(fmt.Sprintf("%+v", k), func(t *testing.T) {
			assertMonotone(t, "lock wait", []float64{0, 0.001, 0.01, 0.1, 1}, func(x float64) float64 {
				w := baseWorkload()
				w.LockWaitSec = x
				return PredictWorkload(k, w).PerActionSec
			}, true)
		})
	}
}

func TestPredictWorkloadMonotoneInSyncVolume(t *testing.T) {
	k := Knobs{Strategy: Recursive, Replica: true, StalenessSec: 10}
	assertMonotone(t, "sync bytes", []float64{0, 1024, 64 * 1024, 1024 * 1024}, func(x float64) float64 {
		w := baseWorkload()
		w.SyncBytes = x
		return PredictWorkload(k, w).PerActionSec
	}, true)
}

// The same directions must hold for the underlying paper formulas the
// blend is built from — a regression there would poison every shaped
// prediction.
func TestPredictMonotoneInDepthAndBranch(t *testing.T) {
	net := PaperNetworks()[0]
	for _, s := range Strategies {
		for _, a := range Actions {
			assertMonotone(t, fmt.Sprintf("%v/%v depth", s, a), []float64{1, 3, 5, 9}, func(x float64) float64 {
				return Model{Net: net, Tree: Tree{Depth: int(x), Branch: 4, Sigma: 0.6}}.Predict(a, s).TotalSec
			}, true)
			assertMonotone(t, fmt.Sprintf("%v/%v branch", s, a), []float64{2, 4, 6, 9}, func(x float64) float64 {
				return Model{Net: net, Tree: Tree{Depth: 5, Branch: int(x), Sigma: 0.6}}.Predict(a, s).TotalSec
			}, true)
		}
	}
}

// Sanity, not just direction: the blend must reproduce known structure.
func TestPredictWorkloadShapePreferences(t *testing.T) {
	w := baseWorkload()

	// A repeat-heavy read workload must get cheaper with a cache.
	w.RepeatFrac = 0.9
	w.WriteFrac = 0
	noCache := PredictWorkload(Knobs{Strategy: Recursive, Batching: true}, w)
	cache := PredictWorkload(Knobs{Strategy: Recursive, Batching: true, CacheEntries: 256}, w)
	if cache.PerActionSec >= noCache.PerActionSec {
		t.Errorf("cache does not pay off on repeat-heavy reads: %.3fs >= %.3fs",
			cache.PerActionSec, noCache.PerActionSec)
	}

	// The same cache is worthless on a cold scan.
	w.RepeatFrac = 0
	coldCache := PredictWorkload(Knobs{Strategy: Recursive, Batching: true, CacheEntries: 256}, w)
	coldPlain := PredictWorkload(Knobs{Strategy: Recursive, Batching: true}, w)
	if coldCache.PerActionSec != coldPlain.PerActionSec {
		t.Errorf("cache changed a cold prediction: %.3fs != %.3fs",
			coldCache.PerActionSec, coldPlain.PerActionSec)
	}

	// Batching must beat per-statement round trips for navigational MLE.
	w = baseWorkload()
	plain := PredictWorkload(Knobs{Strategy: EarlyEval}, w)
	batched := PredictWorkload(Knobs{Strategy: EarlyEval, Batching: true}, w)
	if batched.PerActionSec >= plain.PerActionSec {
		t.Errorf("batching does not pay off: %.3fs >= %.3fs", batched.PerActionSec, plain.PerActionSec)
	}

	// Replica reads must beat WAN reads for a read-only workload.
	w.WriteFrac = 0
	replica := PredictWorkload(Knobs{Strategy: Recursive, Replica: true, StalenessSec: 60}, w)
	wan := PredictWorkload(Knobs{Strategy: Recursive}, w)
	if replica.PerActionSec >= wan.PerActionSec {
		t.Errorf("replica reads do not pay off: %.3fs >= %.3fs", replica.PerActionSec, wan.PerActionSec)
	}

	// The lock-wait share must be visible in the estimate.
	w = baseWorkload()
	est := PredictWorkload(Knobs{}, w)
	if est.LockWaitSec <= 0 || est.WriteSec <= est.LockWaitSec {
		t.Errorf("contention share missing from write cost: %+v", est)
	}
}
