package costmodel

import "math"

// This file is the advisor's entry point into the model: Predict and
// its variants price one action under one optimization at a time, while
// an advisor must price a *configuration* under a *workload* — a mix of
// reads and writes, repeats and cold traversals, possibly at a replica
// site, possibly contended. PredictWorkload composes the per-action
// formulas into one expected-seconds-per-action score that is
// comparable across arbitrary knob combinations.

// Knobs is one candidate client configuration over the runtime tuning
// levers — the advisor enumerates these and ranks them by
// PredictWorkload. The zero value is the paper's unoptimized baseline
// (late evaluation, text statements, no cache, v1 wire, primary reads).
type Knobs struct {
	// Strategy selects late/early evaluation or the recursive query.
	Strategy Strategy
	// Batching collapses each BFS level (and each modify) into one
	// round trip.
	Batching bool
	// Prepared ships per-node statements as handle + parameters.
	Prepared bool
	// CacheEntries sizes the client structure cache: 0 none, > 0 a
	// private bound, -1 a shared store (priced like a private one).
	CacheEntries int
	// Compress negotiates the columnar v2 encoding plus response
	// compression.
	Compress bool
	// CompressionRatio is the expected response shrink factor
	// (DefaultCompressionRatio when 0); only read when Compress is set.
	CompressionRatio float64
	// Replica reads from a site-local replica (writes keep crossing
	// the WAN to the primary).
	Replica bool
	// StalenessSec bounds how stale replica reads may be: 0 syncs
	// before every action, larger bounds amortize the sync, negative
	// never syncs at read time. Only read when Replica is set.
	StalenessSec float64
	// Coverage is the site's subscription coverage in (0, 1]: the
	// fraction of the product structure the replica holds. Reads inside
	// the coverage run site-local; the rest fall through to the primary
	// at cold WAN cost, while replication pulls shrink proportionally.
	// 0 means full replication (coverage 1). Only read when Replica is
	// set.
	Coverage float64
}

// Cached reports whether the candidate runs a structure cache.
func (k Knobs) Cached() bool { return k.CacheEntries != 0 }

func (k Knobs) ratio() float64 {
	if k.CompressionRatio > 0 {
		return k.CompressionRatio
	}
	return DefaultCompressionRatio
}

// coverage returns the effective subscription coverage: 1 (everything
// held locally) unless the candidate is a partial replica.
func (k Knobs) coverage() float64 {
	if !k.Replica || k.Coverage <= 0 || k.Coverage > 1 {
		return 1
	}
	return k.Coverage
}

// Workload is the observed shape of a live session or fleet — what the
// advisor distills out of a windowed metrics delta. All fields describe
// the environment, none of them a tuning decision.
type Workload struct {
	// Net is the WAN profile between client (or replica site) and the
	// primary. A zero profile defaults to the paper's slowest WAN.
	Net Network
	// LocalNet is the site-local profile replica reads run on
	// (LANNetwork when zero). Only read for Replica candidates.
	LocalNet Network
	// Tree is the product shape the actions traverse.
	Tree Tree
	// Action is the dominant read action of the window (typically MLE).
	Action Action
	// WriteFrac is the fraction of actions that are writes
	// (check-out/check-in), in [0, 1].
	WriteFrac float64
	// RepeatFrac is the fraction of read actions whose (action, target)
	// had been executed before — the cache-hit opportunity, in [0, 1].
	RepeatFrac float64
	// Users is the number of concurrent users sharing the link (and the
	// write latches); 0 and 1 both mean a single user.
	Users int
	// LockWaitSec is the observed lock wait per write action, the PR 6
	// contention counter distilled to seconds.
	LockWaitSec float64
	// SyncBytes is the observed row-delta volume of one replication
	// pull; only read for Replica candidates.
	SyncBytes float64
	// ActionsPerSec is the observed action rate (simulated time). It
	// amortizes replica syncs over the actions between two bounds.
	ActionsPerSec float64
}

// LANNetwork is the analytic twin of netsim.LAN — the site-local
// profile replica reads are priced against when the workload does not
// measure its own.
func LANNetwork() Network {
	return Network{Name: "LAN 100 Mbit/s, 0.5 ms", PacketBytes: 4096, LatencySec: 0.0005, RateKbps: 100 * 1024}
}

// WorkloadEstimate is the priced expectation of one action under a
// candidate configuration.
type WorkloadEstimate struct {
	// ReadSec is the expected seconds of one read action (cold/warm
	// blended, replication amortized).
	ReadSec float64
	// WriteSec is the expected seconds of one write action (fetch
	// phase + flag updates + contention).
	WriteSec float64
	// SyncSec is the amortized replication share already inside
	// ReadSec (zero for primary reads).
	SyncSec float64
	// LockWaitSec is the contention share already inside WriteSec.
	LockWaitSec float64
	// PerActionSec is the ranking score: the write-fraction blend of
	// ReadSec and WriteSec.
	PerActionSec float64
}

func (w Workload) net() Network {
	if w.Net.RateKbps > 0 {
		return w.Net
	}
	return PaperNetworks()[0]
}

func (w Workload) localNet() Network {
	if w.LocalNet.RateKbps > 0 {
		return w.LocalNet
	}
	return LANNetwork()
}

func (w Workload) users() float64 {
	if w.Users > 1 {
		return float64(w.Users)
	}
	return 1
}

// coldRead prices one cold read action of the workload under the
// candidate's wire knobs on the given network.
func coldRead(net Network, k Knobs, w Workload) Estimate {
	m := Model{Net: net, Tree: w.Tree}
	var est Estimate
	switch {
	case k.Batching && k.Prepared:
		est = m.PredictBatchedPrepared(w.Action, k.Strategy)
	case k.Batching:
		est = m.PredictBatched(w.Action, k.Strategy)
	default:
		est = m.Predict(w.Action, k.Strategy)
	}
	if k.Compress && k.ratio() > 1 {
		// The negotiated encodings shrink the response node records to
		// 1/ratio of their row-major size, exactly as PredictCompressed
		// does on top of the batched estimate.
		nodeVolume := est.TransmittedNodes * m.nodeBytes()
		est.VolumeBytes -= nodeVolume * (1 - 1/k.ratio())
		est.TransferSec = est.VolumeBytes * 8 / (net.RateKbps * 1024)
		est.TotalSec = est.LatencySec + est.TransferSec
	}
	return est
}

// scaled is the users-aware total of an estimate: latency is per
// connection, but the link's bandwidth is shared by every concurrent
// user, so the transfer share stretches with the fleet.
func scaled(est Estimate, users float64) float64 {
	return est.LatencySec + est.TransferSec*users
}

// PredictWorkload prices one candidate configuration under an observed
// workload: the expected simulated seconds of one user action, blended
// over the workload's read/write and cold/repeat mix, with replica
// syncs amortized over the staleness bound and the observed lock wait
// charged to every write. Monotone in the environment: deeper or wider
// trees, more users, more lock wait and more sync volume never get
// cheaper; a larger compression ratio and a larger staleness bound
// never get more expensive.
func PredictWorkload(k Knobs, w Workload) WorkloadEstimate {
	users := w.users()
	wan := w.net()
	readNet := wan
	if k.Replica {
		readNet = w.localNet()
	}

	// ---- reads: cold/warm blend on the read network
	cold := scaled(coldRead(readNet, k, w), users)
	readSec := cold
	if k.Cached() && w.Action != Query {
		warm := scaled(Model{Net: readNet, Tree: w.Tree}.PredictCached(w.Action, k.Strategy, true), users)
		rf := math.Min(math.Max(w.RepeatFrac, 0), 1)
		readSec = (1-rf)*cold + rf*warm
	}

	// ---- partial replication: reads outside the subscription fall
	// through to the primary at cold WAN cost (never cached — the
	// replica does not hold them to validate against).
	cov := k.coverage()
	if cov < 1 {
		wanCold := scaled(coldRead(wan, k, w), users)
		readSec = cov*readSec + (1-cov)*wanCold
	}

	// ---- replication: one WAN pull per staleness window, amortized
	// over the actions that share it (bound 0: every action pays one).
	// A subscription shrinks the pulled row volume to its coverage.
	var syncSec float64
	if k.Replica && k.StalenessSec >= 0 {
		vol := wan.PacketBytes*1.5 + w.SyncBytes*cov
		pull := 2*wan.LatencySec + vol*8/(wan.RateKbps*1024)*users
		actionsPerPull := 1 + k.StalenessSec*math.Max(w.ActionsPerSec, 0)
		syncSec = pull / actionsPerPull
		readSec += syncSec
	}

	// ---- writes: the check actions always cross the WAN to the
	// primary — a fetch phase (the rule check walks the subtree) plus
	// the flag updates, plus the observed contention.
	fetch := scaled(coldRead(wan, k, w), users)
	nodes := 1 + w.Tree.VisibleNodes()
	stmtBytes := float64(DefaultStatementBytes)
	updateRTs := 2.0 // one UPDATE ... WHERE obid IN (...) per object table
	if k.Batching {
		updateRTs = 1 // the whole modify ships as one wire batch
	}
	if k.Batching && k.Prepared {
		stmtBytes = DefaultPreparedStatementBytes * nodes // per-node handle + params
	}
	updVol := math.Max(1, math.Ceil(stmtBytes/wan.PacketBytes))*wan.PacketBytes + wan.PacketBytes/2
	update := 2*updateRTs*wan.LatencySec + updVol*8/(wan.RateKbps*1024)*users
	lockWait := w.LockWaitSec * users
	writeSec := fetch + update + lockWait

	wf := math.Min(math.Max(w.WriteFrac, 0), 1)
	return WorkloadEstimate{
		ReadSec:      readSec,
		WriteSec:     writeSec,
		SyncSec:      syncSec,
		LockWaitSec:  lockWait,
		PerActionSec: (1-wf)*readSec + wf*writeSec,
	}
}
