package costmodel

import "math"

// Predictors for the engineering-change workloads (where-used, ECO
// propagation, bulk reporting). They follow the same packet conventions
// as formulas (1)-(3): every request is rounded up to whole packets
// (min one), every response pays the half-filled last packet, and each
// statement costs two communications.

// DefaultReportRowBytes is the wire size of one reporting-scan row:
// a tagged 8-byte object id, a tagged 8-byte weight and a 1-byte
// checked-out flag, plus value framing.
const DefaultReportRowBytes = 20

// reportRowBytes returns the per-row wire size of the reporting scan —
// NodeBytes does not apply here because the scan projects three columns
// instead of shipping whole node records.
func (m Model) reportRowBytes() float64 {
	return DefaultReportRowBytes
}

// finish fills in the derived latency/transfer/total fields of an
// estimate whose Queries, Communications, Batches, TransmittedNodes and
// VolumeBytes are set.
func (m Model) finish(est Estimate) Estimate {
	if est.Batches == 0 {
		est.Batches = est.Queries
	}
	est.LatencySec = est.Communications * m.Net.LatencySec
	est.TransferSec = est.VolumeBytes * 8 / (m.Net.RateKbps * 1024)
	est.TotalSec = est.LatencySec + est.TransferSec
	return est
}

// PredictWhereUsed estimates the where-used action for a part whose
// ancestor chain is `chain` assemblies deep: one upward level query per
// ancestor level plus the final empty level that terminates the walk,
// then one set-oriented record fetch shipping the `chain` ancestor
// records in the unified layout.
func (m Model) PredictWhereUsed(chain int) Estimate {
	sizeP := m.Net.PacketBytes
	q := float64(chain) + 2
	var est Estimate
	est.Queries = q
	est.Communications = 2 * q
	est.TransmittedNodes = float64(chain)
	est.VolumeBytes = q*sizeP + est.TransmittedNodes*m.nodeBytes() + q*sizeP/2
	return m.finish(est)
}

// PredictECO estimates an engineering-change propagation along a
// `chain`-deep ancestor closure: the upward walk (chain+1 level
// queries), the part's type lookup, and two conditional UPDATE
// statements (the part, then the affected assemblies). Only ids and
// row counts cross the wire — no node records.
func (m Model) PredictECO(chain int) Estimate {
	sizeP := m.Net.PacketBytes
	q := float64(chain) + 4
	var est Estimate
	est.Queries = q
	est.Communications = 2 * q
	est.VolumeBytes = q*sizeP + q*sizeP/2
	return m.finish(est)
}

// PredictReport estimates the bulk reporting scan over a product of
// `rows` nodes: two set-oriented scans (assemblies, components) whose
// answers together carry one three-column row per node.
func (m Model) PredictReport(rows int) Estimate {
	sizeP := m.Net.PacketBytes
	var est Estimate
	est.Queries = 2
	est.Communications = 4
	est.TransmittedNodes = float64(rows)
	est.VolumeBytes = 2*sizeP + float64(rows)*m.reportRowBytes() + 2*sizeP/2
	return m.finish(est)
}

// PredictWhereUsedFor derives the ancestor-chain depth from the model's
// tree scenario — a part at the deepest level has δ ancestors — and
// returns PredictWhereUsed for it.
func (m Model) PredictWhereUsedFor() Estimate {
	return m.PredictWhereUsed(m.Tree.Depth)
}

// PredictReportFor derives the product's node count (root included)
// from the model's tree scenario and returns PredictReport for it.
func (m Model) PredictReportFor() Estimate {
	return m.PredictReport(int(math.Round(m.Tree.AllNodes())) + 1)
}
