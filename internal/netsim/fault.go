package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrConnDown is the raw transport error a faulted connection returns.
// The wire client wraps it in its structured connection-loss error, so
// callers see the same failure shape as a real dead socket.
var ErrConnDown = errors.New("netsim: connection down")

// Transport is the round-trip interface the injector decorates. It is
// structurally identical to the wire package's Transport, declared here
// so netsim (which wire imports) stays free of an import cycle.
type Transport interface {
	RoundTrip(ctx context.Context, request []byte) ([]byte, error)
}

// FaultPlan is a shared kill switch for one simulated process: every
// FaultInjector attached to the plan fails while the plan is down.
// Killing the plan is the test's way to crash a primary — all its
// connections (session transports, pooled members, replication pulls)
// die at once, and Revive brings them back without re-dialing.
type FaultPlan struct {
	mu   sync.Mutex
	down bool
}

// Kill marks the process dead: every attached injector fails until
// Revive.
func (p *FaultPlan) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = true
}

// Revive brings the process back.
func (p *FaultPlan) Revive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = false
}

// Down reports whether the plan is currently killed.
func (p *FaultPlan) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// FaultInjector decorates a Transport with deterministic, scripted
// faults: fail the next N frames, disconnect permanently after N more
// frames, or die with a shared FaultPlan. Every fault surfaces as
// ErrConnDown before the frame reaches the inner transport, so a
// "dropped" write provably never executed — the invariant the
// write-retry layer depends on.
type FaultInjector struct {
	inner Transport
	plan  *FaultPlan

	mu       sync.Mutex
	failNext int
	// disconnectAfter counts down per delivered frame once set; at zero
	// the connection is dead for good. -1 means no script.
	disconnectAfter int
	dead            bool
	frames          int
}

// NewFaultInjector decorates inner. plan may be nil (no shared kill
// switch).
func NewFaultInjector(inner Transport, plan *FaultPlan) *FaultInjector {
	return &FaultInjector{inner: inner, plan: plan, disconnectAfter: -1}
}

// FailNext makes the next n round trips fail with ErrConnDown, then
// recover — a transient blip the retry layer should ride out.
func (f *FaultInjector) FailNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext = n
}

// DisconnectAfter lets n more round trips through, then kills the
// connection permanently (until Revive).
func (f *FaultInjector) DisconnectAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.disconnectAfter = n
}

// Kill makes the connection dead immediately.
func (f *FaultInjector) Kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead = true
}

// Revive clears a Kill or an expired DisconnectAfter script. A downed
// FaultPlan still keeps the connection failing.
func (f *FaultInjector) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead = false
	f.disconnectAfter = -1
}

// Frames returns the number of round trips delivered to the inner
// transport so far.
func (f *FaultInjector) Frames() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames
}

// RoundTrip implements Transport: applies the fault script, then
// forwards to the inner transport.
func (f *FaultInjector) RoundTrip(ctx context.Context, request []byte) ([]byte, error) {
	if f.plan != nil && f.plan.Down() {
		return nil, fmt.Errorf("%w (process killed)", ErrConnDown)
	}
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w (disconnected)", ErrConnDown)
	}
	if f.failNext > 0 {
		f.failNext--
		f.mu.Unlock()
		return nil, fmt.Errorf("%w (injected)", ErrConnDown)
	}
	if f.disconnectAfter == 0 {
		f.dead = true
		f.mu.Unlock()
		return nil, fmt.Errorf("%w (disconnected)", ErrConnDown)
	}
	if f.disconnectAfter > 0 {
		f.disconnectAfter--
	}
	f.frames++
	f.mu.Unlock()
	return f.inner.RoundTrip(ctx, request)
}
