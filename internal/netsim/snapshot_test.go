package netsim

import (
	"sync"
	"testing"
)

// TestSnapshotDeltaWindow charges a meter in known chunks and checks
// that Snapshot/Delta windows see exactly the traffic between them.
func TestSnapshotDeltaWindow(t *testing.T) {
	m := NewMeter(LAN())
	m.RoundTrip(100, 1000)
	m.RoundTrip(100, 1000)
	w0 := m.Snapshot()
	if w0.RoundTrips != 2 {
		t.Fatalf("first window: %d round trips, want 2", w0.RoundTrips)
	}

	m.RoundTrip(50, 500)
	m.CountCache(3, 1, 2)
	m.CountAction(false, true)
	m.CountAction(true, false)
	d := m.Snapshot().Delta(w0)
	if d.RoundTrips != 1 {
		t.Errorf("window delta: %d round trips, want 1", d.RoundTrips)
	}
	if d.CacheHits != 3 || d.CacheMisses != 1 || d.SavedRoundTrips != 2 {
		t.Errorf("window delta cache counters: %+v", d)
	}
	if d.ReadActions != 1 || d.WriteActions != 1 || d.RepeatActions != 1 {
		t.Errorf("window delta action counters: reads=%d writes=%d repeats=%d, want 1/1/1",
			d.ReadActions, d.WriteActions, d.RepeatActions)
	}
	if d.Actions() != 2 {
		t.Errorf("window delta Actions() = %d, want 2", d.Actions())
	}

	// A window over an idle meter is empty.
	if d := m.Snapshot().Delta(m.Snapshot()); d != (Metrics{}) {
		t.Errorf("idle window is not empty: %+v", d)
	}
}

// TestSnapshotConcurrent hammers one meter from many goroutines — the
// chargers and a windowing observer — and checks nothing is lost. Run
// under -race this is the satellite's "window observations without
// racing the live meter" guarantee.
func TestSnapshotConcurrent(t *testing.T) {
	const (
		chargers = 8
		perG     = 200
	)
	m := NewMeter(Intercontinental())

	var chargersWG, observerWG sync.WaitGroup
	stop := make(chan struct{})
	observerWG.Add(1)
	go func() { // the observer: windowed reads while charging is live
		defer observerWG.Done()
		prev := m.Snapshot()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := m.Snapshot()
			if d := cur.Delta(prev); d.RoundTrips < 0 {
				t.Error("window went backwards")
				return
			}
			prev = cur
		}
	}()
	for g := 0; g < chargers; g++ {
		chargersWG.Add(1)
		go func() {
			defer chargersWG.Done()
			for i := 0; i < perG; i++ {
				m.RoundTrip(64, 512)
				m.RoundTripValidate(16, 16)
				m.CountCache(1, 0, 0)
				m.CountCompression(1, 10)
				m.CountContention(5, 1, 0)
				m.CountAction(i%3 == 0, i%2 == 0)
			}
		}()
	}
	chargersWG.Wait()
	close(stop)
	observerWG.Wait()

	got := m.Snapshot()
	if want := int64(chargers * perG * 2); int64(got.RoundTrips) != want {
		t.Errorf("RoundTrips = %d, want %d", got.RoundTrips, want)
	}
	if want := chargers * perG; got.CacheHits != want {
		t.Errorf("CacheHits = %d, want %d", got.CacheHits, want)
	}
	if want := chargers * perG; got.CompressedFrames != want {
		t.Errorf("CompressedFrames = %d, want %d", got.CompressedFrames, want)
	}
	if want := int64(chargers * perG); got.SnapshotsStarted != want {
		t.Errorf("SnapshotsStarted = %d, want %d", got.SnapshotsStarted, want)
	}
	if got.Actions() != chargers*perG {
		t.Errorf("Actions() = %d, want %d", got.Actions(), chargers*perG)
	}
	if got.ReadActions+got.WriteActions != got.Actions() {
		t.Errorf("action split inconsistent: %d + %d != %d",
			got.ReadActions, got.WriteActions, got.Actions())
	}
}
