package netsim

import "sort"

// This file models server-side lock contention the same way the rest of
// netsim models the WAN: as a deterministic virtual-clock simulation.
// The real machine running the benchmark may have any number of cores
// (CI runners often have one), so the headline fine-vs-coarse locking
// comparison of pdmbench -users comes from this discrete-event model at
// a configurable core count, while the real concurrent run proves
// correctness (race-free execution, dump equality) rather than speed.
//
// The model captures the mechanism that makes a single database-wide
// reader/writer lock collapse under a mixed PDM workload: Go's RWMutex
// (like most writer-preference RW locks) blocks new readers as soon as
// a writer is waiting. With frequent small writes — flag updates,
// check-out/check-in — every write request erects a barrier that
// convoys the cheap snapshot reads behind it, so reads serialize even
// though they conflict with nothing. Under MVCC the readers never touch
// a lock and only writes to the *same table* serialize.

// ContendOp is one operation of one simulated session.
type ContendOp struct {
	// Read marks a snapshot read (never locks under MVCC; shared lock
	// under coarse locking).
	Read bool
	// Table is the write's target table (writes to different tables run
	// concurrently under MVCC; ignored for reads).
	Table int
	// ServiceNanos is the operation's CPU service time.
	ServiceNanos int64
}

// ContendConfig parameterizes one contention simulation.
type ContendConfig struct {
	// Cores is the number of CPU cores (1 if < 1).
	Cores int
	// Coarse selects the database-wide reader/writer lock; false models
	// the MVCC path (lock-free reads, per-table write latches).
	Coarse bool
	// ThinkNanos is the per-session pause between operations.
	ThinkNanos int64
	// Workloads holds one operation sequence per session.
	Workloads [][]ContendOp
}

// ContendResult reports one simulated run.
type ContendResult struct {
	// MakespanNanos is the virtual time at which the last op finished.
	MakespanNanos int64
	// LockWaitNanos is the total time ops spent blocked on locks
	// (beyond what core scarcity alone would cost).
	LockWaitNanos int64
	// Ops is the number of operations executed.
	Ops int
	// P50Nanos / P99Nanos are operation latency percentiles
	// (request-to-completion, including lock and core queueing).
	P50Nanos int64
	P99Nanos int64
	// ThroughputOpsPerSec is Ops divided by the makespan.
	ThroughputOpsPerSec float64
}

// SimulateContention runs the discrete-event model: sessions issue
// their operations in order, each op needs a core for its service time
// plus its lock. Operations are admitted in request-time order (FIFO,
// ties by session index), which is exactly the order a fair scheduler
// would see, and everything is integer virtual time — the result is
// bit-for-bit reproducible.
func SimulateContention(cfg ContendConfig) ContendResult {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	coreFree := make([]int64, cores)

	// Per-session cursor: next op index and its request time.
	n := len(cfg.Workloads)
	next := make([]int, n)
	ready := make([]int64, n)

	// Coarse RW-lock state: end of the last exclusive hold, and the
	// latest end among shared holds granted since then. Processing in
	// request order gives writer preference for free: a read processed
	// after a write request sees that write's end in writeEnd.
	var writeEnd, maxReadEnd int64
	// Fine-mode state: per-table end of the last write latch hold.
	tableEnd := map[int]int64{}

	var result ContendResult
	var latencies []int64

	for {
		// Pick the session with the earliest next request (FIFO admission).
		user := -1
		var t int64
		for i := 0; i < n; i++ {
			if next[i] >= len(cfg.Workloads[i]) {
				continue
			}
			if user < 0 || ready[i] < t {
				user = i
				t = ready[i]
			}
		}
		if user < 0 {
			break
		}
		op := cfg.Workloads[user][next[user]]
		next[user]++

		// The lock constraint. A blocked session parks (Go goroutines
		// release their thread), so the lock wait costs no core — the op
		// competes for a core only once the lock is grantable.
		var lockReady int64
		if cfg.Coarse {
			if op.Read {
				lockReady = writeEnd // any earlier-requested write barriers us
			} else {
				lockReady = maxInt64(writeEnd, maxReadEnd) // exclusive: drain everyone
			}
		} else {
			if !op.Read {
				lockReady = tableEnd[op.Table] // per-table serialization only
			}
		}

		// A core: take the earliest-free one.
		core := 0
		for c := 1; c < cores; c++ {
			if coreFree[c] < coreFree[core] {
				core = c
			}
		}
		startNoLock := maxInt64(t, coreFree[core])
		start := maxInt64(maxInt64(t, lockReady), coreFree[core])
		end := start + op.ServiceNanos
		coreFree[core] = end
		result.LockWaitNanos += start - startNoLock
		result.Ops++
		latencies = append(latencies, end-t)
		ready[user] = end + cfg.ThinkNanos
		if end > result.MakespanNanos {
			result.MakespanNanos = end
		}

		if cfg.Coarse {
			if op.Read {
				if end > maxReadEnd {
					maxReadEnd = end
				}
			} else {
				writeEnd = end
				maxReadEnd = 0
			}
		} else if !op.Read {
			tableEnd[op.Table] = end
		}
	}

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		result.P50Nanos = latencies[len(latencies)/2]
		result.P99Nanos = latencies[min(len(latencies)-1, len(latencies)*99/100)]
	}
	if result.MakespanNanos > 0 {
		result.ThroughputOpsPerSec = float64(result.Ops) / (float64(result.MakespanNanos) / 1e9)
	}
	return result
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
