package netsim

import (
	"context"
	"errors"
	"testing"
)

// echoTransport answers every round trip with the request body.
type echoTransport struct{ calls int }

func (e *echoTransport) RoundTrip(_ context.Context, req []byte) ([]byte, error) {
	e.calls++
	return req, nil
}

func TestFaultInjectorPassThrough(t *testing.T) {
	inner := &echoTransport{}
	fi := NewFaultInjector(inner, nil)
	resp, err := fi.RoundTrip(context.Background(), []byte("ping"))
	if err != nil || string(resp) != "ping" {
		t.Fatalf("RoundTrip = %q, %v", resp, err)
	}
	if inner.calls != 1 || fi.Frames() != 1 {
		t.Fatalf("calls = %d, frames = %d", inner.calls, fi.Frames())
	}
}

func TestFaultInjectorFailNext(t *testing.T) {
	inner := &echoTransport{}
	fi := NewFaultInjector(inner, nil)
	fi.FailNext(2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := fi.RoundTrip(ctx, []byte("x")); !errors.Is(err, ErrConnDown) {
			t.Fatalf("injected failure %d: err = %v, want ErrConnDown", i, err)
		}
	}
	if _, err := fi.RoundTrip(ctx, []byte("x")); err != nil {
		t.Fatalf("after injected failures: %v", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner saw %d calls, want 1 (failures must not reach it)", inner.calls)
	}
}

func TestFaultInjectorDisconnectAfter(t *testing.T) {
	inner := &echoTransport{}
	fi := NewFaultInjector(inner, nil)
	fi.DisconnectAfter(2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := fi.RoundTrip(ctx, []byte("x")); err != nil {
			t.Fatalf("frame %d before disconnect: %v", i, err)
		}
	}
	// The scripted disconnect is permanent until Revive.
	for i := 0; i < 3; i++ {
		if _, err := fi.RoundTrip(ctx, []byte("x")); !errors.Is(err, ErrConnDown) {
			t.Fatalf("after disconnect: err = %v, want ErrConnDown", err)
		}
	}
	fi.Revive()
	if _, err := fi.RoundTrip(ctx, []byte("x")); err != nil {
		t.Fatalf("after Revive: %v", err)
	}
}

func TestFaultPlanKillsEveryInjector(t *testing.T) {
	// One plan shared by two injectors models process death: every
	// connection into the dead server fails at once.
	plan := &FaultPlan{}
	a := NewFaultInjector(&echoTransport{}, plan)
	b := NewFaultInjector(&echoTransport{}, plan)
	ctx := context.Background()
	if _, err := a.RoundTrip(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	plan.Kill()
	for _, fi := range []*FaultInjector{a, b} {
		if _, err := fi.RoundTrip(ctx, []byte("x")); !errors.Is(err, ErrConnDown) {
			t.Fatalf("killed plan: err = %v, want ErrConnDown", err)
		}
	}
	plan.Revive()
	if _, err := b.RoundTrip(ctx, []byte("x")); err != nil {
		t.Fatalf("after plan revive: %v", err)
	}
}

func TestHealthProbeCounters(t *testing.T) {
	m := NewMeter(LAN())
	m.CountProbe(true)
	m.CountProbe(false)
	m.CountProbe(false)
	m.CountRetry(3)
	m.CountRetryGiveUp(1)
	got := m.Snapshot()
	if got.HealthProbes != 3 || got.ProbeFailures != 2 {
		t.Errorf("probes = %d/%d, want 3/2", got.HealthProbes, got.ProbeFailures)
	}
	if got.Retries != 3 || got.RetryGiveUps != 1 {
		t.Errorf("retries = %d/%d, want 3/1", got.Retries, got.RetryGiveUps)
	}
	// The new counters participate in the Sub/Add field arithmetic.
	prev := Metrics{HealthProbes: 1, Retries: 1}
	d := got.Sub(prev)
	if d.HealthProbes != 2 || d.Retries != 2 {
		t.Errorf("Sub: probes = %d, retries = %d, want 2, 2", d.HealthProbes, d.Retries)
	}
	if s := d.Add(prev); s.HealthProbes != 3 || s.Retries != 3 {
		t.Errorf("Add round trip: %+v", s)
	}
}
