package netsim

import "testing"

func TestRoundTripStatementsAccounting(t *testing.T) {
	m := NewMeter(Intercontinental())
	m.RoundTrip(100, 200)                 // 1 statement
	m.RoundTripStatements(1000, 4000, 25) // one batch of 25
	m.RoundTripStatements(100, 100, 1)    // plain again
	if m.Metrics.RoundTrips != 3 {
		t.Errorf("round trips = %d, want 3", m.Metrics.RoundTrips)
	}
	if m.Metrics.Statements != 27 {
		t.Errorf("statements = %d, want 27", m.Metrics.Statements)
	}
	if m.Metrics.Batches != 1 {
		t.Errorf("batches = %d, want 1", m.Metrics.Batches)
	}
	if m.Metrics.SavedRoundTrips != 24 {
		t.Errorf("saved = %d, want 24", m.Metrics.SavedRoundTrips)
	}
	// Latency depends only on round trips, not statements.
	wantLat := 3 * 2 * m.Link.LatencySec
	if m.Metrics.LatencySec != wantLat {
		t.Errorf("latency = %f, want %f", m.Metrics.LatencySec, wantLat)
	}

	// Sub carries the new fields.
	before := m.Metrics
	m.RoundTripStatements(10, 10, 5)
	d := m.Metrics.Sub(before)
	if d.RoundTrips != 1 || d.Statements != 5 || d.Batches != 1 {
		t.Errorf("delta = %+v, want 1 round trip / 5 statements / 1 batch", d)
	}
}

func TestRoundTripFramesPreparedAccounting(t *testing.T) {
	m := NewMeter(Link{LatencySec: 0.1, RateKbps: 256, PacketBytes: 4096})
	m.RoundTripFrames(1000, 2000, 5, 3, 450)
	m.RoundTripFrames(100, 100, 1, 1, 120)
	if m.Metrics.PreparedExecs != 4 {
		t.Errorf("PreparedExecs = %d, want 4", m.Metrics.PreparedExecs)
	}
	if m.Metrics.SavedRequestBytes != 570 {
		t.Errorf("SavedRequestBytes = %.0f, want 570", m.Metrics.SavedRequestBytes)
	}
	if m.Metrics.Statements != 6 || m.Metrics.RoundTrips != 2 || m.Metrics.Batches != 1 {
		t.Errorf("stmts/rt/batches = %d/%d/%d, want 6/2/1",
			m.Metrics.Statements, m.Metrics.RoundTrips, m.Metrics.Batches)
	}
	// Sub carries the new fields.
	d := m.Metrics.Sub(Metrics{PreparedExecs: 1, SavedRequestBytes: 70})
	if d.PreparedExecs != 3 || d.SavedRequestBytes != 500 {
		t.Errorf("Sub: execs=%d saved=%.0f, want 3/500", d.PreparedExecs, d.SavedRequestBytes)
	}
}

func TestCountCompressionAccounting(t *testing.T) {
	m := NewMeter(Intercontinental())
	m.RoundTrip(100, 400) // charged post-compression by the transport
	m.CountCompression(1, 3600)
	m.RoundTrip(100, 50) // below threshold: no compression
	if m.Metrics.CompressedFrames != 1 {
		t.Errorf("CompressedFrames = %d, want 1", m.Metrics.CompressedFrames)
	}
	if m.Metrics.ResponseBytesSaved != 3600 {
		t.Errorf("ResponseBytesSaved = %.0f, want 3600", m.Metrics.ResponseBytesSaved)
	}
	// Sub carries the new fields.
	d := m.Metrics.Sub(Metrics{CompressedFrames: 1, ResponseBytesSaved: 600})
	if d.CompressedFrames != 0 || d.ResponseBytesSaved != 3000 {
		t.Errorf("Sub: frames=%d saved=%.0f, want 0/3000", d.CompressedFrames, d.ResponseBytesSaved)
	}
}
