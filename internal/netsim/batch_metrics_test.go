package netsim

import "testing"

func TestRoundTripStatementsAccounting(t *testing.T) {
	m := NewMeter(Intercontinental())
	m.RoundTrip(100, 200)                 // 1 statement
	m.RoundTripStatements(1000, 4000, 25) // one batch of 25
	m.RoundTripStatements(100, 100, 1)    // plain again
	if m.Metrics.RoundTrips != 3 {
		t.Errorf("round trips = %d, want 3", m.Metrics.RoundTrips)
	}
	if m.Metrics.Statements != 27 {
		t.Errorf("statements = %d, want 27", m.Metrics.Statements)
	}
	if m.Metrics.Batches != 1 {
		t.Errorf("batches = %d, want 1", m.Metrics.Batches)
	}
	if m.Metrics.SavedRoundTrips() != 24 {
		t.Errorf("saved = %d, want 24", m.Metrics.SavedRoundTrips())
	}
	// Latency depends only on round trips, not statements.
	wantLat := 3 * 2 * m.Link.LatencySec
	if m.Metrics.LatencySec != wantLat {
		t.Errorf("latency = %f, want %f", m.Metrics.LatencySec, wantLat)
	}

	// Sub carries the new fields.
	before := m.Metrics
	m.RoundTripStatements(10, 10, 5)
	d := m.Metrics.Sub(before)
	if d.RoundTrips != 1 || d.Statements != 5 || d.Batches != 1 {
		t.Errorf("delta = %+v, want 1 round trip / 5 statements / 1 batch", d)
	}
}
