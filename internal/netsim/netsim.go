// Package netsim simulates the wide-area network between the PDM client
// and the database server: per-message latency, bandwidth-limited
// transfer and packetization. The paper's testbed was a real
// Germany↔Brazil WAN; this simulator substitutes a deterministic virtual
// clock that charges exactly the quantities the paper's Section 2 model
// reasons about, so simulated experiments are reproducible on a laptop.
//
// Two accounting modes are provided:
//
//   - Paper mode (default): requests are charged in full packets and each
//     response is charged its payload plus half a packet ("in the average
//     we expect the last package of each response to be filled only
//     half"), matching formulas (3) and (5).
//   - Exact mode: both directions are charged their exact byte payloads;
//     the difference quantifies the model's packetization error.
package netsim

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Link describes one WAN profile.
type Link struct {
	// Name labels the link in reports (e.g. "Germany-Brazil 256 kbit/s").
	Name string
	// LatencySec is the one-way latency T_Lat in seconds.
	LatencySec float64
	// RateKbps is the data transfer rate dtr in kbit/s (1 kbit = 1024
	// bits, the paper's convention).
	RateKbps float64
	// PacketBytes is the packet size size_p in bytes.
	PacketBytes int
	// ExactBytes switches from the paper's packet accounting to exact
	// payload accounting (ablation knob).
	ExactBytes bool
}

// LAN returns a local-area profile for comparison runs: 0.5 ms latency,
// 100 Mbit/s.
func LAN() Link {
	return Link{Name: "LAN 100 Mbit/s, 0.5 ms", LatencySec: 0.0005, RateKbps: 100 * 1024, PacketBytes: 4096}
}

// Intercontinental returns the paper's slowest profile: 150 ms latency,
// 256 kbit/s, 4 kB packets.
func Intercontinental() Link {
	return Link{Name: "WAN 256 kbit/s, 150 ms", LatencySec: 0.15, RateKbps: 256, PacketBytes: 4096}
}

func (l Link) String() string {
	return fmt.Sprintf("%s (T_Lat=%.0fms, dtr=%.0fkbit/s, packet=%dB)",
		l.Name, l.LatencySec*1000, l.RateKbps, l.PacketBytes)
}

// bitsPerSec returns the transfer rate in bits per second.
func (l Link) bitsPerSec() float64 { return l.RateKbps * 1024 }

// RequestVolume returns the bytes charged on the wire for a client→server
// message of the given payload size.
func (l Link) RequestVolume(payload int) float64 {
	if l.ExactBytes || l.PacketBytes <= 0 {
		return float64(payload)
	}
	packets := (payload + l.PacketBytes - 1) / l.PacketBytes
	if packets < 1 {
		packets = 1
	}
	return float64(packets * l.PacketBytes)
}

// ResponseVolume returns the bytes charged for a server→client message:
// payload plus the half-empty final packet of the paper's model.
func (l Link) ResponseVolume(payload int) float64 {
	if l.ExactBytes || l.PacketBytes <= 0 {
		return float64(payload)
	}
	return float64(payload) + float64(l.PacketBytes)/2
}

// TransferSec converts a wire volume to transfer seconds.
func (l Link) TransferSec(volumeBytes float64) float64 {
	if l.bitsPerSec() <= 0 {
		return 0
	}
	return volumeBytes * 8 / l.bitsPerSec()
}

// Metrics accumulates the traffic of a sequence of round trips under a
// virtual clock.
type Metrics struct {
	RoundTrips     int
	Communications int
	// Statements counts the SQL statements shipped; batch frames carry
	// several per round trip, so Statements - RoundTrips is the number
	// of WAN round trips that batching saved.
	Statements int
	// Batches counts round trips that carried a multi-statement batch.
	Batches int
	// PreparedExecs counts statements shipped as prepared executions
	// (handle + parameters) instead of SQL text.
	PreparedExecs int
	// SavedRoundTrips counts the WAN round trips the tuning levers
	// avoided: batching contributes statements-per-batch minus one for
	// every batch frame, the structure cache one per fetch round trip
	// it answered locally.
	SavedRoundTrips int
	// CacheHits / CacheMisses count structure-cache lookups during
	// read actions: hits were served from validated local entries
	// without touching the wire, misses went to the server.
	CacheHits   int
	CacheMisses int
	// ValidateRoundTrips counts the cache's revalidation exchanges —
	// the one small round trip a warm action pays instead of its
	// fetches.
	ValidateRoundTrips int
	// SyncRoundTrips counts replication pulls (TypeSync exchanges): a
	// replica site's delta downloads from the primary. Their volume is
	// charged to Request/ResponseBytes like any exchange; this counter
	// is what separates replication traffic from user actions in a
	// site's report.
	SyncRoundTrips int
	// SavedRequestBytes is the SQL text volume prepared executions
	// avoided re-shipping — the payload reduction before packetization,
	// reported by the transport alongside the charged request bytes.
	SavedRequestBytes float64
	// CompressedFrames counts response frames that arrived in the
	// negotiated deflate wrapper (bodies below the adaptive threshold
	// travel uncompressed and are not counted).
	CompressedFrames int
	// ResponseBytesSaved is the payload volume response compression
	// avoided shipping: the sum over compressed frames of original
	// body size minus compressed body size, before packetization. The
	// charged ResponseBytes are already post-compression.
	ResponseBytesSaved float64
	RequestBytes       float64 // charged volume client→server
	ResponseBytes      float64 // charged volume server→client
	LatencySec         float64
	TransferSec        float64
	// LockWaitNanos is server-side contention observed by this client's
	// statements: time its sessions spent blocked on write latches (or
	// the coarse database lock, or waiting for a pooled connection).
	// Reported by the wire server per round trip and drained into the
	// meter, so contention is attributable per session and per site.
	LockWaitNanos int64
	// SnapshotsStarted counts read statements that opened an MVCC
	// snapshot on behalf of this client.
	SnapshotsStarted int64
	// WriteConflicts counts first-wins write races this client lost
	// (e.g. a check-out that found rows already checked out).
	WriteConflicts int64
	// PlanHits / PlanMisses count server plan-cache outcomes for this
	// client's statements: hits executed a cached AST with zero parser
	// work, misses paid a full parse. Drained from the engine sessions
	// per round trip like the contention counters above.
	PlanHits   int64
	PlanMisses int64
	// ReadActions / WriteActions count completed user actions by kind:
	// Query/Expand/MLE are reads, check-out/check-in (client-driven or
	// via procedure) are writes. The advisor classifies workload shape
	// from these, so they are part of the metered window like any other
	// counter.
	ReadActions  int
	WriteActions int
	// RepeatActions counts actions whose (action, target) pair the
	// session had already executed — the signal that separates a
	// repeat-heavy workload (a structure cache would pay off) from a
	// cold scan, visible even on sessions without a cache.
	RepeatActions int
	// FallThroughRoundTrips counts reads a partial replica could not
	// answer from its subscription and transparently re-issued against
	// the primary at WAN cost.
	FallThroughRoundTrips int
	// SubscribedRows / SkippedRows split each replication pull's row
	// universe at the subscription filter: rows shipped because the
	// site's subscription covers them vs. rows the primary skipped. A
	// full replica reports zero for both.
	SubscribedRows int
	SkippedRows    int
	// Retries counts idempotent exchanges re-sent after connection
	// loss; RetryGiveUps counts exchanges abandoned after the retry
	// budget was exhausted.
	Retries      int
	RetryGiveUps int
	// HealthProbes counts primary health checks issued by the failover
	// monitor; ProbeFailures is the subset that timed out or errored.
	HealthProbes  int
	ProbeFailures int
}

// Actions is the total number of user actions in the window.
func (m Metrics) Actions() int { return m.ReadActions + m.WriteActions }

// TotalSec is the simulated response time accumulated so far.
func (m Metrics) TotalSec() float64 { return m.LatencySec + m.TransferSec }

// VolumeBytes is the total charged wire volume.
func (m Metrics) VolumeBytes() float64 { return m.RequestBytes + m.ResponseBytes }

// Sub returns the field-wise difference m - b, for per-action deltas of
// a shared meter.
func (m Metrics) Sub(b Metrics) Metrics {
	return Metrics{
		RoundTrips:            m.RoundTrips - b.RoundTrips,
		Communications:        m.Communications - b.Communications,
		Statements:            m.Statements - b.Statements,
		Batches:               m.Batches - b.Batches,
		PreparedExecs:         m.PreparedExecs - b.PreparedExecs,
		SavedRoundTrips:       m.SavedRoundTrips - b.SavedRoundTrips,
		CompressedFrames:      m.CompressedFrames - b.CompressedFrames,
		ResponseBytesSaved:    m.ResponseBytesSaved - b.ResponseBytesSaved,
		CacheHits:             m.CacheHits - b.CacheHits,
		CacheMisses:           m.CacheMisses - b.CacheMisses,
		ValidateRoundTrips:    m.ValidateRoundTrips - b.ValidateRoundTrips,
		SyncRoundTrips:        m.SyncRoundTrips - b.SyncRoundTrips,
		SavedRequestBytes:     m.SavedRequestBytes - b.SavedRequestBytes,
		RequestBytes:          m.RequestBytes - b.RequestBytes,
		ResponseBytes:         m.ResponseBytes - b.ResponseBytes,
		LatencySec:            m.LatencySec - b.LatencySec,
		TransferSec:           m.TransferSec - b.TransferSec,
		LockWaitNanos:         m.LockWaitNanos - b.LockWaitNanos,
		SnapshotsStarted:      m.SnapshotsStarted - b.SnapshotsStarted,
		WriteConflicts:        m.WriteConflicts - b.WriteConflicts,
		PlanHits:              m.PlanHits - b.PlanHits,
		PlanMisses:            m.PlanMisses - b.PlanMisses,
		ReadActions:           m.ReadActions - b.ReadActions,
		WriteActions:          m.WriteActions - b.WriteActions,
		RepeatActions:         m.RepeatActions - b.RepeatActions,
		FallThroughRoundTrips: m.FallThroughRoundTrips - b.FallThroughRoundTrips,
		SubscribedRows:        m.SubscribedRows - b.SubscribedRows,
		SkippedRows:           m.SkippedRows - b.SkippedRows,
		Retries:               m.Retries - b.Retries,
		RetryGiveUps:          m.RetryGiveUps - b.RetryGiveUps,
		HealthProbes:          m.HealthProbes - b.HealthProbes,
		ProbeFailures:         m.ProbeFailures - b.ProbeFailures,
	}
}

// Delta returns the traffic of the observation window that starts at a
// previous snapshot and ends at m: the field-wise difference m - prev.
// Pair it with Meter.Snapshot to watch a live meter in windows:
//
//	prev := meter.Snapshot()
//	...                       // the session keeps working
//	window := meter.Snapshot().Delta(prev)
func (m Metrics) Delta(prev Metrics) Metrics { return m.Sub(prev) }

// Add returns the field-wise sum m + b — the aggregation of traffic
// charged to different links (e.g. a session's site-local reads plus
// its WAN writes, or all sites of a cluster).
func (m Metrics) Add(b Metrics) Metrics {
	return Metrics{
		RoundTrips:            m.RoundTrips + b.RoundTrips,
		Communications:        m.Communications + b.Communications,
		Statements:            m.Statements + b.Statements,
		Batches:               m.Batches + b.Batches,
		PreparedExecs:         m.PreparedExecs + b.PreparedExecs,
		SavedRoundTrips:       m.SavedRoundTrips + b.SavedRoundTrips,
		CompressedFrames:      m.CompressedFrames + b.CompressedFrames,
		ResponseBytesSaved:    m.ResponseBytesSaved + b.ResponseBytesSaved,
		CacheHits:             m.CacheHits + b.CacheHits,
		CacheMisses:           m.CacheMisses + b.CacheMisses,
		ValidateRoundTrips:    m.ValidateRoundTrips + b.ValidateRoundTrips,
		SyncRoundTrips:        m.SyncRoundTrips + b.SyncRoundTrips,
		SavedRequestBytes:     m.SavedRequestBytes + b.SavedRequestBytes,
		RequestBytes:          m.RequestBytes + b.RequestBytes,
		ResponseBytes:         m.ResponseBytes + b.ResponseBytes,
		LatencySec:            m.LatencySec + b.LatencySec,
		TransferSec:           m.TransferSec + b.TransferSec,
		LockWaitNanos:         m.LockWaitNanos + b.LockWaitNanos,
		SnapshotsStarted:      m.SnapshotsStarted + b.SnapshotsStarted,
		WriteConflicts:        m.WriteConflicts + b.WriteConflicts,
		PlanHits:              m.PlanHits + b.PlanHits,
		PlanMisses:            m.PlanMisses + b.PlanMisses,
		ReadActions:           m.ReadActions + b.ReadActions,
		WriteActions:          m.WriteActions + b.WriteActions,
		RepeatActions:         m.RepeatActions + b.RepeatActions,
		FallThroughRoundTrips: m.FallThroughRoundTrips + b.FallThroughRoundTrips,
		SubscribedRows:        m.SubscribedRows + b.SubscribedRows,
		SkippedRows:           m.SkippedRows + b.SkippedRows,
		Retries:               m.Retries + b.Retries,
		RetryGiveUps:          m.RetryGiveUps + b.RetryGiveUps,
		HealthProbes:          m.HealthProbes + b.HealthProbes,
		ProbeFailures:         m.ProbeFailures + b.ProbeFailures,
	}
}

// SiteMetrics labels one site's accumulated traffic in a cluster-wide
// report.
type SiteMetrics struct {
	// Site is the site name ("primary" for the primary itself).
	Site string
	// Link is the WAN profile the traffic was charged against.
	Link Link
	// Metrics is the site's accumulated traffic.
	Metrics Metrics
}

// AggregateSites sums the per-site metrics of a cluster into one
// cluster-wide total.
func AggregateSites(sites []SiteMetrics) Metrics {
	var total Metrics
	for _, s := range sites {
		total = total.Add(s.Metrics)
	}
	return total
}

func (m Metrics) String() string {
	return fmt.Sprintf("%d round trips, %.0f B up, %.0f B down, %.2fs latency + %.2fs transfer = %.2fs",
		m.RoundTrips, m.RequestBytes, m.ResponseBytes, m.LatencySec, m.TransferSec, m.TotalSec())
}

// Meter charges request/response pairs against a link and accumulates
// Metrics. It is the virtual-clock counterpart of a real connection.
// All charging methods and Snapshot are safe for concurrent use; the
// exported Metrics field is the single-goroutine view — an observer
// watching a meter another goroutine is still charging must read it
// through Snapshot.
type Meter struct {
	Link Link

	mu      sync.Mutex
	Metrics Metrics
}

// NewMeter returns a meter over the link.
func NewMeter(link Link) *Meter { return &Meter{Link: link} }

// Snapshot returns a consistent copy of the accumulated metrics, taken
// under the meter's lock — the way to window a live meter from another
// goroutine (see Metrics.Delta) without racing its round trips.
func (m *Meter) Snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Metrics
}

// RoundTrip charges one request/response exchange: two latencies (paper
// formula (2): "every query causes an answer") plus the transfer times
// of both messages.
func (m *Meter) RoundTrip(requestPayload, responsePayload int) {
	m.RoundTripStatements(requestPayload, responsePayload, 1)
}

// RoundTripStatements charges one exchange that carries the given number
// of SQL statements — 1 for a plain request, N for a batch frame. The
// latency cost is identical either way; that is the whole point of
// batching.
func (m *Meter) RoundTripStatements(requestPayload, responsePayload, statements int) {
	m.RoundTripFrames(requestPayload, responsePayload, statements, 0, 0)
}

// RoundTripFrames charges one exchange with full frame accounting:
// statements carried, how many of them were prepared executions, and
// the SQL text bytes those executions avoided re-shipping (the
// request-volume lever of prepared statements, before packetization).
func (m *Meter) RoundTripFrames(requestPayload, responsePayload, statements, preparedExecs int, savedRequestBytes float64) {
	up := m.Link.RequestVolume(requestPayload)
	down := m.Link.ResponseVolume(responsePayload)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.RoundTrips++
	m.Metrics.Communications += 2
	m.Metrics.Statements += statements
	if statements > 1 {
		m.Metrics.Batches++
		m.Metrics.SavedRoundTrips += statements - 1
	}
	m.Metrics.PreparedExecs += preparedExecs
	m.Metrics.SavedRequestBytes += savedRequestBytes
	m.Metrics.RequestBytes += up
	m.Metrics.ResponseBytes += down
	m.Metrics.LatencySec += 2 * m.Link.LatencySec
	m.Metrics.TransferSec += m.Link.TransferSec(up) + m.Link.TransferSec(down)
}

// RoundTripValidate charges one cache-revalidation exchange: a round
// trip that carries version checks instead of SQL statements.
func (m *Meter) RoundTripValidate(requestPayload, responsePayload int) {
	up := m.Link.RequestVolume(requestPayload)
	down := m.Link.ResponseVolume(responsePayload)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.RoundTrips++
	m.Metrics.Communications += 2
	m.Metrics.ValidateRoundTrips++
	m.Metrics.RequestBytes += up
	m.Metrics.ResponseBytes += down
	m.Metrics.LatencySec += 2 * m.Link.LatencySec
	m.Metrics.TransferSec += m.Link.TransferSec(up) + m.Link.TransferSec(down)
}

// RoundTripSync charges one replication pull: a round trip that
// carries a delta instead of SQL statements.
func (m *Meter) RoundTripSync(requestPayload, responsePayload int) {
	up := m.Link.RequestVolume(requestPayload)
	down := m.Link.ResponseVolume(responsePayload)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.RoundTrips++
	m.Metrics.Communications += 2
	m.Metrics.SyncRoundTrips++
	m.Metrics.RequestBytes += up
	m.Metrics.ResponseBytes += down
	m.Metrics.LatencySec += 2 * m.Link.LatencySec
	m.Metrics.TransferSec += m.Link.TransferSec(up) + m.Link.TransferSec(down)
}

// CountCompression records response frames that arrived deflated and
// the payload bytes the compression saved. The round trip itself is
// charged separately (with its post-compression sizes); this only
// tracks the saving for reporting.
func (m *Meter) CountCompression(frames int, savedBytes float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.CompressedFrames += frames
	m.Metrics.ResponseBytesSaved += savedBytes
}

// CountCache records structure-cache outcomes: hits served locally,
// misses that went to the wire, and the fetch round trips the hits
// avoided.
func (m *Meter) CountCache(hits, misses, savedRoundTrips int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.CacheHits += hits
	m.Metrics.CacheMisses += misses
	m.Metrics.SavedRoundTrips += savedRoundTrips
}

// CountContention folds server-reported contention counters into the
// meter: lock-wait time, snapshots opened, and write conflicts lost by
// the sessions this meter's client drove.
func (m *Meter) CountContention(lockWaitNanos, snapshotsStarted, writeConflicts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.LockWaitNanos += lockWaitNanos
	m.Metrics.SnapshotsStarted += snapshotsStarted
	m.Metrics.WriteConflicts += writeConflicts
}

// CountPlans folds server-reported plan-cache outcomes into the meter:
// statements that executed a cached AST (zero parser work) vs. ones
// that paid a full parse.
func (m *Meter) CountPlans(hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.PlanHits += hits
	m.Metrics.PlanMisses += misses
}

// CountAction records one completed user action: a read (Query, Expand,
// MLE) or a write (check-out/check-in), and whether the session had run
// the same action on the same target before (a repeat).
func (m *Meter) CountAction(write, repeat bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if write {
		m.Metrics.WriteActions++
	} else {
		m.Metrics.ReadActions++
	}
	if repeat {
		m.Metrics.RepeatActions++
	}
}

// CountFallThrough records reads that fell through a partial replica
// to the primary (the round trips themselves are charged to the WAN
// meter by the transport; this counter is what attributes them to the
// subscription miss).
func (m *Meter) CountFallThrough(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.FallThroughRoundTrips += n
}

// CountSubscription records one replication pull's subscription split:
// rows shipped under the site's subscription vs. rows the primary's
// filter skipped.
func (m *Meter) CountSubscription(subscribed, skipped int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.SubscribedRows += subscribed
	m.Metrics.SkippedRows += skipped
}

// CountRetry records idempotent exchanges re-sent after connection
// loss.
func (m *Meter) CountRetry(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.Retries += n
}

// CountRetryGiveUp records exchanges abandoned with their retry budget
// exhausted.
func (m *Meter) CountRetryGiveUp(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.RetryGiveUps += n
}

// CountProbe records one primary health probe and whether it failed.
func (m *Meter) CountProbe(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics.HealthProbes++
	if !ok {
		m.Metrics.ProbeFailures++
	}
}

// Reset clears the accumulated metrics (e.g. between user actions).
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Metrics = Metrics{}
}

// ---------------------------------------------------------------------------
// Real-delay transport (for the interactive client/server demo)

// DelayedConn wraps a bidirectional stream and sleeps on every Write to
// approximate the link's latency and bandwidth in real time, optionally
// scaled down (Scale 0.01 makes a 30-minute expand take 18 s). It lets
// cmd/pdmserver and cmd/pdmclient demonstrate the phenomenon live over
// TCP without waiting half an hour.
type DelayedConn struct {
	Stream io.ReadWriteCloser
	Link   Link
	// Scale multiplies all delays; 0 means 1.0 (real time).
	Scale float64

	mu sync.Mutex
}

func (c *DelayedConn) scale() float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	return 1
}

// Read passes through to the underlying stream (delays are charged on
// the writer's side).
func (c *DelayedConn) Read(p []byte) (int, error) { return c.Stream.Read(p) }

// Write sleeps for the link latency plus the transfer time of len(p)
// bytes, then forwards the write.
func (c *DelayedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delay := c.Link.LatencySec + c.Link.TransferSec(c.Link.RequestVolume(len(p)))
	time.Sleep(time.Duration(delay * c.scale() * float64(time.Second)))
	return c.Stream.Write(p)
}

// Close closes the underlying stream.
func (c *DelayedConn) Close() error { return c.Stream.Close() }
