package netsim

import "testing"

func contendWorkloads(users, per int) [][]ContendOp {
	w := make([][]ContendOp, users)
	for u := range w {
		ops := make([]ContendOp, per)
		for i := range ops {
			// 1 write in 5, spread over 4 tables; the rest snapshot reads.
			if i%5 == 0 {
				ops[i] = ContendOp{Table: u % 4, ServiceNanos: 40_000}
			} else {
				ops[i] = ContendOp{Read: true, ServiceNanos: 25_000}
			}
		}
		w[u] = ops
	}
	return w
}

// The model is pure virtual time: identical inputs give bit-identical
// results, run after run.
func TestSimulateContentionDeterministic(t *testing.T) {
	cfg := ContendConfig{Cores: 8, ThinkNanos: 10_000, Workloads: contendWorkloads(50, 40)}
	a := SimulateContention(cfg)
	b := SimulateContention(cfg)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	if a.Ops != 50*40 {
		t.Errorf("Ops = %d, want %d", a.Ops, 50*40)
	}
	if a.P99Nanos < a.P50Nanos {
		t.Errorf("p99 %d < p50 %d", a.P99Nanos, a.P50Nanos)
	}
}

// The database-wide RW lock can only hurt: for any mixed workload its
// makespan and lock wait dominate the MVCC model's, and with enough
// cores the gap is the convoy the paper's tuning fights.
func TestCoarseNeverBeatsFine(t *testing.T) {
	for _, cores := range []int{1, 4, 16} {
		w := contendWorkloads(64, 30)
		fine := SimulateContention(ContendConfig{Cores: cores, Workloads: w})
		coarse := SimulateContention(ContendConfig{Cores: cores, Coarse: true, Workloads: w})
		if coarse.MakespanNanos < fine.MakespanNanos {
			t.Errorf("cores=%d: coarse makespan %d beat fine %d", cores, coarse.MakespanNanos, fine.MakespanNanos)
		}
		if coarse.LockWaitNanos < fine.LockWaitNanos {
			t.Errorf("cores=%d: coarse lock wait %d below fine %d", cores, coarse.LockWaitNanos, fine.LockWaitNanos)
		}
		if cores >= 16 && coarse.MakespanNanos < 2*fine.MakespanNanos {
			t.Errorf("cores=%d: convoy too mild: coarse %d vs fine %d", cores, coarse.MakespanNanos, fine.MakespanNanos)
		}
	}
}

// Reads never wait under MVCC.
func TestFineReadsNeverWait(t *testing.T) {
	w := make([][]ContendOp, 16)
	for u := range w {
		for i := 0; i < 20; i++ {
			w[u] = append(w[u], ContendOp{Read: true, ServiceNanos: 30_000})
		}
	}
	res := SimulateContention(ContendConfig{Cores: 32, Workloads: w})
	if res.LockWaitNanos != 0 {
		t.Errorf("read-only MVCC workload waited %dns on locks", res.LockWaitNanos)
	}
}
