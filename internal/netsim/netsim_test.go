package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func paperLink() Link {
	return Link{Name: "test", LatencySec: 0.15, RateKbps: 256, PacketBytes: 4096}
}

func TestRequestVolumePacketization(t *testing.T) {
	l := paperLink()
	cases := []struct {
		payload int
		want    float64
	}{
		{0, 4096}, {1, 4096}, {4096, 4096}, {4097, 8192}, {10000, 12288},
	}
	for _, c := range cases {
		if got := l.RequestVolume(c.payload); got != c.want {
			t.Errorf("RequestVolume(%d) = %v, want %v", c.payload, got, c.want)
		}
	}
}

func TestResponseVolumeHalfPacketCorrection(t *testing.T) {
	l := paperLink()
	// payload + size_p/2, matching formula (3)'s correcting term.
	if got := l.ResponseVolume(1000); got != 1000+2048 {
		t.Errorf("ResponseVolume(1000) = %v", got)
	}
}

func TestExactBytesMode(t *testing.T) {
	l := paperLink()
	l.ExactBytes = true
	if l.RequestVolume(123) != 123 || l.ResponseVolume(123) != 123 {
		t.Error("exact mode must charge exact payloads")
	}
}

func TestTransferSecUsesKibibits(t *testing.T) {
	l := paperLink()
	// 262144 bits = 32768 bytes at 256 kbit/s (1 kbit = 1024 bits) = 1 s.
	if got := l.TransferSec(32768); math.Abs(got-1) > 1e-9 {
		t.Errorf("TransferSec(32768) = %v, want 1", got)
	}
}

// TestMeterMatchesPaperFormula reproduces one Table 2 cell with the
// meter: the single-level expand at 256 kbit/s (0.63 s total).
func TestMeterMatchesPaperFormula(t *testing.T) {
	m := NewMeter(paperLink())
	// One query (one full packet up), β = 9 nodes of 512 B down.
	m.RoundTrip(1, 9*512)
	got := m.Metrics.TotalSec()
	want := 2*0.15 + (4096+9*512+2048)*8/(256*1024.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("meter total = %v, want %v", got, want)
	}
	if math.Abs(got-0.628125) > 1e-6 {
		t.Errorf("Table 2 expand cell = %v, paper computes 0.63", got)
	}
	if m.Metrics.Communications != 2 || m.Metrics.RoundTrips != 1 {
		t.Errorf("counters: %+v", m.Metrics)
	}
}

func TestMeterAccumulatesAndResets(t *testing.T) {
	m := NewMeter(paperLink())
	m.RoundTrip(100, 100)
	m.RoundTrip(100, 100)
	if m.Metrics.RoundTrips != 2 {
		t.Errorf("RoundTrips = %d", m.Metrics.RoundTrips)
	}
	m.Reset()
	if m.Metrics.RoundTrips != 0 || m.Metrics.TotalSec() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMetricsSub(t *testing.T) {
	m := NewMeter(paperLink())
	m.RoundTrip(10, 10)
	before := m.Metrics
	m.RoundTrip(10, 10)
	d := m.Metrics.Sub(before)
	if d.RoundTrips != 1 || d.Communications != 2 {
		t.Errorf("delta = %+v", d)
	}
}

// Property: simulated time is monotonic in payload size and additive
// over round trips.
func TestMeterMonotonicityProperty(t *testing.T) {
	l := paperLink()
	f := func(a, b uint16) bool {
		small, large := int(a), int(a)+int(b)
		m1 := NewMeter(l)
		m1.RoundTrip(64, small)
		m2 := NewMeter(l)
		m2.RoundTrip(64, large)
		if m2.Metrics.TotalSec() < m1.Metrics.TotalSec() {
			return false
		}
		// Additivity.
		m3 := NewMeter(l)
		m3.RoundTrip(64, small)
		m3.RoundTrip(64, large)
		sum := m1.Metrics.TotalSec() + m2.Metrics.TotalSec()
		return math.Abs(m3.Metrics.TotalSec()-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileConstructors(t *testing.T) {
	lan := LAN()
	wan := Intercontinental()
	if lan.LatencySec >= wan.LatencySec {
		t.Error("LAN latency must be below WAN latency")
	}
	if lan.RateKbps <= wan.RateKbps {
		t.Error("LAN bandwidth must exceed WAN bandwidth")
	}
	if wan.String() == "" || lan.String() == "" {
		t.Error("profiles must describe themselves")
	}
}
