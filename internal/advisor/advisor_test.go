package advisor

import (
	"context"
	"strings"
	"testing"

	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
)

func paperTree() costmodel.Tree { return costmodel.Tree{Depth: 7, Branch: 5, Sigma: 0.6} }

// window builds an observation window with the given action mix.
func window(reads, repeats, writes int, lockWaitNanos int64) netsim.Metrics {
	return netsim.Metrics{
		ReadActions:   reads,
		RepeatActions: repeats,
		WriteActions:  writes,
		LockWaitNanos: lockWaitNanos,
		RoundTrips:    reads + writes,
		LatencySec:    float64(reads+writes) * 0.3,
	}
}

func TestClassifyShapes(t *testing.T) {
	tests := []struct {
		name string
		obs  Observation
		want Shape
	}{
		{
			name: "cold deep scan",
			obs:  Observation{Window: window(20, 0, 0, 0), Tree: paperTree()},
			want: ColdRead,
		},
		{
			name: "warm repeat-heavy",
			obs:  Observation{Window: window(20, 15, 1, 0), Tree: paperTree()},
			want: RepeatRead,
		},
		{
			name: "check-in storm",
			obs:  Observation{Window: window(10, 2, 12, 5e8), Tree: paperTree()},
			want: WriteHeavy,
		},
		{
			name: "replica readers",
			obs:  Observation{Window: window(20, 4, 1, 0), Site: "hamburg", Tree: paperTree()},
			want: ReplicaRead,
		},
		{
			name: "empty window defaults cold",
			obs:  Observation{Tree: paperTree()},
			want: ColdRead,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := Classify(tc.obs)
			if p.Shape != tc.want {
				t.Errorf("shape = %v, want %v (write_frac=%.2f repeat_frac=%.2f)",
					p.Shape, tc.want, p.WriteFrac, p.RepeatFrac)
			}
		})
	}
}

func TestClassifyDistillsWorkload(t *testing.T) {
	obs := Observation{
		Window: window(10, 5, 10, 2e9), // 0.2s lock wait per write
		Link:   netsim.Intercontinental(),
		Tree:   paperTree(),
		Users:  8,
	}
	p := Classify(obs)
	if p.Workload.WriteFrac != 0.5 {
		t.Errorf("write frac = %v, want 0.5", p.Workload.WriteFrac)
	}
	if p.Workload.RepeatFrac != 0.5 {
		t.Errorf("repeat frac = %v, want 0.5", p.Workload.RepeatFrac)
	}
	if p.Workload.LockWaitSec != 0.2 {
		t.Errorf("lock wait = %v sec/write, want 0.2", p.Workload.LockWaitSec)
	}
	if p.Workload.Users != 8 || p.Workload.Net.LatencySec != 0.15 {
		t.Errorf("environment not carried over: %+v", p.Workload)
	}
	if p.Workload.ActionsPerSec <= 0 {
		t.Errorf("action rate not derived from the window: %+v", p.Workload)
	}
}

func TestRecommendPrefersShapeKnobs(t *testing.T) {
	base := Observation{Link: netsim.Intercontinental(), Tree: paperTree()}

	// Cold deep scan: the winner must avoid per-node round trips
	// (recursion, or batching) — never plain late evaluation.
	cold := base
	cold.Window = window(20, 0, 0, 0)
	best := Advisor{}.Recommend(cold, Config{})[0].Config
	if !best.Batching && best.Strategy != costmodel.Recursive {
		t.Errorf("cold scan winner neither batches nor recurses: %s", best)
	}

	// Repeat-heavy: the winner must run a cache.
	warm := base
	warm.Window = window(20, 18, 0, 0)
	best = Advisor{}.Recommend(warm, Config{})[0].Config
	if best.CacheEntries == 0 {
		t.Errorf("repeat-heavy winner has no cache: %s", best)
	}

	// Write-heavy: the winner must batch its modifies.
	storm := base
	storm.Window = window(5, 0, 20, 1e9)
	best = Advisor{}.Recommend(storm, Config{})[0].Config
	if !best.Batching {
		t.Errorf("write-heavy winner does not batch: %s", best)
	}

	// Replica reads: the winner must not sync before every action.
	replica := base
	replica.Site = "tokyo"
	replica.Window = window(30, 10, 1, 0)
	replica.SyncBytes = 64 * 1024
	best = Advisor{}.Recommend(replica, Config{})[0].Config
	if best.StalenessSec <= 0 {
		t.Errorf("replica winner syncs before every action: %s", best)
	}
}

func TestRecommendRanksAndReportsDelta(t *testing.T) {
	obs := Observation{Window: window(20, 0, 0, 0), Link: netsim.Intercontinental(), Tree: paperTree()}
	recs := Advisor{TopK: 5}.Recommend(obs, Config{})
	if len(recs) != 5 {
		t.Fatalf("got %d recommendations, want 5", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].PredictedSec < recs[i-1].PredictedSec {
			t.Errorf("ranking out of order at %d: %.3f < %.3f", i, recs[i].PredictedSec, recs[i-1].PredictedSec)
		}
	}
	// The unoptimized baseline is the current config, so the winner
	// must predict a saving.
	if recs[0].DeltaPct <= 0 {
		t.Errorf("winner predicts no saving over the late-eval baseline: %+v", recs[0])
	}
}

func TestConfigFingerprint(t *testing.T) {
	a := Config{Strategy: costmodel.Recursive, Batching: true, CacheEntries: 256}
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical configs fingerprint differently")
	}
	b.CacheEntries = 128
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different configs share a fingerprint")
	}
}

func TestDiff(t *testing.T) {
	from := Config{}
	to := Config{Strategy: costmodel.Recursive, Batching: true}
	d := Diff(from, to)
	if len(d) != 2 {
		t.Fatalf("diff = %v, want 2 changes", d)
	}
	if len(Diff(to, to)) != 0 {
		t.Error("self-diff is not empty")
	}
}

// fakeTunable is an in-memory Tunable for change-set tests.
type fakeTunable struct {
	cfg     Config
	applies int
	fail    bool
}

func (f *fakeTunable) TuneConfig() Config { return f.cfg }
func (f *fakeTunable) ApplyConfig(_ context.Context, c Config) error {
	if f.fail {
		return context.DeadlineExceeded
	}
	f.cfg = c
	f.applies++
	return nil
}

func TestChangeSetApplyRollback(t *testing.T) {
	ctx := context.Background()
	start := Config{Strategy: costmodel.EarlyEval}
	target := Config{Strategy: costmodel.Recursive, Batching: true, CacheEntries: 64}
	sess := &fakeTunable{cfg: start}

	cs := NewChangeSet(start, target, 1, 2)
	if len(cs.Changes) == 0 || cs.ID == "" {
		t.Fatalf("change set incomplete: %+v", cs)
	}
	if err := cs.Apply(ctx, sess); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if sess.cfg.Fingerprint() != target.Fingerprint() {
		t.Fatalf("session runs %s after apply, want %s", sess.cfg, target)
	}
	if err := cs.Apply(ctx, sess); err == nil {
		t.Error("double apply did not fail")
	}
	if err := cs.Rollback(ctx, sess); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if sess.cfg.Fingerprint() != start.Fingerprint() {
		t.Fatalf("session runs %s after rollback, want %s — fingerprint mismatch", sess.cfg, start)
	}
	if err := cs.Rollback(ctx, sess); err == nil {
		t.Error("rollback of an unapplied set did not fail")
	}
	// A rolled-back set is re-armed.
	if err := cs.Apply(ctx, sess); err != nil {
		t.Errorf("re-apply after rollback: %v", err)
	}
}

func TestChangeSetRefusesDriftedSession(t *testing.T) {
	ctx := context.Background()
	start := Config{}
	cs := NewChangeSet(start, Config{Batching: true}, 1, 2)

	drifted := &fakeTunable{cfg: Config{Strategy: costmodel.Recursive}}
	if err := cs.Apply(ctx, drifted); err == nil {
		t.Fatal("apply against a drifted session did not fail")
	}
	if drifted.applies != 0 {
		t.Error("drifted session was reconfigured anyway")
	}

	// Drift after apply blocks rollback too.
	sess := &fakeTunable{cfg: start}
	if err := cs.Apply(ctx, sess); err != nil {
		t.Fatalf("apply: %v", err)
	}
	sess.cfg = Config{Strategy: costmodel.EarlyEval} // a second tuner interfered
	if err := cs.Rollback(ctx, sess); err == nil {
		t.Error("rollback against a drifted session did not fail")
	}
}

func TestPlanReturnsNilWhenAlreadyOptimal(t *testing.T) {
	obs := Observation{Window: window(20, 0, 0, 0), Link: netsim.Intercontinental(), Tree: paperTree()}
	best := Advisor{}.Recommend(obs, Config{})[0].Config
	if cs := (Advisor{}).Plan(obs, best); cs != nil {
		t.Errorf("planning from the optimum produced a change set: %+v", cs.Changes)
	}
	if cs := (Advisor{}).Plan(obs, Config{}); cs == nil {
		t.Error("planning from the baseline produced nothing")
	}
}

func TestDiagnoseDegrades(t *testing.T) {
	a := Advisor{}
	// Full observation: every section available.
	obs := Observation{Window: window(20, 10, 2, 1e8), Link: netsim.Intercontinental(), Tree: paperTree()}
	d := a.Diagnose(obs, Config{})
	for _, name := range []string{"config", "window", "profile", "recommendations"} {
		if s, ok := d.Sections[name]; !ok || !s.Available {
			t.Errorf("section %q unavailable in a full diagnosis: %+v", name, s)
		}
	}
	if !strings.Contains(d.String(), "rank1") {
		t.Errorf("rendered diagnosis lacks recommendations:\n%s", d)
	}

	// Empty window: degraded but not gone.
	d = a.Diagnose(Observation{Tree: paperTree()}, Config{})
	if s := d.Sections["config"]; !s.Available {
		t.Error("config section must survive an empty window")
	}
	for _, name := range []string{"window", "profile", "recommendations"} {
		s := d.Sections[name]
		if s.Available || s.Error == "" {
			t.Errorf("section %q should be degraded with a reason, got %+v", name, s)
		}
	}
}
