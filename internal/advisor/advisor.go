// Package advisor closes the tuning loop the paper leaves to the DBA:
// it observes the windowed WAN metrics of a live session or fleet,
// classifies the workload shape, ranks candidate configurations over
// the client's tuning knobs with the analytic cost model, and emits
// either a read-only diagnosis (DiagSnapshot) or a fingerprinted,
// rollback-capable change set (ChangeSet) — tuning as an output of the
// system instead of an input.
package advisor

import (
	"fmt"
	"sort"

	"pdmtune/internal/costmodel"
	"pdmtune/internal/netsim"
)

// Shape is the advisor's coarse workload classification. Each shape
// names the dominant traffic pattern of an observation window and has a
// known best-knob family the ranking should (and, per the acceptance
// tests, does) rediscover from the cost model alone.
type Shape int

const (
	// ColdRead is a cold structure scan: deep traversals, no repeats,
	// few writes. Round trips dominate — recursion and batching win.
	ColdRead Shape = iota
	// RepeatRead is a warm, repeat-heavy read workload: the same
	// structures are traversed again and again — a structure cache
	// collapses repeats to one validate exchange.
	RepeatRead
	// WriteHeavy is a check-in/check-out storm: the write path and its
	// lock waits dominate — batched, prepared modifies and fewer fetch
	// round trips win.
	WriteHeavy
	// ReplicaRead is a read-dominant workload at a replica site: reads
	// are already local, the tuning question is the staleness bound
	// that amortizes the WAN pulls.
	ReplicaRead
)

func (s Shape) String() string {
	switch s {
	case ColdRead:
		return "cold-read"
	case RepeatRead:
		return "repeat-read"
	case WriteHeavy:
		return "write-heavy"
	case ReplicaRead:
		return "replica-read"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Observation is one windowed look at a live session or fleet —
// everything the advisor may use. Window is a Metrics delta between two
// Meter.Snapshot calls; the remaining fields describe the environment
// the window was taken in.
type Observation struct {
	// Window is the metered traffic of the observation window.
	Window netsim.Metrics
	// Site is the site the observed session reads from ("" or
	// "primary" for the primary itself).
	Site string
	// Link is the WAN profile between the client (or its site) and the
	// primary.
	Link netsim.Link
	// LocalLink is the site-local profile of replica reads (ignored at
	// the primary).
	LocalLink netsim.Link
	// Tree is the product shape under traversal (a paper scenario or a
	// measured estimate).
	Tree costmodel.Tree
	// Users is the number of concurrent users sharing the link.
	Users int
	// SyncBytes is the observed row-delta volume of one replication
	// pull (replica sessions only).
	SyncBytes float64
	// Action is the dominant read action. The zero value selects MLE —
	// the paper's expensive case and the structural default; a workload
	// truly dominated by the set-oriented Query sets QueryDominant
	// instead (Query is the cost model's zero Action and would be
	// indistinguishable from "unset").
	Action        costmodel.Action
	QueryDominant bool
}

func (o Observation) action() costmodel.Action {
	if o.QueryDominant {
		return costmodel.Query
	}
	if o.Action == costmodel.Query {
		return costmodel.MLE
	}
	return o.Action
}

func (o Observation) replica() bool { return o.Site != "" && o.Site != "primary" }

// WorkloadProfile is the classified shape of an observation plus the
// costmodel workload distilled from it — the input the ranking prices
// every candidate against.
type WorkloadProfile struct {
	Shape    Shape
	Workload costmodel.Workload
	// WriteFrac/RepeatFrac are the observed fractions the
	// classification derives from (duplicated out of Workload for
	// reporting).
	WriteFrac  float64
	RepeatFrac float64
}

// networkOf converts a simulator link into an analytic profile.
func networkOf(l netsim.Link) costmodel.Network {
	return costmodel.Network{
		Name:        l.Name,
		PacketBytes: float64(l.PacketBytes),
		LatencySec:  l.LatencySec,
		RateKbps:    l.RateKbps,
	}
}

// Classification thresholds: a window is write-heavy when at least
// writeHeavyFrac of its actions are writes, and repeat-heavy when at
// least repeatHeavyFrac of its reads hit an already-traversed target.
const (
	writeHeavyFrac  = 0.4
	repeatHeavyFrac = 0.5
)

// Classify distills an observation window into a workload profile. It
// never fails: an empty window classifies as a cold read at the
// observed site — the advisor's no-information default.
func Classify(o Observation) WorkloadProfile {
	m := o.Window
	actions := m.Actions()
	var writeFrac, repeatFrac float64
	if actions > 0 {
		writeFrac = float64(m.WriteActions) / float64(actions)
	}
	if m.ReadActions > 0 {
		repeatFrac = float64(m.RepeatActions) / float64(m.ReadActions)
	}
	var lockWaitSec float64
	if m.WriteActions > 0 {
		lockWaitSec = float64(m.LockWaitNanos) / 1e9 / float64(m.WriteActions)
	}
	var actionsPerSec float64
	if sec := m.TotalSec(); sec > 0 {
		actionsPerSec = float64(actions) / sec
	}

	shape := ColdRead
	switch {
	case writeFrac >= writeHeavyFrac:
		shape = WriteHeavy
	case o.replica():
		shape = ReplicaRead
	case repeatFrac >= repeatHeavyFrac:
		shape = RepeatRead
	}

	action := o.action()
	w := costmodel.Workload{
		Net:           networkOf(o.Link),
		LocalNet:      networkOf(o.LocalLink),
		Tree:          o.Tree,
		Action:        action,
		WriteFrac:     writeFrac,
		RepeatFrac:    repeatFrac,
		Users:         o.Users,
		LockWaitSec:   lockWaitSec,
		SyncBytes:     o.SyncBytes,
		ActionsPerSec: actionsPerSec,
	}
	return WorkloadProfile{Shape: shape, Workload: w, WriteFrac: writeFrac, RepeatFrac: repeatFrac}
}

// Recommendation is one ranked candidate configuration.
type Recommendation struct {
	Config Config
	// PredictedSec is the expected simulated seconds of one action
	// under the candidate.
	PredictedSec float64
	// CurrentSec is the same prediction for the configuration the
	// observation was taken under; DeltaPct is the predicted saving.
	CurrentSec float64
	DeltaPct   float64
}

// Advisor ranks candidate configurations for observed workloads. The
// zero value is ready to use.
type Advisor struct {
	// TopK bounds how many recommendations Recommend returns (3 when
	// 0).
	TopK int
	// CacheEntries is the cache bound candidate configurations propose
	// (256 when 0).
	CacheEntries int
}

func (a Advisor) topK() int {
	if a.TopK > 0 {
		return a.TopK
	}
	return 3
}

func (a Advisor) cacheEntries() int {
	if a.CacheEntries > 0 {
		return a.CacheEntries
	}
	return 256
}

// candidates enumerates the knob lattice for a profile: every strategy,
// batching, prepared and cache choice, the negotiated wire encodings,
// and — at a replica — a spread of staleness bounds. Site and pool are
// open-time decisions and not enumerated: the advisor tunes what a
// running session can change.
func (a Advisor) candidates(p WorkloadProfile, replica bool) []Config {
	stalenesses := []float64{0}
	coverages := []float64{0}
	if replica {
		stalenesses = []float64{0, 5, 30, 300}
		// Subscription coverage spans its own lattice dimension at a
		// replica: full replication (0 ⇒ 1) vs a half-tree subscription
		// that halves the pull volume but makes the other half of the
		// reads fall through to the primary.
		coverages = []float64{0, 0.5}
	}
	var out []Config
	for _, strat := range costmodel.Strategies {
		for _, batching := range []bool{false, true} {
			for _, prepared := range []bool{false, true} {
				if prepared && !batching {
					// The prepared win the model knows about is the
					// shrunken per-statement batch frame; alone it only
					// adds the prepare round trip.
					continue
				}
				for _, cacheEntries := range []int{0, a.cacheEntries()} {
					for _, compress := range []bool{false, true} {
						for _, st := range stalenesses {
							for _, cov := range coverages {
								out = append(out, Config{
									Strategy:     strat,
									Batching:     batching,
									Prepared:     prepared,
									CacheEntries: cacheEntries,
									Columnar:     compress,
									Compress:     compress,
									StalenessSec: st,
									Coverage:     cov,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// knobsOf maps a candidate configuration onto the cost model's knob
// set for a session at the observed location.
func knobsOf(c Config, replica bool) costmodel.Knobs {
	return costmodel.Knobs{
		Strategy:     c.Strategy,
		Batching:     c.Batching,
		Prepared:     c.Prepared,
		CacheEntries: c.CacheEntries,
		Compress:     c.Compress,
		Replica:      replica,
		StalenessSec: c.StalenessSec,
		Coverage:     c.Coverage,
	}
}

// Recommend ranks every candidate configuration for the observed
// workload and returns the top-k, each with its predicted per-action
// cost and the predicted saving against the current configuration.
func (a Advisor) Recommend(o Observation, current Config) []Recommendation {
	p := Classify(o)
	return a.recommend(p, o.replica(), current)
}

func (a Advisor) recommend(p WorkloadProfile, replica bool, current Config) []Recommendation {
	currentSec := costmodel.PredictWorkload(knobsOf(current, replica), p.Workload).PerActionSec
	cands := a.candidates(p, replica)
	recs := make([]Recommendation, 0, len(cands))
	for _, c := range cands {
		sec := costmodel.PredictWorkload(knobsOf(c, replica), p.Workload).PerActionSec
		var delta float64
		if currentSec > 0 {
			delta = (1 - sec/currentSec) * 100
		}
		recs = append(recs, Recommendation{Config: c, PredictedSec: sec, CurrentSec: currentSec, DeltaPct: delta})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].PredictedSec < recs[j].PredictedSec })
	if len(recs) > a.topK() {
		recs = recs[:a.topK()]
	}
	return recs
}
