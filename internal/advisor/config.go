package advisor

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"pdmtune/internal/costmodel"
)

// Config is the complete runtime-tunable configuration of one session —
// the knobs a ChangeSet can flip on a live connection. Open-time
// decisions (site placement, pooling, transport) are deliberately not
// here: the advisor reports them as advice, it cannot apply them.
type Config struct {
	// Strategy is the rule-evaluation strategy (late, early, recursive).
	Strategy costmodel.Strategy
	// Batching collapses each BFS level / modify into one round trip.
	Batching bool
	// Prepared ships per-node statements as handle + parameters.
	Prepared bool
	// CacheEntries sizes the structure cache: 0 none, > 0 a private
	// bound, -1 a shared store (whose size the session does not own —
	// apply keeps shared stores untouched).
	CacheEntries int
	// Columnar negotiates the v2 columnar result encoding.
	Columnar bool
	// Compress negotiates whole-body response compression.
	Compress bool
	// CompressThreshold is the minimum body size compressed (wire
	// default when 0).
	CompressThreshold int
	// StalenessSec bounds replica-read staleness (0 syncs before every
	// action, negative never syncs); ignored at the primary.
	StalenessSec float64
	// Coverage is the site's subscription coverage in (0, 1] — the
	// fraction of the product structure the replica subscribes to (0
	// means full replication). Cluster-level advice: applying it means
	// calling Cluster.Subscribe for the site, which a single session
	// cannot do, so ApplyConfig treats it as advisory and leaves the
	// subscription untouched. Ignored at the primary.
	Coverage float64
}

// canonical is the fingerprint pre-image: every field, fixed order,
// unambiguous separators.
func (c Config) canonical() string {
	return fmt.Sprintf("strategy=%d|batching=%t|prepared=%t|cache=%d|columnar=%t|compress=%t|threshold=%d|staleness=%g|coverage=%g",
		c.Strategy, c.Batching, c.Prepared, c.CacheEntries, c.Columnar, c.Compress, c.CompressThreshold, c.StalenessSec, c.Coverage)
}

// Fingerprint returns a stable content hash of the configuration. A
// ChangeSet records the fingerprint of the configuration it was planned
// against and refuses to apply to anything else.
func (c Config) Fingerprint() string {
	sum := sha256.Sum256([]byte(c.canonical()))
	return hex.EncodeToString(sum[:8])
}

func (c Config) String() string {
	cache := "off"
	switch {
	case c.CacheEntries < 0:
		cache = "shared"
	case c.CacheEntries > 0:
		cache = fmt.Sprintf("%d entries", c.CacheEntries)
	}
	cov := ""
	if c.Coverage > 0 && c.Coverage < 1 {
		cov = fmt.Sprintf(" coverage=%g", c.Coverage)
	}
	return fmt.Sprintf("strategy=%v batching=%t prepared=%t cache=%s columnar=%t compress=%t staleness=%gs%s",
		c.Strategy, c.Batching, c.Prepared, cache, c.Columnar, c.Compress, c.StalenessSec, cov)
}

// Diff lists the parameter changes turning `from` into `to`, in
// canonical field order. An empty diff means the configurations are
// identical.
func Diff(from, to Config) []ParamChange {
	var out []ParamChange
	add := func(param string, a, b any) {
		if a != b {
			out = append(out, ParamChange{Param: param, From: fmt.Sprint(a), To: fmt.Sprint(b)})
		}
	}
	add("strategy", from.Strategy, to.Strategy)
	add("batching", from.Batching, to.Batching)
	add("prepared", from.Prepared, to.Prepared)
	add("cache_entries", from.CacheEntries, to.CacheEntries)
	add("columnar", from.Columnar, to.Columnar)
	add("compress", from.Compress, to.Compress)
	add("compress_threshold", from.CompressThreshold, to.CompressThreshold)
	add("staleness_sec", from.StalenessSec, to.StalenessSec)
	add("coverage", from.Coverage, to.Coverage)
	return out
}

// Tunable is the advisor's handle on a running session: read the live
// configuration, apply a new one. *pdmtune.Session implements it; the
// indirection keeps the advisor free of the facade package (which
// imports it back).
type Tunable interface {
	// TuneConfig returns the session's current runtime configuration.
	TuneConfig() Config
	// ApplyConfig reconfigures the live session to cfg. Implementations
	// must be all-or-nothing as far as their knobs allow and must make
	// a follow-up TuneConfig reflect cfg.
	ApplyConfig(ctx context.Context, cfg Config) error
}
