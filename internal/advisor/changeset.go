package advisor

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// ParamChange is one knob flip inside a ChangeSet, recorded as strings
// so reports and logs need no knowledge of the knob's type.
type ParamChange struct {
	Param string
	From  string
	To    string
}

func (p ParamChange) String() string { return fmt.Sprintf("%s: %s -> %s", p.Param, p.From, p.To) }

// ChangeSet is the advisor's write product: a complete target
// configuration, fingerprinted against the configuration it was planned
// for, applicable to a Tunable session and revertible. Unlike the
// read-only DiagSnapshot, a ChangeSet is all-or-nothing: it refuses to
// apply against a session whose configuration drifted since planning,
// and it remembers the pre-apply state so Rollback restores it exactly.
type ChangeSet struct {
	// ID identifies the set (derived from the plan's fingerprints).
	ID string
	// Fingerprint is the Config.Fingerprint of the configuration the
	// set was planned against; Apply verifies it before touching the
	// session.
	Fingerprint string
	// Target is the complete configuration the set applies.
	Target Config
	// Changes lists the individual knob flips, for reporting.
	Changes []ParamChange
	// PredictedSec/CurrentSec carry the plan's cost prediction.
	PredictedSec float64
	CurrentSec   float64

	// pre is the configuration captured at Apply time, for Rollback.
	pre     *Config
	applied bool
}

// Plan builds the change set turning `current` into the advisor's top
// recommendation for the observation. It returns nil when the best
// candidate is the current configuration itself — nothing to change.
func (a Advisor) Plan(o Observation, current Config) *ChangeSet {
	recs := a.Recommend(o, current)
	if len(recs) == 0 {
		return nil
	}
	best := recs[0]
	changes := Diff(current, best.Config)
	if len(changes) == 0 {
		return nil
	}
	return NewChangeSet(current, best.Config, best.PredictedSec, best.CurrentSec)
}

// NewChangeSet builds a fingerprinted change set from an explicit
// current/target pair (Plan is the ranked front end).
func NewChangeSet(current, target Config, predictedSec, currentSec float64) *ChangeSet {
	from, to := current.Fingerprint(), target.Fingerprint()
	sum := sha256.Sum256([]byte(from + ">" + to))
	return &ChangeSet{
		ID:           "cs-" + hex.EncodeToString(sum[:6]),
		Fingerprint:  from,
		Target:       target,
		Changes:      Diff(current, target),
		PredictedSec: predictedSec,
		CurrentSec:   currentSec,
	}
}

// Apply verifies the target session still runs the configuration the
// set was planned against (by fingerprint), captures it for Rollback,
// and applies the target configuration. Applying an already-applied set
// is an error.
func (cs *ChangeSet) Apply(ctx context.Context, t Tunable) error {
	if cs.applied {
		return fmt.Errorf("advisor: change set %s already applied", cs.ID)
	}
	cur := t.TuneConfig()
	if got := cur.Fingerprint(); got != cs.Fingerprint {
		return fmt.Errorf("advisor: change set %s was planned against configuration %s, session now runs %s — re-plan",
			cs.ID, cs.Fingerprint, got)
	}
	if err := t.ApplyConfig(ctx, cs.Target); err != nil {
		return fmt.Errorf("advisor: applying change set %s: %w", cs.ID, err)
	}
	cs.pre = &cur
	cs.applied = true
	return nil
}

// Applied reports whether the set is currently applied (and not rolled
// back).
func (cs *ChangeSet) Applied() bool { return cs.applied }

// Rollback restores the configuration captured at Apply time. It
// verifies the session still runs the set's target (no second tuner
// interfered), applies the pre-apply configuration and re-arms the set.
func (cs *ChangeSet) Rollback(ctx context.Context, t Tunable) error {
	if !cs.applied || cs.pre == nil {
		return fmt.Errorf("advisor: change set %s is not applied", cs.ID)
	}
	if got := t.TuneConfig().Fingerprint(); got != cs.Target.Fingerprint() {
		return fmt.Errorf("advisor: session drifted to configuration %s since change set %s was applied — not rolling back",
			got, cs.ID)
	}
	if err := t.ApplyConfig(ctx, *cs.pre); err != nil {
		return fmt.Errorf("advisor: rolling back change set %s: %w", cs.ID, err)
	}
	cs.applied = false
	cs.pre = nil
	return nil
}
