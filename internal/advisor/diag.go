package advisor

import (
	"fmt"
	"sort"
	"strings"
)

// Section is one degradable part of a DiagSnapshot: either its data or
// the reason it is missing. A partially failed diagnosis is still a
// diagnosis — consumers check Available per section instead of losing
// the whole report.
type Section struct {
	Available bool
	Error     string
	Data      map[string]string
}

// DiagSnapshot is the advisor's read product: a point-in-time diagnosis
// of an observed session. Unlike a ChangeSet it changes nothing, may be
// incomplete, and needs no fingerprint — every section stands alone.
type DiagSnapshot struct {
	Sections map[string]Section
}

func failed(reason string) Section { return Section{Error: reason} }

func section(data map[string]string) Section { return Section{Available: true, Data: data} }

// Diagnose assembles the full read-only report for an observation:
// the window's traffic, the classified profile, and the ranked
// recommendations against the current configuration. Sections degrade
// independently — an empty window still yields a config section.
func (a Advisor) Diagnose(o Observation, current Config) *DiagSnapshot {
	d := &DiagSnapshot{Sections: map[string]Section{}}

	d.Sections["config"] = section(map[string]string{
		"current":     current.String(),
		"fingerprint": current.Fingerprint(),
	})

	m := o.Window
	if m.Actions() == 0 {
		d.Sections["window"] = failed("empty observation window: no user actions metered")
		d.Sections["profile"] = failed("empty observation window")
		d.Sections["recommendations"] = failed("nothing observed to rank against")
		return d
	}
	d.Sections["window"] = section(map[string]string{
		"actions":        fmt.Sprint(m.Actions()),
		"reads":          fmt.Sprint(m.ReadActions),
		"writes":         fmt.Sprint(m.WriteActions),
		"repeats":        fmt.Sprint(m.RepeatActions),
		"round_trips":    fmt.Sprint(m.RoundTrips),
		"simulated_sec":  fmt.Sprintf("%.3f", m.TotalSec()),
		"lock_wait_sec":  fmt.Sprintf("%.3f", float64(m.LockWaitNanos)/1e9),
		"cache_hits":     fmt.Sprint(m.CacheHits),
		"write_conflict": fmt.Sprint(m.WriteConflicts),
	})

	p := Classify(o)
	d.Sections["profile"] = section(map[string]string{
		"shape":       p.Shape.String(),
		"write_frac":  fmt.Sprintf("%.2f", p.WriteFrac),
		"repeat_frac": fmt.Sprintf("%.2f", p.RepeatFrac),
		"site":        displaySite(o.Site),
		"users":       fmt.Sprint(p.Workload.Users),
	})

	recs := a.recommend(p, o.replica(), current)
	if len(recs) == 0 {
		d.Sections["recommendations"] = failed("no candidates enumerated")
		return d
	}
	data := map[string]string{}
	for i, r := range recs {
		data[fmt.Sprintf("rank%d", i+1)] = fmt.Sprintf("%s (predicted %.3fs/action, %+.0f%%)",
			r.Config, r.PredictedSec, r.DeltaPct)
	}
	d.Sections["recommendations"] = section(data)
	return d
}

func displaySite(site string) string {
	if site == "" {
		return "primary"
	}
	return site
}

// String renders the snapshot section by section, missing parts
// included — the degradable contract made visible.
func (d *DiagSnapshot) String() string {
	names := make([]string, 0, len(d.Sections))
	for name := range d.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		s := d.Sections[name]
		if !s.Available {
			fmt.Fprintf(&b, "[%s] unavailable: %s\n", name, s.Error)
			continue
		}
		fmt.Fprintf(&b, "[%s]\n", name)
		keys := make([]string, 0, len(s.Data))
		for k := range s.Data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s = %s\n", k, s.Data[k])
		}
	}
	return b.String()
}
