package wire

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdmtune/internal/minisql"
	"pdmtune/internal/netsim"
)

func newFenceDB(t *testing.T) *minisql.DB {
	t.Helper()
	db := minisql.NewDB()
	s := db.NewSession()
	if _, err := s.ExecScript(`
CREATE TABLE kv (id INTEGER PRIMARY KEY, val INTEGER NOT NULL);
INSERT INTO kv VALUES (1, 0);`); err != nil {
		t.Fatal(err)
	}
	return db
}

func staticTerm(term uint64) TermSource {
	return func() (uint64, bool) { return term, true }
}

func TestFencedEnvelopeRoundTrip(t *testing.T) {
	inner := EncodeSync(9)
	wrapped := EncodeFenced(17, inner)
	term, got, err := DecodeFenced(wrapped)
	if err != nil || term != 17 {
		t.Fatalf("DecodeFenced: term=%d err=%v", term, err)
	}
	if len(got) == 0 || got[0] != TypeSync {
		t.Fatalf("inner frame type = %#x", got[0])
	}
	fe, err := DecodeFencedResp(EncodeFencedResp(3, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if fe.ServerTerm != 3 || fe.FrameTerm != 2 || !fe.Deposed {
		t.Fatalf("FencedError = %+v", fe)
	}
}

// A deposed server refuses writes — fenced or legacy-unwrapped — with
// *FencedError, while reads keep flowing.
func TestDeposedServerRefusesWrites(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	srv.SetFence(NewFence(1, false))
	ctx := context.Background()

	fenced := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	fenced.SetTermSource(staticTerm(1))
	var fe *FencedError
	if _, err := fenced.Exec(ctx, "UPDATE kv SET val = 1 WHERE id = 1"); !errors.As(err, &fe) {
		t.Fatalf("write at deposed server: %v, want *FencedError", err)
	} else if !fe.Deposed {
		t.Fatalf("FencedError = %+v, want Deposed", fe)
	}

	legacy := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	if _, err := legacy.Exec(ctx, "UPDATE kv SET val = 2 WHERE id = 1"); !errors.As(err, &fe) {
		t.Fatalf("unfenced write at deposed server: %v, want *FencedError", err)
	}

	resp, err := fenced.Exec(ctx, "SELECT val FROM kv WHERE id = 1")
	if err != nil {
		t.Fatalf("read at deposed server: %v", err)
	}
	if got := resp.Rows[0][0].Int(); got != 0 {
		t.Fatalf("val = %d: a fenced write executed", got)
	}
}

// A primary refuses frames carrying a stale term (a client that missed
// the promotion) but keeps serving current-term writes.
func TestPrimaryRefusesStaleTerm(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	srv.SetFence(NewFence(2, true))
	ctx := context.Background()

	stale := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	stale.SetTermSource(staticTerm(1))
	var fe *FencedError
	if _, err := stale.Exec(ctx, "UPDATE kv SET val = 1 WHERE id = 1"); !errors.As(err, &fe) {
		t.Fatalf("stale-term write: %v, want *FencedError", err)
	} else if fe.Deposed || fe.ServerTerm != 2 || fe.FrameTerm != 1 {
		t.Fatalf("FencedError = %+v, want stale-term refusal by term-2 server", fe)
	}

	current := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	current.SetTermSource(staticTerm(2))
	if _, err := current.Exec(ctx, "UPDATE kv SET val = 5 WHERE id = 1"); err != nil {
		t.Fatalf("current-term write: %v", err)
	}
}

// A deposed primary still serves same-term sync pulls — the final
// catch-up of a planned failover — but refuses stale- or future-term
// ones.
func TestDeposedServerServesSameTermSync(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	srv.SetFence(NewFence(3, false))
	ctx := context.Background()

	same := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	same.SetTermSource(staticTerm(3))
	if _, err := same.Sync(ctx, 0); err != nil {
		t.Fatalf("same-term sync at deposed primary: %v", err)
	}

	future := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	future.SetTermSource(staticTerm(4))
	var fe *FencedError
	if _, err := future.Sync(ctx, 0); !errors.As(err, &fe) {
		t.Fatalf("future-term sync at deposed primary: %v, want *FencedError", err)
	}
}

// An unfenced server accepts fenced frames (served as their inner
// frame), so a fenced client degrades gracefully.
func TestUnfencedServerAcceptsEnvelope(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	client := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	client.SetTermSource(staticTerm(7))
	if _, err := client.Exec(context.Background(), "UPDATE kv SET val = 9 WHERE id = 1"); err != nil {
		t.Fatalf("fenced write at unfenced server: %v", err)
	}
}

func TestStatusExchange(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	ctx := context.Background()
	client := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	st, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 0 || !st.Primary {
		t.Fatalf("unfenced status = %+v, want term 0 primary", st)
	}
	srv.SetFence(NewFence(5, false))
	st, err = client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 5 || st.Primary {
		t.Fatalf("fenced status = %+v, want term 5 replica", st)
	}
}

// flakyTransport fails the first n round trips with a raw error, then
// delegates.
type flakyTransport struct {
	inner Transport
	fails int
	calls int
}

func (f *flakyTransport) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	f.calls++
	if f.fails > 0 {
		f.fails--
		return nil, errors.New("boom: connection reset")
	}
	return f.inner.RoundTrip(ctx, req)
}

// Idempotent reads retry over dead connections; the retries and the
// backoff schedule surface in the meter and the recorder.
func TestRetryIdempotentReads(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	tr := &flakyTransport{inner: &MeteredChannel{Conn: srv.NewConn()}, fails: 2}
	client := NewClient(tr)
	m := netsim.NewMeter(netsim.LAN())
	var slept []time.Duration
	client.SetRetry(&RetryPolicy{
		MaxAttempts: 4,
		Meter:       m,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	resp, err := client.Exec(context.Background(), "SELECT val FROM kv WHERE id = 1")
	if err != nil {
		t.Fatalf("read with retries: %v", err)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("rows = %d", len(resp.Rows))
	}
	if tr.calls != 3 {
		t.Fatalf("transport saw %d calls, want 3 (1 + 2 retries)", tr.calls)
	}
	if got := m.Snapshot(); got.Retries != 2 || got.RetryGiveUps != 0 {
		t.Fatalf("metered retries = %d/%d, want 2/0", got.Retries, got.RetryGiveUps)
	}
	if len(slept) != 2 || slept[1] < slept[0] {
		t.Fatalf("backoff schedule %v not increasing", slept)
	}
}

// Writes are never retried: one dead connection, one *ConnClosedError.
func TestWritesNeverRetry(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	tr := &flakyTransport{inner: &MeteredChannel{Conn: srv.NewConn()}, fails: 1}
	client := NewClient(tr)
	client.SetRetry(&RetryPolicy{Sleep: func(time.Duration) {}})
	var cce *ConnClosedError
	if _, err := client.Exec(context.Background(), "UPDATE kv SET val = 1 WHERE id = 1"); !errors.As(err, &cce) {
		t.Fatalf("write over dead conn: %v, want *ConnClosedError", err)
	}
	if tr.calls != 1 {
		t.Fatalf("transport saw %d calls, want 1 (no write retries)", tr.calls)
	}
}

// Exhausted retries give up with the structured error and count it.
func TestRetryGiveUp(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	tr := &flakyTransport{inner: &MeteredChannel{Conn: srv.NewConn()}, fails: 100}
	client := NewClient(tr)
	m := netsim.NewMeter(netsim.LAN())
	client.SetRetry(&RetryPolicy{MaxAttempts: 3, Meter: m, Sleep: func(time.Duration) {}})
	var cce *ConnClosedError
	if _, err := client.Exec(context.Background(), "SELECT val FROM kv WHERE id = 1"); !errors.As(err, &cce) {
		t.Fatalf("exhausted retries: %v, want *ConnClosedError", err)
	}
	if tr.calls != 3 {
		t.Fatalf("transport saw %d calls, want MaxAttempts=3", tr.calls)
	}
	if got := m.Snapshot(); got.Retries != 2 || got.RetryGiveUps != 1 {
		t.Fatalf("metered = %d/%d, want 2 retries, 1 give-up", got.Retries, got.RetryGiveUps)
	}
}

// The backoff jitter is deterministic for a fixed seed.
func TestRetryBackoffDeterministic(t *testing.T) {
	sched := func() []time.Duration {
		p := &RetryPolicy{Seed: 42}
		var out []time.Duration
		for n := 1; n <= 5; n++ {
			out = append(out, p.backoff(n))
		}
		return out
	}
	a, b := sched(), sched()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// A pool member that dies is evicted — not recycled into the free list —
// and the caller sees *ConnClosedError.
func TestPoolEvictsDeadConns(t *testing.T) {
	srv := NewServer(newFenceDB(t))
	pool := NewPool(srv, 2)
	plan := &netsim.FaultPlan{}
	pool.SetMemberWrapper(func(tr Transport) Transport {
		// The interfaces are structurally identical, so the injector
		// slots straight in.
		return netsim.NewFaultInjector(tr, plan)
	})
	ctx := context.Background()
	client := NewClient(pool)
	if _, err := client.Exec(ctx, "SELECT val FROM kv WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size = %d, want 1", pool.Size())
	}
	plan.Kill()
	var cce *ConnClosedError
	if _, err := client.Exec(ctx, "SELECT val FROM kv WHERE id = 1"); !errors.As(err, &cce) {
		t.Fatalf("round trip through killed pool: %v, want *ConnClosedError", err)
	}
	if pool.Size() != 0 {
		t.Fatalf("pool kept %d dead conns, want 0 (evicted)", pool.Size())
	}
	plan.Revive()
	if _, err := client.Exec(ctx, "SELECT val FROM kv WHERE id = 1"); err != nil {
		t.Fatalf("after revive: %v", err)
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size after revive = %d, want 1 fresh member", pool.Size())
	}
}
