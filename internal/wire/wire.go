// Package wire implements the client/server protocol between the PDM
// client and the database server: length-prefixed binary frames carrying
// SQL statements with parameters in one direction and result sets (or
// errors) in the other. Frame sizes are exact, which is what the WAN
// simulator charges — the PDM layer's transferred-volume numbers come
// from this encoding.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
)

// Frame type tags.
const (
	TypeRequest      = 0x01
	TypeResult       = 0x02
	TypeError        = 0x03
	TypeBatch        = 0x04
	TypeBatchResp    = 0x05
	TypePrepare      = 0x06
	TypePrepareResp  = 0x07
	TypeExecPrepared = 0x08
	TypeValidate     = 0x09
	TypeValidateResp = 0x0a
	// TypeResultV2 is the columnar result encoding (see columnar.go).
	TypeResultV2 = 0x0b
	// TypeHello / TypeHelloResp negotiate connection capabilities —
	// columnar results and response compression — at session open.
	TypeHello     = 0x0c
	TypeHelloResp = 0x0d
	// TypeCompressed wraps any response frame body in a whole-body
	// deflate envelope (see compress.go).
	TypeCompressed = 0x0e
	// TypeSync / TypeSyncResp are the replication frames: a replica
	// pulls the row deltas above its last-seen epoch (see sync.go).
	TypeSync     = 0x0f
	TypeSyncResp = 0x10
	// TypeClose tears a connection's session state down, releasing the
	// statements it prepared server-side.
	TypeClose = 0x11
	// TypeFenced wraps a write or sync frame in a fencing-term envelope;
	// TypeFencedResp is the server's refusal when its fence does not
	// match (see fence.go).
	TypeFenced     = 0x12
	TypeFencedResp = 0x13
	// TypeStatus / TypeStatusResp are the health-probe exchange: the
	// server answers with its fencing state and database epoch.
	TypeStatus     = 0x14
	TypeStatusResp = 0x15
	MaxFrameSize   = 1 << 30
)

// FrameTooLargeError reports an attempt to emit a frame exceeding
// MaxFrameSize. It is returned on the encode path (WriteFrame, the
// client's Exec/ExecBatch) so oversized frames are rejected before they
// reach the wire, mirroring the decode-side check in ReadFrame.
type FrameTooLargeError struct {
	Size int
	// Limit is the bound that was exceeded; 0 means MaxFrameSize (the
	// server's Serve loop can enforce a lower MaxResponseBytes).
	Limit int
}

func (e *FrameTooLargeError) Error() string {
	limit := e.Limit
	if limit <= 0 {
		limit = MaxFrameSize
	}
	return fmt.Sprintf("wire: frame of %d bytes exceeds the %d byte limit", e.Size, limit)
}

// CheckFrameSize validates an encoded frame body against MaxFrameSize.
func CheckFrameSize(body []byte) error {
	if len(body) > MaxFrameSize {
		return &FrameTooLargeError{Size: len(body)}
	}
	return nil
}

// Request is one statement execution request: either SQL text or a
// reference to a statement previously prepared on the connection.
type Request struct {
	SQL    string
	Params []types.Value
	// Prepared selects the prepared-statement encoding: the frame carries
	// Handle and Params instead of the SQL text, so the per-execution
	// request bytes drop to a few dozen regardless of statement size.
	Prepared bool
	Handle   uint32
}

// Response is the server's answer: either an error message or a result.
type Response struct {
	Err          string
	Cols         []string
	Rows         []storage.Row
	RowsAffected int
	// Epoch is the server database's modification epoch as of this
	// statement's execution — the version stamp a client-side cache
	// attaches to entries built from this result (0 when the server
	// does not version its data).
	Epoch uint64
}

// ---------------------------------------------------------------------------
// primitive encoders

func appendUint32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func readUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func appendString(b []byte, s string) []byte {
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func readUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUint32(b)
	if err != nil {
		return "", nil, err
	}
	if uint32(len(rest)) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(rest[:n]), rest[n:], nil
}

// value tags on the wire
const (
	tagNull  = 0
	tagInt   = 1
	tagFloat = 2
	tagText  = 3
	tagTrue  = 4
	tagFalse = 5
)

// AppendValue encodes one SQL value.
func AppendValue(b []byte, v types.Value) []byte {
	switch v.Kind() {
	case types.KindNull:
		return append(b, tagNull)
	case types.KindInt:
		b = append(b, tagInt)
		return binary.BigEndian.AppendUint64(b, uint64(v.Int()))
	case types.KindFloat:
		b = append(b, tagFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case types.KindText:
		b = append(b, tagText)
		return appendString(b, v.Text())
	case types.KindBool:
		if v.Bool() {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	}
	return append(b, tagNull)
}

// ReadValue decodes one SQL value.
func ReadValue(b []byte) (types.Value, []byte, error) {
	if len(b) < 1 {
		return types.Null, nil, io.ErrUnexpectedEOF
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNull:
		return types.Null, b, nil
	case tagInt:
		if len(b) < 8 {
			return types.Null, nil, io.ErrUnexpectedEOF
		}
		return types.NewInt(int64(binary.BigEndian.Uint64(b))), b[8:], nil
	case tagFloat:
		if len(b) < 8 {
			return types.Null, nil, io.ErrUnexpectedEOF
		}
		return types.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case tagText:
		s, rest, err := readString(b)
		if err != nil {
			return types.Null, nil, err
		}
		return types.NewText(s), rest, nil
	case tagTrue:
		return types.NewBool(true), b, nil
	case tagFalse:
		return types.NewBool(false), b, nil
	}
	return types.Null, nil, fmt.Errorf("wire: unknown value tag %d", tag)
}

// ---------------------------------------------------------------------------
// message encoding

// EncodeRequest serializes a request frame body (without the outer
// length prefix).
func EncodeRequest(req *Request) []byte {
	b := append(getFrame(), TypeRequest)
	b = appendString(b, req.SQL)
	b = appendUint32(b, uint32(len(req.Params)))
	for _, p := range req.Params {
		b = AppendValue(b, p)
	}
	return b
}

// DecodeRequest parses a request frame body.
func DecodeRequest(b []byte) (*Request, error) {
	if len(b) < 1 || b[0] != TypeRequest {
		return nil, fmt.Errorf("wire: not a request frame")
	}
	b = b[1:]
	sql, b, err := readString(b)
	if err != nil {
		return nil, err
	}
	n, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	req := &Request{SQL: sql}
	for i := uint32(0); i < n; i++ {
		var v types.Value
		v, b, err = ReadValue(b)
		if err != nil {
			return nil, err
		}
		req.Params = append(req.Params, v)
	}
	return req, nil
}

// EncodeResponse serializes a response frame body.
func EncodeResponse(resp *Response) []byte {
	if resp.Err != "" {
		b := append(getFrame(), TypeError)
		return appendString(b, resp.Err)
	}
	b := append(getFrame(), TypeResult)
	b = appendUint64(b, resp.Epoch)
	b = appendUint32(b, uint32(resp.RowsAffected))
	b = appendUint32(b, uint32(len(resp.Cols)))
	for _, c := range resp.Cols {
		b = appendString(b, c)
	}
	b = appendUint32(b, uint32(len(resp.Rows)))
	for _, row := range resp.Rows {
		for _, v := range row {
			b = AppendValue(b, v)
		}
	}
	return b
}

// DecodeResponse parses a response frame body.
func DecodeResponse(b []byte) (*Response, error) {
	if len(b) < 1 {
		return nil, io.ErrUnexpectedEOF
	}
	switch b[0] {
	case TypeError:
		msg, _, err := readString(b[1:])
		if err != nil {
			return nil, err
		}
		return &Response{Err: msg}, nil
	case TypeResultV2:
		return decodeResponseV2(b)
	case TypeResult:
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", b[0])
	}
	b = b[1:]
	epoch, b, err := readUint64(b)
	if err != nil {
		return nil, err
	}
	affected, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	ncols, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	resp := &Response{RowsAffected: int(affected), Epoch: epoch}
	for i := uint32(0); i < ncols; i++ {
		var c string
		c, b, err = readString(b)
		if err != nil {
			return nil, err
		}
		resp.Cols = append(resp.Cols, c)
	}
	nrows, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nrows; i++ {
		row := make(storage.Row, ncols)
		for j := uint32(0); j < ncols; j++ {
			var v types.Value
			v, b, err = ReadValue(b)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		resp.Rows = append(resp.Rows, row)
	}
	return resp, nil
}

// ---------------------------------------------------------------------------
// prepared-statement frames

// EncodePrepare serializes a prepare frame: the SQL text travels once,
// the server parses it once, and every later execution references it by
// handle — the classic request-volume lever the paper attributes to
// stored procedures, applied to plain statements.
func EncodePrepare(sql string) []byte {
	b := append(getFrame(), TypePrepare)
	return appendString(b, sql)
}

// DecodePrepare parses a prepare frame body into its SQL text.
func DecodePrepare(b []byte) (string, error) {
	if len(b) < 1 || b[0] != TypePrepare {
		return "", fmt.Errorf("wire: not a prepare frame")
	}
	sql, _, err := readString(b[1:])
	return sql, err
}

// EncodePrepareResp serializes the server's answer to a prepare: the
// statement handle valid for this connection.
func EncodePrepareResp(handle uint32) []byte {
	b := append(getFrame(), TypePrepareResp)
	return appendUint32(b, handle)
}

// DecodePrepareResp parses a prepare response frame body.
func DecodePrepareResp(b []byte) (uint32, error) {
	if len(b) < 1 || b[0] != TypePrepareResp {
		return 0, fmt.Errorf("wire: not a prepare response frame")
	}
	h, _, err := readUint32(b[1:])
	return h, err
}

// EncodeExecPrepared serializes an execution of a prepared statement:
// handle plus parameter values, no SQL text.
func EncodeExecPrepared(handle uint32, params []types.Value) []byte {
	b := append(getFrame(), TypeExecPrepared)
	b = appendUint32(b, handle)
	b = appendUint32(b, uint32(len(params)))
	for _, p := range params {
		b = AppendValue(b, p)
	}
	return b
}

// DecodeExecPrepared parses an exec-prepared frame body.
func DecodeExecPrepared(b []byte) (*Request, error) {
	if len(b) < 1 || b[0] != TypeExecPrepared {
		return nil, fmt.Errorf("wire: not an exec-prepared frame")
	}
	b = b[1:]
	handle, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	n, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	req := &Request{Prepared: true, Handle: handle}
	for i := uint32(0); i < n; i++ {
		var v types.Value
		v, b, err = ReadValue(b)
		if err != nil {
			return nil, err
		}
		req.Params = append(req.Params, v)
	}
	return req, nil
}

// ---------------------------------------------------------------------------
// validate frames: revalidate a cached structure in one round trip

// StaleCheck asks whether one object changed after a known epoch: ID
// is the object's version key, Since the epoch stamped on the cached
// entry when it was fetched.
type StaleCheck struct {
	ID    int64
	Since uint64
}

// EncodeValidate serializes a validate frame: (id, since-epoch) pairs
// for every object a cached structure depends on. At 16 bytes per
// entry, revalidating a whole cached tree costs a small fraction of
// re-fetching its node records.
func EncodeValidate(checks []StaleCheck) []byte {
	b := append(getFrame(), TypeValidate)
	b = appendUint32(b, uint32(len(checks)))
	for _, c := range checks {
		b = appendUint64(b, uint64(c.ID))
		b = appendUint64(b, c.Since)
	}
	return b
}

// DecodeValidate parses a validate frame body.
func DecodeValidate(b []byte) ([]StaleCheck, error) {
	if len(b) < 1 || b[0] != TypeValidate {
		return nil, fmt.Errorf("wire: not a validate frame")
	}
	b = b[1:]
	n, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	// Division, not multiplication: n*16 can overflow uint32 and slip
	// past the bound, turning a tiny frame into a huge allocation.
	if n > uint32(len(b))/16 {
		return nil, io.ErrUnexpectedEOF
	}
	checks := make([]StaleCheck, 0, n)
	for i := uint32(0); i < n; i++ {
		var id, since uint64
		id, b, _ = readUint64(b)
		since, b, _ = readUint64(b)
		checks = append(checks, StaleCheck{ID: int64(id), Since: since})
	}
	return checks, nil
}

// EncodeValidateResp serializes the server's answer: the ids whose
// objects changed after their given epoch (the stale subset).
func EncodeValidateResp(stale []int64) []byte {
	b := append(getFrame(), TypeValidateResp)
	b = appendUint32(b, uint32(len(stale)))
	for _, id := range stale {
		b = appendUint64(b, uint64(id))
	}
	return b
}

// DecodeValidateResp parses a validate response frame body.
func DecodeValidateResp(b []byte) ([]int64, error) {
	if len(b) < 1 || b[0] != TypeValidateResp {
		return nil, fmt.Errorf("wire: not a validate response frame")
	}
	b = b[1:]
	n, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	if n > uint32(len(b))/8 {
		return nil, io.ErrUnexpectedEOF
	}
	stale := make([]int64, 0, n)
	for i := uint32(0); i < n; i++ {
		var id uint64
		id, b, _ = readUint64(b)
		stale = append(stale, int64(id))
	}
	return stale, nil
}

// EncodeExec serializes one request as the sub-frame a batch carries (or
// a standalone frame): the prepared encoding when the request references
// a handle, the plain text encoding otherwise.
func EncodeExec(req *Request) []byte {
	if req.Prepared {
		return EncodeExecPrepared(req.Handle, req.Params)
	}
	return EncodeRequest(req)
}

// DecodeExec parses a sub-frame that is either a plain request or a
// prepared execution.
func DecodeExec(b []byte) (*Request, error) {
	if len(b) >= 1 && b[0] == TypeExecPrepared {
		return DecodeExecPrepared(b)
	}
	return DecodeRequest(b)
}

// ---------------------------------------------------------------------------
// batch frames: N statements in one round trip

// EncodeBatch serializes a batch frame body carrying every request as a
// length-prefixed sub-frame (plain text or prepared execution). Sizes
// stay exact: the WAN meter charges the tag, the count, and 4 bytes of
// framing per statement — nothing more.
func EncodeBatch(reqs []*Request) []byte {
	b := append(getFrame(), TypeBatch)
	b = appendUint32(b, uint32(len(reqs)))
	for _, req := range reqs {
		sub := EncodeExec(req)
		b = appendUint32(b, uint32(len(sub)))
		b = append(b, sub...)
		putFrame(sub)
	}
	return b
}

// DecodeBatch parses a batch frame body into its requests.
func DecodeBatch(b []byte) ([]*Request, error) {
	if len(b) < 1 || b[0] != TypeBatch {
		return nil, fmt.Errorf("wire: not a batch frame")
	}
	b = b[1:]
	n, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	// Every sub-frame costs at least its 4-byte length prefix, so a count
	// beyond len(b)/4 is corrupt — reject it before trusting it for an
	// allocation.
	if n > uint32(len(b))/4 {
		return nil, fmt.Errorf("wire: batch count %d exceeds frame size", n)
	}
	reqs := make([]*Request, 0, n)
	for i := uint32(0); i < n; i++ {
		var size uint32
		size, b, err = readUint32(b)
		if err != nil {
			return nil, err
		}
		if uint32(len(b)) < size {
			return nil, io.ErrUnexpectedEOF
		}
		req, err := DecodeExec(b[:size])
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
		b = b[size:]
	}
	return reqs, nil
}

// EncodeBatchResponse serializes the per-statement responses of a batch.
// Under stop-on-first-error semantics the slice holds one response per
// executed statement; a trailing error response marks where execution
// stopped.
func EncodeBatchResponse(resps []*Response) []byte {
	b := append(getFrame(), TypeBatchResp)
	b = appendUint32(b, uint32(len(resps)))
	for _, resp := range resps {
		sub := EncodeResponse(resp)
		b = appendUint32(b, uint32(len(sub)))
		b = append(b, sub...)
		putFrame(sub)
	}
	return b
}

// DecodeBatchResponse parses a batch response frame body.
func DecodeBatchResponse(b []byte) ([]*Response, error) {
	if len(b) < 1 || b[0] != TypeBatchResp {
		return nil, fmt.Errorf("wire: not a batch response frame")
	}
	b = b[1:]
	n, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	if n > uint32(len(b))/4 {
		return nil, fmt.Errorf("wire: batch response count %d exceeds frame size", n)
	}
	resps := make([]*Response, 0, n)
	for i := uint32(0); i < n; i++ {
		var size uint32
		size, b, err = readUint32(b)
		if err != nil {
			return nil, err
		}
		if uint32(len(b)) < size {
			return nil, io.ErrUnexpectedEOF
		}
		resp, err := DecodeResponse(b[:size])
		if err != nil {
			return nil, err
		}
		resps = append(resps, resp)
		b = b[size:]
	}
	return resps, nil
}

// BatchStatements reports how many SQL statements an encoded request
// frame carries: the batch count for TypeBatch frames, 1 otherwise. The
// metered channel uses it to account statements per round trip.
func BatchStatements(body []byte) int {
	s := ScanFrame(body, nil)
	return s.Statements
}

// FrameStats summarizes an encoded request frame for metering.
type FrameStats struct {
	// Statements counts the SQL statements the frame ships (prepares and
	// prepared executions included — each stands for one statement).
	Statements int
	// PreparedExecs counts the statements shipped as handle+params
	// instead of SQL text.
	PreparedExecs int
	// SavedRequestBytes is the SQL text volume the prepared executions
	// avoided re-shipping, computed from the recorded text length of each
	// referenced handle (handles with unknown text contribute nothing).
	SavedRequestBytes float64
}

// ScanFrame walks an encoded request frame without fully decoding it and
// returns its metering stats. sqlLen maps prepared handles to the byte
// length of their SQL text (nil when no prepared accounting is wanted).
// A prepared execution replaces the length-prefixed SQL text with a
// 4-byte handle; with identical parameters the request body is exactly
// len(sql) bytes smaller, which is what SavedRequestBytes records.
func ScanFrame(body []byte, sqlLen map[uint32]int) FrameStats {
	stats := FrameStats{Statements: 1}
	scanOne := func(sub []byte) {
		if len(sub) >= 5 && sub[0] == TypeExecPrepared {
			stats.PreparedExecs++
			if sqlLen != nil {
				h := binary.BigEndian.Uint32(sub[1:5])
				stats.SavedRequestBytes += float64(sqlLen[h])
			}
		}
	}
	if len(body) < 5 || body[0] != TypeBatch {
		scanOne(body)
		return stats
	}
	stats.Statements = int(binary.BigEndian.Uint32(body[1:5]))
	b := body[5:]
	for len(b) >= 4 {
		size := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < size {
			break
		}
		scanOne(b[:size])
		b = b[size:]
	}
	return stats
}

// ---------------------------------------------------------------------------
// stream framing (for real connections)

// WriteFrame writes a length-prefixed frame body to a stream. Bodies
// beyond MaxFrameSize are rejected with *FrameTooLargeError before any
// bytes hit the wire.
func WriteFrame(w io.Writer, body []byte) error {
	if err := CheckFrameSize(body); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame body from a stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := getFrameN(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
