package wire

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/parser"
)

// Pool multiplexes many client sessions over at most max server
// connections — the engine-side answer to "thousands of concurrent
// sessions": clients are cheap, engine sessions are the scarce resource
// (each one serializes its statements), so N clients share M = max
// connections the way a production pooler (pgbouncer-style, statement
// pooling mode) shares real database backends.
//
// Pool implements Transport and is safe for any number of concurrent
// RoundTrip callers. Per call it acquires an idle member connection
// (creating one while under the cap, blocking otherwise), forwards the
// request, and releases the connection. Three frame types never reach a
// member connection:
//
//   - Hello: the first hello negotiates the pool-wide capability set on
//     a member connection; every later hello is answered locally with
//     that same set, so all members encode responses identically.
//   - Prepare: the SQL is parsed (surfacing syntax errors at prepare
//     time) and registered under a pool-level handle. Member
//     connections prepare lazily, the first time the handle executes on
//     them; the pool remaps pool handles to per-connection handles on
//     TypeExecPrepared and TypeBatch frames.
//   - Close: answered locally — pool-level handles outlive any one
//     client session, and member registries are shared state.
//
// Because statements from one client may execute on different member
// connections, sessions multiplexed through a pool must not rely on
// session state across round trips (the PDM workload's transactions are
// single-round-trip batches, so this is the same contract statement
// pooling imposes in production).
type Pool struct {
	server *Server

	mu      sync.Mutex
	conns   []*poolConn // all created members
	created int
	caps    Caps
	capsSet bool
	stmts   map[uint32]string // pool handle → SQL text
	next    uint32
	pending minisql.ContentionStats

	idle chan *poolConn
	max  int

	// wrapMember decorates every new member's transport (nil: members
	// dispatch in-process directly).
	wrapMember func(Transport) Transport
}

// poolConn is one member connection plus its lazy view of the pool's
// prepared statements. handles is touched only while the member is
// checked out, so it needs no lock of its own.
type poolConn struct {
	conn    *ServerConn
	handles map[uint32]uint32 // pool handle → this connection's handle
	// tr, when set, carries the member's round trips instead of the
	// direct in-process dispatch — the seam SetMemberWrapper installs
	// (fault injection, future stream-backed members). A member whose
	// transport fails is evicted, not recycled.
	tr Transport
}

// connTransport adapts an in-process ServerConn to Transport.
type connTransport struct{ conn *ServerConn }

func (t connTransport) RoundTrip(_ context.Context, request []byte) ([]byte, error) {
	return t.conn.Handle(request), nil
}

// NewPool creates a pool of at most max member connections over the
// server. max < 1 is treated as 1.
func NewPool(server *Server, max int) *Pool {
	if max < 1 {
		max = 1
	}
	return &Pool{
		server: server,
		stmts:  map[uint32]string{},
		idle:   make(chan *poolConn, max),
		max:    max,
	}
}

// Max returns the pool's connection cap.
func (p *Pool) Max() int { return p.max }

// SetMemberWrapper installs a decorator applied to every member
// connection's transport from now on — the fault-injection seam of the
// failover tests. Call it before the pool is in use.
func (p *Pool) SetMemberWrapper(wrap func(Transport) Transport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wrapMember = wrap
}

// send carries one frame over a member. Members with a wrapped
// transport can fail; the failure comes back as *ConnClosedError.
func (p *Pool) send(ctx context.Context, pc *poolConn, body []byte) ([]byte, error) {
	if pc.tr == nil {
		return pc.conn.Handle(body), nil
	}
	resp, err := pc.tr.RoundTrip(ctx, body)
	if err != nil {
		return nil, wrapTransportErr(ctx, err)
	}
	return resp, nil
}

// finish returns a member to the idle set — or, when its connection
// died, evicts it so the slot re-dials fresh instead of recycling a
// dead member.
func (p *Pool) finish(pc *poolConn, err error) {
	if err != nil && isConnClosed(err) {
		p.evict(pc)
		return
	}
	p.release(pc)
}

// evict drops a dead member: the created count frees its slot, so the
// next acquire creates a fresh connection in its place.
func (p *Pool) evict(pc *poolConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.created--
	for i, other := range p.conns {
		if other == pc {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
}

// Size returns the number of member connections created so far.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// TakeContention drains the contention the pool observed since the last
// drain: engine lock waits and snapshot/conflict counts of its member
// sessions, plus time callers spent waiting for a free connection
// (reported as lock-wait — the pool cap is a lock like any other).
// With several clients multiplexed over one pool the attribution to the
// draining client is approximate, but the totals are conserved.
func (p *Pool) TakeContention() minisql.ContentionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.pending
	p.pending = minisql.ContentionStats{}
	return st
}

// acquire checks out an idle member, creating one while under the cap.
// Waiting time is recorded as contention.
func (p *Pool) acquire(ctx context.Context) (*poolConn, error) {
	select {
	case pc := <-p.idle:
		return pc, nil
	default:
	}
	p.mu.Lock()
	if p.created < p.max {
		p.created++
		pc := &poolConn{conn: p.server.NewConn(), handles: map[uint32]uint32{}}
		if p.wrapMember != nil {
			pc.tr = p.wrapMember(connTransport{conn: pc.conn})
		}
		if p.capsSet {
			pc.conn.SetCaps(p.caps)
		}
		p.conns = append(p.conns, pc)
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	select {
	case pc := <-p.idle:
		p.mu.Lock()
		p.pending.LockWaitNanos += time.Since(start).Nanoseconds()
		p.mu.Unlock()
		return pc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *Pool) release(pc *poolConn) {
	// Drain the member session's contention while we still know which
	// request caused it.
	if st := pc.conn.TakeContention(); !st.IsZero() {
		p.mu.Lock()
		p.pending.Add(st)
		p.mu.Unlock()
	}
	p.idle <- pc
}

// RoundTrip implements Transport.
func (p *Pool) RoundTrip(ctx context.Context, request []byte) ([]byte, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if len(request) > 0 {
		switch request[0] {
		case TypeHello:
			return p.handleHello(ctx, request)
		case TypePrepare:
			return p.handlePrepare(request), nil
		case TypeClose:
			// Session teardown: pool handles are shared, nothing to drop.
			if err := DecodeClose(request); err != nil {
				return EncodeResponse(&Response{Err: fmt.Sprintf("bad close: %v", err)}), nil
			}
			return EncodeResponse(&Response{}), nil
		case TypeExecPrepared:
			req, err := DecodeExecPrepared(request)
			if err != nil {
				return EncodeResponse(&Response{Err: fmt.Sprintf("bad request: %v", err)}), nil
			}
			return p.execRemapped(ctx, []*Request{req}, func(pc *poolConn) ([]byte, error) {
				body := EncodeExec(req)
				defer putFrame(body)
				return p.send(ctx, pc, body)
			})
		case TypeBatch:
			reqs, err := DecodeBatch(request)
			if err != nil {
				return EncodeResponse(&Response{Err: fmt.Sprintf("bad batch: %v", err)}), nil
			}
			return p.execRemapped(ctx, reqs, func(pc *poolConn) ([]byte, error) {
				body := EncodeBatch(reqs)
				defer putFrame(body)
				return p.send(ctx, pc, body)
			})
		}
	}
	pc, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := p.send(ctx, pc, request)
	p.finish(pc, err)
	return resp, err
}

// handleHello negotiates once and answers every later hello with the
// pool-wide capability set.
func (p *Pool) handleHello(ctx context.Context, request []byte) ([]byte, error) {
	p.mu.Lock()
	if p.capsSet {
		caps := p.caps
		p.mu.Unlock()
		return EncodeHelloResp(caps), nil
	}
	p.mu.Unlock()
	pc, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := p.send(ctx, pc, request)
	p.finish(pc, err)
	if err != nil {
		return nil, err
	}
	if caps, err := DecodeHelloResp(resp); err == nil {
		p.mu.Lock()
		if !p.capsSet {
			p.caps = caps
			p.capsSet = true
			for _, other := range p.conns {
				if other != pc {
					other.conn.SetCaps(caps)
				}
			}
		}
		p.mu.Unlock()
	}
	return resp, nil
}

// handlePrepare registers the SQL under a fresh pool-level handle.
// Parsing here keeps the contract that syntax errors surface at prepare
// time even though no member connection has seen the statement yet.
func (p *Pool) handlePrepare(request []byte) []byte {
	sql, err := DecodePrepare(request)
	if err != nil {
		return EncodeResponse(&Response{Err: fmt.Sprintf("bad prepare: %v", err)})
	}
	if _, err := parser.Parse(sql); err != nil {
		return EncodeResponse(&Response{Err: err.Error()})
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	p.stmts[p.next] = sql
	return EncodePrepareResp(p.next)
}

// execRemapped checks out a member, makes sure it has prepared every
// pool handle the requests reference (rewriting them to the member's
// handles in place), and forwards via send.
func (p *Pool) execRemapped(ctx context.Context, reqs []*Request, send func(*poolConn) ([]byte, error)) ([]byte, error) {
	pc, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	for _, req := range reqs {
		if !req.Prepared {
			continue
		}
		h, err := p.connHandle(ctx, pc, req.Handle)
		if err != nil {
			p.finish(pc, err)
			if isConnClosed(err) {
				// The member died mid-prepare: it was evicted; surface
				// the connection loss instead of a server error frame.
				return nil, err
			}
			return EncodeResponse(&Response{Err: err.Error()}), nil
		}
		req.Handle = h
	}
	resp, err := send(pc)
	p.finish(pc, err)
	return resp, err
}

// connHandle resolves a pool handle to the member's own handle,
// preparing the statement on the member the first time (the lazy,
// pool-internal prepare costs no client round trip — the pool lives
// next to the server).
func (p *Pool) connHandle(ctx context.Context, pc *poolConn, poolHandle uint32) (uint32, error) {
	if h, ok := pc.handles[poolHandle]; ok {
		return h, nil
	}
	p.mu.Lock()
	sql, ok := p.stmts[poolHandle]
	p.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("no prepared statement with handle %d", poolHandle)
	}
	prep := EncodePrepare(sql)
	raw, err := p.send(ctx, pc, prep)
	putFrame(prep)
	if err != nil {
		return 0, err
	}
	resp, err := MaybeDecompress(raw)
	if err != nil {
		return 0, err
	}
	if !sameBuf(resp, raw) {
		putFrame(raw)
	}
	// The decoded handle (or error message) is all this exchange keeps.
	defer putFrame(resp)
	if len(resp) > 0 && resp[0] == TypeError {
		r, err := DecodeResponse(resp)
		if err != nil {
			return 0, err
		}
		return 0, &ServerError{Msg: r.Err}
	}
	h, err := DecodePrepareResp(resp)
	if err != nil {
		return 0, err
	}
	pc.handles[poolHandle] = h
	return h, nil
}
