package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

func TestCompressBodyRoundTripAndThreshold(t *testing.T) {
	big := bytes.Repeat([]byte("the state is released and the type is assy "), 100)
	z := CompressBody(big, 0)
	if z[0] != TypeCompressed {
		t.Fatal("large repetitive body not compressed")
	}
	if len(z) >= len(big) {
		t.Fatalf("compressed %d B >= original %d B", len(z), len(big))
	}
	orig, ok := CompressedOriginalSize(z)
	if !ok || orig != len(big) {
		t.Fatalf("CompressedOriginalSize = %d/%v, want %d/true", orig, ok, len(big))
	}
	back, err := MaybeDecompress(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, big) {
		t.Fatal("decompressed body differs")
	}

	// Below the threshold nothing happens.
	small := []byte("tiny")
	if got := CompressBody(small, 0); &got[0] != &small[0] {
		t.Fatal("small body must pass through unchanged")
	}
	// Incompressible bodies above the threshold stay uncompressed too.
	noise := make([]byte, 4096)
	for i := range noise {
		noise[i] = byte(i*2654435761 + i>>3) // cheap pseudo-noise
	}
	z = CompressBody(CompressBody(noise, 1), 1) // deflate output is incompressible
	if _, ok := CompressedOriginalSize(z); ok {
		// One level of compression is fine; the point is the inner call:
		// compressing the already-deflated body must not wrap again
		// unless it actually shrank.
		inner, err := MaybeDecompress(z)
		if err != nil {
			t.Fatal(err)
		}
		if len(z) >= len(inner) {
			t.Fatalf("wrapper grew the body: %d >= %d", len(z), len(inner))
		}
	}
	// Non-compressed bodies pass through MaybeDecompress untouched.
	plain := EncodeResponse(&Response{Cols: []string{"a"}})
	back, err = MaybeDecompress(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("plain frame must pass through")
	}
}

func TestMaybeDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{TypeCompressed},
		{TypeCompressed, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // size > MaxFrameSize
		{TypeCompressed, 10, 1, 2, 3}, // garbage deflate stream
	}
	for _, b := range cases {
		if _, err := MaybeDecompress(b); err == nil {
			t.Errorf("corrupt compressed frame %v must fail", b)
		}
	}
	// A stream inflating to more than its recorded size must fail.
	var buf bytes.Buffer
	buf.Write(CompressBody(bytes.Repeat([]byte("x"), 1000), 1))
	lying := append([]byte{TypeCompressed, 5}, buf.Bytes()[2:]...)
	if _, err := MaybeDecompress(lying); err == nil {
		t.Error("size-lying compressed frame must fail")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	want := Caps{Columnar: true, Compress: true, CompressThreshold: 4096}
	got, err := DecodeHello(EncodeHello(want))
	if err != nil || got != want {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	got, err = DecodeHelloResp(EncodeHelloResp(Caps{Compress: true}))
	if err != nil || got.Compress != true || got.Columnar != false {
		t.Fatalf("hello resp round trip: %+v, %v", got, err)
	}
	if _, err := DecodeHello([]byte{TypeHelloResp, 0}); err == nil {
		t.Fatal("wrong tag must fail")
	}
}

// newTestConn builds a server connection over a populated table and a
// metered client speaking to it.
func newTestConn(t *testing.T, rows int) (*ServerConn, *Client, *netsim.Meter) {
	t.Helper()
	db := minisql.NewDB()
	conn := NewServer(db).NewConn()
	meter := netsim.NewMeter(netsim.Link{LatencySec: 0.1, RateKbps: 256, PacketBytes: 4096, ExactBytes: true})
	client := NewClient(&MeteredChannel{Conn: conn, Meter: meter})
	ctx := context.Background()
	if _, err := client.Exec(ctx, "CREATE TABLE obj (id INTEGER, typ TEXT, state TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		_, err := client.Exec(ctx, "INSERT INTO obj VALUES (?, ?, ?)",
			types.NewInt(int64(1000+i)), types.NewText("assy"), types.NewText("released"))
		if err != nil {
			t.Fatal(err)
		}
	}
	return conn, client, meter
}

// TestNegotiatedCompressionEndToEnd negotiates columnar + deflate and
// checks that (a) the decoded result is identical to an un-negotiated
// session's, (b) the meter charges the post-compression volume and
// reports the saving.
func TestNegotiatedCompressionEndToEnd(t *testing.T) {
	ctx := context.Background()
	_, plainClient, plainMeter := newTestConn(t, 500)
	plainMeter.Reset()
	want, err := plainClient.Exec(ctx, "SELECT id, typ, state FROM obj ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	plainDown := plainMeter.Metrics.ResponseBytes
	if plainMeter.Metrics.CompressedFrames != 0 {
		t.Fatal("un-negotiated session saw compressed frames")
	}

	conn, client, meter := newTestConn(t, 500)
	caps, err := client.Negotiate(ctx, Caps{Columnar: true, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Columnar || !caps.Compress || caps.CompressThreshold != DefaultCompressThreshold {
		t.Fatalf("negotiated caps = %+v", caps)
	}
	if conn.Caps() != caps {
		t.Fatalf("server caps %+v != client view %+v", conn.Caps(), caps)
	}
	meter.Reset()
	got, err := client.Exec(ctx, "SELECT id, typ, state FROM obj ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	respEqual(t, got, want)
	m := meter.Metrics
	if m.CompressedFrames != 1 {
		t.Fatalf("CompressedFrames = %d, want 1", m.CompressedFrames)
	}
	if m.ResponseBytesSaved <= 0 {
		t.Fatalf("ResponseBytesSaved = %.0f, want > 0", m.ResponseBytesSaved)
	}
	if m.ResponseBytes*5 > plainDown {
		t.Fatalf("negotiated response volume %.0f B not 5x below plain %.0f B", m.ResponseBytes, plainDown)
	}
}

// TestNegotiatedBatchAndPrepared drives the batch and prepared
// sub-frame paths under the negotiated encodings.
func TestNegotiatedBatchAndPrepared(t *testing.T) {
	ctx := context.Background()
	_, client, meter := newTestConn(t, 300)
	if _, err := client.Negotiate(ctx, Caps{Columnar: true, Compress: true}); err != nil {
		t.Fatal(err)
	}
	h, err := client.Prepare(ctx, "SELECT id, typ FROM obj WHERE id >= ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	meter.Reset()
	resps, err := client.ExecBatch(ctx, []*Request{
		{SQL: "SELECT id, typ, state FROM obj ORDER BY id"},
		{Prepared: true, Handle: h, Params: []types.Value{types.NewInt(1000)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 || len(resps[0].Rows) != 300 || len(resps[1].Rows) != 300 {
		t.Fatalf("batch under negotiated encodings: %d resps", len(resps))
	}
	if resps[0].Rows[0][1].Text() != "assy" {
		t.Fatalf("decoded row: %v", resps[0].Rows[0])
	}
	if meter.Metrics.CompressedFrames != 1 {
		t.Fatalf("CompressedFrames = %d, want 1 (the batch response)", meter.Metrics.CompressedFrames)
	}
	// And a prepared exec outside the batch.
	resp, err := client.ExecPrepared(ctx, h, types.NewInt(1100))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 200 {
		t.Fatalf("prepared exec rows = %d, want 200", len(resp.Rows))
	}
}

// TestNegotiateAgainstLegacyServer: a transport whose server answers
// hello with an error frame degrades to the zero capability set.
func TestNegotiateAgainstLegacyServer(t *testing.T) {
	legacy := transportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return EncodeResponse(&Response{Err: fmt.Sprintf("bad request: unknown frame %d", req[0])}), nil
	})
	caps, err := NewClient(legacy).Negotiate(context.Background(), Caps{Columnar: true, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if caps != (Caps{}) {
		t.Fatalf("legacy negotiation must yield zero caps, got %+v", caps)
	}
}

type transportFunc func(ctx context.Context, req []byte) ([]byte, error)

func (f transportFunc) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	return f(ctx, req)
}

// TestOversizedResponseReturnsErrorFrame is the regression test for the
// server write path: a response exceeding the frame-size limit must
// come back as a structured TypeError frame carrying the
// FrameTooLargeError message — not kill the connection — and the
// connection must keep serving afterwards.
func TestOversizedResponseReturnsErrorFrame(t *testing.T) {
	conn, client, _ := newTestConn(t, 2000)
	conn.MaxResponseBytes = 1 << 12
	ctx := context.Background()

	_, err := client.Exec(ctx, "SELECT id, typ, state FROM obj")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("oversized response: got %v, want *ServerError", err)
	}
	if !strings.Contains(se.Msg, "exceeds the 4096 byte limit") {
		t.Fatalf("diagnostic %q does not carry the FrameTooLargeError message", se.Msg)
	}
	// The connection survives: a small statement still answers.
	resp, err := client.Exec(ctx, "SELECT COUNT(*) FROM obj")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows[0][0].Int() != 2000 {
		t.Fatalf("count after oversized response = %v", resp.Rows[0][0])
	}
	// With negotiated compression the same result fits again — the
	// limit applies post-compression.
	if _, err := client.Negotiate(ctx, Caps{Columnar: true, Compress: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Exec(ctx, "SELECT id, typ, state FROM obj"); err != nil {
		t.Fatalf("compressed result should fit under the limit: %v", err)
	}
}

// TestOversizedResponseOverStream drives the same bugfix through the
// framed Serve loop: before the fix WriteFrame failed server-side and
// the stream died with no client-readable diagnostic.
func TestOversizedResponseOverStream(t *testing.T) {
	db := minisql.NewDB()
	conn := NewServer(db).NewConn()
	conn.MaxResponseBytes = 1 << 12

	cliEnd, srvEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- conn.Serve(srvEnd) }()

	client := NewClient(&StreamChannel{Stream: cliEnd})
	ctx := context.Background()
	if _, err := client.Exec(ctx, "CREATE TABLE t (a TEXT)"); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("y", 256)
	for i := 0; i < 64; i++ {
		if _, err := client.Exec(ctx, "INSERT INTO t VALUES (?)", types.NewText(big)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := client.Exec(ctx, "SELECT a FROM t")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("oversized response over stream: got %v, want *ServerError", err)
	}
	// The loop is still alive.
	resp, err := client.Exec(ctx, "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows[0][0].Int() != 64 {
		t.Fatalf("count after oversized response = %v", resp.Rows[0][0])
	}
	cliEnd.Close()
	if err := <-done; err != nil && err.Error() != "io: read/write on closed pipe" {
		t.Logf("server loop ended: %v", err)
	}
}

// TestDecodeAllocationBombs pins the review findings: small hostile
// frames claiming huge logical sizes must be rejected (or served
// incrementally) without multi-gigabyte allocations.
func TestDecodeAllocationBombs(t *testing.T) {
	// A ~20 KB columnar frame declaring 5000 columns and a row count
	// that individually passes a per-column bound but multiplies out to
	// billions of cells.
	bomb := []byte{TypeResultV2}
	bomb = appendUint64(bomb, 0)
	bomb = appendUint32(bomb, 0)
	bomb = appendUint32(bomb, 5000)
	for i := 0; i < 5000; i++ {
		bomb = appendString(bomb, "c")
	}
	bomb = appendUint32(bomb, 800000)
	bomb = append(bomb, make([]byte, 1024)...)
	done := make(chan error, 1)
	go func() {
		_, err := DecodeResponse(bomb)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rows-x-cols allocation bomb decoded without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rows-x-cols allocation bomb: decode did not return promptly")
	}

	// A tiny compressed frame claiming a 1 GB original size must not
	// pre-allocate it; the stream runs dry immediately and the length
	// check fails.
	lying := []byte{TypeCompressed}
	lying = append(lying, binary.AppendUvarint(nil, 1<<30)...)
	lying = append(lying, 1, 2, 3)
	if _, err := MaybeDecompress(lying); err == nil {
		t.Fatal("size-lying giant compressed frame must fail")
	}
}

// TestNegativeCompressionThreshold: a negative threshold means "wire
// default", and must not wrap into a threshold that silently disables
// compression.
func TestNegativeCompressionThreshold(t *testing.T) {
	caps, err := DecodeHello(EncodeHello(Caps{Compress: true, CompressThreshold: -1}))
	if err != nil {
		t.Fatal(err)
	}
	if caps.CompressThreshold != 0 {
		t.Fatalf("negative threshold encoded as %d, want 0 (wire default)", caps.CompressThreshold)
	}
	// A threshold beyond 4 GiB must not truncate into a tiny one that
	// compresses everything; it caps at "never compress".
	caps, err = DecodeHello(EncodeHello(Caps{Compress: true, CompressThreshold: (1 << 32) + 64}))
	if err != nil {
		t.Fatal(err)
	}
	if caps.CompressThreshold != MaxFrameSize {
		t.Fatalf("huge threshold encoded as %d, want cap at MaxFrameSize", caps.CompressThreshold)
	}
	conn, client, meter := newTestConn(t, 500)
	if _, err := client.Negotiate(context.Background(), Caps{Columnar: true, Compress: true, CompressThreshold: -1}); err != nil {
		t.Fatal(err)
	}
	if conn.Caps().CompressThreshold != DefaultCompressThreshold {
		t.Fatalf("server threshold = %d, want default %d", conn.Caps().CompressThreshold, DefaultCompressThreshold)
	}
	meter.Reset()
	if _, err := client.Exec(context.Background(), "SELECT id, typ, state FROM obj"); err != nil {
		t.Fatal(err)
	}
	if meter.Metrics.CompressedFrames != 1 {
		t.Fatalf("compression silently disabled: %d compressed frames", meter.Metrics.CompressedFrames)
	}
}
