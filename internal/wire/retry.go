package wire

import (
	"sync"
	"time"

	"pdmtune/internal/netsim"
)

// RetryPolicy configures transparent retries of idempotent exchanges
// on connection loss (*ConnClosedError): pure reads, validates, syncs,
// prepares and handshakes. Writes are NEVER retried by this layer — a
// dead connection cannot tell "the write never arrived" from "the ack
// got lost", and a re-sent check-out could double-apply. Backoff is
// capped exponential with deterministic jitter, so a simulated test
// replays the exact same schedule every run.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts including the first (<= 1
	// disables retries; 0 selects the default of 4).
	MaxAttempts int
	// BaseDelay is the first retry's backoff (default 5ms); MaxDelay
	// caps the exponential growth (default 100ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the deterministic jitter sequence.
	Seed uint64
	// Sleep replaces time.Sleep (tests inject a no-op or a recorder).
	Sleep func(time.Duration)
	// Meter receives the Retries / RetryGiveUps counters (may be nil).
	Meter *netsim.Meter

	mu  sync.Mutex
	rng uint64
}

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts == 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff returns the delay before retry number n (1-based): base·2ⁿ⁻¹
// capped at MaxDelay, plus jitter in [0, delay/2).
func (p *RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 100 * time.Millisecond
	}
	d := base << uint(n-1)
	if d <= 0 || d > maxd {
		d = maxd
	}
	if half := d / 2; half > 0 {
		d += time.Duration(p.next() % uint64(half))
	}
	return d
}

// next steps the policy's xorshift jitter sequence — deterministic for
// a given Seed, independent of the global math/rand state.
func (p *RetryPolicy) next() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == 0 {
		p.rng = p.Seed | 0x9e3779b97f4a7c15
	}
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x
}

func (p *RetryPolicy) countRetry() {
	if p.Meter != nil {
		p.Meter.CountRetry(1)
	}
}

func (p *RetryPolicy) countGiveUp() {
	if p.Meter != nil {
		p.Meter.CountRetryGiveUp(1)
	}
}
