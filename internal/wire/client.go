package wire

import (
	"fmt"
	"io"

	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

// frameOverhead is the per-frame length prefix charged on the wire.
const frameOverhead = 4

// Channel transports one encoded request and returns the encoded
// response — the client's only view of the network.
type Channel interface {
	RoundTrip(request []byte) (response []byte, err error)
}

// Client issues SQL over a channel.
type Client struct {
	ch Channel
}

// NewClient wraps a channel.
func NewClient(ch Channel) *Client { return &Client{ch: ch} }

// Exec ships one statement and decodes the server's answer. Server-side
// SQL errors come back as *ServerError.
func (c *Client) Exec(sql string, params ...types.Value) (*Response, error) {
	req := EncodeRequest(&Request{SQL: sql, Params: params})
	respBody, err := c.ch.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(respBody)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &ServerError{Msg: resp.Err}
	}
	return resp, nil
}

// ServerError is an SQL error reported by the server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// ---------------------------------------------------------------------------
// channel implementations

// MeteredChannel executes requests against an in-process server
// connection while charging every round trip to a WAN meter — the
// deterministic simulation path used by all experiments.
type MeteredChannel struct {
	Conn  *ServerConn
	Meter *netsim.Meter
}

// RoundTrip dispatches in-process and charges request/response sizes
// (payload plus length prefix) to the meter.
func (mc *MeteredChannel) RoundTrip(request []byte) ([]byte, error) {
	response := mc.Conn.Handle(request)
	if mc.Meter != nil {
		mc.Meter.RoundTrip(len(request)+frameOverhead, len(response)+frameOverhead)
	}
	return response, nil
}

// StreamChannel speaks the framed protocol over a real stream (TCP or
// net.Pipe), for the interactive demo binaries.
type StreamChannel struct {
	Stream io.ReadWriter
}

// RoundTrip writes one frame and reads one frame.
func (sc *StreamChannel) RoundTrip(request []byte) ([]byte, error) {
	if err := WriteFrame(sc.Stream, request); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	body, err := ReadFrame(sc.Stream)
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	return body, nil
}
