package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

// frameOverhead is the per-frame length prefix charged on the wire.
const frameOverhead = 4

// Transport carries one encoded request and returns the encoded
// response — the client's only view of the network. Implementations
// must honor the context: a cancelled or expired ctx aborts the round
// trip with ctx.Err() and charges nothing, so a multi-minute simulated
// expand (or a real TCP call) can be cut short between round trips.
type Transport interface {
	RoundTrip(ctx context.Context, request []byte) (response []byte, err error)
}

// Channel is the transport's former name.
//
// Deprecated: use Transport.
type Channel = Transport

// Client issues SQL over a transport.
type Client struct {
	tr Transport
	// trGen counts SetTransport swaps, so a caller that snapshotted the
	// client before a failover can tell "same client, new destination".
	trGen uint64

	// term stamps write and sync frames with the cluster fencing term
	// (nil/ok=false: no envelope — the site-less wire format is
	// byte-identical to the pre-failover protocol).
	term TermSource
	// retry transparently retries idempotent exchanges on connection
	// loss (nil: no retries).
	retry *RetryPolicy

	// mu guards the transport pointer and the read-only handle registry
	// below (a client is normally single-goroutine, but site pull
	// clients are shared by every session syncing through the site, and
	// a failover swaps transports from the cluster's goroutine).
	mu sync.Mutex
	// readOnlyHandles records, per prepared handle, whether the
	// statement is a pure read — the client-side classification that
	// decides fencing envelopes and retry eligibility for prepared
	// executions.
	readOnlyHandles map[uint32]bool
}

// NewClient wraps a transport.
func NewClient(tr Transport) *Client { return &Client{tr: tr} }

// SetTermSource makes the client stamp its write and sync frames with
// the cluster fencing term the source reports. Reads stay unwrapped.
func (c *Client) SetTermSource(ts TermSource) { c.term = ts }

// SetRetry installs a retry policy for idempotent exchanges (nil
// disables retries). Call before the client is in use.
func (c *Client) SetRetry(p *RetryPolicy) { c.retry = p }

// SetTransport swaps the transport under the client — a failover
// re-routes a deposed primary's sessions this way. Safe to call from
// another goroutine: in-flight round trips finish on the transport
// they started with; the next exchange uses the new one. Prepared
// handles are connection-scoped, so callers that swap servers must
// drop their handle caches and re-prepare.
func (c *Client) SetTransport(tr Transport) {
	c.mu.Lock()
	c.tr = tr
	c.trGen++
	c.mu.Unlock()
}

// TransportGen reports how many times the transport has been swapped.
// Comparing generations across a write attempt tells a caller whether
// a fenced frame now has somewhere new to go.
func (c *Client) TransportGen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trGen
}

// transport snapshots the current transport for one round-trip attempt.
func (c *Client) transport() Transport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tr
}

// Exec ships one statement and decodes the server's answer. Server-side
// SQL errors come back as *ServerError.
func (c *Client) Exec(ctx context.Context, sql string, params ...types.Value) (*Response, error) {
	return c.exec(ctx, &Request{SQL: sql, Params: params})
}

// ExecPrepared ships one execution of a previously prepared statement:
// handle plus parameters, no SQL text.
func (c *Client) ExecPrepared(ctx context.Context, handle uint32, params ...types.Value) (*Response, error) {
	return c.exec(ctx, &Request{Prepared: true, Handle: handle, Params: params})
}

// roundTrip ships one encoded request and returns the response body
// with any negotiated deflate wrapper already removed — decompression
// happens after the transport (and its meter) saw the compressed size,
// so the charged volume is the post-compression one.
//
// idempotent marks exchanges that are safe to re-send after a
// connection loss (reads, validates, syncs, prepares, handshakes);
// with a retry policy installed those are retried with capped backoff.
// Transport failures surface as *ConnClosedError, fence refusals as
// *FencedError.
func (c *Client) roundTrip(ctx context.Context, body []byte, idempotent bool) ([]byte, error) {
	if err := CheckFrameSize(body); err != nil {
		putFrame(body)
		return nil, err
	}
	respBody, err := c.send(ctx, body, idempotent)
	// The request frame is dead once the round trip returns: every
	// transport in this package hands it off synchronously (in-process
	// dispatch copies what it keeps; streams write it out).
	putFrame(body)
	if err != nil {
		return nil, err
	}
	plain, err := MaybeDecompress(respBody)
	if err != nil {
		return nil, err
	}
	if !sameBuf(plain, respBody) {
		// Inflation produced a new body; the compressed envelope recycles.
		putFrame(respBody)
	}
	if len(plain) > 0 && plain[0] == TypeFencedResp {
		fe, err := DecodeFencedResp(plain)
		putFrame(plain)
		if err != nil {
			return nil, err
		}
		return nil, fe
	}
	return plain, nil
}

// send performs the transport round trip, wraps raw transport failures
// in *ConnClosedError, and — for idempotent exchanges under a retry
// policy — re-sends on connection loss with capped backoff.
func (c *Client) send(ctx context.Context, body []byte, idempotent bool) ([]byte, error) {
	respBody, err := c.transport().RoundTrip(ctx, body)
	err = wrapTransportErr(ctx, err)
	if err == nil || !idempotent || c.retry == nil || !isConnClosed(err) {
		return respBody, err
	}
	p := c.retry
	for attempt := 1; attempt < p.maxAttempts(); attempt++ {
		p.countRetry()
		p.sleep(p.backoff(attempt))
		if ctx != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
		}
		respBody, err = c.transport().RoundTrip(ctx, body)
		err = wrapTransportErr(ctx, err)
		if err == nil || !isConnClosed(err) {
			return respBody, err
		}
	}
	p.countGiveUp()
	return nil, err
}

// wrapTransportErr normalizes a transport failure: context
// cancellations and structured wire errors pass through, anything else
// — a dead stream, an injected fault — becomes *ConnClosedError so
// callers can errors.As on one type.
func wrapTransportErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if ctx != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
	}
	var (
		cce *ConnClosedError
		fte *FrameTooLargeError
	)
	if errors.As(err, &cce) || errors.As(err, &fte) {
		return err
	}
	return &ConnClosedError{Err: err}
}

func isConnClosed(err error) bool {
	var cce *ConnClosedError
	return errors.As(err, &cce)
}

// fenceWrite wraps an encoded frame in the fencing-term envelope when
// the client has a term source and the frame is a write (or sync).
func (c *Client) fenceWrite(body []byte) []byte {
	if c.term == nil {
		return body
	}
	term, ok := c.term()
	if !ok {
		return body
	}
	return EncodeFenced(term, body)
}

// readOnlyHandle reports the read/write class recorded for a prepared
// handle (unknown handles classify as writes, the safe direction).
func (c *Client) readOnlyHandle(h uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readOnlyHandles[h]
}

func (c *Client) recordHandle(h uint32, readOnly bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readOnlyHandles == nil {
		c.readOnlyHandles = map[uint32]bool{}
	}
	c.readOnlyHandles[h] = readOnly
}

// readOnlyRequest classifies one request as a pure read.
func (c *Client) readOnlyRequest(req *Request) bool {
	if req.Prepared {
		return c.readOnlyHandle(req.Handle)
	}
	return ReadOnlySQL(req.SQL)
}

// Negotiate performs the session-open capability handshake: the wanted
// capabilities travel up, the server's accepted set comes back. A
// server that predates the hello frame answers with an error frame;
// that degrades gracefully to the zero capability set (v1 results,
// no compression) instead of failing the session.
func (c *Client) Negotiate(ctx context.Context, want Caps) (Caps, error) {
	respBody, err := c.roundTrip(ctx, EncodeHello(want), true)
	if err != nil {
		return Caps{}, err
	}
	// Decoding copies every string and value it keeps, so the response
	// body recycles once this call returns.
	defer putFrame(respBody)
	if len(respBody) > 0 && respBody[0] == TypeError {
		return Caps{}, nil
	}
	return DecodeHelloResp(respBody)
}

func (c *Client) exec(ctx context.Context, req *Request) (*Response, error) {
	readOnly := c.readOnlyRequest(req)
	body := EncodeExec(req)
	if !readOnly {
		body = c.fenceWrite(body)
	}
	respBody, err := c.roundTrip(ctx, body, readOnly)
	if err != nil {
		return nil, err
	}
	defer putFrame(respBody)
	resp, err := DecodeResponse(respBody)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &ServerError{Msg: resp.Err}
	}
	return resp, nil
}

// Prepare ships a statement's SQL text once and returns the server-side
// handle for later ExecPrepared calls on this connection.
func (c *Client) Prepare(ctx context.Context, sql string) (uint32, error) {
	respBody, err := c.roundTrip(ctx, EncodePrepare(sql), true)
	if err != nil {
		return 0, err
	}
	defer putFrame(respBody)
	if len(respBody) > 0 && respBody[0] == TypeError {
		resp, err := DecodeResponse(respBody)
		if err != nil {
			return 0, err
		}
		return 0, &ServerError{Msg: resp.Err}
	}
	h, err := DecodePrepareResp(respBody)
	if err != nil {
		return 0, err
	}
	c.recordHandle(h, ReadOnlySQL(sql))
	return h, nil
}

// Validate ships one stale-check exchange: (id, since-epoch) pairs up,
// the stale subset of the ids back. A client-side structure cache uses
// it to revalidate a whole cached tree in one small round trip instead
// of re-fetching the node records.
func (c *Client) Validate(ctx context.Context, checks []StaleCheck) ([]int64, error) {
	if len(checks) == 0 {
		return nil, nil
	}
	respBody, err := c.roundTrip(ctx, EncodeValidate(checks), true)
	if err != nil {
		return nil, err
	}
	defer putFrame(respBody)
	if len(respBody) > 0 && respBody[0] == TypeError {
		resp, err := DecodeResponse(respBody)
		if err != nil {
			return nil, err
		}
		return nil, &ServerError{Msg: resp.Err}
	}
	return DecodeValidateResp(respBody)
}

// Sync pulls the replication delta above the given epoch: the primary
// answers with every row modified after it (full rows keyed by version
// key) plus the version stamps the replica's log needs to mirror the
// primary's. One round trip regardless of delta size.
func (c *Client) Sync(ctx context.Context, since uint64) (*storage.Delta, error) {
	return c.SyncFrom(ctx, since, "")
}

// SyncFrom is Sync with a site identity: a primary with a subscription
// filter for the named site answers a partial, subscription-bounded
// delta (Delta.Partial) instead of the full one. An empty site — or a
// server without a filter — pulls the full delta exactly as before.
func (c *Client) SyncFrom(ctx context.Context, since uint64, site string) (*storage.Delta, error) {
	// A sync is fenced like a write — only the current primary may
	// serve it — but re-pulling a delta is idempotent, so it retries.
	respBody, err := c.roundTrip(ctx, c.fenceWrite(EncodeSyncFrom(since, site)), true)
	if err != nil {
		return nil, err
	}
	defer putFrame(respBody)
	if len(respBody) > 0 && respBody[0] == TypeError {
		resp, err := DecodeResponse(respBody)
		if err != nil {
			return nil, err
		}
		return nil, &ServerError{Msg: resp.Err}
	}
	return DecodeSyncResp(respBody)
}

// Close releases the connection's server-side session state (the
// prepared-statement registry) in one teardown round trip.
func (c *Client) Close(ctx context.Context) error {
	respBody, err := c.roundTrip(ctx, EncodeClose(), true)
	if err != nil {
		return err
	}
	defer putFrame(respBody)
	resp, err := DecodeResponse(respBody)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return &ServerError{Msg: resp.Err}
	}
	return nil
}

// ExecBatch ships N statements in one round trip and returns one
// response per executed statement. Requests may mix SQL text and
// prepared executions. The server executes in order and stops at the
// first failing statement; in that case the responses of the statements
// that did execute are returned together with a *BatchError naming the
// failed index. An empty batch is a no-op that costs nothing.
func (c *Client) ExecBatch(ctx context.Context, reqs []*Request) ([]*Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	readOnly := true
	for _, req := range reqs {
		if !c.readOnlyRequest(req) {
			readOnly = false
			break
		}
	}
	body := EncodeBatch(reqs)
	if !readOnly {
		body = c.fenceWrite(body)
	}
	respBody, err := c.roundTrip(ctx, body, readOnly)
	if err != nil {
		return nil, err
	}
	defer putFrame(respBody)
	// A server that could not decode the batch at all answers with a
	// plain error frame; surface its diagnostic instead of a frame-type
	// mismatch.
	if len(respBody) > 0 && respBody[0] == TypeError {
		resp, err := DecodeResponse(respBody)
		if err != nil {
			return nil, err
		}
		return nil, &ServerError{Msg: resp.Err}
	}
	resps, err := DecodeBatchResponse(respBody)
	if err != nil {
		return nil, err
	}
	if n := len(resps); n > 0 && resps[n-1].Err != "" {
		return resps[:n-1], &BatchError{Index: n - 1, Msg: resps[n-1].Err}
	}
	return resps, nil
}

// Status performs one health-probe exchange: the server answers with
// its fencing term, role and database epoch. The probe is idempotent
// and retried like any read.
func (c *Client) Status(ctx context.Context) (Status, error) {
	respBody, err := c.roundTrip(ctx, EncodeStatus(), true)
	if err != nil {
		return Status{}, err
	}
	defer putFrame(respBody)
	if len(respBody) > 0 && respBody[0] == TypeError {
		resp, err := DecodeResponse(respBody)
		if err != nil {
			return Status{}, err
		}
		return Status{}, &ServerError{Msg: resp.Err}
	}
	return DecodeStatusResp(respBody)
}

// ServerError is an SQL error reported by the server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// BatchError is an SQL error that stopped a batch: statement Index
// failed, statements before it executed, statements after it never ran.
type BatchError struct {
	Index int
	Msg   string
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("server: batch statement %d: %s", e.Index, e.Msg)
}

// ---------------------------------------------------------------------------
// transport implementations

// frameAccountant charges completed exchanges to a meter and learns the
// SQL text length behind each prepared handle from the prepare
// exchanges it sees go by — metering needs no cooperation from the
// client. It is shared by every metered transport so the accounting
// cannot diverge between the simulation and real wrappers.
type frameAccountant struct {
	meter  *netsim.Meter
	sqlLen map[uint32]int
}

func (fa *frameAccountant) account(request, response []byte) {
	if fa.meter != nil {
		// Classification looks through the fencing envelope — a fenced
		// batch is still a batch — while the charged lengths stay the
		// full on-wire frame, envelope included.
		inner := FencedInner(request)
		switch {
		case len(inner) > 0 && inner[0] == TypeValidate:
			// A validate exchange is a round trip but not a statement:
			// it is the cache's revalidation cost, accounted apart.
			fa.meter.RoundTripValidate(len(request)+frameOverhead, len(response)+frameOverhead)
		case len(inner) > 0 && inner[0] == TypeSync:
			// A replication pull: one round trip, no statements — the
			// delta volume is the replication cost the site meter reports.
			fa.meter.RoundTripSync(len(request)+frameOverhead, len(response)+frameOverhead)
		case len(inner) > 0 && (inner[0] == TypeHello || inner[0] == TypeClose || inner[0] == TypeStatus):
			// The capability handshake, session teardown and health
			// probes are round trips carrying zero statements.
			fa.meter.RoundTripFrames(len(request)+frameOverhead, len(response)+frameOverhead, 0, 0, 0)
		default:
			stats := ScanFrame(inner, fa.sqlLen)
			fa.meter.RoundTripFrames(len(request)+frameOverhead, len(response)+frameOverhead,
				stats.Statements, stats.PreparedExecs, stats.SavedRequestBytes)
		}
		// The response arrives (and is charged) post-compression; the
		// recorded original size is what the deflate wrapper saved.
		if orig, ok := CompressedOriginalSize(response); ok {
			fa.meter.CountCompression(1, float64(orig-len(response)))
		}
	}
	if len(request) > 0 && request[0] == TypePrepare {
		if resp, err := MaybeDecompress(response); err == nil {
			if !sameBuf(resp, response) {
				defer putFrame(resp)
			}
			if sql, err := DecodePrepare(request); err == nil {
				if h, err := DecodePrepareResp(resp); err == nil {
					if fa.sqlLen == nil {
						fa.sqlLen = map[uint32]int{}
					}
					fa.sqlLen[h] = len(sql)
				}
			}
		}
	}
}

// ContentionSource is the optional side interface of transports and
// connections that can report server-side contention (engine lock
// waits, snapshots opened, write conflicts). Metered wrappers drain it
// after every round trip into the meter, which is how contention
// becomes part of a session's netsim metrics.
type ContentionSource interface {
	TakeContention() minisql.ContentionStats
}

// countContention folds drained contention stats into a meter.
func countContention(meter *netsim.Meter, st minisql.ContentionStats) {
	if meter == nil || st.IsZero() {
		return
	}
	meter.CountContention(st.LockWaitNanos, st.SnapshotsStarted, st.WriteConflicts)
	if st.PlanHits != 0 || st.PlanMisses != 0 {
		meter.CountPlans(st.PlanHits, st.PlanMisses)
	}
}

// MeteredChannel executes requests against an in-process server
// connection while charging every round trip to a WAN meter — the
// deterministic simulation path used by all experiments.
type MeteredChannel struct {
	Conn  *ServerConn
	Meter *netsim.Meter

	fa frameAccountant
}

// RoundTrip dispatches in-process and charges request/response sizes
// (payload plus length prefix) to the meter. Batch frames are charged as
// one round trip carrying many statements; prepared executions are
// additionally credited with the SQL text bytes they did not re-ship.
// A cancelled context aborts before dispatch: only round trips that
// actually happened are charged.
func (mc *MeteredChannel) RoundTrip(ctx context.Context, request []byte) ([]byte, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	response := mc.Conn.Handle(request)
	mc.fa.meter = mc.Meter
	mc.fa.account(request, response)
	countContention(mc.Meter, mc.Conn.TakeContention())
	return response, nil
}

// StreamChannel speaks the framed protocol over a real stream (TCP or
// net.Pipe), for the interactive demo binaries.
type StreamChannel struct {
	Stream io.ReadWriter
}

// deadliner is the optional deadline surface of net.Conn streams.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// RoundTrip writes one frame and reads one frame. A context deadline is
// forwarded to the stream when it supports one (net.Conn does) — and
// cleared again when the context carries none, so a deadline armed by
// an earlier call cannot leak into later exchanges. A context cancelled
// or expired during the exchange surfaces as ctx.Err().
func (sc *StreamChannel) RoundTrip(ctx context.Context, request []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if d, ok := sc.Stream.(deadliner); ok {
		deadline, _ := ctx.Deadline() // zero time when none: clears any previous deadline
		if err := d.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("wire: set deadline: %w", err)
		}
	}
	if err := WriteFrame(sc.Stream, request); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	body, err := ReadFrame(sc.Stream)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	return body, nil
}

// Metered wraps any transport so its exchanges are charged to a WAN
// meter — e.g. to account real TCP round trips with the same Metrics
// the simulation produces.
func Metered(inner Transport, meter *netsim.Meter) Transport {
	return &meteredTransport{inner: inner, fa: frameAccountant{meter: meter}}
}

type meteredTransport struct {
	inner Transport
	fa    frameAccountant
}

func (m *meteredTransport) RoundTrip(ctx context.Context, request []byte) ([]byte, error) {
	response, err := m.inner.RoundTrip(ctx, request)
	if err != nil {
		return nil, err
	}
	m.fa.account(request, response)
	if cs, ok := m.inner.(ContentionSource); ok {
		countContention(m.fa.meter, cs.TakeContention())
	}
	return response, nil
}
