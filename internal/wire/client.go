package wire

import (
	"fmt"
	"io"

	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

// frameOverhead is the per-frame length prefix charged on the wire.
const frameOverhead = 4

// Channel transports one encoded request and returns the encoded
// response — the client's only view of the network.
type Channel interface {
	RoundTrip(request []byte) (response []byte, err error)
}

// Client issues SQL over a channel.
type Client struct {
	ch Channel
}

// NewClient wraps a channel.
func NewClient(ch Channel) *Client { return &Client{ch: ch} }

// Exec ships one statement and decodes the server's answer. Server-side
// SQL errors come back as *ServerError.
func (c *Client) Exec(sql string, params ...types.Value) (*Response, error) {
	req := EncodeRequest(&Request{SQL: sql, Params: params})
	if err := CheckFrameSize(req); err != nil {
		return nil, err
	}
	respBody, err := c.ch.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(respBody)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &ServerError{Msg: resp.Err}
	}
	return resp, nil
}

// ExecBatch ships N statements in one round trip and returns one
// response per executed statement. The server executes in order and
// stops at the first failing statement; in that case the responses of
// the statements that did execute are returned together with a
// *BatchError naming the failed index. An empty batch is a no-op that
// costs nothing.
func (c *Client) ExecBatch(reqs []*Request) ([]*Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	body := EncodeBatch(reqs)
	if err := CheckFrameSize(body); err != nil {
		return nil, err
	}
	respBody, err := c.ch.RoundTrip(body)
	if err != nil {
		return nil, err
	}
	// A server that could not decode the batch at all answers with a
	// plain error frame; surface its diagnostic instead of a frame-type
	// mismatch.
	if len(respBody) > 0 && respBody[0] == TypeError {
		resp, err := DecodeResponse(respBody)
		if err != nil {
			return nil, err
		}
		return nil, &ServerError{Msg: resp.Err}
	}
	resps, err := DecodeBatchResponse(respBody)
	if err != nil {
		return nil, err
	}
	if n := len(resps); n > 0 && resps[n-1].Err != "" {
		return resps[:n-1], &BatchError{Index: n - 1, Msg: resps[n-1].Err}
	}
	return resps, nil
}

// ServerError is an SQL error reported by the server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// BatchError is an SQL error that stopped a batch: statement Index
// failed, statements before it executed, statements after it never ran.
type BatchError struct {
	Index int
	Msg   string
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("server: batch statement %d: %s", e.Index, e.Msg)
}

// ---------------------------------------------------------------------------
// channel implementations

// MeteredChannel executes requests against an in-process server
// connection while charging every round trip to a WAN meter — the
// deterministic simulation path used by all experiments.
type MeteredChannel struct {
	Conn  *ServerConn
	Meter *netsim.Meter
}

// RoundTrip dispatches in-process and charges request/response sizes
// (payload plus length prefix) to the meter. Batch frames are charged as
// one round trip carrying many statements, which is exactly the saving
// the batching strategies buy.
func (mc *MeteredChannel) RoundTrip(request []byte) ([]byte, error) {
	response := mc.Conn.Handle(request)
	if mc.Meter != nil {
		mc.Meter.RoundTripStatements(len(request)+frameOverhead, len(response)+frameOverhead,
			BatchStatements(request))
	}
	return response, nil
}

// StreamChannel speaks the framed protocol over a real stream (TCP or
// net.Pipe), for the interactive demo binaries.
type StreamChannel struct {
	Stream io.ReadWriter
}

// RoundTrip writes one frame and reads one frame.
func (sc *StreamChannel) RoundTrip(request []byte) ([]byte, error) {
	if err := WriteFrame(sc.Stream, request); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	body, err := ReadFrame(sc.Stream)
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	return body, nil
}
