package wire

import (
	"context"
	"reflect"
	"testing"

	"pdmtune/internal/minisql"
	"pdmtune/internal/netsim"
)

func TestValidateFramesRoundTrip(t *testing.T) {
	checks := []StaleCheck{{ID: 1, Since: 0}, {ID: -7, Since: 42}, {ID: 1 << 40, Since: 9}}
	got, err := DecodeValidate(EncodeValidate(checks))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(checks, got) {
		t.Fatalf("validate round trip: got %+v, want %+v", got, checks)
	}
	stale := []int64{3, -9, 1 << 50}
	gotStale, err := DecodeValidateResp(EncodeValidateResp(stale))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stale, gotStale) {
		t.Fatalf("validate resp round trip: got %v, want %v", gotStale, stale)
	}
	if _, err := DecodeValidate([]byte{TypeValidate, 0, 0, 0, 9}); err == nil {
		t.Error("truncated validate frame decoded")
	}
	if _, err := DecodeValidateResp([]byte{TypeValidateResp, 0, 0, 0, 9}); err == nil {
		t.Error("truncated validate response decoded")
	}
}

// TestValidateAgainstServerVersions: the server answers stale-checks
// from the database's version log, and result responses carry the
// epoch a cache stamps its entries with.
func TestValidateAgainstServerVersions(t *testing.T) {
	db := minisql.NewDB()
	s := db.NewSession()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE assy (obid INTEGER PRIMARY KEY, name TEXT)")
	mustExec("INSERT INTO assy VALUES (1, 'a')")
	mustExec("INSERT INTO assy VALUES (2, 'b')")

	meter := netsim.NewMeter(netsim.Intercontinental())
	srv := NewServer(db)
	client := NewClient(&MeteredChannel{Conn: srv.NewConn(), Meter: meter})
	ctx := context.Background()

	resp, err := client.Exec(ctx, "SELECT * FROM assy")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch == 0 {
		t.Fatal("result response carries no epoch")
	}
	fetched := resp.Epoch

	// Nothing changed: no ids are stale.
	stale, err := client.Validate(ctx, []StaleCheck{{ID: 1, Since: fetched}, {ID: 2, Since: fetched}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v on an unchanged database", stale)
	}

	mustExec("UPDATE assy SET name = 'a2' WHERE obid = 1")
	stale, err = client.Validate(ctx, []StaleCheck{{ID: 1, Since: fetched}, {ID: 2, Since: fetched}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 1 || stale[0] != 1 {
		t.Fatalf("stale = %v after updating object 1, want [1]", stale)
	}

	// The exchange is metered as a validate round trip, not a statement.
	before := meter.Metrics
	if _, err := client.Validate(ctx, []StaleCheck{{ID: 2, Since: fetched}}); err != nil {
		t.Fatal(err)
	}
	d := meter.Metrics.Sub(before)
	if d.RoundTrips != 1 || d.ValidateRoundTrips != 1 || d.Statements != 0 {
		t.Errorf("validate metering: %+v, want 1 round trip, 1 validate, 0 statements", d)
	}

	// An empty check list is a no-op costing nothing.
	before = meter.Metrics
	if _, err := client.Validate(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if d := meter.Metrics.Sub(before); d.RoundTrips != 0 {
		t.Errorf("empty validate charged %d round trips", d.RoundTrips)
	}
}
