package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	reqs := []*Request{
		{SQL: "SELECT 1"},
		{SQL: "INSERT INTO t VALUES (?, ?)", Params: []types.Value{types.NewInt(7), types.NewText("x")}},
		{SQL: "", Params: []types.Value{types.Null, types.NewBool(true), types.NewFloat(2.5)}},
	}
	got, err := DecodeBatch(EncodeBatch(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].SQL != reqs[i].SQL || len(got[i].Params) != len(reqs[i].Params) {
			t.Fatalf("request %d: %+v != %+v", i, got[i], reqs[i])
		}
		for j := range reqs[i].Params {
			if !got[i].Params[j].Equal(reqs[i].Params[j]) {
				t.Errorf("request %d param %d mismatch", i, j)
			}
		}
	}
}

func TestEmptyBatchEncodeDecode(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch decoded to %d requests", len(got))
	}
	resps, err := DecodeBatchResponse(EncodeBatchResponse(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 0 {
		t.Fatalf("empty batch response decoded to %d responses", len(resps))
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Cols: []string{"a"}, Rows: nil, RowsAffected: 3},
		{Err: "boom"},
	}
	got, err := DecodeBatchResponse(EncodeBatchResponse(resps))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].RowsAffected != 3 || got[1].Err != "boom" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestBatchDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {TypeBatch}, {TypeBatch, 0, 0, 0, 2, 0, 0, 0, 9}, {0x77, 0, 0, 0, 0}} {
		if _, err := DecodeBatch(b); err == nil {
			t.Errorf("bad batch frame %v must fail", b)
		}
	}
	if _, err := DecodeBatchResponse([]byte{TypeBatchResp, 0, 0, 0, 1}); err == nil {
		t.Error("truncated batch response must fail")
	}
}

// TestBatchDecodeHugeCount: a corrupt frame claiming 2^32-1 sub-frames
// must be rejected up front, not trusted for a multi-GiB allocation.
func TestBatchDecodeHugeCount(t *testing.T) {
	frame := []byte{TypeBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, err := DecodeBatch(frame); err == nil {
		t.Error("batch frame with bogus count must fail")
	}
	frame[0] = TypeBatchResp
	if _, err := DecodeBatchResponse(frame); err == nil {
		t.Error("batch response frame with bogus count must fail")
	}
}

// TestExecBatchErrorFrameFallback: when the server answers a batch with
// a plain error frame (it could not decode the batch), the client must
// surface the server's diagnostic, not a frame-type mismatch.
func TestExecBatchErrorFrameFallback(t *testing.T) {
	ch := staticChannel{resp: EncodeResponse(&Response{Err: "bad batch: kaput"})}
	client := NewClient(ch)
	_, err := client.ExecBatch(context.Background(), []*Request{{SQL: "SELECT 1"}})
	var se *ServerError
	if !errors.As(err, &se) || se.Msg != "bad batch: kaput" {
		t.Fatalf("expected the server's diagnostic, got %T %v", err, err)
	}
}

type staticChannel struct{ resp []byte }

func (c staticChannel) RoundTrip(context.Context, []byte) ([]byte, error) { return c.resp, nil }

// TestBatchStatements: the meter helper reads the statement count off an
// encoded frame without decoding it.
func TestBatchStatements(t *testing.T) {
	if n := BatchStatements(EncodeRequest(&Request{SQL: "SELECT 1"})); n != 1 {
		t.Errorf("plain request = %d statements, want 1", n)
	}
	reqs := []*Request{{SQL: "SELECT 1"}, {SQL: "SELECT 2"}, {SQL: "SELECT 3"}}
	if n := BatchStatements(EncodeBatch(reqs)); n != 3 {
		t.Errorf("batch = %d statements, want 3", n)
	}
}

func TestExecBatchAgainstServer(t *testing.T) {
	db := minisql.NewDB()
	srv := NewServer(db)
	meter := netsim.NewMeter(netsim.Intercontinental())
	client := NewClient(&MeteredChannel{Conn: srv.NewConn(), Meter: meter})

	resps, err := client.ExecBatch(context.Background(), []*Request{
		{SQL: "CREATE TABLE t (a INTEGER, b TEXT)"},
		{SQL: "INSERT INTO t VALUES (?, ?)", Params: []types.Value{types.NewInt(1), types.NewText("one")}},
		{SQL: "INSERT INTO t VALUES (?, ?)", Params: []types.Value{types.NewInt(2), types.NewText("two")}},
		{SQL: "SELECT COUNT(*) FROM t"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 4 {
		t.Fatalf("got %d responses, want 4", len(resps))
	}
	if resps[3].Rows[0][0].Int() != 2 {
		t.Fatalf("count = %s, want 2", resps[3].Rows[0][0])
	}
	// The whole batch cost exactly one WAN round trip but four statements.
	if meter.Metrics.RoundTrips != 1 || meter.Metrics.Statements != 4 {
		t.Errorf("metrics: %d round trips / %d statements, want 1/4",
			meter.Metrics.RoundTrips, meter.Metrics.Statements)
	}
	if meter.Metrics.SavedRoundTrips != 3 || meter.Metrics.Batches != 1 {
		t.Errorf("saved=%d batches=%d, want 3/1", meter.Metrics.SavedRoundTrips, meter.Metrics.Batches)
	}
}

// TestExecBatchEmptyIsFree: an empty batch must not cross the wire.
func TestExecBatchEmptyIsFree(t *testing.T) {
	db := minisql.NewDB()
	srv := NewServer(db)
	meter := netsim.NewMeter(netsim.Intercontinental())
	client := NewClient(&MeteredChannel{Conn: srv.NewConn(), Meter: meter})
	resps, err := client.ExecBatch(context.Background(), nil)
	if err != nil || resps != nil {
		t.Fatalf("empty batch: %v, %v", resps, err)
	}
	if meter.Metrics.RoundTrips != 0 {
		t.Errorf("empty batch charged %d round trips", meter.Metrics.RoundTrips)
	}
}

// TestBatchStopsOnFirstError: statements after the failing one must not
// execute, the client gets per-statement results up to the failure and a
// typed *BatchError naming the failed index.
func TestBatchStopsOnFirstError(t *testing.T) {
	db := minisql.NewDB()
	srv := NewServer(db)
	client := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	if _, err := client.Exec(context.Background(), "CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	resps, err := client.ExecBatch(context.Background(), []*Request{
		{SQL: "INSERT INTO t VALUES (1)"},
		{SQL: "SELECT * FROM missing"}, // fails
		{SQL: "INSERT INTO t VALUES (2)"},
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BatchError, got %T %v", err, err)
	}
	if be.Index != 1 {
		t.Errorf("failed index = %d, want 1", be.Index)
	}
	if len(resps) != 1 || resps[0].RowsAffected != 1 {
		t.Fatalf("responses before the failure: %+v", resps)
	}
	// Statement 3 must not have run.
	count, err := client.Exec(context.Background(), "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if count.Rows[0][0].Int() != 1 {
		t.Errorf("rows after failed batch = %s, want 1 (stop-on-first-error)", count.Rows[0][0])
	}
}

// TestHandleRecoversFromPanic: a panicking statement comes back as an
// error frame and the connection keeps serving — alone and mid-batch.
func TestHandleRecoversFromPanic(t *testing.T) {
	db := minisql.NewDB()
	db.RegisterProc("explode", func(s *minisql.Session, args []minisql.Value) (*minisql.Result, error) {
		panic("kaboom")
	})
	srv := NewServer(db)
	client := NewClient(&MeteredChannel{Conn: srv.NewConn()})

	_, err := client.Exec(context.Background(), "CALL explode()")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected ServerError from panic, got %T %v", err, err)
	}

	resps, err := client.ExecBatch(context.Background(), []*Request{
		{SQL: "CREATE TABLE t (a INTEGER)"},
		{SQL: "CALL explode()"},
		{SQL: "INSERT INTO t VALUES (1)"},
	})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("expected BatchError at index 1, got %T %v", err, err)
	}
	if len(resps) != 1 {
		t.Fatalf("responses before the panic: %d, want 1", len(resps))
	}
	// The connection survived both panics.
	if _, err := client.Exec(context.Background(), "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

// TestEncodeSideFrameSizeLimit: the encode path rejects oversized frames
// with the typed error instead of silently emitting them.
func TestEncodeSideFrameSizeLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >1 GiB")
	}
	huge := make([]byte, MaxFrameSize+1)
	err := CheckFrameSize(huge)
	var fe *FrameTooLargeError
	if !errors.As(err, &fe) || fe.Size != MaxFrameSize+1 {
		t.Fatalf("CheckFrameSize: %T %v", err, err)
	}
	if err := WriteFrame(discardWriter{}, huge); !errors.As(err, &fe) {
		t.Fatalf("WriteFrame accepted an oversized frame: %v", err)
	}
	if err := CheckFrameSize(huge[:MaxFrameSize]); err != nil {
		t.Fatalf("frame at exactly the limit must pass: %v", err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestConcurrentBatchSessions drives many sessions issuing batches
// against one shared database — run under -race this exercises the
// engine's locking on the batch path.
func TestConcurrentBatchSessions(t *testing.T) {
	db := minisql.NewDB()
	srv := NewServer(db)
	setup := NewClient(&MeteredChannel{Conn: srv.NewConn()})
	if _, err := setup.Exec(context.Background(), "CREATE TABLE t (w INTEGER, i INTEGER)"); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const batches = 5
	const perBatch = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClient(&MeteredChannel{Conn: srv.NewConn()})
			for b := 0; b < batches; b++ {
				reqs := make([]*Request, perBatch)
				for i := range reqs {
					reqs[i] = &Request{
						SQL:    "INSERT INTO t VALUES (?, ?)",
						Params: []types.Value{types.NewInt(int64(w)), types.NewInt(int64(b*perBatch + i))},
					}
				}
				if _, err := client.ExecBatch(context.Background(), reqs); err != nil {
					errs <- fmt.Errorf("worker %d batch %d: %w", w, b, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	resp, err := setup.Exec(context.Background(), "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workers * batches * perBatch)
	if got := resp.Rows[0][0].Int(); got != want {
		t.Errorf("concurrent batches inserted %d rows, want %d", got, want)
	}
}
