package wire

import (
	"bytes"
	"context"
	"io"
	"net"
	"reflect"
	"testing"

	"pdmtune/internal/minisql"
	"pdmtune/internal/minisql/storage"
	"pdmtune/internal/minisql/types"
	"pdmtune/internal/netsim"
)

// poisonPool pulls a batch of recycled buffers out of the frame pool,
// overwrites their full capacity with a sentinel byte, and puts them
// back. Any live Response (or other decoded value) that secretly
// aliases pooled memory gets visibly corrupted by this.
func poisonPool() {
	bufs := make([][]byte, 64)
	for i := range bufs {
		bufs[i] = getFrame()
	}
	for _, b := range bufs {
		full := b[:cap(b)]
		for j := range full {
			full[j] = 0xA5
		}
		putFrame(b)
	}
}

func cloneResponse(r *Response) *Response {
	c := &Response{
		Err:          r.Err,
		Cols:         append([]string(nil), r.Cols...),
		RowsAffected: r.RowsAffected,
		Epoch:        r.Epoch,
	}
	for _, row := range r.Rows {
		// Force-copy text cells through a byte round trip so the clone
		// cannot share string backing with the original.
		cr := make(storage.Row, len(row))
		for i, v := range row {
			b := AppendValue(nil, v)
			cv, _, err := ReadValue(bytes.Repeat(b, 1))
			if err != nil {
				panic(err)
			}
			cr[i] = cv
		}
		c.Rows = append(c.Rows, cr)
	}
	return c
}

// TestPooledBuffersDoNotAliasResponses is the pool-aliasing regression
// test: after a full exec round trip (columnar + compression, so every
// pooled path runs), poisoning the recycled buffers must not change the
// decoded responses — proof that nothing the client keeps aliases pool
// memory.
func TestPooledBuffersDoNotAliasResponses(t *testing.T) {
	ctx := context.Background()
	_, client, _ := newTestConn(t, 400)
	if _, err := client.Negotiate(ctx, Caps{Columnar: true, Compress: true, CompressThreshold: 64}); err != nil {
		t.Fatal(err)
	}

	resp, err := client.Exec(ctx, "SELECT id, typ, state FROM obj ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	snapshot := cloneResponse(resp)

	// Churn the pool with fresh traffic (different statement shapes so
	// recycled buffers get rewritten at many lengths), then poison
	// whatever the pool holds.
	for i := 0; i < 50; i++ {
		if _, err := client.Exec(ctx, "SELECT state, COUNT(*) FROM obj GROUP BY state"); err != nil {
			t.Fatal(err)
		}
	}
	poisonPool()

	if !reflect.DeepEqual(resp, snapshot) {
		t.Fatal("decoded response changed after pool churn + poisoning: a pooled buffer is aliased")
	}
}

// TestPooledBuffersStreamPath runs the same aliasing check over a real
// framed stream (net.Pipe), which exercises the Serve-loop recycle
// points and pooled ReadFrame buffers on both sides.
func TestPooledBuffersStreamPath(t *testing.T) {
	ctx := context.Background()
	db := minisql.NewDB()
	conn := NewServer(db).NewConn()
	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- conn.Serve(ss) }()
	defer func() {
		cs.Close()
		ss.Close()
		if err := <-done; err != nil && err != io.ErrClosedPipe {
			t.Errorf("serve: %v", err)
		}
	}()

	client := NewClient(Metered(&StreamChannel{Stream: cs}, netsim.NewMeter(netsim.Link{})))
	if _, err := client.Negotiate(ctx, Caps{Columnar: true, Compress: true, CompressThreshold: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Exec(ctx, "CREATE TABLE obj (id INTEGER, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	reqs := make([]*Request, 0, 300)
	for i := 0; i < 300; i++ {
		reqs = append(reqs, &Request{
			SQL:    "INSERT INTO obj VALUES (?, 'released-component-name')",
			Params: []types.Value{types.NewInt(int64(i))},
		})
	}
	if _, err := client.ExecBatch(ctx, reqs); err != nil {
		t.Fatal(err)
	}

	resp, err := client.Exec(ctx, "SELECT id, name FROM obj ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	snapshot := cloneResponse(resp)
	for i := 0; i < 50; i++ {
		if _, err := client.Exec(ctx, "SELECT COUNT(*) FROM obj"); err != nil {
			t.Fatal(err)
		}
	}
	poisonPool()
	if !reflect.DeepEqual(resp, snapshot) {
		t.Fatal("stream-path response changed after pool churn + poisoning: a pooled buffer is aliased")
	}
}
