package wire

// Frame buffer recycling. Every encoded frame in the protocol is an
// append-built []byte with a short, well-defined lifetime: a request
// body dies when the transport's round trip returns, a response body
// when the client has decoded it (every decode path copies what it
// keeps), a compression input when CompressBody returns a different
// slice. Those hand-off points recycle their buffer here, so a
// steady-state server does no per-frame heap work — the same idea as
// flateWriters, applied to the frames themselves.
//
// Ownership discipline: a buffer may be recycled exactly once, by the
// party that provably holds the last reference. Encoders hand their
// buffer to the caller; transports and Serve recycle request bodies
// after dispatch; clients recycle response bodies after decoding.
// Callers outside this package that hold on to an encoded frame are
// unaffected — an unrecycled buffer is just garbage-collected.

import "sync"

// maxPooledBuf caps the capacity of a recycled buffer. The occasional
// huge frame (a full-tree expand, a bootstrap sync delta) should not
// pin megabytes in the pool forever.
const maxPooledBuf = 1 << 20

var frameBufs = sync.Pool{New: func() any { return new([]byte) }}

// getFrame returns an empty buffer with recycled capacity to append a
// frame into.
func getFrame() []byte {
	return (*frameBufs.Get().(*[]byte))[:0]
}

// getFrameN returns a length-n buffer for a decode-side read.
func getFrameN(n int) []byte {
	b := getFrame()
	if cap(b) >= n {
		return b[:n]
	}
	putFrame(b)
	return make([]byte, n)
}

// putFrame recycles a frame buffer. The caller must hold the only live
// reference; the buffer's contents are dead after the call.
func putFrame(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	frameBufs.Put(&b)
}

// sameBuf reports whether two non-empty slices share a backing array
// start — the "did CompressBody / MaybeDecompress return my buffer or a
// new one" test at the recycle points.
func sameBuf(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}
